// Package pbmg is an autotuned multigrid solver for the 2D Poisson
// equation, a Go reproduction of "Autotuning Multigrid with PetaBricks"
// (Chan, Ansel, Wong, Amarasinghe, Edelman — SC'09).
//
// The package tunes, per machine and per requested accuracy, a hybrid
// algorithm that mixes direct band-Cholesky solves, red-black SOR, and
// recursive multigrid cycles whose shape is discovered by a bottom-up
// dynamic program over (recursion level, accuracy) cells. Typical use:
//
//	solver, err := pbmg.Tune(pbmg.Options{MaxSize: 257})
//	...
//	p := pbmg.NewProblem(257, pbmg.Unbiased, 42)
//	x := p.NewState()
//	err = solver.Solve(x, p.B, 1e7)
//
// Tuned configurations serialize to JSON (Solver.Save / Load) so a machine
// is tuned once and the result reused, exactly like PetaBricks
// configuration files.
//
// A Solver is safe for concurrent use: the tuned tables are immutable, the
// worker pool supports concurrent callers, and all per-solve scratch state
// is checked out from an internal arena. One tuned Solver can therefore
// serve many simultaneous solves — see SolveBatch for fanning a fixed set
// of problems, and Service for bounding in-flight solves in a server.
package pbmg

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"pbmg/internal/arch"
	"pbmg/internal/core"
	"pbmg/internal/grid"
	"pbmg/internal/mg"
	"pbmg/internal/problem"
	"pbmg/internal/refsol"
	"pbmg/internal/sched"
	"pbmg/internal/stencil"
)

// Grid is a square N×N (2D) or cubic N×N×N (3D) grid of float64 values in
// one flat slice. See NewGrid and NewGrid3; Grid.Dim reports which kind a
// grid is, and dimension-specific accessors reject the other kind.
type Grid = grid.Grid

// NewGrid returns a zero-filled 2D n×n grid.
func NewGrid(n int) *Grid { return grid.New(n) }

// NewGrid3 returns a zero-filled 3D n×n×n grid, for use with
// FamilyPoisson3D solvers.
func NewGrid3(n int) *Grid { return grid.New3(n) }

// Distribution selects a training/benchmark data distribution from §4 of
// the paper.
type Distribution = grid.Distribution

// Training distributions: unbiased uniform over [−2³², 2³²], the same
// shifted by +2³¹, and random point sources.
const (
	Unbiased     = grid.Unbiased
	Biased       = grid.Biased
	PointSources = grid.PointSources
)

// Problem is one operator problem instance.
type Problem = problem.Problem

// Family selects an operator family. The solver tunes each family
// independently: the same dynamic program, run under a family's kernels,
// discovers a different optimal cycle shape (most visibly for strong
// anisotropy, where smoothing loses power and direct solves win deeper).
type Family = stencil.Family

// Operator families: the paper's constant-coefficient Poisson operator −∇²,
// the anisotropic operator −(ε·∂²/∂x² + ∂²/∂y²), the variable-coefficient
// operator −∇·(c∇u) with the built-in smooth positive coefficient field of
// contrast parameter σ, and the 3D Poisson operator (7-point stencil on an
// N×N×N cube — the paper's headline scaling case). Families carry their
// spatial dimension (Family.Dim); 3D solvers work on grids from NewGrid3.
const (
	FamilyPoisson     = stencil.FamilyPoisson
	FamilyAnisotropic = stencil.FamilyAnisotropic
	FamilyVarCoef     = stencil.FamilyVarCoef
	FamilyPoisson3D   = stencil.FamilyPoisson3D
)

// ParseFamily parses a family name ("poisson", "aniso", "varcoef",
// "poisson3d").
func ParseFamily(s string) (Family, error) { return stencil.ParseFamily(s) }

// FamilyHasParam reports whether the family carries a tunable parameter
// (anisotropy ratio ε or coefficient contrast σ); the 2D and 3D Laplacians
// are parameterless.
func FamilyHasParam(f Family) bool { return core.FamilyHasParam(f) }

// CheckFamilyFlags validates CLI-style -family/-epsilon overrides against a
// loaded solver: tuned tables are family-specific, so a mismatch would
// silently solve the wrong operator. Empty family and zero epsilon mean
// "use the configuration's values" and always pass; epsilon is only checked
// for parameterized families. The error names the configuration path and
// how to re-tune. Shared by mgsolve and mgserve so the checks cannot drift.
func (s *Solver) CheckFamilyFlags(config, family string, epsilon float64) error {
	if family != "" {
		f, err := ParseFamily(family)
		if err != nil {
			return err
		}
		if f != s.Family() {
			return fmt.Errorf("configuration %s is tuned for family %s, not %s; re-tune with mgtune -family %s",
				config, s.Family(), f, f)
		}
	}
	if epsilon != 0 && FamilyHasParam(s.Family()) && epsilon != s.Epsilon() {
		return fmt.Errorf("configuration %s is tuned for eps %g, not %g; re-tune with mgtune -family %s -epsilon %g",
			config, s.Epsilon(), epsilon, s.Family(), epsilon)
	}
	return nil
}

// NewProblem draws a random constant-coefficient Poisson problem of side n
// (must be 2^k+1) from the given distribution.
func NewProblem(n int, dist Distribution, seed int64) *Problem {
	return problem.Random(n, dist, rand.New(rand.NewSource(seed)))
}

// NewFamilyProblem draws a random problem of side n for the given operator
// family. eps is the anisotropy ratio ε (FamilyAnisotropic) or the
// coefficient contrast σ (FamilyVarCoef); zero selects the family default.
// Solve it with a Solver tuned for the same family and parameter.
func NewFamilyProblem(n int, dist Distribution, seed int64, f Family, eps float64) (*Problem, error) {
	op, err := stencil.NewOperator(f, core.ResolveEps(f, eps), n)
	if err != nil {
		return nil, err
	}
	return problem.RandomOp(n, dist, rand.New(rand.NewSource(seed)), op.At(n)), nil
}

// Reference computes the problem's near-exact solution and attaches it, so
// Problem.AccuracyOf can grade solver outputs.
func Reference(p *Problem) *Grid {
	refsol.Attach(p, nil)
	return p.Optimal()
}

// Options configures Tune.
type Options struct {
	// MaxSize is the finest grid side the solver will handle; must be
	// 2^k + 1 with k ≥ 2.
	MaxSize int
	// Family selects the operator family to tune for (default FamilyPoisson).
	Family Family
	// Epsilon is the family parameter: anisotropy ratio ε for
	// FamilyAnisotropic, coefficient contrast σ for FamilyVarCoef. Zero
	// selects the family default; ignored for FamilyPoisson.
	Epsilon float64
	// Accuracies are the discrete accuracy targets (default: the paper's
	// 10, 10³, 10⁵, 10⁷, 10⁹).
	Accuracies []float64
	// Distribution is the training distribution (default Unbiased).
	Distribution Distribution
	// Machine selects a simulated architecture cost model by name
	// ("intel-harpertown", "amd-barcelona", "sun-niagara"); empty tunes for
	// the host machine by wall clock.
	Machine string
	// Workers sets the worker-pool size for parallel kernels (0: serial).
	Workers int
	// Seed fixes the training data.
	Seed int64
	// Logf, when non-nil, receives tuning progress lines.
	Logf func(format string, args ...any)
	// NoFuse disables the fused single-pass cycle kernels on the built
	// solver's workspace and runs the original separate
	// smooth/residual/restrict/norm passes. The two paths perform the same
	// sweeps bit for bit and agree on restrictions and norms to
	// floating-point association (≤1e-12 of the data scale; iterates may
	// differ in low-order bits), so this is a benchmarking escape hatch
	// (mgbench -nofuse measures the fusion win), not a correctness knob.
	NoFuse bool
}

// Solver is a tuned multigrid solver. Create with Tune or Load; release
// with Close.
//
// A Solver is safe for concurrent use: any number of goroutines may call
// Solve, SolveV, SolveAdaptive, SolveBatch, CycleShape, and Describe
// simultaneously on one Solver, sharing its tuned tables, worker pool, and
// direct-factor cache. Close must not be called while solves are in flight.
type Solver struct {
	tuned *core.Tuned
	ws    *mg.Workspace
	pool  *sched.Pool

	// reducedPrec is true when any tuned plan carries an f32 or mixed
	// precision directive — only then does a solve snapshot its input state,
	// so the pure-f64 fast path pays nothing for the escalation machinery.
	reducedPrec bool
	// escalations counts solves that diverged at reduced precision and were
	// retried (successfully or not) at forced float64.
	escalations atomic.Int64

	// defMu guards defSvc, the lazily-created default service behind
	// DefaultService that SolveBatch routes through so its completion counts
	// are observable. A mutex (not sync.Once) so Registry.Register can
	// replace the service without racing concurrent DefaultService callers.
	defMu  sync.Mutex
	defSvc *Service
}

// ErrCancelled marks a solve aborted between cycles or levels because its
// context was done. The error also wraps the context's own sentinel
// (context.Canceled or context.DeadlineExceeded).
var ErrCancelled = mg.ErrCancelled

// ErrDiverged marks a solve whose iterate went non-finite or whose residual
// blew up instead of contracting. Reduced-precision solves retry once at
// forced float64 before surfacing it (see Solver.Escalations).
var ErrDiverged = mg.ErrDiverged

// Tune trains a solver for the given options by running the paper's
// dynamic-programming autotuner.
func Tune(o Options) (*Solver, error) {
	var pool *sched.Pool
	if o.Workers > 1 {
		pool = sched.NewPool(o.Workers)
	}
	s, err := tuneWithPool(o, pool)
	if err != nil {
		closePool(pool)
		return nil, err
	}
	return s, nil
}

// tuneWithPool runs the autotuner and builds a solver on the given pool
// (nil: serial), which the caller owns — Registry.Tune passes its shared
// pool, Tune a fresh one sized by o.Workers.
func tuneWithPool(o Options, pool *sched.Pool) (*Solver, error) {
	level := grid.Level(o.MaxSize)
	if level < 2 {
		return nil, fmt.Errorf("pbmg: MaxSize must be 2^k+1 with k ≥ 2, got %d", o.MaxSize)
	}
	var coster arch.Coster = arch.WallClock{}
	if o.Machine != "" {
		m, err := arch.ByName(o.Machine)
		if err != nil {
			return nil, err
		}
		coster = m
	}
	tn, err := core.New(core.Config{
		Accuracies:   o.Accuracies,
		MaxLevel:     level,
		Family:       o.Family,
		Eps:          o.Epsilon,
		Distribution: o.Distribution,
		Seed:         o.Seed,
		Coster:       coster,
		Pool:         pool,
		Logf:         o.Logf,
	})
	if err != nil {
		return nil, err
	}
	tuned, err := tn.Tune()
	if err != nil {
		return nil, err
	}
	s, err := newSolver(tuned, pool)
	if err != nil {
		return nil, err
	}
	s.ws.NoFuse = o.NoFuse
	return s, nil
}

// Load reads a tuned configuration written by Save. Workers configures the
// worker pool for this process (0: serial).
func Load(path string, workers int) (*Solver, error) {
	tuned, err := core.Load(path)
	if err != nil {
		return nil, err
	}
	var pool *sched.Pool
	if workers > 1 {
		pool = sched.NewPool(workers)
	}
	s, err := newSolver(tuned, pool)
	if err != nil {
		closePool(pool)
		return nil, err
	}
	return s, nil
}

func newSolver(tuned *core.Tuned, pool *sched.Pool) (*Solver, error) {
	op, err := tuned.OperatorValue()
	if err != nil {
		return nil, err
	}
	ws := mg.NewWorkspace(pool)
	ws.CacheDirectFactor = true // production solves reuse factorizations
	ws.Op = op
	s := &Solver{tuned: tuned, ws: ws, pool: pool}
	for _, row := range tuned.V.Plans {
		for _, p := range row {
			if p.Precision == mg.PrecF32 || p.Precision == mg.PrecMixed {
				s.reducedPrec = true
			}
		}
	}
	return s, nil
}

func closePool(p *sched.Pool) {
	if p != nil {
		p.Close()
	}
}

// Close releases the solver's worker pool.
func (s *Solver) Close() { closePool(s.pool) }

// Save writes the tuned configuration as JSON.
func (s *Solver) Save(path string) error { return s.tuned.Save(path) }

// Machine returns the name of the cost model the solver was tuned for.
func (s *Solver) Machine() string { return s.tuned.Machine }

// PoolSteals returns the worker pool's cumulative successful-steal count
// (0 for a serial solver) — scheduler visibility for benchmark reports.
func (s *Solver) PoolSteals() int64 {
	if s.pool == nil {
		return 0
	}
	return s.pool.Steals()
}

// Family returns the operator family the solver was tuned for.
func (s *Solver) Family() Family { return s.ws.Operator().Family() }

// Dim returns the solver's spatial dimension (2, or 3 for FamilyPoisson3D):
// states passed to Solve must be grids of this dimension.
func (s *Solver) Dim() int { return s.ws.Operator().Dim() }

// Epsilon returns the operator family parameter (ε or σ; 1 for Poisson).
func (s *Solver) Epsilon() float64 { return s.ws.Operator().Eps() }

// NewFamilyProblem draws a random problem matched to the solver's operator
// family and parameter, sharing the solver's operator hierarchy.
func (s *Solver) NewFamilyProblem(n int, dist Distribution, seed int64) (*Problem, error) {
	if err := s.checkSizeN(n); err != nil {
		return nil, err
	}
	op := s.ws.Operator().At(n)
	return problem.RandomOp(n, dist, rand.New(rand.NewSource(seed)), op), nil
}

// MaxSize returns the finest grid side the solver was tuned for.
func (s *Solver) MaxSize() int { return grid.SizeOfLevel(s.tuned.MaxLevel) }

// Accuracies returns the discrete accuracy targets of the tuned tables.
func (s *Solver) Accuracies() []float64 {
	return append([]float64(nil), s.tuned.V.Acc...)
}

// accIndex returns the index of the smallest tuned target ≥ accuracy.
func (s *Solver) accIndex(accuracy float64) (int, error) {
	for i, a := range s.tuned.V.Acc {
		if a >= accuracy {
			return i, nil
		}
	}
	return 0, fmt.Errorf("pbmg: accuracy %g exceeds tuned maximum %g",
		accuracy, s.tuned.V.Acc[len(s.tuned.V.Acc)-1])
}

// checkSize verifies x is within the tuned range.
func (s *Solver) checkSize(x *Grid) error { return s.checkSizeN(x.N()) }

func (s *Solver) checkSizeN(n int) error {
	level := grid.Level(n)
	if level < 1 {
		return fmt.Errorf("pbmg: grid side %d is not 2^k+1", n)
	}
	if level > s.tuned.MaxLevel {
		return fmt.Errorf("pbmg: grid side %d exceeds tuned maximum %d", n, s.MaxSize())
	}
	return nil
}

// SolveV solves T·x = b in place with the tuned MULTIGRID-V algorithm for
// the smallest tuned target ≥ accuracy. x supplies the Dirichlet boundary
// and initial guess.
func (s *Solver) SolveV(x, b *Grid, accuracy float64) error {
	return s.solve(x, b, accuracy, false, nil)
}

// Solve solves T·x = b in place with the tuned FULL-MULTIGRID algorithm,
// the paper's best-performing family.
func (s *Solver) Solve(x, b *Grid, accuracy float64) error {
	return s.solve(x, b, accuracy, true, nil)
}

// SolveContext is Solve with cooperative cancellation: the solve polls ctx
// between V-cycles and between levels of deep cycles, and once ctx is done
// it aborts within roughly one cycle's latency with an error wrapping both
// ErrCancelled and the context's own sentinel. All pooled scratch is
// returned on the abort path; the grid x is left mid-iteration and must not
// be reused as a partial answer.
func (s *Solver) SolveContext(ctx context.Context, x, b *Grid, accuracy float64) error {
	return s.solveCtx(ctx, x, b, accuracy, true, nil)
}

// SolveVContext is SolveV with cooperative cancellation (see SolveContext).
func (s *Solver) SolveVContext(ctx context.Context, x, b *Grid, accuracy float64) error {
	return s.solveCtx(ctx, x, b, accuracy, false, nil)
}

// Escalations returns the number of solves that diverged at a tuned reduced
// precision and were retried at forced float64 — a nonzero value means the
// tuned f32/mixed tables are being pushed past their dynamic range by the
// live traffic, worth re-tuning for.
func (s *Solver) Escalations() int64 { return s.escalations.Load() }

func (s *Solver) solve(x, b *Grid, accuracy float64, full bool, rec mg.Recorder) error {
	return s.solveCtx(nil, x, b, accuracy, full, rec)
}

// solveCtx runs one tuned solve with the full control plane: cooperative
// cancellation from ctx (nil: none), divergence detection, and one
// precision-escalation retry when a reduced-precision plan diverges.
func (s *Solver) solveCtx(ctx context.Context, x, b *Grid, accuracy float64, full bool, rec mg.Recorder) error {
	if err := s.checkSize(x); err != nil {
		return err
	}
	idx, err := s.accIndex(accuracy)
	if err != nil {
		return err
	}
	if full && s.tuned.F == nil {
		return fmt.Errorf("pbmg: solver has no tuned full-multigrid table")
	}
	// One executor per solve keeps the recorder and context private to this
	// call; the workspace and tables behind it are shared and
	// concurrency-safe.
	ex := mg.Executor{WS: s.ws, V: s.tuned.V, F: s.tuned.F, Rec: rec}
	if ctx != nil && ctx.Done() != nil {
		ex.Ctx = ctx
	}
	// Divergence of a reduced-precision plan gets one retry at forced
	// float64, restarted from the caller's original state — the diverged
	// attempt has already scribbled on x. Pure-f64 tables skip the snapshot
	// (and can't escalate: a divergence there is the input's fault).
	var x0 *Grid
	if s.reducedPrec {
		x0 = x.Clone()
	}
	run := func() error {
		return ex.Run(func() {
			if full {
				ex.SolveFull(x, b, idx)
			} else {
				ex.SolveV(x, b, idx)
			}
		})
	}
	err = run()
	if err == nil && grid.HasNonFinite(x) {
		// The in-cycle guards cover the f32/mixed/adaptive shapes; the plain
		// f64 V-cycle and direct shapes have none, so vet every answer here —
		// a serving layer must never hand back a NaN grid as a success.
		err = fmt.Errorf("%w: solve produced a non-finite iterate", mg.ErrDiverged)
	}
	if err != nil && x0 != nil && errors.Is(err, mg.ErrDiverged) {
		s.escalations.Add(1)
		x.CopyFrom(x0)
		ex.ForceF64 = true
		if err = run(); err != nil {
			return err
		}
		// The escalated answer passes the same vet before declaring victory
		// over the original divergence.
		if grid.HasNonFinite(x) {
			return fmt.Errorf("%w: float64 escalation still produced a non-finite iterate", mg.ErrDiverged)
		}
		return nil
	}
	return err
}

// CycleShape renders the tuned cycle the solver would execute for a problem
// of side n at the given accuracy, in the ASCII notation of the paper's
// Figure 5 ('o' relaxation, '\' restrict, '/' interpolate, 'D' direct
// solve, '~k~' k SOR sweeps).
func (s *Solver) CycleShape(n int, accuracy float64, full bool) (string, error) {
	if lvl := grid.Level(n); lvl < 1 || lvl > s.tuned.MaxLevel {
		return "", fmt.Errorf("pbmg: size %d outside tuned range", n)
	}
	idx, err := s.accIndex(accuracy)
	if err != nil {
		return "", err
	}
	// Execute the plan on a scratch problem, recording the shape. Cycle
	// structure is data-independent, so any instance yields the shape.
	p, err := s.NewFamilyProblem(n, s.tuned.DistributionValue(), 1)
	if err != nil {
		return "", err
	}
	var log mg.ShapeLog
	x := p.NewState()
	if err := s.solve(x, p.B, s.tuned.V.Acc[idx], full, &log); err != nil {
		return "", err
	}
	return mg.RenderShape(&log), nil
}

// Describe prints the tuned call tree (the paper's Figure 4 view) for a
// problem of side n at the given accuracy.
func (s *Solver) Describe(n int, accuracy float64, full bool) (string, error) {
	level := grid.Level(n)
	if level < 1 || level > s.tuned.MaxLevel {
		return "", fmt.Errorf("pbmg: size %d outside tuned range", n)
	}
	idx, err := s.accIndex(accuracy)
	if err != nil {
		return "", err
	}
	if full {
		if s.tuned.F == nil {
			return "", fmt.Errorf("pbmg: solver has no tuned full-multigrid table")
		}
		return mg.DescribeFull(s.tuned.F, s.tuned.V, level, idx), nil
	}
	return mg.DescribeV(s.tuned.V, level, idx), nil
}

// PlanPrecision reports the storage precision ("f64", "f32", or "mixed") of
// the tuned plan the solver executes at the top level for a problem of side
// n at the given accuracy — the knob operators watch to see which precision
// a family/accuracy cell is serving. Coarser cells inside the cycle may run
// at their own tuned precisions; the top-level directive is the one that
// governs the fine-grid traversals dominating solve time.
func (s *Solver) PlanPrecision(n int, accuracy float64) (string, error) {
	if err := s.checkSizeN(n); err != nil {
		return "", err
	}
	idx, err := s.accIndex(accuracy)
	if err != nil {
		return "", err
	}
	return s.tuned.V.Plan(grid.Level(n), idx).Precision.String(), nil
}

// PlanPrecisions reports the distinct storage precisions appearing anywhere
// in the solver's tuned V-table, in fixed f64 → f32 → mixed order — the
// summary /metrics exposes so an operator can tell at a glance whether a
// family's tables exploit reduced precision at all.
func (s *Solver) PlanPrecisions() []string {
	var seen [3]bool
	for _, row := range s.tuned.V.Plans {
		for _, p := range row {
			switch p.Precision {
			case mg.PrecF32:
				seen[1] = true
			case mg.PrecMixed:
				seen[2] = true
			default:
				seen[0] = true
			}
		}
	}
	var out []string
	for i, label := range []string{"f64", "f32", "mixed"} {
		if seen[i] {
			out = append(out, label)
		}
	}
	return out
}

// SolveTraced solves T·x = b like Solve while recording every executed
// operation into rec — the hook benchmark harnesses use to account work
// (sweeps, direct solves) alongside wall time.
func (s *Solver) SolveTraced(x, b *Grid, accuracy float64, rec mg.Recorder) error {
	return s.solve(x, b, accuracy, true, rec)
}

// SolveAdaptive solves T·x = b with runtime feedback instead of trained
// iteration counts: tuned RECURSE steps are iterated until the measured
// residual has shrunk by the given factor, escalating to higher-accuracy
// sub-algorithms when convergence stagnates — the dynamic tuning the paper
// sketches as future work (§6). It returns the number of iterations run and
// the achieved residual reduction.
func (s *Solver) SolveAdaptive(x, b *Grid, residualReduction float64) (iters int, reduction float64, err error) {
	if err := s.checkSize(x); err != nil {
		return 0, 0, err
	}
	if residualReduction < 1 {
		return 0, 0, fmt.Errorf("pbmg: residual reduction %g must be ≥ 1", residualReduction)
	}
	ex := &mg.Executor{WS: s.ws, V: s.tuned.V} // per-call executor: concurrency-safe
	a := mg.AdaptiveSolver{Ex: ex}
	var res mg.AdaptiveResult
	// The adaptive loop carries a divergence guard (a blown-up residual
	// aborts instead of iterating to MaxIters on garbage); Run converts that
	// abort into ErrDiverged here.
	if err := ex.Run(func() { res = a.Solve(x, b, residualReduction, 0) }); err != nil {
		return 0, 0, err
	}
	return res.Iters, res.Reduction, nil
}

// Tuned exposes the underlying tuned bundle for advanced use (experiment
// harnesses, cross-architecture evaluation).
func (s *Solver) Tuned() *core.Tuned { return s.tuned }

// Workspace exposes the solver's workspace for advanced use alongside the
// internal executors.
func (s *Solver) Workspace() *mg.Workspace { return s.ws }
