package pbmg

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"pbmg/internal/mg"
)

// Concurrency tests for the serving path: one tuned Solver shared by many
// goroutines, with and without the direct-factor cache, over the shared
// worker pool. Run with -race. Grids of side 129 are used so the stencil
// and transfer kernels exceed their parallel threshold and actually
// exercise concurrent Do/ParallelFor callers on one sched.Pool.

var sharedSolver struct {
	once sync.Once
	s    *Solver
	err  error
}

// tuneShared tunes one MaxSize-129 solver (4 pool workers, deterministic
// simulated-machine coster) shared by all concurrency tests in the process.
func tuneShared(t *testing.T) *Solver {
	t.Helper()
	sharedSolver.once.Do(func() {
		sharedSolver.s, sharedSolver.err = Tune(Options{
			MaxSize:      129,
			Distribution: Unbiased,
			Machine:      "intel-harpertown",
			Workers:      4,
			Seed:         5,
		})
	})
	if sharedSolver.err != nil {
		t.Fatal(sharedSolver.err)
	}
	return sharedSolver.s
}

func TestConcurrentSolvesSharedSolver(t *testing.T) {
	s := tuneShared(t)
	const goroutines = 8
	const target = 1e5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*3)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Mixed sizes: half the clients solve at the tuned maximum, half
			// one level down, so concurrent solves overlap on some scratch
			// sizes and not others.
			n := 129
			if g%2 == 1 {
				n = 65
			}
			p := NewProblem(n, Unbiased, int64(100+g))
			Reference(p)

			x := p.NewState()
			if err := s.Solve(x, p.B, target); err != nil {
				errs <- err
				return
			}
			if got := p.AccuracyOf(x); got < target*0.1 {
				t.Errorf("goroutine %d: Solve achieved %.3g, want ≥ %.3g", g, got, target*0.1)
			}

			xv := p.NewState()
			if err := s.SolveV(xv, p.B, target); err != nil {
				errs <- err
				return
			}
			if got := p.AccuracyOf(xv); got < target*0.1 {
				t.Errorf("goroutine %d: SolveV achieved %.3g, want ≥ %.3g", g, got, target*0.1)
			}

			xa := p.NewState()
			const reduction = 1e4
			if _, got, err := s.SolveAdaptive(xa, p.B, reduction); err != nil {
				errs <- err
			} else if got < reduction {
				t.Errorf("goroutine %d: SolveAdaptive reduced %.3g, want ≥ %.3g", g, got, reduction)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestConcurrentSolvesWithoutFactorCache(t *testing.T) {
	s := tuneShared(t)
	// Same tuned tables on a fresh workspace with the factor cache off: the
	// re-factor-every-call path must also be concurrency-clean.
	s2 := &Solver{tuned: s.tuned, ws: mg.NewWorkspace(nil)}
	const goroutines = 8
	const target = 1e3
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := NewProblem(65, Unbiased, int64(200+g))
			Reference(p)
			x := p.NewState()
			if err := s2.Solve(x, p.B, target); err != nil {
				t.Error(err)
				return
			}
			if got := p.AccuracyOf(x); got < target*0.1 {
				t.Errorf("goroutine %d: achieved %.3g, want ≥ %.3g", g, got, target*0.1)
			}
		}(g)
	}
	wg.Wait()
}

func TestSolveBatch(t *testing.T) {
	s := tuneShared(t)
	const target = 1e5
	probs := make([]*Problem, 16)
	batch := make([]BatchProblem, len(probs))
	for i := range probs {
		probs[i] = NewProblem(65, Unbiased, int64(300+i))
		Reference(probs[i])
		batch[i] = BatchProblem{X: probs[i].NewState(), B: probs[i].B}
	}
	if err := s.SolveBatch(batch, target); err != nil {
		t.Fatal(err)
	}
	for i, p := range probs {
		if got := p.AccuracyOf(batch[i].X); got < target*0.1 {
			t.Errorf("batch problem %d achieved %.3g, want ≥ %.3g", i, got, target*0.1)
		}
	}
}

func TestSolveBatchReportsPerProblemErrors(t *testing.T) {
	s := tuneShared(t)
	good := NewProblem(65, Unbiased, 7)
	Reference(good)
	oversized := NewProblem(257, Unbiased, 8) // beyond the tuned maximum
	batch := []BatchProblem{
		{X: good.NewState(), B: good.B},
		{X: oversized.NewState(), B: oversized.B},
	}
	err := s.SolveBatch(batch, 1e3)
	if err == nil {
		t.Fatal("oversized batch problem did not error")
	}
	if !strings.Contains(err.Error(), "batch problem 1") {
		t.Fatalf("error does not name the failing problem: %v", err)
	}
	// The good problem must still have been solved.
	if got := good.AccuracyOf(batch[0].X); got < 1e2 {
		t.Errorf("good batch problem achieved %.3g despite sibling failure", got)
	}
}

// TestServiceSolveBatchGoroutineBounded is the fan-out regression test: a
// 10k-problem batch must run on a worker loop sized by the admission limit,
// not spawn a goroutine per problem parked on the semaphore.
func TestServiceSolveBatchGoroutineBounded(t *testing.T) {
	s := tuneShared(t)
	sv := s.NewService(4)
	const batchSize = 10_000
	batch := make([]BatchProblem, batchSize)
	for i := range batch {
		p := NewProblem(9, Unbiased, int64(i))
		batch[i] = BatchProblem{X: p.NewState(), B: p.B}
	}

	base := runtime.NumGoroutine()
	done := make(chan error, 1)
	go func() { done <- sv.SolveBatch(batch, 1e3) }()
	peak := 0
	for {
		if g := runtime.NumGoroutine(); g > peak {
			peak = g
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			// Budget: the admission limit's worth of batch workers plus the
			// driver and sampling goroutines, with generous slack — far below
			// the 10k the old goroutine-per-problem fan-out would spawn.
			if budget := base + 50; peak > budget {
				t.Fatalf("goroutine peak %d exceeds budget %d (base %d, limit %d)",
					peak, budget, base, sv.MaxInFlight())
			}
			if got := sv.Completed(); got != batchSize {
				t.Fatalf("Completed() = %d, want %d", got, batchSize)
			}
			return
		default:
			time.Sleep(200 * time.Microsecond)
		}
	}
}

// TestSolverSolveBatchCompletedVisible: Solver.SolveBatch must route through
// the solver's persistent default service, so completions accumulate
// somewhere observable instead of dying with a throwaway service.
func TestSolverSolveBatchCompletedVisible(t *testing.T) {
	s := tuneShared(t)
	if s.DefaultService() != s.DefaultService() {
		t.Fatal("DefaultService is not stable")
	}
	// The default service is shared solver-wide, so earlier tests may have
	// accumulated counts already: assert on deltas.
	before := s.DefaultService().Metrics()
	mkBatch := func(seed int64) []BatchProblem {
		batch := make([]BatchProblem, 8)
		for i := range batch {
			p := NewProblem(17, Unbiased, seed+int64(i))
			batch[i] = BatchProblem{X: p.NewState(), B: p.B}
		}
		return batch
	}
	if err := s.SolveBatch(mkBatch(500), 1e3); err != nil {
		t.Fatal(err)
	}
	if got := s.DefaultService().Completed(); got != before.Completed+8 {
		t.Fatalf("Completed() = %d after first batch, want %d", got, before.Completed+8)
	}
	// A second batch accumulates in the same service.
	if err := s.SolveBatch(mkBatch(600), 1e3); err != nil {
		t.Fatal(err)
	}
	m := s.DefaultService().Metrics()
	if m.Completed != before.Completed+16 || m.Failed != before.Failed || m.Shed != before.Shed || m.InFlight != 0 {
		t.Fatalf("metrics after two batches = %+v, want completed %d", m, before.Completed+16)
	}
}

func TestServiceAdmission(t *testing.T) {
	s := tuneShared(t)
	sv := s.NewService(1) // fully serialized admission must still drain
	if sv.MaxInFlight() != 1 {
		t.Fatalf("MaxInFlight = %d, want 1", sv.MaxInFlight())
	}
	const n = 8
	batch := make([]BatchProblem, n)
	probs := make([]*Problem, n)
	for i := range batch {
		probs[i] = NewProblem(65, Unbiased, int64(400+i))
		Reference(probs[i])
		batch[i] = BatchProblem{X: probs[i].NewState(), B: probs[i].B}
	}
	if err := sv.SolveBatch(batch, 1e3); err != nil {
		t.Fatal(err)
	}
	if sv.Completed() != n {
		t.Fatalf("Completed() = %d, want %d", sv.Completed(), n)
	}
	for i, p := range probs {
		if got := p.AccuracyOf(batch[i].X); got < 1e2 {
			t.Errorf("service problem %d achieved %.3g", i, got)
		}
	}
}
