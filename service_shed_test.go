package pbmg

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestServiceMetricsShedSplit: the serving counters keep load-shedding
// and solve failures apart — Shed counts requests turned away at
// admission (never admitted, never run), Failed counts solves that ran
// and errored — and the Waiting gauge tracks requests blocked in
// admission.
func TestServiceMetricsShedSplit(t *testing.T) {
	s := tuneFamily(t, FamilyPoisson, 0)
	sv := s.NewService(1)
	p, err := s.NewFamilyProblem(17, Unbiased, 11)
	if err != nil {
		t.Fatal(err)
	}

	// 1. A successful solve: Admitted + Completed.
	if err := sv.Solve(p.NewState(), p.B, 1e3); err != nil {
		t.Fatal(err)
	}

	// 2. A solve that runs and errors (beyond the tuned size): Failed,
	// not Shed.
	if err := sv.Solve(NewGrid(65), NewGrid(65), 1e3); err == nil {
		t.Fatal("oversize solve succeeded")
	} else if errors.Is(err, ErrShed) {
		t.Fatalf("solve failure classified as shed: %v", err)
	}

	// 3. An already-expired context sheds before touching the semaphore,
	// even though a slot is free: Shed, not Admitted.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sv.SolveContext(expired, p.NewState(), p.B, 1e3); !errors.Is(err, ErrShed) {
		t.Fatalf("expired-context solve: err = %v, want ErrShed", err)
	}

	// 4. A request queued behind a full admission limit past its deadline:
	// Shed.
	sv.sem <- struct{}{} // occupy the only slot
	ctx, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	if err := sv.SolveContext(ctx, p.NewState(), p.B, 1e3); !errors.Is(err, ErrShed) {
		t.Fatalf("queued-past-deadline solve: err = %v, want ErrShed", err)
	}

	// 5. The Waiting gauge: a request blocked in admission is visible,
	// then admitted and completed once the slot frees.
	done := make(chan error, 1)
	go func() {
		done <- sv.SolveContext(context.Background(), p.NewState(), p.B, 1e3)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for sv.Metrics().Waiting == 0 {
		if time.Now().After(deadline) {
			t.Fatal("Waiting gauge never rose while a request was queued")
		}
		time.Sleep(time.Millisecond)
	}
	<-sv.sem // free the slot
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	m := sv.Metrics()
	want := ServiceMetrics{Admitted: 3, Completed: 2, Failed: 1, Shed: 2}
	if m != want {
		t.Fatalf("metrics = %+v, want %+v", m, want)
	}

	// Add must fold every field, Shed and Waiting included.
	var sum ServiceMetrics
	sum.Add(m)
	sum.Add(ServiceMetrics{Shed: 1, Waiting: 4, Failed: 2})
	if sum.Shed != 3 || sum.Waiting != 4 || sum.Failed != 3 || sum.Admitted != 3 {
		t.Errorf("ServiceMetrics.Add dropped fields: %+v", sum)
	}
}

// TestDefaultServiceRegisterRace: Solver.DefaultService used to pair a
// sync.Once with a direct pointer write from Registry.Register — a data
// race under concurrent use. Both paths now go through one mutex; this
// test is the -race regression for it.
func TestDefaultServiceRegisterRace(t *testing.T) {
	s, err := Tune(Options{
		MaxSize: 9, Family: FamilyPoisson,
		Machine: "intel-harpertown", Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(RegistryOptions{})
	t.Cleanup(r.Close)

	var svc *Service
	var regErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		svc, regErr = r.Register(s)
	}()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if s.DefaultService() == nil {
				t.Error("DefaultService returned nil")
			}
		}()
	}
	wg.Wait()
	if regErr != nil {
		t.Fatal(regErr)
	}
	if got := s.DefaultService(); got != svc {
		t.Fatal("registration did not leave the registry service as the default")
	}
}
