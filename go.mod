module pbmg

go 1.24
