package pbmg

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// tuneFamily tunes a small family solver on the deterministic simulated
// machine, memoizing per (family, ε) for the whole test binary: tuning is
// deterministic and the pool-less solvers are immutable and cheap to keep,
// while re-tuning under -race dominates the suite otherwise.
var (
	tunedMu  sync.Mutex
	tunedMap = map[string]*Solver{}
)

func tuneFamily(t *testing.T, f Family, eps float64) *Solver {
	t.Helper()
	key := fmt.Sprintf("%v/%g", f, eps)
	tunedMu.Lock()
	defer tunedMu.Unlock()
	if s, ok := tunedMap[key]; ok {
		return s
	}
	s, err := Tune(Options{
		MaxSize:      33,
		Family:       f,
		Epsilon:      eps,
		Distribution: Unbiased,
		Machine:      "intel-harpertown",
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	tunedMap[key] = s
	return s
}

// TestFamilySolveMeetsAccuracy: family-tuned solvers must reach their
// targets on family-matched problems, graded against a family-aware
// reference solution.
func TestFamilySolveMeetsAccuracy(t *testing.T) {
	for _, tc := range []struct {
		f   Family
		eps float64
	}{
		{FamilyAnisotropic, 0.01},
		{FamilyVarCoef, 2},
	} {
		s := tuneFamily(t, tc.f, tc.eps)
		if s.Family() != tc.f || s.Epsilon() != tc.eps {
			t.Fatalf("solver reports family %v eps %g, want %v %g",
				s.Family(), s.Epsilon(), tc.f, tc.eps)
		}
		p, err := s.NewFamilyProblem(33, Unbiased, 99)
		if err != nil {
			t.Fatal(err)
		}
		Reference(p)
		for _, target := range []float64{1e1, 1e5, 1e9} {
			x := p.NewState()
			if err := s.Solve(x, p.B, target); err != nil {
				t.Fatal(err)
			}
			if got := p.AccuracyOf(x); got < target {
				t.Errorf("%v: Solve(%g) achieved %.3g", tc.f, target, got)
			}
		}
	}
}

// TestFamilyRoundTripsThroughSaveLoad: a family-tuned configuration keeps
// its operator identity across serialization, and the reloaded solver still
// solves its family.
func TestFamilyRoundTripsThroughSaveLoad(t *testing.T) {
	s := tuneFamily(t, FamilyAnisotropic, 0.25)
	path := t.TempDir() + "/aniso.json"
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if back.Family() != FamilyAnisotropic || back.Epsilon() != 0.25 {
		t.Fatalf("loaded solver family %v eps %g", back.Family(), back.Epsilon())
	}
	p, err := back.NewFamilyProblem(17, Unbiased, 3)
	if err != nil {
		t.Fatal(err)
	}
	Reference(p)
	x := p.NewState()
	if err := back.Solve(x, p.B, 1e5); err != nil {
		t.Fatal(err)
	}
	if got := p.AccuracyOf(x); got < 1e5 {
		t.Fatalf("reloaded solver achieved %.3g, want ≥ 1e5", got)
	}
}

// TestNewFamilyProblemRejectsBadInput covers the public constructor's error
// paths.
func TestNewFamilyProblemRejectsBadInput(t *testing.T) {
	if _, err := NewFamilyProblem(33, Unbiased, 1, FamilyAnisotropic, -2); err == nil {
		t.Fatal("negative ε accepted")
	}
	if _, err := NewFamilyProblem(10, Unbiased, 1, FamilyVarCoef, 2); err == nil {
		t.Fatal("non 2^k+1 varcoef size accepted")
	}
	s := tuneFamily(t, FamilyAnisotropic, 0.25)
	if _, err := s.NewFamilyProblem(65, Unbiased, 1); err == nil {
		t.Fatal("problem beyond the tuned size accepted")
	}
}

// TestSolveBatchByteIdenticalToSequential: batching is a scheduling
// construct, not a numerical one — every solve must produce exactly the
// bits the sequential path produces, for constant and variable-coefficient
// families alike.
func TestSolveBatchByteIdenticalToSequential(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    Family
		eps  float64
	}{
		{"poisson", FamilyPoisson, 0},
		{"varcoef", FamilyVarCoef, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tuneFamily(t, tc.f, tc.eps)
			const k = 6
			const target = 1e7

			seq := make([]*Problem, k)
			seqStates := make([]*Grid, k)
			for i := range seq {
				p, err := s.NewFamilyProblem(33, Unbiased, int64(100+i))
				if err != nil {
					t.Fatal(err)
				}
				seq[i] = p
				seqStates[i] = p.NewState()
				if err := s.Solve(seqStates[i], p.B, target); err != nil {
					t.Fatal(err)
				}
			}

			batch := make([]BatchProblem, k)
			for i := range batch {
				batch[i] = BatchProblem{X: seq[i].NewState(), B: seq[i].B}
			}
			if err := s.SolveBatch(batch, target); err != nil {
				t.Fatal(err)
			}

			for i := range batch {
				sd, bd := seqStates[i].Data(), batch[i].X.Data()
				for k, v := range sd {
					if math.Float64bits(v) != math.Float64bits(bd[k]) {
						t.Fatalf("problem %d: batch result differs from sequential at %d: %x vs %x",
							i, k, math.Float64bits(v), math.Float64bits(bd[k]))
					}
				}
			}
		})
	}
}
