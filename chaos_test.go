//go:build faultinject

// Chaos suite: every injected failure mode from internal/faultinject,
// driven first in-process against the Solver/Service stack and then
// against a real mgserved process built with the faultinject tag. The
// scenarios solve at n=33 on purpose — the shared tuned table's n≤17
// plans are pure direct solves that execute no cycles, no SOR sweeps, and
// no pool checkouts, so none of the solver fault points would fire.
package pbmg

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"pbmg/internal/faultinject"
)

// armFaults arms a spec with guaranteed cleanup; the registry is process
// global, so a leaked fault would poison every later test in the binary.
func armFaults(t *testing.T, spec string) {
	t.Helper()
	faultinject.Clear()
	t.Cleanup(faultinject.Clear)
	if err := faultinject.ArmSpec(spec); err != nil {
		t.Fatal(err)
	}
}

func chaosProblem(t *testing.T, s *Solver, seed int64) *Problem {
	t.Helper()
	p, err := s.NewFamilyProblem(33, Unbiased, seed)
	if err != nil {
		t.Fatal(err)
	}
	Reference(p)
	return p
}

// TestChaosSlowKernelCancellation: a delay fault stretching every SOR
// sweep makes the solve overrun its context deadline; the solve aborts
// with ErrCancelled at the next cycle checkpoint and returns all pooled
// scratch.
func TestChaosSlowKernelCancellation(t *testing.T) {
	s := tuneFamily(t, FamilyPoisson, 0)
	p := chaosProblem(t, s, 51)

	// 10ms per sweep means the first cycle alone overruns the 30ms budget;
	// accuracy 1e9 wants several cycles, so a checkpoint runs after it.
	armFaults(t, "stencil.sweep:delay,delay=10ms")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := s.SolveContext(ctx, p.NewState(), p.B, 1e9)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("slow solve under a deadline: err = %v, want ErrCancelled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("cancellation cause lost: %v", err)
	}
	assertScratchClean(t, s, "after cancelled slow solve")

	faultinject.Clear()
	assertNextSolveClean(t, s, 52)
}

// TestChaosPoolStarvation: a delay fault on every scratch-pool checkout
// slows the solve but must not break it — the answer still converges and
// the scratch ledger still balances.
func TestChaosPoolStarvation(t *testing.T) {
	s := tuneFamily(t, FamilyPoisson, 0)
	p := chaosProblem(t, s, 53)

	armFaults(t, "mg.pool.checkout:delay,delay=2ms")
	x := p.NewState()
	if err := s.SolveV(x, p.B, 1e3); err != nil {
		t.Fatalf("solve under pool starvation: %v", err)
	}
	if got := p.AccuracyOf(x); got < 1e3 {
		t.Errorf("starved solve accuracy %.3g, want ≥ 1e3", got)
	}
	assertScratchClean(t, s, "after starved solve")
}

// TestChaosNaNEscalation: a one-shot NaN poisoning of the V-cycle makes
// the float32-planned first attempt diverge; the solver escalates to
// float64 (where the spent fault no longer fires), completes, and counts
// one escalation.
func TestChaosNaNEscalation(t *testing.T) {
	s := tuneFamily(t, FamilyPoisson, 0)
	p := chaosProblem(t, s, 54)

	armFaults(t, "mg.cycle.nan:nan,count=1")
	before := s.Escalations()
	x := p.NewState()
	if err := s.SolveV(x, p.B, 1e3); err != nil {
		t.Fatalf("poisoned solve did not recover through escalation: %v", err)
	}
	if d := s.Escalations() - before; d != 1 {
		t.Errorf("escalations delta = %d, want 1", d)
	}
	if got := p.AccuracyOf(x); got < 1e3 {
		t.Errorf("escalated solve accuracy %.3g, want ≥ 1e3", got)
	}
	assertScratchClean(t, s, "after escalated solve")
}

// TestChaosServicePanic: an injected kernel panic surfaces from the
// Service as a typed PanicError, counts in the panic class, and leaves
// the service healthy for the next request.
func TestChaosServicePanic(t *testing.T) {
	s := tuneFamily(t, FamilyPoisson, 0)
	sv := newService(s, make(chan struct{}, 2), BreakerConfig{})
	p := chaosProblem(t, s, 55)

	armFaults(t, "mg.cycle:panic,count=1")
	err := sv.SolveV(p.NewState(), p.B, 1e3)
	var pe *PanicError
	if !errors.As(err, &pe) || !errors.Is(err, ErrPanicked) {
		t.Fatalf("injected panic: err = %v, want PanicError", err)
	}
	if !strings.Contains(pe.Error(), "injected panic") {
		t.Errorf("panic error %q lost the injected payload", pe.Error())
	}
	m := sv.Metrics()
	if m.Panicked != 1 || m.Failed != 1 {
		t.Errorf("metrics after injected panic = %+v", m)
	}
	assertScratchClean(t, s, "after injected panic")

	x := p.NewState()
	if err := sv.SolveV(x, p.B, 1e3); err != nil {
		t.Fatalf("solve after contained panic: %v", err)
	}
	if got := p.AccuracyOf(x); got < 1e3 {
		t.Errorf("post-panic accuracy %.3g, want ≥ 1e3", got)
	}
}

// TestMGServedChaos drives the real daemon, built with the faultinject
// tag, through a kernel panic pre-armed via PBMG_FAULTS and a reload
// failure armed over POST /-/fault: the poisoned solve answers 500, the
// daemon survives to serve the next request, the broken reload leaves the
// catalog intact, and SIGTERM still drains cleanly.
func TestMGServedChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "mgserved")
	cmd := exec.Command("go", "build", "-tags", "faultinject", "-o", bin, "./cmd/mgserved")
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build mgserved -tags faultinject: %v\n%s", err, out)
	}

	tables := filepath.Join(dir, "tables")
	if err := os.Mkdir(tables, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := tuneFamily(t, FamilyPoisson, 0).Save(filepath.Join(tables, "poisson.json")); err != nil {
		t.Fatal(err)
	}

	srv := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-configdir", tables, "-workers", "1",
		"-drain-timeout", "30s")
	srv.Env = append(os.Environ(), "PBMG_FAULTS=mg.cycle:panic,count=1")
	stderr, err := srv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	var addr string
	var logTail strings.Builder
	logLines := make(chan struct{})
	scanner := bufio.NewScanner(stderr)
	for scanner.Scan() {
		line := scanner.Text()
		if _, a, ok := strings.Cut(line, "listening on "); ok {
			addr = a
			break
		}
	}
	if addr == "" {
		t.Fatal("mgserved never reported its listen address")
	}
	go func() {
		defer close(logLines)
		for scanner.Scan() {
			logTail.WriteString(scanner.Text())
			logTail.WriteString("\n")
		}
	}()
	base := "http://" + addr

	solve := func(seed int64) int {
		t.Helper()
		p := chaosProblem(t, tuneFamily(t, FamilyPoisson, 0), seed)
		body, err := json.Marshal(map[string]any{
			"family": "poisson", "n": 33, "accuracy": 1e3,
			"b": p.B.Data(), "x": p.NewState().Data(),
		})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("solve: %v", err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// The PBMG_FAULTS-armed panic kills the first solve with a 500 — and
	// only that solve: the daemon survives and the next request succeeds.
	if code := solve(61); code != http.StatusInternalServerError {
		t.Fatalf("pre-armed panic solve = %d, want 500", code)
	}
	if code := solve(62); code != http.StatusOK {
		t.Fatalf("solve after contained panic = %d, want 200", code)
	}

	// Readiness survived the contained panic.
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after contained panic = %d, want 200", resp.StatusCode)
	}

	// Arm a reload failure over the chaos endpoint: the reload answers 409
	// and the old catalog keeps serving; with the fault spent, the next
	// reload lands.
	resp, err = http.Post(base+"/-/fault", "text/plain",
		strings.NewReader("serve.reload:error,count=1"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("arm fault = %d", resp.StatusCode)
	}
	resp, err = http.Post(base+"/-/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("broken reload = %d, want 409", resp.StatusCode)
	}
	if code := solve(63); code != http.StatusOK {
		t.Fatalf("solve on surviving catalog = %d, want 200", code)
	}
	resp, err = http.Post(base+"/-/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload after fault spent = %d, want 200", resp.StatusCode)
	}

	// After all that chaos, SIGTERM still drains cleanly.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	<-logLines
	if err := srv.Wait(); err != nil {
		t.Fatalf("mgserved exited uncleanly after SIGTERM: %v\n%s", err, logTail.String())
	}
	if !strings.Contains(logTail.String(), "drained cleanly") {
		t.Fatalf("drain not logged:\n%s", logTail.String())
	}
}
