package pbmg

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIRoundTrip builds the mgtune and mgsolve binaries and exercises the
// tune-once / solve-many workflow end to end: train a tiny configuration,
// solve with it, and render the tuned cycle — the PetaBricks configuration-
// file lifecycle of §3.2.1.
func TestCLIRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	build := func(name string) string {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
		return bin
	}
	mgtune := build("mgtune")
	mgsolve := build("mgsolve")
	mgserve := build("mgserve")

	cfg := filepath.Join(dir, "tuned.json")
	out, err := exec.Command(mgtune,
		"-size", "33", "-machine", "intel-harpertown", "-workers", "1",
		"-o", cfg, "-q").CombinedOutput()
	if err != nil {
		t.Fatalf("mgtune: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "tuned for intel-harpertown up to N=33") {
		t.Fatalf("unexpected mgtune output: %s", out)
	}
	if _, err := os.Stat(cfg); err != nil {
		t.Fatalf("config not written: %v", err)
	}

	out, err = exec.Command(mgsolve,
		"-config", cfg, "-size", "33", "-acc", "1e5", "-workers", "1",
		"-cycle", "-v").CombinedOutput()
	if err != nil {
		t.Fatalf("mgsolve: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"tuned cycle shape", "tuned call tree", "requested accuracy 1e+05", "achieved"} {
		if !strings.Contains(text, want) {
			t.Fatalf("mgsolve output missing %q:\n%s", want, text)
		}
	}

	// Oversized request must fail cleanly.
	if out, err := exec.Command(mgsolve, "-config", cfg, "-size", "65", "-workers", "1").CombinedOutput(); err == nil {
		t.Fatalf("mgsolve accepted a grid beyond the tuned size:\n%s", out)
	}

	// Serve the same tuned configuration to concurrent clients.
	out, err = exec.Command(mgserve,
		"-config", cfg, "-size", "33", "-acc", "1e5", "-workers", "1",
		"-clients", "4", "-requests", "40").CombinedOutput()
	if err != nil {
		t.Fatalf("mgserve: %v\n%s", err, out)
	}
	text = string(out)
	for _, want := range []string{"solves/sec", "latency p50", "spot-check accuracy", "family poisson"} {
		if !strings.Contains(text, want) {
			t.Fatalf("mgserve output missing %q:\n%s", want, text)
		}
	}

	// --- operator families: tune an anisotropic configuration and solve it.
	anisoCfg := filepath.Join(dir, "aniso.json")
	out, err = exec.Command(mgtune,
		"-size", "17", "-family", "aniso", "-epsilon", "0.25",
		"-machine", "intel-harpertown", "-workers", "1",
		"-o", anisoCfg, "-q").CombinedOutput()
	if err != nil {
		t.Fatalf("mgtune -family aniso: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "family aniso, eps 0.25") {
		t.Fatalf("mgtune output missing family provenance: %s", out)
	}

	out, err = exec.Command(mgsolve,
		"-config", anisoCfg, "-size", "17", "-acc", "1e5", "-workers", "1",
		"-family", "aniso", "-epsilon", "0.25").CombinedOutput()
	if err != nil {
		t.Fatalf("mgsolve aniso: %v\n%s", err, out)
	}
	text = string(out)
	for _, want := range []string{"family aniso", "eps 0.25", "achieved"} {
		if !strings.Contains(text, want) {
			t.Fatalf("mgsolve aniso output missing %q:\n%s", want, text)
		}
	}

	// --- 3D Poisson: tune the poisson3d family up to level 5 (N=33) and
	// solve at the tuned size — the dimension-generic path end to end.
	cfg3d := filepath.Join(dir, "poisson3d.json")
	out, err = exec.Command(mgtune,
		"-size", "33", "-family", "poisson3d",
		"-machine", "intel-harpertown", "-workers", "1",
		"-o", cfg3d, "-q").CombinedOutput()
	if err != nil {
		t.Fatalf("mgtune -family poisson3d: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "family poisson3d") {
		t.Fatalf("mgtune output missing 3D family provenance: %s", out)
	}

	out, err = exec.Command(mgsolve,
		"-config", cfg3d, "-size", "33", "-acc", "1e5", "-workers", "1",
		"-family", "poisson3d", "-cycle").CombinedOutput()
	if err != nil {
		t.Fatalf("mgsolve poisson3d: %v\n%s", err, out)
	}
	text = string(out)
	for _, want := range []string{"family poisson3d", "tuned cycle shape", "achieved"} {
		if !strings.Contains(text, want) {
			t.Fatalf("mgsolve poisson3d output missing %q:\n%s", want, text)
		}
	}

	// --- multi-family registry: serve every tuned configuration written
	// above (poisson, aniso:0.25, poisson3d) from ONE process, mixed
	// traffic, per-family metrics.
	out, err = exec.Command(mgserve,
		"-configdir", dir, "-size", "17", "-size3d", "17", "-workers", "1",
		"-clients", "3", "-requests", "30", "-acc", "1e3").CombinedOutput()
	if err != nil {
		t.Fatalf("mgserve -configdir: %v\n%s", err, out)
	}
	text = string(out)
	for _, want := range []string{
		"registry serving 3 families", "aniso:0.25", "poisson3d",
		"unroutable=0", "spot-check poisson3d",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("mgserve registry output missing %q:\n%s", want, text)
		}
	}

	// In-process multi-family tuning: -families without -configdir.
	out, err = exec.Command(mgserve,
		"-families", "poisson,poisson3d", "-size", "17", "-size3d", "9",
		"-workers", "1", "-clients", "2", "-requests", "8", "-acc", "1e3").CombinedOutput()
	if err != nil {
		t.Fatalf("mgserve -families: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "registry serving 2 families") {
		t.Fatalf("mgserve -families output:\n%s", out)
	}

	// Bad-input error paths: each must exit non-zero with a telling message.
	for _, tc := range []struct {
		name    string
		cmd     *exec.Cmd
		wantErr string
	}{
		{"family mismatch",
			exec.Command(mgsolve, "-config", anisoCfg, "-size", "17", "-family", "poisson"),
			"tuned for family aniso"},
		{"3D family mismatch",
			exec.Command(mgsolve, "-config", cfg3d, "-size", "33", "-family", "poisson"),
			"tuned for family poisson3d"},
		{"unknown family",
			exec.Command(mgsolve, "-config", anisoCfg, "-size", "17", "-family", "helmholtz"),
			"unknown operator family"},
		{"epsilon mismatch",
			exec.Command(mgsolve, "-config", anisoCfg, "-size", "17", "-family", "aniso", "-epsilon", "0.5"),
			"tuned for eps 0.25"},
		{"unknown family at tune time",
			exec.Command(mgtune, "-size", "17", "-family", "bogus", "-machine", "intel-harpertown", "-q"),
			"unknown operator family"},
		{"negative epsilon at tune time",
			exec.Command(mgtune, "-size", "17", "-family", "aniso", "-epsilon", "-1", "-machine", "intel-harpertown", "-q"),
			"epsilon must be positive"},
		{"registry family miss",
			exec.Command(mgserve, "-configdir", dir, "-families", "varcoef", "-requests", "4", "-workers", "1"),
			"does not serve family"},
		{"registry eps mismatch",
			exec.Command(mgserve, "-configdir", dir, "-families", "aniso:0.5", "-requests", "4", "-workers", "1"),
			"serves family aniso at eps 0.25"},
		{"config combined with configdir",
			exec.Command(mgserve, "-config", anisoCfg, "-configdir", dir, "-requests", "4"),
			"cannot be combined"},
	} {
		out, err := tc.cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("%s: command succeeded, want failure:\n%s", tc.name, out)
		}
		if !strings.Contains(string(out), tc.wantErr) {
			t.Fatalf("%s: error output missing %q:\n%s", tc.name, tc.wantErr, out)
		}
	}
}
