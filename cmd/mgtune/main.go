// Command mgtune runs the autotuner and writes a tuned configuration file,
// the analogue of PetaBricks' dynamic-tuning mode (§3.2.1): tune once per
// machine, then reuse the configuration with mgsolve.
//
// Usage:
//
//	mgtune -size 257 -dist unbiased -o tuned.json
//	mgtune -size 513 -machine sun-niagara -dist biased -o niagara.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"pbmg"
)

func main() {
	size := flag.Int("size", 257, "finest grid side (must be 2^k+1)")
	family := flag.String("family", "poisson", "operator family: poisson, aniso, varcoef, or poisson3d")
	epsilon := flag.Float64("epsilon", 0, "family parameter: anisotropy ε (aniso) or coefficient contrast σ (varcoef); 0 selects the family default")
	dist := flag.String("dist", "unbiased", "training distribution: unbiased, biased, or point-sources")
	machine := flag.String("machine", "", "simulated machine to tune for (intel-harpertown, amd-barcelona, sun-niagara); empty tunes the host by wall clock")
	workers := flag.Int("workers", runtime.NumCPU(), "worker threads for parallel kernels")
	seed := flag.Int64("seed", 1, "training data seed")
	out := flag.String("o", "tuned.json", "output configuration path")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	d, err := parseDist(*dist)
	if err != nil {
		fatal(err)
	}
	f, err := pbmg.ParseFamily(*family)
	if err != nil {
		fatal(err)
	}
	if *epsilon < 0 {
		fatal(fmt.Errorf("epsilon must be positive, got %g", *epsilon))
	}
	opts := pbmg.Options{
		MaxSize:      *size,
		Family:       f,
		Epsilon:      *epsilon,
		Distribution: d,
		Machine:      *machine,
		Workers:      *workers,
		Seed:         *seed,
	}
	if !*quiet {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "mgtune: "+format+"\n", args...)
		}
	}
	solver, err := pbmg.Tune(opts)
	if err != nil {
		fatal(err)
	}
	defer solver.Close()
	if err := solver.Save(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("tuned for %s up to N=%d (family %s, eps %g); configuration written to %s\n",
		solver.Machine(), solver.MaxSize(), solver.Family(), solver.Epsilon(), *out)
}

func parseDist(s string) (pbmg.Distribution, error) {
	switch s {
	case "unbiased":
		return pbmg.Unbiased, nil
	case "biased":
		return pbmg.Biased, nil
	case "point-sources":
		return pbmg.PointSources, nil
	default:
		return 0, fmt.Errorf("unknown distribution %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mgtune:", err)
	os.Exit(1)
}
