// Command mgbench regenerates the paper's evaluation tables and figures
// (§4). Each experiment prints an aligned table; "-exp all" runs the whole
// evaluation in order. Wall-clock experiments (complexity, fig6, fig7,
// fig9) measure the host machine; the architecture studies (fig10–fig13,
// fig14, crosstrain) price deterministic operation traces under the three
// simulated testbed models.
//
// Usage:
//
//	mgbench -exp fig6 -level 9
//	mgbench -exp fig10
//	mgbench -exp all -level 8 > results.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"pbmg/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all",
		"experiment: complexity, fig6, fig7 (includes fig8), fig9, fig10, fig11, fig12, fig13, fig14, fig4, fig5, crosstrain, ablation-smoother, ablation-ladder, ablation-pareto, baseline, serve, kernels, http, or all")
	level := flag.Int("level", 8, "finest multigrid level (grid side 2^k+1)")
	workers := flag.Int("workers", runtime.NumCPU(), "worker threads for wall-clock experiments")
	seed := flag.Int64("seed", 20090101, "training/test seed")
	family := flag.String("family", "poisson", "operator family for -exp baseline (poisson, aniso, varcoef, poisson3d)")
	epsilon := flag.Float64("epsilon", 0, "family parameter for -exp baseline (0: family default)")
	families := flag.String("families", "poisson,aniso,poisson3d", "family[:eps] list served by -exp serve")
	clients := flag.Int("clients", 1000, "concurrent HTTP connections for -exp http")
	jsonOut := flag.Bool("json", false, "with -exp baseline, serve, kernels, or http, also write BENCH_<family>.json / BENCH_serve.json / BENCH_kernels.json / BENCH_http.json for per-PR perf tracking")
	noFuse := flag.Bool("nofuse", false, "with -exp baseline, disable the fused cycle kernels (measures the pre-fusion pass structure)")
	out := flag.String("out", "", "with -exp baseline -json, write the report to this path instead of BENCH_<family>.json")
	gate := flag.Bool("gate", false, "with -exp kernels, fail if any fused kernel is >15% slower than its unfused oracle (same-machine fusion regression gate)")
	compare := flag.String("compare", "",
		"regression gate: compare this old report JSON (baseline or kernels format) against the new report given as the positional argument; cells in only one file are listed as new/removed; exit nonzero if any matched cell slowed >15% (usage: mgbench -compare old.json new.json)")
	writeAllow := flag.Bool("write", false, "with -exp escapes, regenerate ESCAPES.allow from the current compiler output instead of gating against it")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	var logf func(format string, args ...any)
	if !*quiet {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "mgbench: "+format+"\n", args...)
		}
	}

	if *compare != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "mgbench: -compare needs exactly one positional argument (usage: mgbench -compare old.json new.json)")
			os.Exit(2)
		}
		if err := runCompare(*compare, flag.Arg(0)); err != nil {
			fmt.Fprintln(os.Stderr, "mgbench:", err)
			os.Exit(1)
		}
		return
	}

	if *exp == "baseline" {
		if err := runBaseline(*family, *epsilon, *level, *workers, *seed, *jsonOut, *noFuse, *out, logf); err != nil {
			fmt.Fprintln(os.Stderr, "mgbench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "kernels" {
		if err := runKernels(*workers, *seed, *jsonOut, *gate, logf); err != nil {
			fmt.Fprintln(os.Stderr, "mgbench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "serve" {
		if err := runServe(*families, *level, *workers, *seed, *jsonOut, logf); err != nil {
			fmt.Fprintln(os.Stderr, "mgbench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "escapes" {
		if err := runEscapes(*writeAllow, logf); err != nil {
			fmt.Fprintln(os.Stderr, "mgbench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "http" {
		if err := runHTTP(*clients, *workers, *seed, *jsonOut, logf); err != nil {
			fmt.Fprintln(os.Stderr, "mgbench:", err)
			os.Exit(1)
		}
		return
	}

	o := experiments.Opts{MaxLevel: *level, Workers: *workers, Seed: *seed, Logf: logf}
	r := experiments.NewRunner(o)
	defer r.Close()

	if err := run(r, *exp); err != nil {
		fmt.Fprintln(os.Stderr, "mgbench:", err)
		os.Exit(1)
	}
}

func run(r *experiments.Runner, exp string) error {
	printTable := func(t *experiments.Table, err error) error {
		if err != nil {
			return err
		}
		fmt.Println(t.String())
		return nil
	}
	printTables := func(ts []*experiments.Table, err error) error {
		if err != nil {
			return err
		}
		for _, t := range ts {
			fmt.Println(t.String())
		}
		return nil
	}
	printText := func(s string, err error) error {
		if err != nil {
			return err
		}
		fmt.Println(s)
		return nil
	}

	switch exp {
	case "complexity":
		return printTable(r.Complexity())
	case "fig6":
		return printTable(r.Fig6())
	case "fig7", "fig8":
		abs, rel, err := r.Fig7and8()
		if err != nil {
			return err
		}
		fmt.Println(abs.String())
		fmt.Println(rel.String())
		return nil
	case "fig9":
		return printTable(r.Fig9(runtime.NumCPU()))
	case "fig10":
		return printTables(r.Fig10())
	case "fig11":
		return printTables(r.Fig11())
	case "fig12":
		return printTables(r.Fig12())
	case "fig13":
		return printTables(r.Fig13())
	case "fig14":
		return printText(r.Fig14())
	case "fig4":
		return printText(r.Fig4())
	case "fig5":
		return printText(r.Fig5(0)) // unbiased
	case "crosstrain":
		return printTable(r.CrossTrain())
	case "ablation-smoother":
		return printTable(r.SmootherAblation())
	case "ablation-ladder":
		return printTable(r.LadderAblation())
	case "ablation-pareto":
		return printTable(r.ParetoAblation())
	case "cluster":
		return printTable(r.ClusterLayout())
	case "all":
		for _, e := range []string{
			"complexity", "fig4", "fig5", "fig6", "fig7", "fig9",
			"fig10", "fig11", "fig12", "fig13", "fig14", "crosstrain",
			"ablation-smoother", "ablation-ladder", "ablation-pareto", "cluster",
		} {
			if err := run(r, e); err != nil {
				return fmt.Errorf("%s: %w", e, err)
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}
