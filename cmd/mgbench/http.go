package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"pbmg"
	"pbmg/internal/mixload"
	"pbmg/serve"
)

// The http experiment benchmarks the serving FRONT END: the same mixed
// 2D+3D workload is driven over HTTP at -clients concurrent connections
// twice — once through the single global admission limit, once with
// per-family quotas subdividing the same total concurrency — and the
// per-family latency distributions land in BENCH_http.json. The point the
// quotas exist to prove: under the global limit a burst of expensive 3D
// solves occupies every slot and the cheap 2D traffic queues behind it
// (the ~14× p99/p50 ratio in BENCH_serve.json), while with quotas the 3D
// family can hold at most its own slots, so the run FAILS unless the 2D
// p99 with quotas beats the 2D p99 under the global limit.

const (
	http2DSize  = 33  // 2D request side (the cheap family)
	http3DSize  = 17  // 3D request side (the expensive family)
	httpAcc     = 1e5 // per-request accuracy
	httpLimit   = 8   // total concurrency, both modes
	http2DQuota = 6   // quota mode: 2D slots
	http3DQuota = 2   // quota mode: 3D slots (the burst cap)
	httpPerConn = 2   // requests per connection
)

// httpFamilyCell is one family's latency distribution in one mode.
type httpFamilyCell struct {
	Family       string  `json:"family"`
	Dim          int     `json:"dim"`
	N            int     `json:"n"`
	Requests     int     `json:"requests"`
	Shed         int64   `json:"shed"`
	SolvesPerSec float64 `json:"solvesPerSec"`
	P50NS        int64   `json:"p50Ns"`
	P90NS        int64   `json:"p90Ns"`
	P99NS        int64   `json:"p99Ns"`
	MaxNS        int64   `json:"maxNs"`
}

// httpModeReport is one admission discipline's measurement.
type httpModeReport struct {
	// Mode is "global" (one shared limit) or "quota" (per-family).
	Mode         string           `json:"mode"`
	MaxInFlight  int              `json:"maxInFlight"`
	Quotas       map[string]int   `json:"quotas,omitempty"`
	WallNS       int64            `json:"wallNs"`
	SolvesPerSec float64          `json:"solvesPerSec"`
	Shed         int64            `json:"shed"`
	Families     []httpFamilyCell `json:"families"`
}

// httpReport is the machine-readable BENCH_http.json.
type httpReport struct {
	Clients     int              `json:"clients"`
	RequestsPer int              `json:"requestsPerClient"`
	Acc         float64          `json:"acc"`
	Workers     int              `json:"workers"`
	Modes       []httpModeReport `json:"modes"`
	// P99Improve2D is global-mode 2D p99 divided by quota-mode 2D p99 —
	// the starvation fix, > 1 required.
	P99Improve2D float64 `json:"p99Improve2D"`
	Machine      string  `json:"machine"`
	GoOS         string  `json:"goos"`
	GoArch       string  `json:"goarch"`
}

// runHTTP tunes a 2D+3D catalog, serves it over HTTP, and measures the
// mixed workload under both admission disciplines.
func runHTTP(clients, workers int, seed int64, writeJSON bool, logf func(string, ...any)) error {
	dir, err := os.MkdirTemp("", "mgbench-http-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	for _, tc := range []struct {
		family pbmg.Family
		size   int
		file   string
	}{
		{pbmg.FamilyPoisson, http2DSize, "00-poisson.json"},
		{pbmg.FamilyPoisson3D, http3DSize, "01-poisson3d.json"},
	} {
		if logf != nil {
			logf("http: tuning %s for N=%d", tc.family, tc.size)
		}
		s, err := pbmg.Tune(pbmg.Options{
			MaxSize: tc.size, Family: tc.family,
			Machine: "intel-harpertown", Workers: workers, Seed: seed, Logf: logf,
		})
		if err != nil {
			return err
		}
		err = s.Save(filepath.Join(dir, tc.file))
		s.Close()
		if err != nil {
			return err
		}
	}

	keys := []pbmg.ServeKey{
		{Family: pbmg.FamilyPoisson, Dim: 2},
		{Family: pbmg.FamilyPoisson3D, Dim: 3},
	}
	reqN := []int{http2DSize, http3DSize}
	quotas := map[string]int{"poisson": http2DQuota, "poisson3d": http3DQuota}

	rep := httpReport{
		Clients:     clients,
		RequestsPer: httpPerConn,
		Acc:         httpAcc,
		Workers:     workers,
		Machine:     "intel-harpertown",
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
	}
	for _, mode := range []struct {
		name   string
		quotas map[string]int
	}{
		{"global", nil},
		{"quota", quotas},
	} {
		cfg := serve.Config{
			Dir:         dir,
			Workers:     workers,
			MaxInFlight: httpLimit,
			Quotas:      mode.quotas,
			// The benchmark measures queueing under each discipline, not
			// shedding: queues deep enough for the whole fan-out and a wait
			// bound past any sane run length.
			QueueDepth: 4 * clients,
			MaxWait:    5 * time.Minute,
		}
		if logf != nil {
			logf("http: %s mode, %d connections × %d requests", mode.name, clients, httpPerConn)
		}
		mr, err := runHTTPMode(cfg, keys, reqN, clients, seed)
		if err != nil {
			return fmt.Errorf("http %s mode: %w", mode.name, err)
		}
		mr.Mode = mode.name
		mr.Quotas = mode.quotas
		rep.Modes = append(rep.Modes, *mr)
	}

	fmt.Printf("http: %d connections, %d requests each, ≤%d solves in flight\n",
		clients, httpPerConn, httpLimit)
	fmt.Printf("%-8s %-14s %6s %8s %6s %12s %12s %12s %12s\n",
		"mode", "family", "N", "reqs", "shed", "p50", "p90", "p99", "solves/s")
	for _, m := range rep.Modes {
		for _, c := range m.Families {
			fmt.Printf("%-8s %-14s %6d %8d %6d %12v %12v %12v %12.1f\n",
				m.Mode, c.Family, c.N, c.Requests, c.Shed,
				time.Duration(c.P50NS), time.Duration(c.P90NS), time.Duration(c.P99NS), c.SolvesPerSec)
		}
	}

	p99Global := find2DP99(rep.Modes[0])
	p99Quota := find2DP99(rep.Modes[1])
	if p99Quota > 0 {
		rep.P99Improve2D = float64(p99Global) / float64(p99Quota)
	}
	fmt.Printf("2D p99: global %v → quota %v (%.2fx)\n",
		time.Duration(p99Global), time.Duration(p99Quota), rep.P99Improve2D)

	if writeJSON {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile("BENCH_http.json", append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote BENCH_http.json")
	}

	// The starvation gate: per-family quotas exist so a 3D burst cannot
	// starve 2D traffic. If they do not strictly improve the 2D p99 over
	// the single global limit, the front end has regressed.
	if p99Quota >= p99Global {
		return fmt.Errorf("http: 2D p99 with quotas (%v) is not better than under the global limit (%v)",
			time.Duration(p99Quota), time.Duration(p99Global))
	}
	return nil
}

func find2DP99(m httpModeReport) int64 {
	for _, c := range m.Families {
		if c.Dim == 2 {
			return c.P99NS
		}
	}
	return 0
}

// runHTTPMode serves the catalog under one admission configuration,
// drives the workload over real sockets, and drains the server.
func runHTTPMode(cfg serve.Config, keys []pbmg.ServeKey, reqN []int, clients int, seed int64) (*httpModeReport, error) {
	srv, err := serve.New(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()

	res, err := mixload.Run(mixload.Options{
		URL:      base,
		Keys:     keys,
		ReqN:     reqN,
		Clients:  clients,
		Requests: clients * httpPerConn,
		Acc:      httpAcc,
		Dist:     pbmg.Unbiased,
		Seed:     seed,
	})
	if err != nil {
		hs.Close()
		srv.Close()
		return nil, err
	}

	cl := &serve.Client{BaseURL: base}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	metrics, err := cl.Metrics(ctx)
	if err != nil {
		hs.Close()
		srv.Close()
		return nil, err
	}

	// Graceful drain, the same sequence mgserved runs on SIGTERM.
	srv.BeginDrain()
	if err := hs.Shutdown(ctx); err != nil {
		srv.Close()
		return nil, err
	}
	if err := srv.Drain(ctx); err != nil {
		srv.Close()
		return nil, err
	}
	srv.Close()

	mr := &httpModeReport{
		MaxInFlight:  metrics.GlobalMaxInFlight,
		WallNS:       res.Elapsed.Nanoseconds(),
		SolvesPerSec: float64(len(res.All)) / res.Elapsed.Seconds(),
		Shed:         res.Shed,
	}
	for fi, key := range keys {
		ls := res.PerFamily[fi]
		cell := httpFamilyCell{
			Family:       key.Family.String(),
			Dim:          key.Dim,
			N:            reqN[fi],
			Requests:     len(ls),
			SolvesPerSec: float64(len(ls)) / res.Elapsed.Seconds(),
			P50NS:        mixload.Percentile(ls, 0.50).Nanoseconds(),
			P90NS:        mixload.Percentile(ls, 0.90).Nanoseconds(),
			P99NS:        mixload.Percentile(ls, 0.99).Nanoseconds(),
		}
		if len(ls) > 0 {
			cell.MaxNS = ls[len(ls)-1].Nanoseconds()
		}
		for _, fs := range metrics.Families {
			if fs.Family == key.Family.String() {
				cell.Shed = fs.Shed + fs.ShedQueueFull + fs.ShedDeadline
			}
		}
		mr.Families = append(mr.Families, cell)
	}
	return mr, nil
}
