package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"pbmg"
	"pbmg/internal/grid"
	"pbmg/internal/mixload"
)

// The serve experiment is the per-PR serving-path tracker: it builds a
// multi-family Registry on the deterministic harpertown cost model (so the
// tuned tables are reproducible), then wall-clock measures a mixed workload
// — concurrent clients issuing requests round-robin across the served
// families through the shared admission limit. With -json the result also
// lands in BENCH_serve.json so successive PRs can diff the serving
// trajectory; the per-family request counts are deterministic, the wall
// times are the host's.

// serveLevelCap bounds the 2D request size of the serve benchmark (N=65):
// the point is routing/admission overhead and mixed-family cache behavior,
// not big-grid kernels, which BENCH_<family>.json already tracks.
const serveLevelCap = 6

// serve3DSize is the 3D request side of the benchmark.
const serve3DSize = 17

// serveFamilyCell is one family's share of the mixed workload.
type serveFamilyCell struct {
	Family       string  `json:"family"`
	Eps          float64 `json:"eps,omitempty"`
	Dim          int     `json:"dim"`
	N            int     `json:"n"`
	Requests     int     `json:"requests"`
	SolvesPerSec float64 `json:"solvesPerSec"`
	P50NS        int64   `json:"p50Ns"`
	P90NS        int64   `json:"p90Ns"`
	P99NS        int64   `json:"p99Ns"`
	MaxNS        int64   `json:"maxNs"`
}

// serveReport is the machine-readable mixed-workload baseline.
type serveReport struct {
	Families     []serveFamilyCell `json:"families"`
	Clients      int               `json:"clients"`
	Requests     int               `json:"requests"`
	MaxInFlight  int               `json:"maxInFlight"`
	Workers      int               `json:"workers"`
	Acc          float64           `json:"acc"`
	WallNS       int64             `json:"wallNs"`
	SolvesPerSec float64           `json:"solvesPerSec"`
	// Steals is the shared worker pool's successful-steal count across the
	// run — scheduler visibility (0 for serial runs).
	Steals  int64  `json:"steals"`
	Machine string `json:"machine"`
	GoOS    string `json:"goos"`
	GoArch  string `json:"goarch"`
}

// runServe tunes a registry for the requested families and drives the mixed
// workload, optionally writing BENCH_serve.json.
func runServe(familiesSpec string, level, workers int, seed int64, writeJSON bool, logf func(string, ...any)) error {
	keys, err := pbmg.ParseFamilySpecs(familiesSpec)
	if err != nil {
		return err
	}
	if level > serveLevelCap {
		level = serveLevelCap
	}
	n2 := grid.SizeOfLevel(level)

	r := pbmg.NewRegistry(pbmg.RegistryOptions{Workers: workers})
	defer r.Close()
	for _, k := range keys {
		size := n2
		if k.Dim == 3 {
			size = serve3DSize
		}
		if logf != nil {
			logf("serve: tuning %s for N=%d", k, size)
		}
		if _, err := r.Tune(pbmg.Options{
			MaxSize: size, Family: k.Family, Epsilon: k.Epsilon,
			Machine: "intel-harpertown", Seed: seed, Logf: logf,
		}); err != nil {
			return err
		}
	}
	services := r.Services()

	const clients = 8
	const acc = 1e5
	const perFamilyRequests = 80
	total := perFamilyRequests * len(services)
	reqN := make([]int, len(services))
	for i, svc := range services {
		reqN[i] = n2
		if svc.Solver().Dim() == 3 {
			reqN[i] = serve3DSize
		}
	}

	// Mixed workload: clients issue requests round-robin across the families
	// from a pre-drawn per-family problem rotation, all through the shared
	// admission limit (the same internal/mixload driver mgserve's registry
	// mode uses, so the benchmark measures the served workload shape).
	res, err := mixload.Run(mixload.Options{
		Services: services,
		ReqN:     reqN,
		Clients:  clients,
		Requests: total,
		Acc:      acc,
		Dist:     pbmg.Unbiased,
		Seed:     seed,
	})
	if err != nil {
		return err
	}
	elapsed := res.Elapsed
	n := len(res.All)

	rep := serveReport{
		Clients:      clients,
		Requests:     n,
		MaxInFlight:  r.MaxInFlight(),
		Workers:      workers,
		Acc:          acc,
		WallNS:       elapsed.Nanoseconds(),
		SolvesPerSec: float64(n) / elapsed.Seconds(),
		Machine:      "intel-harpertown",
		GoOS:         runtime.GOOS,
		GoArch:       runtime.GOARCH,
	}
	fmt.Printf("serve: %d families, %d clients, ≤%d in flight, %d kernel workers\n",
		len(services), clients, r.MaxInFlight(), workers)
	fmt.Printf("%-14s %6s %8s %12s %12s %12s %12s\n", "family", "N", "reqs", "p50", "p90", "p99", "solves/s")
	for fi, svc := range services {
		ls := res.PerFamily[fi]
		cell := serveFamilyCell{
			Family:       svc.Family().String(),
			Dim:          svc.Solver().Dim(),
			N:            reqN[fi],
			Requests:     len(ls),
			SolvesPerSec: float64(len(ls)) / elapsed.Seconds(),
			P50NS:        mixload.Percentile(ls, 0.50).Nanoseconds(),
			P90NS:        mixload.Percentile(ls, 0.90).Nanoseconds(),
			P99NS:        mixload.Percentile(ls, 0.99).Nanoseconds(),
			MaxNS:        ls[len(ls)-1].Nanoseconds(),
		}
		if pbmg.FamilyHasParam(svc.Family()) {
			cell.Eps = svc.Epsilon()
		}
		rep.Families = append(rep.Families, cell)
		fmt.Printf("%-14s %6d %8d %12v %12v %12v %12.1f\n",
			svc.Key(), cell.N, cell.Requests,
			time.Duration(cell.P50NS), time.Duration(cell.P90NS), time.Duration(cell.P99NS),
			cell.SolvesPerSec)
	}
	fmt.Printf("aggregate: %d solves in %v, %.1f solves/sec\n",
		n, elapsed.Round(time.Millisecond), rep.SolvesPerSec)

	m := r.Metrics()
	if m.Aggregate.Completed != int64(n) || m.Aggregate.Failed != 0 || m.Aggregate.Shed != 0 {
		return fmt.Errorf("serve: registry metrics disagree with workload: %+v for %d solves", m.Aggregate, n)
	}
	rep.Steals = r.PoolSteals()

	if writeJSON {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile("BENCH_serve.json", append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote BENCH_serve.json")
	}
	return nil
}
