package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"pbmg/internal/grid"
	"pbmg/internal/sched"
	"pbmg/internal/stencil"
	"pbmg/internal/transfer"
)

// The kernels experiment is the fused-vs-unfused microbenchmark: for every
// operator family and a set of sizes it times the V-cycle downstroke
// (smooth → residual → restrict) and its component fusions both ways —
// the separate oracle passes the cycle used to run, and the fused
// single-pass kernels it runs now — and reports the speedup. With -json
// the result lands in BENCH_kernels.json, making the fusion win a
// committed machine-readable artifact per PR.

// kernelCell is one (family, size, kernel) fused-vs-unfused measurement.
type kernelCell struct {
	Family string  `json:"family"`
	Eps    float64 `json:"eps,omitempty"`
	Dim    int     `json:"dim"`
	N      int     `json:"n"`
	// Kernel names the fused pass under test: "downstroke" (smooth +
	// residual + restrict vs smooth + ResidualRestrict), "smooth+residual"
	// (vs SmoothResidual), "sweep+norm" (vs SweepWithNorm), "upstroke"
	// (interpolate + correct + sweep + residual norm vs
	// InterpolateCorrectSmooth + FinishSmoothWithNorm), "sorx12" (12 strided
	// SOR sweeps vs Operator.SORSweeps, which picks the unit-stride
	// color-split layout where its gate says it wins and falls back to the
	// strided loop elsewhere), and "residual-norm" (serial vs pool-parallel
	// ResidualNorm).
	Kernel string `json:"kernel"`
	// Precision is the storage precision of the measured pass: "" / "f64"
	// is the default float64 row. For "f32" rows the baseline (UnfusedNS)
	// is the float64 edition of the same fused kernel and FusedNS its
	// float32 edition, so Speedup is the pure storage-precision win at
	// equal fusion — the number the mixed-precision plans bank on.
	Precision string  `json:"precision,omitempty"`
	UnfusedNS int64   `json:"unfusedNs"`
	FusedNS   int64   `json:"fusedNs"`
	Speedup   float64 `json:"speedup"`
}

// kernelsReport is the machine-readable fused-kernel baseline.
type kernelsReport struct {
	Workers int          `json:"workers"`
	Steals  int64        `json:"steals"`
	GoOS    string       `json:"goos"`
	GoArch  string       `json:"goarch"`
	Cells   []kernelCell `json:"cells"`
}

// emitCell appends one measurement to the report and prints its row.
func emitCell(rep *kernelsReport, famName string, eps float64, dim, n int, kernel, prec string, unfused, fused time.Duration) {
	cell := kernelCell{
		Family: famName, Eps: eps, Dim: dim, N: n,
		Kernel: kernel, Precision: prec,
		UnfusedNS: unfused.Nanoseconds(), FusedNS: fused.Nanoseconds(),
		Speedup: float64(unfused.Nanoseconds()) / float64(fused.Nanoseconds()),
	}
	rep.Cells = append(rep.Cells, cell)
	label := kernel
	if prec != "" {
		label = kernel + "/" + prec
	}
	fmt.Printf("%-10s %6d %-16s %12v %12v %7.2fx\n",
		famName, n, label, unfused, fused, cell.Speedup)
}

// benchBest times op over enough repetitions to damp scheduler noise and
// returns the best observed duration. reset restores the mutated state
// outside the timed region.
func benchBest(reset, op func()) time.Duration {
	const (
		minReps   = 7
		maxReps   = 200
		timeLimit = 250 * time.Millisecond
	)
	best := time.Duration(1 << 62)
	var spent time.Duration
	for rep := 0; rep < maxReps && (rep < minReps || spent < timeLimit); rep++ {
		reset()
		start := time.Now()
		op()
		d := time.Since(start)
		spent += d
		if d < best {
			best = d
		}
	}
	return best
}

// kernelFamilies lists the benchmarked operators with their sizes: every
// 2D family at the acceptance size N=129 and one size up, and the 3D
// family at its acceptance size N=33 and one size up. precNs lists extra
// sizes measured ONLY for the precision comparison (f32 vs f64 editions of
// the fused kernels): the DRAM-resident regime where storage precision
// governs memory traffic — the regular sizes sit inside a server-class
// LLC, where f32's halved footprint buys little. The fused-vs-unfused
// rows are not emitted there: fusion trades passes for working-set width,
// a trade tuned for the cache-resident solve sizes, and gating it at a
// size the solver never runs would gate noise.
func kernelFamilies() []struct {
	name   string
	mk     func(n int) *stencil.Operator
	eps    float64
	ns     []int
	precNs []int
	dim    int
} {
	return []struct {
		name   string
		mk     func(n int) *stencil.Operator
		eps    float64
		ns     []int
		precNs []int
		dim    int
	}{
		// One family at one DRAM-resident size (N=2049: 33MB per f64 grid)
		// is enough to pin the bandwidth-bound behavior; Poisson is the
		// cheapest.
		{"poisson", func(int) *stencil.Operator { return stencil.Poisson() }, 0, []int{129, 257}, []int{2049}, 2},
		{"aniso", func(int) *stencil.Operator { return stencil.Anisotropic(0.01) }, 0.01, []int{129, 257}, nil, 2},
		{"varcoef", func(n int) *stencil.Operator { return stencil.VarCoefOperator(stencil.CoefField(n, 2), 2) }, 2, []int{129, 257}, nil, 2},
		{"poisson3d", func(int) *stencil.Operator { return stencil.Poisson3D() }, 0, []int{33, 65}, nil, 3},
	}
}

// runKernels measures every family's fused and unfused passes and
// optionally writes BENCH_kernels.json. With gate set it turns into a
// same-machine regression check: every fusion row (upstroke included) must
// keep the fused variant within the compare slowdown band of its unfused
// oracle, so a fusion that has stopped paying for itself fails CI without
// needing a stored baseline from an identical machine.
func runKernels(workers int, seed int64, writeJSON, gate bool, logf func(string, ...any)) error {
	var pool *sched.Pool
	if workers > 1 {
		pool = sched.NewPool(workers)
		defer pool.Close()
	}
	rep := kernelsReport{
		Workers: workers,
		GoOS:    runtime.GOOS,
		GoArch:  runtime.GOARCH,
	}

	fmt.Printf("fused vs unfused cycle kernels, %d workers\n", workers)
	fmt.Printf("%-10s %6s %-16s %12s %12s %8s\n", "family", "N", "kernel", "unfused", "fused", "speedup")
	for _, fam := range kernelFamilies() {
		for _, n := range fam.ns {
			op := fam.mk(n)
			h := 1.0 / float64(n-1)
			omega := op.OmegaSmooth()
			rng := rand.New(rand.NewSource(seed + int64(n)))
			x0 := grid.NewDim(fam.dim, n)
			b := grid.NewDim(fam.dim, n)
			grid.FillRandom(x0, grid.Unbiased, rng)
			grid.FillRandom(b, grid.Unbiased, rng)
			x := x0.Clone()
			r := grid.NewDim(fam.dim, n)
			cb := grid.NewDim(fam.dim, grid.Coarsen(n))
			reset := func() { x.CopyFrom(x0) }

			if logf != nil {
				logf("kernels: %s N=%d", fam.name, n)
			}

			emitPrec := func(kernel, prec string, unfused, fused time.Duration) {
				emitCell(&rep, fam.name, fam.eps, fam.dim, n, kernel, prec, unfused, fused)
			}
			emit := func(kernel string, unfused, fused time.Duration) {
				emitPrec(kernel, "", unfused, fused)
			}

			// The V-cycle downstroke: one smoothing sweep, residual,
			// restriction — as three separate passes vs the composed
			// SmoothResidualRestrict kernel the cycle actually runs.
			unfused := benchBest(reset, func() {
				op.SORSweepRB(pool, x, b, h, omega)
				op.Residual(pool, r, x, b, h)
				transfer.Restrict(pool, cb, r)
			})
			fused := benchBest(reset, func() {
				op.SmoothResidualRestrict(pool, cb, x, b, r, h, omega)
			})
			emit("downstroke", unfused, fused)
			downstrokeF64 := fused

			// The estimation-phase downstroke (no preceding smooth):
			// residual + restrict vs the fused ResidualRestrict.
			unfused = benchBest(reset, func() {
				op.Residual(pool, r, x, b, h)
				transfer.Restrict(pool, cb, r)
			})
			fused = benchBest(reset, func() {
				op.ResidualRestrict(pool, cb, x, b, h)
			})
			emit("residual+restrict", unfused, fused)

			unfused = benchBest(reset, func() {
				op.SORSweepRB(pool, x, b, h, omega)
				op.Residual(pool, r, x, b, h)
			})
			fused = benchBest(reset, func() {
				op.SmoothResidual(pool, x, b, r, h, omega)
			})
			emit("smooth+residual", unfused, fused)

			unfused = benchBest(reset, func() {
				op.SORSweepRB(pool, x, b, h, omega)
				op.ResidualNorm(pool, x, b, h)
			})
			fused = benchBest(reset, func() {
				op.SweepWithNorm(pool, x, b, h, omega)
			})
			emit("sweep+norm", unfused, fused)

			// The V-cycle upstroke as the adaptive cycle runs it at the
			// finest level: coarse correction, post-smooth, and the
			// convergence probe. Unfused that is four-plus full-grid passes
			// (interpolate into scratch, add, sweep, residual norm); fused
			// it is InterpolateCorrectSmooth (scratch-free correction + red
			// half-sweep) completed by FinishSmoothWithNorm (black
			// half-sweep with the delta-emitted norm). Both sides produce
			// bit-identical iterates and norms.
			cx := grid.NewDim(fam.dim, grid.Coarsen(n))
			grid.FillRandom(cx, grid.Unbiased, rng)
			scratch := grid.NewDim(fam.dim, n)
			unfused = benchBest(reset, func() {
				transfer.InterpolateAdd(pool, x, cx, scratch)
				op.SORSweepRB(pool, x, b, h, omega)
				op.ResidualNorm(pool, x, b, h)
			})
			fused = benchBest(reset, func() {
				op.InterpolateCorrectSmooth(pool, x, b, cx, h, omega)
				op.FinishSmoothWithNorm(pool, x, b, h, omega)
			})
			emit("upstroke", unfused, fused)
			upstrokeF64 := fused

			// A 12-sweep relaxation run: the strided loop vs SORSweeps, which
			// repacks into the unit-stride color-split layout where the gate
			// (N≥257 2D, N≥65 3D) predicts a win and falls back elsewhere, so
			// ungated sizes should read ≈1.0x.
			const splitSweeps = 12
			unfused = benchBest(reset, func() {
				for s := 0; s < splitSweeps; s++ {
					op.SORSweepRB(pool, x, b, h, omega)
				}
			})
			fused = benchBest(reset, func() {
				op.SORSweeps(pool, x, b, h, omega, splitSweeps)
			})
			emit("sorx12", unfused, fused)
			sorF64 := fused

			// The mixed-precision rows: the fused downstroke, upstroke, and
			// 12-sweep passes rerun with float32 storage against the float64
			// editions just measured — the storage-precision win the tuned
			// f32 and mixed plans bank on. In the cache-resident regime the
			// ratio reads ≈1.0x (scalar f32 arithmetic is no faster than
			// f64); once the working set spills past the LLC, halved bytes
			// mean halved traffic.
			x32 := grid.NewOf[float32](fam.dim, n)
			b32 := grid.NewOf[float32](fam.dim, n)
			r32 := grid.NewOf[float32](fam.dim, n)
			cb32 := grid.NewOf[float32](fam.dim, grid.Coarsen(n))
			cx32 := grid.NewOf[float32](fam.dim, grid.Coarsen(n))
			grid.ConvertInto(b32, b)
			grid.ConvertInto(cx32, cx)
			h32, omega32 := float32(h), float32(omega)
			reset32 := func() { grid.ConvertInto(x32, x0) }
			fused = benchBest(reset32, func() {
				stencil.OpSmoothResidualRestrict(op, pool, cb32, x32, b32, r32, h32, omega32)
			})
			emitPrec("downstroke", "f32", downstrokeF64, fused)
			fused = benchBest(reset32, func() {
				stencil.OpInterpolateCorrectSmooth(op, pool, x32, b32, cx32, h32, omega32)
				stencil.OpFinishSmoothWithNorm(op, pool, x32, b32, h32, omega32)
			})
			emitPrec("upstroke", "f32", upstrokeF64, fused)
			fused = benchBest(reset32, func() {
				stencil.OpSORSweeps(op, pool, x32, b32, h32, omega32, splitSweeps)
			})
			emitPrec("sorx12", "f32", sorF64, fused)

			// The parallel-norm satellite: serial vs pool reduction (equal on
			// one worker, informative on many).
			unfused = benchBest(func() {}, func() {
				op.ResidualNorm(nil, x, b, h)
			})
			fused = benchBest(func() {}, func() {
				op.ResidualNorm(pool, x, b, h)
			})
			emit("residual-norm", unfused, fused)
		}

	}

	// The DRAM-resident precision sizes run as a separate pass after every
	// family's gated rows: only the f32-vs-f64 rows are measured here (see
	// kernelFamilies), with the f64 fused kernel timed as the baseline of
	// each row rather than emitted as its own cell. The pass runs last
	// because its grids (~0.5GB at N=2049) must not share a heap epoch with
	// the small cache-resident measurements above — the bloated GC goal and
	// allocation layout they leave behind measurably slow the tiny fused
	// kernels (reproducibly ~2x on the 3D residual+restrict row).
	for _, fam := range kernelFamilies() {
		for _, n := range fam.precNs {
			op := fam.mk(n)
			h := 1.0 / float64(n-1)
			omega := op.OmegaSmooth()
			rng := rand.New(rand.NewSource(seed + int64(n)))
			x0 := grid.NewDim(fam.dim, n)
			b := grid.NewDim(fam.dim, n)
			grid.FillRandom(x0, grid.Unbiased, rng)
			grid.FillRandom(b, grid.Unbiased, rng)
			x := x0.Clone()
			r := grid.NewDim(fam.dim, n)
			cb := grid.NewDim(fam.dim, grid.Coarsen(n))
			cx := grid.NewDim(fam.dim, grid.Coarsen(n))
			grid.FillRandom(cx, grid.Unbiased, rng)
			reset := func() { x.CopyFrom(x0) }

			x32 := grid.NewOf[float32](fam.dim, n)
			b32 := grid.NewOf[float32](fam.dim, n)
			r32 := grid.NewOf[float32](fam.dim, n)
			cb32 := grid.NewOf[float32](fam.dim, grid.Coarsen(n))
			cx32 := grid.NewOf[float32](fam.dim, grid.Coarsen(n))
			grid.ConvertInto(b32, b)
			grid.ConvertInto(cx32, cx)
			h32, omega32 := float32(h), float32(omega)
			reset32 := func() { grid.ConvertInto(x32, x0) }

			if logf != nil {
				logf("kernels: %s N=%d (precision)", fam.name, n)
			}

			f64t := benchBest(reset, func() {
				op.SmoothResidualRestrict(pool, cb, x, b, r, h, omega)
			})
			f32t := benchBest(reset32, func() {
				stencil.OpSmoothResidualRestrict(op, pool, cb32, x32, b32, r32, h32, omega32)
			})
			emitCell(&rep, fam.name, fam.eps, fam.dim, n, "downstroke", "f32", f64t, f32t)

			f64t = benchBest(reset, func() {
				op.InterpolateCorrectSmooth(pool, x, b, cx, h, omega)
				op.FinishSmoothWithNorm(pool, x, b, h, omega)
			})
			f32t = benchBest(reset32, func() {
				stencil.OpInterpolateCorrectSmooth(op, pool, x32, b32, cx32, h32, omega32)
				stencil.OpFinishSmoothWithNorm(op, pool, x32, b32, h32, omega32)
			})
			emitCell(&rep, fam.name, fam.eps, fam.dim, n, "upstroke", "f32", f64t, f32t)

			const splitSweeps = 12
			f64t = benchBest(reset, func() {
				op.SORSweeps(pool, x, b, h, omega, splitSweeps)
			})
			f32t = benchBest(reset32, func() {
				stencil.OpSORSweeps(op, pool, x32, b32, h32, omega32, splitSweeps)
			})
			emitCell(&rep, fam.name, fam.eps, fam.dim, n, "sorx12", "f32", f64t, f32t)
		}
	}

	if pool != nil {
		rep.Steals = pool.Steals()
	}
	if gate {
		// residual-norm compares serial vs pooled (a parallelism check, not
		// a fusion) and is skipped; every other row is a fused kernel vs its
		// unfused oracle on this same machine and run.
		var failures []string
		for _, c := range rep.Cells {
			if c.Kernel == "residual-norm" {
				continue
			}
			if c.UnfusedNS < compareFloorNS && c.FusedNS < compareFloorNS {
				continue
			}
			if c.Speedup < 1/(1+compareMaxSlowdown) {
				failures = append(failures, fmt.Sprintf(
					"%s N=%d %s: fused %.2fx vs unfused (%dns -> %dns)",
					c.Family, c.N, c.Kernel, c.Speedup, c.UnfusedNS, c.FusedNS))
			}
		}
		if len(failures) > 0 {
			for _, f := range failures {
				fmt.Println("GATE FAIL: " + f)
			}
			return fmt.Errorf("kernels gate: %d fused kernels slower than their unfused oracles by >%.0f%%",
				len(failures), compareMaxSlowdown*100)
		}
		fmt.Printf("kernels gate OK: all fused kernels within %.0f%% of their unfused oracles\n",
			compareMaxSlowdown*100)
	}
	if writeJSON {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile("BENCH_kernels.json", append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote BENCH_kernels.json")
	}
	return nil
}
