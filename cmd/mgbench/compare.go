package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// The compare gate diffs two family-baseline reports (the BENCH_<family>.json
// format runBaseline writes) cell by cell and fails on wall-clock
// regressions, so CI can hold a change to "no cell got more than 15%
// slower". Cells are matched by (level, acc); op counts are also diffed and
// reported (they are machine-independent, so any drift is a table change,
// not noise).

// compareMaxSlowdown is the wallNs regression threshold: a cell may be at
// most this fraction slower in new than in old before the gate fails.
const compareMaxSlowdown = 0.15

// compareFloorNS exempts cells whose wall times are both under this floor:
// sub-100µs solves are dominated by timer and scheduler noise, and a 15%
// band around them gates nothing real.
const compareFloorNS = 100_000

// loadBenchReport reads one BENCH_<family>.json.
func loadBenchReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Cells) == 0 {
		return nil, fmt.Errorf("%s: no cells (not a baseline report?)", path)
	}
	return &rep, nil
}

// runCompare diffs oldPath against newPath and returns an error (failing the
// gate) if any matched cell slowed down by more than compareMaxSlowdown.
func runCompare(oldPath, newPath string) error {
	oldRep, err := loadBenchReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadBenchReport(newPath)
	if err != nil {
		return err
	}
	if oldRep.Family != newRep.Family {
		return fmt.Errorf("compare: family mismatch: %s (%s) vs %s (%s)",
			oldRep.Family, oldPath, newRep.Family, newPath)
	}

	type key struct {
		level int
		acc   float64
	}
	oldCells := make(map[key]benchCell, len(oldRep.Cells))
	for _, c := range oldRep.Cells {
		oldCells[key{c.Level, c.Acc}] = c
	}

	fmt.Printf("compare %s: %s -> %s (gate: ≤%.0f%% slower per cell, ≥%v floor)\n",
		oldRep.Family, oldPath, newPath, compareMaxSlowdown*100, compareFloorNS)
	fmt.Printf("%6s %10s %12s %12s %8s %8s\n", "level", "acc", "old", "new", "ratio", "sweeps")
	var regressions []string
	matched := 0
	for _, nc := range newRep.Cells {
		oc, ok := oldCells[key{nc.Level, nc.Acc}]
		if !ok {
			continue
		}
		matched++
		ratio := float64(nc.WallNS) / float64(oc.WallNS)
		sweeps := fmt.Sprintf("%d", nc.Sweeps)
		if nc.Sweeps != oc.Sweeps {
			sweeps = fmt.Sprintf("%d->%d", oc.Sweeps, nc.Sweeps)
		}
		flag := ""
		if ratio > 1+compareMaxSlowdown && (oc.WallNS >= compareFloorNS || nc.WallNS >= compareFloorNS) {
			flag = "  REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("level %d acc %.0e: %.2fx (%dns -> %dns)", nc.Level, nc.Acc, ratio, oc.WallNS, nc.WallNS))
		}
		fmt.Printf("%6d %10.0e %12d %12d %7.2fx %8s%s\n",
			nc.Level, nc.Acc, oc.WallNS, nc.WallNS, ratio, sweeps, flag)
	}
	if matched == 0 {
		return fmt.Errorf("compare: no cells in common between %s and %s", oldPath, newPath)
	}
	if len(regressions) > 0 {
		fmt.Printf("FAIL: %d of %d cells regressed >%.0f%%\n", len(regressions), matched, compareMaxSlowdown*100)
		for _, r := range regressions {
			fmt.Println("  " + r)
		}
		return fmt.Errorf("compare: %d cells slowed down more than %.0f%%", len(regressions), compareMaxSlowdown*100)
	}
	fmt.Printf("OK: %d cells within the %.0f%% gate\n", matched, compareMaxSlowdown*100)
	return nil
}
