package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// The compare gate diffs two benchmark reports cell by cell and fails on
// wall-clock regressions, so CI can hold a change to "no cell got more than
// 15% slower". Two report formats are understood, sniffed from the cells
// themselves: family baselines (the BENCH_<family>.json format runBaseline
// writes, matched by (level, acc)) and kernel reports (the
// BENCH_kernels.json format runKernels writes, matched by
// (family, n, kernel, precision) on the fused times). Cells present in only one file
// are reported as "new" or "removed" rather than failing the gate — tables
// legitimately grow and shrink across PRs — but a compare with no cells in
// common at all is an error, since it gates nothing.

// compareMaxSlowdown is the wallNs regression threshold: a cell may be at
// most this fraction slower in new than in old before the gate fails.
const compareMaxSlowdown = 0.15

// compareFloorNS exempts cells whose wall times are both under this floor:
// sub-100µs timings are dominated by timer and scheduler noise, and a 15%
// band around them gates nothing real.
const compareFloorNS = 100_000

// loadBenchReport reads one BENCH_<family>.json.
func loadBenchReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Cells) == 0 {
		return nil, fmt.Errorf("%s: no cells (not a baseline report?)", path)
	}
	return &rep, nil
}

// reportIsKernels sniffs whether a report file is in the kernels format
// (cells keyed by "kernel") rather than the family-baseline format.
func reportIsKernels(path string) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	var probe struct {
		Cells []map[string]json.RawMessage `json:"cells"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return false, fmt.Errorf("%s: %w", path, err)
	}
	if len(probe.Cells) == 0 {
		return false, fmt.Errorf("%s: no cells (not a benchmark report?)", path)
	}
	_, ok := probe.Cells[0]["kernel"]
	return ok, nil
}

// runCompare diffs oldPath against newPath and returns an error (failing the
// gate) if any matched cell slowed down by more than compareMaxSlowdown.
func runCompare(oldPath, newPath string) error {
	oldKernels, err := reportIsKernels(oldPath)
	if err != nil {
		return err
	}
	newKernels, err := reportIsKernels(newPath)
	if err != nil {
		return err
	}
	if oldKernels != newKernels {
		return fmt.Errorf("compare: format mismatch: %s and %s are different report kinds", oldPath, newPath)
	}
	if oldKernels {
		return compareKernelReports(oldPath, newPath)
	}
	return compareBaselineReports(oldPath, newPath)
}

func compareBaselineReports(oldPath, newPath string) error {
	oldRep, err := loadBenchReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadBenchReport(newPath)
	if err != nil {
		return err
	}
	if oldRep.Family != newRep.Family {
		return fmt.Errorf("compare: family mismatch: %s (%s) vs %s (%s)",
			oldRep.Family, oldPath, newRep.Family, newPath)
	}

	type key struct {
		level int
		acc   float64
	}
	oldCells := make(map[key]benchCell, len(oldRep.Cells))
	for _, c := range oldRep.Cells {
		oldCells[key{c.Level, c.Acc}] = c
	}

	fmt.Printf("compare %s: %s -> %s (gate: ≤%.0f%% slower per cell, ≥%v floor)\n",
		oldRep.Family, oldPath, newPath, compareMaxSlowdown*100, compareFloorNS)
	fmt.Printf("%6s %10s %12s %12s %8s %8s\n", "level", "acc", "old", "new", "ratio", "sweeps")
	var regressions, added, removed []string
	matched := 0
	seen := make(map[key]bool, len(newRep.Cells))
	for _, nc := range newRep.Cells {
		k := key{nc.Level, nc.Acc}
		oc, ok := oldCells[k]
		if !ok {
			added = append(added, fmt.Sprintf("level %d acc %.0e (%dns)", nc.Level, nc.Acc, nc.WallNS))
			continue
		}
		seen[k] = true
		matched++
		ratio := float64(nc.WallNS) / float64(oc.WallNS)
		sweeps := fmt.Sprintf("%d", nc.Sweeps)
		if nc.Sweeps != oc.Sweeps {
			sweeps = fmt.Sprintf("%d->%d", oc.Sweeps, nc.Sweeps)
		}
		flag := ""
		if ratio > 1+compareMaxSlowdown && (oc.WallNS >= compareFloorNS || nc.WallNS >= compareFloorNS) {
			flag = "  REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("level %d acc %.0e: %.2fx (%dns -> %dns)", nc.Level, nc.Acc, ratio, oc.WallNS, nc.WallNS))
		}
		fmt.Printf("%6d %10.0e %12d %12d %7.2fx %8s%s\n",
			nc.Level, nc.Acc, oc.WallNS, nc.WallNS, ratio, sweeps, flag)
	}
	for _, oc := range oldRep.Cells {
		if !seen[key{oc.Level, oc.Acc}] {
			removed = append(removed, fmt.Sprintf("level %d acc %.0e (%dns)", oc.Level, oc.Acc, oc.WallNS))
		}
	}
	printOneSided(added, removed)
	return compareVerdict(matched, regressions, oldPath, newPath)
}

func compareKernelReports(oldPath, newPath string) error {
	load := func(path string) (*kernelsReport, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var rep kernelsReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if len(rep.Cells) == 0 {
			return nil, fmt.Errorf("%s: no cells (not a kernels report?)", path)
		}
		return &rep, nil
	}
	oldRep, err := load(oldPath)
	if err != nil {
		return err
	}
	newRep, err := load(newPath)
	if err != nil {
		return err
	}

	// Cells are keyed by (family, n, kernel, precision): an f32 row of a
	// kernel is its own cell, compared only against the same precision in
	// the old report ("" and "f64" are the same precision).
	type key struct {
		family string
		n      int
		kernel string
		prec   string
	}
	normPrec := func(p string) string {
		if p == "f64" {
			return ""
		}
		return p
	}
	label := func(c kernelCell) string {
		if p := normPrec(c.Precision); p != "" {
			return c.Kernel + "/" + p
		}
		return c.Kernel
	}
	oldCells := make(map[key]kernelCell, len(oldRep.Cells))
	for _, c := range oldRep.Cells {
		oldCells[key{c.Family, c.N, c.Kernel, normPrec(c.Precision)}] = c
	}

	fmt.Printf("compare kernels: %s -> %s (gate: ≤%.0f%% slower fused per cell, ≥%v floor)\n",
		oldPath, newPath, compareMaxSlowdown*100, compareFloorNS)
	fmt.Printf("%-10s %6s %-18s %12s %12s %8s\n", "family", "N", "kernel", "old fused", "new fused", "ratio")
	var regressions, added, removed []string
	matched := 0
	seen := make(map[key]bool, len(newRep.Cells))
	for _, nc := range newRep.Cells {
		k := key{nc.Family, nc.N, nc.Kernel, normPrec(nc.Precision)}
		oc, ok := oldCells[k]
		if !ok {
			added = append(added, fmt.Sprintf("%s N=%d %s (%.2fx fused)", nc.Family, nc.N, label(nc), nc.Speedup))
			continue
		}
		seen[k] = true
		matched++
		ratio := float64(nc.FusedNS) / float64(oc.FusedNS)
		flag := ""
		if ratio > 1+compareMaxSlowdown && (oc.FusedNS >= compareFloorNS || nc.FusedNS >= compareFloorNS) {
			flag = "  REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s N=%d %s: %.2fx (%dns -> %dns)", nc.Family, nc.N, label(nc), ratio, oc.FusedNS, nc.FusedNS))
		}
		fmt.Printf("%-10s %6d %-18s %12d %12d %7.2fx%s\n",
			nc.Family, nc.N, label(nc), oc.FusedNS, nc.FusedNS, ratio, flag)
	}
	for _, oc := range oldRep.Cells {
		if !seen[key{oc.Family, oc.N, oc.Kernel, normPrec(oc.Precision)}] {
			removed = append(removed, fmt.Sprintf("%s N=%d %s (%dns fused)", oc.Family, oc.N, label(oc), oc.FusedNS))
		}
	}
	printOneSided(added, removed)
	return compareVerdict(matched, regressions, oldPath, newPath)
}

// printOneSided lists cells present in only one report. They are
// informational, not gate failures: tables grow and shrink across PRs.
func printOneSided(added, removed []string) {
	sort.Strings(added)
	sort.Strings(removed)
	for _, a := range added {
		fmt.Println("  new: " + a)
	}
	for _, r := range removed {
		fmt.Println("  removed: " + r)
	}
}

// compareVerdict applies the shared pass/fail rules: at least one matched
// cell, and no matched cell past the slowdown gate.
func compareVerdict(matched int, regressions []string, oldPath, newPath string) error {
	if matched == 0 {
		return fmt.Errorf("compare: no cells in common between %s and %s", oldPath, newPath)
	}
	if len(regressions) > 0 {
		fmt.Printf("FAIL: %d of %d cells regressed >%.0f%%\n", len(regressions), matched, compareMaxSlowdown*100)
		for _, r := range regressions {
			fmt.Println("  " + r)
		}
		return fmt.Errorf("compare: %d cells slowed down more than %.0f%%", len(regressions), compareMaxSlowdown*100)
	}
	fmt.Printf("OK: %d cells within the %.0f%% gate\n", matched, compareMaxSlowdown*100)
	return nil
}
