package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"pbmg"
	"pbmg/internal/grid"
	"pbmg/internal/mg"
)

// The baseline experiment is the per-PR perf tracker: it tunes one operator
// family on the deterministic harpertown cost model (so the tuned tables —
// and hence the recorded op counts — are reproducible), then wall-clock
// measures tuned FULL-MULTIGRID solves across levels and accuracy targets
// on the host. With -json the result is also written to BENCH_<family>.json
// so successive PRs can diff the trajectory; the op counts are
// machine-independent, the wall times are the host's.

// benchCell is one (level, accuracy) measurement.
type benchCell struct {
	Level   int     `json:"level"`
	N       int     `json:"n"`
	Acc     float64 `json:"acc"`
	Sweeps  int64   `json:"sweeps"`
	Directs int64   `json:"directs"`
	WallNS  int64   `json:"wallNs"`
	// AchievedExp is log10 of the achieved accuracy (99 records the +Inf of
	// an exact direct solve, mirroring the goldens convention).
	AchievedExp float64 `json:"achievedExp"`
	// Precision is the tuned plan's storage precision at this cell ("f64",
	// "f32", or "mixed").
	Precision string `json:"precision,omitempty"`
}

// benchReport is the machine-readable baseline for one family.
type benchReport struct {
	Family   string  `json:"family"`
	Eps      float64 `json:"eps,omitempty"`
	Dim      int     `json:"dim"`
	MaxLevel int     `json:"maxLevel"`
	Machine  string  `json:"machine"`
	GoOS     string  `json:"goos"`
	GoArch   string  `json:"goarch"`
	// NoFuse records whether the fused cycle kernels were disabled
	// (mgbench -nofuse), so fused and unfused baselines are not confused
	// when diffed with -compare.
	NoFuse bool `json:"noFuse,omitempty"`
	// Steals is the worker pool's successful-steal count across the run —
	// scheduler visibility (0 for serial runs).
	Steals int64       `json:"steals"`
	Cells  []benchCell `json:"cells"`
}

// baselineAccs are the accuracy targets sampled per level.
var baselineAccs = []float64{1e1, 1e5, 1e9}

// runBaseline measures the family baseline up to maxLevel and optionally
// writes BENCH_<family>.json (or outPath when non-empty). noFuse disables
// the fused cycle kernels, measuring the pre-fusion pass structure.
func runBaseline(familyName string, eps float64, maxLevel, workers int, seed int64, writeJSON, noFuse bool, outPath string, logf func(string, ...any)) error {
	f, err := pbmg.ParseFamily(familyName)
	if err != nil {
		return err
	}
	if f.Dim() == 3 && maxLevel > 6 {
		// 3D levels grow as N³; level 6 (129³ ≈ 2.1M points) is already a
		// heavy per-solve baseline.
		fmt.Fprintf(os.Stderr, "mgbench: 3D baseline capped at level 6 (129³ points); requested %d\n", maxLevel)
		maxLevel = 6
	}
	opts := pbmg.Options{
		MaxSize: grid.SizeOfLevel(maxLevel),
		Family:  f,
		Epsilon: eps,
		Machine: "intel-harpertown", // deterministic tables; wall times are the host's
		Workers: workers,
		Seed:    seed,
		NoFuse:  noFuse,
	}
	if logf != nil {
		opts.Logf = logf
	}
	solver, err := pbmg.Tune(opts)
	if err != nil {
		return err
	}
	defer solver.Close()

	rep := benchReport{
		Family:   solver.Family().String(),
		Dim:      solver.Dim(),
		MaxLevel: maxLevel,
		Machine:  solver.Machine(),
		GoOS:     runtime.GOOS,
		GoArch:   runtime.GOARCH,
		NoFuse:   noFuse,
	}
	if pbmg.FamilyHasParam(solver.Family()) {
		rep.Eps = solver.Epsilon()
	}

	fmt.Printf("baseline %s (dim %d), tuned on %s\n", rep.Family, rep.Dim, rep.Machine)
	fmt.Printf("%6s %6s %10s %6s %8s %8s %12s %10s\n", "level", "N", "acc", "prec", "sweeps", "directs", "wall", "achieved")
	for level := 3; level <= maxLevel; level++ {
		n := grid.SizeOfLevel(level)
		p, err := solver.NewFamilyProblem(n, pbmg.Unbiased, seed+int64(level))
		if err != nil {
			return err
		}
		pbmg.Reference(p)
		for _, acc := range baselineAccs {
			var tr mg.OpTrace
			x := p.NewState()
			if err := solver.SolveTraced(x, p.B, acc, &tr); err != nil {
				return err
			}
			achieved := p.AccuracyOf(x)
			achievedExp := 99.0
			if !math.IsInf(achieved, 1) {
				achievedExp = math.Round(math.Log10(achieved)*100) / 100
			}
			// Wall time: best of three fresh solves (the traced solve above
			// warmed the factor caches).
			wall := time.Duration(1 << 62)
			for trial := 0; trial < 3; trial++ {
				x := p.NewState()
				start := time.Now()
				if err := solver.Solve(x, p.B, acc); err != nil {
					return err
				}
				if d := time.Since(start); d < wall {
					wall = d
				}
			}
			prec, err := solver.PlanPrecision(n, acc)
			if err != nil {
				return err
			}
			cell := benchCell{
				Level:       level,
				N:           n,
				Acc:         acc,
				Sweeps:      tr.Total(mg.EvRelax) + tr.Total(mg.EvIterSolve),
				Directs:     tr.Total(mg.EvDirect),
				WallNS:      wall.Nanoseconds(),
				AchievedExp: achievedExp,
				Precision:   prec,
			}
			rep.Cells = append(rep.Cells, cell)
			fmt.Printf("%6d %6d %10.0e %6s %8d %8d %12v %10.3g\n",
				level, n, acc, prec, cell.Sweeps, cell.Directs, wall, achieved)
		}
	}

	rep.Steals = solver.PoolSteals()

	if writeJSON {
		path := outPath
		if path == "" {
			path = fmt.Sprintf("BENCH_%s.json", rep.Family)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}
