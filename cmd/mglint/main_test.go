package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestSeededViolationFailsVet builds the mglint binary and drives it the
// way CI does — through go vet -vettool — over a scratch module seeded
// with a boundedgo violation, proving the whole pipeline (unitchecker
// protocol, package scoping, nonzero exit) catches a regression; the
// repaired variant of the same module must pass.
func TestSeededViolationFailsVet(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and vets a scratch module")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "mglint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building mglint: %v\n%s", err, out)
	}

	writeModule := func(dir, serveSrc string) {
		t.Helper()
		if err := os.MkdirAll(filepath.Join(dir, "serve"), 0o755); err != nil {
			t.Fatal(err)
		}
		files := map[string]string{
			"go.mod":         "module scratch\n\ngo 1.24\n",
			"serve/serve.go": serveSrc,
		}
		for name, src := range files {
			if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	vet := func(dir string) (string, error) {
		cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	// Seeded violation: the PR 4 shape, a goroutine per ranged element.
	bad := filepath.Join(tmp, "bad")
	writeModule(bad, `package serve

func FanOut(reqs []int, handle func(int)) {
	for _, r := range reqs {
		go handle(r)
	}
}
`)
	out, err := vet(bad)
	if err == nil {
		t.Fatalf("go vet -vettool=mglint passed on a seeded boundedgo violation; output:\n%s", out)
	}
	if !strings.Contains(out, "boundedgo") {
		t.Fatalf("failure output does not name boundedgo:\n%s", out)
	}

	// The repaired module — a worker loop sized by an admission limit —
	// must pass with exit 0.
	good := filepath.Join(tmp, "good")
	writeModule(good, `package serve

func FanOut(workers int, reqs chan int, handle func(int)) {
	for i := 0; i < workers; i++ {
		go func() {
			for r := range reqs {
				handle(r)
			}
		}()
	}
}
`)
	if out, err := vet(good); err != nil {
		t.Fatalf("go vet -vettool=mglint failed on the repaired module: %v\n%s", err, out)
	}
}
