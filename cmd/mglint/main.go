// mglint is the repo's invariant checker: a go/analysis multichecker
// over the five analyzers that mechanically enforce the kernel, pooling,
// and serving contracts (see README "Static analysis"):
//
//	hotalloc     no allocation in kernel hot paths
//	determinism  no nondeterminism sources in kernel/reduction code
//	poolput      every arena checkout released on all paths
//	boundedgo    no unbounded goroutine launches in the serving path
//	dimguard     2D/3D grid accessor mismatches at compile time
//
// Usage:
//
//	go run ./cmd/mglint ./...          # lint the repo; nonzero exit on findings
//	go run ./cmd/mglint -json ./...    # machine-readable diagnostics
//	go vet -vettool=$(which mglint) ./...  # as a vet tool
//
// The binary speaks the go vet unitchecker protocol: invoked by the go
// command (with -V=full, -flags, or a *.cfg unit file) it behaves as a
// vettool; invoked with package patterns it re-executes itself through
// `go vet -vettool=<self>`, so one binary is both the driver and the
// tool and every run analyzes packages exactly the way the build does —
// export data, test files, and all.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/unitchecker"

	"pbmg/internal/analysis/boundedgo"
	"pbmg/internal/analysis/determinism"
	"pbmg/internal/analysis/dimguard"
	"pbmg/internal/analysis/hotalloc"
	"pbmg/internal/analysis/poolput"
)

// Analyzers is the mglint suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	hotalloc.Analyzer,
	determinism.Analyzer,
	poolput.Analyzer,
	boundedgo.Analyzer,
	dimguard.Analyzer,
}

func main() {
	args := os.Args[1:]
	if vetInvocation(args) {
		unitchecker.Main(Analyzers...) // never returns
	}

	// Driver mode: mglint [-json] [packages...]. Re-exec through go vet
	// so package loading matches the build exactly.
	var jsonOut bool
	var pkgs []string
	for _, a := range args {
		switch a {
		case "-json", "--json":
			jsonOut = true
		case "-h", "-help", "--help":
			usage()
			return
		default:
			if strings.HasPrefix(a, "-") {
				fmt.Fprintf(os.Stderr, "mglint: unknown flag %s\n", a)
				usage()
				os.Exit(2)
			}
			pkgs = append(pkgs, a)
		}
	}
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mglint: cannot locate own executable: %v\n", err)
		os.Exit(2)
	}
	vetArgs := []string{"vet", "-vettool=" + exe}
	if jsonOut {
		vetArgs = append(vetArgs, "-json")
	}
	vetArgs = append(vetArgs, pkgs...)
	cmd := exec.Command("go", vetArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "mglint: running go vet: %v\n", err)
		os.Exit(2)
	}
}

// vetInvocation reports whether the go command is driving this process
// as a vettool (the unitchecker protocol: a version/flags handshake or a
// unit-config file argument).
func vetInvocation(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

func usage() {
	fmt.Fprintf(os.Stderr, `mglint: enforce pbmg's kernel, pooling, and serving invariants

usage: mglint [-json] [packages...]   (default ./...)

analyzers:
`)
	for _, a := range Analyzers {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, strings.Split(a.Doc, "\n")[0])
	}
	fmt.Fprintf(os.Stderr, "\nSuppress a finding with //mglint:allow <analyzer> — <justification>.\n")
}
