// Command mgserve demonstrates the tune-once/serve-many model at sustained
// load: it loads a tuned configuration produced by mgtune (or tunes one
// in-process), then drives M concurrent clients issuing Poisson solve
// requests against one shared solver and reports throughput and latency
// percentiles. All clients share one set of tuned tables, one worker pool,
// and one direct-factor cache; the admission limit bounds how many solves
// are in flight at once.
//
// With -families or -configdir it serves SEVERAL tuned families from one
// process through a pbmg.Registry: every family shares one worker pool, one
// global admission limit, and one bounded direct-factor cache, clients mix
// their requests across the families round-robin, and the report breaks
// latency and admission metrics out per family.
//
// Usage:
//
//	mgserve -config tuned.json -size 257 -acc 1e7 -clients 8 -requests 400
//	mgserve -size 129 -machine intel-harpertown -clients 16 -duration 5s
//	mgserve -families poisson,aniso:0.01,poisson3d -size 129 -clients 8 -requests 400
//	mgserve -configdir tuned/ -clients 16 -duration 5s
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"pbmg"
	"pbmg/internal/mixload"
)

func main() {
	config := flag.String("config", "", "tuned configuration from mgtune (empty: tune in-process)")
	machine := flag.String("machine", "intel-harpertown", "cost model for in-process tuning when -config is empty")
	size := flag.Int("size", 129, "request grid side (2^k+1, within the tuned range)")
	acc := flag.Float64("acc", 1e7, "request accuracy level")
	clients := flag.Int("clients", 8, "concurrent client goroutines")
	requests := flag.Int("requests", 0, "total requests to serve (0: run for -duration)")
	duration := flag.Duration("duration", 5*time.Second, "serving time when -requests is 0")
	workers := flag.Int("workers", runtime.NumCPU(), "kernel worker threads shared by all solves")
	inflight := flag.Int("inflight", 0, "max in-flight solves (0: 2×GOMAXPROCS)")
	dist := flag.String("dist", "unbiased", "request data distribution: unbiased, biased, or point-sources")
	family := flag.String("family", "", "operator family to serve (poisson, aniso, varcoef, poisson3d). With -config it must match the configuration; without, it selects the family for in-process tuning")
	epsilon := flag.Float64("epsilon", 0, "family parameter ε/σ for in-process tuning (0: family default)")
	families := flag.String("families", "", "serve several families from one registry: comma list of family[:eps], e.g. poisson,aniso:0.01,poisson3d (tuned in-process unless -configdir is given)")
	configdir := flag.String("configdir", "", "directory of tuned-table JSON files to serve as a registry (one file per family)")
	size3d := flag.Int("size3d", 17, "request grid side for 3D families in registry mode")
	seed := flag.Int64("seed", 42, "request problem seed")
	flag.Parse()

	d, err := parseDist(*dist)
	if err != nil {
		fatal(err)
	}

	if *families != "" || *configdir != "" {
		if *config != "" {
			fatal(fmt.Errorf("-config cannot be combined with -families/-configdir; use -configdir for multi-family serving"))
		}
		err := serveRegistry(multiOpts{
			families:  *families,
			configdir: *configdir,
			machine:   *machine,
			size:      *size,
			size3d:    *size3d,
			acc:       *acc,
			clients:   *clients,
			requests:  *requests,
			duration:  *duration,
			workers:   *workers,
			inflight:  *inflight,
			dist:      d,
			seed:      *seed,
		})
		if err != nil {
			fatal(err)
		}
		return
	}

	solver, err := loadOrTune(*config, *machine, *family, *epsilon, *size, *workers)
	if err != nil {
		fatal(err)
	}
	if *config != "" {
		if err := solver.CheckFamilyFlags(*config, *family, *epsilon); err != nil {
			fatal(err)
		}
	}
	defer solver.Close()
	if *size > solver.MaxSize() {
		fatal(fmt.Errorf("size %d exceeds tuned maximum %d", *size, solver.MaxSize()))
	}

	svc := solver.NewService(*inflight)
	fmt.Printf("serving N=%d at accuracy %.2g (family %s): %d clients, %d kernel workers, ≤%d in flight\n",
		*size, *acc, solver.Family(), *clients, *workers, svc.MaxInFlight())

	// The shared mixload driver pre-draws a small rotation of problems per
	// client so request setup (RNG fills) stays off the measured path, then
	// re-solves them from fresh states — the shape of a server handling
	// recurring workloads.
	res, err := mixload.Run(mixload.Options{
		Services: []*pbmg.Service{svc},
		ReqN:     []int{*size},
		Clients:  *clients,
		Requests: *requests,
		Deadline: time.Now().Add(*duration),
		Acc:      *acc,
		Dist:     d,
		Seed:     *seed,
	})
	if err != nil {
		fatal(err)
	}
	all := res.All
	fmt.Printf("served %d solves in %v: %.1f solves/sec\n",
		len(all), res.Elapsed.Round(time.Millisecond), float64(len(all))/res.Elapsed.Seconds())
	fmt.Printf("latency p50 %v  p90 %v  p99 %v  max %v\n",
		mixload.Percentile(all, 0.50), mixload.Percentile(all, 0.90),
		mixload.Percentile(all, 0.99), all[len(all)-1])

	// Spot-check: re-solve one request with a reference solution attached so
	// the report carries an achieved-accuracy figure, not just timings.
	p, err := solver.NewFamilyProblem(*size, d, *seed)
	if err != nil {
		fatal(err)
	}
	pbmg.Reference(p)
	x := p.NewState()
	if err := svc.Solve(x, p.B, *acc); err != nil {
		fatal(err)
	}
	fmt.Printf("spot-check accuracy: requested %.2g, achieved %.4g\n", *acc, p.AccuracyOf(x))
}

// loadOrTune loads a saved configuration, or tunes one in-process for the
// requested size and family on a deterministic simulated machine.
func loadOrTune(config, machine, family string, epsilon float64, size, workers int) (*pbmg.Solver, error) {
	if config != "" {
		return pbmg.Load(config, workers)
	}
	f := pbmg.FamilyPoisson
	if family != "" {
		var err error
		if f, err = pbmg.ParseFamily(family); err != nil {
			return nil, err
		}
	}
	fmt.Fprintf(os.Stderr, "mgserve: no -config, tuning in-process for N=%d (family %s) on %s\n", size, f, machine)
	return pbmg.Tune(pbmg.Options{MaxSize: size, Family: f, Epsilon: epsilon, Machine: machine, Workers: workers})
}

func parseDist(s string) (pbmg.Distribution, error) {
	switch s {
	case "unbiased":
		return pbmg.Unbiased, nil
	case "biased":
		return pbmg.Biased, nil
	case "point-sources":
		return pbmg.PointSources, nil
	default:
		return 0, fmt.Errorf("unknown distribution %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mgserve:", err)
	os.Exit(1)
}
