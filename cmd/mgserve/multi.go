package main

import (
	"fmt"
	"os"
	"time"

	"pbmg"
	"pbmg/internal/mixload"
)

// Multi-family serving mode: one Registry, several tuned families, mixed
// traffic. Enabled by -families (tune each family in-process) and/or
// -configdir (load every tuned-table JSON in a directory); clients then
// round-robin their requests across the served families (the shared
// internal/mixload driver), and the report breaks throughput, latency
// percentiles, and admission metrics out per family.

// multiOpts carries the flag values the registry mode needs.
type multiOpts struct {
	families  string
	configdir string
	machine   string
	size      int
	size3d    int
	acc       float64
	clients   int
	requests  int
	duration  time.Duration
	workers   int
	inflight  int
	dist      pbmg.Distribution
	seed      int64
}

// serveRegistry runs the multi-family serving demo and prints per-family
// throughput, latency percentiles, and admission metrics.
func serveRegistry(o multiOpts) error {
	r := pbmg.NewRegistry(pbmg.RegistryOptions{Workers: o.workers, MaxInFlight: o.inflight})
	defer r.Close()

	var services []*pbmg.Service
	if o.configdir != "" {
		loaded, err := r.LoadDir(o.configdir)
		if err != nil {
			return err
		}
		services = loaded
	}
	if o.families != "" {
		specs, err := pbmg.ParseFamilySpecs(o.families)
		if err != nil {
			return err
		}
		if o.configdir != "" {
			// -configdir supplies the catalog; -families selects the workload
			// mix from it, with the usual mismatch errors on absent entries.
			services = services[:0]
			for _, sp := range specs {
				svc, err := r.Lookup(sp.Family, sp.Epsilon)
				if err != nil {
					return err
				}
				services = append(services, svc)
			}
		} else {
			for _, sp := range specs {
				size := o.size
				if sp.Dim == 3 {
					size = o.size3d
				}
				fmt.Fprintf(os.Stderr, "mgserve: tuning in-process for N=%d (family %s) on %s\n", size, sp.Family, o.machine)
				svc, err := r.Tune(pbmg.Options{
					MaxSize: size, Family: sp.Family, Epsilon: sp.Epsilon,
					Machine: o.machine, Seed: o.seed,
				})
				if err != nil {
					return err
				}
				services = append(services, svc)
			}
		}
	}

	// Per-family request sizes, clamped to each family's tuned range.
	reqN := make([]int, len(services))
	for i, svc := range services {
		n := o.size
		if svc.Solver().Dim() == 3 {
			n = o.size3d
		}
		if m := svc.Solver().MaxSize(); n > m {
			n = m
		}
		reqN[i] = n
	}

	fmt.Printf("registry serving %d families: %d clients, %d kernel workers, ≤%d in flight\n",
		len(services), o.clients, o.workers, r.MaxInFlight())
	for i, svc := range services {
		fmt.Printf("  %s: N=%d at accuracy %.2g\n", svc.Key(), reqN[i], o.acc)
	}

	res, err := mixload.Run(mixload.Options{
		Services: services,
		ReqN:     reqN,
		Clients:  o.clients,
		Requests: o.requests,
		Deadline: time.Now().Add(o.duration),
		Acc:      o.acc,
		Dist:     o.dist,
		Seed:     o.seed,
	})
	if err != nil {
		return err
	}

	fmt.Printf("served %d solves in %v: %.1f solves/sec\n",
		len(res.All), res.Elapsed.Round(time.Millisecond), float64(len(res.All))/res.Elapsed.Seconds())
	fmt.Printf("latency p50 %v  p90 %v  p99 %v  max %v\n",
		mixload.Percentile(res.All, 0.50), mixload.Percentile(res.All, 0.90),
		mixload.Percentile(res.All, 0.99), res.All[len(res.All)-1])
	for fi, svc := range services {
		ls := res.PerFamily[fi]
		if len(ls) == 0 {
			fmt.Printf("  %s: 0 solves\n", svc.Key())
			continue
		}
		fmt.Printf("  %s: %d solves, %.1f solves/sec, p50 %v  p90 %v  p99 %v\n",
			svc.Key(), len(ls), float64(len(ls))/res.Elapsed.Seconds(),
			mixload.Percentile(ls, 0.50), mixload.Percentile(ls, 0.90), mixload.Percentile(ls, 0.99))
	}

	m := r.Metrics()
	fmt.Printf("metrics: admitted=%d completed=%d failed=%d shed=%d inflight=%d unroutable=%d\n",
		m.Aggregate.Admitted, m.Aggregate.Completed, m.Aggregate.Failed, m.Aggregate.Shed,
		m.Aggregate.InFlight, m.Unroutable)
	for _, fm := range m.Families {
		fmt.Printf("  %s: admitted=%d completed=%d failed=%d shed=%d inflight=%d\n",
			fm.Key, fm.Admitted, fm.Completed, fm.Failed, fm.Shed, fm.InFlight)
	}

	// Spot-check each family with a reference solution so the report carries
	// achieved-accuracy figures, not just timings.
	for fi, svc := range services {
		p, err := svc.Solver().NewFamilyProblem(reqN[fi], o.dist, o.seed)
		if err != nil {
			return err
		}
		pbmg.Reference(p)
		x := p.NewState()
		if err := svc.Solve(x, p.B, o.acc); err != nil {
			return err
		}
		fmt.Printf("spot-check %s: requested %.2g, achieved %.4g\n", svc.Key(), o.acc, p.AccuracyOf(x))
	}
	return nil
}
