// Command mgsolve solves a random 2D Poisson problem with a tuned
// configuration produced by mgtune and reports the achieved accuracy and
// solve time, the analogue of running a PetaBricks binary with a saved
// configuration file (§3.2.1).
//
// Usage:
//
//	mgsolve -config tuned.json -size 257 -acc 1e7
//	mgsolve -config tuned.json -size 129 -acc 1e5 -cycle -v
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"pbmg"
)

func main() {
	config := flag.String("config", "tuned.json", "tuned configuration from mgtune")
	size := flag.Int("size", 257, "grid side (2^k+1, within the tuned range)")
	acc := flag.Float64("acc", 1e7, "required accuracy level")
	family := flag.String("family", "", "operator family the problem is drawn from (poisson, aniso, varcoef, poisson3d); must match the tuned configuration. Empty uses the configuration's family")
	epsilon := flag.Float64("epsilon", 0, "family parameter ε/σ; must match the tuned configuration. 0 uses the configuration's value")
	dist := flag.String("dist", "unbiased", "test data distribution: unbiased, biased, or point-sources")
	seed := flag.Int64("seed", 7, "test problem seed")
	workers := flag.Int("workers", runtime.NumCPU(), "worker threads")
	useV := flag.Bool("vcycle", false, "use the tuned MULTIGRID-V family instead of FULL-MULTIGRID")
	cycle := flag.Bool("cycle", false, "print the tuned cycle shape before solving")
	verbose := flag.Bool("v", false, "print the tuned call tree")
	flag.Parse()

	d, err := parseDist(*dist)
	if err != nil {
		fatal(err)
	}
	solver, err := pbmg.Load(*config, *workers)
	if err != nil {
		fatal(err)
	}
	defer solver.Close()

	// The problem family and parameter must match what the configuration
	// was tuned for: tuned tables are family-specific, so a mismatch would
	// silently solve the wrong operator.
	if err := solver.CheckFamilyFlags(*config, *family, *epsilon); err != nil {
		fatal(err)
	}

	if *cycle {
		shape, err := solver.CycleShape(*size, *acc, !*useV)
		if err != nil {
			fatal(err)
		}
		fmt.Println("tuned cycle shape (o relax, \\ restrict, / interpolate, D direct, ~k~ SOR):")
		fmt.Print(shape)
	}
	if *verbose {
		desc, err := solver.Describe(*size, *acc, !*useV)
		if err != nil {
			fatal(err)
		}
		fmt.Println("tuned call tree:")
		fmt.Print(desc)
	}

	p, err := solver.NewFamilyProblem(*size, d, *seed)
	if err != nil {
		fatal(err)
	}
	x := p.NewState()
	start := time.Now()
	if *useV {
		err = solver.SolveV(x, p.B, *acc)
	} else {
		err = solver.Solve(x, p.B, *acc)
	}
	elapsed := time.Since(start)
	if err != nil {
		fatal(err)
	}

	pbmg.Reference(p)
	fmt.Printf("solved N=%d (%s data, family %s, eps %g) in %v\n",
		*size, d, solver.Family(), solver.Epsilon(), elapsed)
	fmt.Printf("requested accuracy %.2g, achieved %.4g\n", *acc, p.AccuracyOf(x))
}

func parseDist(s string) (pbmg.Distribution, error) {
	switch s {
	case "unbiased":
		return pbmg.Unbiased, nil
	case "biased":
		return pbmg.Biased, nil
	case "point-sources":
		return pbmg.PointSources, nil
	default:
		return 0, fmt.Errorf("unknown distribution %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mgsolve:", err)
	os.Exit(1)
}
