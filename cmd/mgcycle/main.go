// Command mgcycle renders tuned multigrid cycle shapes and call stacks —
// the visual artifacts of the paper's Figures 4, 5, and 14 — using the
// deterministic architecture cost models.
//
// Usage:
//
//	mgcycle -exp fig5 -level 8
//	mgcycle -exp fig14 -level 9
//	mgcycle -exp fig4
package main

import (
	"flag"
	"fmt"
	"os"

	"pbmg/internal/experiments"
	"pbmg/internal/grid"
)

func main() {
	exp := flag.String("exp", "fig5", "which figure to render: fig4, fig5, fig5b, or fig14")
	level := flag.Int("level", 8, "finest multigrid level (grid side 2^k+1)")
	seed := flag.Int64("seed", 20090101, "training seed")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	o := experiments.Opts{MaxLevel: *level, Seed: *seed}
	if !*quiet {
		o.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "mgcycle: "+format+"\n", args...)
		}
	}
	r := experiments.NewRunner(o)
	defer r.Close()

	var out string
	var err error
	switch *exp {
	case "fig4":
		out, err = r.Fig4()
	case "fig5":
		out, err = r.Fig5(grid.Unbiased)
	case "fig5b":
		out, err = r.Fig5(grid.Biased)
	case "fig14":
		out, err = r.Fig14()
	default:
		err = fmt.Errorf("unknown experiment %q (want fig4, fig5, fig5b, fig14)", *exp)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mgcycle:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
