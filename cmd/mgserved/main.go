// Command mgserved is the HTTP serving daemon: it loads a directory of
// tuned-table JSON files (as written by mgtune) into a pbmg.Registry and
// serves JSON solve requests over HTTP with per-family admission quotas,
// bounded queues with explicit load-shedding, hot-reload, graceful drain,
// and fault-hardened solves: request deadlines cancel admitted solves
// mid-cycle, diverged reduced-precision solves escalate to float64, kernel
// panics answer 500 without taking the process down, and a per-family
// circuit breaker (-breaker-threshold, -breaker-cooldown) sheds 503 +
// Retry-After after consecutive solver failures.
//
//	mgserved -addr :8080 -configdir tables/ -quota poisson=6,poisson3d=2
//	mgserved -addr :8080 -families poisson,poisson3d -size 65 -size3d 17
//
// Signals: SIGHUP rebuilds the catalog from -configdir and swaps it
// atomically (a broken directory leaves the live catalog serving);
// SIGTERM/SIGINT drain gracefully — new requests are shed with 503 while
// every admitted solve runs to completion, then the process exits 0.
//
// Endpoints (see pbmg/serve for the wire types):
//
//	POST /v1/solve   {"family","eps","n","accuracy","b":[...],"x":[...]}
//	POST /v1/batch   one family's batch under one queue slot
//	GET  /metrics    per-family admission/queue/shed/failure counters
//	GET  /healthz    200 while the process serves, 503 draining
//	GET  /readyz     200 ready; 503 when draining or a breaker is open
//	POST /-/reload   same as SIGHUP, over HTTP
//	POST /-/fault    chaos builds only (-tags faultinject): arm fault spec
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"pbmg"
	"pbmg/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	configdir := flag.String("configdir", "", "directory of tuned-table JSON files (one per family, from mgtune)")
	families := flag.String("families", "", "tune these families in-process instead of -configdir: comma list of family[:eps]")
	machine := flag.String("machine", "intel-harpertown", "cost model for in-process tuning with -families")
	size := flag.Int("size", 65, "tuned max grid side for 2D families with -families")
	size3d := flag.Int("size3d", 17, "tuned max grid side for 3D families with -families")
	workers := flag.Int("workers", runtime.NumCPU(), "kernel worker threads shared by all solves")
	inflight := flag.Int("inflight", 0, "global max in-flight solves (0: 2×GOMAXPROCS; raised to the quota sum when quotas bind)")
	quota := flag.String("quota", "", "per-family concurrent-solve quotas, e.g. poisson=6,aniso:0.01=4,poisson3d=2")
	quotaDefault := flag.Int("quota-default", 0, "quota for families not named in -quota (0: global limit only)")
	queue := flag.Int("queue", 0, "per-family admission queue depth before shedding 429s (0: 4×quota)")
	maxWait := flag.Duration("maxwait", serve.DefaultMaxWait, "request timeout (admission + solve) for requests without a deadline")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight solves on SIGTERM")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive solver failures opening a family's circuit breaker (0: default 5)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "open-breaker shed window before a half-open probe (0: default 5s)")
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "mgserved: "+format+"\n", args...)
	}

	cfg := serve.Config{
		Dir:          *configdir,
		Workers:      *workers,
		MaxInFlight:  *inflight,
		DefaultQuota: *quotaDefault,
		QueueDepth:   *queue,
		MaxWait:      *maxWait,
		Breaker:      pbmg.BreakerConfig{Threshold: *breakerThreshold, Cooldown: *breakerCooldown},
		Logf:         logf,
	}
	if *quota != "" {
		q, err := serve.ParseQuotaSpec(*quota)
		if err != nil {
			fatal(err)
		}
		cfg.Quotas = q
	}

	switch {
	case *configdir == "" && *families == "":
		fatal(errors.New("one of -configdir or -families is required"))
	case *configdir != "" && *families != "":
		fatal(errors.New("-configdir cannot be combined with -families"))
	case *families != "":
		// In-process tuning still serves through a directory so hot-reload
		// keeps one code path: tune each family, save the tables into a
		// temp dir, and serve that.
		dir, err := tuneToDir(*families, *machine, *size, *size3d, *workers, logf)
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		cfg.Dir = dir
	}

	srv, err := serve.New(cfg)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGHUP, syscall.SIGTERM, syscall.SIGINT)
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	// The resolved address, so -addr :0 callers (tests, scripts) learn the
	// picked port.
	logf("listening on %s", ln.Addr())

	for {
		select {
		case err := <-errc:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				fatal(err)
			}
			return
		case sig := <-sigs:
			switch sig {
			case syscall.SIGHUP:
				if v, err := srv.Reload(); err != nil {
					logf("%v", err)
				} else {
					logf("catalog version %d live", v)
				}
			default: // SIGTERM / SIGINT: graceful drain
				logf("%v: draining (grace %v)", sig, *drainTimeout)
				ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
				srv.BeginDrain()
				shutdownErr := httpSrv.Shutdown(ctx) // stops accepting, waits handlers
				drainErr := srv.Drain(ctx)
				cancel()
				srv.Close()
				if shutdownErr != nil || drainErr != nil {
					fatal(errors.Join(shutdownErr, drainErr))
				}
				logf("drained cleanly")
				return
			}
		}
	}
}

// tuneToDir tunes every family of the spec and saves the tables into a
// fresh temp directory, returning its path.
func tuneToDir(spec, machine string, size2d, size3d, workers int, logf func(string, ...any)) (string, error) {
	keys, err := pbmg.ParseFamilySpecs(spec)
	if err != nil {
		return "", err
	}
	dir, err := os.MkdirTemp("", "mgserved-tables-")
	if err != nil {
		return "", err
	}
	for i, k := range keys {
		size := size2d
		if k.Dim == 3 {
			size = size3d
		}
		logf("tuning %s for N=%d on %s", k, size, machine)
		s, err := pbmg.Tune(pbmg.Options{
			MaxSize: size, Family: k.Family, Epsilon: k.Epsilon,
			Machine: machine, Workers: workers,
		})
		if err != nil {
			os.RemoveAll(dir)
			return "", err
		}
		path := filepath.Join(dir, fmt.Sprintf("%02d-%s.json", i, k.Family))
		err = s.Save(path)
		s.Close()
		if err != nil {
			os.RemoveAll(dir)
			return "", err
		}
	}
	return dir, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mgserved:", err)
	os.Exit(1)
}
