package pbmg

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestMGServedLifecycle drives the serving daemon end to end as a real
// process: start on an ephemeral port, solve over HTTP, hot-reload via
// SIGHUP and the reload endpoint, then SIGTERM — which must drain and
// exit 0. This file stays in package pbmg and speaks raw JSON so the test
// exercises the daemon the way an external client would.
func TestMGServedLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "mgserved")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/mgserved")
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build mgserved: %v\n%s", err, out)
	}

	// A tuned-table directory for -configdir, so SIGHUP has real files to
	// re-read.
	tables := filepath.Join(dir, "tables")
	if err := os.Mkdir(tables, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := tuneFamily(t, FamilyPoisson, 0).Save(filepath.Join(tables, "poisson.json")); err != nil {
		t.Fatal(err)
	}

	srv := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-configdir", tables, "-workers", "1",
		"-quota", "poisson=2", "-drain-timeout", "30s")
	stderr, err := srv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	// The daemon logs its resolved address; everything it prints after
	// that is collected for the final assertions.
	var addr string
	var logTail strings.Builder
	logLines := make(chan struct{})
	scanner := bufio.NewScanner(stderr)
	for scanner.Scan() {
		line := scanner.Text()
		if _, a, ok := strings.Cut(line, "listening on "); ok {
			addr = a
			break
		}
	}
	if addr == "" {
		t.Fatal("mgserved never reported its listen address")
	}
	go func() {
		defer close(logLines)
		for scanner.Scan() {
			logTail.WriteString(scanner.Text())
			logTail.WriteString("\n")
		}
	}()
	base := "http://" + addr

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}

	// One solve over the wire, request built by hand like an external
	// client would.
	p, err := tuneFamily(t, FamilyPoisson, 0).NewFamilyProblem(17, Unbiased, 21)
	if err != nil {
		t.Fatal(err)
	}
	Reference(p)
	body, err := json.Marshal(map[string]any{
		"family": "poisson", "n": 17, "accuracy": 1e3,
		"b": p.B.Data(), "x": p.NewState().Data(),
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var solved struct {
		X []float64 `json:"x"`
	}
	err = json.NewDecoder(resp.Body).Decode(&solved)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: HTTP %d, %v", resp.StatusCode, err)
	}
	x := NewGrid(17)
	copy(x.Data(), solved.X)
	if got := p.AccuracyOf(x); got < 1e3 {
		t.Fatalf("served accuracy %.3g, want ≥ 1e3", got)
	}

	// Hot-reload over HTTP, then via SIGHUP; each must bump the version.
	resp, err = http.Post(base+"/-/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload = %d", resp.StatusCode)
	}
	if err := srv.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, metrics := get("/metrics")
		var m struct {
			Version int64 `json:"version"`
		}
		if err := json.Unmarshal(metrics, &m); err != nil {
			t.Fatal(err)
		}
		if m.Version == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("version = %d after two reloads, want 3", m.Version)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// SIGTERM: graceful drain, clean exit.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Drain the log pipe to EOF before Wait — Wait closes the pipe and
	// would race the scanner out of the final lines.
	<-logLines
	if err := srv.Wait(); err != nil {
		t.Fatalf("mgserved exited uncleanly after SIGTERM: %v\n%s", err, logTail.String())
	}
	if !strings.Contains(logTail.String(), "drained cleanly") {
		t.Fatalf("drain not logged:\n%s", logTail.String())
	}
}
