package pbmg

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pbmg/internal/core"
	"pbmg/internal/grid"
	"pbmg/internal/mg"
)

// Failure-hardening tests: cooperative cancellation, divergence escalation,
// panic containment, and the circuit breaker — each followed by the pool
// hygiene checks (no pooled scratch leaked, next solve starts clean) that
// make the failure paths safe to serve behind. All of these must pass under
// -race: the abort paths cross the same pooled arenas the happy path uses.

// recorderFunc adapts a function to mg.Recorder, so a test can run code in
// the middle of a live solve (between kernels, on the solve's goroutine).
type recorderFunc func(kind mg.EventKind, level, count int)

func (f recorderFunc) Record(kind mg.EventKind, level, count int) { f(kind, level, count) }

// assertScratchClean fails the test when the solver's workspace still holds
// checked-out pooled scratch — the leak a failed solve must never cause.
func assertScratchClean(t *testing.T, s *Solver, when string) {
	t.Helper()
	if got := s.Workspace().ScratchOutstanding(); got != 0 {
		t.Fatalf("%s: %d pooled scratch buffers still outstanding, want 0", when, got)
	}
}

// assertNextSolveClean runs one fresh accurate solve on the solver and
// grades it, proving a preceding failure left no poisoned state behind.
func assertNextSolveClean(t *testing.T, s *Solver, seed int64) {
	t.Helper()
	p, err := s.NewFamilyProblem(17, Unbiased, seed)
	if err != nil {
		t.Fatal(err)
	}
	Reference(p)
	x := p.NewState()
	if err := s.Solve(x, p.B, 1e3); err != nil {
		t.Fatalf("solve after a failure: %v", err)
	}
	if got := p.AccuracyOf(x); got < 1e3 {
		t.Fatalf("solve after a failure reached accuracy %.3g, want ≥ 1e3", got)
	}
}

// TestSolveCancellationMidSolve: cancelling the context in the middle of a
// running solve aborts it at the next checkpoint with an error wrapping both
// ErrCancelled and context.Canceled, with all pooled scratch returned.
func TestSolveCancellationMidSolve(t *testing.T) {
	s := tuneFamily(t, FamilyPoisson, 0)
	p, err := s.NewFamilyProblem(33, Unbiased, 11)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel from inside the solve, after the first recorded kernel: the
	// full-multigrid traversal at acc 1e9 has many checkpoints still ahead.
	var events atomic.Int64
	rec := recorderFunc(func(kind mg.EventKind, level, count int) {
		if events.Add(1) == 1 {
			cancel()
		}
	})
	x := p.NewState()
	err = s.solveCtx(ctx, x, p.B, 1e9, true, rec)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("mid-solve cancel: err = %v, want ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel error %v does not wrap context.Canceled", err)
	}
	if events.Load() == 0 {
		t.Fatal("solve aborted before running any kernel — not a mid-solve cancel")
	}
	assertScratchClean(t, s, "after mid-solve cancel")
	assertNextSolveClean(t, s, 12)
}

// TestSolveCancellationAtEntry: an already-done context aborts before the
// first kernel, and the public SolveContext/SolveVContext both honor it.
func TestSolveCancellationAtEntry(t *testing.T) {
	s := tuneFamily(t, FamilyPoisson, 0)
	p, err := s.NewFamilyProblem(17, Unbiased, 13)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for name, solve := range map[string]func() error{
		"SolveContext":  func() error { return s.SolveContext(ctx, p.NewState(), p.B, 1e3) },
		"SolveVContext": func() error { return s.SolveVContext(ctx, p.NewState(), p.B, 1e3) },
	} {
		err := solve()
		if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s with an expired context: err = %v, want ErrCancelled wrapping DeadlineExceeded", name, err)
		}
	}
	assertScratchClean(t, s, "after entry cancels")
}

// TestDivergenceEscalation: a reduced-precision plan fed input past
// float32's dynamic range diverges, is retried once at forced float64, and
// the retry serves a finite answer — with the escalation counted.
func TestDivergenceEscalation(t *testing.T) {
	base := tuneFamily(t, FamilyPoisson, 0)
	// A private deep copy of the tuned tables via the JSON round trip: the
	// memoized solver is shared with every other test and must not be
	// mutated.
	path := filepath.Join(t.TempDir(), "tables.json")
	if err := base.Save(path); err != nil {
		t.Fatal(err)
	}
	tuned, err := core.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// Force f32 storage on the exact cell SolveV executes for (n=17, 1e3).
	level := grid.Level(17)
	idx := -1
	for i, a := range tuned.V.Acc {
		if a >= 1e3 {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatalf("no tuned accuracy ≥ 1e3 in %v", tuned.V.Acc)
	}
	tuned.V.Plans[level-2][idx].Precision = mg.PrecF32
	s, err := newSolver(tuned, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !s.reducedPrec {
		t.Fatal("solver with a forced f32 plan did not mark itself reduced-precision")
	}

	// 1e39 overflows float32 (max ≈3.4e38) to +Inf on conversion, so the
	// f32 cycle must detect the non-finite iterate; the same value is a
	// perfectly ordinary float64.
	x, b := NewGrid(17), NewGrid(17)
	for i := 1; i < 16; i++ {
		for j := 1; j < 16; j++ {
			b.Set(i, j, 1e39)
		}
	}
	if err := s.SolveV(x, b, 1e3); err != nil {
		t.Fatalf("escalated solve failed: %v", err)
	}
	if got := s.Escalations(); got != 1 {
		t.Fatalf("Escalations = %d, want 1", got)
	}
	for i, v := range x.Data() {
		if v != v || v-v != 0 {
			t.Fatalf("escalated answer has non-finite value at %d", i)
		}
	}
	assertScratchClean(t, s, "after escalation")

	// A second overload diverges again and escalates again — the counter
	// accumulates and the state machine is reusable.
	x.Zero()
	if err := s.SolveV(x, b, 1e3); err != nil {
		t.Fatalf("second escalated solve failed: %v", err)
	}
	if got := s.Escalations(); got != 2 {
		t.Fatalf("Escalations after second overload = %d, want 2", got)
	}
}

// TestServicePanicContainment: a panicking solve — here a genuine misuse, a
// 3D grid handed to a 2D-tuned solver — is recovered at the Service
// boundary into a *PanicError instead of crashing the process, counted in
// the Panicked failure class, and the service keeps serving.
func TestServicePanicContainment(t *testing.T) {
	s := tuneFamily(t, FamilyPoisson, 0)
	sv := newService(s, make(chan struct{}, 2), BreakerConfig{})

	err := sv.Solve(NewGrid3(17), NewGrid3(17), 1e3)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panicking solve: err = %v, want *PanicError", err)
	}
	if !errors.Is(err, ErrPanicked) {
		t.Fatalf("panic error %v does not match ErrPanicked", err)
	}
	if !strings.Contains(pe.Error(), "2D grid") {
		t.Errorf("panic error lost its payload: %q", pe.Error())
	}
	if len(pe.Stack) == 0 {
		t.Error("panic error carries no stack")
	}

	m := sv.Metrics()
	if m.Failed != 1 || m.Panicked != 1 || m.Completed != 0 {
		t.Errorf("metrics after panic = %+v, want Failed 1, Panicked 1", m)
	}
	if m.InFlight != 0 || m.Waiting != 0 {
		t.Errorf("gauges after panic = %+v, want all zero", m)
	}
	assertScratchClean(t, s, "after contained panic")
	assertNextSolveClean(t, s, 14)
	if err := sv.Solve(NewGrid(17), NewGrid(17), 1e3); err != nil {
		t.Fatalf("service solve after contained panic: %v", err)
	}
	if m := sv.Metrics(); m.Completed != 1 {
		t.Errorf("Completed after recovery = %d, want 1", m.Completed)
	}
}

// TestServiceFailureClassCounters: one solve of each failure class lands in
// its own counter, and all of them count in Failed.
func TestServiceFailureClassCounters(t *testing.T) {
	s := tuneFamily(t, FamilyPoisson, 0)
	sv := newService(s, make(chan struct{}, 2), BreakerConfig{})

	// Cancelled: an admitted solve whose context dies mid-flight. The cancel
	// fires from a recorder callback inside the running solve, so admission
	// (which sheds on an already-expired context) has long since passed.
	p, err := s.NewFamilyProblem(33, Unbiased, 15)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := recorderFunc(func(kind mg.EventKind, level, count int) { cancel() })
	err = sv.admit(ctx, func() error { return s.solveCtx(ctx, p.NewState(), p.B, 1e9, true, rec) })
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("mid-flight cancelled solve: err = %v, want ErrCancelled", err)
	}

	// Diverged: NaN input is never served as a NaN "success".
	bNaN := NewGrid(17)
	nan := 0.0
	nan /= nan
	bNaN.Set(8, 8, nan)
	if err := sv.Solve(NewGrid(17), bNaN, 1e3); !errors.Is(err, ErrDiverged) {
		t.Fatalf("NaN-rhs solve: err = %v, want ErrDiverged", err)
	}

	// Panicked.
	sv.Solve(NewGrid3(17), NewGrid3(17), 1e3)

	m := sv.Metrics()
	if m.Cancelled != 1 || m.Diverged != 1 || m.Panicked != 1 {
		t.Errorf("failure classes = cancelled %d, diverged %d, panicked %d; want 1 each",
			m.Cancelled, m.Diverged, m.Panicked)
	}
	if m.Failed != m.Cancelled+m.Diverged+m.Panicked {
		t.Errorf("failure classes %d+%d+%d do not sum to Failed %d",
			m.Cancelled, m.Diverged, m.Panicked, m.Failed)
	}
	assertScratchClean(t, s, "after failure-class sweep")
}

// TestBreakerLifecycle drives the per-service circuit breaker through its
// whole state machine: consecutive infrastructure failures open it, open
// sheds carry a Retry-After, the cooldown admits a half-open probe, and a
// healthy probe closes it again.
func TestBreakerLifecycle(t *testing.T) {
	s := tuneFamily(t, FamilyPoisson, 0)
	sv := newService(s, make(chan struct{}, 4), BreakerConfig{
		Threshold: 2, Cooldown: 200 * time.Millisecond,
	})
	if got := sv.BreakerState(); got != "closed" {
		t.Fatalf("initial breaker state = %q", got)
	}

	// Two consecutive panics reach the threshold and open the breaker.
	for i := 0; i < 2; i++ {
		if err := sv.Solve(NewGrid3(17), NewGrid3(17), 1e3); !errors.Is(err, ErrPanicked) {
			t.Fatalf("poisoned solve %d: err = %v, want ErrPanicked", i, err)
		}
	}
	if got := sv.BreakerState(); got != "open" {
		t.Fatalf("breaker after %d failures = %q, want open", 2, got)
	}

	// While open, requests shed instantly with the retry hint — they never
	// reach the solver.
	err := sv.Solve(NewGrid(17), NewGrid(17), 1e3)
	if !errors.Is(err, ErrShed) || !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open-breaker solve: err = %v, want ErrShed wrapping ErrBreakerOpen", err)
	}
	var boe *BreakerOpenError
	if !errors.As(err, &boe) || boe.RetryAfter <= 0 {
		t.Fatalf("open-breaker error %v carries no positive RetryAfter", err)
	}
	m := sv.Metrics()
	if m.BreakerOpens != 1 || m.BreakerShed != 1 {
		t.Errorf("breaker counters = opens %d, shed %d; want 1, 1", m.BreakerOpens, m.BreakerShed)
	}
	if m.Shed != 1 {
		t.Errorf("breaker shed not counted in Shed: %d", m.Shed)
	}
	if m.Admitted != 2 {
		t.Errorf("Admitted = %d, want only the two poisoned solves", m.Admitted)
	}

	// After the cooldown the breaker offers a half-open probe; a healthy
	// solve closes it and traffic flows normally again.
	time.Sleep(250 * time.Millisecond)
	if got := sv.BreakerState(); got != "half-open" {
		t.Fatalf("breaker after cooldown = %q, want half-open", got)
	}
	p, err2 := s.NewFamilyProblem(17, Unbiased, 16)
	if err2 != nil {
		t.Fatal(err2)
	}
	if err := sv.Solve(p.NewState(), p.B, 1e3); err != nil {
		t.Fatalf("half-open probe solve: %v", err)
	}
	if got := sv.BreakerState(); got != "closed" {
		t.Fatalf("breaker after healthy probe = %q, want closed", got)
	}
	if err := sv.Solve(p.NewState(), p.B, 1e3); err != nil {
		t.Fatalf("solve after breaker closed: %v", err)
	}
	if m := sv.Metrics(); m.BreakerOpens != 1 {
		t.Errorf("BreakerOpens after recovery = %d, want still 1", m.BreakerOpens)
	}
}

// TestBreakerReopensOnFailedProbe: a half-open probe that fails snaps the
// breaker straight back open (a second closed→open transition) instead of
// letting traffic back in.
func TestBreakerReopensOnFailedProbe(t *testing.T) {
	s := tuneFamily(t, FamilyPoisson, 0)
	sv := newService(s, make(chan struct{}, 4), BreakerConfig{
		Threshold: 1, Cooldown: 100 * time.Millisecond,
	})
	bad := func() error { return sv.Solve(NewGrid3(17), NewGrid3(17), 1e3) }
	if err := bad(); !errors.Is(err, ErrPanicked) {
		t.Fatalf("first poisoned solve: %v", err)
	}
	if got := sv.BreakerState(); got != "open" {
		t.Fatalf("breaker = %q, want open", got)
	}
	time.Sleep(150 * time.Millisecond)
	// The probe itself fails: back to open.
	if err := bad(); !errors.Is(err, ErrPanicked) {
		t.Fatalf("probe solve: %v", err)
	}
	if got := sv.BreakerState(); got != "open" {
		t.Fatalf("breaker after failed probe = %q, want open", got)
	}
	if m := sv.Metrics(); m.BreakerOpens != 2 {
		t.Errorf("BreakerOpens = %d, want 2", m.BreakerOpens)
	}
	assertScratchClean(t, s, "after failed probe")
}

// TestSolveVetsNonFiniteInput: NaN smuggled into a right-hand side cannot
// come back out as a "successful" NaN answer — the post-solve vet classifies
// it as divergence. On a table with reduced-precision plans the solve burns
// its one float64 escalation first (NaN survives f64 too) and still lands on
// ErrDiverged.
func TestSolveVetsNonFiniteInput(t *testing.T) {
	s := tuneFamily(t, FamilyPoisson, 0)
	x, b := NewGrid(17), NewGrid(17)
	nan := 0.0
	nan /= nan // NaN without importing math
	b.Set(8, 8, nan)
	err := s.Solve(x, b, 1e3)
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("NaN rhs: err = %v, want ErrDiverged", err)
	}
	assertScratchClean(t, s, "after NaN-input divergence")
	assertNextSolveClean(t, s, 17)
}
