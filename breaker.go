package pbmg

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the failure-containment half of the serving front end: typed
// errors for solves that panicked inside the kernels, and a per-family
// circuit breaker that stops feeding requests to a solver whose
// infrastructure is failing (consecutive diverged or panicked solves) until
// a half-open probe proves it healthy again. Client-caused failures —
// cancelled contexts, out-of-range sizes or accuracies — never open the
// breaker: they say nothing about the solver.

// ErrPanicked marks a solve that panicked inside the solver and was
// recovered at the Service boundary. Match with errors.Is; the concrete
// *PanicError carries the panic value and stack.
var ErrPanicked = errors.New("pbmg: solve panicked")

// ErrBreakerOpen marks a request shed because the family's circuit breaker
// is open after consecutive solver failures. Match with errors.Is; the
// concrete *BreakerOpenError carries the suggested retry delay. Breaker
// sheds also match ErrShed, so generic shed handling (HTTP 429/503 mapping,
// load-generator retry accounting) keeps working unchanged.
var ErrBreakerOpen = errors.New("pbmg: circuit breaker open")

// PanicError is the error a recovered solve panic becomes. The daemon
// survives — the panic is converted at the Service boundary, after the
// solver's unwind has returned all pooled scratch — and the request fails
// with this error (HTTP 500 in the serve layer).
type PanicError struct {
	// Value is the original panic value.
	Value any
	// Stack is the stack of the panicking goroutine (the worker's stack when
	// the panic crossed the scheduler as a sched.TaskPanic).
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("pbmg: solve panicked: %v", e.Value) }

// Is reports ErrPanicked, so errors.Is(err, ErrPanicked) matches without
// the caller needing the concrete type.
func (e *PanicError) Is(target error) bool { return target == ErrPanicked }

// BreakerOpenError is the error an open circuit breaker sheds with.
type BreakerOpenError struct {
	// RetryAfter is how long until the breaker will admit a probe — the
	// value the serve layer puts in the Retry-After header.
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("pbmg: circuit breaker open, retry in %v", e.RetryAfter)
}

// Is reports ErrBreakerOpen.
func (e *BreakerOpenError) Is(target error) bool { return target == ErrBreakerOpen }

// Breaker defaults: open after 5 consecutive infrastructure failures, probe
// again after 5 seconds.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 5 * time.Second
)

// BreakerConfig tunes a service's circuit breaker. The zero value selects
// the defaults.
type BreakerConfig struct {
	// Threshold is the consecutive infrastructure-failure count that opens
	// the breaker (≤ 0: DefaultBreakerThreshold).
	Threshold int
	// Cooldown is how long an open breaker sheds before admitting a single
	// half-open probe (≤ 0: DefaultBreakerCooldown).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = DefaultBreakerThreshold
	}
	if c.Cooldown <= 0 {
		c.Cooldown = DefaultBreakerCooldown
	}
	return c
}

// breakerOutcome classifies a finished solve for the breaker's accounting.
type breakerOutcome int

const (
	// breakerOK: the solve succeeded, or failed for a client-side reason
	// (bad size, unreachable accuracy) that says nothing about the solver.
	breakerOK breakerOutcome = iota
	// breakerInfraFailure: the solver itself failed — diverged or panicked.
	breakerInfraFailure
	// breakerNeutral: the solve never ran or was cancelled by the client;
	// no evidence either way.
	breakerNeutral
)

const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a consecutive-failure circuit breaker: closed (normal
// admission, counting consecutive infrastructure failures), open (shedding
// until the cooldown elapses), half-open (exactly one probe in flight;
// success closes, failure re-opens). All transitions happen under mu in
// allow/record; opens and shed are separate atomics so Metrics can read
// them without the lock.
type breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	state       int
	consecutive int
	openedAt    time.Time
	probing     bool

	opens atomic.Int64
	shed  atomic.Int64
}

func newBreaker(cfg BreakerConfig) *breaker {
	return &breaker{cfg: cfg.withDefaults()}
}

// allow decides whether a request may proceed. probe is true when this
// request is the half-open probe (its outcome decides the breaker's fate);
// a non-nil err is the shed to return, wrapping ErrBreakerOpen.
func (b *breaker) allow() (probe bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return false, nil
	case breakerOpen:
		wait := b.cfg.Cooldown - time.Since(b.openedAt)
		if wait > 0 {
			b.shed.Add(1)
			return false, &BreakerOpenError{RetryAfter: wait}
		}
		// Cooldown elapsed: this request becomes the half-open probe.
		b.state = breakerHalfOpen
		b.probing = true
		return true, nil
	default: // breakerHalfOpen
		if b.probing {
			// One probe at a time; everyone else keeps shedding until it
			// reports back.
			b.shed.Add(1)
			return false, &BreakerOpenError{RetryAfter: b.cfg.Cooldown}
		}
		b.probing = true
		return true, nil
	}
}

// record feeds a finished request's outcome back. probe is the value allow
// returned for it.
func (b *breaker) record(probe bool, outcome breakerOutcome) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
	}
	switch outcome {
	case breakerOK:
		b.consecutive = 0
		if b.state == breakerHalfOpen && probe {
			b.state = breakerClosed
		}
	case breakerInfraFailure:
		b.consecutive++
		if b.state == breakerHalfOpen || (b.state == breakerClosed && b.consecutive >= b.cfg.Threshold) {
			b.state = breakerOpen
			b.openedAt = time.Now()
			b.opens.Add(1)
		}
	case breakerNeutral:
		// Cancelled or never ran: no evidence. A half-open probe that was
		// cancelled releases the probe slot (above) so the next request
		// probes instead.
	}
}

// stateName reports the state for metrics and readiness: "closed", "open",
// or "half-open". An open breaker whose cooldown has elapsed reports
// half-open — the next request will probe — so readiness stops flapping on
// an idle family that merely has nobody retrying yet.
func (b *breaker) stateName() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if time.Since(b.openedAt) >= b.cfg.Cooldown {
			return "half-open"
		}
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
