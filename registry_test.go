package pbmg

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// tuneRegistry builds a registry serving the 2D Poisson family (N ≤ 33) and
// the 3D Poisson family (N ≤ 17) on a small shared pool, tuned on the
// deterministic simulated machine.
func tuneRegistry(t *testing.T, o RegistryOptions) *Registry {
	t.Helper()
	r := NewRegistry(o)
	t.Cleanup(r.Close)
	if _, err := r.Tune(Options{
		MaxSize: 33, Family: FamilyPoisson,
		Machine: "intel-harpertown", Seed: 5,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Tune(Options{
		MaxSize: 17, Family: FamilyPoisson3D,
		Machine: "intel-harpertown", Seed: 5,
	}); err != nil {
		t.Fatal(err)
	}
	return r
}

// assertBitIdentical fails unless two grids match bit for bit.
func assertBitIdentical(t *testing.T, want, got *Grid, label string) {
	t.Helper()
	wd, gd := want.Data(), got.Data()
	for j, v := range wd {
		if math.Float64bits(v) != math.Float64bits(gd[j]) {
			t.Fatalf("%s: concurrent result differs from sequential at index %d", label, j)
		}
	}
}

// TestRegistryServesTwoFamiliesConcurrently is the multi-family serving
// contract under -race: one registry, one shared pool, one global admission
// limit, 8 goroutines split across a 2D and a 3D family — and every
// concurrent result is byte-identical to the same solve run sequentially.
func TestRegistryServesTwoFamiliesConcurrently(t *testing.T) {
	r := tuneRegistry(t, RegistryOptions{Workers: 4, MaxInFlight: 4, FactorCacheCap: 8})

	const goroutines = 8
	const perG = 3
	const target = 1e5
	type req struct {
		family Family
		n      int
		p      *Problem
		seq    *Grid // sequential reference result
	}
	reqs := make([][]req, goroutines)
	for g := 0; g < goroutines; g++ {
		family, n := FamilyPoisson, 33
		if g%2 == 1 {
			family, n = FamilyPoisson3D, 17
		}
		svc, err := r.Lookup(family, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < perG; i++ {
			p, err := svc.Solver().NewFamilyProblem(n, Unbiased, int64(1000+g*perG+i))
			if err != nil {
				t.Fatal(err)
			}
			// Sequential baseline, off the service so it stays out of the
			// serving metrics.
			seq := p.NewState()
			if err := svc.Solver().Solve(seq, p.B, target); err != nil {
				t.Fatal(err)
			}
			reqs[g] = append(reqs[g], req{family: family, n: n, p: p, seq: seq})
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, rq := range reqs[g] {
				x := rq.p.NewState()
				if err := r.Solve(rq.family, 0, x, rq.p.B, target); err != nil {
					t.Errorf("goroutine %d solve %d: %v", g, i, err)
					return
				}
				assertBitIdentical(t, rq.seq, x, rq.family.String())
			}
		}(g)
	}
	wg.Wait()

	m := r.Metrics()
	if len(m.Families) != 2 {
		t.Fatalf("Metrics reports %d families, want 2", len(m.Families))
	}
	wantPer := int64(goroutines / 2 * perG)
	for _, fm := range m.Families {
		if fm.Completed != wantPer || fm.Admitted != wantPer || fm.Failed != 0 || fm.Shed != 0 {
			t.Errorf("family %s metrics = %+v, want %d admitted+completed", fm.Key, fm.ServiceMetrics, wantPer)
		}
		if fm.InFlight != 0 {
			t.Errorf("family %s still reports %d in flight after drain", fm.Key, fm.InFlight)
		}
	}
	if m.Aggregate.Completed != 2*wantPer {
		t.Errorf("aggregate completed = %d, want %d", m.Aggregate.Completed, 2*wantPer)
	}
	if m.Unroutable != 0 {
		t.Errorf("unroutable = %d, want 0", m.Unroutable)
	}
}

// TestRegistryRoutingAndMismatch: requests route by (family, ε) with the
// same semantics as the CLI mismatch checks — eps ignored for parameterless
// families, family defaults resolved, misses counted and explained.
func TestRegistryRoutingAndMismatch(t *testing.T) {
	r := NewRegistry(RegistryOptions{})
	t.Cleanup(r.Close)
	if _, err := r.Tune(Options{MaxSize: 17, Family: FamilyPoisson, Machine: "intel-harpertown", Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Tune(Options{MaxSize: 17, Family: FamilyAnisotropic, Epsilon: 0.25, Machine: "intel-harpertown", Seed: 5}); err != nil {
		t.Fatal(err)
	}

	if _, err := r.Lookup(FamilyPoisson, 0); err != nil {
		t.Fatalf("Lookup(poisson, 0): %v", err)
	}
	// Parameterless families ignore eps, as CheckFamilyFlags does.
	if _, err := r.Lookup(FamilyPoisson, 123); err != nil {
		t.Fatalf("Lookup(poisson, 123): %v", err)
	}
	if _, err := r.Lookup(FamilyAnisotropic, 0.25); err != nil {
		t.Fatalf("Lookup(aniso, 0.25): %v", err)
	}

	// eps 0 resolves to the family default (0.1), which is not served.
	if _, err := r.Lookup(FamilyAnisotropic, 0); err == nil {
		t.Fatal("Lookup(aniso, default) matched a 0.25-tuned table")
	} else if !strings.Contains(err.Error(), "0.25") {
		t.Fatalf("eps-mismatch error does not name the served eps: %v", err)
	}
	// A family that is not served at all lists the catalog.
	if err := r.Solve(FamilyVarCoef, 0, NewGrid(17), NewGrid(17), 1e3); err == nil {
		t.Fatal("Solve(varcoef) routed despite no varcoef table")
	} else if !strings.Contains(err.Error(), "poisson") || !strings.Contains(err.Error(), "aniso:0.25") {
		t.Fatalf("catalog error incomplete: %v", err)
	}
	if got := r.Metrics().Unroutable; got != 2 {
		t.Fatalf("Unroutable = %d, want 2", got)
	}

	// Duplicate keys must be rejected.
	if _, err := r.Tune(Options{MaxSize: 9, Family: FamilyPoisson, Machine: "intel-harpertown", Seed: 5}); err == nil {
		t.Fatal("duplicate poisson registration accepted")
	}

	keys := r.Keys()
	if len(keys) != 2 || keys[0].String() != "poisson" || keys[1].String() != "aniso:0.25" {
		t.Fatalf("Keys() = %v", keys)
	}
	if len(r.Services()) != 2 {
		t.Fatalf("Services() = %d entries, want 2", len(r.Services()))
	}
}

// TestRegistryLoadDir: a directory of tuned-table JSON files (one per
// family, as mgtune writes them) becomes a serving catalog; bad files fail
// loudly.
func TestRegistryLoadDir(t *testing.T) {
	dir := t.TempDir()
	if err := tuneFamily(t, FamilyPoisson, 0).Save(filepath.Join(dir, "poisson.json")); err != nil {
		t.Fatal(err)
	}
	if err := tuneFamily(t, FamilyAnisotropic, 0.25).Save(filepath.Join(dir, "aniso.json")); err != nil {
		t.Fatal(err)
	}

	r := NewRegistry(RegistryOptions{})
	t.Cleanup(r.Close)
	services, err := r.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(services) != 2 {
		t.Fatalf("LoadDir registered %d services, want 2", len(services))
	}
	for _, f := range []Family{FamilyPoisson, FamilyAnisotropic} {
		svc, err := r.Lookup(f, 0.25) // eps ignored for poisson, exact for aniso
		if err != nil {
			t.Fatal(err)
		}
		p, err := svc.Solver().NewFamilyProblem(17, Unbiased, 7)
		if err != nil {
			t.Fatal(err)
		}
		Reference(p)
		x := p.NewState()
		if err := svc.Solve(x, p.B, 1e3); err != nil {
			t.Fatal(err)
		}
		if got := p.AccuracyOf(x); got < 1e2 {
			t.Errorf("family %s served accuracy %.3g", f, got)
		}
	}

	// Re-loading the same directory collides on every key.
	if _, err := r.LoadDir(dir); err == nil {
		t.Fatal("duplicate LoadDir accepted")
	}

	// A directory with a broken config must fail as a whole — atomically:
	// the good configuration next to it must NOT be registered, so fixing
	// the bad file and retrying works instead of colliding forever.
	bad := t.TempDir()
	if err := tuneFamily(t, FamilyPoisson, 0).Save(filepath.Join(bad, "poisson.json")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(bad, "zbroken.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	r2 := NewRegistry(RegistryOptions{})
	t.Cleanup(r2.Close)
	if _, err := r2.LoadDir(bad); err == nil {
		t.Fatal("LoadDir accepted a broken configuration")
	}
	if got := r2.Keys(); len(got) != 0 {
		t.Fatalf("failed LoadDir left %v registered, want nothing", got)
	}
	if err := os.Remove(filepath.Join(bad, "zbroken.json")); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.LoadDir(bad); err != nil {
		t.Fatalf("LoadDir retry after fixing the directory: %v", err)
	}
	if _, err := r2.LoadDir(t.TempDir()); err == nil {
		t.Fatal("LoadDir accepted an empty directory")
	}
}

// TestRegistrySolveBatchUsesGlobalAdmission: a registered solver's
// SolveBatch must run behind the registry's global admission limit and show
// up in the registry metrics, not on a private throwaway limiter.
func TestRegistrySolveBatchUsesGlobalAdmission(t *testing.T) {
	r := NewRegistry(RegistryOptions{MaxInFlight: 3})
	t.Cleanup(r.Close)
	svc, err := r.Tune(Options{MaxSize: 17, Family: FamilyPoisson, Machine: "intel-harpertown", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := svc.Solver()
	if got := s.DefaultService(); got != svc {
		t.Fatal("registered solver's default service is not the registry service")
	}
	if got := s.DefaultService().MaxInFlight(); got != 3 {
		t.Fatalf("default service MaxInFlight = %d, want the global 3", got)
	}
	batch := make([]BatchProblem, 6)
	for i := range batch {
		p := NewProblem(17, Unbiased, int64(700+i))
		batch[i] = BatchProblem{X: p.NewState(), B: p.B}
	}
	if err := s.SolveBatch(batch, 1e3); err != nil {
		t.Fatal(err)
	}
	if got := r.Metrics().Aggregate.Completed; got != 6 {
		t.Fatalf("registry metrics missed batch solves: completed = %d, want 6", got)
	}

	// A solver whose private default service was created BEFORE registration
	// must still be rewired onto the registry service.
	s2, err := Tune(Options{MaxSize: 9, Family: FamilyVarCoef, Machine: "intel-harpertown", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pre := s2.DefaultService()
	svc2, err := r.Register(s2)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.DefaultService(); got != svc2 || got == pre {
		t.Fatal("registration did not replace the pre-existing private default service")
	}
}
