package pbmg

import (
	"path/filepath"
	"strings"
	"testing"
)

// tuneSmall tunes a small solver on a simulated machine (deterministic and
// fast) shared by the facade tests.
func tuneSmall(t *testing.T) *Solver {
	t.Helper()
	s, err := Tune(Options{
		MaxSize:      33,
		Distribution: Unbiased,
		Machine:      "intel-harpertown",
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestTuneRejectsBadSizeAndMachine(t *testing.T) {
	if _, err := Tune(Options{MaxSize: 10}); err == nil {
		t.Fatal("non 2^k+1 size accepted")
	}
	if _, err := Tune(Options{MaxSize: 17, Machine: "pdp-11"}); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestSolveMeetsAccuracy(t *testing.T) {
	s := tuneSmall(t)
	p := NewProblem(33, Unbiased, 99)
	Reference(p)
	for _, target := range []float64{1e1, 1e3, 1e5} {
		x := p.NewState()
		if err := s.Solve(x, p.B, target); err != nil {
			t.Fatal(err)
		}
		if got := p.AccuracyOf(x); got < target*0.1 {
			t.Errorf("Solve(%g) achieved %.3g", target, got)
		}
		xv := p.NewState()
		if err := s.SolveV(xv, p.B, target); err != nil {
			t.Fatal(err)
		}
		if got := p.AccuracyOf(xv); got < target*0.1 {
			t.Errorf("SolveV(%g) achieved %.3g", target, got)
		}
	}
}

func TestSolveSmallerThanTunedSize(t *testing.T) {
	s := tuneSmall(t)
	p := NewProblem(17, Unbiased, 7)
	Reference(p)
	x := p.NewState()
	if err := s.Solve(x, p.B, 1e5); err != nil {
		t.Fatal(err)
	}
	if got := p.AccuracyOf(x); got < 1e4 {
		t.Fatalf("sub-size solve achieved %.3g", got)
	}
}

func TestSolveErrors(t *testing.T) {
	s := tuneSmall(t)
	p := NewProblem(65, Unbiased, 1)
	if err := s.Solve(p.NewState(), p.B, 1e5); err == nil {
		t.Fatal("grid larger than tuned size accepted")
	}
	q := NewProblem(33, Unbiased, 1)
	if err := s.Solve(q.NewState(), q.B, 1e12); err == nil {
		t.Fatal("accuracy above tuned maximum accepted")
	}
	bad := NewGrid(10)
	if err := s.Solve(bad, bad, 10); err == nil {
		t.Fatal("non 2^k+1 grid accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := tuneSmall(t)
	path := filepath.Join(t.TempDir(), "cfg.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.Machine() != s.Machine() || loaded.MaxSize() != s.MaxSize() {
		t.Fatal("metadata lost in round trip")
	}
	p := NewProblem(33, Unbiased, 4)
	Reference(p)
	x := p.NewState()
	if err := loaded.Solve(x, p.B, 1e5); err != nil {
		t.Fatal(err)
	}
	if got := p.AccuracyOf(x); got < 1e4 {
		t.Fatalf("loaded solver achieved %.3g", got)
	}
}

func TestCycleShapeAndDescribe(t *testing.T) {
	s := tuneSmall(t)
	shape, err := s.CycleShape(33, 1e5, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(shape, "|") {
		t.Fatalf("shape looks wrong:\n%s", shape)
	}
	desc, err := s.Describe(33, 1e5, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(desc, "MULTIGRID-V") {
		t.Fatalf("describe looks wrong:\n%s", desc)
	}
	fdesc, err := s.Describe(33, 1e5, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fdesc, "FULL-MG") {
		t.Fatalf("full describe looks wrong:\n%s", fdesc)
	}
	if _, err := s.CycleShape(65, 1e5, true); err == nil {
		t.Fatal("CycleShape beyond tuned size accepted")
	}
}

func TestAccuraciesAccessor(t *testing.T) {
	s := tuneSmall(t)
	accs := s.Accuracies()
	if len(accs) != 5 || accs[0] != 1e1 || accs[4] != 1e9 {
		t.Fatalf("Accuracies = %v", accs)
	}
	accs[0] = -1
	if s.Accuracies()[0] != 1e1 {
		t.Fatal("Accuracies exposes internal state")
	}
}

func TestParallelSolverMatchesSerial(t *testing.T) {
	serial := tuneSmall(t)
	path := filepath.Join(t.TempDir(), "cfg.json")
	if err := serial.Save(path); err != nil {
		t.Fatal(err)
	}
	par, err := Load(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	p := NewProblem(33, Unbiased, 6)
	xs, xp := p.NewState(), p.NewState()
	if err := serial.Solve(xs, p.B, 1e5); err != nil {
		t.Fatal(err)
	}
	if err := par.Solve(xp, p.B, 1e5); err != nil {
		t.Fatal(err)
	}
	for i := range xs.Data() {
		if xs.Data()[i] != xp.Data()[i] {
			t.Fatal("parallel solver result differs from serial")
		}
	}
}

func TestSolveAdaptive(t *testing.T) {
	s := tuneSmall(t)
	p := NewProblem(33, Unbiased, 17)
	Reference(p)
	x := p.NewState()
	iters, reduction, err := s.SolveAdaptive(x, p.B, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if reduction < 1e6 || iters == 0 {
		t.Fatalf("adaptive solve: iters=%d reduction=%.3g", iters, reduction)
	}
	if acc := p.AccuracyOf(x); acc < 1e4 {
		t.Fatalf("adaptive solve accuracy %.3g", acc)
	}
	if _, _, err := s.SolveAdaptive(x, p.B, 0.5); err == nil {
		t.Fatal("reduction < 1 accepted")
	}
	bad := NewGrid(10)
	if _, _, err := s.SolveAdaptive(bad, bad, 10); err == nil {
		t.Fatal("bad grid accepted")
	}
}
