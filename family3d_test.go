package pbmg

import (
	"math"
	"reflect"
	"testing"
)

// TestPoisson3DSolveMeetsAccuracy is the end-to-end acceptance path: tune
// the poisson3d family up to level 5 (N=33), then solve a held-out 3D
// problem at every tuned target.
func TestPoisson3DSolveMeetsAccuracy(t *testing.T) {
	s := tuneFamily(t, FamilyPoisson3D, 0)
	if s.Family() != FamilyPoisson3D || s.Dim() != 3 {
		t.Fatalf("solver family %v dim %d", s.Family(), s.Dim())
	}
	p, err := s.NewFamilyProblem(33, Unbiased, 99)
	if err != nil {
		t.Fatal(err)
	}
	if p.B.Dim() != 3 {
		t.Fatalf("3D problem drew %dD grids", p.B.Dim())
	}
	Reference(p)
	for _, target := range []float64{1e1, 1e5, 1e9} {
		x := p.NewState()
		if err := s.Solve(x, p.B, target); err != nil {
			t.Fatal(err)
		}
		if got := p.AccuracyOf(x); got < target {
			t.Errorf("Solve(%g) achieved %.3g", target, got)
		}
	}
	// The V-family path and the cycle renderer must work in 3D too.
	x := p.NewState()
	if err := s.SolveV(x, p.B, 1e5); err != nil {
		t.Fatal(err)
	}
	if got := p.AccuracyOf(x); got < 1e5 {
		t.Errorf("SolveV(1e5) achieved %.3g", got)
	}
	if shape, err := s.CycleShape(33, 1e5, true); err != nil || shape == "" {
		t.Fatalf("CycleShape: %q, %v", shape, err)
	}
}

// TestPoisson3DTableDiffersFrom2D: the acceptance criterion that the 3D
// tuned table is genuinely different from the 2D Poisson table — the
// dynamic program re-measures under 7-point kernels and 3D costs, so the
// optimal cycle shape shifts.
func TestPoisson3DTableDiffersFrom2D(t *testing.T) {
	s2 := tuneFamily(t, FamilyPoisson, 0)
	s3 := tuneFamily(t, FamilyPoisson3D, 0)
	if reflect.DeepEqual(s2.Tuned().V.Plans, s3.Tuned().V.Plans) {
		t.Fatal("3D tuned V table is identical to the 2D one")
	}
	if s3.Tuned().Family != "poisson3d" {
		t.Fatalf("3D provenance not recorded: %q", s3.Tuned().Family)
	}
}

// TestPoisson3DRoundTripsThroughSaveLoad: a 3D configuration keeps its
// dimension across serialization and the reloaded solver still solves 3D
// problems.
func TestPoisson3DRoundTripsThroughSaveLoad(t *testing.T) {
	s := tuneFamily(t, FamilyPoisson3D, 0)
	path := t.TempDir() + "/poisson3d.json"
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if back.Family() != FamilyPoisson3D || back.Dim() != 3 {
		t.Fatalf("loaded solver family %v dim %d", back.Family(), back.Dim())
	}
	p, err := back.NewFamilyProblem(17, Unbiased, 3)
	if err != nil {
		t.Fatal(err)
	}
	Reference(p)
	x := p.NewState()
	if err := back.Solve(x, p.B, 1e5); err != nil {
		t.Fatal(err)
	}
	if got := p.AccuracyOf(x); got < 1e5 {
		t.Fatalf("reloaded 3D solver achieved %.3g, want ≥ 1e5", got)
	}
}

// TestPoisson3DRejects2DGrids: feeding 2D grids to a 3D solver must fail
// loudly (the grid guards fire), not corrupt memory.
func TestPoisson3DRejects2DGrids(t *testing.T) {
	s := tuneFamily(t, FamilyPoisson3D, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("3D solver accepted 2D grids")
		}
	}()
	x, b := NewGrid(33), NewGrid(33)
	_ = s.Solve(x, b, 1e5)
}

// TestSolveBatch3DByteIdenticalToSequential extends the serving
// determinism contract to the 3D family.
func TestSolveBatch3DByteIdenticalToSequential(t *testing.T) {
	s := tuneFamily(t, FamilyPoisson3D, 0)
	const k = 4
	const target = 1e7
	seqStates := make([]*Grid, k)
	probs := make([]*Problem, k)
	for i := range probs {
		p, err := s.NewFamilyProblem(17, Unbiased, int64(200+i))
		if err != nil {
			t.Fatal(err)
		}
		probs[i] = p
		seqStates[i] = p.NewState()
		if err := s.Solve(seqStates[i], p.B, target); err != nil {
			t.Fatal(err)
		}
	}
	batch := make([]BatchProblem, k)
	for i := range batch {
		batch[i] = BatchProblem{X: probs[i].NewState(), B: probs[i].B}
	}
	if err := s.SolveBatch(batch, target); err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		sd, bd := seqStates[i].Data(), batch[i].X.Data()
		for j, v := range sd {
			if math.Float64bits(v) != math.Float64bits(bd[j]) {
				t.Fatalf("problem %d: batch differs from sequential at %d", i, j)
			}
		}
	}
}
