package pbmg

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"pbmg/internal/core"
	"pbmg/internal/direct"
	"pbmg/internal/sched"
)

// This file is the multi-family serving layer: a Registry holds one tuned
// Solver per operator family and routes requests to it, so a single process
// serves several tuned configurations side by side — the paper's
// tune-once/serve-many model (§3.2.1) extended from one configuration to a
// catalog of them. Every family the registry serves shares one worker pool,
// one global admission limit, and one bounded direct-factor cache, so adding
// a family adds tables, not threads.

// ServeKey identifies one tuned configuration in a Registry: the operator
// family, its resolved parameter (0 for the parameterless Laplacians), and
// the spatial dimension.
type ServeKey struct {
	Family  Family
	Epsilon float64
	Dim     int
}

// String renders the key the way the CLI flags spell it: "poisson",
// "aniso:0.01", "poisson3d".
func (k ServeKey) String() string {
	if FamilyHasParam(k.Family) {
		return fmt.Sprintf("%s:%g", k.Family, k.Epsilon)
	}
	return k.Family.String()
}

// ParseFamilySpecs parses the CLI syntax for a serving catalog: a
// comma-separated list of family[:eps] items, e.g.
// "poisson,aniso:0.01,poisson3d". Epsilon stays 0 (family default) when the
// :eps suffix is absent; Dim is filled from the family.
func ParseFamilySpecs(spec string) ([]ServeKey, error) {
	var out []ServeKey
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, epsStr, hasEps := strings.Cut(item, ":")
		f, err := ParseFamily(name)
		if err != nil {
			return nil, err
		}
		k := ServeKey{Family: f, Dim: f.Dim()}
		if hasEps {
			eps, err := strconv.ParseFloat(epsStr, 64)
			if err != nil {
				return nil, fmt.Errorf("pbmg: family %q: bad parameter %q: %v", name, epsStr, err)
			}
			k.Epsilon = eps
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("pbmg: family list %q names no families", spec)
	}
	return out, nil
}

// Key returns the (family, ε, dim) registry key the service is served
// under.
func (sv *Service) Key() ServeKey { return serveKeyOf(sv.s) }

// serveKeyOf derives the registry key of a tuned solver.
func serveKeyOf(s *Solver) ServeKey {
	k := ServeKey{Family: s.Family(), Dim: s.Dim()}
	if FamilyHasParam(k.Family) {
		k.Epsilon = s.Epsilon()
	}
	return k
}

// DefaultFactorCacheCap bounds the registry's shared direct-factor cache: a
// long-running server that rotates through many (operator, size, dimension)
// keys keeps at most this many band-Cholesky factorizations live, evicting
// least-recently-used ones. Each tuned family touches at most one operator
// per level, so the default comfortably fits several families' full
// hierarchies while still bounding memory.
const DefaultFactorCacheCap = 64

// RegistryOptions configures NewRegistry.
type RegistryOptions struct {
	// Workers sets the shared kernel worker pool for every served family
	// (≤ 1: serial).
	Workers int
	// MaxInFlight is the global admission limit across all families (≤ 0:
	// 2×GOMAXPROCS).
	MaxInFlight int
	// FactorCacheCap bounds the shared direct-factor cache (0:
	// DefaultFactorCacheCap; < 0: unbounded).
	FactorCacheCap int
	// Breaker configures every registered family's circuit breaker (the
	// zero value selects the defaults; the breakers themselves are
	// per-family, so one family melting down never trips the others).
	Breaker BreakerConfig
}

// Registry serves several tuned operator families from one process. Each
// registered configuration gets a Service routed by (family, ε); all of them
// share the registry's worker pool, its global admission semaphore, and its
// bounded direct-factor cache. A Registry is safe for concurrent use: any
// number of goroutines may Lookup and Solve while families are being
// registered. Release with Close.
type Registry struct {
	pool       *sched.Pool
	cache      *direct.Cache
	sem        chan struct{}
	breakerCfg BreakerConfig

	unroutable atomic.Int64

	mu       sync.RWMutex
	services map[ServeKey]*Service
	order    []ServeKey // registration order, for stable listings
}

// NewRegistry returns an empty registry with the shared serving resources
// allocated.
func NewRegistry(o RegistryOptions) *Registry {
	var pool *sched.Pool
	if o.Workers > 1 {
		pool = sched.NewPool(o.Workers)
	}
	maxInFlight := o.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	cacheCap := o.FactorCacheCap
	switch {
	case cacheCap == 0:
		cacheCap = DefaultFactorCacheCap
	case cacheCap < 0:
		cacheCap = 0 // direct.NewCache treats ≤ 0 as unbounded
	}
	return &Registry{
		pool:       pool,
		cache:      direct.NewCache(cacheCap),
		sem:        make(chan struct{}, maxInFlight),
		breakerCfg: o.Breaker,
		services:   make(map[ServeKey]*Service),
	}
}

// MaxInFlight returns the global admission limit shared by every family.
func (r *Registry) MaxInFlight() int { return cap(r.sem) }

// PoolSteals returns the shared worker pool's cumulative successful-steal
// count (0 for a serial registry) — scheduler visibility for benchmarks.
func (r *Registry) PoolSteals() int64 {
	if r.pool == nil {
		return 0
	}
	return r.pool.Steals()
}

// Register adopts a tuned solver into the registry: its workspace is rewired
// onto the registry's shared worker pool and factor cache, and it is served
// behind the global admission limit. The registry service also becomes the
// solver's default service — replacing any private one created earlier — so
// Solver.SolveBatch honors the global limit and its completions appear in
// the registry metrics rather than on a private limiter. Register must not
// be called while solves are in flight on the solver. The solver's own pool
// (if it was tuned with one) stays with the caller — Solver.Close still
// releases it — but solves routed through the registry run on the shared
// pool. Registering a second configuration with the same (family, ε, dim)
// key fails.
func (r *Registry) Register(s *Solver) (*Service, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.checkKeyLocked(serveKeyOf(s)); err != nil {
		return nil, err
	}
	return r.registerLocked(s), nil
}

// checkKeyLocked rejects a key the registry already serves.
func (r *Registry) checkKeyLocked(key ServeKey) error {
	if _, ok := r.services[key]; ok {
		return fmt.Errorf("pbmg: registry already serves family %s", key)
	}
	return nil
}

// registerLocked adopts a solver whose key has passed checkKeyLocked.
func (r *Registry) registerLocked(s *Solver) *Service {
	key := serveKeyOf(s)
	s.ws.Pool = r.pool
	s.ws.FactorCache = r.cache
	svc := newService(s, r.sem, r.breakerCfg)
	// The registry service becomes the solver's default service even if a
	// private one was already created before registration, so
	// Solver.SolveBatch always honors the global limit and its completions
	// land in the registry metrics. The mutex-guarded setter makes this safe
	// against concurrent DefaultService readers; only the pool and cache
	// rewires above need Register's no-solves-in-flight contract.
	s.setDefaultService(svc)
	r.services[key] = svc
	r.order = append(r.order, key)
	return svc
}

// Tune tunes a configuration on the registry's shared pool and registers it.
// The Workers option is ignored: the shared pool is used for tuning and
// serving alike.
func (r *Registry) Tune(o Options) (*Service, error) {
	s, err := tuneWithPool(o, r.pool)
	if err != nil {
		return nil, err
	}
	s.pool = nil // the registry owns the shared pool
	return r.Register(s)
}

// LoadFile loads one tuned configuration written by Solver.Save (or mgtune)
// and registers it.
func (r *Registry) LoadFile(path string) (*Service, error) {
	tuned, err := core.Load(path)
	if err != nil {
		return nil, err
	}
	s, err := newSolver(tuned, r.pool)
	if err != nil {
		return nil, err
	}
	s.pool = nil // the registry owns the shared pool
	svc, err := r.Register(s)
	if err != nil {
		return nil, fmt.Errorf("%w (from %s)", err, path)
	}
	return svc, nil
}

// LoadDir loads every .json tuned configuration in dir (one file per family,
// as written by mgtune) and registers them all, in filename order. The load
// is all-or-nothing: any file that fails to load or collides with an
// already-registered family fails the whole call and registers NOTHING, so a
// serving process neither comes up quietly missing a family nor bricks the
// retry after the operator fixes the bad file.
func (r *Registry) LoadDir(dir string) ([]*Service, error) {
	configs, err := core.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	// Build every solver and vet every key before touching the registry.
	solvers := make([]*Solver, 0, len(configs))
	paths := make(map[ServeKey]string, len(configs))
	for _, cfg := range configs {
		s, err := newSolver(cfg.T, r.pool)
		if err != nil {
			return nil, fmt.Errorf("pbmg: configuration %s: %w", cfg.Path, err)
		}
		s.pool = nil // the registry owns the shared pool
		key := serveKeyOf(s)
		if prev, dup := paths[key]; dup {
			return nil, fmt.Errorf("pbmg: %s and %s both serve family %s", prev, cfg.Path, key)
		}
		paths[key] = cfg.Path
		solvers = append(solvers, s)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range solvers {
		key := serveKeyOf(s)
		if err := r.checkKeyLocked(key); err != nil {
			return nil, fmt.Errorf("%w (from %s)", err, paths[key])
		}
	}
	services := make([]*Service, 0, len(solvers))
	for _, s := range solvers {
		services = append(services, r.registerLocked(s))
	}
	return services, nil
}

// Keys returns the served (family, ε, dim) keys in registration order.
func (r *Registry) Keys() []ServeKey {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]ServeKey(nil), r.order...)
}

// Services returns the per-family services in registration order.
func (r *Registry) Services() []*Service {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Service, 0, len(r.order))
	for _, k := range r.order {
		out = append(out, r.services[k])
	}
	return out
}

// Lookup routes a request to the service tuned for the family and parameter.
// For parameterized families, eps 0 selects the family default (the same
// resolution the tuner applies); for the parameterless Laplacians eps is
// ignored, mirroring Solver.CheckFamilyFlags. A miss counts toward the
// Unroutable metric and the error names what the registry does serve.
func (r *Registry) Lookup(f Family, eps float64) (*Service, error) {
	key := ServeKey{Family: f, Dim: f.Dim()}
	if FamilyHasParam(f) {
		key.Epsilon = core.ResolveEps(f, eps)
	}
	r.mu.RLock()
	svc, ok := r.services[key]
	r.mu.RUnlock()
	if ok {
		return svc, nil
	}
	r.unroutable.Add(1)
	return nil, r.routeError(key)
}

// routeError explains a routing miss: an eps mismatch within a served family
// points at the tuned parameters (like Solver.CheckFamilyFlags does for a
// single configuration), anything else lists the served catalog.
func (r *Registry) routeError(key ServeKey) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var sameFamily []string
	for _, k := range r.order {
		if k.Family == key.Family {
			sameFamily = append(sameFamily, fmt.Sprintf("%g", k.Epsilon))
		}
	}
	if len(sameFamily) > 0 {
		return fmt.Errorf("pbmg: registry serves family %s at eps %s, not %g; re-tune with mgtune -family %s -epsilon %g",
			key.Family, strings.Join(sameFamily, ", "), key.Epsilon, key.Family, key.Epsilon)
	}
	served := make([]string, 0, len(r.order))
	for _, k := range r.order {
		served = append(served, k.String())
	}
	sort.Strings(served)
	if len(served) == 0 {
		return fmt.Errorf("pbmg: registry serves no families; request for %s rejected", key)
	}
	return fmt.Errorf("pbmg: registry does not serve family %s (serving: %s)",
		key, strings.Join(served, ", "))
}

// Solve routes one tuned FULL-MULTIGRID solve to the family's service,
// blocking while the registry-wide MaxInFlight solves are already running.
// See Solver.Solve.
func (r *Registry) Solve(f Family, eps float64, x, b *Grid, accuracy float64) error {
	svc, err := r.Lookup(f, eps)
	if err != nil {
		return err
	}
	return svc.Solve(x, b, accuracy)
}

// FamilyMetrics is one family's counters in a registry snapshot, plus its
// circuit-breaker state ("closed", "open", "half-open").
type FamilyMetrics struct {
	Key ServeKey
	ServiceMetrics
	Breaker string
}

// RegistryMetrics is a point-in-time snapshot of the registry's request
// counters: per-family in registration order, their sum, and the requests
// that matched no served family (which never reach a service, so they are
// not part of the aggregate).
type RegistryMetrics struct {
	Families   []FamilyMetrics
	Aggregate  ServiceMetrics
	Unroutable int64
}

// Metrics snapshots every served family's counters.
func (r *Registry) Metrics() RegistryMetrics {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m := RegistryMetrics{Unroutable: r.unroutable.Load()}
	for _, k := range r.order {
		svc := r.services[k]
		sm := svc.Metrics()
		m.Families = append(m.Families, FamilyMetrics{Key: k, ServiceMetrics: sm, Breaker: svc.BreakerState()})
		m.Aggregate.Add(sm)
	}
	return m
}

// Close releases the registry's shared worker pool. It must not be called
// while solves are in flight. Solvers registered via Register keep their own
// pools (release those with Solver.Close); solvers the registry built itself
// (Tune, LoadFile, LoadDir) have no other resources to release.
func (r *Registry) Close() { closePool(r.pool) }
