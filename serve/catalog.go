package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"pbmg"
	"pbmg/internal/faultinject"
)

// A catalog is one immutable generation of the serving state: a registry
// loaded from the tuned-table directory plus one admission gate per served
// family. Hot-reload builds a complete new catalog off to the side and
// swaps a pointer, so requests always see a registry and its gates from
// the SAME generation; the old catalog is retired (drained, then closed)
// in the background once its last in-flight request releases it.
type catalog struct {
	reg   *pbmg.Registry
	gates map[pbmg.ServeKey]*gate
	order []pbmg.ServeKey
	dir   string

	// refs counts requests currently using this catalog. A catalog is
	// acquired under the server's catalog lock, so once a swap has
	// published its successor no new reference can appear and refs only
	// drains.
	refs atomic.Int64
}

func (c *catalog) acquire() { c.refs.Add(1) }
func (c *catalog) release() { c.refs.Add(-1) }

// retire blocks until every in-flight request has released the catalog,
// then frees its registry (worker pool). Called on a background goroutine
// after a reload swap, and synchronously by Close/drain.
func (c *catalog) retire() {
	for c.refs.Load() != 0 {
		time.Sleep(2 * time.Millisecond)
	}
	c.reg.Close()
}

// errQueueFull sheds a request because its family's bounded admission
// queue is already full — the explicit load-shedding signal (HTTP 429).
var errQueueFull = errors.New("serve: family admission queue is full")

// errAdmissionDeadline sheds a request whose deadline expired while it was
// queued behind its family quota (HTTP 503).
var errAdmissionDeadline = errors.New("serve: deadline expired in admission queue")

// gate is one family's admission control: at most quota solves of the
// family run concurrently, at most queueDepth more wait, and anything
// beyond that is shed immediately. Tickets bound queue+running occupancy
// (cap quota+queueDepth), slots bound running solves (cap quota); a
// request holds a ticket from admission to completion and a slot while
// solving. With quotas on every family, a burst of one family can occupy
// at most its own slots, so it cannot starve the others — the per-family
// subdivision of the registry's single global limit.
type gate struct {
	svc        *pbmg.Service
	quota      int
	queueDepth int
	slots      chan struct{} // nil when quota == 0 (global limit only)
	tickets    chan struct{}

	shedQueueFull atomic.Int64
	shedDeadline  atomic.Int64
}

func newGate(svc *pbmg.Service, quota, queueDepth int) *gate {
	g := &gate{svc: svc, quota: quota, queueDepth: queueDepth}
	if quota > 0 {
		g.slots = make(chan struct{}, quota)
		g.tickets = make(chan struct{}, quota+queueDepth)
	}
	return g
}

// admit passes the family gate: it returns a release func to defer once
// the solve is done, or the shed error. The context bounds only the wait
// for a slot; an admitted request is never revoked.
func (g *gate) admit(ctx context.Context) (release func(), err error) {
	if g.slots == nil {
		return func() {}, nil
	}
	select {
	case g.tickets <- struct{}{}:
	default:
		g.shedQueueFull.Add(1)
		return nil, errQueueFull
	}
	select {
	case g.slots <- struct{}{}:
		return func() { <-g.slots; <-g.tickets }, nil
	case <-ctx.Done():
		<-g.tickets
		g.shedDeadline.Add(1)
		return nil, fmt.Errorf("%w: %v", errAdmissionDeadline, ctx.Err())
	}
}

// admitSlot acquires one solve slot while already holding queue occupancy
// (the batch path: one ticket admits the batch, its problems then share
// the family's slots).
func (g *gate) admitSlot(ctx context.Context) (release func(), err error) {
	if g.slots == nil {
		return func() {}, nil
	}
	select {
	case g.slots <- struct{}{}:
		return func() { <-g.slots }, nil
	case <-ctx.Done():
		g.shedDeadline.Add(1)
		return nil, fmt.Errorf("%w: %v", errAdmissionDeadline, ctx.Err())
	}
}

// admitTicket acquires only queue occupancy (the batch path's single
// ticket).
func (g *gate) admitTicket() (release func(), err error) {
	if g.tickets == nil {
		return func() {}, nil
	}
	select {
	case g.tickets <- struct{}{}:
		return func() { <-g.tickets }, nil
	default:
		g.shedQueueFull.Add(1)
		return nil, errQueueFull
	}
}

// queueLen is the gauge of requests holding a ticket but no slot yet.
func (g *gate) queueLen() int {
	if g.tickets == nil {
		return 0
	}
	if n := len(g.tickets) - len(g.slots); n > 0 {
		return n
	}
	return 0
}

// ParseQuotaSpec parses the CLI syntax for per-family quotas: a
// comma-separated list of family[:eps]=N items keyed the way the catalog
// spells its families, e.g. "poisson=6,poisson3d=2" or "aniso:0.01=4".
func ParseQuotaSpec(spec string) (map[string]int, error) {
	out := make(map[string]int)
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, nStr, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("serve: quota %q is not family=N", item)
		}
		n, err := strconv.Atoi(nStr)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("serve: quota %q needs a positive count", item)
		}
		out[strings.TrimSpace(name)] = n
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("serve: quota list %q names no families", spec)
	}
	return out, nil
}

// buildCatalog loads the tuned-table directory into a fresh registry and
// wires one admission gate per family. It is all-or-nothing like
// core.LoadDir underneath: any bad file, unknown quota key, or empty
// directory fails the build and the caller keeps serving its current
// catalog.
func buildCatalog(cfg Config) (*catalog, error) {
	if faultinject.Enabled {
		// Chaos coverage for the reload path: an injected error here must
		// leave the live catalog serving untouched, like any bad config dir.
		if err := faultinject.PointErr("serve.reload"); err != nil {
			return nil, err
		}
	}
	// When every served family will carry a positive quota the global
	// registry limit is set to the quota sum, so the per-family gates are
	// the binding constraint and the global semaphore never re-introduces
	// cross-family starvation. Families without a quota fall back to the
	// configured global limit.
	reg := pbmg.NewRegistry(pbmg.RegistryOptions{
		Workers:     cfg.Workers,
		MaxInFlight: cfg.globalLimit(),
		Breaker:     cfg.Breaker,
	})
	services, err := reg.LoadDir(cfg.Dir)
	if err != nil {
		reg.Close()
		return nil, err
	}
	c := &catalog{reg: reg, gates: make(map[pbmg.ServeKey]*gate, len(services)), dir: cfg.Dir}
	seen := make(map[string]bool, len(cfg.Quotas))
	for _, svc := range services {
		key := svc.Key()
		quota, named := cfg.Quotas[key.String()]
		if named {
			seen[key.String()] = true
		} else {
			quota = cfg.DefaultQuota
		}
		queueDepth := cfg.QueueDepth
		if queueDepth <= 0 {
			queueDepth = defaultQueueFactor * quota
		}
		c.gates[key] = newGate(svc, quota, queueDepth)
		c.order = append(c.order, key)
	}
	for name := range cfg.Quotas {
		if !seen[name] {
			reg.Close()
			keys := make([]string, 0, len(c.order))
			for _, k := range c.order {
				keys = append(keys, k.String())
			}
			sort.Strings(keys)
			return nil, fmt.Errorf("serve: quota names family %s, but %s serves only: %s",
				name, cfg.Dir, strings.Join(keys, ", "))
		}
	}
	return c, nil
}

// globalLimit resolves the registry-wide admission limit for a catalog
// built under this configuration (see buildCatalog).
func (cfg Config) globalLimit() int {
	if len(cfg.Quotas) == 0 && cfg.DefaultQuota <= 0 {
		return cfg.MaxInFlight
	}
	sum := 0
	for _, q := range cfg.Quotas {
		sum += q
	}
	if cfg.DefaultQuota > 0 {
		// Families beyond the named ones get the default quota; the exact
		// set is only known after LoadDir, so leave generous headroom by
		// assuming up to maxDefaultQuotaFamilies of them.
		sum += cfg.DefaultQuota * maxDefaultQuotaFamilies
	}
	if cfg.MaxInFlight > sum {
		return cfg.MaxInFlight
	}
	return sum
}

// defaultQueueFactor sizes a family's bounded wait queue when the
// configuration does not pin one: quota×4 keeps the p99 wait proportional
// to the family's own service time while still absorbing bursts.
const defaultQueueFactor = 4

// maxDefaultQuotaFamilies is the headroom buildCatalog assumes when
// sizing the global limit under a DefaultQuota (the catalog size is not
// known until LoadDir returns).
const maxDefaultQuotaFamilies = 16
