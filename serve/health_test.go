package serve

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"strings"
	"testing"

	"pbmg"
)

// TestServeRejectsNonFiniteInput: NaN/Inf grid values are rejected with an
// error naming the offending index before the request is admitted — garbage
// never reaches the solver and burns no queue slot. Standard JSON cannot
// carry a literal NaN, so the index-naming guard is exercised white-box
// through buildGrids (it also protects any future non-JSON ingress), and
// the wire-level defense (a number too large for float64) is checked
// end-to-end for a 400.
func TestServeRejectsNonFiniteInput(t *testing.T) {
	srv, cl := startServer(t, Config{})
	ctx := context.Background()

	svc := familyGate(t, srv, "poisson").svc
	p := newProblem(t, pbmg.FamilyPoisson, 17, 9)
	for _, tc := range []struct {
		name    string
		poison  func(b, x []float64)
		mention string
	}{
		{"NaN in b", func(b, x []float64) { b[7] = math.NaN() }, "b[7]"},
		{"+Inf in b", func(b, x []float64) { b[0] = math.Inf(1) }, "b[0]"},
		{"-Inf in x", func(b, x []float64) { x[288] = math.Inf(-1) }, "x[288]"},
	} {
		b := append([]float64(nil), p.B.Data()...)
		x := make([]float64, 17*17)
		tc.poison(b, x)
		_, _, err := buildGrids(svc, 17, b, x)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.mention) {
			t.Errorf("%s: error %q does not name the offending index %s", tc.name, err, tc.mention)
		}
	}

	// Over the wire, a value JSON can carry but float64 cannot hold is
	// refused with a 400 at decode, before routing or admission.
	body := []byte(`{"family":"poisson","n":17,"accuracy":1e3,"b":[1e999]}`)
	_, err := cl.SolveBytes(ctx, body)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("overflow request: err = %v, want HTTP 400", err)
	}
	if se.Shed() {
		t.Error("invalid input classified as shed")
	}

	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Aggregate.Admitted != 0 || m.Aggregate.Failed != 0 || m.Aggregate.Diverged != 0 {
		t.Errorf("rejected inputs reached admission: %+v", m.Aggregate)
	}
}

// TestHealthzReadyz: both probes answer 200 on a healthy server, and both
// flip to 503 + Retry-After once draining begins — readyz reporting the
// drain and the per-family breaker states.
func TestHealthzReadyz(t *testing.T) {
	srv, cl := startServer(t, Config{})

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(cl.BaseURL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf [4096]byte
		n, _ := resp.Body.Read(buf[:])
		return resp, buf[:n]
	}

	resp, _ := get("/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy /healthz = %d, want 200", resp.StatusCode)
	}

	resp, body := get("/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy /readyz = %d: %s", resp.StatusCode, body)
	}
	var ready struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
		Families []struct {
			Family  string `json:"family"`
			Breaker string `json:"breaker"`
		} `json:"families"`
	}
	if err := json.Unmarshal(body, &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Status != "ready" || ready.Draining {
		t.Errorf("healthy /readyz body = %+v", ready)
	}
	if len(ready.Families) == 0 {
		t.Fatal("/readyz reports no families")
	}
	for _, f := range ready.Families {
		if f.Breaker != "closed" {
			t.Errorf("family %s breaker = %q at startup, want closed", f.Family, f.Breaker)
		}
	}

	srv.BeginDrain()
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, body := get(path)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("draining %s = %d, want 503: %s", path, resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("draining %s has no Retry-After hint", path)
		}
	}
	resp, body = get("/readyz")
	_ = resp
	if err := json.Unmarshal(body, &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Status != "not ready" || !ready.Draining {
		t.Errorf("draining /readyz body = %+v", ready)
	}
}
