package serve

// Wire types of the HTTP serving protocol. Grids travel as flat JSON
// arrays in the same row-major (2D) / plane-major (3D) layout as
// pbmg.Grid.Data, so a client round-trips a grid without reshaping. The
// same structs serve both directions: the server decodes requests with
// them and internal/mixload's HTTP client mode encodes them, so the
// protocol cannot drift between the two.

// SolveRequest is the body of POST /v1/solve: one tuned solve routed by
// (family, eps) to the serving catalog.
type SolveRequest struct {
	// Family names the operator family ("poisson", "aniso", "varcoef",
	// "poisson3d").
	Family string `json:"family"`
	// Eps is the family parameter (ε or σ); 0 selects the family default.
	// Ignored for the parameterless Laplacians, like the CLI flags.
	Eps float64 `json:"eps,omitempty"`
	// N is the grid side (2^k+1, within the family's tuned range). 2D
	// families expect N² values per grid, 3D families N³.
	N int `json:"n"`
	// Accuracy is the requested accuracy level (the paper's 10…10⁹ scale).
	Accuracy float64 `json:"accuracy"`
	// B is the right-hand side, flat in grid layout.
	B []float64 `json:"b"`
	// X optionally carries the Dirichlet boundary and initial guess; when
	// absent the solve starts from the zero grid (zero boundary).
	X []float64 `json:"x,omitempty"`
	// DeadlineMs bounds the WHOLE request server-side: a request still
	// queued behind its family quota when the deadline expires is shed with
	// 503, and an admitted solve still running is cancelled cooperatively at
	// its next cycle or level boundary (also 503, within roughly one cycle's
	// latency). 0 falls back to the server's MaxWait.
	DeadlineMs int64 `json:"deadlineMs,omitempty"`
}

// SolveResponse is the body of a successful POST /v1/solve.
type SolveResponse struct {
	// X is the solution, flat in grid layout.
	X []float64 `json:"x"`
	// Family and Eps echo the configuration that served the request (Eps
	// resolved to the tuned value, so a default-eps request learns what it
	// got).
	Family string  `json:"family"`
	Eps    float64 `json:"eps,omitempty"`
	N      int     `json:"n"`
	// Precision is the storage precision of the tuned plan that served the
	// solve at the top level: "f64", "f32" (whole cycle in float32 storage),
	// or "mixed" (f32 cycle under f64 iterative refinement).
	Precision string `json:"precision,omitempty"`
	// SolveNs is the server-side solve duration (admission wait excluded).
	SolveNs int64 `json:"solveNs"`
}

// BatchRequest is the body of POST /v1/batch: several problems of one
// family solved concurrently under the family's quota. The batch holds ONE
// slot in the family's admission queue; its problems then fan out across
// the family's quota like Service.SolveBatch fans across the admission
// limit.
type BatchRequest struct {
	Family   string  `json:"family"`
	Eps      float64 `json:"eps,omitempty"`
	N        int     `json:"n"`
	Accuracy float64 `json:"accuracy"`
	// Problems are the per-problem grids (B required, X optional, as in
	// SolveRequest).
	Problems   []BatchProblem `json:"problems"`
	DeadlineMs int64          `json:"deadlineMs,omitempty"`
}

// BatchProblem is one problem of a batch request.
type BatchProblem struct {
	B []float64 `json:"b"`
	X []float64 `json:"x,omitempty"`
}

// BatchResponse is the body of a successful POST /v1/batch. Results is
// parallel to the request's Problems; a problem that failed carries its
// error and no X (its siblings still complete, like Solver.SolveBatch).
type BatchResponse struct {
	Results []BatchResult `json:"results"`
	Family  string        `json:"family"`
	Eps     float64       `json:"eps,omitempty"`
	N       int           `json:"n"`
	// Precision is the top-level plan precision serving the batch's
	// (n, accuracy) cell, as in SolveResponse.
	Precision string `json:"precision,omitempty"`
}

// BatchResult is one problem's outcome.
type BatchResult struct {
	X     []float64 `json:"x,omitempty"`
	Error string    `json:"error,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// FamilyStatus is one served family's block in the /metrics answer: the
// catalog entry, its quota configuration, the underlying service counters
// (see pbmg.ServiceMetrics), and the HTTP layer's queue/shed counters.
type FamilyStatus struct {
	Family  string  `json:"family"`
	Eps     float64 `json:"eps,omitempty"`
	Dim     int     `json:"dim"`
	MaxSize int     `json:"maxSize"`
	// Quota is the family's concurrent-solve limit (0: global limit only);
	// QueueDepth is its bounded admission queue.
	Quota      int `json:"quota"`
	QueueDepth int `json:"queueDepth"`
	// Precisions lists the distinct plan storage precisions present in the
	// family's tuned table ("f64", "f32", "mixed"), so operators can see
	// which families serve mixed-precision plans.
	Precisions []string `json:"precisions,omitempty"`
	// Service counters (pbmg.ServiceMetrics).
	Admitted  int64 `json:"admitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Shed      int64 `json:"shed"`
	Waiting   int64 `json:"waiting"`
	InFlight  int64 `json:"inFlight"`
	// Failure classes (subsets of Failed): solves cancelled mid-cycle by
	// their deadline, solves that diverged numerically, and solves that hit
	// a recovered panic. Escalations counts reduced-precision solves retried
	// at float64 after diverging (success or not) — nonzero means live
	// traffic is pushing the tuned f32/mixed tables past their range.
	Cancelled   int64 `json:"cancelled"`
	Diverged    int64 `json:"diverged"`
	Panicked    int64 `json:"panicked"`
	Escalations int64 `json:"escalations"`
	// Breaker is the family's circuit-breaker state ("closed", "open",
	// "half-open"); BreakerShed counts requests it turned away and
	// BreakerOpens its closed→open transitions.
	Breaker      string `json:"breaker"`
	BreakerShed  int64  `json:"breakerShed"`
	BreakerOpens int64  `json:"breakerOpens"`
	// QueueLen is the gauge of requests queued behind the quota right now;
	// ShedQueueFull and ShedDeadline count 429s (queue full) and 503s
	// (deadline expired while queued) at the HTTP admission layer.
	QueueLen      int   `json:"queueLen"`
	ShedQueueFull int64 `json:"shedQueueFull"`
	ShedDeadline  int64 `json:"shedDeadline"`
}

// Metrics is the body of GET /metrics.
type Metrics struct {
	// Version counts catalog swaps: 1 after startup, +1 per successful
	// reload. ConfigDir is the tuned-table directory the catalog came from.
	Version   int64  `json:"version"`
	ConfigDir string `json:"configDir"`
	Draining  bool   `json:"draining"`
	// GlobalMaxInFlight is the registry-wide admission limit behind the
	// per-family quotas.
	GlobalMaxInFlight int            `json:"globalMaxInFlight"`
	Families          []FamilyStatus `json:"families"`
	// Aggregate sums the per-family service counters.
	Aggregate struct {
		Admitted  int64 `json:"admitted"`
		Completed int64 `json:"completed"`
		Failed    int64 `json:"failed"`
		Shed      int64 `json:"shed"`
		Waiting   int64 `json:"waiting"`
		InFlight  int64 `json:"inFlight"`
		Cancelled int64 `json:"cancelled"`
		Diverged  int64 `json:"diverged"`
		Panicked  int64 `json:"panicked"`
	} `json:"aggregate"`
	// Unroutable counts requests for families the catalog does not serve;
	// ShedDraining counts requests refused because the server was draining.
	Unroutable   int64 `json:"unroutable"`
	ShedDraining int64 `json:"shedDraining"`
	// ActiveRequests is the gauge of HTTP requests currently inside the
	// serving handlers (queued or solving).
	ActiveRequests int64 `json:"activeRequests"`
}
