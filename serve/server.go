// Package serve is the HTTP front end over a pbmg.Registry: JSON solve
// and batch endpoints routed by (family, ε, dim), per-family admission
// quotas with a bounded wait queue and explicit load-shedding (429 +
// Retry-After when a family's queue is full, so a burst of expensive
// solves cannot starve the cheap families), request deadlines propagated
// into admission, atomic hot-reload of the tuned-table directory, and
// graceful drain — the paper's tune-once/serve-many model (§3.2.1) put on
// the network.
//
// The failure paths are first-class: request deadlines cancel admitted
// solves mid-cycle (503), diverged and panicked solves answer 500 while the
// daemon keeps serving, and each family's circuit breaker sheds with 503 +
// Retry-After after consecutive solver failures until a probe recloses it.
//
// Endpoints:
//
//	POST /v1/solve   one solve (SolveRequest → SolveResponse)
//	POST /v1/batch   one family's batch (BatchRequest → BatchResponse)
//	GET  /metrics    serving counters (Metrics)
//	GET  /healthz    200 while the process serves, 503 while draining
//	GET  /readyz     readiness: catalog loaded, breakers, drain state
//	POST /-/reload   rebuild the catalog from the config dir and swap it
//	POST /-/fault    chaos builds only (faultinject tag): arm fault spec
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pbmg"
	"pbmg/internal/faultinject"
)

// DefaultMaxWait bounds the admission wait of requests that carry no
// deadline of their own.
const DefaultMaxWait = 30 * time.Second

// Config configures New.
type Config struct {
	// Dir is the tuned-table directory (one mgtune JSON per family) the
	// catalog is loaded — and hot-reloaded — from.
	Dir string
	// Workers sets the kernel worker pool shared by every family in a
	// catalog generation (≤ 1: serial).
	Workers int
	// MaxInFlight is the registry-wide admission limit (≤ 0: 2×GOMAXPROCS).
	// With quotas configured, the effective global limit is raised to at
	// least the quota sum so the per-family gates stay binding.
	MaxInFlight int
	// Quotas caps concurrent solves per family, keyed the way the catalog
	// spells them ("poisson", "aniso:0.01", "poisson3d"). Every named
	// family must exist in the catalog. Families not named get
	// DefaultQuota.
	Quotas map[string]int
	// DefaultQuota applies to families absent from Quotas (0: no
	// per-family cap — those families share only the global limit).
	DefaultQuota int
	// QueueDepth bounds each family's admission queue; beyond it requests
	// are shed with 429 (≤ 0: 4× the family's quota).
	QueueDepth int
	// MaxWait bounds requests without their own DeadlineMs: admission wait
	// and solve together (0: DefaultMaxWait). Like DeadlineMs, it is a full
	// request timeout — an admitted solve still running when it expires is
	// cancelled at its next cycle boundary.
	MaxWait time.Duration
	// Breaker configures every family's circuit breaker (zero value: the
	// pbmg defaults).
	Breaker pbmg.BreakerConfig
	// Logf, when non-nil, receives serving events (reloads, drain).
	Logf func(format string, args ...any)
}

// Server routes HTTP traffic to an atomically swappable catalog of tuned
// families. Create with New, expose via Handler, stop with
// BeginDrain/Drain/Close. Safe for concurrent use.
type Server struct {
	cfg Config
	mux *http.ServeMux

	// mu guards cur: requests acquire the current catalog under RLock, so
	// a reload's pointer swap (under Lock) strictly orders acquisition —
	// no request can pick up a catalog that has already been retired.
	mu  sync.RWMutex
	cur *catalog

	version      atomic.Int64
	draining     atomic.Bool
	active       atomic.Int64
	shedDraining atomic.Int64
}

// New loads the tuned-table directory and starts serving state (the HTTP
// listener is the caller's: wire Handler into an http.Server).
func New(cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("serve: Config.Dir (tuned-table directory) is required")
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = DefaultMaxWait
	}
	c, err := buildCatalog(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, cur: c}
	s.version.Store(1)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("POST /-/reload", s.handleReload)
	if faultinject.Enabled {
		// The chaos endpoint exists only in faultinject builds; production
		// binaries never register it.
		mux.HandleFunc("POST /-/fault", s.handleFault)
	}
	s.mux = mux
	s.logf("serving %d families from %s (version 1)", len(c.order), cfg.Dir)
	return s, nil
}

// Handler returns the HTTP handler serving every endpoint.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Reload builds a fresh catalog from the config directory and atomically
// swaps it in. The build is all-or-nothing: on any error the live catalog
// keeps serving untouched and the error is returned. On success, requests
// admitted before the swap finish on the old catalog, which is closed in
// the background once the last of them completes — a table swap under
// live traffic loses zero in-flight requests.
func (s *Server) Reload() (int64, error) {
	next, err := buildCatalog(s.cfg)
	if err != nil {
		return s.version.Load(), fmt.Errorf("serve: reload rejected, keeping current catalog: %w", err)
	}
	s.mu.Lock()
	old := s.cur
	s.cur = next
	v := s.version.Add(1)
	s.mu.Unlock()
	go old.retire() //mglint:allow boundedgo — one retire goroutine per reload generation, bounded by reload rate
	s.logf("reloaded %s: %d families (version %d)", s.cfg.Dir, len(next.order), v)
	return v, nil
}

// BeginDrain stops admitting: every subsequent serving request is
// answered 503 + Retry-After (and counted in ShedDraining) while requests
// already admitted run to completion. /metrics stays available.
func (s *Server) BeginDrain() {
	if !s.draining.Swap(true) {
		s.logf("draining: shedding new requests, finishing %d in flight", s.active.Load())
	}
}

// Drain blocks until every in-flight request has completed (or ctx
// expires). Call BeginDrain first; the usual SIGTERM sequence is
// BeginDrain → http.Server.Shutdown → Drain → Close.
func (s *Server) Drain(ctx context.Context) error {
	for s.active.Load() != 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: drain: %d requests still in flight: %w", s.active.Load(), ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}
	return nil
}

// Close frees the current catalog (worker pool included). Only call once
// no requests are in flight (after Drain).
func (s *Server) Close() {
	s.mu.Lock()
	c := s.cur
	s.cur = nil
	s.mu.Unlock()
	if c != nil {
		c.retire()
	}
}

// acquireCatalog pins the current catalog generation for one request.
func (s *Server) acquireCatalog() *catalog {
	s.mu.RLock()
	c := s.cur
	if c != nil {
		c.acquire()
	}
	s.mu.RUnlock()
	return c
}

// writeJSON answers with a JSON body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError maps an error to its HTTP status: queue-full sheds are 429
// with Retry-After; breaker sheds, admission-deadline sheds, cancelled
// solves, and other load sheds 503 with Retry-After (the breaker's own
// suggested delay when it has one); diverged and panicked solves are 500
// (the request failed inside the solver, the daemon is fine); routing
// misses 404; everything else the given fallback.
func writeError(w http.ResponseWriter, err error, fallback int) {
	status := fallback
	var boe *pbmg.BreakerOpenError
	switch {
	case errors.Is(err, errQueueFull):
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case errors.As(err, &boe):
		status = http.StatusServiceUnavailable
		secs := int64(math.Ceil(boe.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	case errors.Is(err, errAdmissionDeadline), errors.Is(err, pbmg.ErrShed), errors.Is(err, pbmg.ErrCancelled):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, pbmg.ErrDiverged), errors.Is(err, pbmg.ErrPanicked):
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// shedDrainingNow answers a request that arrived while draining.
func (s *Server) shedDrainingNow(w http.ResponseWriter) {
	s.shedDraining.Add(1)
	w.Header().Set("Retry-After", "2")
	writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "serve: server is draining"})
}

// requestContext derives the request-bounding context: the request's own
// DeadlineMs when given, the server MaxWait otherwise, composed with the
// connection context so a gone client frees its queue slot. The context
// bounds the whole request — a solve still running when it expires is
// cancelled cooperatively at its next cycle or level boundary.
func (s *Server) requestContext(r *http.Request, deadlineMs int64) (context.Context, context.CancelFunc) {
	wait := s.cfg.MaxWait
	if deadlineMs > 0 {
		wait = time.Duration(deadlineMs) * time.Millisecond
	}
	return context.WithTimeout(r.Context(), wait)
}

// route resolves a request's family to its service and admission gate in
// one catalog generation.
func (c *catalog) route(familyName string, eps float64) (*pbmg.Service, *gate, error) {
	f, err := pbmg.ParseFamily(familyName)
	if err != nil {
		return nil, nil, err
	}
	svc, err := c.reg.Lookup(f, eps)
	if err != nil {
		return nil, nil, err
	}
	return svc, c.gates[svc.Key()], nil
}

// buildGrids validates and materializes one problem's grids.
func buildGrids(svc *pbmg.Service, n int, b, x []float64) (xg, bg *pbmg.Grid, err error) {
	dim := svc.Solver().Dim()
	if n < 3 || n > svc.Solver().MaxSize() {
		return nil, nil, fmt.Errorf("serve: n=%d outside the served range [3, %d] for family %s",
			n, svc.Solver().MaxSize(), svc.Key())
	}
	points := n * n
	newGrid := pbmg.NewGrid
	if dim == 3 {
		points *= n
		newGrid = pbmg.NewGrid3
	}
	if len(b) != points {
		return nil, nil, fmt.Errorf("serve: b has %d values, family %s at n=%d needs %d", len(b), svc.Key(), n, points)
	}
	if len(x) != 0 && len(x) != points {
		return nil, nil, fmt.Errorf("serve: x has %d values, want %d or none", len(x), points)
	}
	// NaN/Inf inputs are rejected before admission: they cannot converge, at
	// best they burn a solve slot on a guaranteed divergence error, and at
	// worst (a poisoned boundary in x) they waste the float64 escalation
	// retry too. Failing 400 here keeps garbage out of the solver entirely.
	if i := firstNonFinite(b); i >= 0 {
		return nil, nil, fmt.Errorf("serve: b[%d] is not finite", i)
	}
	if i := firstNonFinite(x); i >= 0 {
		return nil, nil, fmt.Errorf("serve: x[%d] is not finite", i)
	}
	bg = newGrid(n)
	copy(bg.Data(), b)
	xg = newGrid(n)
	copy(xg.Data(), x) // no-op when absent: zero boundary, zero guess
	return xg, bg, nil
}

// firstNonFinite returns the index of the first NaN or ±Inf in vs, -1 when
// all values are finite.
func firstNonFinite(vs []float64) int {
	for i, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return i
		}
	}
	return -1
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.shedDrainingNow(w)
		return
	}
	s.active.Add(1)
	defer s.active.Add(-1)

	var req SolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "serve: bad request body: " + err.Error()})
		return
	}
	c := s.acquireCatalog()
	if c == nil {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "serve: server is closed"})
		return
	}
	defer c.release()

	svc, g, err := c.route(req.Family, req.Eps)
	if err != nil {
		writeError(w, err, http.StatusNotFound)
		return
	}
	xg, bg, err := buildGrids(svc, req.N, req.B, req.X)
	if err != nil {
		writeError(w, err, http.StatusBadRequest)
		return
	}

	ctx, cancel := s.requestContext(r, req.DeadlineMs)
	defer cancel()
	release, err := g.admit(ctx)
	if err != nil {
		writeError(w, err, http.StatusServiceUnavailable)
		return
	}
	defer release()

	t0 := time.Now()
	if err := svc.SolveContext(ctx, xg, bg, req.Accuracy); err != nil {
		writeError(w, err, http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, SolveResponse{
		X:         xg.Data(),
		Family:    svc.Family().String(),
		Eps:       epsOf(svc),
		N:         req.N,
		Precision: planPrecisionOf(svc, req.N, req.Accuracy),
		SolveNs:   time.Since(t0).Nanoseconds(),
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.shedDrainingNow(w)
		return
	}
	s.active.Add(1)
	defer s.active.Add(-1)

	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "serve: bad request body: " + err.Error()})
		return
	}
	if len(req.Problems) == 0 {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "serve: batch names no problems"})
		return
	}
	c := s.acquireCatalog()
	if c == nil {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "serve: server is closed"})
		return
	}
	defer c.release()

	svc, g, err := c.route(req.Family, req.Eps)
	if err != nil {
		writeError(w, err, http.StatusNotFound)
		return
	}
	// The whole batch holds ONE queue ticket; its problems then share the
	// family's solve slots, so a big batch cannot monopolize the queue.
	ticketRelease, err := g.admitTicket()
	if err != nil {
		writeError(w, err, http.StatusServiceUnavailable)
		return
	}
	defer ticketRelease()

	ctx, cancel := s.requestContext(r, req.DeadlineMs)
	defer cancel()

	resp := BatchResponse{
		Results:   make([]BatchResult, len(req.Problems)),
		Family:    svc.Family().String(),
		Eps:       epsOf(svc),
		N:         req.N,
		Precision: planPrecisionOf(svc, req.N, req.Accuracy),
	}
	// Fan out with a worker loop bounded by the family quota (or the
	// problem count), the Service.SolveBatch idiom at the HTTP layer.
	workers := g.quota
	if workers <= 0 || workers > len(req.Problems) {
		workers = min(len(req.Problems), 2*max(1, s.cfg.Workers))
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(req.Problems) {
					return
				}
				p := req.Problems[i]
				xg, bg, err := buildGrids(svc, req.N, p.B, p.X)
				if err == nil {
					var slotRelease func()
					if slotRelease, err = g.admitSlot(ctx); err == nil {
						err = svc.SolveContext(ctx, xg, bg, req.Accuracy)
						slotRelease()
					}
				}
				if err != nil {
					resp.Results[i] = BatchResult{Error: err.Error()}
				} else {
					resp.Results[i] = BatchResult{X: xg.Data()}
				}
			}
		}()
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c := s.acquireCatalog()
	if c == nil {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "serve: server is closed"})
		return
	}
	defer c.release()

	m := Metrics{
		Version:           s.version.Load(),
		ConfigDir:         c.dir,
		Draining:          s.draining.Load(),
		GlobalMaxInFlight: c.reg.MaxInFlight(),
		Unroutable:        c.reg.Metrics().Unroutable,
		ShedDraining:      s.shedDraining.Load(),
		ActiveRequests:    s.active.Load(),
	}
	for _, key := range c.order {
		g := c.gates[key]
		sm := g.svc.Metrics()
		fs := FamilyStatus{
			Family:        key.Family.String(),
			Dim:           key.Dim,
			MaxSize:       g.svc.Solver().MaxSize(),
			Quota:         g.quota,
			QueueDepth:    g.queueDepth,
			Precisions:    g.svc.Solver().PlanPrecisions(),
			Admitted:      sm.Admitted,
			Completed:     sm.Completed,
			Failed:        sm.Failed,
			Shed:          sm.Shed,
			Waiting:       sm.Waiting,
			InFlight:      sm.InFlight,
			Cancelled:     sm.Cancelled,
			Diverged:      sm.Diverged,
			Panicked:      sm.Panicked,
			Escalations:   g.svc.Solver().Escalations(),
			Breaker:       g.svc.BreakerState(),
			BreakerShed:   sm.BreakerShed,
			BreakerOpens:  sm.BreakerOpens,
			QueueLen:      g.queueLen(),
			ShedQueueFull: g.shedQueueFull.Load(),
			ShedDeadline:  g.shedDeadline.Load(),
		}
		if pbmg.FamilyHasParam(key.Family) {
			fs.Eps = key.Epsilon
		}
		m.Families = append(m.Families, fs)
		m.Aggregate.Admitted += sm.Admitted
		m.Aggregate.Completed += sm.Completed
		m.Aggregate.Failed += sm.Failed
		m.Aggregate.Shed += sm.Shed
		m.Aggregate.Waiting += sm.Waiting
		m.Aggregate.InFlight += sm.InFlight
		m.Aggregate.Cancelled += sm.Cancelled
		m.Aggregate.Diverged += sm.Diverged
		m.Aggregate.Panicked += sm.Panicked
	}
	writeJSON(w, http.StatusOK, m)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "2")
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "serve: server is draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "version": s.version.Load()})
}

// handleReadyz answers readiness: 200 when the catalog is loaded, no
// breaker is open, and the server is not draining; 503 + Retry-After
// otherwise. Load balancers poll it to take a melting-down or draining
// instance out of rotation while /healthz still reports the process alive.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	type familyReadiness struct {
		Family  string `json:"family"`
		Breaker string `json:"breaker"`
	}
	resp := struct {
		Status   string            `json:"status"`
		Version  int64             `json:"version"`
		Draining bool              `json:"draining"`
		Families []familyReadiness `json:"families,omitempty"`
	}{Status: "ready", Version: s.version.Load(), Draining: s.draining.Load()}

	ready := !resp.Draining
	c := s.acquireCatalog()
	if c == nil {
		ready = false
	} else {
		for _, key := range c.order {
			state := c.gates[key].svc.BreakerState()
			resp.Families = append(resp.Families, familyReadiness{Family: key.String(), Breaker: state})
			if state == "open" {
				// A half-open breaker stays ready: the next request probes.
				ready = false
			}
		}
		c.release()
	}
	if !ready {
		resp.Status = "not ready"
		w.Header().Set("Retry-After", "2")
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleFault (chaos builds only) arms the fault spec in the request body,
// replacing whatever was armed before; an empty body just clears. See
// internal/faultinject for the spec syntax.
func (s *Server) handleFault(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<10))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "serve: bad fault body: " + err.Error()})
		return
	}
	faultinject.Clear()
	if spec := strings.TrimSpace(string(body)); spec != "" {
		if err := faultinject.ArmSpec(spec); err != nil {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "armed", "faults": faultinject.Armed()})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	v, err := s.Reload()
	if err != nil {
		writeJSON(w, http.StatusConflict, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "reloaded", "version": v})
}

// epsOf reports a service's resolved parameter, 0 for parameterless
// families (so it is omitted on the wire).
func epsOf(svc *pbmg.Service) float64 {
	if pbmg.FamilyHasParam(svc.Family()) {
		return svc.Epsilon()
	}
	return 0
}

// planPrecisionOf reports the tuned plan precision serving (n, accuracy),
// empty when the cell cannot be resolved (the solve itself already answered
// the request, so a lookup miss only omits the advisory field).
func planPrecisionOf(svc *pbmg.Service, n int, accuracy float64) string {
	p, err := svc.Solver().PlanPrecision(n, accuracy)
	if err != nil {
		return ""
	}
	return p
}
