package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// StatusError is a non-2xx answer from the serving front end, carrying
// the status code (429 queue full, 503 shed/draining, 404 unroutable, 400
// bad request) and the Retry-After hint when the server sent one.
type StatusError struct {
	Code       int
	Msg        string
	RetryAfter int // seconds; 0 when absent
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("serve: HTTP %d: %s", e.Code, e.Msg)
}

// Shed reports whether the request was load-shed (retryable) rather than
// rejected as invalid.
func (e *StatusError) Shed() bool {
	return e.Code == http.StatusTooManyRequests || e.Code == http.StatusServiceUnavailable
}

// Client talks to a serve.Server. The zero HTTP client is usable; mass
// load drivers should supply one with MaxIdleConnsPerHost sized to their
// concurrency.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// post sends body to path and decodes the 2xx answer into out; non-2xx
// answers come back as *StatusError.
func (c *Client) post(ctx context.Context, path string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return statusError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func statusError(resp *http.Response) error {
	se := &StatusError{Code: resp.StatusCode}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
		se.RetryAfter = ra
	}
	var body ErrorResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err == nil && body.Error != "" {
		se.Msg = body.Error
	} else {
		se.Msg = resp.Status
	}
	return se
}

// Solve posts one solve request.
func (c *Client) Solve(ctx context.Context, req SolveRequest) (*SolveResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	return c.SolveBytes(ctx, body)
}

// SolveBytes posts a pre-marshaled SolveRequest — the load-driver fast
// path, keeping request encoding off the measured latency.
func (c *Client) SolveBytes(ctx context.Context, body []byte) (*SolveResponse, error) {
	var out SolveResponse
	if err := c.post(ctx, "/v1/solve", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Batch posts one batch request.
func (c *Client) Batch(ctx context.Context, req BatchRequest) (*BatchResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var out BatchResponse
	if err := c.post(ctx, "/v1/batch", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the serving counters.
func (c *Client) Metrics(ctx context.Context) (*Metrics, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, statusError(resp)
	}
	var out Metrics
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Reload asks the server to rebuild its catalog from the config dir.
func (c *Client) Reload(ctx context.Context) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/-/reload", nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return 0, statusError(resp)
	}
	var out struct {
		Version int64 `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.Version, nil
}
