//go:build faultinject

// Chaos tests: drive a real serve.Server through injected solver and
// catalog failures (see internal/faultinject) and assert the blast radius
// stays contained — requests fail with the right status, the daemon keeps
// serving, the breaker sheds and recovers, and a broken reload never
// poisons the live catalog.
//
// The shared serve_test.go tables stop at N=17, where the tuned plan is a
// pure direct solve that executes no cycles and no SOR sweeps — none of
// the solver fault points fire. Chaos scenarios therefore tune their own
// MaxSize-33 poisson table once and solve at n=33.
package serve

import (
	"context"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pbmg"
	"pbmg/internal/faultinject"
)

var (
	chaosOnce sync.Once
	chaosDir  string
	chaosErr  error
)

// chaosTables tunes a poisson table that actually runs cycles (MaxSize
// 33), once for the whole chaos suite.
func chaosTables(t *testing.T) string {
	t.Helper()
	chaosOnce.Do(func() {
		dir, err := os.MkdirTemp("", "serve-chaos-tables-")
		if err != nil {
			chaosErr = err
			return
		}
		s, err := pbmg.Tune(pbmg.Options{
			MaxSize: 33, Family: pbmg.FamilyPoisson,
			Machine: "intel-harpertown", Seed: 5,
		})
		if err == nil {
			err = s.Save(filepath.Join(dir, "00-poisson.json"))
			s.Close()
		}
		if err != nil {
			os.RemoveAll(dir)
			chaosErr = err
			return
		}
		chaosDir = dir
	})
	if chaosErr != nil {
		t.Fatal(chaosErr)
	}
	return chaosDir
}

// chaosServer starts a server over the MaxSize-33 table with faults
// guaranteed clear before and after the test.
func chaosServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	faultinject.Clear()
	t.Cleanup(faultinject.Clear)
	cfg.Dir = chaosTables(t)
	return startServer(t, cfg)
}

// postFault arms (or, with an empty spec, clears) faults through the
// chaos-build-only endpoint.
func postFault(t *testing.T, cl *Client, spec string) {
	t.Helper()
	resp, err := http.Post(cl.BaseURL+"/-/fault", "text/plain", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /-/fault %q = %d", spec, resp.StatusCode)
	}
}

func chaosSolve(t *testing.T, cl *Client, seed int64, deadlineMs int64, accuracy float64) (*SolveResponse, error) {
	t.Helper()
	p := newProblem(t, pbmg.FamilyPoisson, 33, seed)
	return cl.Solve(context.Background(), SolveRequest{
		Family: "poisson", N: 33, Accuracy: accuracy,
		B: p.B.Data(), X: p.NewState().Data(), DeadlineMs: deadlineMs,
	})
}

// TestChaosPanicContainment: an injected kernel panic answers 500 for the
// poisoned request only — the daemon survives and the very next solve on
// the same family succeeds.
func TestChaosPanicContainment(t *testing.T) {
	_, cl := chaosServer(t, Config{})
	ctx := context.Background()

	postFault(t, cl, "mg.cycle:panic,count=1")
	_, err := chaosSolve(t, cl, 1, 0, 1e3)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusInternalServerError {
		t.Fatalf("poisoned solve: err = %v, want HTTP 500", err)
	}
	if se.Shed() {
		t.Error("a solver panic was classified as a load shed")
	}
	if !strings.Contains(se.Msg, "panic") {
		t.Errorf("500 body %q does not mention the panic", se.Msg)
	}

	resp, err := chaosSolve(t, cl, 2, 0, 1e3)
	if err != nil {
		t.Fatalf("solve after contained panic: %v", err)
	}
	p := newProblem(t, pbmg.FamilyPoisson, 33, 2)
	x := pbmg.NewGrid(33)
	copy(x.Data(), resp.X)
	if got := p.AccuracyOf(x); got < 1e3 {
		t.Errorf("post-panic solution accuracy %.3g, want ≥ 1e3", got)
	}

	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Aggregate.Panicked != 1 || m.Aggregate.Failed != 1 || m.Aggregate.Completed != 1 {
		t.Errorf("metrics after contained panic = %+v", m.Aggregate)
	}
}

// TestChaosBreakerTrip: repeated injected panics open the family breaker,
// which sheds with 503 + Retry-After and flips /readyz to 503; after the
// cooldown a half-open probe recloses it and readiness returns.
func TestChaosBreakerTrip(t *testing.T) {
	srv, cl := chaosServer(t, Config{
		Breaker: pbmg.BreakerConfig{Threshold: 2, Cooldown: 300 * time.Millisecond},
	})
	_ = srv

	readyz := func() int {
		t.Helper()
		resp, err := http.Get(cl.BaseURL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	postFault(t, cl, "mg.cycle:panic,count=2")
	for i := int64(0); i < 2; i++ {
		_, err := chaosSolve(t, cl, 10+i, 0, 1e3)
		var se *StatusError
		if !errors.As(err, &se) || se.Code != http.StatusInternalServerError {
			t.Fatalf("panic %d: err = %v, want HTTP 500", i, err)
		}
	}

	// The threshold is reached: the third request is shed without touching
	// the solver, and the instance reports itself not ready.
	_, err := chaosSolve(t, cl, 12, 0, 1e3)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("breaker-open solve: err = %v, want HTTP 503", err)
	}
	if !se.Shed() || se.RetryAfter < 1 {
		t.Errorf("breaker shed = %+v, want retryable with a Retry-After hint", se)
	}
	if got := readyz(); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz with an open breaker = %d, want 503", got)
	}

	// Past the cooldown the half-open probe runs a real solve (the panic
	// budget is exhausted), recloses the breaker, and readiness returns.
	time.Sleep(400 * time.Millisecond)
	if _, err := chaosSolve(t, cl, 13, 0, 1e3); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if _, err := chaosSolve(t, cl, 14, 0, 1e3); err != nil {
		t.Fatalf("solve after reclose: %v", err)
	}
	if got := readyz(); got != http.StatusOK {
		t.Errorf("/readyz after breaker reclose = %d, want 200", got)
	}
}

// TestChaosSlowKernelDeadline: a delay fault stretching every SOR sweep
// makes the solve blow its request deadline; the solve is cancelled
// cooperatively at a cycle boundary and answered 503, and the family
// keeps serving afterwards.
func TestChaosSlowKernelDeadline(t *testing.T) {
	_, cl := chaosServer(t, Config{})
	ctx := context.Background()

	// 20ms per sweep makes the first cycle alone overshoot the 100ms
	// request deadline; accuracy 1e9 guarantees the plan wants more than
	// one cycle, so the next checkpoint observes the expired context.
	postFault(t, cl, "stencil.sweep:delay,delay=20ms")
	_, err := chaosSolve(t, cl, 20, 100, 1e9)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("deadline-bound slow solve: err = %v, want HTTP 503", err)
	}

	postFault(t, cl, "") // clear: the family must serve again at once
	if _, err := chaosSolve(t, cl, 21, 0, 1e3); err != nil {
		t.Fatalf("solve after slow-kernel run: %v", err)
	}

	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Aggregate.Cancelled+m.Aggregate.Shed == 0 {
		t.Errorf("slow solve recorded neither cancelled nor shed: %+v", m.Aggregate)
	}
	if m.Aggregate.Panicked != 0 || m.Aggregate.Diverged != 0 {
		t.Errorf("slow solve misclassified: %+v", m.Aggregate)
	}
}

// TestChaosReloadFailure: an injected catalog-build error fails the reload
// with 409 and leaves the live catalog serving at its old version; once
// the fault clears, reload lands and bumps the version.
func TestChaosReloadFailure(t *testing.T) {
	_, cl := chaosServer(t, Config{})
	ctx := context.Background()

	postFault(t, cl, "serve.reload:error,count=1")
	resp, err := http.Post(cl.BaseURL+"/-/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("broken reload = %d, want 409", resp.StatusCode)
	}

	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 1 {
		t.Errorf("version after failed reload = %d, want 1", m.Version)
	}
	if _, err := chaosSolve(t, cl, 30, 0, 1e3); err != nil {
		t.Fatalf("solve on the surviving catalog: %v", err)
	}

	// The count=1 fault is spent: the next reload succeeds.
	resp, err = http.Post(cl.BaseURL+"/-/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload after fault cleared = %d, want 200", resp.StatusCode)
	}
	if m, err = cl.Metrics(ctx); err != nil {
		t.Fatal(err)
	}
	if m.Version != 2 {
		t.Errorf("version after healthy reload = %d, want 2", m.Version)
	}
}

// TestChaosFaultEndpointValidation: the fault endpoint is all-or-nothing —
// a bad spec is rejected with 400 and arms nothing.
func TestChaosFaultEndpointValidation(t *testing.T) {
	_, cl := chaosServer(t, Config{})

	resp, err := http.Post(cl.BaseURL+"/-/fault", "text/plain",
		strings.NewReader("mg.cycle:panic;bogus:frobnicate"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad fault spec = %d, want 400", resp.StatusCode)
	}
	if armed := faultinject.Armed(); len(armed) != 0 {
		t.Fatalf("rejected spec armed %v", armed)
	}

	// Sanity: the error body names the offending item.
	postFault(t, cl, "mg.cycle:panic,count=1")
	if armed := faultinject.Armed(); len(armed) != 1 {
		t.Fatalf("armed = %v, want exactly mg.cycle", armed)
	}
	postFault(t, cl, "")
	if armed := faultinject.Armed(); len(armed) != 0 {
		t.Fatalf("clear left %v armed", armed)
	}
}
