package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pbmg"
)

// tablesDir holds one tuned table per family (poisson N≤17, poisson3d
// N≤9), built once in TestMain and shared read-only by every test:
// catalog builds are cheap, tuning is not.
var tablesDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "serve-test-tables-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i, tc := range []struct {
		family pbmg.Family
		size   int
	}{
		{pbmg.FamilyPoisson, 17},
		{pbmg.FamilyPoisson3D, 9},
	} {
		s, err := pbmg.Tune(pbmg.Options{
			MaxSize: tc.size, Family: tc.family,
			Machine: "intel-harpertown", Seed: 5,
		})
		if err == nil {
			err = s.Save(filepath.Join(dir, fmt.Sprintf("%02d-%s.json", i, tc.family)))
			s.Close()
		}
		if err != nil {
			os.RemoveAll(dir)
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	tablesDir = dir
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// startServer builds a Server over tablesDir (unless cfg.Dir is set) and
// exposes it through a real HTTP listener.
func startServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = tablesDir
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, &Client{BaseURL: hs.URL}
}

// familyGate digs out one family's admission gate for deterministic
// white-box control of its slots and tickets.
func familyGate(t *testing.T, s *Server, family string) *gate {
	t.Helper()
	c := s.acquireCatalog()
	defer c.release()
	_, g, err := c.route(family, 0)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// newProblem draws one family problem with its reference solution
// attached, so tests can grade served answers.
func newProblem(t *testing.T, f pbmg.Family, n int, seed int64) *pbmg.Problem {
	t.Helper()
	p, err := pbmg.NewFamilyProblem(n, pbmg.Unbiased, seed, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	pbmg.Reference(p)
	return p
}

// TestServeSolveRoundTrip: a solve posted over the wire comes back at the
// requested accuracy, and the error paths answer with the right status
// codes — none of them classified as load-shedding.
func TestServeSolveRoundTrip(t *testing.T) {
	_, cl := startServer(t, Config{})
	ctx := context.Background()

	p := newProblem(t, pbmg.FamilyPoisson, 17, 42)
	resp, err := cl.Solve(ctx, SolveRequest{
		Family: "poisson", N: 17, Accuracy: 1e3,
		B: p.B.Data(), X: p.NewState().Data(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Family != "poisson" || resp.N != 17 || resp.SolveNs <= 0 {
		t.Errorf("response header = %+v", resp)
	}
	x := pbmg.NewGrid(17)
	copy(x.Data(), resp.X)
	if got := p.AccuracyOf(x); got < 1e3 {
		t.Errorf("served solution accuracy %.3g, want ≥ 1e3", got)
	}

	for _, tc := range []struct {
		name string
		req  SolveRequest
		code int
	}{
		{"unknown family",
			SolveRequest{Family: "helmholtz", N: 17, Accuracy: 1e3, B: make([]float64, 289)},
			http.StatusNotFound},
		{"unserved family",
			SolveRequest{Family: "varcoef", N: 17, Accuracy: 1e3, B: make([]float64, 289)},
			http.StatusNotFound},
		{"n beyond the tuned range",
			SolveRequest{Family: "poisson", N: 33, Accuracy: 1e3, B: make([]float64, 33*33)},
			http.StatusBadRequest},
		{"short b",
			SolveRequest{Family: "poisson", N: 17, Accuracy: 1e3, B: make([]float64, 10)},
			http.StatusBadRequest},
		{"wrong-length x",
			SolveRequest{Family: "poisson", N: 17, Accuracy: 1e3, B: make([]float64, 289), X: make([]float64, 3)},
			http.StatusBadRequest},
	} {
		_, err := cl.Solve(ctx, tc.req)
		var se *StatusError
		if !errors.As(err, &se) || se.Code != tc.code {
			t.Errorf("%s: err = %v, want HTTP %d", tc.name, err, tc.code)
			continue
		}
		if se.Shed() {
			t.Errorf("%s: an invalid request was classified as shed", tc.name)
		}
	}

	// A syntactically broken body is a 400 before any routing.
	if _, err := cl.SolveBytes(ctx, []byte("{")); err == nil {
		t.Error("broken JSON body accepted")
	} else {
		var se *StatusError
		if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
			t.Errorf("broken JSON body: err = %v, want HTTP 400", err)
		}
	}

	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 1 || m.Draining || m.Aggregate.Completed != 1 || m.Aggregate.Failed != 0 {
		t.Errorf("metrics after round trip = %+v", m)
	}
	if m.Unroutable != 1 {
		t.Errorf("unroutable = %d, want 1 (the varcoef request)", m.Unroutable)
	}
}

// TestServeBatch: one batch fans its problems across the family quota
// under a single queue ticket; a broken problem fails alone while its
// siblings complete.
func TestServeBatch(t *testing.T) {
	_, cl := startServer(t, Config{Quotas: map[string]int{"poisson": 2, "poisson3d": 1}})
	ctx := context.Background()

	const nProblems = 4
	probs := make([]*pbmg.Problem, nProblems)
	req := BatchRequest{Family: "poisson", N: 17, Accuracy: 1e3}
	for i := range probs {
		probs[i] = newProblem(t, pbmg.FamilyPoisson, 17, int64(100+i))
		req.Problems = append(req.Problems, BatchProblem{
			B: probs[i].B.Data(), X: probs[i].NewState().Data(),
		})
	}
	req.Problems = append(req.Problems, BatchProblem{B: make([]float64, 7)}) // broken

	resp, err := cl.Batch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != nProblems+1 {
		t.Fatalf("batch returned %d results, want %d", len(resp.Results), nProblems+1)
	}
	for i, p := range probs {
		r := resp.Results[i]
		if r.Error != "" {
			t.Fatalf("batch problem %d failed: %s", i, r.Error)
		}
		x := pbmg.NewGrid(17)
		copy(x.Data(), r.X)
		if got := p.AccuracyOf(x); got < 1e3 {
			t.Errorf("batch problem %d accuracy %.3g, want ≥ 1e3", i, got)
		}
	}
	if bad := resp.Results[nProblems]; bad.Error == "" || bad.X != nil {
		t.Errorf("broken batch problem = %+v, want an error and no solution", bad)
	}
}

// TestServeQuotaShedding: the bounded admission queue sheds
// deterministically — a request queued past its deadline gets 503, a
// request arriving at a full queue gets 429 + Retry-After, both visible
// in /metrics, and traffic flows again once the gate frees.
func TestServeQuotaShedding(t *testing.T) {
	srv, cl := startServer(t, Config{
		Quotas:     map[string]int{"poisson": 1, "poisson3d": 1},
		QueueDepth: 1,
	})
	ctx := context.Background()
	g := familyGate(t, srv, "poisson")

	// Occupy the family's only solve slot and one of its two tickets.
	g.tickets <- struct{}{}
	g.slots <- struct{}{}

	p := newProblem(t, pbmg.FamilyPoisson, 17, 7)
	req := SolveRequest{Family: "poisson", N: 17, Accuracy: 1e3, B: p.B.Data(), DeadlineMs: 50}

	// The request takes the last ticket, waits for a slot that never
	// frees, and is shed when its deadline expires: 503.
	_, err := cl.Solve(ctx, req)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable || !se.Shed() || se.RetryAfter < 1 {
		t.Fatalf("queued-past-deadline request: err = %v, want a retryable 503", err)
	}
	if got := g.shedDeadline.Load(); got != 1 {
		t.Errorf("shedDeadline = %d, want 1", got)
	}

	// Fill the queue: the next request is shed immediately with 429.
	g.tickets <- struct{}{}
	if _, err := cl.Solve(ctx, req); !errors.As(err, &se) ||
		se.Code != http.StatusTooManyRequests || !se.Shed() || se.RetryAfter < 1 {
		t.Fatalf("full-queue request: err = %v, want a retryable 429", err)
	}
	if got := g.shedQueueFull.Load(); got != 1 {
		t.Errorf("shedQueueFull = %d, want 1", got)
	}

	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var fs *FamilyStatus
	for i := range m.Families {
		if m.Families[i].Family == "poisson" {
			fs = &m.Families[i]
		}
	}
	if fs == nil || fs.Quota != 1 || fs.QueueDepth != 1 || fs.ShedDeadline != 1 || fs.ShedQueueFull != 1 {
		t.Errorf("poisson family status = %+v, want quota 1, queue 1, one shed of each kind", fs)
	}

	// Free the gate: the same request is served normally again.
	<-g.tickets
	<-g.tickets
	<-g.slots
	if _, err := cl.Solve(ctx, req); err != nil {
		t.Fatalf("request after the gate freed: %v", err)
	}
}

// TestServeQuotaIsolation is the starvation regression: with per-family
// quotas the global limit is raised to the quota sum, so a 3D burst
// holding every 3D slot (and its whole queue) cannot keep a 2D request
// from being admitted — and the burst itself is shed with 429 instead of
// spilling into shared capacity.
func TestServeQuotaIsolation(t *testing.T) {
	srv, cl := startServer(t, Config{
		MaxInFlight: 2, // deliberately smaller than the quota sum
		Quotas:      map[string]int{"poisson": 2, "poisson3d": 2},
	})
	ctx := context.Background()

	g3 := familyGate(t, srv, "poisson3d")
	for i := 0; i < cap(g3.slots); i++ {
		g3.slots <- struct{}{}
	}
	for i := 0; i < cap(g3.tickets); i++ {
		g3.tickets <- struct{}{}
	}

	// 2D traffic is admitted and served despite the saturated 3D family.
	p := newProblem(t, pbmg.FamilyPoisson, 17, 7)
	if _, err := cl.Solve(ctx, SolveRequest{
		Family: "poisson", N: 17, Accuracy: 1e3, B: p.B.Data(), DeadlineMs: 5000,
	}); err != nil {
		t.Fatalf("2D request starved behind the 3D burst: %v", err)
	}

	// Further 3D arrivals shed at their own gate.
	var se *StatusError
	if _, err := cl.Solve(ctx, SolveRequest{
		Family: "poisson3d", N: 9, Accuracy: 1e3, B: make([]float64, 9*9*9),
	}); !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("3D request at a full gate: err = %v, want 429", err)
	}

	// The registry-wide limit must be the quota sum, not the configured 2:
	// otherwise the global semaphore would re-introduce the starvation the
	// quotas exist to fix.
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.GlobalMaxInFlight != 4 {
		t.Errorf("GlobalMaxInFlight = %d, want the quota sum 4", m.GlobalMaxInFlight)
	}
}

// TestServeReloadUnderTraffic: catalog swaps under live load lose zero
// requests, bump the version, retire the old generation; a broken config
// directory is rejected all-or-nothing with the live catalog untouched.
func TestServeReloadUnderTraffic(t *testing.T) {
	// A private copy of the tables, so the test can break and fix it.
	dir := t.TempDir()
	entries, err := os.ReadDir(tablesDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(tablesDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	srv, cl := startServer(t, Config{Dir: dir})

	p := newProblem(t, pbmg.FamilyPoisson, 9, 3)
	body, err := json.Marshal(SolveRequest{Family: "poisson", N: 9, Accuracy: 1e3, B: p.B.Data()})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var completed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := cl.SolveBytes(context.Background(), body); err != nil {
					t.Errorf("request lost during reload: %v", err)
					return
				}
				completed.Add(1)
			}
		}()
	}

	srv.mu.RLock()
	first := srv.cur
	srv.mu.RUnlock()

	for i := 0; i < 5; i++ {
		v, err := srv.Reload()
		if err != nil {
			t.Fatal(err)
		}
		if v != int64(i+2) {
			t.Errorf("reload %d: version = %d, want %d", i, v, i+2)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A broken directory must be rejected as a whole, leaving the live
	// catalog serving at its current version.
	if err := os.WriteFile(filepath.Join(dir, "zbroken.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Reload(); err == nil {
		t.Error("reload of a broken directory succeeded")
	}
	if _, err := cl.SolveBytes(context.Background(), body); err != nil {
		t.Errorf("live catalog stopped serving after a rejected reload: %v", err)
	}
	if got := srv.version.Load(); got != 6 {
		t.Errorf("version after rejected reload = %d, want 6", got)
	}

	// Fixing the directory makes the next reload land.
	if err := os.Remove(filepath.Join(dir, "zbroken.json")); err != nil {
		t.Fatal(err)
	}
	if v, err := srv.Reload(); err != nil || v != 7 {
		t.Errorf("reload after fixing the directory: version %d, err %v", v, err)
	}

	close(stop)
	wg.Wait()
	if completed.Load() == 0 {
		t.Error("no traffic flowed during the reload sequence")
	}

	// The first generation must fully retire: every request that pinned it
	// has released it.
	deadline := time.Now().Add(5 * time.Second)
	for first.refs.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("first catalog still holds %d refs after the swap", first.refs.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServeGracefulDrain: BeginDrain sheds new requests with a retryable
// 503 while a request already inside admission runs to completion, then
// Drain observes an idle server.
func TestServeGracefulDrain(t *testing.T) {
	srv, cl := startServer(t, Config{Quotas: map[string]int{"poisson": 1, "poisson3d": 1}})
	ctx := context.Background()
	g := familyGate(t, srv, "poisson")

	// Hold the family's only slot (with its ticket, like a real admitted
	// request) so the in-flight request is provably still queued in
	// admission when the drain begins.
	g.tickets <- struct{}{}
	g.slots <- struct{}{}
	p := newProblem(t, pbmg.FamilyPoisson, 9, 5)
	body, err := json.Marshal(SolveRequest{Family: "poisson", N: 9, Accuracy: 1e3, B: p.B.Data(), DeadlineMs: 30000})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := cl.SolveBytes(ctx, body)
		done <- err
	}()
	waitUntil := time.Now().Add(5 * time.Second)
	for g.queueLen() == 0 {
		if time.Now().After(waitUntil) {
			t.Fatal("in-flight request never reached the admission queue")
		}
		time.Sleep(time.Millisecond)
	}

	srv.BeginDrain()

	// New serving requests are refused with a retryable 503...
	var se *StatusError
	if _, err := cl.SolveBytes(ctx, body); !errors.As(err, &se) ||
		se.Code != http.StatusServiceUnavailable || !se.Shed() {
		t.Fatalf("request during drain: err = %v, want a retryable 503", err)
	}
	// ...health reports draining...
	resp, err := http.Get(cl.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain = %d, want 503", resp.StatusCode)
	}
	// ...and /metrics stays available and counts the shed.
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Draining || m.ShedDraining != 1 || m.ActiveRequests != 1 {
		t.Errorf("metrics during drain = draining %v, shedDraining %d, active %d; want true, 1, 1",
			m.Draining, m.ShedDraining, m.ActiveRequests)
	}

	// The admitted request completes once its slot frees — the drain never
	// revokes it.
	<-g.slots
	if err := <-done; err != nil {
		t.Fatalf("in-flight request lost during drain: %v", err)
	}

	dctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		t.Fatal(err)
	}
}

// TestParseQuotaSpec covers the CLI quota syntax.
func TestParseQuotaSpec(t *testing.T) {
	got, err := ParseQuotaSpec("poisson=6, aniso:0.01=4,poisson3d=2")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"poisson": 6, "aniso:0.01": 4, "poisson3d": 2}
	if len(got) != len(want) {
		t.Fatalf("ParseQuotaSpec = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("quota[%s] = %d, want %d", k, got[k], v)
		}
	}
	for _, bad := range []string{"", "poisson", "poisson=0", "poisson=-1", "poisson=x"} {
		if _, err := ParseQuotaSpec(bad); err == nil {
			t.Errorf("ParseQuotaSpec(%q) accepted", bad)
		}
	}
}

// TestServeConfigErrors: a quota naming an unserved family fails the
// catalog build (all-or-nothing), as does a missing directory.
func TestServeConfigErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New without a directory succeeded")
	}
	if _, err := New(Config{Dir: tablesDir, Quotas: map[string]int{"varcoef": 2}}); err == nil {
		t.Error("quota for an unserved family accepted")
	}
	if _, err := New(Config{Dir: t.TempDir()}); err == nil {
		t.Error("empty table directory accepted")
	}
}
