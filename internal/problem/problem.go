// Package problem defines Poisson problem instances — right-hand side,
// Dirichlet boundary data, and (once computed) the reference "optimal"
// solution — and the paper's accuracy yardstick measured against it.
//
// Following §4 of the paper, random instances draw the right-hand side b and
// the boundary of x from one of the training distributions (unbiased
// uniform, biased uniform, point sources). The initial state is the given
// boundary with a zero interior guess.
package problem

import (
	"fmt"
	"math/rand"

	"pbmg/internal/grid"
	"pbmg/internal/stencil"
)

// Problem is one instance of the discrete operator problem T·x = b on an
// N×N grid over the unit square — or an N×N×N grid over the unit cube for
// 3D operator families — with mesh spacing H = 1/(N−1) and Dirichlet
// boundary values. Op selects the operator family; nil means the 2D
// constant-coefficient Poisson operator (see Operator).
type Problem struct {
	N        int
	H        float64
	Dist     grid.Distribution
	Op       *stencil.Operator // operator family; nil = Poisson
	B        *grid.Grid        // right-hand side
	Boundary *grid.Grid        // boundary values; interior entries are zero
	opt      *grid.Grid        // reference solution, set via SetOptimal
}

// Random draws a constant-coefficient Poisson problem of side n from the
// given distribution. The right-hand side is fully random; only the border
// of the state is random (interior boundary grid entries stay zero).
func Random(n int, dist grid.Distribution, rng *rand.Rand) *Problem {
	return RandomOp(n, dist, rng, nil)
}

// RandomOp draws a problem of side n for the given operator family (nil for
// 2D Poisson). The grids take their dimension from the operator: a 3D
// operator yields n×n×n right-hand-side and boundary grids. Variable-
// coefficient operators must be discretized at size n.
func RandomOp(n int, dist grid.Distribution, rng *rand.Rand, op *stencil.Operator) *Problem {
	if n < 3 {
		panic(fmt.Sprintf("problem: side %d too small", n))
	}
	if op != nil && op.Coef() != nil && op.Coef().N() != n {
		panic(fmt.Sprintf("problem: operator discretized at N=%d, problem side %d", op.Coef().N(), n))
	}
	dim := 2
	if op != nil {
		dim = op.Dim()
	}
	p := &Problem{
		N:        n,
		H:        1.0 / float64(n-1),
		Dist:     dist,
		Op:       op,
		B:        grid.NewDim(dim, n),
		Boundary: grid.NewDim(dim, n),
	}
	grid.FillRandom(p.B, dist, rng)
	grid.FillBoundaryRandom(p.Boundary, dist, rng)
	return p
}

// Operator returns the problem's operator family, defaulting to the
// constant-coefficient Poisson operator when unset.
func (p *Problem) Operator() *stencil.Operator {
	if p.Op == nil {
		return stencil.Poisson()
	}
	return p.Op
}

// Zero returns a homogeneous Poisson problem (zero RHS and boundary) of side
// n, useful for error-equation sub-problems and tests.
func Zero(n int) *Problem {
	return &Problem{N: n, H: 1.0 / float64(n-1), B: grid.New(n), Boundary: grid.New(n)}
}

// NewState returns a fresh solver state: the problem's boundary values with
// a zero interior guess.
func (p *Problem) NewState() *grid.Grid {
	return p.Boundary.Clone()
}

// SetOptimal records the reference solution used by the accuracy metric.
// The grid is cloned, so later mutation of x does not affect the problem.
func (p *Problem) SetOptimal(x *grid.Grid) {
	if x.N() != p.N {
		panic("problem: SetOptimal size mismatch")
	}
	p.opt = x.Clone()
}

// Optimal returns the reference solution, or nil if not yet computed.
func (p *Problem) Optimal() *grid.Grid { return p.opt }

// InitialError returns ‖x₀ − x_opt‖₂ for the standard zero-interior initial
// guess. It panics if the reference solution has not been set.
func (p *Problem) InitialError() float64 {
	p.mustOpt()
	return grid.L2DiffInterior(p.Boundary, p.opt)
}

// AccuracyOf returns the paper's accuracy level of a candidate output x,
// measured from the standard initial guess:
// ‖x₀ − x_opt‖₂ / ‖x − x_opt‖₂.
func (p *Problem) AccuracyOf(x *grid.Grid) float64 {
	p.mustOpt()
	return grid.AccuracyLevel(p.Boundary, x, p.opt)
}

// ErrorOf returns ‖x − x_opt‖₂ over the interior.
func (p *Problem) ErrorOf(x *grid.Grid) float64 {
	p.mustOpt()
	return grid.L2DiffInterior(x, p.opt)
}

func (p *Problem) mustOpt() {
	if p.opt == nil {
		panic("problem: reference solution not set; compute it first")
	}
}
