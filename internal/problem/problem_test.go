package problem

import (
	"math"
	"math/rand"
	"testing"

	"pbmg/internal/grid"
)

func TestRandomProblemShape(t *testing.T) {
	p := Random(17, grid.Unbiased, rand.New(rand.NewSource(1)))
	if p.N != 17 || math.Abs(p.H-1.0/16) > 1e-15 {
		t.Fatalf("N=%d H=%v, want 17, 1/16", p.N, p.H)
	}
	// Boundary grid interior must be zero.
	for i := 1; i < 16; i++ {
		for j := 1; j < 16; j++ {
			if p.Boundary.At(i, j) != 0 {
				t.Fatal("Boundary grid has nonzero interior")
			}
		}
	}
}

func TestRandomTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Random(2) did not panic")
		}
	}()
	Random(2, grid.Unbiased, rand.New(rand.NewSource(1)))
}

func TestNewStateIndependent(t *testing.T) {
	p := Random(9, grid.Biased, rand.New(rand.NewSource(2)))
	s1 := p.NewState()
	s1.Set(4, 4, 99)
	s2 := p.NewState()
	if s2.At(4, 4) != 0 {
		t.Fatal("NewState shares storage across calls")
	}
	if s1.At(0, 3) != p.Boundary.At(0, 3) {
		t.Fatal("NewState did not copy boundary")
	}
}

func TestAccuracyOfUsesInitialGuess(t *testing.T) {
	p := Zero(5)
	opt := grid.New(5)
	opt.Set(2, 2, 10)
	p.SetOptimal(opt)
	// Initial guess has error 10; an output with error 1 has accuracy 10.
	x := grid.New(5)
	x.Set(2, 2, 9)
	if got := p.AccuracyOf(x); math.Abs(got-10) > 1e-12 {
		t.Fatalf("AccuracyOf = %v, want 10", got)
	}
	if got := p.InitialError(); math.Abs(got-10) > 1e-12 {
		t.Fatalf("InitialError = %v, want 10", got)
	}
	if got := p.ErrorOf(x); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ErrorOf = %v, want 1", got)
	}
}

func TestSetOptimalClones(t *testing.T) {
	p := Zero(5)
	opt := grid.New(5)
	p.SetOptimal(opt)
	opt.Set(2, 2, 5)
	if p.Optimal().At(2, 2) != 0 {
		t.Fatal("SetOptimal did not clone")
	}
}

func TestSetOptimalSizeMismatchPanics(t *testing.T) {
	p := Zero(5)
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	p.SetOptimal(grid.New(7))
}

func TestAccuracyBeforeOptimalPanics(t *testing.T) {
	p := Zero(5)
	defer func() {
		if recover() == nil {
			t.Fatal("AccuracyOf before SetOptimal did not panic")
		}
	}()
	p.AccuracyOf(grid.New(5))
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a := Random(9, grid.Unbiased, rand.New(rand.NewSource(7)))
	b := Random(9, grid.Unbiased, rand.New(rand.NewSource(7)))
	for i := range a.B.Data() {
		if a.B.Data()[i] != b.B.Data()[i] {
			t.Fatal("problems differ for equal seeds")
		}
	}
}
