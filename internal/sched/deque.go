package sched

import "sync"

// deque is a double-ended work queue. The owning worker pushes and pops at
// the bottom (LIFO, for locality); thieves steal from the top (FIFO), the
// protocol used by Cilk-5 and by the PetaBricks runtime the paper builds on.
// A mutex keeps the implementation simple and portable; contention is low
// because steals are rare in balanced workloads.
type deque struct {
	mu    sync.Mutex
	tasks []*task
}

// pushBottom adds t at the owner's end.
func (d *deque) pushBottom(t *task) {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
}

// popBottom removes and returns the most recently pushed task, or nil.
func (d *deque) popBottom() *task {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.tasks)
	if n == 0 {
		return nil
	}
	t := d.tasks[n-1]
	d.tasks[n-1] = nil
	d.tasks = d.tasks[:n-1]
	return t
}

// stealTop removes and returns the oldest task, or nil.
func (d *deque) stealTop() *task {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return nil
	}
	t := d.tasks[0]
	d.tasks[0] = nil
	d.tasks = d.tasks[1:]
	return t
}

// size reports the current number of queued tasks.
func (d *deque) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.tasks)
}
