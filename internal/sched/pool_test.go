package sched

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSerialPoolRunsInline(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	sum := 0
	p.ParallelFor(0, 100, 10, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += i
		}
	})
	if sum != 4950 {
		t.Fatalf("sum = %d, want 4950", sum)
	}
}

func TestParallelForCoversRangeExactlyOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const n = 10000
	var hits [n]int32
	p.ParallelFor(0, n, 7, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestParallelForEmptyAndNegativeRange(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	called := false
	p.ParallelFor(5, 5, 1, func(lo, hi int) { called = true })
	p.ParallelFor(9, 3, 1, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body called for empty range")
	}
}

func TestParallelForDefaultGrain(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var count atomic.Int64
	p.ParallelFor(0, 1000, 0, func(lo, hi int) {
		count.Add(int64(hi - lo))
	})
	if count.Load() != 1000 {
		t.Fatalf("covered %d iterations, want 1000", count.Load())
	}
}

func TestDoRunsAllFunctions(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var count atomic.Int64
	fns := make([]func(), 50)
	for i := range fns {
		fns[i] = func() { count.Add(1) }
	}
	p.Do(fns...)
	if count.Load() != 50 {
		t.Fatalf("ran %d functions, want 50", count.Load())
	}
}

func TestDoEmptyAndSingle(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.Do()
	ran := false
	p.Do(func() { ran = true })
	if !ran {
		t.Fatal("single function not run")
	}
}

func TestNestedParallelFor(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var total atomic.Int64
	p.ParallelFor(0, 8, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p.ParallelFor(0, 100, 10, func(l, h int) {
				total.Add(int64(h - l))
			})
		}
	})
	if total.Load() != 800 {
		t.Fatalf("nested total = %d, want 800", total.Load())
	}
}

func TestTaskPanicPropagatesToCaller(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		tp, ok := r.(*TaskPanic)
		if !ok {
			t.Fatalf("panic payload is %T, want *TaskPanic", r)
		}
		if !strings.Contains(tp.String(), "boom") {
			t.Fatalf("unexpected panic payload: %v", tp)
		}
		if len(tp.Stack) == 0 {
			t.Fatal("TaskPanic carries no worker stack")
		}
	}()
	p.ParallelFor(0, 64, 1, func(lo, hi int) {
		if lo == 32 {
			panic("boom")
		}
	})
}

func TestInlinePanicPropagates(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("inline panic did not propagate")
		}
	}()
	p.ParallelFor(0, 2, 1, func(lo, hi int) {
		if lo == 0 {
			panic("first-chunk boom")
		}
	})
}

func TestCloseIdempotent(t *testing.T) {
	p := NewPool(3)
	p.Close()
	p.Close()
	p1 := NewPool(1)
	p1.Close()
	p1.Close()
}

func TestWorkersAccessor(t *testing.T) {
	p := NewPool(5)
	defer p.Close()
	if p.Workers() != 5 {
		t.Fatalf("Workers() = %d, want 5", p.Workers())
	}
	if NewPool(-1).Workers() < 1 {
		t.Fatal("NewPool(-1) should default to NumCPU")
	}
}

func TestStealsHappenUnderImbalance(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	// Many tiny tasks through Do guarantee the helping caller or idle
	// workers must steal from peers.
	var count atomic.Int64
	fns := make([]func(), 500)
	for i := range fns {
		fns[i] = func() {
			s := 0
			for j := 0; j < 1000; j++ {
				s += j
			}
			if s < 0 {
				t.Error("impossible")
			}
			count.Add(1)
		}
	}
	p.Do(fns...)
	if count.Load() != 500 {
		t.Fatalf("ran %d, want 500", count.Load())
	}
}

func TestDequeOrdering(t *testing.T) {
	d := &deque{}
	r := &region{}
	t1 := &task{region: r}
	t2 := &task{region: r}
	t3 := &task{region: r}
	d.pushBottom(t1)
	d.pushBottom(t2)
	d.pushBottom(t3)
	if got := d.stealTop(); got != t1 {
		t.Fatal("stealTop should return oldest task")
	}
	if got := d.popBottom(); got != t3 {
		t.Fatal("popBottom should return newest task")
	}
	if got := d.popBottom(); got != t2 {
		t.Fatal("popBottom should drain remaining task")
	}
	if d.popBottom() != nil || d.stealTop() != nil {
		t.Fatal("empty deque should return nil")
	}
}

// Property: for any range and grain, ParallelFor computes the same sum as a
// serial loop.
func TestParallelForSumProperty(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	f := func(n uint16, g uint8) bool {
		hi := int(n%5000) + 1
		grain := int(g%64) + 1
		var sum atomic.Int64
		p.ParallelFor(0, hi, grain, func(lo, h int) {
			var local int64
			for i := lo; i < h; i++ {
				local += int64(i)
			}
			sum.Add(local)
		})
		want := int64(hi) * int64(hi-1) / 2
		return sum.Load() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentCallersShareOnePool exercises the serving-path invariant:
// many goroutines issue Do and ParallelFor regions against one pool at
// once, including nested regions, and every region must join with exactly
// its own work completed.
func TestConcurrentCallersShareOnePool(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const callers = 16
	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan string, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				n := 64 + c + round
				var sum atomic.Int64
				p.ParallelFor(0, n, 7, func(lo, hi int) {
					local := int64(0)
					for i := lo; i < hi; i++ {
						local += int64(i)
					}
					// A nested region from inside a task must help, not block.
					if lo == 0 {
						p.Do(func() {}, func() {})
					}
					sum.Add(local)
				})
				if want := int64(n*(n-1)) / 2; sum.Load() != want {
					errs <- fmt.Sprintf("caller %d round %d: sum %d, want %d", c, round, sum.Load(), want)
					return
				}
				var a, b int64
				p.Do(func() { a = 1 }, func() { b = 2 })
				if a != 1 || b != 2 {
					errs <- fmt.Sprintf("caller %d round %d: Do dropped a function", c, round)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestConcurrentPanicsStayWithinRegion checks a panic in one caller's region
// is re-raised on that caller only, while other callers' regions complete.
func TestConcurrentPanicsStayWithinRegion(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	var clean atomic.Int64
	panicked := make(chan bool, 1)
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer func() { panicked <- recover() != nil }()
		p.Do(func() {}, func() { panic("boom") })
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			p.ParallelFor(0, 100, 9, func(lo, hi int) { clean.Add(int64(hi - lo)) })
		}
	}()
	wg.Wait()
	if !<-panicked {
		t.Fatal("panicking region did not re-raise on its caller")
	}
	if clean.Load() != 5000 {
		t.Fatalf("clean caller covered %d iterations, want 5000", clean.Load())
	}
}
