// Package sched implements a Cilk-style work-stealing task pool: per-worker
// deques, random victim selection, and helping callers that execute tasks
// while they wait. It is the Go analogue of the PetaBricks runtime scheduler
// (§3.2.3 of the paper), which distributes work with thread-private deques
// and a task-stealing protocol following Cilk.
package sched

import (
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// TaskPanic is the panic value re-raised on a joining caller when a pool
// task panicked. Carrying the original value and the worker's stack as a
// typed payload (rather than a formatted string) lets a recover boundary
// upstream — pbmg's Service — classify the failure and report where it
// happened, even though the worker goroutine's own stack is gone by the
// time the join re-panics.
type TaskPanic struct {
	// Value is the task's original panic value.
	Value any
	// Stack is the worker goroutine's stack at the point of the panic.
	Stack []byte
}

func (tp *TaskPanic) String() string {
	return fmt.Sprintf("sched: task panic: %v", tp.Value)
}

// task is one schedulable unit. Tasks belong to a region (a ParallelFor or
// Do call) whose remaining-counter joins them.
type task struct {
	run    func()
	region *region
}

// region tracks the completion of a group of tasks spawned together.
type region struct {
	remaining atomic.Int64
	panicked  atomic.Value // first panic value, if any
}

func (r *region) done() bool { return r.remaining.Load() == 0 }

// Pool is a work-stealing scheduler with a fixed set of workers.
// A Pool with one worker runs everything inline on the calling goroutine,
// which keeps single-threaded measurements free of scheduling noise.
// Pools must be released with Close; the zero value is not usable.
//
// A Pool is safe for concurrent use: any number of goroutines may call Do
// and ParallelFor simultaneously (including from inside pool tasks — nested
// regions help rather than block). Each call joins only its own region;
// tasks from concurrent regions share the deques and are executed by
// whichever worker or helping caller dequeues them first. Only Close must
// be serialized: it must not run concurrently with Do, ParallelFor, or
// another first Close.
type Pool struct {
	deques  []*deque
	mu      sync.Mutex
	cond    *sync.Cond
	closed  bool
	next    atomic.Uint64 // round-robin push cursor
	steals  atomic.Int64  // successful steals, for tests/metrics
	workers int
	wg      sync.WaitGroup
}

// NewPool creates a pool with n workers. n < 1 is treated as
// runtime.NumCPU(). A pool with n == 1 spawns no goroutines.
func NewPool(n int) *Pool {
	if n < 1 {
		n = runtime.NumCPU()
	}
	p := &Pool{workers: n}
	p.cond = sync.NewCond(&p.mu)
	if n == 1 {
		return p
	}
	p.deques = make([]*deque, n)
	for i := range p.deques {
		p.deques[i] = &deque{}
	}
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go p.worker(i)
	}
	return p
}

// Workers returns the worker count the pool was created with.
func (p *Pool) Workers() int { return p.workers }

// Steals returns the number of successful steals so far (for tests and
// instrumentation).
func (p *Pool) Steals() int64 { return p.steals.Load() }

// Close shuts the workers down. It must not be called concurrently with
// ParallelFor or Do. Close is idempotent and safe to call from several
// goroutines — every caller returns only after the workers have exited, so
// shared owners (e.g. a registry and the solvers it serves) may all Close
// defensively during teardown.
func (p *Pool) Close() {
	if p.workers == 1 {
		return
	}
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		p.cond.Broadcast()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// worker is the main loop of worker i: pop own deque, steal otherwise,
// sleep when the whole pool is idle.
func (p *Pool) worker(i int) {
	defer p.wg.Done()
	rng := rand.New(rand.NewSource(int64(i)*2654435761 + 1))
	own := p.deques[i]
	for {
		if t := own.popBottom(); t != nil {
			p.execute(t)
			continue
		}
		if t := p.steal(i, rng); t != nil {
			p.steals.Add(1)
			p.execute(t)
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return
		}
		if p.anyWork() {
			p.mu.Unlock()
			continue
		}
		p.cond.Wait()
		p.mu.Unlock()
	}
}

// steal tries each other worker's deque starting from a random victim.
func (p *Pool) steal(self int, rng *rand.Rand) *task {
	n := len(p.deques)
	start := rng.Intn(n)
	for k := 0; k < n; k++ {
		v := (start + k) % n
		if v == self {
			continue
		}
		if t := p.deques[v].stealTop(); t != nil {
			return t
		}
	}
	return nil
}

// anyWork reports whether any deque holds a task. Callers hold p.mu only to
// serialize with cond.Wait; deques have their own locks.
func (p *Pool) anyWork() bool {
	for _, d := range p.deques {
		if d.size() > 0 {
			return true
		}
	}
	return false
}

// execute runs one task, converting a panic into a region-level failure that
// is re-raised on the joining goroutine as a *TaskPanic. A panic that is
// already a *TaskPanic (a nested region's join re-panicking inside this
// task) is stored as-is, so the outermost caller sees the innermost
// failure once, not a wrapper per nesting level.
func (p *Pool) execute(t *task) {
	defer func() {
		if r := recover(); r != nil {
			tp, ok := r.(*TaskPanic)
			if !ok {
				tp = &TaskPanic{Value: r, Stack: debug.Stack()}
			}
			t.region.panicked.CompareAndSwap(nil, tp)
		}
		t.region.remaining.Add(-1)
	}()
	t.run()
}

// submit spreads a task across the deques round-robin and wakes a worker.
func (p *Pool) submit(t *task) {
	i := int(p.next.Add(1)) % len(p.deques)
	p.deques[i].pushBottom(t)
	p.mu.Lock()
	p.cond.Signal()
	p.mu.Unlock()
}

// help runs tasks on the calling goroutine until the region completes.
// Helping (rather than blocking) makes nested parallel regions deadlock-free
// and puts the caller's CPU to work, as in Cilk's fully-strict joins.
//
// Helping invariant: a helper may execute ANY queued task, not just its own
// region's — each task decrements only its own region's remaining-counter,
// so executing a stranger's task can delay this join but never corrupt it,
// and the region completes exactly when its last task finishes, wherever it
// ran. This is what lets one Pool serve concurrent Do/ParallelFor callers:
// their helpers drain a common set of deques without coordination.
func (p *Pool) help(r *region, rng *rand.Rand) {
	backoff := 0
	for !r.done() {
		if t := p.steal(-1, rng); t != nil {
			p.execute(t)
			backoff = 0
			continue
		}
		backoff++
		if backoff < 64 {
			runtime.Gosched()
		} else {
			// Nothing stealable for 64 consecutive attempts: the region's
			// remaining tasks are already running on workers, so park briefly
			// instead of burning this CPU on Gosched spins. The sleep is kept
			// short to bound added join latency.
			time.Sleep(20 * time.Microsecond)
		}
	}
	if v := r.panicked.Load(); v != nil {
		panic(v)
	}
}

// Do runs the given functions, possibly in parallel, and returns when all
// have completed. A panic in any function is re-raised on the caller after
// all functions finish.
func (p *Pool) Do(fns ...func()) {
	switch {
	case len(fns) == 0:
		return
	case len(fns) == 1 || p.workers == 1:
		for _, fn := range fns {
			fn()
		}
		return
	}
	r := &region{}
	r.remaining.Store(int64(len(fns) - 1))
	for _, fn := range fns[1:] {
		p.submit(&task{run: fn, region: r})
	}
	// Run the first function inline, then help finish the rest.
	var firstPanic any
	func() {
		defer func() { firstPanic = recover() }()
		fns[0]()
	}()
	p.help(r, rand.New(rand.NewSource(int64(len(fns)))))
	if firstPanic != nil {
		panic(firstPanic)
	}
}

// MinParallelPoints is the work size — measured in grid points, not loop
// iterations — below which a data-parallel pass runs serially: task spawn
// and join-barrier overhead dominates under it. The stencil and transfer
// kernels share this one threshold across dimensions (a 2D row of a level-7
// grid and a 3D plane of a level-5 cube carry very different point counts,
// so gating on iteration count alone mis-tunes one dimension or the other).
const MinParallelPoints = 8192

// ParallelForPoints is ParallelFor for iteration spaces whose elements carry
// uniform work of pointsPerIter grid points each (a 2D row, a 3D plane). It
// runs serially when the total work is under MinParallelPoints, and
// otherwise picks the default grain so that no chunk is smaller than
// MinParallelPoints worth of points — the points-based gate that keeps
// coarse levels off the task queue in both dimensions.
func (p *Pool) ParallelForPoints(lo, hi, pointsPerIter int, body func(lo, hi int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	if pointsPerIter < 1 {
		pointsPerIter = 1
	}
	if p.workers == 1 || n*pointsPerIter < MinParallelPoints {
		body(lo, hi)
		return
	}
	grain := n / (8 * p.workers)
	if min := (MinParallelPoints + pointsPerIter - 1) / pointsPerIter; grain < min {
		grain = min
	}
	p.ParallelFor(lo, hi, grain, body)
}

// ParallelFor partitions [lo, hi) into chunks of at most grain iterations
// and runs body on each chunk, possibly in parallel. grain <= 0 selects a
// default of (hi-lo)/(8*workers), clamped to at least 1. body must be safe
// to call concurrently on disjoint ranges.
func (p *Pool) ParallelFor(lo, hi, grain int, body func(lo, hi int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = n / (8 * p.workers)
		if grain < 1 {
			grain = 1
		}
	}
	if p.workers == 1 || n <= grain {
		body(lo, hi)
		return
	}
	chunks := (n + grain - 1) / grain
	r := &region{}
	r.remaining.Store(int64(chunks - 1))
	for c := 1; c < chunks; c++ {
		clo := lo + c*grain
		chi := clo + grain
		if chi > hi {
			chi = hi
		}
		p.submit(&task{region: r, run: func() { body(clo, chi) }})
	}
	var firstPanic any
	func() {
		defer func() { firstPanic = recover() }()
		body(lo, lo+grain)
	}()
	p.help(r, rand.New(rand.NewSource(int64(n))))
	if firstPanic != nil {
		panic(firstPanic)
	}
}
