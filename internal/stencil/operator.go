// Operator families generalize the solver beyond the constant-coefficient
// Laplacian: every kernel in this package exists in three variants, selected
// by an Operator value that travels with the problem through the multigrid
// hierarchy.
//
//   - FamilyPoisson: T = −∇², the paper's operator. Kernels dispatch to the
//     specialized free functions of stencil.go, so this path is bit-identical
//     to (and exactly as fast as) the original implementation.
//   - FamilyAnisotropic: T = −(ε·∂²/∂x² + ∂²/∂y²) with constant ε > 0. The
//     5-point stencil keeps weight 1 on vertical neighbours and ε on
//     horizontal ones (x runs along rows, i.e. the column index j).
//   - FamilyVarCoef: T = −∇·(c∇u) for a positive nodal coefficient field
//     c(x, y), discretized with harmonic-free arithmetic face averages
//     c_face = (c_node + c_neighbour)/2 — the standard cell-face scheme that
//     keeps the operator symmetric positive definite.
//   - FamilyPoisson3D: T = −∇² on an N×N×N cube with the 7-point stencil —
//     the paper's headline scaling case. Kernels dispatch to the plane-
//     parallel free functions of stencil3d.go. Operators know their spatial
//     dimension (Dim); mixing a 3D operator with 2D grids (or vice versa)
//     fails loudly in the grid accessors.
//
// Coarse-grid re-discretization: Coarse() returns the operator for the next
// multigrid level. Constant-coefficient families are scale-invariant and
// return themselves; variable-coefficient operators restrict the nodal field
// by injection (coarse nodes coincide with fine nodes) via transfer. The
// result is memoized, so a hierarchy is built once per operator and shared
// by concurrent solves.
package stencil

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"pbmg/internal/faultinject"
	"pbmg/internal/grid"
	"pbmg/internal/sched"
	"pbmg/internal/transfer"
)

// Family enumerates the supported operator families.
type Family uint8

const (
	// FamilyPoisson is the constant-coefficient Laplacian −∇².
	FamilyPoisson Family = iota
	// FamilyAnisotropic is −(ε·∂²/∂x² + ∂²/∂y²) with constant ε.
	FamilyAnisotropic
	// FamilyVarCoef is −∇·(c∇u) with a positive nodal coefficient field.
	FamilyVarCoef
	// FamilyPoisson3D is the constant-coefficient 3D Laplacian −∇² on a
	// cube, discretized with the 7-point stencil.
	FamilyPoisson3D
)

// String returns the canonical family name used in configuration files and
// CLI flags.
func (f Family) String() string {
	switch f {
	case FamilyPoisson:
		return "poisson"
	case FamilyAnisotropic:
		return "aniso"
	case FamilyVarCoef:
		return "varcoef"
	case FamilyPoisson3D:
		return "poisson3d"
	default:
		return fmt.Sprintf("Family(%d)", uint8(f))
	}
}

// Dim returns the family's spatial dimension (2 or 3).
func (f Family) Dim() int {
	if f == FamilyPoisson3D {
		return 3
	}
	return 2
}

// ParseFamily parses a family name (as produced by String, with a few
// forgiving aliases).
func ParseFamily(s string) (Family, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "poisson", "laplace", "isotropic":
		return FamilyPoisson, nil
	case "aniso", "anisotropic":
		return FamilyAnisotropic, nil
	case "varcoef", "variable", "variable-coefficient":
		return FamilyVarCoef, nil
	case "poisson3d", "poisson-3d", "laplace3d", "3d":
		return FamilyPoisson3D, nil
	default:
		return 0, fmt.Errorf("stencil: unknown operator family %q (want poisson, aniso, varcoef, or poisson3d)", s)
	}
}

// Operator is one member of an operator family, instantiated — for the
// variable-coefficient family — at a specific grid size. Operators are
// immutable after construction and safe for concurrent use; the coarse-grid
// operator is derived once and cached.
type Operator struct {
	family Family
	// eps is the family parameter: the anisotropy ratio ε for
	// FamilyAnisotropic, the log-contrast σ of the built-in coefficient
	// field for FamilyVarCoef, and 1 for FamilyPoisson.
	eps float64
	// coef is the nodal coefficient field (FamilyVarCoef only).
	coef *grid.Grid

	coarseOnce sync.Once
	coarse     *Operator

	// splitCoef memoizes the coefficient field in color-split layout
	// (FamilyVarCoef only): the field is immutable, so the unit-stride
	// sweeps pack it once per operator instead of once per solve.
	splitCoefOnce sync.Once
	splitCoef     *grid.Split

	// coef32 memoizes the coefficient field converted to float32
	// (FamilyVarCoef only), so the mixed-precision kernels read a
	// half-width field instead of converting per sweep.
	coef32Once sync.Once
	coef32     *grid.Grid32

	// splitCoef32 memoizes the float32 field in color-split layout for the
	// mixed-precision unit-stride sweeps.
	splitCoef32Once sync.Once
	splitCoef32     *grid.Split32
}

var poissonOp = &Operator{family: FamilyPoisson, eps: 1}

// Poisson returns the constant-coefficient Laplacian operator. The returned
// value is shared; it is valid at every grid size.
func Poisson() *Operator { return poissonOp }

var poisson3dOp = &Operator{family: FamilyPoisson3D, eps: 1}

// Poisson3D returns the constant-coefficient 3D Laplacian operator. The
// returned value is shared; it is valid at every grid size.
func Poisson3D() *Operator { return poisson3dOp }

// Anisotropic returns the operator −(ε·∂²/∂x² + ∂²/∂y²). ε must be positive;
// ε = 1 is the Laplacian (kept under its own family label). Valid at every
// grid size.
func Anisotropic(eps float64) *Operator {
	if !(eps > 0) || math.IsInf(eps, 1) {
		panic(fmt.Sprintf("stencil: anisotropy ε must be positive and finite, got %v", eps))
	}
	return &Operator{family: FamilyAnisotropic, eps: eps}
}

// VarCoefOperator returns the operator −∇·(c∇u) for the given positive nodal
// coefficient field. eps records the field's contrast parameter for
// provenance (use 0 for user-supplied fields). The operator is only valid at
// grid size coef.N(); coarser levels are derived via Coarse.
func VarCoefOperator(coef *grid.Grid, eps float64) *Operator {
	for i := 0; i < coef.N(); i++ {
		for j := 0; j < coef.N(); j++ {
			if !(coef.At(i, j) > 0) {
				panic(fmt.Sprintf("stencil: coefficient field must be positive; c[%d,%d]=%v", i, j, coef.At(i, j)))
			}
		}
	}
	return &Operator{family: FamilyVarCoef, eps: eps, coef: coef}
}

// CoefField builds the package's canonical smooth positive coefficient field
// c(x, y) = exp(σ·sin(2πx)·sin(2πy)) on an n×n grid: contrast e^(2σ) between
// the strongest and weakest regions, analytic so that injection to a coarse
// grid equals re-evaluation at the coarse nodes.
func CoefField(n int, sigma float64) *grid.Grid {
	c := grid.New(n)
	h := 1.0 / float64(n-1)
	for i := 0; i < n; i++ {
		y := float64(i) * h
		row := c.Row(i)
		for j := 0; j < n; j++ {
			x := float64(j) * h
			row[j] = math.Exp(sigma * math.Sin(2*math.Pi*x) * math.Sin(2*math.Pi*y))
		}
	}
	return c
}

// NewOperator instantiates a family at grid size n. eps is the anisotropy
// ratio (FamilyAnisotropic) or the coefficient-field contrast σ
// (FamilyVarCoef); it is ignored for FamilyPoisson.
func NewOperator(f Family, eps float64, n int) (*Operator, error) {
	switch f {
	case FamilyPoisson:
		return Poisson(), nil
	case FamilyPoisson3D:
		return Poisson3D(), nil
	case FamilyAnisotropic:
		if !(eps > 0) || math.IsInf(eps, 1) {
			return nil, fmt.Errorf("stencil: anisotropy ε must be positive and finite, got %v", eps)
		}
		return Anisotropic(eps), nil
	case FamilyVarCoef:
		if !(eps > 0) || math.IsInf(eps, 1) {
			return nil, fmt.Errorf("stencil: coefficient contrast σ must be positive and finite, got %v", eps)
		}
		if grid.Level(n) < 1 {
			return nil, fmt.Errorf("stencil: varcoef operator needs a 2^k+1 grid side, got %d", n)
		}
		return VarCoefOperator(CoefField(n, eps), eps), nil
	default:
		return nil, fmt.Errorf("stencil: unknown family %v", f)
	}
}

// Family returns the operator's family.
func (op *Operator) Family() Family { return op.family }

// Dim returns the operator's spatial dimension (2 or 3). Every layer above
// the kernels — workspaces, problems, reference solutions, tuning — derives
// its grid shapes from this value.
func (op *Operator) Dim() int { return op.family.Dim() }

// Eps returns the family parameter (ε or σ; 1 for Poisson).
func (op *Operator) Eps() float64 { return op.eps }

// Coef returns the nodal coefficient field, or nil for constant-coefficient
// families.
func (op *Operator) Coef() *grid.Grid { return op.coef }

// Coef32 returns the nodal coefficient field converted to float32, or nil
// for constant-coefficient families. The conversion is computed once per
// operator and shared.
func (op *Operator) Coef32() *grid.Grid32 {
	if op.coef == nil {
		return nil
	}
	op.coef32Once.Do(func() {
		c := grid.NewOf[float32](op.coef.Dim(), op.coef.N())
		grid.ConvertInto(c, op.coef)
		op.coef32 = c
	})
	return op.coef32
}

// opCoef resolves the operator's coefficient field at the kernel's storage
// precision: the original field for float64, the memoized converted copy
// for float32.
func opCoef[T grid.Float](op *Operator) *grid.G[T] {
	var z T
	if _, is32 := any(z).(float32); is32 {
		return any(op.Coef32()).(*grid.G[T])
	}
	return any(op.coef).(*grid.G[T])
}

// String names the operator with its parameter, e.g. "aniso(eps=0.01)".
func (op *Operator) String() string {
	switch op.family {
	case FamilyPoisson:
		return "poisson"
	case FamilyPoisson3D:
		return "poisson3d"
	case FamilyAnisotropic:
		return fmt.Sprintf("aniso(eps=%g)", op.eps)
	default:
		return fmt.Sprintf("varcoef(sigma=%g)", op.eps)
	}
}

// Coarse returns the operator re-discretized on the next-coarser multigrid
// level. Constant-coefficient operators are size-independent and return
// themselves; variable-coefficient operators restrict the nodal field by
// injection. The result is computed once and cached.
func (op *Operator) Coarse() *Operator {
	if op.coef == nil {
		return op
	}
	op.coarseOnce.Do(func() {
		nc := grid.Coarsen(op.coef.N())
		cc := grid.New(nc)
		transfer.RestrictCoef(cc, op.coef)
		op.coarse = &Operator{family: FamilyVarCoef, eps: op.eps, coef: cc}
	})
	return op.coarse
}

// At resolves the operator for grid size n: constant-coefficient operators
// serve every size directly, while variable-coefficient operators walk the
// memoized coarse hierarchy down from their discretization size. It panics
// if n is finer than the operator's field or not reachable by coarsening.
func (op *Operator) At(n int) *Operator {
	if op.coef == nil {
		return op
	}
	cur := op
	for cur.coef.N() > n && cur.coef.N() > 3 {
		cur = cur.Coarse()
	}
	if cur.coef.N() != n {
		panic(fmt.Sprintf("stencil: operator discretized at N=%d cannot serve N=%d", op.coef.N(), n))
	}
	return cur
}

// FaceCoefs returns the four face coefficients of the 5-point stencil at
// grid point (i, j): north (toward row i−1), south (row i+1), west (column
// j−1), east (column j+1). The center coefficient is their sum. (i, j) must
// be an interior point for variable-coefficient operators. FaceCoefs is
// 2D-only; 3D operators have the constant 7-point stencil and panic here.
func (op *Operator) FaceCoefs(i, j int) (cn, cs, cw, ce float64) {
	switch op.family {
	case FamilyPoisson:
		return 1, 1, 1, 1
	case FamilyAnisotropic:
		return 1, 1, op.eps, op.eps
	case FamilyPoisson3D:
		panic("stencil: FaceCoefs is 2D-only; poisson3d has the constant 7-point stencil")
	default:
		c := op.coef
		cc := c.At(i, j)
		return 0.5 * (cc + c.At(i-1, j)), 0.5 * (cc + c.At(i+1, j)),
			0.5 * (cc + c.At(i, j-1)), 0.5 * (cc + c.At(i, j+1))
	}
}

// OmegaOpt returns the optimal (or heuristic) SOR relaxation weight for the
// operator on an n×n grid, used by the iterated-SOR shortcut solver.
//
// For the Laplacian this is ω* = 2/(1 + sin(πh)) (Demmel §6.5.5). The same
// formula is exact for the anisotropic family: the Jacobi iteration matrix
// has eigenvalues (ε·cos(kπh) + cos(lπh))/(1 + ε), whose spectral radius
// cos(πh) does not depend on ε, so Young's ω* is unchanged. It is also
// exact for the 3D Laplacian: the Jacobi eigenvalues average one cosine per
// axis, so the spectral radius is cos(πh) in any dimension. For smooth
// variable-coefficient fields there is no closed form; the Laplacian value
// is the standard heuristic (red-black SOR on an SPD operator converges for
// any ω ∈ (0, 2), so the choice affects speed, not correctness).
func (op *Operator) OmegaOpt(n int) float64 {
	return OmegaOpt(n)
}

// OmegaSmooth returns the in-cycle smoothing weight for the operator — the
// per-family counterpart of the paper's fixed ω = 1.15 (§2.3).
//
//   - Poisson: 1.15, the paper's experimentally chosen value.
//   - Anisotropic: 1 + 0.15·min(ε, 1/ε). Point smoothers lose their
//     smoothing power in the weakly coupled direction as ε departs from 1,
//     and over-relaxation amplifies the rough modes they leave behind, so
//     the weight decays toward plain Gauss-Seidel for strong anisotropy.
//   - Variable-coefficient: 1.10, mildly damped from the paper's value so
//     the sweep stays robust across coefficient jumps.
func (op *Operator) OmegaSmooth() float64 {
	switch op.family {
	case FamilyAnisotropic:
		r := op.eps
		if r > 1 {
			r = 1 / r
		}
		return 1 + 0.15*r
	case FamilyVarCoef:
		return 1.10
	default:
		return OmegaRecurse
	}
}

// checkSize verifies a kernel argument matches the coefficient field.
func (op *Operator) checkSize(n int) {
	if op.coef != nil && op.coef.N() != n {
		panic(fmt.Sprintf("stencil: operator at N=%d applied to grid of N=%d (resolve with At)", op.coef.N(), n))
	}
}

// SORSweepRB performs one red-black SOR sweep for the operator, in place.
// See the package-level SORSweepRB for the coloring contract; all families
// share it, so parallel execution stays bit-identical to serial.
func (op *Operator) SORSweepRB(pool *sched.Pool, x, b *grid.Grid, h, omega float64) {
	OpSORSweepRB(op, pool, x, b, h, omega)
}

// OpSORSweepRB is the precision-generic red-black SOR sweep: one full sweep
// for op, in place on a grid of either storage precision.
func OpSORSweepRB[T grid.Float](op *Operator, pool *sched.Pool, x, b *grid.G[T], h, omega T) {
	if faultinject.Enabled {
		// The slow-kernel injection point: every SOR path — in-cycle
		// smoothing, the iterative shortcut, the NoFuse oracle — sweeps
		// through here or OpSORSweeps, so an armed delay stretches any solve.
		faultinject.Point("stencil.sweep")
	}
	switch op.family {
	case FamilyPoisson:
		SORSweepRB(pool, x, b, h, omega)
	case FamilyPoisson3D:
		sorSweepRB3(pool, x, b, h, omega)
	case FamilyAnisotropic:
		sorSweepRBConst(pool, x, b, h, omega, T(op.eps), 1)
	default:
		op.checkSize(x.N())
		sorSweepRBVar(pool, x, b, h, omega, opCoef[T](op))
	}
}

// GaussSeidelSweep performs one lexicographic Gauss-Seidel sweep in place.
// Like the package-level GaussSeidelSweep it mirrors, this kernel is
// inherently sequential and provided for comparison and testing only; the
// solve path smooths with red-black SOR. The per-point FaceCoefs lookup is
// acceptable here for the same reason.
func (op *Operator) GaussSeidelSweep(x, b *grid.Grid, h float64) {
	OpGaussSeidelSweep(op, x, b, h)
}

// OpGaussSeidelSweep is the precision-generic lexicographic Gauss-Seidel
// sweep for op.
func OpGaussSeidelSweep[T grid.Float](op *Operator, x, b *grid.G[T], h T) {
	if op.family == FamilyPoisson {
		GaussSeidelSweep(x, b, h)
		return
	}
	if op.family == FamilyPoisson3D {
		gaussSeidel3(x, b, h)
		return
	}
	op.checkSize(x.N())
	n := x.N()
	h2 := h * h
	if op.family == FamilyAnisotropic {
		cx, cy := T(op.eps), T(1)
		invC := 1 / (2 * (cx + cy))
		for i := 1; i < n-1; i++ {
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			for j := 1; j < n-1; j++ {
				xr[j] = (cy*(up[j]+down[j]) + cx*(xr[j-1]+xr[j+1]) + h2*br[j]) * invC
			}
		}
		return
	}
	c := opCoef[T](op)
	for i := 1; i < n-1; i++ {
		xr := x.Row(i)
		up := x.Row(i - 1)
		down := x.Row(i + 1)
		br := b.Row(i)
		cr := c.Row(i)
		cu := c.Row(i - 1)
		cd := c.Row(i + 1)
		for j := 1; j < n-1; j++ {
			cc := cr[j]
			cn := 0.5 * (cc + cu[j])
			cs := 0.5 * (cc + cd[j])
			cw := 0.5 * (cc + cr[j-1])
			ce := 0.5 * (cc + cr[j+1])
			xr[j] = (cn*up[j] + cs*down[j] + cw*xr[j-1] + ce*xr[j+1] + h2*br[j]) / (cn + cs + cw + ce)
		}
	}
}

// JacobiSweep performs one weighted-Jacobi sweep for the operator, reading
// from x and writing into out (boundary copied from x). out must not alias x.
func (op *Operator) JacobiSweep(pool *sched.Pool, out, x, b *grid.Grid, h, w float64) {
	OpJacobiSweep(op, pool, out, x, b, h, w)
}

// OpJacobiSweep is the precision-generic weighted-Jacobi sweep for op.
func OpJacobiSweep[T grid.Float](op *Operator, pool *sched.Pool, out, x, b *grid.G[T], h, w T) {
	switch op.family {
	case FamilyPoisson:
		JacobiSweep(pool, out, x, b, h, w)
		return
	case FamilyPoisson3D:
		jacobiSweep3(pool, out, x, b, h, w)
		return
	case FamilyAnisotropic:
		jacobiSweepConst(pool, out, x, b, h, w, T(op.eps), 1)
		return
	}
	op.checkSize(x.N())
	c := opCoef[T](op)
	n := x.N()
	h2 := h * h
	out.CopyBoundaryFrom(x)
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			or := out.Row(i)
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			cr := c.Row(i)
			cu := c.Row(i - 1)
			cd := c.Row(i + 1)
			for j := 1; j < n-1; j++ {
				cc := cr[j]
				cn := 0.5 * (cc + cu[j])
				cs := 0.5 * (cc + cd[j])
				cw := 0.5 * (cc + cr[j-1])
				ce := 0.5 * (cc + cr[j+1])
				jac := (cn*up[j] + cs*down[j] + cw*xr[j-1] + ce*xr[j+1] + h2*br[j]) / (cn + cs + cw + ce)
				or[j] = xr[j] + w*(jac-xr[j])
			}
		}
	})
}

// jacobiSweepConst is the weighted-Jacobi sweep for a constant-coefficient
// stencil with horizontal weight cx and vertical weight cy.
func jacobiSweepConst[T grid.Float](pool *sched.Pool, out, x, b *grid.G[T], h, w, cx, cy T) {
	n := x.N()
	h2 := h * h
	invC := 1 / (2 * (cx + cy))
	out.CopyBoundaryFrom(x)
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			or := out.Row(i)
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			for j := 1; j < n-1; j++ {
				jac := (cy*(up[j]+down[j]) + cx*(xr[j-1]+xr[j+1]) + h2*br[j]) * invC
				or[j] = xr[j] + w*(jac-xr[j])
			}
		}
	})
}

// Residual computes r = b − T·x on interior points and zeroes r's boundary.
// r must not alias x or b.
func (op *Operator) Residual(pool *sched.Pool, r, x, b *grid.Grid, h float64) {
	OpResidual(op, pool, r, x, b, h)
}

// OpResidual is the precision-generic residual r = b − T·x for op.
func OpResidual[T grid.Float](op *Operator, pool *sched.Pool, r, x, b *grid.G[T], h T) {
	switch op.family {
	case FamilyPoisson:
		Residual(pool, r, x, b, h)
	case FamilyPoisson3D:
		residual3(pool, r, x, b, h)
	case FamilyAnisotropic:
		residualConst(pool, r, x, b, h, T(op.eps), 1)
	default:
		op.checkSize(x.N())
		residualVar(pool, r, x, b, h, opCoef[T](op))
	}
}

// Apply computes y = T·x on interior points and zeroes y's boundary.
// y must not alias x.
func (op *Operator) Apply(pool *sched.Pool, y, x *grid.Grid, h float64) {
	OpApply(op, pool, y, x, h)
}

// OpApply is the precision-generic operator apply y = T·x for op.
func OpApply[T grid.Float](op *Operator, pool *sched.Pool, y, x *grid.G[T], h T) {
	switch op.family {
	case FamilyPoisson:
		Apply(pool, y, x, h)
		return
	case FamilyPoisson3D:
		apply3(pool, y, x, h)
		return
	case FamilyAnisotropic:
		applyConst(pool, y, x, h, T(op.eps), 1)
		return
	}
	op.checkSize(x.N())
	c := opCoef[T](op)
	n := x.N()
	inv := 1 / (h * h)
	y.ZeroBoundary()
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			yr := y.Row(i)
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			cr := c.Row(i)
			cu := c.Row(i - 1)
			cd := c.Row(i + 1)
			for j := 1; j < n-1; j++ {
				cc := cr[j]
				cn := 0.5 * (cc + cu[j])
				cs := 0.5 * (cc + cd[j])
				cw := 0.5 * (cc + cr[j-1])
				ce := 0.5 * (cc + cr[j+1])
				yr[j] = ((cn+cs+cw+ce)*xr[j] - cn*up[j] - cs*down[j] - cw*xr[j-1] - ce*xr[j+1]) * inv
			}
		}
	})
}

// applyConst computes y = T·x for a constant-coefficient stencil.
func applyConst[T grid.Float](pool *sched.Pool, y, x *grid.G[T], h, cx, cy T) {
	n := x.N()
	inv := 1 / (h * h)
	center := 2 * (cx + cy)
	y.ZeroBoundary()
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			yr := y.Row(i)
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			for j := 1; j < n-1; j++ {
				yr[j] = (center*xr[j] - cy*(up[j]+down[j]) - cx*(xr[j-1]+xr[j+1])) * inv
			}
		}
	})
}

// ResidualNorm returns ‖b − T·x‖₂ over interior points. The reduction
// accumulates fixed per-row (2D) or per-plane (3D) partial sums and adds
// them in index order, so the result is run-to-run deterministic and
// identical for a nil pool and any worker count.
func (op *Operator) ResidualNorm(pool *sched.Pool, x, b *grid.Grid, h float64) float64 {
	return OpResidualNorm(op, pool, x, b, h)
}

// OpResidualNorm is the precision-generic residual norm for op. The partial
// sums accumulate in float64 regardless of the storage precision, so
// convergence accounting on the float32 path stays trustworthy.
func OpResidualNorm[T grid.Float](op *Operator, pool *sched.Pool, x, b *grid.G[T], h T) float64 {
	switch op.family {
	case FamilyPoisson:
		return residualNormPar(pool, x, b, h)
	case FamilyPoisson3D:
		return residualNormPar3(pool, x, b, h)
	case FamilyAnisotropic:
		return residualNormParConst(pool, x, b, h, T(op.eps), 1)
	default:
		op.checkSize(x.N())
		return residualNormParVar(pool, x, b, h, opCoef[T](op))
	}
}

// SmoothResidual performs one full red-black SOR sweep in place on x and
// leaves r = b − T·x (post-sweep, zeroed boundary) in the same traversal:
// the black half-sweep derives its residual from the update delta, and a
// red fixup half-pass — half the footprint of the standalone Residual
// kernel — completes the grid. x is bit-identical to SORSweepRB; r matches
// the unfused Residual bit-identically at red points and to rounding error
// at black points. r must not alias x or b.
func (op *Operator) SmoothResidual(pool *sched.Pool, x, b, r *grid.Grid, h, omega float64) {
	OpSmoothResidual(op, pool, x, b, r, h, omega)
}

// OpSmoothResidual is the precision-generic fused sweep + residual for op.
func OpSmoothResidual[T grid.Float](op *Operator, pool *sched.Pool, x, b, r *grid.G[T], h, omega T) {
	switch op.family {
	case FamilyPoisson:
		SmoothResidual(pool, x, b, r, h, omega)
	case FamilyPoisson3D:
		smoothResidual3(pool, x, b, r, h, omega)
	case FamilyAnisotropic:
		smoothResidualConst(pool, x, b, r, h, omega, T(op.eps), 1)
	default:
		op.checkSize(x.N())
		smoothResidualVar(pool, x, b, r, h, omega, opCoef[T](op))
	}
}

// SweepWithNorm performs one full red-black SOR sweep in place on x and
// returns ‖b − T·x‖₂ over interior points after the sweep, folding the
// convergence check's residual traversal into the smoothing pass. The
// reduction uses the same deterministic fixed-chunk scheme as ResidualNorm.
func (op *Operator) SweepWithNorm(pool *sched.Pool, x, b *grid.Grid, h, omega float64) float64 {
	return OpSweepWithNorm(op, pool, x, b, h, omega)
}

// OpSweepWithNorm is the precision-generic fused sweep + post-sweep residual
// norm for op (norm accumulated in float64).
func OpSweepWithNorm[T grid.Float](op *Operator, pool *sched.Pool, x, b *grid.G[T], h, omega T) float64 {
	switch op.family {
	case FamilyPoisson:
		return SweepWithNorm(pool, x, b, h, omega)
	case FamilyPoisson3D:
		return sweepWithNorm3(pool, x, b, h, omega)
	case FamilyAnisotropic:
		return sweepWithNormConst(pool, x, b, h, omega, T(op.eps), 1)
	default:
		op.checkSize(x.N())
		return sweepWithNormVar(pool, x, b, h, omega, opCoef[T](op))
	}
}

// SmoothResidualRestrict is the composed V-cycle downstroke: one red-black
// SOR sweep on x, then the full-weighting restriction of the post-sweep
// residual into coarse — without a separate residual pass. The black
// half-sweep emits its residuals from the update delta into the scratch
// grid r, and the fused restriction evaluates only the red half on the fly
// as it consumes rows. After the call r holds black residuals only (red
// points and boundary are unspecified scratch). x is bit-identical to
// SORSweepRB; coarse matches the unfused sweep + Residual + Restrict chain
// to floating-point association (≤1e-12 of the data scale). r must not
// alias x, b, or coarse.
func (op *Operator) SmoothResidualRestrict(pool *sched.Pool, coarse, x, b, r *grid.Grid, h, omega float64) {
	OpSmoothResidualRestrict(op, pool, coarse, x, b, r, h, omega)
}

// OpSmoothResidualRestrict is the precision-generic fused V-cycle
// downstroke for op.
func OpSmoothResidualRestrict[T grid.Float](op *Operator, pool *sched.Pool, coarse, x, b, r *grid.G[T], h, omega T) {
	if faultinject.Enabled {
		// The fused downstroke carries the cycle's smoothing sweep, so the
		// slow-kernel injection covers it alongside the plain SOR paths.
		faultinject.Point("stencil.sweep")
	}
	switch op.family {
	case FamilyPoisson:
		smoothResidualRestrict(pool, coarse, x, b, r, h, omega)
	case FamilyPoisson3D:
		smoothResidualRestrict3(pool, coarse, x, b, r, h, omega)
	case FamilyAnisotropic:
		smoothResidualRestrictConst(pool, coarse, x, b, r, h, omega, T(op.eps), 1)
	default:
		op.checkSize(x.N())
		smoothResidualRestrictVar(pool, coarse, x, b, r, h, omega, opCoef[T](op))
	}
}

// ResidualRestrict computes the full-weighting restriction of b − T·x into
// coarse directly from (x, b), never materializing the fine residual grid —
// the fused downstroke pass for cycles whose residual is not preceded by a
// smoothing sweep (full-multigrid estimation). The result matches Residual
// followed by transfer.Restrict to floating-point association (the
// restriction weights are applied separably).
func (op *Operator) ResidualRestrict(pool *sched.Pool, coarse, x, b *grid.Grid, h float64) {
	OpResidualRestrict(op, pool, coarse, x, b, h)
}

// OpResidualRestrict is the precision-generic fused residual + restriction
// for op.
func OpResidualRestrict[T grid.Float](op *Operator, pool *sched.Pool, coarse, x, b *grid.G[T], h T) {
	inv := 1 / (h * h)
	switch op.family {
	case FamilyPoisson:
		transfer.RestrictResidual(pool, coarse, x.N(), residualRowPoisson(x, b, inv))
	case FamilyPoisson3D:
		transfer.RestrictResidual3(pool, coarse, x.N(), residualPlane3(x, b, inv))
	case FamilyAnisotropic:
		transfer.RestrictResidual(pool, coarse, x.N(), residualRowConst(x, b, inv, T(op.eps), 1))
	default:
		op.checkSize(x.N())
		transfer.RestrictResidual(pool, coarse, x.N(), residualRowVar(x, b, inv, opCoef[T](op)))
	}
}

// residualNormConst returns ‖b − T·x‖₂ for a constant-coefficient stencil.
func residualNormConst[T grid.Float](x, b *grid.G[T], h, cx, cy T) float64 {
	n := x.N()
	inv := 1 / (h * h)
	center := 2 * (cx + cy)
	var sum float64
	for i := 1; i < n-1; i++ {
		xr := x.Row(i)
		up := x.Row(i - 1)
		down := x.Row(i + 1)
		br := b.Row(i)
		for j := 1; j < n-1; j++ {
			r := float64(br[j] - (center*xr[j]-cy*(up[j]+down[j])-cx*(xr[j-1]+xr[j+1]))*inv)
			sum += r * r
		}
	}
	return math.Sqrt(sum)
}

// sorSweepRBConst is the red-black SOR sweep for a constant-coefficient
// stencil with horizontal weight cx and vertical weight cy.
func sorSweepRBConst[T grid.Float](pool *sched.Pool, x, b *grid.G[T], h, omega, cx, cy T) {
	n := x.N()
	h2 := h * h
	invC := 1 / (2 * (cx + cy))
	for color := 0; color <= 1; color++ {
		parallelRows(pool, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				xr := x.Row(i)
				up := x.Row(i - 1)
				down := x.Row(i + 1)
				br := b.Row(i)
				j0 := 1 + (i+1+color)%2
				for j := j0; j < n-1; j += 2 {
					gs := (cy*(up[j]+down[j]) + cx*(xr[j-1]+xr[j+1]) + h2*br[j]) * invC
					xr[j] += omega * (gs - xr[j])
				}
			}
		})
	}
}

// residualConst computes the residual for a constant-coefficient stencil.
func residualConst[T grid.Float](pool *sched.Pool, r, x, b *grid.G[T], h, cx, cy T) {
	n := x.N()
	inv := 1 / (h * h)
	center := 2 * (cx + cy)
	r.ZeroBoundary()
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rr := r.Row(i)
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			for j := 1; j < n-1; j++ {
				rr[j] = br[j] - (center*xr[j]-cy*(up[j]+down[j])-cx*(xr[j-1]+xr[j+1]))*inv
			}
		}
	})
}

// sorSweepRBVar is the red-black SOR sweep for a variable-coefficient
// stencil with nodal field c (face coefficients are arithmetic averages).
func sorSweepRBVar[T grid.Float](pool *sched.Pool, x, b *grid.G[T], h, omega T, c *grid.G[T]) {
	n := x.N()
	h2 := h * h
	for color := 0; color <= 1; color++ {
		parallelRows(pool, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				xr := x.Row(i)
				up := x.Row(i - 1)
				down := x.Row(i + 1)
				br := b.Row(i)
				cr := c.Row(i)
				cu := c.Row(i - 1)
				cd := c.Row(i + 1)
				j0 := 1 + (i+1+color)%2
				for j := j0; j < n-1; j += 2 {
					cc := cr[j]
					cn := 0.5 * (cc + cu[j])
					cs := 0.5 * (cc + cd[j])
					cw := 0.5 * (cc + cr[j-1])
					ce := 0.5 * (cc + cr[j+1])
					gs := (cn*up[j] + cs*down[j] + cw*xr[j-1] + ce*xr[j+1] + h2*br[j]) / (cn + cs + cw + ce)
					xr[j] += omega * (gs - xr[j])
				}
			}
		})
	}
}

// residualVar computes the residual for a variable-coefficient stencil.
func residualVar[T grid.Float](pool *sched.Pool, r, x, b *grid.G[T], h T, c *grid.G[T]) {
	n := x.N()
	inv := 1 / (h * h)
	r.ZeroBoundary()
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rr := r.Row(i)
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			cr := c.Row(i)
			cu := c.Row(i - 1)
			cd := c.Row(i + 1)
			for j := 1; j < n-1; j++ {
				cc := cr[j]
				cn := 0.5 * (cc + cu[j])
				cs := 0.5 * (cc + cd[j])
				cw := 0.5 * (cc + cr[j-1])
				ce := 0.5 * (cc + cr[j+1])
				rr[j] = br[j] - ((cn+cs+cw+ce)*xr[j]-cn*up[j]-cs*down[j]-cw*xr[j-1]-ce*xr[j+1])*inv
			}
		}
	})
}
