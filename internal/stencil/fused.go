// Fused single-pass cycle kernels (2D). On a memory-bandwidth-bound stencil
// code the separate smooth / residual / restrict / norm passes of a V-cycle
// each re-stream the whole grid, and those redundant traversals — not flops —
// dominate the wall clock. This file fuses them:
//
//   - SmoothResidual: one full red-black SOR sweep that also emits the
//     post-sweep residual grid. Black points get their residual for free
//     from the update delta (after the black half-sweep every neighbour of
//     a black point is final, so r = C·(1−ω)·(gs − x_old)/h², exactly); red
//     points need a fixup half-pass, half the traversal of the standalone
//     Residual kernel.
//   - SmoothResidualRestrict: the whole V-cycle downstroke — smoothing
//     sweep, residual, full-weighting restriction — as one composed kernel:
//     BOTH half-sweeps emit their update deltas into r, a half-traversal
//     gather over r alone reconstructs the red residuals from their black
//     neighbours' stored deltas (gatherFixup), and the restriction consumes
//     the finished grid. The standalone residual pass — a full extra read
//     of x and b — disappears from the downstroke entirely.
//   - SweepWithNorm: the sweep shape of SmoothResidual, but reducing
//     ‖b − T·x‖₂ instead of materializing r — the adaptive driver's
//     per-iteration convergence probe folded into the smoothing it already
//     pays for.
//
// Norm reductions accumulate per interior row into a fixed per-row partial
// sum array and add the rows in index order at the end, so the result is
// bit-identical for any worker count and any chunking — the deterministic
// fixed-chunk reduction contract the adaptive driver and refsol rely on.
//
// The unfused kernels in stencil.go/operator.go remain the oracle: the
// fused paths are exercised against them point-for-point by the equivalence
// and fuzz suites. Iterates are bit-identical to the unfused sweep; fused
// residual/restriction values agree to floating-point association (≤1e-12
// of the data scale) where a derivation or summation order differs.
package stencil

import (
	"math"

	"pbmg/internal/grid"
	"pbmg/internal/sched"
	"pbmg/internal/transfer"
)

// sumRows adds per-row partial sums in index order and returns the L2 norm.
func sumRows(sums []float64, n int) float64 {
	var total float64
	for i := 1; i < n-1; i++ {
		total += sums[i]
	}
	return math.Sqrt(total)
}

// gatherMinOneMinusOmega gates the delta-gather downstroke: reconstructing
// red residuals from stored black residuals divides by C·(1−ω), so the
// reconstruction is used only when |1−ω| is large enough that the division
// does not amplify rounding error past the fused kernels' 1e-12 contract.
// The gathered correction κ·r_black = ω·c·d/h² is itself well-conditioned
// (the (1−ω) factors cancel); what is amplified is only r_black's own
// rounding, giving a reconstruction error of order eps·ω/(C·|1−ω|) relative
// to the residual scale — ≈6e-14 at the gate, a 16× margin. Below the gate
// (including plain Gauss-Seidel, ω = 1, where the stored deltas vanish
// identically) the composed kernel evaluates red residuals directly from
// (x, b). Every in-cycle smoothing weight the operator families use
// (stencil.Operator.OmegaSmooth; the smallest is 1 + 0.15·ε for strong
// anisotropy, ≥ the gate for ε ≥ 0.0067) takes the gather path.
const gatherMinOneMinusOmega = 1e-3

// redHalfSweep is SORSweepRB's color-0 half-sweep for the Laplacian.
func redHalfSweep[T grid.Float](pool *sched.Pool, x, b *grid.G[T], h2, omega T) {
	n := x.N()
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			for j := 1 + (i+1)%2; j < n-1; j += 2 {
				gs := (up[j] + down[j] + xr[j-1] + xr[j+1] + h2*br[j]) * 0.25
				xr[j] += omega * (gs - xr[j])
			}
		}
	})
}

// redHalfSweepEmit is the color-0 half-sweep, emitting each red point's
// MID-sweep residual into r as it relaxes: at the moment a red point is
// relaxed all its (black) neighbours hold the values its Gauss-Seidel
// average read, so the update delta gives the residual of that
// intermediate state exactly — r' = 4·(1−ω)·(gs − x_old)/h². The black
// half-sweep then moves the neighbours, and the fused restriction
// reconstructs the final red residual by gathering the neighbours' stored
// deltas (gatherFixup).
func redHalfSweepEmit[T grid.Float](pool *sched.Pool, x, b, r *grid.G[T], h2, omega, rFac T) {
	n := x.N()
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			rr := r.Row(i)
			for j := 1 + (i+1)%2; j < n-1; j += 2 {
				gs := (up[j] + down[j] + xr[j-1] + xr[j+1] + h2*br[j]) * 0.25
				d := gs - xr[j]
				xr[j] += omega * d
				rr[j] = rFac * d
			}
		}
	})
}

// blackHalfSweepEmit is the color-1 half-sweep, emitting each black point's
// post-sweep residual into r as it relaxes: every neighbour of a black
// point is final, so r = 4·(1−ω)·(gs − x_old)/h² exactly.
func blackHalfSweepEmit[T grid.Float](pool *sched.Pool, x, b, r *grid.G[T], h2, omega, rFac T) {
	n := x.N()
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			rr := r.Row(i)
			for j := 1 + i%2; j < n-1; j += 2 {
				gs := (up[j] + down[j] + xr[j-1] + xr[j+1] + h2*br[j]) * 0.25
				d := gs - xr[j]
				xr[j] += omega * d
				rr[j] = rFac * d
			}
		}
	})
}

// redFixup evaluates the post-sweep residual at red points directly from
// the final iterate — the same expression (and therefore the same bits) as
// the unfused Residual kernel.
func redFixup[T grid.Float](pool *sched.Pool, x, b, r *grid.G[T], inv T) {
	n := x.N()
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			rr := r.Row(i)
			for j := 1 + (i+1)%2; j < n-1; j += 2 {
				rr[j] = br[j] - (4*xr[j]-up[j]-down[j]-xr[j-1]-xr[j+1])*inv
			}
		}
	})
}

// gatherFixup completes a residual grid emitted by the two half-sweeps in
// place, reading ONLY r: black entries are already final residuals, and
// each red entry holds its mid-sweep residual, which the black neighbours'
// subsequent moves shifted by κ-weighted sums of their stored residuals —
// r_red += ky·(up+down) + kx·(west+east), where k• = ω·c•/(C·(1−ω)) folds
// the face weight and the delta encoding together. One half-traversal of a
// single grid replaces the full (x, b)-reading residual evaluation at red
// points; x and b are never touched.
func gatherFixup[T grid.Float](pool *sched.Pool, r *grid.G[T], kx, ky T) {
	n := r.N()
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rr := r.Row(i)
			up := r.Row(i - 1)
			down := r.Row(i + 1)
			for j := 1 + (i+1)%2; j < n-1; j += 2 {
				rr[j] += ky*(up[j]+down[j]) + kx*(rr[j-1]+rr[j+1])
			}
		}
	})
}

// SmoothResidual performs one full red-black SOR sweep in place on x and
// leaves r = b − T·x (post-sweep) with a zeroed boundary, in one fused
// traversal less than SORSweepRB followed by Residual. x is bit-identical
// to the unfused sweep; r matches the unfused residual bit-identically at
// red (i+j even) points and to rounding error at black points, where it is
// derived from the update delta instead of re-evaluated. r must not alias
// x or b.
func SmoothResidual[T grid.Float](pool *sched.Pool, x, b, r *grid.G[T], h, omega T) {
	h2 := h * h
	inv := 1 / h2
	r.ZeroBoundary()
	redHalfSweep(pool, x, b, h2, omega)
	blackHalfSweepEmit(pool, x, b, r, h2, omega, 4*(1-omega)*inv)
	redFixup(pool, x, b, r, inv)
}

// smoothResidualRestrict is the composed V-cycle downstroke for the
// Laplacian: sweep, residual, restriction. Away from ω = 1 both
// half-sweeps emit their update deltas into r and gatherFixup completes it
// reading r alone; near ω = 1 the deltas degenerate and the SmoothResidual
// path (direct red evaluation) is used instead. Either way r ends up
// holding the full post-sweep residual and the oracle Restrict consumes
// it — so the three logical passes cost one (x, b) traversal plus a half
// r-traversal more than the sweep alone.
func smoothResidualRestrict[T grid.Float](pool *sched.Pool, coarse, x, b, r *grid.G[T], h, omega T) {
	h2 := h * h
	inv := 1 / h2
	rFac := 4 * (1 - omega) * inv
	if om := 1 - omega; om >= gatherMinOneMinusOmega || om <= -gatherMinOneMinusOmega {
		r.ZeroBoundary()
		redHalfSweepEmit(pool, x, b, r, h2, omega, rFac)
		blackHalfSweepEmit(pool, x, b, r, h2, omega, rFac)
		k := omega / (4 * (1 - omega))
		gatherFixup(pool, r, k, k)
	} else {
		SmoothResidual(pool, x, b, r, h, omega)
	}
	transfer.Restrict(pool, coarse, r)
}

// SweepWithNorm performs one full red-black SOR sweep in place on x and
// returns ‖b − T·x‖₂ over interior points after the sweep, without a
// separate residual traversal. The reduction is deterministic for any pool.
func SweepWithNorm[T grid.Float](pool *sched.Pool, x, b *grid.G[T], h, omega T) float64 {
	h2 := h * h
	inv := 1 / h2
	redHalfSweep(pool, x, b, h2, omega)
	return finishSweepNorm(pool, x, b, h2, inv, omega, 4*(1-omega)*inv)
}

// finishSweepNorm completes a sweep whose red half is already done: the
// black half-sweep emitting its delta-derived residual into the norm
// accumulator, then a red norm half-pass over the final iterate. Shared by
// SweepWithNorm and the fused upstroke's FinishSmoothWithNorm so both
// produce the same bits.
func finishSweepNorm[T grid.Float](pool *sched.Pool, x, b *grid.G[T], h2, inv, omega, rFac T) float64 {
	n := x.N()
	sums := make([]float64, n) //mglint:allow hotalloc — per-call norm partials, one float64 per row; fixed-chunk deterministic reduction
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			var s float64
			for j := 1 + i%2; j < n-1; j += 2 {
				gs := (up[j] + down[j] + xr[j-1] + xr[j+1] + h2*br[j]) * 0.25
				d := gs - xr[j]
				xr[j] += omega * d
				rb := float64(rFac * d)
				s += rb * rb
			}
			sums[i] = s
		}
	})
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			s := sums[i]
			for j := 1 + (i+1)%2; j < n-1; j += 2 {
				rv := float64(br[j] - (4*xr[j]-up[j]-down[j]-xr[j-1]-xr[j+1])*inv)
				s += rv * rv
			}
			sums[i] = s
		}
	})
	return sumRows(sums, n)
}

// residualNormPar is the pool-parallel, deterministically chunked
// counterpart of ResidualNorm for the constant-coefficient Laplacian.
func residualNormPar[T grid.Float](pool *sched.Pool, x, b *grid.G[T], h T) float64 {
	n := x.N()
	inv := 1 / (h * h)
	sums := make([]float64, n) //mglint:allow hotalloc — per-call norm partials, one float64 per row; fixed-chunk deterministic reduction
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			var s float64
			for j := 1; j < n-1; j++ {
				r := float64(br[j] - (4*xr[j]-up[j]-down[j]-xr[j-1]-xr[j+1])*inv)
				s += r * r
			}
			sums[i] = s
		}
	})
	return sumRows(sums, n)
}

// residualRowPoisson returns a provider computing interior fine residual
// rows of the Laplacian for transfer.RestrictResidual. The per-point
// expression is the unfused Residual kernel's.
func residualRowPoisson[T grid.Float](x, b *grid.G[T], inv T) func(fi int, dst []T) {
	n := x.N()
	return func(fi int, dst []T) { //mglint:allow hotalloc — kernel factory: one row-provider closure per fused cycle, not per point
		xr := x.Row(fi)
		up := x.Row(fi - 1)
		down := x.Row(fi + 1)
		br := b.Row(fi)
		dst[0], dst[n-1] = 0, 0
		for j := 1; j < n-1; j++ {
			dst[j] = br[j] - (4*xr[j]-up[j]-down[j]-xr[j-1]-xr[j+1])*inv
		}
	}
}

// --- constant-coefficient stencil (horizontal weight cx, vertical cy) ---

func redHalfSweepConst[T grid.Float](pool *sched.Pool, x, b *grid.G[T], h2, omega, cx, cy, invC T) {
	n := x.N()
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			for j := 1 + (i+1)%2; j < n-1; j += 2 {
				gs := (cy*(up[j]+down[j]) + cx*(xr[j-1]+xr[j+1]) + h2*br[j]) * invC
				xr[j] += omega * (gs - xr[j])
			}
		}
	})
}

// redHalfSweepEmitConst emits each red point's mid-sweep residual from the
// update delta (see redHalfSweepEmit).
func redHalfSweepEmitConst[T grid.Float](pool *sched.Pool, x, b, r *grid.G[T], h2, omega, cx, cy, invC, rFac T) {
	n := x.N()
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			rr := r.Row(i)
			for j := 1 + (i+1)%2; j < n-1; j += 2 {
				gs := (cy*(up[j]+down[j]) + cx*(xr[j-1]+xr[j+1]) + h2*br[j]) * invC
				d := gs - xr[j]
				xr[j] += omega * d
				rr[j] = rFac * d
			}
		}
	})
}

func blackHalfSweepEmitConst[T grid.Float](pool *sched.Pool, x, b, r *grid.G[T], h2, omega, cx, cy, invC, rFac T) {
	n := x.N()
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			rr := r.Row(i)
			for j := 1 + i%2; j < n-1; j += 2 {
				gs := (cy*(up[j]+down[j]) + cx*(xr[j-1]+xr[j+1]) + h2*br[j]) * invC
				d := gs - xr[j]
				xr[j] += omega * d
				rr[j] = rFac * d
			}
		}
	})
}

func redFixupConst[T grid.Float](pool *sched.Pool, x, b, r *grid.G[T], inv, cx, cy, center T) {
	n := x.N()
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			rr := r.Row(i)
			for j := 1 + (i+1)%2; j < n-1; j += 2 {
				rr[j] = br[j] - (center*xr[j]-cy*(up[j]+down[j])-cx*(xr[j-1]+xr[j+1]))*inv
			}
		}
	})
}

// smoothResidualConst is SmoothResidual for a constant-coefficient stencil.
func smoothResidualConst[T grid.Float](pool *sched.Pool, x, b, r *grid.G[T], h, omega, cx, cy T) {
	h2 := h * h
	inv := 1 / h2
	center := 2 * (cx + cy)
	invC := 1 / center
	r.ZeroBoundary()
	redHalfSweepConst(pool, x, b, h2, omega, cx, cy, invC)
	blackHalfSweepEmitConst(pool, x, b, r, h2, omega, cx, cy, invC, center*(1-omega)*inv)
	redFixupConst(pool, x, b, r, inv, cx, cy, center)
}

// smoothResidualRestrictConst is the composed downstroke for a
// constant-coefficient stencil (see smoothResidualRestrict): the gather
// weights fold the face coefficients, k• = ω·c•/(C·(1−ω)).
func smoothResidualRestrictConst[T grid.Float](pool *sched.Pool, coarse, x, b, r *grid.G[T], h, omega, cx, cy T) {
	h2 := h * h
	inv := 1 / h2
	center := 2 * (cx + cy)
	invC := 1 / center
	rFac := center * (1 - omega) * inv
	if om := 1 - omega; om >= gatherMinOneMinusOmega || om <= -gatherMinOneMinusOmega {
		r.ZeroBoundary()
		redHalfSweepEmitConst(pool, x, b, r, h2, omega, cx, cy, invC, rFac)
		blackHalfSweepEmitConst(pool, x, b, r, h2, omega, cx, cy, invC, rFac)
		k := omega / (center * (1 - omega))
		gatherFixup(pool, r, k*cx, k*cy)
	} else {
		smoothResidualConst(pool, x, b, r, h, omega, cx, cy)
	}
	transfer.Restrict(pool, coarse, r)
}

// sweepWithNormConst is SweepWithNorm for a constant-coefficient stencil.
func sweepWithNormConst[T grid.Float](pool *sched.Pool, x, b *grid.G[T], h, omega, cx, cy T) float64 {
	h2 := h * h
	redHalfSweepConst(pool, x, b, h2, omega, cx, cy, 1/(2*(cx+cy)))
	return finishSweepNormConst(pool, x, b, h2, 1/h2, omega, cx, cy)
}

// finishSweepNormConst is finishSweepNorm for a constant-coefficient stencil.
func finishSweepNormConst[T grid.Float](pool *sched.Pool, x, b *grid.G[T], h2, inv, omega, cx, cy T) float64 {
	n := x.N()
	center := 2 * (cx + cy)
	invC := 1 / center
	rFac := center * (1 - omega) * inv
	sums := make([]float64, n) //mglint:allow hotalloc — per-call norm partials; fixed-chunk deterministic reduction
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			var s float64
			for j := 1 + i%2; j < n-1; j += 2 {
				gs := (cy*(up[j]+down[j]) + cx*(xr[j-1]+xr[j+1]) + h2*br[j]) * invC
				d := gs - xr[j]
				xr[j] += omega * d
				rb := float64(rFac * d)
				s += rb * rb
			}
			sums[i] = s
		}
	})
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			s := sums[i]
			for j := 1 + (i+1)%2; j < n-1; j += 2 {
				rv := float64(br[j] - (center*xr[j]-cy*(up[j]+down[j])-cx*(xr[j-1]+xr[j+1]))*inv)
				s += rv * rv
			}
			sums[i] = s
		}
	})
	return sumRows(sums, n)
}

// residualNormParConst is the parallel deterministic residual norm for a
// constant-coefficient stencil.
func residualNormParConst[T grid.Float](pool *sched.Pool, x, b *grid.G[T], h, cx, cy T) float64 {
	n := x.N()
	inv := 1 / (h * h)
	center := 2 * (cx + cy)
	sums := make([]float64, n) //mglint:allow hotalloc — per-call norm partials; fixed-chunk deterministic reduction
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			var s float64
			for j := 1; j < n-1; j++ {
				r := float64(br[j] - (center*xr[j]-cy*(up[j]+down[j])-cx*(xr[j-1]+xr[j+1]))*inv)
				s += r * r
			}
			sums[i] = s
		}
	})
	return sumRows(sums, n)
}

// residualRowConst is the residual row provider for a constant-coefficient
// stencil.
func residualRowConst[T grid.Float](x, b *grid.G[T], inv, cx, cy T) func(fi int, dst []T) {
	n := x.N()
	center := 2 * (cx + cy)
	return func(fi int, dst []T) { //mglint:allow hotalloc — kernel factory: one row-provider closure per fused cycle, not per point
		xr := x.Row(fi)
		up := x.Row(fi - 1)
		down := x.Row(fi + 1)
		br := b.Row(fi)
		dst[0], dst[n-1] = 0, 0
		for j := 1; j < n-1; j++ {
			dst[j] = br[j] - (center*xr[j]-cy*(up[j]+down[j])-cx*(xr[j-1]+xr[j+1]))*inv
		}
	}
}

// --- variable-coefficient stencil (nodal field c) ---

func redHalfSweepVar[T grid.Float](pool *sched.Pool, x, b *grid.G[T], h2, omega T, c *grid.G[T]) {
	n := x.N()
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			cr := c.Row(i)
			cu := c.Row(i - 1)
			cd := c.Row(i + 1)
			for j := 1 + (i+1)%2; j < n-1; j += 2 {
				cc := cr[j]
				cn := 0.5 * (cc + cu[j])
				cs := 0.5 * (cc + cd[j])
				cw := 0.5 * (cc + cr[j-1])
				ce := 0.5 * (cc + cr[j+1])
				gs := (cn*up[j] + cs*down[j] + cw*xr[j-1] + ce*xr[j+1] + h2*br[j]) / (cn + cs + cw + ce)
				xr[j] += omega * (gs - xr[j])
			}
		}
	})
}

func blackHalfSweepEmitVar[T grid.Float](pool *sched.Pool, x, b, r *grid.G[T], h2, omega, inv T, c *grid.G[T]) {
	n := x.N()
	oneMinus := 1 - omega
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			cr := c.Row(i)
			cu := c.Row(i - 1)
			cd := c.Row(i + 1)
			rr := r.Row(i)
			for j := 1 + i%2; j < n-1; j += 2 {
				cc := cr[j]
				cn := 0.5 * (cc + cu[j])
				cs := 0.5 * (cc + cd[j])
				cw := 0.5 * (cc + cr[j-1])
				ce := 0.5 * (cc + cr[j+1])
				center := cn + cs + cw + ce
				gs := (cn*up[j] + cs*down[j] + cw*xr[j-1] + ce*xr[j+1] + h2*br[j]) / center
				d := gs - xr[j]
				xr[j] += omega * d
				rr[j] = center * oneMinus * d * inv
			}
		}
	})
}

func redFixupVar[T grid.Float](pool *sched.Pool, x, b, r *grid.G[T], inv T, c *grid.G[T]) {
	n := x.N()
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			cr := c.Row(i)
			cu := c.Row(i - 1)
			cd := c.Row(i + 1)
			rr := r.Row(i)
			for j := 1 + (i+1)%2; j < n-1; j += 2 {
				cc := cr[j]
				cn := 0.5 * (cc + cu[j])
				cs := 0.5 * (cc + cd[j])
				cw := 0.5 * (cc + cr[j-1])
				ce := 0.5 * (cc + cr[j+1])
				rr[j] = br[j] - ((cn+cs+cw+ce)*xr[j]-cn*up[j]-cs*down[j]-cw*xr[j-1]-ce*xr[j+1])*inv
			}
		}
	})
}

// smoothResidualVar is SmoothResidual for a variable-coefficient stencil.
func smoothResidualVar[T grid.Float](pool *sched.Pool, x, b, r *grid.G[T], h, omega T, c *grid.G[T]) {
	h2 := h * h
	inv := 1 / h2
	r.ZeroBoundary()
	redHalfSweepVar(pool, x, b, h2, omega, c)
	blackHalfSweepEmitVar(pool, x, b, r, h2, omega, inv, c)
	redFixupVar(pool, x, b, r, inv, c)
}

// smoothResidualRestrictVar is the composed downstroke for a
// variable-coefficient stencil. The delta-gather reconstruction does not
// pay here — undoing a neighbour's delta encoding needs the neighbour's
// center coefficient, which costs the same face-average arithmetic as
// evaluating the red residual directly — so the downstroke is the fused
// SmoothResidual (black residuals still come free from the sweep) followed
// by the oracle restriction.
func smoothResidualRestrictVar[T grid.Float](pool *sched.Pool, coarse, x, b, r *grid.G[T], h, omega T, c *grid.G[T]) {
	smoothResidualVar(pool, x, b, r, h, omega, c)
	transfer.Restrict(pool, coarse, r)
}

// sweepWithNormVar is SweepWithNorm for a variable-coefficient stencil.
func sweepWithNormVar[T grid.Float](pool *sched.Pool, x, b *grid.G[T], h, omega T, c *grid.G[T]) float64 {
	h2 := h * h
	redHalfSweepVar(pool, x, b, h2, omega, c)
	return finishSweepNormVar(pool, x, b, h2, 1/h2, omega, c)
}

// finishSweepNormVar is finishSweepNorm for a variable-coefficient stencil.
func finishSweepNormVar[T grid.Float](pool *sched.Pool, x, b *grid.G[T], h2, inv, omega T, c *grid.G[T]) float64 {
	n := x.N()
	oneMinus := 1 - omega
	sums := make([]float64, n) //mglint:allow hotalloc — per-call norm partials; fixed-chunk deterministic reduction
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			cr := c.Row(i)
			cu := c.Row(i - 1)
			cd := c.Row(i + 1)
			var s float64
			for j := 1 + i%2; j < n-1; j += 2 {
				cc := cr[j]
				cn := 0.5 * (cc + cu[j])
				cs := 0.5 * (cc + cd[j])
				cw := 0.5 * (cc + cr[j-1])
				ce := 0.5 * (cc + cr[j+1])
				center := cn + cs + cw + ce
				gs := (cn*up[j] + cs*down[j] + cw*xr[j-1] + ce*xr[j+1] + h2*br[j]) / center
				d := gs - xr[j]
				xr[j] += omega * d
				rb := float64(center * oneMinus * d * inv)
				s += rb * rb
			}
			sums[i] = s
		}
	})
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			cr := c.Row(i)
			cu := c.Row(i - 1)
			cd := c.Row(i + 1)
			s := sums[i]
			for j := 1 + (i+1)%2; j < n-1; j += 2 {
				cc := cr[j]
				cn := 0.5 * (cc + cu[j])
				cs := 0.5 * (cc + cd[j])
				cw := 0.5 * (cc + cr[j-1])
				ce := 0.5 * (cc + cr[j+1])
				rv := float64(br[j] - ((cn+cs+cw+ce)*xr[j]-cn*up[j]-cs*down[j]-cw*xr[j-1]-ce*xr[j+1])*inv)
				s += rv * rv
			}
			sums[i] = s
		}
	})
	return sumRows(sums, n)
}

// residualNormParVar is the parallel deterministic residual norm for a
// variable-coefficient stencil.
func residualNormParVar[T grid.Float](pool *sched.Pool, x, b *grid.G[T], h T, c *grid.G[T]) float64 {
	n := x.N()
	inv := 1 / (h * h)
	sums := make([]float64, n) //mglint:allow hotalloc — per-call norm partials; fixed-chunk deterministic reduction
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			cr := c.Row(i)
			cu := c.Row(i - 1)
			cd := c.Row(i + 1)
			var s float64
			for j := 1; j < n-1; j++ {
				cc := cr[j]
				cn := 0.5 * (cc + cu[j])
				cs := 0.5 * (cc + cd[j])
				cw := 0.5 * (cc + cr[j-1])
				ce := 0.5 * (cc + cr[j+1])
				r := float64(br[j] - ((cn+cs+cw+ce)*xr[j]-cn*up[j]-cs*down[j]-cw*xr[j-1]-ce*xr[j+1])*inv)
				s += r * r
			}
			sums[i] = s
		}
	})
	return sumRows(sums, n)
}

// residualRowVar is the residual row provider for a variable-coefficient
// stencil.
func residualRowVar[T grid.Float](x, b *grid.G[T], inv T, c *grid.G[T]) func(fi int, dst []T) {
	n := x.N()
	return func(fi int, dst []T) { //mglint:allow hotalloc — kernel factory: one row-provider closure per fused cycle, not per point
		xr := x.Row(fi)
		up := x.Row(fi - 1)
		down := x.Row(fi + 1)
		br := b.Row(fi)
		cr := c.Row(fi)
		cu := c.Row(fi - 1)
		cd := c.Row(fi + 1)
		dst[0], dst[n-1] = 0, 0
		for j := 1; j < n-1; j++ {
			cc := cr[j]
			cn := 0.5 * (cc + cu[j])
			cs := 0.5 * (cc + cd[j])
			cw := 0.5 * (cc + cr[j-1])
			ce := 0.5 * (cc + cr[j+1])
			dst[j] = br[j] - ((cn+cs+cw+ce)*xr[j]-cn*up[j]-cs*down[j]-cw*xr[j-1]-ce*xr[j+1])*inv
		}
	}
}
