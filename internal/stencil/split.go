// Unit-stride color-split SOR sweeps. The interleaved red-black loops in
// stencil.go step j += 2, so each half-sweep touches every cache line of the
// grid while using half of it and presents the compiler with strided loads
// it cannot vectorize. For multi-sweep SOR solves at large sizes this file
// instead packs x and b into the color-split layout (grid.Split: each
// color's points contiguous, see internal/grid/split.go), runs every
// half-sweep as a unit-stride stream over half-width rows, and unpacks the
// iterate at the solve boundary. The update expressions are evaluated in the
// same order on the same values as the strided kernels, and within a color
// all updates are independent, so pack → sweeps → unpack is bit-identical to
// the same number of strided SORSweepRB calls.
//
// Serial sweeps additionally interleave the two half-sweeps as a row (plane)
// wavefront — red(1); red(i), black(i−1); …; black(n−2) — a temporal
// blocking that keeps each row resident in cache between its red visit and
// its black visit, turning the sweep's two full-grid passes into one. The
// interleave is exact: a black row is relaxed only after the red rows it
// reads (i−1, i, i+1 in 2D; the corresponding planes in 3D) are final.
// Parallel sweeps keep the two barrier-separated half-sweeps, matching the
// strided kernels' chunk-independence contract.
//
// The pack/unpack round trip costs roughly 1.5 sweeps of extra memory
// traffic, so the split path only pays for multi-sweep solves on grids past
// cache scale — SplitWorthwhile gates it, and the arch cost model prices
// EvIterSolve with the same gate so tuned tables see the path the runtime
// actually takes.
package stencil

import (
	"sync"

	"pbmg/internal/faultinject"
	"pbmg/internal/grid"
	"pbmg/internal/sched"
)

// splitScratch recycles Split buffers by shape. A fresh Split per solve
// costs two full-grid allocations whose zeroing alone is ~2 sweeps of
// traffic; recycling makes the split path's overhead just the pack/unpack
// copies. Stale entries in a recycled Split are harmless: Pack overwrites
// every slot the sweeps and Unpack read.
var splitScratch sync.Map // [3]int{dim, n, bits} -> *sync.Pool of *grid.SplitG[T]

// floatBits reports the storage width of T (32 or 64), the precision tag in
// scratch-pool keys.
func floatBits[T grid.Float]() int {
	var z T
	if _, is32 := any(z).(float32); is32 {
		return 32
	}
	return 64
}

func getSplit[T grid.Float](dim, n int) *grid.SplitG[T] {
	key := [3]int{dim, n, floatBits[T]()}
	p, ok := splitScratch.Load(key)
	if !ok {
		p, _ = splitScratch.LoadOrStore(key, &sync.Pool{New: func() any {
			return grid.NewSplitOf[T](dim, n)
		}})
	}
	return p.(*sync.Pool).Get().(*grid.SplitG[T])
}

func putSplit[T grid.Float](s *grid.SplitG[T]) {
	key := [3]int{s.Dim(), s.N(), floatBits[T]()}
	if p, ok := splitScratch.Load(key); ok {
		p.(*sync.Pool).Put(s)
	}
}

const (
	// splitMinSweeps is the minimum sweep count for the split layout: the
	// pack/unpack traffic (~1.5 sweeps' worth) amortizes to <20% overhead at
	// 8 sweeps, below the layout's measured per-sweep win.
	splitMinSweeps = 8
	// splitMinN2/splitMinN3 are the smallest grid sides where the split
	// layout beats the strided sweeps (smaller grids live in cache, where
	// the strided loads are cheap and pack/unpack is pure overhead).
	splitMinN2 = 257
	splitMinN3 = 65
	// splitMaxN2 bounds the 2D window from above: past L3 scale a strided
	// 2D half-sweep is two long sequential streams the prefetcher handles
	// perfectly, while the split wavefront juggles several shorter ones and
	// still pays pack/unpack — measured, strided wins again from N=1025 up
	// (N=513 is parity). 3D has no upper bound: its strided half-sweeps
	// stride through sub-cache-line pencil segments at any size, so the
	// unit-stride win keeps growing with N.
	splitMaxN2 = 512
)

// SplitWorthwhile reports whether a sweeps-long SOR solve on a
// dim-dimensional grid of side n should use the color-split layout. The
// arch cost model mirrors this gate when pricing iterative solves.
func SplitWorthwhile(dim, n, sweeps int) bool {
	if sweeps < splitMinSweeps {
		return false
	}
	if dim == 3 {
		return n >= splitMinN3
	}
	return n >= splitMinN2 && n <= splitMaxN2
}

// SORSweeps runs sweeps red-black SOR sweeps in place on x, choosing the
// color-split unit-stride path when SplitWorthwhile says it wins and the
// strided SORSweepRB loop otherwise. The iterate is bit-identical either
// way.
func (op *Operator) SORSweeps(pool *sched.Pool, x, b *grid.Grid, h, omega float64, sweeps int) {
	OpSORSweeps(op, pool, x, b, h, omega, sweeps)
}

// OpSORSweeps is the precision-generic edition of Operator.SORSweeps.
func OpSORSweeps[T grid.Float](op *Operator, pool *sched.Pool, x, b *grid.G[T], h, omega T, sweeps int) {
	if faultinject.Enabled {
		faultinject.Point("stencil.sweep") // slow-kernel injection: one hit per sweeps-call
	}
	if !SplitWorthwhile(x.Dim(), x.N(), sweeps) {
		for s := 0; s < sweeps; s++ {
			OpSORSweepRB(op, pool, x, b, h, omega)
		}
		return
	}
	sorSweepsSplit(op, pool, x, b, h, omega, sweeps)
}

// sorSweepsSplit is the color-split path: pack x and b, sweep unit-stride,
// unpack x. The sweeps never write boundary entries, so the unpack restores
// x's boundary bit-identically from the pack.
func sorSweepsSplit[T grid.Float](op *Operator, pool *sched.Pool, x, b *grid.G[T], h, omega T, sweeps int) {
	n, dim := x.N(), x.Dim()
	sx := getSplit[T](dim, n)
	sb := getSplit[T](dim, n)
	defer putSplit(sx)
	defer putSplit(sb)
	sx.Pack(x)
	sb.Pack(b)
	h2 := h * h
	switch op.family {
	case FamilyPoisson:
		splitSweepsPoisson(pool, sx, sb, h2, omega, sweeps)
	case FamilyPoisson3D:
		splitSweeps3(pool, sx, sb, h2, omega, sweeps)
	case FamilyAnisotropic:
		splitSweepsConst(pool, sx, sb, h2, omega, T(op.eps), 1, sweeps)
	default:
		op.checkSize(n)
		splitSweepsVar(pool, sx, sb, h2, omega, opSplitCoef[T](op), sweeps)
	}
	sx.Unpack(x)
}

// splitCoefField packs the variable-coefficient field into the split layout
// once per operator.
func (op *Operator) splitCoefField() *grid.Split {
	op.splitCoefOnce.Do(func() {
		s := grid.NewSplit(2, op.coef.N())
		s.Pack(op.coef)
		op.splitCoef = s
	})
	return op.splitCoef
}

// splitCoefField32 is splitCoefField at float32, packed from the memoized
// float32 coefficient grid.
func (op *Operator) splitCoefField32() *grid.Split32 {
	op.splitCoef32Once.Do(func() {
		c := op.Coef32()
		s := grid.NewSplitOf[float32](2, c.N())
		s.Pack(c)
		op.splitCoef32 = s
	})
	return op.splitCoef32
}

// opSplitCoef resolves the operator's split-packed coefficient field at the
// requested precision.
func opSplitCoef[T grid.Float](op *Operator) *grid.SplitG[T] {
	if floatBits[T]() == 32 {
		return any(op.splitCoefField32()).(*grid.SplitG[T])
	}
	return any(op.splitCoefField()).(*grid.SplitG[T])
}

// sweepSplit2 drives sweeps full sweeps from per-row red and black update
// closures. Serial execution interleaves the halves as a row wavefront;
// parallel execution runs two barrier-separated half-sweeps.
func sweepSplit2(pool *sched.Pool, n, sweeps int, red, black func(i int)) {
	if pool == nil {
		for s := 0; s < sweeps; s++ {
			red(1)
			for i := 2; i < n-1; i++ {
				red(i)
				black(i - 1)
			}
			black(n - 2)
		}
		return
	}
	for s := 0; s < sweeps; s++ {
		pool.ParallelForPoints(1, n-1, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				red(i)
			}
		})
		pool.ParallelForPoints(1, n-1, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				black(i)
			}
		})
	}
}

// sweepSplit3 is sweepSplit2 over planes.
func sweepSplit3(pool *sched.Pool, n, sweeps int, red, black func(i int)) {
	if pool == nil {
		for s := 0; s < sweeps; s++ {
			red(1)
			for i := 2; i < n-1; i++ {
				red(i)
				black(i - 1)
			}
			black(n - 2)
		}
		return
	}
	for s := 0; s < sweeps; s++ {
		pool.ParallelForPoints(1, n-1, n*n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				red(i)
			}
		})
		pool.ParallelForPoints(1, n-1, n*n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				black(i)
			}
		})
	}
}

// splitSweepsPoisson runs unit-stride red-black sweeps for the Laplacian.
// With s the column parity of row i's first red point, red half-index jr
// maps to column j = 2·jr+s, its in-row black neighbours live at jr−1+s and
// jr+s, and its vertical neighbours (black, in rows of opposite parity) at
// the same half-index jr — so every load in the inner loop is unit-stride.
func splitSweepsPoisson[T grid.Float](pool *sched.Pool, x, b *grid.SplitG[T], h2, omega T, sweeps int) {
	n, w := x.N(), x.W()
	red := func(i int) {
		xr := x.Red(i)
		rowB := x.Black(i)
		upB := x.Black(i - 1)
		downB := x.Black(i + 1)
		bR := b.Red(i)
		// Specializing on the row's red-column parity keeps every index an
		// affine offset of the loop variable, so the compiler drops the
		// bounds checks from the streams.
		if i&1 == 0 {
			for jr := 1; jr < w-1; jr++ {
				gs := (upB[jr] + downB[jr] + rowB[jr-1] + rowB[jr] + h2*bR[jr]) * 0.25
				xr[jr] += omega * (gs - xr[jr])
			}
		} else {
			for jr := 0; jr < w-1; jr++ {
				gs := (upB[jr] + downB[jr] + rowB[jr] + rowB[jr+1] + h2*bR[jr]) * 0.25
				xr[jr] += omega * (gs - xr[jr])
			}
		}
	}
	black := func(i int) {
		xb := x.Black(i)
		rowR := x.Red(i)
		upR := x.Red(i - 1)
		downR := x.Red(i + 1)
		bB := b.Black(i)
		if i&1 == 0 {
			for jb := 0; jb < w-1; jb++ {
				gs := (upR[jb] + downR[jb] + rowR[jb] + rowR[jb+1] + h2*bB[jb]) * 0.25
				xb[jb] += omega * (gs - xb[jb])
			}
		} else {
			for jb := 1; jb < w-1; jb++ {
				gs := (upR[jb] + downR[jb] + rowR[jb-1] + rowR[jb] + h2*bB[jb]) * 0.25
				xb[jb] += omega * (gs - xb[jb])
			}
		}
	}
	sweepSplit2(pool, n, sweeps, red, black)
}

// splitSweepsConst runs unit-stride sweeps for a constant-coefficient
// stencil (horizontal weight cx, vertical cy).
func splitSweepsConst[T grid.Float](pool *sched.Pool, x, b *grid.SplitG[T], h2, omega, cx, cy T, sweeps int) {
	n, w := x.N(), x.W()
	invC := 1 / (2 * (cx + cy))
	red := func(i int) {
		xr := x.Red(i)
		rowB := x.Black(i)
		upB := x.Black(i - 1)
		downB := x.Black(i + 1)
		bR := b.Red(i)
		if i&1 == 0 {
			for jr := 1; jr < w-1; jr++ {
				gs := (cy*(upB[jr]+downB[jr]) + cx*(rowB[jr-1]+rowB[jr]) + h2*bR[jr]) * invC
				xr[jr] += omega * (gs - xr[jr])
			}
		} else {
			for jr := 0; jr < w-1; jr++ {
				gs := (cy*(upB[jr]+downB[jr]) + cx*(rowB[jr]+rowB[jr+1]) + h2*bR[jr]) * invC
				xr[jr] += omega * (gs - xr[jr])
			}
		}
	}
	black := func(i int) {
		xb := x.Black(i)
		rowR := x.Red(i)
		upR := x.Red(i - 1)
		downR := x.Red(i + 1)
		bB := b.Black(i)
		if i&1 == 0 {
			for jb := 0; jb < w-1; jb++ {
				gs := (cy*(upR[jb]+downR[jb]) + cx*(rowR[jb]+rowR[jb+1]) + h2*bB[jb]) * invC
				xb[jb] += omega * (gs - xb[jb])
			}
		} else {
			for jb := 1; jb < w-1; jb++ {
				gs := (cy*(upR[jb]+downR[jb]) + cx*(rowR[jb-1]+rowR[jb]) + h2*bB[jb]) * invC
				xb[jb] += omega * (gs - xb[jb])
			}
		}
	}
	sweepSplit2(pool, n, sweeps, red, black)
}

// splitSweepsVar runs unit-stride sweeps for a variable-coefficient stencil;
// c holds the nodal coefficient field in the same split layout, so the face
// averages read it with the identical half-index arithmetic as x.
func splitSweepsVar[T grid.Float](pool *sched.Pool, x, b *grid.SplitG[T], h2, omega T, c *grid.SplitG[T], sweeps int) {
	n, w := x.N(), x.W()
	red := func(i int) {
		xr := x.Red(i)
		rowB := x.Black(i)
		upB := x.Black(i - 1)
		downB := x.Black(i + 1)
		bR := b.Red(i)
		cR := c.Red(i)
		cB := c.Black(i)
		cuB := c.Black(i - 1)
		cdB := c.Black(i + 1)
		if i&1 == 0 {
			for jr := 1; jr < w-1; jr++ {
				cc := cR[jr]
				cn := 0.5 * (cc + cuB[jr])
				cs := 0.5 * (cc + cdB[jr])
				cw := 0.5 * (cc + cB[jr-1])
				ce := 0.5 * (cc + cB[jr])
				gs := (cn*upB[jr] + cs*downB[jr] + cw*rowB[jr-1] + ce*rowB[jr] + h2*bR[jr]) / (cn + cs + cw + ce)
				xr[jr] += omega * (gs - xr[jr])
			}
		} else {
			for jr := 0; jr < w-1; jr++ {
				cc := cR[jr]
				cn := 0.5 * (cc + cuB[jr])
				cs := 0.5 * (cc + cdB[jr])
				cw := 0.5 * (cc + cB[jr])
				ce := 0.5 * (cc + cB[jr+1])
				gs := (cn*upB[jr] + cs*downB[jr] + cw*rowB[jr] + ce*rowB[jr+1] + h2*bR[jr]) / (cn + cs + cw + ce)
				xr[jr] += omega * (gs - xr[jr])
			}
		}
	}
	black := func(i int) {
		xb := x.Black(i)
		rowR := x.Red(i)
		upR := x.Red(i - 1)
		downR := x.Red(i + 1)
		bB := b.Black(i)
		cB := c.Black(i)
		cR := c.Red(i)
		cuR := c.Red(i - 1)
		cdR := c.Red(i + 1)
		if i&1 == 0 {
			for jb := 0; jb < w-1; jb++ {
				cc := cB[jb]
				cn := 0.5 * (cc + cuR[jb])
				cs := 0.5 * (cc + cdR[jb])
				cw := 0.5 * (cc + cR[jb])
				ce := 0.5 * (cc + cR[jb+1])
				gs := (cn*upR[jb] + cs*downR[jb] + cw*rowR[jb] + ce*rowR[jb+1] + h2*bB[jb]) / (cn + cs + cw + ce)
				xb[jb] += omega * (gs - xb[jb])
			}
		} else {
			for jb := 1; jb < w-1; jb++ {
				cc := cB[jb]
				cn := 0.5 * (cc + cuR[jb])
				cs := 0.5 * (cc + cdR[jb])
				cw := 0.5 * (cc + cR[jb-1])
				ce := 0.5 * (cc + cR[jb])
				gs := (cn*upR[jb] + cs*downR[jb] + cw*rowR[jb-1] + ce*rowR[jb] + h2*bB[jb]) / (cn + cs + cw + ce)
				xb[jb] += omega * (gs - xb[jb])
			}
		}
	}
	sweepSplit2(pool, n, sweeps, red, black)
}

// splitSweeps3 runs unit-stride sweeps for the 3D 7-point Laplacian. Each
// (i,j) pencil splits by k-parity s = (i+j)&1; the four cross-pencil
// neighbours of a point are the opposite color at the same half-index.
func splitSweeps3[T grid.Float](pool *sched.Pool, x, b *grid.SplitG[T], h2, omega T, sweeps int) {
	n, w := x.N(), x.W()
	red := func(i int) {
		for j := 1; j < n-1; j++ {
			xr := x.Red3(i, j)
			rowB := x.Black3(i, j)
			upB := x.Black3(i-1, j)
			downB := x.Black3(i+1, j)
			northB := x.Black3(i, j-1)
			southB := x.Black3(i, j+1)
			bR := b.Red3(i, j)
			if (i+j)&1 == 0 {
				for kr := 1; kr < w-1; kr++ {
					gs := (upB[kr] + downB[kr] + northB[kr] + southB[kr] + rowB[kr-1] + rowB[kr] + h2*bR[kr]) * (1.0 / 6.0)
					xr[kr] += omega * (gs - xr[kr])
				}
			} else {
				for kr := 0; kr < w-1; kr++ {
					gs := (upB[kr] + downB[kr] + northB[kr] + southB[kr] + rowB[kr] + rowB[kr+1] + h2*bR[kr]) * (1.0 / 6.0)
					xr[kr] += omega * (gs - xr[kr])
				}
			}
		}
	}
	black := func(i int) {
		for j := 1; j < n-1; j++ {
			xb := x.Black3(i, j)
			rowR := x.Red3(i, j)
			upR := x.Red3(i-1, j)
			downR := x.Red3(i+1, j)
			northR := x.Red3(i, j-1)
			southR := x.Red3(i, j+1)
			bB := b.Black3(i, j)
			if (i+j)&1 == 0 {
				for kb := 0; kb < w-1; kb++ {
					gs := (upR[kb] + downR[kb] + northR[kb] + southR[kb] + rowR[kb] + rowR[kb+1] + h2*bB[kb]) * (1.0 / 6.0)
					xb[kb] += omega * (gs - xb[kb])
				}
			} else {
				for kb := 1; kb < w-1; kb++ {
					gs := (upR[kb] + downR[kb] + northR[kb] + southR[kb] + rowR[kb-1] + rowR[kb] + h2*bB[kb]) * (1.0 / 6.0)
					xb[kb] += omega * (gs - xb[kb])
				}
			}
		}
	}
	sweepSplit3(pool, n, sweeps, red, black)
}
