// Fused single-pass cycle kernels for the 3D 7-point stencil — the
// plane-parallel counterparts of fused.go. Black points of the red-black
// sweep get their post-sweep residual from the update delta
// (r = 6·(1−ω)·(gs − x_old)/h², exact), red points from a direct fixup
// half-pass (smoothResidual3) or from the delta-gather over r alone
// (smoothResidualRestrict3); norm reductions accumulate per interior plane
// and add planes in index order, so the result is bit-identical for any
// worker count and chunking.
package stencil

import (
	"pbmg/internal/grid"
	"pbmg/internal/sched"
	"pbmg/internal/transfer"
)

// redHalfSweep3 is sorSweepRB3's color-0 half-sweep.
func redHalfSweep3[T grid.Float](pool *sched.Pool, x, b *grid.G[T], h2, omega T) {
	n := x.N()
	parallelPlanes(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 1; j < n-1; j++ {
				xr := x.Row3(i, j)
				up := x.Row3(i-1, j)
				down := x.Row3(i+1, j)
				north := x.Row3(i, j-1)
				south := x.Row3(i, j+1)
				br := b.Row3(i, j)
				for k := 1 + (i+j+1)%2; k < n-1; k += 2 {
					gs := (up[k] + down[k] + north[k] + south[k] + xr[k-1] + xr[k+1] + h2*br[k]) * (1.0 / 6.0)
					xr[k] += omega * (gs - xr[k])
				}
			}
		}
	})
}

// redHalfSweepEmit3 is the color-0 half-sweep, emitting each red point's
// mid-sweep residual into r from the update delta (see the 2D
// redHalfSweepEmit for the derivation).
func redHalfSweepEmit3[T grid.Float](pool *sched.Pool, x, b, r *grid.G[T], h2, omega, rFac T) {
	n := x.N()
	parallelPlanes(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 1; j < n-1; j++ {
				xr := x.Row3(i, j)
				up := x.Row3(i-1, j)
				down := x.Row3(i+1, j)
				north := x.Row3(i, j-1)
				south := x.Row3(i, j+1)
				br := b.Row3(i, j)
				rr := r.Row3(i, j)
				for k := 1 + (i+j+1)%2; k < n-1; k += 2 {
					gs := (up[k] + down[k] + north[k] + south[k] + xr[k-1] + xr[k+1] + h2*br[k]) * (1.0 / 6.0)
					d := gs - xr[k]
					xr[k] += omega * d
					rr[k] = rFac * d
				}
			}
		}
	})
}

// blackHalfSweepEmit3 is the color-1 half-sweep, emitting each black
// point's post-sweep residual into r from the update delta.
func blackHalfSweepEmit3[T grid.Float](pool *sched.Pool, x, b, r *grid.G[T], h2, omega, rFac T) {
	n := x.N()
	parallelPlanes(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 1; j < n-1; j++ {
				xr := x.Row3(i, j)
				up := x.Row3(i-1, j)
				down := x.Row3(i+1, j)
				north := x.Row3(i, j-1)
				south := x.Row3(i, j+1)
				br := b.Row3(i, j)
				rr := r.Row3(i, j)
				for k := 1 + (i+j)%2; k < n-1; k += 2 {
					gs := (up[k] + down[k] + north[k] + south[k] + xr[k-1] + xr[k+1] + h2*br[k]) * (1.0 / 6.0)
					d := gs - xr[k]
					xr[k] += omega * d
					rr[k] = rFac * d
				}
			}
		}
	})
}

// redFixup3 evaluates the post-sweep residual at red points directly from
// the final iterate, matching residual3's expression bit for bit.
func redFixup3[T grid.Float](pool *sched.Pool, x, b, r *grid.G[T], inv T) {
	n := x.N()
	parallelPlanes(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 1; j < n-1; j++ {
				xr := x.Row3(i, j)
				up := x.Row3(i-1, j)
				down := x.Row3(i+1, j)
				north := x.Row3(i, j-1)
				south := x.Row3(i, j+1)
				br := b.Row3(i, j)
				rr := r.Row3(i, j)
				for k := 1 + (i+j+1)%2; k < n-1; k += 2 {
					rr[k] = br[k] - (6*xr[k]-up[k]-down[k]-north[k]-south[k]-xr[k-1]-xr[k+1])*inv
				}
			}
		}
	})
}

// smoothResidual3 performs one full red-black SOR sweep in place on x and
// leaves r = b − T·x (post-sweep) with a zeroed boundary. x is bit-identical
// to sorSweepRB3; r matches residual3 bit-identically at red (i+j+k even)
// points and to rounding error at black points.
func smoothResidual3[T grid.Float](pool *sched.Pool, x, b, r *grid.G[T], h, omega T) {
	h2 := h * h
	inv := 1 / h2
	r.ZeroBoundary()
	redHalfSweep3(pool, x, b, h2, omega)
	blackHalfSweepEmit3(pool, x, b, r, h2, omega, 6*(1-omega)*inv)
	redFixup3(pool, x, b, r, inv)
}

// gatherFixup3 completes a residual grid emitted by the two half-sweeps in
// place, reading only r: r_red += κ·Σ over the six black neighbours'
// stored residuals, κ = ω/(6·(1−ω)) (see the 2D gatherFixup).
func gatherFixup3[T grid.Float](pool *sched.Pool, r *grid.G[T], kappa T) {
	n := r.N()
	parallelPlanes(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 1; j < n-1; j++ {
				rr := r.Row3(i, j)
				up := r.Row3(i-1, j)
				down := r.Row3(i+1, j)
				north := r.Row3(i, j-1)
				south := r.Row3(i, j+1)
				for k := 1 + (i+j+1)%2; k < n-1; k += 2 {
					rr[k] += kappa * (up[k] + down[k] + north[k] + south[k] + rr[k-1] + rr[k+1])
				}
			}
		}
	})
}

// smoothResidualRestrict3 is the composed V-cycle downstroke for the 3D
// Laplacian: sweep, residual, 27-point restriction. Away from ω = 1 both
// half-sweeps emit their deltas into r and gatherFixup3 completes it
// reading r alone; near ω = 1 red residuals are evaluated directly from
// (x, b). Either way r ends up holding the full post-sweep residual, and
// the separable restriction (transfer.RestrictSep3) consumes it.
func smoothResidualRestrict3[T grid.Float](pool *sched.Pool, coarse, x, b, r *grid.G[T], h, omega T) {
	h2 := h * h
	inv := 1 / h2
	rFac := 6 * (1 - omega) * inv
	if om := 1 - omega; om >= gatherMinOneMinusOmega || om <= -gatherMinOneMinusOmega {
		r.ZeroBoundary()
		redHalfSweepEmit3(pool, x, b, r, h2, omega, rFac)
		blackHalfSweepEmit3(pool, x, b, r, h2, omega, rFac)
		gatherFixup3(pool, r, omega/(6*(1-omega)))
	} else {
		smoothResidual3(pool, x, b, r, h, omega)
	}
	transfer.RestrictSep3(pool, coarse, r)
}

// sweepWithNorm3 performs one full red-black SOR sweep in place on x and
// returns ‖b − T·x‖₂ over interior points after the sweep.
func sweepWithNorm3[T grid.Float](pool *sched.Pool, x, b *grid.G[T], h, omega T) float64 {
	h2 := h * h
	inv := 1 / h2
	redHalfSweep3(pool, x, b, h2, omega)
	return finishSweepNorm3(pool, x, b, h2, inv, omega, 6*(1-omega)*inv)
}

// finishSweepNorm3 completes a 3D sweep whose red half is already done:
// black half-sweep with delta-derived norm accumulation, then the red norm
// half-pass. Shared by sweepWithNorm3 and the fused upstroke.
func finishSweepNorm3[T grid.Float](pool *sched.Pool, x, b *grid.G[T], h2, inv, omega, rFac T) float64 {
	n := x.N()
	sums := make([]float64, n) //mglint:allow hotalloc — per-call norm partials, one float64 per plane; fixed-chunk deterministic reduction
	parallelPlanes(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var s float64
			for j := 1; j < n-1; j++ {
				xr := x.Row3(i, j)
				up := x.Row3(i-1, j)
				down := x.Row3(i+1, j)
				north := x.Row3(i, j-1)
				south := x.Row3(i, j+1)
				br := b.Row3(i, j)
				for k := 1 + (i+j)%2; k < n-1; k += 2 {
					gs := (up[k] + down[k] + north[k] + south[k] + xr[k-1] + xr[k+1] + h2*br[k]) * (1.0 / 6.0)
					d := gs - xr[k]
					xr[k] += omega * d
					rb := float64(rFac * d)
					s += rb * rb
				}
			}
			sums[i] = s
		}
	})
	parallelPlanes(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := sums[i]
			for j := 1; j < n-1; j++ {
				xr := x.Row3(i, j)
				up := x.Row3(i-1, j)
				down := x.Row3(i+1, j)
				north := x.Row3(i, j-1)
				south := x.Row3(i, j+1)
				br := b.Row3(i, j)
				for k := 1 + (i+j+1)%2; k < n-1; k += 2 {
					rv := float64(br[k] - (6*xr[k]-up[k]-down[k]-north[k]-south[k]-xr[k-1]-xr[k+1])*inv)
					s += rv * rv
				}
			}
			sums[i] = s
		}
	})
	return sumRows(sums, n)
}

// residualNormPar3 is the pool-parallel, deterministically chunked
// counterpart of residualNorm3.
func residualNormPar3[T grid.Float](pool *sched.Pool, x, b *grid.G[T], h T) float64 {
	n := x.N()
	inv := 1 / (h * h)
	sums := make([]float64, n) //mglint:allow hotalloc — per-call norm partials, one float64 per plane; fixed-chunk deterministic reduction
	parallelPlanes(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var s float64
			for j := 1; j < n-1; j++ {
				xr := x.Row3(i, j)
				up := x.Row3(i-1, j)
				down := x.Row3(i+1, j)
				north := x.Row3(i, j-1)
				south := x.Row3(i, j+1)
				br := b.Row3(i, j)
				for k := 1; k < n-1; k++ {
					r := float64(br[k] - (6*xr[k]-up[k]-down[k]-north[k]-south[k]-xr[k-1]-xr[k+1])*inv)
					s += r * r
				}
			}
			sums[i] = s
		}
	})
	return sumRows(sums, n)
}

// residualPlane3 returns a provider computing interior fine residual planes
// of the 3D Laplacian for transfer.RestrictResidual3, matching residual3's
// per-point expression bit for bit.
func residualPlane3[T grid.Float](x, b *grid.G[T], inv T) func(fi int, dst []T) {
	n := x.N()
	return func(fi int, dst []T) { //mglint:allow hotalloc — kernel factory: one plane-provider closure per fused cycle, not per point
		for k := 0; k < n; k++ {
			dst[k], dst[(n-1)*n+k] = 0, 0
		}
		for j := 1; j < n-1; j++ {
			row := dst[j*n : (j+1)*n]
			xr := x.Row3(fi, j)
			up := x.Row3(fi-1, j)
			down := x.Row3(fi+1, j)
			north := x.Row3(fi, j-1)
			south := x.Row3(fi, j+1)
			br := b.Row3(fi, j)
			row[0], row[n-1] = 0, 0
			for k := 1; k < n-1; k++ {
				row[k] = br[k] - (6*xr[k]-up[k]-down[k]-north[k]-south[k]-xr[k-1]-xr[k+1])*inv
			}
		}
	}
}
