// 7-point finite-difference kernels for the 3D Poisson equation T x = b
// with T = −∇² and Dirichlet boundaries on an N×N×N cube:
//
//	(6·x[i,j,k] − x[i±1,j,k] − x[i,j±1,k] − x[i,j,k±1]) / h² = b[i,j,k]
//
// These are the paper's headline scaling case: the same building blocks as
// the 2D 5-point kernels (red-black SOR, weighted Jacobi, residual, apply),
// parallelized over planes instead of rows. Red-black coloring by
// (i+j+k) parity keeps every update within a half-sweep independent, so
// parallel execution is bit-identical to serial execution — the same
// contract the 2D kernels guarantee.
package stencil

import (
	"math"

	"pbmg/internal/grid"
	"pbmg/internal/sched"
)

// parallelPlanes runs body over interior planes [1, n-1), in parallel when
// pool is non-nil and the cube carries enough points to amortize task
// overhead. The gate is the same points-based threshold the 2D row kernels
// use (sched.MinParallelPoints): each plane carries N² points, so coarse
// cubes drop to serial at the same work size as coarse squares instead of
// at a hand-tuned per-dimension iteration count.
func parallelPlanes(pool *sched.Pool, n int, body func(lo, hi int)) {
	if pool == nil {
		body(1, n-1)
		return
	}
	pool.ParallelForPoints(1, n-1, n*n, body)
}

// sorSweepRB3 performs one full red-black SOR sweep (red half-sweep then
// black half-sweep) in place on x with relaxation weight omega. Points are
// colored by (i+j+k) parity; within a color all updates are independent, so
// the sweep parallelizes deterministically over planes.
func sorSweepRB3[T grid.Float](pool *sched.Pool, x, b *grid.G[T], h, omega T) {
	n := x.N()
	h2 := h * h
	for color := 0; color <= 1; color++ {
		parallelPlanes(pool, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				for j := 1; j < n-1; j++ {
					xr := x.Row3(i, j)
					up := x.Row3(i-1, j)
					down := x.Row3(i+1, j)
					north := x.Row3(i, j-1)
					south := x.Row3(i, j+1)
					br := b.Row3(i, j)
					k0 := 1 + (i+j+1+color)%2
					for k := k0; k < n-1; k += 2 {
						gs := (up[k] + down[k] + north[k] + south[k] + xr[k-1] + xr[k+1] + h2*br[k]) * (1.0 / 6.0)
						xr[k] += omega * (gs - xr[k])
					}
				}
			}
		})
	}
}

// gaussSeidel3 performs one lexicographic Gauss-Seidel sweep in place. Like
// its 2D counterpart it is inherently sequential and provided for comparison
// and testing; the solve path smooths with red-black SOR.
func gaussSeidel3[T grid.Float](x, b *grid.G[T], h T) {
	n := x.N()
	h2 := h * h
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			xr := x.Row3(i, j)
			up := x.Row3(i-1, j)
			down := x.Row3(i+1, j)
			north := x.Row3(i, j-1)
			south := x.Row3(i, j+1)
			br := b.Row3(i, j)
			for k := 1; k < n-1; k++ {
				xr[k] = (up[k] + down[k] + north[k] + south[k] + xr[k-1] + xr[k+1] + h2*br[k]) * (1.0 / 6.0)
			}
		}
	}
}

// jacobiSweep3 performs one weighted-Jacobi sweep with weight w, reading
// from x and writing the relaxed iterate into out (boundary copied from x).
// out must not alias x.
func jacobiSweep3[T grid.Float](pool *sched.Pool, out, x, b *grid.G[T], h, w T) {
	n := x.N()
	h2 := h * h
	out.CopyBoundaryFrom(x)
	parallelPlanes(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 1; j < n-1; j++ {
				or := out.Row3(i, j)
				xr := x.Row3(i, j)
				up := x.Row3(i-1, j)
				down := x.Row3(i+1, j)
				north := x.Row3(i, j-1)
				south := x.Row3(i, j+1)
				br := b.Row3(i, j)
				for k := 1; k < n-1; k++ {
					jac := (up[k] + down[k] + north[k] + south[k] + xr[k-1] + xr[k+1] + h2*br[k]) * (1.0 / 6.0)
					or[k] = xr[k] + w*(jac-xr[k])
				}
			}
		}
	})
}

// residual3 computes r = b − T·x on interior points and zeroes r's boundary.
// r must not alias x or b.
func residual3[T grid.Float](pool *sched.Pool, r, x, b *grid.G[T], h T) {
	n := x.N()
	inv := 1 / (h * h)
	r.ZeroBoundary()
	parallelPlanes(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 1; j < n-1; j++ {
				rr := r.Row3(i, j)
				xr := x.Row3(i, j)
				up := x.Row3(i-1, j)
				down := x.Row3(i+1, j)
				north := x.Row3(i, j-1)
				south := x.Row3(i, j+1)
				br := b.Row3(i, j)
				for k := 1; k < n-1; k++ {
					rr[k] = br[k] - (6*xr[k]-up[k]-down[k]-north[k]-south[k]-xr[k-1]-xr[k+1])*inv
				}
			}
		}
	})
}

// apply3 computes y = T·x on interior points and zeroes y's boundary.
// y must not alias x.
func apply3[T grid.Float](pool *sched.Pool, y, x *grid.G[T], h T) {
	n := x.N()
	inv := 1 / (h * h)
	y.ZeroBoundary()
	parallelPlanes(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 1; j < n-1; j++ {
				yr := y.Row3(i, j)
				xr := x.Row3(i, j)
				up := x.Row3(i-1, j)
				down := x.Row3(i+1, j)
				north := x.Row3(i, j-1)
				south := x.Row3(i, j+1)
				for k := 1; k < n-1; k++ {
					yr[k] = (6*xr[k] - up[k] - down[k] - north[k] - south[k] - xr[k-1] - xr[k+1]) * inv
				}
			}
		}
	})
}

// residualNorm3 returns ‖b − T·x‖₂ over interior points without allocating.
func residualNorm3[T grid.Float](x, b *grid.G[T], h T) float64 {
	n := x.N()
	inv := 1 / (h * h)
	var sum float64
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			xr := x.Row3(i, j)
			up := x.Row3(i-1, j)
			down := x.Row3(i+1, j)
			north := x.Row3(i, j-1)
			south := x.Row3(i, j+1)
			br := b.Row3(i, j)
			for k := 1; k < n-1; k++ {
				r := float64(br[k] - (6*xr[k]-up[k]-down[k]-north[k]-south[k]-xr[k-1]-xr[k+1])*inv)
				sum += r * r
			}
		}
	}
	return math.Sqrt(sum)
}
