// Package stencil implements the 5-point finite-difference kernels for the
// 2D Poisson equation T x = b with T = −∇² and Dirichlet boundaries:
//
//	(4·x[i,j] − x[i−1,j] − x[i+1,j] − x[i,j−1] − x[i,j+1]) / h² = b[i,j]
//
// It provides the paper's iterative building blocks — red-black Successive
// Over-Relaxation (the smoother and shortcut iterative solver), weighted
// Jacobi (evaluated and rejected by the paper's tuner, included for the same
// comparison), Gauss-Seidel — plus residual evaluation and operator apply.
// All kernels optionally parallelize across rows on a sched.Pool; red-black
// ordering keeps parallel execution bit-identical to serial execution.
package stencil

import (
	"math"

	"pbmg/internal/grid"
	"pbmg/internal/sched"
)

// OmegaOpt returns the optimal SOR relaxation weight for the 2D discrete
// Poisson equation with fixed boundaries on an n×n grid,
// ω* = 2 / (1 + sin(πh)) with h = 1/(n−1) (Demmel, Applied Numerical
// Linear Algebra §6.5.5). This is the ω_opt the paper fixes for the
// iterative-solver choice in MULTIGRID-Vᵢ.
func OmegaOpt(n int) float64 {
	h := 1.0 / float64(n-1)
	return 2 / (1 + math.Sin(math.Pi*h))
}

// OmegaRecurse is the SOR weight the paper fixes inside RECURSEᵢ smoothing
// steps, chosen by the authors' experimentation (§2.3).
const OmegaRecurse = 1.15

// parallelRows runs body over interior rows [1, n-1), in parallel when pool
// is non-nil and the grid carries enough points to amortize task overhead
// (the points-based gate shared with the 3D plane kernels — see
// sched.MinParallelPoints).
func parallelRows(pool *sched.Pool, n int, body func(lo, hi int)) {
	if pool == nil {
		body(1, n-1)
		return
	}
	pool.ParallelForPoints(1, n-1, n, body)
}

// SORSweepRB performs one full red-black SOR sweep (red half-sweep then
// black half-sweep) in place on x with relaxation weight omega. Points are
// colored by (i+j) parity; within a color all updates are independent, so
// the sweep parallelizes deterministically.
func SORSweepRB[T grid.Float](pool *sched.Pool, x, b *grid.G[T], h, omega T) {
	n := x.N()
	h2 := h * h
	for color := 0; color <= 1; color++ {
		parallelRows(pool, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				xr := x.Row(i)
				up := x.Row(i - 1)
				down := x.Row(i + 1)
				br := b.Row(i)
				j0 := 1 + (i+1+color)%2
				for j := j0; j < n-1; j += 2 {
					gs := (up[j] + down[j] + xr[j-1] + xr[j+1] + h2*br[j]) * 0.25
					xr[j] += omega * (gs - xr[j])
				}
			}
		})
	}
}

// GaussSeidelSweep performs one lexicographic Gauss-Seidel sweep in place.
// It is inherently sequential and provided for comparison and testing.
func GaussSeidelSweep[T grid.Float](x, b *grid.G[T], h T) {
	n := x.N()
	h2 := h * h
	for i := 1; i < n-1; i++ {
		xr := x.Row(i)
		up := x.Row(i - 1)
		down := x.Row(i + 1)
		br := b.Row(i)
		for j := 1; j < n-1; j++ {
			xr[j] = (up[j] + down[j] + xr[j-1] + xr[j+1] + h2*br[j]) * 0.25
		}
	}
}

// JacobiSweep performs one weighted-Jacobi sweep with weight w, reading from
// x and writing the relaxed iterate into out (boundary copied from x).
// out must not alias x.
func JacobiSweep[T grid.Float](pool *sched.Pool, out, x, b *grid.G[T], h, w T) {
	n := x.N()
	h2 := h * h
	out.CopyBoundaryFrom(x)
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			or := out.Row(i)
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			for j := 1; j < n-1; j++ {
				jac := (up[j] + down[j] + xr[j-1] + xr[j+1] + h2*br[j]) * 0.25
				or[j] = xr[j] + w*(jac-xr[j])
			}
		}
	})
}

// Residual computes r = b − T·x on interior points and zeroes r's boundary.
// r must not alias x or b.
func Residual[T grid.Float](pool *sched.Pool, r, x, b *grid.G[T], h T) {
	n := x.N()
	inv := 1 / (h * h)
	r.ZeroBoundary()
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rr := r.Row(i)
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			for j := 1; j < n-1; j++ {
				rr[j] = br[j] - (4*xr[j]-up[j]-down[j]-xr[j-1]-xr[j+1])*inv
			}
		}
	})
}

// Apply computes y = T·x on interior points and zeroes y's boundary.
// y must not alias x.
func Apply[T grid.Float](pool *sched.Pool, y, x *grid.G[T], h T) {
	n := x.N()
	inv := 1 / (h * h)
	y.ZeroBoundary()
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			yr := y.Row(i)
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			for j := 1; j < n-1; j++ {
				yr[j] = (4*xr[j] - up[j] - down[j] - xr[j-1] - xr[j+1]) * inv
			}
		}
	})
}

// ResidualNorm returns ‖b − T·x‖₂ over interior points without allocating,
// useful for convergence checks in reference solvers.
func ResidualNorm[T grid.Float](x, b *grid.G[T], h T) float64 {
	n := x.N()
	inv := 1 / (h * h)
	var sum float64
	for i := 1; i < n-1; i++ {
		xr := x.Row(i)
		up := x.Row(i - 1)
		down := x.Row(i + 1)
		br := b.Row(i)
		for j := 1; j < n-1; j++ {
			r := float64(br[j] - (4*xr[j]-up[j]-down[j]-xr[j-1]-xr[j+1])*inv)
			sum += r * r
		}
	}
	return math.Sqrt(sum)
}
