// Fused V-cycle upstroke kernels for the 3D 7-point stencil — the
// plane-parallel counterparts of upstroke.go. The correction pass evaluates
// each (i,j) pencil's trilinear correction once (transfer.InterpRow3, the
// same arithmetic transfer.Interpolate runs) and adds it in place; the red
// half-sweep then reads only black neighbours plus corrected reds, so the
// iterate is bit-identical to InterpolateAdd + red half-sweep for any pool.
// Serial execution interleaves the two as a plane wavefront — relaxing plane
// i−1 right after correcting plane i, while both are cache-resident.
package stencil

import (
	"pbmg/internal/grid"
	"pbmg/internal/sched"
	"pbmg/internal/transfer"
)

// interpCorrectPlanes is interpCorrectRows over planes: add the trilinear
// interpolation of cx to every interior pencil of x (one InterpRow3 per
// pencil) and relax the red points via redPlane — wavefront when serial, two
// barrier-separated passes when pooled.
func interpCorrectPlanes[T grid.Float](pool *sched.Pool, x, cx *grid.G[T], redPlane func(i int)) {
	n := x.N()
	correct := func(buf, tmp []T, i int) {
		for j := 1; j < n-1; j++ {
			transfer.InterpRow3(buf, tmp, cx, i, j)
			xr := x.Row3(i, j)
			for k := 1; k < n-1; k++ {
				xr[k] += buf[k]
			}
		}
	}
	if pool == nil {
		buf := make([]T, n) //mglint:allow hotalloc — per-upstroke interp correction plane row buffer, O(n) per V-cycle level
		tmp := make([]T, n) //mglint:allow hotalloc — per-upstroke interp correction plane row buffer (PR 6)
		correct(buf, tmp, 1)
		for i := 2; i < n-1; i++ {
			correct(buf, tmp, i)
			redPlane(i - 1)
		}
		redPlane(n - 2)
		return
	}
	parallelPlanes(pool, n, func(lo, hi int) {
		buf := make([]T, n) //mglint:allow hotalloc — per-chunk interp correction row buffer, O(n) per upstroke
		tmp := make([]T, n) //mglint:allow hotalloc — per-chunk interp correction row buffer, O(n) per upstroke
		for i := lo; i < hi; i++ {
			correct(buf, tmp, i)
		}
	})
	parallelPlanes(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			redPlane(i)
		}
	})
}

// redRelaxPlane3 relaxes the red ((i+j+k) even) points of plane i —
// sorSweepRB3's color-0 half restricted to one plane.
func redRelaxPlane3[T grid.Float](x, b *grid.G[T], i int, h2, omega T) {
	n := x.N()
	for j := 1; j < n-1; j++ {
		xr := x.Row3(i, j)
		up := x.Row3(i-1, j)
		down := x.Row3(i+1, j)
		north := x.Row3(i, j-1)
		south := x.Row3(i, j+1)
		br := b.Row3(i, j)
		for k := 1 + (i+j+1)%2; k < n-1; k += 2 {
			gs := (up[k] + down[k] + north[k] + south[k] + xr[k-1] + xr[k+1] + h2*br[k]) * (1.0 / 6.0)
			xr[k] += omega * (gs - xr[k])
		}
	}
}

// blackHalfSweep3 is sorSweepRB3's color-1 half-sweep.
func blackHalfSweep3[T grid.Float](pool *sched.Pool, x, b *grid.G[T], h2, omega T) {
	n := x.N()
	parallelPlanes(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 1; j < n-1; j++ {
				xr := x.Row3(i, j)
				up := x.Row3(i-1, j)
				down := x.Row3(i+1, j)
				north := x.Row3(i, j-1)
				south := x.Row3(i, j+1)
				br := b.Row3(i, j)
				for k := 1 + (i+j)%2; k < n-1; k += 2 {
					gs := (up[k] + down[k] + north[k] + south[k] + xr[k-1] + xr[k+1] + h2*br[k]) * (1.0 / 6.0)
					xr[k] += omega * (gs - xr[k])
				}
			}
		}
	})
}
