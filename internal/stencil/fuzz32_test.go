package stencil

import (
	"math"
	"math/rand"
	"testing"

	"pbmg/internal/grid"
)

// FuzzF32MatchesF64 checks the mixed-precision invariant behind the f32
// storage path: for every operator family, running the red-black SOR sweep
// and the residual kernel in float32 storage must agree with the float64
// kernels to within an analytic rounding bound. The kernels are the same
// generic code instantiated at two precisions, so the only divergence is
// floating-point rounding — a parity bug, a wrongly-cast coefficient, or a
// stale f32 coefficient mirror all blow past the bound immediately.
//
// The bound: one relaxation update is O(10) flops on operands converted
// with one rounding each, so its forward error is a small multiple of
// eps32·scale (eps32 = 2⁻²³ for a result within [1,2), used here as the
// conservative unit roundoff of float32). Within one red-black sweep the
// black half-sweep reads updated red points (dependency depth 2), and k
// sweeps deepen the chain linearly, so sweeps·64·eps32·scale holds with a
// wide margin; the factor 64 absorbs the per-update flop count, the depth,
// and the aniso/varcoef coefficient weightings, which are normalized so an
// update never amplifies its operands.
func FuzzF32MatchesF64(f *testing.F) {
	f.Add(int64(1), uint8(0), 1.0)
	f.Add(int64(2), uint8(1), 0.01)
	f.Add(int64(3), uint8(2), 2.0)
	f.Add(int64(4), uint8(1), 77.7)
	const (
		n2d    = 129 // the 2D acceptance size: parallel and split gates engage
		n3d    = 33  // the 3D acceptance size
		sweeps = 2
		eps32  = 1.0 / (1 << 23)
	)
	f.Fuzz(func(t *testing.T, seed int64, famSel uint8, epsRaw float64) {
		rng := rand.New(rand.NewSource(seed))
		op2 := fuzzOperator(n2d, famSel, epsRaw, seed)
		x2, b2 := randomState(n2d, rng)
		checkF32MatchesF64(t, op2, x2, b2, sweeps, eps32)

		op3 := Poisson3D()
		x3, b3 := randomState3(n3d, rng)
		checkF32MatchesF64(t, op3, x3, b3, sweeps, eps32)
	})
}

// TestF32SweepParallelBitIdentical is the reduced-precision edition of the
// parallel==serial invariant: red-black coloring makes every update within
// a phase independent, so worker count must not change a single bit of the
// float32 result either — at f32 a scheduling-dependent reassociation would
// be even easier to miss behind rounding, so the check is exact, not banded.
func TestF32SweepParallelBitIdentical(t *testing.T) {
	pool := sharedPool()
	cases := []struct {
		op  *Operator
		n   int
		dim int
	}{
		{Poisson(), 129, 2},
		{Anisotropic(0.01), 129, 2},
		{VarCoefOperator(CoefField(129, 2), 2), 129, 2},
		{Poisson3D(), 33, 3},
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(7))
		x0 := grid.NewOf[float32](tc.dim, tc.n)
		b := grid.NewOf[float32](tc.dim, tc.n)
		x64 := grid.NewDim(tc.dim, tc.n)
		b64 := grid.NewDim(tc.dim, tc.n)
		grid.FillRandom(x64, grid.Unbiased, rng)
		grid.FillRandom(b64, grid.Unbiased, rng)
		grid.ConvertInto(x0, x64)
		grid.ConvertInto(b, b64)
		h := float32(1.0 / float64(tc.n-1))
		const omega = float32(1.15)

		xs, xp := x0.Clone(), x0.Clone()
		for s := 0; s < 2; s++ {
			OpSORSweepRB(tc.op, nil, xs, b, h, omega)
			OpSORSweepRB(tc.op, pool, xp, b, h, omega)
		}
		sd, pd := xs.Data(), xp.Data()
		for k := range sd {
			if math.Float32bits(sd[k]) != math.Float32bits(pd[k]) {
				t.Fatalf("%v n=%d: f32 serial and pooled sweeps differ at %d: %x vs %x",
					tc.op, tc.n, k, math.Float32bits(sd[k]), math.Float32bits(pd[k]))
			}
		}
	}
}

// checkF32MatchesF64 runs the same sweeps+residual at both precisions and
// asserts the pointwise divergence stays inside the rounding bound.
func checkF32MatchesF64(t *testing.T, op *Operator, x0, b *grid.Grid, sweeps int, eps32 float64) {
	t.Helper()
	n := x0.N()
	dim := x0.Dim()
	h := 1.0 / float64(n-1)
	const omega = 1.2

	x64 := x0.Clone()
	x32 := grid.NewOf[float32](dim, n)
	b32 := grid.NewOf[float32](dim, n)
	grid.ConvertInto(x32, x0)
	grid.ConvertInto(b32, b)
	h32, omega32 := float32(h), float32(omega)

	for s := 0; s < sweeps; s++ {
		OpSORSweepRB(op, nil, x64, b, h, omega)
		OpSORSweepRB(op, nil, x32, b32, h32, omega32)
	}

	scale := 1.0
	for _, v := range x64.Data() {
		scale = math.Max(scale, math.Abs(v))
	}
	for _, v := range b.Data() {
		scale = math.Max(scale, math.Abs(v))
	}
	tol := float64(sweeps) * 64 * eps32 * scale

	d32 := x32.Data()
	for k, want := range x64.Data() {
		if diff := math.Abs(float64(d32[k]) - want); diff > tol {
			t.Fatalf("%v n=%d: f32 sweep diverged at %d: f32 %v vs f64 %v (diff %g > bound %g)",
				op, n, k, d32[k], want, diff, tol)
		}
	}

	// The residual kernel at f32 must match the f64 residual evaluated on
	// the SAME f32 state (converted up): comparing against the f64 state's
	// residual would fold in the sweeps' state divergence amplified by the
	// operator's 1/h² — an error of the states, not of the kernel. The
	// bound is absolute against the residual's operand scale (b and A·x ≈
	// b − r are the terms that cancel), since a relative bound on a
	// near-zero r would be wrong.
	xf := grid.NewDim(dim, n)
	grid.ConvertInto(xf, x32)
	r64 := grid.NewDim(dim, n)
	r32 := grid.NewOf[float32](dim, n)
	OpResidual(op, nil, r64, xf, b, h)
	OpResidual(op, nil, r32, x32, b32, h32)
	rscale := scale
	for _, v := range r64.Data() {
		rscale = math.Max(rscale, math.Abs(v))
	}
	rtol := 64 * eps32 * 2 * rscale
	rd := r32.Data()
	for k, want := range r64.Data() {
		if diff := math.Abs(float64(rd[k]) - want); diff > rtol {
			t.Fatalf("%v n=%d: f32 residual diverged at %d: f32 %v vs f64 %v (diff %g > bound %g)",
				op, n, k, rd[k], want, diff, rtol)
		}
	}
}
