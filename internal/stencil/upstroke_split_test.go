package stencil

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"pbmg/internal/grid"
	"pbmg/internal/sched"
	"pbmg/internal/transfer"
)

// Equivalence suite for the fused upstroke (InterpolateCorrectSmooth +
// FinishSmooth/FinishSmoothWithNorm) and the unit-stride color-split sweeps,
// run for every operator family × {2D, 3D} × {serial, 8-goroutine pool}
// against the unfused strided oracles. Everything here is bit-identity: the
// fused upstroke performs the oracle's adds and relaxations on the same
// values in the same per-point order, and the split sweeps evaluate the
// strided update expression verbatim on repacked storage.

// randomCorrection builds a random coarse correction grid like the ones the
// coarse solve hands the upstroke.
func randomCorrection(dim, n int, rng *rand.Rand) *grid.Grid {
	c := grid.NewDim(dim, grid.Coarsen(n))
	grid.FillRandom(c, grid.Unbiased, rng)
	return c
}

func TestInterpolateCorrectSmoothMatchesOracle(t *testing.T) {
	for _, tc := range fusedCases() {
		for _, n := range tc.ns {
			t.Run(fmt.Sprintf("%s/n%d", tc.name, n), func(t *testing.T) {
				op := tc.mk(n)
				h := 1.0 / float64(n-1)
				omega := op.OmegaSmooth()
				rng := rand.New(rand.NewSource(int64(n) + 101))
				x0, b := randomStateDim(tc.dim, n, rng)
				cx := randomCorrection(tc.dim, n, rng)

				// Oracle upstroke: interpolate+correct, then a full sweep.
				xo := x0.Clone()
				scratch := grid.NewDim(tc.dim, n)
				transfer.InterpolateAdd(nil, xo, cx, scratch)
				op.SORSweepRB(nil, xo, b, h, omega)

				withPools(t, func(t *testing.T, pool *sched.Pool) {
					xf := x0.Clone()
					op.InterpolateCorrectSmooth(pool, xf, b, cx, h, omega)
					op.FinishSmooth(pool, xf, b, h, omega)
					assertBitIdentical(t, xo, xf, "fused upstroke iterate")
				})
			})
		}
	}
}

func TestFinishSmoothWithNormMatchesOracle(t *testing.T) {
	for _, tc := range fusedCases() {
		for _, n := range tc.ns {
			t.Run(fmt.Sprintf("%s/n%d", tc.name, n), func(t *testing.T) {
				op := tc.mk(n)
				h := 1.0 / float64(n-1)
				omega := op.OmegaSmooth()
				rng := rand.New(rand.NewSource(int64(n) + 211))
				x0, b := randomStateDim(tc.dim, n, rng)
				cx := randomCorrection(tc.dim, n, rng)

				// Oracle: separate correction, then the norm-fused sweep the
				// adaptive driver uses (itself locked to the residual oracle
				// by TestSweepWithNormMatchesOracle).
				xo := x0.Clone()
				scratch := grid.NewDim(tc.dim, n)
				transfer.InterpolateAdd(nil, xo, cx, scratch)
				wantNorm := op.SweepWithNorm(nil, xo, b, h, omega)

				withPools(t, func(t *testing.T, pool *sched.Pool) {
					xf := x0.Clone()
					op.InterpolateCorrectSmooth(pool, xf, b, cx, h, omega)
					norm := op.FinishSmoothWithNorm(pool, xf, b, h, omega)
					assertBitIdentical(t, xo, xf, "fused upstroke+norm iterate")
					// Same values through the same fixed per-row reduction:
					// the norm is bit-identical, serial or pooled.
					if math.Float64bits(norm) != math.Float64bits(wantNorm) {
						t.Fatalf("norm %v (%x) differs from oracle %v (%x)",
							norm, math.Float64bits(norm), wantNorm, math.Float64bits(wantNorm))
					}
				})
			})
		}
	}
}

func TestSplitPackUnpackRoundTrip(t *testing.T) {
	for _, dim := range []int{2, 3} {
		n := 33
		if dim == 3 {
			n = 17
		}
		t.Run(fmt.Sprintf("dim%d/n%d", dim, n), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(dim)))
			g := grid.NewDim(dim, n)
			grid.FillRandom(g, grid.Biased, rng)
			s := grid.NewSplit(dim, n)
			s.Pack(g)
			out := grid.NewDim(dim, n)
			out.Fill(math.NaN())
			s.Unpack(out)
			assertBitIdentical(t, g, out, "pack/unpack round trip")
		})
	}
}

func TestSORSweepsSplitMatchesStrided(t *testing.T) {
	for _, tc := range fusedCases() {
		for _, n := range tc.ns {
			for _, sweeps := range []int{1, 3} {
				t.Run(fmt.Sprintf("%s/n%d/k%d", tc.name, n, sweeps), func(t *testing.T) {
					op := tc.mk(n)
					h := 1.0 / float64(n-1)
					omega := op.OmegaSmooth()
					rng := rand.New(rand.NewSource(int64(n) + 307))
					x0, b := randomStateDim(tc.dim, n, rng)

					xo := x0.Clone()
					for s := 0; s < sweeps; s++ {
						op.SORSweepRB(nil, xo, b, h, omega)
					}

					withPools(t, func(t *testing.T, pool *sched.Pool) {
						xs := x0.Clone()
						// Call the split path directly, below its size gate.
						sorSweepsSplit(op, pool, xs, b, h, omega, sweeps)
						assertBitIdentical(t, xo, xs, "split sweep iterate")
					})
				})
			}
		}
	}
}

func TestSORSweepsHonorsGate(t *testing.T) {
	cases := []struct {
		dim, n, sweeps int
		want           bool
	}{
		{2, 257, 8, true},
		{2, 257, 7, false}, // too few sweeps to amortize pack/unpack
		{2, 129, 64, false},
		{2, 513, 64, false}, // past the 2D window: strided streams win again
		{3, 65, 8, true},
		{3, 65, 7, false},
		{3, 33, 64, false},
		{3, 129, 8, true}, // no 3D upper bound: strided pencils stay slow
	}
	for _, c := range cases {
		if got := SplitWorthwhile(c.dim, c.n, c.sweeps); got != c.want {
			t.Errorf("SplitWorthwhile(%d, %d, %d) = %v, want %v",
				c.dim, c.n, c.sweeps, got, c.want)
		}
	}
	// And the public entry point agrees with the strided loop bit for bit on
	// a gated (large) configuration.
	op := Poisson()
	n := 257
	h := 1.0 / float64(n-1)
	omega := OmegaOpt(n)
	rng := rand.New(rand.NewSource(11))
	x0, b := randomState(n, rng)
	xo := x0.Clone()
	for s := 0; s < splitMinSweeps; s++ {
		op.SORSweepRB(nil, xo, b, h, omega)
	}
	xs := x0.Clone()
	op.SORSweeps(nil, xs, b, h, omega, splitMinSweeps)
	assertBitIdentical(t, xo, xs, "gated SORSweeps iterate")
}

// FuzzSplitMatchesStrided drives the color-split sweeps against the strided
// oracle on random states, families, weights, and sweep counts, bypassing
// the size gate (2D at 129, 3D at 33).
func FuzzSplitMatchesStrided(f *testing.F) {
	f.Add(int64(1), uint8(0), 1.0, 1.15, uint8(1))
	f.Add(int64(2), uint8(1), 0.01, 1.0, uint8(2))
	f.Add(int64(3), uint8(2), 2.0, 1.6, uint8(3))
	pool := sharedPool()
	f.Fuzz(func(t *testing.T, seed int64, famSel uint8, epsRaw, omegaRaw float64, sweepsRaw uint8) {
		omega := omegaRaw
		if math.IsNaN(omega) || math.IsInf(omega, 0) {
			omega = 1.15
		}
		omega = 0.05 + math.Mod(math.Abs(omega), 1.9) // (0, 2): SOR-stable
		sweeps := 1 + int(sweepsRaw%3)
		rng := rand.New(rand.NewSource(seed))

		const n2 = 129
		op := fuzzOperator(n2, famSel, epsRaw, seed)
		x0, b := randomState(n2, rng)
		h := 1.0 / float64(n2-1)
		xo := x0.Clone()
		for s := 0; s < sweeps; s++ {
			op.SORSweepRB(nil, xo, b, h, omega)
		}
		xs := x0.Clone()
		sorSweepsSplit(op, pool, xs, b, h, omega, sweeps)
		assertBitIdentical(t, xo, xs, "2D split iterate")
		xss := x0.Clone()
		sorSweepsSplit(op, nil, xss, b, h, omega, sweeps)
		assertBitIdentical(t, xo, xss, "2D split serial (wavefront) iterate")

		const n3 = 33
		op3 := Poisson3D()
		x30, b3 := randomState3(n3, rng)
		h3 := 1.0 / float64(n3-1)
		xo3 := x30.Clone()
		for s := 0; s < sweeps; s++ {
			op3.SORSweepRB(nil, xo3, b3, h3, omega)
		}
		xs3 := x30.Clone()
		sorSweepsSplit(op3, pool, xs3, b3, h3, omega, sweeps)
		assertBitIdentical(t, xo3, xs3, "3D split iterate")
		xss3 := x30.Clone()
		sorSweepsSplit(op3, nil, xss3, b3, h3, omega, sweeps)
		assertBitIdentical(t, xo3, xss3, "3D split serial (wavefront) iterate")
	})
}
