package stencil

import (
	"math"
	"math/rand"
	"testing"

	"pbmg/internal/grid"
)

// 3D counterparts of the 2D fuzz targets in fuzz_test.go: the poisson3d
// kernels must keep the same two invariants —
//
//  1. Parallel sweeps are bit-identical to serial sweeps (red-black
//     coloring by (i+j+k) parity makes every update within a half-sweep
//     independent, so plane chunking must not change a single bit).
//  2. Apply and Residual implement the same 7-point operator:
//     residual(x, b) == b − A·x up to floating-point association error.

// fuzzState3 derives a random 3D state from a fuzz seed, with magnitudes
// scaled by a fuzzed exponent to probe cancellation regimes.
func fuzzState3(n int, seed int64, scaleExp int) (x, b *grid.Grid) {
	scale := math.Ldexp(1, scaleExp%32)
	rng := rand.New(rand.NewSource(seed))
	x, b = grid.New3(n), grid.New3(n)
	xd, bd := x.Data(), b.Data()
	for i := range xd {
		xd[i] = (rng.Float64()*2 - 1) * scale
		bd[i] = (rng.Float64()*2 - 1) * scale
	}
	return x, b
}

// Fuzz3DSweepParallelMatchesSerial checks invariant 1 on the 3D SOR,
// Jacobi, Residual, and Apply kernels at a cube size above the parallel
// plane threshold.
func Fuzz3DSweepParallelMatchesSerial(f *testing.F) {
	f.Add(int64(1), 0, 1.2)
	f.Add(int64(2), 8, 0.9)
	f.Add(int64(3), 31, 1.7)
	pool := sharedPool()
	const n = 33 // parallelPlanes engages only for n ≥ 32
	f.Fuzz(func(t *testing.T, seed int64, scaleExp int, omegaRaw float64) {
		omega := omegaRaw
		if math.IsNaN(omega) || math.IsInf(omega, 0) {
			omega = 1.15
		}
		omega = 0.1 + math.Mod(math.Abs(omega), 1.8) // ω ∈ (0, 2)
		op := Poisson3D()
		x0, b := fuzzState3(n, seed, scaleExp)
		h := 1.0 / float64(n-1)

		xs, xp := x0.Clone(), x0.Clone()
		for s := 0; s < 2; s++ {
			op.SORSweepRB(nil, xs, b, h, omega)
			op.SORSweepRB(pool, xp, b, h, omega)
		}
		assertBitIdentical(t, xs, xp, "SOR3")

		js, jp := grid.New3(n), grid.New3(n)
		op.JacobiSweep(nil, js, xs, b, h, 2.0/3.0)
		op.JacobiSweep(pool, jp, xs, b, h, 2.0/3.0)
		assertBitIdentical(t, js, jp, "Jacobi3")

		rs, rp := grid.New3(n), grid.New3(n)
		op.Residual(nil, rs, xs, b, h)
		op.Residual(pool, rp, xs, b, h)
		assertBitIdentical(t, rs, rp, "Residual3")

		as, ap := grid.New3(n), grid.New3(n)
		op.Apply(nil, as, xs, h)
		op.Apply(pool, ap, xs, h)
		assertBitIdentical(t, as, ap, "Apply3")
	})
}

// Fuzz3DApplyResidualConsistency checks invariant 2: the independently
// written 3D apply and residual kernels agree on the operator.
func Fuzz3DApplyResidualConsistency(f *testing.F) {
	f.Add(int64(1), 0)
	f.Add(int64(2), 16)
	f.Add(int64(5), 31)
	const n = 9
	f.Fuzz(func(t *testing.T, seed int64, scaleExp int) {
		op := Poisson3D()
		x, b := fuzzState3(n, seed, scaleExp)
		h := 1.0 / float64(n-1)

		r := grid.New3(n)
		op.Residual(nil, r, x, b, h)
		y := grid.New3(n)
		op.Apply(nil, y, x, h)

		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				for k := 1; k < n-1; k++ {
					want := b.At3(i, j, k) - y.At3(i, j, k)
					got := r.At3(i, j, k)
					scale := math.Max(1, math.Abs(b.At3(i, j, k))+math.Abs(y.At3(i, j, k)))
					if math.Abs(got-want) > 1e-10*scale {
						t.Fatalf("residual(%d,%d,%d) = %v, want b−A·x = %v (scale %g)",
							i, j, k, got, want, scale)
					}
				}
			}
		}
		var sum float64
		rd := r.Data()
		for i := range rd {
			sum += rd[i] * rd[i]
		}
		if norm := op.ResidualNorm(nil, x, b, h); math.Abs(norm-math.Sqrt(sum)) > 1e-9*math.Max(1, norm) {
			t.Fatalf("ResidualNorm %v != ‖residual grid‖ %v", norm, math.Sqrt(sum))
		}
	})
}
