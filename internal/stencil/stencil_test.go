package stencil

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pbmg/internal/grid"
	"pbmg/internal/sched"
)

// manufactured builds the problem −∇²u = f with u = sin(πx)sin(πy) on the
// unit square, for which f = 2π²·sin(πx)sin(πy) and u = 0 on the boundary.
func manufactured(n int) (u, b *grid.Grid, h float64) {
	h = 1.0 / float64(n-1)
	u, b = grid.New(n), grid.New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x, y := float64(j)*h, float64(i)*h
			u.Set(i, j, math.Sin(math.Pi*x)*math.Sin(math.Pi*y))
			b.Set(i, j, 2*math.Pi*math.Pi*math.Sin(math.Pi*x)*math.Sin(math.Pi*y))
		}
	}
	return u, b, h
}

func TestOmegaOpt(t *testing.T) {
	// For h → 0, ω* → 2; for n = 3 (h = 1/2), ω* = 2/(1+sin(π/2)) = 1.
	if got := OmegaOpt(3); math.Abs(got-1) > 1e-12 {
		t.Fatalf("OmegaOpt(3) = %v, want 1", got)
	}
	w65 := OmegaOpt(65)
	if w65 <= 1.8 || w65 >= 2 {
		t.Fatalf("OmegaOpt(65) = %v, want in (1.8, 2)", w65)
	}
	if OmegaOpt(129) <= w65 {
		t.Fatal("OmegaOpt should increase toward 2 with finer grids")
	}
}

func TestSORConvergesToManufacturedSolution(t *testing.T) {
	n := 33
	u, b, h := manufactured(n)
	x := grid.New(n)
	omega := OmegaOpt(n)
	for it := 0; it < 2000; it++ {
		SORSweepRB(nil, x, b, h, omega)
	}
	// x should match u up to discretization error O(h²).
	err := grid.L2DiffInterior(x, u) / grid.L2Interior(u)
	if err > 1e-3 {
		t.Fatalf("relative error after SOR = %v, want < 1e-3", err)
	}
}

func TestSORReducesResidualMonotonicallyEventually(t *testing.T) {
	n := 17
	_, b, h := manufactured(n)
	x := grid.New(n)
	r0 := ResidualNorm(x, b, h)
	for it := 0; it < 50; it++ {
		SORSweepRB(nil, x, b, h, OmegaRecurse)
	}
	r1 := ResidualNorm(x, b, h)
	if r1 >= r0 {
		t.Fatalf("residual did not decrease: %v -> %v", r0, r1)
	}
}

func TestGaussSeidelConverges(t *testing.T) {
	n := 17
	u, b, h := manufactured(n)
	x := grid.New(n)
	for it := 0; it < 1500; it++ {
		GaussSeidelSweep(x, b, h)
	}
	err := grid.L2DiffInterior(x, u) / grid.L2Interior(u)
	if err > 5e-3 {
		t.Fatalf("GS relative error = %v, want < 5e-3", err)
	}
}

func TestJacobiConverges(t *testing.T) {
	n := 17
	u, b, h := manufactured(n)
	x, tmp := grid.New(n), grid.New(n)
	for it := 0; it < 3000; it++ {
		JacobiSweep(nil, tmp, x, b, h, 2.0/3.0)
		x, tmp = tmp, x
	}
	err := grid.L2DiffInterior(x, u) / grid.L2Interior(u)
	if err > 5e-3 {
		t.Fatalf("Jacobi relative error = %v, want < 5e-3", err)
	}
}

func TestSORFasterThanJacobiPerSweep(t *testing.T) {
	n := 33
	u, b, h := manufactured(n)
	sweeps := 100
	xs := grid.New(n)
	for i := 0; i < sweeps; i++ {
		SORSweepRB(nil, xs, b, h, OmegaOpt(n))
	}
	xj, tmp := grid.New(n), grid.New(n)
	for i := 0; i < sweeps; i++ {
		JacobiSweep(nil, tmp, xj, b, h, 2.0/3.0)
		xj, tmp = tmp, xj
	}
	if grid.L2DiffInterior(xs, u) >= grid.L2DiffInterior(xj, u) {
		t.Fatal("SOR(ω_opt) should out-converge weighted Jacobi per sweep")
	}
}

func TestResidualOfDiscreteSolutionIsZero(t *testing.T) {
	// Solve a tiny system nearly exactly with many sweeps, then the residual
	// must be near zero.
	n := 9
	_, b, h := manufactured(n)
	x := grid.New(n)
	for it := 0; it < 4000; it++ {
		SORSweepRB(nil, x, b, h, 1.5)
	}
	r := grid.New(n)
	Residual(nil, r, x, b, h)
	if got := grid.L2Interior(r); got > 1e-8*grid.L2Interior(b) {
		t.Fatalf("residual of converged solution = %v, want ~0", got)
	}
}

func TestResidualMatchesApply(t *testing.T) {
	n := 17
	rng := rand.New(rand.NewSource(2))
	x, b := grid.New(n), grid.New(n)
	grid.FillRandom(x, grid.Unbiased, rng)
	grid.FillRandom(b, grid.Unbiased, rng)
	h := 1.0 / float64(n-1)
	r, y := grid.New(n), grid.New(n)
	Residual(nil, r, x, b, h)
	Apply(nil, y, x, h)
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			want := b.At(i, j) - y.At(i, j)
			if math.Abs(r.At(i, j)-want) > 1e-6*math.Max(1, math.Abs(want)) {
				t.Fatalf("residual mismatch at (%d,%d): %v vs %v", i, j, r.At(i, j), want)
			}
		}
	}
}

func TestResidualNormMatchesResidualGrid(t *testing.T) {
	n := 33
	rng := rand.New(rand.NewSource(4))
	x, b := grid.New(n), grid.New(n)
	grid.FillRandom(x, grid.Biased, rng)
	grid.FillRandom(b, grid.Biased, rng)
	h := 1.0 / float64(n-1)
	r := grid.New(n)
	Residual(nil, r, x, b, h)
	want := grid.L2Interior(r)
	got := ResidualNorm(x, b, h)
	if math.Abs(got-want) > 1e-9*want {
		t.Fatalf("ResidualNorm = %v, want %v", got, want)
	}
}

func TestParallelMatchesSerialExactly(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	n := 257 // above the parallel threshold
	rng := rand.New(rand.NewSource(11))
	b := grid.New(n)
	grid.FillRandom(b, grid.Unbiased, rng)
	h := 1.0 / float64(n-1)

	xs, xp := grid.New(n), grid.New(n)
	grid.FillBoundaryRandom(xs, grid.Unbiased, rand.New(rand.NewSource(12)))
	xp.CopyFrom(xs)
	for it := 0; it < 3; it++ {
		SORSweepRB(nil, xs, b, h, 1.15)
		SORSweepRB(pool, xp, b, h, 1.15)
	}
	for i := range xs.Data() {
		if xs.Data()[i] != xp.Data()[i] {
			t.Fatal("parallel SOR differs from serial SOR")
		}
	}

	rs, rp := grid.New(n), grid.New(n)
	Residual(nil, rs, xs, b, h)
	Residual(pool, rp, xp, b, h)
	for i := range rs.Data() {
		if rs.Data()[i] != rp.Data()[i] {
			t.Fatal("parallel residual differs from serial residual")
		}
	}

	js, jp := grid.New(n), grid.New(n)
	JacobiSweep(nil, js, xs, b, h, 0.8)
	JacobiSweep(pool, jp, xp, b, h, 0.8)
	for i := range js.Data() {
		if js.Data()[i] != jp.Data()[i] {
			t.Fatal("parallel Jacobi differs from serial Jacobi")
		}
	}
}

// Property: the discrete operator T is symmetric: <Tx, y> = <x, Ty> for
// grids with zero boundary.
func TestOperatorSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 17
		h := 1.0 / float64(n-1)
		x, y := grid.New(n), grid.New(n)
		grid.FillRandom(x, grid.Unbiased, rng)
		grid.FillRandom(y, grid.Unbiased, rng)
		x.ZeroBoundary()
		y.ZeroBoundary()
		tx, ty := grid.New(n), grid.New(n)
		Apply(nil, tx, x, h)
		Apply(nil, ty, y, h)
		dot := func(a, b *grid.Grid) float64 {
			var s float64
			for i := range a.Data() {
				s += a.Data()[i] * b.Data()[i]
			}
			return s
		}
		l, r := dot(tx, y), dot(x, ty)
		scale := math.Max(math.Abs(l), math.Abs(r))
		return math.Abs(l-r) <= 1e-9*math.Max(scale, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: T is positive definite: <Tx, x> > 0 for nonzero zero-boundary x.
func TestOperatorPositiveDefiniteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 9
		h := 1.0 / float64(n-1)
		x := grid.New(n)
		grid.FillRandom(x, grid.Unbiased, rng)
		x.ZeroBoundary()
		tx := grid.New(n)
		Apply(nil, tx, x, h)
		var s float64
		for i := range x.Data() {
			s += x.Data()[i] * tx.Data()[i]
		}
		return s > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: one SOR sweep leaves the boundary untouched.
func TestSweepPreservesBoundaryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 17
		h := 1.0 / float64(n-1)
		x, b := grid.New(n), grid.New(n)
		grid.FillRandom(x, grid.Biased, rng)
		grid.FillRandom(b, grid.Biased, rng)
		before := x.Clone()
		SORSweepRB(nil, x, b, h, 1.3)
		for j := 0; j < n; j++ {
			if x.At(0, j) != before.At(0, j) || x.At(n-1, j) != before.At(n-1, j) ||
				x.At(j, 0) != before.At(j, 0) || x.At(j, n-1) != before.At(j, n-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
