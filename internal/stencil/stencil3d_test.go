package stencil

import (
	"math"
	"math/rand"
	"testing"

	"pbmg/internal/grid"
	"pbmg/internal/sched"
)

// randomState3 returns random 3D x and b grids with entries in [−1, 1].
func randomState3(n int, rng *rand.Rand) (x, b *grid.Grid) {
	x, b = grid.New3(n), grid.New3(n)
	xd, bd := x.Data(), b.Data()
	for i := range xd {
		xd[i] = rng.Float64()*2 - 1
		bd[i] = rng.Float64()*2 - 1
	}
	return x, b
}

// TestApply3MatchesManualStencil: the 3D apply kernel is the literal
// 7-point formula.
func TestApply3MatchesManualStencil(t *testing.T) {
	n := 9
	rng := rand.New(rand.NewSource(1))
	x, _ := randomState3(n, rng)
	h := 1.0 / float64(n-1)
	y := grid.New3(n)
	Poisson3D().Apply(nil, y, x, h)
	inv := 1 / (h * h)
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			for k := 1; k < n-1; k++ {
				want := (6*x.At3(i, j, k) -
					x.At3(i-1, j, k) - x.At3(i+1, j, k) -
					x.At3(i, j-1, k) - x.At3(i, j+1, k) -
					x.At3(i, j, k-1) - x.At3(i, j, k+1)) * inv
				if got := y.At3(i, j, k); math.Abs(got-want) > 1e-12*math.Max(1, math.Abs(want)) {
					t.Fatalf("apply3(%d,%d,%d) = %v, want %v", i, j, k, got, want)
				}
			}
		}
	}
	if y.At3(0, 4, 4) != 0 {
		t.Fatal("apply3 did not zero the boundary")
	}
}

// TestResidual3ConsistentWithApply3: r = b − T·x.
func TestResidual3ConsistentWithApply3(t *testing.T) {
	n := 9
	rng := rand.New(rand.NewSource(2))
	x, b := randomState3(n, rng)
	h := 1.0 / float64(n-1)
	op := Poisson3D()
	r, y := grid.New3(n), grid.New3(n)
	op.Residual(nil, r, x, b, h)
	op.Apply(nil, y, x, h)
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			for k := 1; k < n-1; k++ {
				want := b.At3(i, j, k) - y.At3(i, j, k)
				if got := r.At3(i, j, k); math.Abs(got-want) > 1e-10*math.Max(1, math.Abs(want)) {
					t.Fatalf("residual(%d,%d,%d) = %v, want %v", i, j, k, got, want)
				}
			}
		}
	}
	// The norm helper summarizes the same residual.
	var sum float64
	rd := r.Data()
	for i := range rd {
		sum += rd[i] * rd[i]
	}
	if norm := op.ResidualNorm(nil, x, b, h); math.Abs(norm-math.Sqrt(sum)) > 1e-9*math.Max(1, norm) {
		t.Fatalf("ResidualNorm %v != ‖r‖ %v", norm, math.Sqrt(sum))
	}
}

// TestSOR3Converges: iterated red-black SOR with ω_opt drives the residual
// of a small 3D problem toward zero.
func TestSOR3Converges(t *testing.T) {
	n := 17
	rng := rand.New(rand.NewSource(3))
	op := Poisson3D()
	x, b := randomState3(n, rng)
	x.ZeroInterior() // boundary data + zero interior guess
	h := 1.0 / float64(n-1)
	r0 := op.ResidualNorm(nil, x, b, h)
	omega := op.OmegaOpt(n)
	for s := 0; s < 200; s++ {
		op.SORSweepRB(nil, x, b, h, omega)
	}
	if r := op.ResidualNorm(nil, x, b, h); r > 1e-8*r0 {
		t.Fatalf("SOR stalled: residual %v of initial %v", r, r0)
	}
}

// TestJacobi3ReducesResidual: one damped-Jacobi sweep must not diverge and
// a few sweeps reduce the residual.
func TestJacobi3ReducesResidual(t *testing.T) {
	n := 9
	rng := rand.New(rand.NewSource(4))
	op := Poisson3D()
	x, b := randomState3(n, rng)
	x.ZeroInterior()
	h := 1.0 / float64(n-1)
	r0 := op.ResidualNorm(nil, x, b, h)
	tmp := grid.New3(n)
	for s := 0; s < 50; s++ {
		op.JacobiSweep(nil, tmp, x, b, h, 2.0/3.0)
		x.CopyFrom(tmp)
	}
	if r := op.ResidualNorm(nil, x, b, h); r > 0.5*r0 {
		t.Fatalf("Jacobi did not reduce the residual: %v of %v", r, r0)
	}
}

// TestSweep3ParallelMatchesSerial: at N=33 (above the 32-plane threshold)
// the pooled kernels must be bit-identical to serial execution.
func TestSweep3ParallelMatchesSerial(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	n := 33
	rng := rand.New(rand.NewSource(5))
	op := Poisson3D()
	x0, b := randomState3(n, rng)
	h := 1.0 / float64(n-1)

	xs, xp := x0.Clone(), x0.Clone()
	for s := 0; s < 3; s++ {
		op.SORSweepRB(nil, xs, b, h, 1.3)
		op.SORSweepRB(pool, xp, b, h, 1.3)
	}
	assertBitIdentical(t, xs, xp, "SOR3")

	js, jp := grid.New3(n), grid.New3(n)
	op.JacobiSweep(nil, js, xs, b, h, 2.0/3.0)
	op.JacobiSweep(pool, jp, xs, b, h, 2.0/3.0)
	assertBitIdentical(t, js, jp, "Jacobi3")

	rs, rp := grid.New3(n), grid.New3(n)
	op.Residual(nil, rs, xs, b, h)
	op.Residual(pool, rp, xs, b, h)
	assertBitIdentical(t, rs, rp, "Residual3")

	as, ap := grid.New3(n), grid.New3(n)
	op.Apply(nil, as, xs, h)
	op.Apply(pool, ap, xs, h)
	assertBitIdentical(t, as, ap, "Apply3")
}

// TestGaussSeidel3Smooths: the lexicographic sweep solves the trivial n=3
// problem (one unknown) exactly in one pass.
func TestGaussSeidel3Smooths(t *testing.T) {
	n := 3
	x, b := grid.New3(n), grid.New3(n)
	b.Set3(1, 1, 1, 6.0)
	h := 0.5
	Poisson3D().GaussSeidelSweep(x, b, h)
	// 6·x/h² = 6 with zero neighbours → x = h² = 0.25.
	if got := x.At3(1, 1, 1); math.Abs(got-0.25) > 1e-15 {
		t.Fatalf("GS3 solved x = %v, want 0.25", got)
	}
}

// TestFamilyPoisson3DMeta covers the enum surface.
func TestFamilyPoisson3DMeta(t *testing.T) {
	if FamilyPoisson3D.String() != "poisson3d" || FamilyPoisson3D.Dim() != 3 {
		t.Fatal("FamilyPoisson3D metadata wrong")
	}
	if FamilyPoisson.Dim() != 2 || FamilyVarCoef.Dim() != 2 {
		t.Fatal("2D families must report Dim 2")
	}
	for _, alias := range []string{"poisson3d", "poisson-3d", "3d", "POISSON3D"} {
		f, err := ParseFamily(alias)
		if err != nil || f != FamilyPoisson3D {
			t.Fatalf("ParseFamily(%q) = %v, %v", alias, f, err)
		}
	}
	op, err := NewOperator(FamilyPoisson3D, 0, 33)
	if err != nil || op != Poisson3D() || op.Dim() != 3 {
		t.Fatalf("NewOperator(poisson3d) = %v, %v", op, err)
	}
	if op.At(17) != op {
		t.Fatal("constant-coefficient 3D operator must be size-independent")
	}
	if op.Coarse() != op {
		t.Fatal("constant-coefficient 3D operator must coarsen to itself")
	}
}

// TestFaceCoefsRejects3D: the 2D-only face-coefficient accessor fails
// loudly for 3D operators.
func TestFaceCoefsRejects3D(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FaceCoefs accepted a 3D operator")
		}
	}()
	Poisson3D().FaceCoefs(1, 1)
}
