package stencil

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"pbmg/internal/grid"
	"pbmg/internal/sched"
)

// Property/fuzz tests for the operator-family kernels. Two invariants hold
// for every family and every coefficient field:
//
//  1. Parallel sweeps are bit-identical to serial sweeps: red-black coloring
//     (and Jacobi's out-of-place update) make all updates within a parallel
//     phase independent, so worker count and scheduling must not change a
//     single bit of the result.
//  2. Apply and Residual agree: residual(x, b) == b − A·x up to
//     floating-point association error, for any x, b, and coefficient field.

// fuzzPool is shared by all fuzz iterations in a worker process; fuzzing
// forks workers, so a per-target pool would leak one per run otherwise.
var (
	fuzzPoolOnce sync.Once
	fuzzPool     *sched.Pool
)

func sharedPool() *sched.Pool {
	fuzzPoolOnce.Do(func() { fuzzPool = sched.NewPool(4) })
	return fuzzPool
}

// fuzzOperator derives an operator family instance of size n from fuzz
// inputs: famSel picks the family, epsRaw (any float) is folded into a
// positive, finite parameter, and seed drives the coefficient field.
func fuzzOperator(n int, famSel uint8, epsRaw float64, seed int64) *Operator {
	eps := epsRaw
	if math.IsNaN(eps) || math.IsInf(eps, 0) {
		eps = 1
	}
	eps = math.Abs(eps)
	eps = 0.01 + math.Mod(eps, 100) // positive, finite, spans 4 decades
	switch famSel % 3 {
	case 0:
		return Poisson()
	case 1:
		return Anisotropic(eps)
	default:
		rng := rand.New(rand.NewSource(seed))
		return VarCoefOperator(randomField(n, math.Min(eps, 4), rng), 0)
	}
}

// FuzzSweepParallelMatchesSerial checks invariant 1 on SOR, Jacobi, and
// Residual at a grid size above the parallel threshold.
func FuzzSweepParallelMatchesSerial(f *testing.F) {
	f.Add(int64(1), uint8(0), 1.0)
	f.Add(int64(2), uint8(1), 0.01)
	f.Add(int64(3), uint8(2), 2.0)
	f.Add(int64(4), uint8(1), 77.7)
	pool := sharedPool()
	const n = 129 // parallelRows engages only for n ≥ 128
	f.Fuzz(func(t *testing.T, seed int64, famSel uint8, epsRaw float64) {
		op := fuzzOperator(n, famSel, epsRaw, seed)
		rng := rand.New(rand.NewSource(seed))
		x0, b := randomState(n, rng)
		h := 1.0 / float64(n-1)

		xs, xp := x0.Clone(), x0.Clone()
		for s := 0; s < 2; s++ {
			op.SORSweepRB(nil, xs, b, h, 1.2)
			op.SORSweepRB(pool, xp, b, h, 1.2)
		}
		assertBitIdentical(t, xs, xp, "SOR")

		js, jp := grid.New(n), grid.New(n)
		op.JacobiSweep(nil, js, xs, b, h, 2.0/3.0)
		op.JacobiSweep(pool, jp, xs, b, h, 2.0/3.0)
		assertBitIdentical(t, js, jp, "Jacobi")

		rs, rp := grid.New(n), grid.New(n)
		op.Residual(nil, rs, xs, b, h)
		op.Residual(pool, rp, xs, b, h)
		assertBitIdentical(t, rs, rp, "Residual")

		as, ap := grid.New(n), grid.New(n)
		op.Apply(nil, as, xs, h)
		op.Apply(pool, ap, xs, h)
		assertBitIdentical(t, as, ap, "Apply")
	})
}

// FuzzApplyResidualConsistency checks invariant 2: the two independently
// written kernels implement the same operator.
func FuzzApplyResidualConsistency(f *testing.F) {
	f.Add(int64(1), uint8(0), 1.0)
	f.Add(int64(2), uint8(1), 0.01)
	f.Add(int64(3), uint8(2), 2.0)
	f.Add(int64(5), uint8(2), 0.5)
	const n = 17
	f.Fuzz(func(t *testing.T, seed int64, famSel uint8, epsRaw float64) {
		op := fuzzOperator(n, famSel, epsRaw, seed)
		rng := rand.New(rand.NewSource(seed))
		x, b := randomState(n, rng)
		h := 1.0 / float64(n-1)

		r := grid.New(n)
		op.Residual(nil, r, x, b, h)
		y := grid.New(n)
		op.Apply(nil, y, x, h)

		// r must equal b − A·x. The kernels associate differently, so allow
		// relative rounding at the magnitude of the operator application.
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				want := b.At(i, j) - y.At(i, j)
				got := r.At(i, j)
				scale := math.Max(1, math.Abs(b.At(i, j))+math.Abs(y.At(i, j)))
				if math.Abs(got-want) > 1e-10*scale {
					t.Fatalf("%v: residual(%d,%d) = %v, want b−A·x = %v (scale %g)",
						op, i, j, got, want, scale)
				}
			}
		}
		// And the norm helper must match the residual grid it summarizes.
		var sum float64
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				sum += r.At(i, j) * r.At(i, j)
			}
		}
		if norm := op.ResidualNorm(nil, x, b, h); math.Abs(norm-math.Sqrt(sum)) > 1e-9*math.Max(1, norm) {
			t.Fatalf("%v: ResidualNorm %v != ‖residual grid‖ %v", op, norm, math.Sqrt(sum))
		}
	})
}

func assertBitIdentical(t *testing.T, a, b *grid.Grid, what string) {
	t.Helper()
	ad, bd := a.Data(), b.Data()
	for k := range ad {
		if math.Float64bits(ad[k]) != math.Float64bits(bd[k]) {
			t.Fatalf("%s: serial and parallel differ at %d: %x vs %x",
				what, k, math.Float64bits(ad[k]), math.Float64bits(bd[k]))
		}
	}
}
