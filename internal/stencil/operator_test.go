package stencil

import (
	"math"
	"math/rand"
	"testing"

	"pbmg/internal/grid"
)

// randomField returns a positive nodal coefficient field with entries
// exp(u), u uniform in [−sigma, sigma].
func randomField(n int, sigma float64, rng *rand.Rand) *grid.Grid {
	c := grid.New(n)
	for i := 0; i < n; i++ {
		row := c.Row(i)
		for j := 0; j < n; j++ {
			row[j] = math.Exp(sigma * (2*rng.Float64() - 1))
		}
	}
	return c
}

// randomState returns random x and b grids with entries in [−1, 1].
func randomState(n int, rng *rand.Rand) (x, b *grid.Grid) {
	x, b = grid.New(n), grid.New(n)
	for i := 0; i < n*n; i++ {
		x.Data()[i] = 2*rng.Float64() - 1
		b.Data()[i] = 2*rng.Float64() - 1
	}
	return x, b
}

func TestParseFamily(t *testing.T) {
	for _, f := range []Family{FamilyPoisson, FamilyAnisotropic, FamilyVarCoef} {
		got, err := ParseFamily(f.String())
		if err != nil || got != f {
			t.Fatalf("ParseFamily(%q) = %v, %v", f.String(), got, err)
		}
	}
	if _, err := ParseFamily("helmholtz"); err == nil {
		t.Fatal("ParseFamily accepted an unknown family")
	}
}

// TestAnisoUnitEpsMatchesPoisson: with ε = 1 the anisotropic stencil is the
// Laplacian, so every kernel must agree with the Poisson fast path up to
// floating-point association differences.
func TestAnisoUnitEpsMatchesPoisson(t *testing.T) {
	n := 33
	rng := rand.New(rand.NewSource(1))
	x0, b := randomState(n, rng)
	h := 1.0 / float64(n-1)
	ops := []*Operator{Poisson(), Anisotropic(1)}

	states := make([]*grid.Grid, 2)
	for k, op := range ops {
		x := x0.Clone()
		for s := 0; s < 5; s++ {
			op.SORSweepRB(nil, x, b, h, 1.3)
		}
		states[k] = x
	}
	assertClose(t, states[0], states[1], 1e-12, "SOR aniso(1) vs poisson")

	r0, r1 := grid.New(n), grid.New(n)
	ops[0].Residual(nil, r0, x0, b, h)
	ops[1].Residual(nil, r1, x0, b, h)
	assertClose(t, r0, r1, 1e-9, "Residual aniso(1) vs poisson")
}

// TestVarCoefUnitFieldMatchesPoisson: with c ≡ 1 the variable-coefficient
// operator is the Laplacian.
func TestVarCoefUnitFieldMatchesPoisson(t *testing.T) {
	n := 17
	one := grid.New(n)
	one.Fill(1)
	op := VarCoefOperator(one, 0)
	rng := rand.New(rand.NewSource(2))
	x0, b := randomState(n, rng)
	h := 1.0 / float64(n-1)

	xp, xv := x0.Clone(), x0.Clone()
	for s := 0; s < 5; s++ {
		Poisson().SORSweepRB(nil, xp, b, h, 1.15)
		op.SORSweepRB(nil, xv, b, h, 1.15)
	}
	assertClose(t, xp, xv, 1e-12, "SOR varcoef(1) vs poisson")

	rp, rv := grid.New(n), grid.New(n)
	Poisson().Residual(nil, rp, x0, b, h)
	op.Residual(nil, rv, x0, b, h)
	assertClose(t, rp, rv, 1e-9, "Residual varcoef(1) vs poisson")

	if d := math.Abs(Poisson().ResidualNorm(nil, x0, b, h) - op.ResidualNorm(nil, x0, b, h)); d > 1e-9 {
		t.Fatalf("ResidualNorm differs by %g", d)
	}
}

// TestCoarsenIsReevaluation: injecting the analytic coefficient field to a
// coarse grid equals building the field at the coarse size directly —
// multigrid nodes coincide across levels.
func TestCoarsenIsReevaluation(t *testing.T) {
	op, err := NewOperator(FamilyVarCoef, 2, 33)
	if err != nil {
		t.Fatal(err)
	}
	coarse := op.Coarse()
	if coarse.Coef().N() != 17 {
		t.Fatalf("coarse field size %d, want 17", coarse.Coef().N())
	}
	want := CoefField(17, 2)
	assertClose(t, coarse.Coef(), want, 1e-14, "injected vs re-evaluated field")
	// Memoized: a second call returns the identical operator.
	if op.Coarse() != coarse {
		t.Fatal("Coarse is not memoized")
	}
	// At walks the hierarchy and bottoms out.
	if op.At(5).Coef().N() != 5 {
		t.Fatal("At(5) did not resolve")
	}
	if Poisson().At(65) != Poisson() {
		t.Fatal("constant operator At should be identity")
	}
}

func TestAtPanicsOnFinerSize(t *testing.T) {
	op, _ := NewOperator(FamilyVarCoef, 1, 17)
	defer func() {
		if recover() == nil {
			t.Fatal("At(33) on a 17-point operator should panic")
		}
	}()
	op.At(33)
}

// TestFaceCoefsSymmetric: the assembled operator is symmetric — each face
// is seen identically from both sides.
func TestFaceCoefsSymmetric(t *testing.T) {
	n := 9
	rng := rand.New(rand.NewSource(3))
	op := VarCoefOperator(randomField(n, 2, rng), 0)
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-2; j++ {
			_, _, _, ce := op.FaceCoefs(i, j)
			_, _, cw, _ := op.FaceCoefs(i, j+1)
			if ce != cw {
				t.Fatalf("east(%d,%d)=%g != west(%d,%d)=%g", i, j, ce, i, j+1, cw)
			}
		}
	}
	for i := 1; i < n-2; i++ {
		for j := 1; j < n-1; j++ {
			_, cs, _, _ := op.FaceCoefs(i, j)
			cn, _, _, _ := op.FaceCoefs(i+1, j)
			if cs != cn {
				t.Fatalf("south(%d,%d)=%g != north(%d,%d)=%g", i, j, cs, i+1, j, cn)
			}
		}
	}
}

// TestOmegaSmoothHeuristics: the per-family in-cycle weights follow their
// documented shapes.
func TestOmegaSmoothHeuristics(t *testing.T) {
	if w := Poisson().OmegaSmooth(); w != OmegaRecurse {
		t.Fatalf("poisson smooth weight %g, want %g", w, OmegaRecurse)
	}
	if w := Anisotropic(1).OmegaSmooth(); math.Abs(w-1.15) > 1e-12 {
		t.Fatalf("aniso(1) smooth weight %g, want 1.15", w)
	}
	strong := Anisotropic(0.01).OmegaSmooth()
	if strong >= Anisotropic(0.5).OmegaSmooth() || strong < 1 {
		t.Fatalf("aniso smooth weight should decay toward 1 with anisotropy, got %g", strong)
	}
	// ε and 1/ε are equally anisotropic.
	if a, b := Anisotropic(0.1).OmegaSmooth(), Anisotropic(10).OmegaSmooth(); math.Abs(a-b) > 1e-12 {
		t.Fatalf("aniso weight not symmetric in ε: %g vs %g", a, b)
	}
}

// TestSORReducesResidualAllFamilies: a handful of sweeps must reduce the
// residual for every family (convergence sanity for the new kernels).
func TestSORReducesResidualAllFamilies(t *testing.T) {
	n := 33
	rng := rand.New(rand.NewSource(4))
	for _, op := range []*Operator{
		Poisson(),
		Anisotropic(0.01),
		Anisotropic(100),
		VarCoefOperator(randomField(n, 2, rng), 0),
	} {
		x, b := randomState(n, rng)
		h := 1.0 / float64(n-1)
		before := op.ResidualNorm(nil, x, b, h)
		for s := 0; s < 50; s++ {
			op.SORSweepRB(nil, x, b, h, op.OmegaSmooth())
		}
		after := op.ResidualNorm(nil, x, b, h)
		if after >= before*0.9 {
			t.Fatalf("%v: residual %g -> %g after 50 sweeps", op, before, after)
		}
	}
}

// TestGaussSeidelMatchesSOROmega1: Gauss-Seidel is SOR with ω = 1 under
// lexicographic ordering; for the red-black kernels the orderings differ,
// so compare the general GS kernel against the Poisson GS kernel instead.
func TestGaussSeidelGeneralMatchesPoisson(t *testing.T) {
	n := 17
	rng := rand.New(rand.NewSource(5))
	x0, b := randomState(n, rng)
	h := 1.0 / float64(n-1)
	one := grid.New(n)
	one.Fill(1)
	op := VarCoefOperator(one, 0)

	xp, xv := x0.Clone(), x0.Clone()
	GaussSeidelSweep(xp, b, h)
	op.GaussSeidelSweep(xv, b, h)
	assertClose(t, xp, xv, 1e-12, "GS varcoef(1) vs poisson")
}

func assertClose(t *testing.T, a, b *grid.Grid, tol float64, what string) {
	t.Helper()
	n := a.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			av, bv := a.At(i, j), b.At(i, j)
			scale := math.Max(1, math.Max(math.Abs(av), math.Abs(bv)))
			if math.Abs(av-bv) > tol*scale {
				t.Fatalf("%s: mismatch at (%d,%d): %v vs %v", what, i, j, av, bv)
			}
		}
	}
}
