// Fused V-cycle upstroke kernels (2D). The unfused upstroke runs four
// full-grid passes after the coarse solve: interpolate the coarse correction
// into a scratch grid, add the scratch grid to x, then the post-smooth's two
// half-sweeps. This file folds the first three into:
//
//   - A correction pass that evaluates each row's interpolated correction
//     into a cache-resident buffer (transfer.InterpRow, the same arithmetic
//     Interpolate runs) and adds it to the row in place — the scratch grid's
//     full-grid write and re-read disappear, and the interpolation is
//     computed exactly once per row.
//   - The red half-sweep. A red point's Gauss-Seidel average reads only
//     black neighbours and its own corrected value, so relaxing red after
//     the correction is complete reads exactly the state the unfused
//     InterpolateAdd + red half-sweep would — the iterate is bit-identical
//     to the oracle for any pool.
//
// Serial execution interleaves the two as a row wavefront — correct(1);
// correct(i), relaxRed(i−1); …; relaxRed(n−2) — so each row is relaxed while
// still cache-resident from its correction and the pair costs a single
// streaming pass. The interleave is exact: relaxing row i−1 reads black
// values in rows i−2..i, all corrected by then, and red corrections never
// feed other reds. Parallel execution keeps two barrier-separated passes,
// matching the strided kernels' chunk-independence contract.
//
// FinishSmooth (the plain black half-sweep) or FinishSmoothWithNorm (the
// black half-sweep with the delta-derived norm reduction extracted from
// SweepWithNorm) completes the post-smoothing pass.
package stencil

import (
	"pbmg/internal/grid"
	"pbmg/internal/sched"
	"pbmg/internal/transfer"
)

// InterpolateCorrectSmooth applies the coarse-grid correction (the d-linear
// interpolation of cx added to x's interior) and runs the post-smooth's red
// half-sweep in the same traversal. Calling FinishSmooth afterwards yields an
// iterate bit-identical to transfer.InterpolateAdd followed by SORSweepRB;
// calling FinishSmoothWithNorm additionally returns the post-sweep residual
// norm exactly as SweepWithNorm computes it. cx must not alias x or b.
func (op *Operator) InterpolateCorrectSmooth(pool *sched.Pool, x, b, cx *grid.Grid, h, omega float64) {
	OpInterpolateCorrectSmooth(op, pool, x, b, cx, h, omega)
}

// OpInterpolateCorrectSmooth is the precision-generic edition of
// Operator.InterpolateCorrectSmooth.
func OpInterpolateCorrectSmooth[T grid.Float](op *Operator, pool *sched.Pool, x, b, cx *grid.G[T], h, omega T) {
	h2 := h * h
	switch op.family {
	case FamilyPoisson:
		interpCorrectRows(pool, x, cx, func(i int) {
			redRelaxRow(x, b, i, h2, omega)
		})
	case FamilyPoisson3D:
		interpCorrectPlanes(pool, x, cx, func(i int) {
			redRelaxPlane3(x, b, i, h2, omega)
		})
	case FamilyAnisotropic:
		eps := T(op.eps)
		invC := 1 / (2 * (eps + 1))
		interpCorrectRows(pool, x, cx, func(i int) {
			redRelaxRowConst(x, b, i, h2, omega, eps, 1, invC)
		})
	default:
		op.checkSize(x.N())
		coef := opCoef[T](op)
		interpCorrectRows(pool, x, cx, func(i int) {
			redRelaxRowVar(x, b, i, h2, omega, coef)
		})
	}
}

// FinishSmooth runs the black half-sweep completing a post-smoothing pass
// started by InterpolateCorrectSmooth. The pair is bit-identical to the
// unfused correction plus one SORSweepRB.
func (op *Operator) FinishSmooth(pool *sched.Pool, x, b *grid.Grid, h, omega float64) {
	OpFinishSmooth(op, pool, x, b, h, omega)
}

// OpFinishSmooth is the precision-generic edition of Operator.FinishSmooth.
func OpFinishSmooth[T grid.Float](op *Operator, pool *sched.Pool, x, b *grid.G[T], h, omega T) {
	h2 := h * h
	switch op.family {
	case FamilyPoisson:
		blackHalfSweep(pool, x, b, h2, omega)
	case FamilyPoisson3D:
		blackHalfSweep3(pool, x, b, h2, omega)
	case FamilyAnisotropic:
		blackHalfSweepConst(pool, x, b, h2, omega, T(op.eps), 1)
	default:
		op.checkSize(x.N())
		blackHalfSweepVar(pool, x, b, h2, omega, opCoef[T](op))
	}
}

// FinishSmoothWithNorm is FinishSmooth fused with the convergence probe: it
// completes the sweep and returns ‖b − T·x‖₂ over interior points, computed
// by the same delta-emission and deterministic per-row reduction as
// SweepWithNorm — InterpolateCorrectSmooth followed by FinishSmoothWithNorm
// returns the same bits as InterpolateAdd followed by SweepWithNorm.
func (op *Operator) FinishSmoothWithNorm(pool *sched.Pool, x, b *grid.Grid, h, omega float64) float64 {
	return OpFinishSmoothWithNorm(op, pool, x, b, h, omega)
}

// OpFinishSmoothWithNorm is the precision-generic edition of
// Operator.FinishSmoothWithNorm. The returned norm is accumulated in float64
// regardless of T.
func OpFinishSmoothWithNorm[T grid.Float](op *Operator, pool *sched.Pool, x, b *grid.G[T], h, omega T) float64 {
	h2 := h * h
	inv := 1 / h2
	switch op.family {
	case FamilyPoisson:
		return finishSweepNorm(pool, x, b, h2, inv, omega, 4*(1-omega)*inv)
	case FamilyPoisson3D:
		return finishSweepNorm3(pool, x, b, h2, inv, omega, 6*(1-omega)*inv)
	case FamilyAnisotropic:
		return finishSweepNormConst(pool, x, b, h2, inv, omega, T(op.eps), 1)
	default:
		op.checkSize(x.N())
		return finishSweepNormVar(pool, x, b, h2, inv, omega, opCoef[T](op))
	}
}

// interpCorrectRows adds the bilinear interpolation of cx to every interior
// row of x (computing each row's correction exactly once) and relaxes the
// red points via redRow. Serial execution runs the row wavefront; parallel
// execution separates the correction and relaxation passes with a barrier,
// so redRow always reads fully corrected rows i−1..i+1.
func interpCorrectRows[T grid.Float](pool *sched.Pool, x, cx *grid.G[T], redRow func(i int)) {
	n := x.N()
	correct := func(buf []T, i int) {
		transfer.InterpRow(buf, cx, i)
		xr := x.Row(i)
		for j := 1; j < n-1; j++ {
			xr[j] += buf[j]
		}
	}
	if pool == nil {
		buf := make([]T, n) //mglint:allow hotalloc — per-upstroke interp correction row buffer, O(n) per V-cycle level
		correct(buf, 1)
		for i := 2; i < n-1; i++ {
			correct(buf, i)
			redRow(i - 1)
		}
		redRow(n - 2)
		return
	}
	parallelRows(pool, n, func(lo, hi int) {
		buf := make([]T, n) //mglint:allow hotalloc — per-chunk interp correction row buffer, O(n) per upstroke
		for i := lo; i < hi; i++ {
			correct(buf, i)
		}
	})
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			redRow(i)
		}
	})
}

// redRelaxRow relaxes the red ((i+j) even) points of row i for the
// Laplacian — SORSweepRB's color-0 half restricted to one row.
func redRelaxRow[T grid.Float](x, b *grid.G[T], i int, h2, omega T) {
	n := x.N()
	xr := x.Row(i)
	up := x.Row(i - 1)
	down := x.Row(i + 1)
	br := b.Row(i)
	for j := 1 + (i+1)%2; j < n-1; j += 2 {
		gs := (up[j] + down[j] + xr[j-1] + xr[j+1] + h2*br[j]) * 0.25
		xr[j] += omega * (gs - xr[j])
	}
}

// redRelaxRowConst is redRelaxRow for a constant-coefficient stencil.
func redRelaxRowConst[T grid.Float](x, b *grid.G[T], i int, h2, omega, cx, cy, invC T) {
	n := x.N()
	xr := x.Row(i)
	up := x.Row(i - 1)
	down := x.Row(i + 1)
	br := b.Row(i)
	for j := 1 + (i+1)%2; j < n-1; j += 2 {
		gs := (cy*(up[j]+down[j]) + cx*(xr[j-1]+xr[j+1]) + h2*br[j]) * invC
		xr[j] += omega * (gs - xr[j])
	}
}

// redRelaxRowVar is redRelaxRow for a variable-coefficient stencil.
func redRelaxRowVar[T grid.Float](x, b *grid.G[T], i int, h2, omega T, c *grid.G[T]) {
	n := x.N()
	xr := x.Row(i)
	up := x.Row(i - 1)
	down := x.Row(i + 1)
	br := b.Row(i)
	cr := c.Row(i)
	cu := c.Row(i - 1)
	cd := c.Row(i + 1)
	for j := 1 + (i+1)%2; j < n-1; j += 2 {
		cc := cr[j]
		cn := 0.5 * (cc + cu[j])
		cs := 0.5 * (cc + cd[j])
		cw := 0.5 * (cc + cr[j-1])
		ce := 0.5 * (cc + cr[j+1])
		gs := (cn*up[j] + cs*down[j] + cw*xr[j-1] + ce*xr[j+1] + h2*br[j]) / (cn + cs + cw + ce)
		xr[j] += omega * (gs - xr[j])
	}
}

// blackHalfSweep is SORSweepRB's color-1 half-sweep for the Laplacian.
func blackHalfSweep[T grid.Float](pool *sched.Pool, x, b *grid.G[T], h2, omega T) {
	n := x.N()
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			for j := 1 + i%2; j < n-1; j += 2 {
				gs := (up[j] + down[j] + xr[j-1] + xr[j+1] + h2*br[j]) * 0.25
				xr[j] += omega * (gs - xr[j])
			}
		}
	})
}

// blackHalfSweepConst is the color-1 half-sweep for a constant-coefficient
// stencil.
func blackHalfSweepConst[T grid.Float](pool *sched.Pool, x, b *grid.G[T], h2, omega, cx, cy T) {
	n := x.N()
	invC := 1 / (2 * (cx + cy))
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			for j := 1 + i%2; j < n-1; j += 2 {
				gs := (cy*(up[j]+down[j]) + cx*(xr[j-1]+xr[j+1]) + h2*br[j]) * invC
				xr[j] += omega * (gs - xr[j])
			}
		}
	})
}

// blackHalfSweepVar is the color-1 half-sweep for a variable-coefficient
// stencil.
func blackHalfSweepVar[T grid.Float](pool *sched.Pool, x, b *grid.G[T], h2, omega T, c *grid.G[T]) {
	n := x.N()
	parallelRows(pool, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xr := x.Row(i)
			up := x.Row(i - 1)
			down := x.Row(i + 1)
			br := b.Row(i)
			cr := c.Row(i)
			cu := c.Row(i - 1)
			cd := c.Row(i + 1)
			for j := 1 + i%2; j < n-1; j += 2 {
				cc := cr[j]
				cn := 0.5 * (cc + cu[j])
				cs := 0.5 * (cc + cd[j])
				cw := 0.5 * (cc + cr[j-1])
				ce := 0.5 * (cc + cr[j+1])
				gs := (cn*up[j] + cs*down[j] + cw*xr[j-1] + ce*xr[j+1] + h2*br[j]) / (cn + cs + cw + ce)
				xr[j] += omega * (gs - xr[j])
			}
		}
	})
}
