package stencil

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"pbmg/internal/grid"
	"pbmg/internal/sched"
	"pbmg/internal/transfer"
)

// Equivalence suite for the fused single-pass kernels, run for every
// operator family × {2D, 3D} × {serial, 8-goroutine pool} against the
// unfused oracle kernels. The contract under test:
//
//   - the iterate x after SmoothResidual / SweepWithNorm is bit-identical
//     to SORSweepRB (the sweeps perform the same updates in the same order);
//   - ResidualRestrict is bit-identical to Residual followed by Restrict
//     (it consumes the same residual bits through a rolling window);
//   - the residual grid from SmoothResidual is bit-identical to the oracle
//     at red points (re-evaluated from final values with the oracle's
//     expression) and within 1e-12 of the scale at black points (derived
//     from the update delta, an algebraically exact rearrangement);
//   - norms are deterministic: a nil pool and any worker count produce
//     bit-identical sums (fixed per-row/per-plane chunking).

type fusedCase struct {
	name string
	mk   func(n int) *Operator
	ns   []int // one below and one above the parallel points gate
	dim  int
}

func fusedCases() []fusedCase {
	return []fusedCase{
		{"poisson", func(int) *Operator { return Poisson() }, []int{65, 129}, 2},
		{"aniso-0.01", func(int) *Operator { return Anisotropic(0.01) }, []int{65, 129}, 2},
		{"aniso-5", func(int) *Operator { return Anisotropic(5) }, []int{65, 129}, 2},
		{"varcoef-2", func(n int) *Operator { return VarCoefOperator(CoefField(n, 2), 2) }, []int{65, 129}, 2},
		{"poisson3d", func(int) *Operator { return Poisson3D() }, []int{17, 33}, 3},
	}
}

func randomStateDim(dim, n int, rng *rand.Rand) (x, b *grid.Grid) {
	if dim == 3 {
		return randomState3(n, rng)
	}
	return randomState(n, rng)
}

// forEachInterior visits every interior point of g (2D or 3D) with its
// red/black parity and value.
func forEachInterior(g *grid.Grid, visit func(idx int, red bool, v float64)) {
	n := g.N()
	if g.Dim() == 3 {
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				row := g.Row3(i, j)
				for k := 1; k < n-1; k++ {
					visit((i*n+j)*n+k, (i+j+k)%2 == 0, row[k])
				}
			}
		}
		return
	}
	for i := 1; i < n-1; i++ {
		row := g.Row(i)
		for j := 1; j < n-1; j++ {
			visit(i*n+j, (i+j)%2 == 0, row[j])
		}
	}
}

// pools under test: the serial path and the issue's 8-goroutine pool.
func withPools(t *testing.T, fn func(t *testing.T, pool *sched.Pool)) {
	t.Run("serial", func(t *testing.T) { fn(t, nil) })
	t.Run("pool-8", func(t *testing.T) {
		pool := sched.NewPool(8)
		defer pool.Close()
		fn(t, pool)
	})
}

func TestSmoothResidualMatchesOracle(t *testing.T) {
	for _, tc := range fusedCases() {
		for _, n := range tc.ns {
			t.Run(fmt.Sprintf("%s/n%d", tc.name, n), func(t *testing.T) {
				op := tc.mk(n)
				h := 1.0 / float64(n-1)
				omega := op.OmegaSmooth()
				rng := rand.New(rand.NewSource(int64(n)))
				x0, b := randomStateDim(tc.dim, n, rng)

				// Oracle: unfused sweep, then unfused residual (serial).
				xo := x0.Clone()
				op.SORSweepRB(nil, xo, b, h, omega)
				ro := grid.NewDim(tc.dim, n)
				op.Residual(nil, ro, xo, b, h)
				scale := math.Max(1, grid.MaxAbsInterior(ro))

				withPools(t, func(t *testing.T, pool *sched.Pool) {
					xf := x0.Clone()
					rf := grid.NewDim(tc.dim, n)
					// Poison rf's interior to catch unwritten points.
					rf.Fill(math.NaN())
					op.SmoothResidual(pool, xf, b, rf, h, omega)
					assertBitIdentical(t, xo, xf, "SmoothResidual iterate")
					rod, rfd := ro.Data(), rf.Data()
					forEachInterior(ro, func(idx int, red bool, _ float64) {
						if red {
							if math.Float64bits(rod[idx]) != math.Float64bits(rfd[idx]) {
								t.Fatalf("red residual differs at %d: %v vs %v", idx, rod[idx], rfd[idx])
							}
							return
						}
						if d := math.Abs(rod[idx] - rfd[idx]); !(d <= 1e-12*scale) {
							t.Fatalf("black residual differs at %d by %g (scale %g): %v vs %v",
								idx, d, scale, rod[idx], rfd[idx])
						}
					})
					// Boundary must be zeroed like the oracle's.
					rf2 := rf.Clone()
					rf2.ZeroBoundary()
					assertBitIdentical(t, rf, rf2, "SmoothResidual boundary")
				})
			})
		}
	}
}

// assertCoarseClose checks a fused restriction against the oracle chain:
// same 9/27-point weights under a different (separable) summation order, so
// agreement is to floating-point association, scaled by the residual data.
func assertCoarseClose(t *testing.T, oracle, fused *grid.Grid, scale float64, what string) {
	t.Helper()
	od, fd := oracle.Data(), fused.Data()
	for k := range od {
		if d := math.Abs(od[k] - fd[k]); !(d <= 1e-12*scale) {
			t.Fatalf("%s: coarse value differs at %d by %g (scale %g): %v vs %v",
				what, k, d, scale, od[k], fd[k])
		}
	}
}

func TestResidualRestrictMatchesOracle(t *testing.T) {
	for _, tc := range fusedCases() {
		for _, n := range tc.ns {
			t.Run(fmt.Sprintf("%s/n%d", tc.name, n), func(t *testing.T) {
				op := tc.mk(n)
				h := 1.0 / float64(n-1)
				rng := rand.New(rand.NewSource(int64(n) + 7))
				x, b := randomStateDim(tc.dim, n, rng)
				nc := grid.Coarsen(n)

				r := grid.NewDim(tc.dim, n)
				op.Residual(nil, r, x, b, h)
				scale := math.Max(1, grid.MaxAbsInterior(r))
				co := grid.NewDim(tc.dim, nc)
				transfer.Restrict(nil, co, r)

				var serial *grid.Grid
				withPools(t, func(t *testing.T, pool *sched.Pool) {
					cf := grid.NewDim(tc.dim, nc)
					cf.Fill(math.NaN())
					op.ResidualRestrict(pool, cf, x, b, h)
					assertCoarseClose(t, co, cf, scale, "ResidualRestrict")
					// Chunking is fixed, so serial and pooled runs agree
					// bit for bit.
					if pool == nil {
						serial = cf
					} else {
						assertBitIdentical(t, serial, cf, "ResidualRestrict serial-vs-pool")
					}
				})
			})
		}
	}
}

func TestSmoothResidualRestrictMatchesOracle(t *testing.T) {
	for _, tc := range fusedCases() {
		for _, n := range tc.ns {
			t.Run(fmt.Sprintf("%s/n%d", tc.name, n), func(t *testing.T) {
				op := tc.mk(n)
				h := 1.0 / float64(n-1)
				omega := op.OmegaSmooth()
				rng := rand.New(rand.NewSource(int64(n) + 43))
				x0, b := randomStateDim(tc.dim, n, rng)
				nc := grid.Coarsen(n)

				// Oracle downstroke: sweep, residual, restrict as separate
				// serial passes.
				xo := x0.Clone()
				op.SORSweepRB(nil, xo, b, h, omega)
				ro := grid.NewDim(tc.dim, n)
				op.Residual(nil, ro, xo, b, h)
				scale := math.Max(1, grid.MaxAbsInterior(ro))
				co := grid.NewDim(tc.dim, nc)
				transfer.Restrict(nil, co, ro)

				var serial *grid.Grid
				withPools(t, func(t *testing.T, pool *sched.Pool) {
					xf := x0.Clone()
					rf := grid.NewDim(tc.dim, n)
					cf := grid.NewDim(tc.dim, nc)
					cf.Fill(math.NaN())
					op.SmoothResidualRestrict(pool, cf, xf, b, rf, h, omega)
					assertBitIdentical(t, xo, xf, "SmoothResidualRestrict iterate")
					assertCoarseClose(t, co, cf, scale, "SmoothResidualRestrict")
					if pool == nil {
						serial = cf
					} else {
						assertBitIdentical(t, serial, cf, "SmoothResidualRestrict serial-vs-pool")
					}
				})
			})
		}
	}
}

func TestSweepWithNormMatchesOracle(t *testing.T) {
	for _, tc := range fusedCases() {
		for _, n := range tc.ns {
			t.Run(fmt.Sprintf("%s/n%d", tc.name, n), func(t *testing.T) {
				op := tc.mk(n)
				h := 1.0 / float64(n-1)
				omega := op.OmegaSmooth()
				rng := rand.New(rand.NewSource(int64(n) + 13))
				x0, b := randomStateDim(tc.dim, n, rng)

				xo := x0.Clone()
				op.SORSweepRB(nil, xo, b, h, omega)
				ro := grid.NewDim(tc.dim, n)
				op.Residual(nil, ro, xo, b, h)
				want := grid.L2Interior(ro)

				var serialNorm float64
				withPools(t, func(t *testing.T, pool *sched.Pool) {
					xf := x0.Clone()
					norm := op.SweepWithNorm(pool, xf, b, h, omega)
					assertBitIdentical(t, xo, xf, "SweepWithNorm iterate")
					if d := math.Abs(norm - want); !(d <= 1e-12*math.Max(1, want)) {
						t.Fatalf("norm %v, oracle %v (diff %g)", norm, want, d)
					}
					// Fixed chunking: serial and pool sums are bit-identical.
					if pool == nil {
						serialNorm = norm
					} else if math.Float64bits(norm) != math.Float64bits(serialNorm) {
						t.Fatalf("pool norm %x differs from serial norm %x",
							math.Float64bits(norm), math.Float64bits(serialNorm))
					}
				})
			})
		}
	}
}

func TestResidualNormParallelDeterministic(t *testing.T) {
	for _, tc := range fusedCases() {
		for _, n := range tc.ns {
			t.Run(fmt.Sprintf("%s/n%d", tc.name, n), func(t *testing.T) {
				op := tc.mk(n)
				h := 1.0 / float64(n-1)
				rng := rand.New(rand.NewSource(int64(n) + 29))
				x, b := randomStateDim(tc.dim, n, rng)

				serial := op.ResidualNorm(nil, x, b, h)
				pool := sched.NewPool(8)
				defer pool.Close()
				par := op.ResidualNorm(pool, x, b, h)
				if math.Float64bits(serial) != math.Float64bits(par) {
					t.Fatalf("parallel norm %x != serial norm %x",
						math.Float64bits(par), math.Float64bits(serial))
				}
				// And both agree with the residual grid they summarize.
				r := grid.NewDim(tc.dim, n)
				op.Residual(nil, r, x, b, h)
				want := grid.L2Interior(r)
				if d := math.Abs(serial - want); !(d <= 1e-12*math.Max(1, want)) {
					t.Fatalf("norm %v, ‖residual grid‖ %v (diff %g)", serial, want, d)
				}
				// ... and with the legacy single-accumulator oracle, where
				// one exists for the family.
				oracle := math.NaN()
				switch op.Family() {
				case FamilyPoisson:
					oracle = ResidualNorm(x, b, h)
				case FamilyAnisotropic:
					oracle = residualNormConst(x, b, h, op.Eps(), 1)
				case FamilyPoisson3D:
					oracle = residualNorm3(x, b, h)
				}
				if !math.IsNaN(oracle) {
					if d := math.Abs(serial - oracle); !(d <= 1e-12*math.Max(1, oracle)) {
						t.Fatalf("norm %v, legacy oracle %v (diff %g)", serial, oracle, d)
					}
				}
			})
		}
	}
}

// FuzzFusedMatchesUnfused drives the fused 2D kernels against the oracle on
// random states, families, parameters, and relaxation weights.
func FuzzFusedMatchesUnfused(f *testing.F) {
	f.Add(int64(1), uint8(0), 1.0, 1.15)
	f.Add(int64(2), uint8(1), 0.01, 1.0)
	f.Add(int64(3), uint8(2), 2.0, 1.6)
	pool := sharedPool()
	const n = 129
	f.Fuzz(func(t *testing.T, seed int64, famSel uint8, epsRaw, omegaRaw float64) {
		op := fuzzOperator(n, famSel, epsRaw, seed)
		omega := omegaRaw
		if math.IsNaN(omega) || math.IsInf(omega, 0) {
			omega = 1.15
		}
		omega = 0.05 + math.Mod(math.Abs(omega), 1.9) // (0, 2): SOR-stable
		rng := rand.New(rand.NewSource(seed))
		x0, b := randomState(n, rng)
		h := 1.0 / float64(n-1)

		xo := x0.Clone()
		op.SORSweepRB(nil, xo, b, h, omega)
		ro := grid.New(n)
		op.Residual(nil, ro, xo, b, h)
		scale := math.Max(1, grid.MaxAbsInterior(ro))

		xf := x0.Clone()
		rf := grid.New(n)
		op.SmoothResidual(pool, xf, b, rf, h, omega)
		assertBitIdentical(t, xo, xf, "SmoothResidual iterate")
		rod, rfd := ro.Data(), rf.Data()
		forEachInterior(ro, func(idx int, red bool, _ float64) {
			if red && math.Float64bits(rod[idx]) != math.Float64bits(rfd[idx]) {
				t.Fatalf("%v: red residual differs at %d", op, idx)
			}
			if d := math.Abs(rod[idx] - rfd[idx]); !(d <= 1e-12*scale) {
				t.Fatalf("%v: residual differs at %d by %g (scale %g)", op, idx, d, scale)
			}
		})

		nc := grid.Coarsen(n)
		co, cf := grid.New(nc), grid.New(nc)
		transfer.Restrict(nil, co, ro)
		op.ResidualRestrict(pool, cf, xo, b, h)
		assertCoarseClose(t, co, cf, scale, "ResidualRestrict")

		xc := x0.Clone()
		rc, cc := grid.New(n), grid.New(nc)
		op.SmoothResidualRestrict(pool, cc, xc, b, rc, h, omega)
		assertBitIdentical(t, xo, xc, "SmoothResidualRestrict iterate")
		assertCoarseClose(t, co, cc, scale, "SmoothResidualRestrict")

		xn := x0.Clone()
		norm := op.SweepWithNorm(pool, xn, b, h, omega)
		assertBitIdentical(t, xo, xn, "SweepWithNorm iterate")
		want := grid.L2Interior(ro)
		if d := math.Abs(norm - want); !(d <= 1e-12*math.Max(1, want)) {
			t.Fatalf("%v: SweepWithNorm %v, oracle %v", op, norm, want)
		}
	})
}

// Fuzz3DFusedMatchesUnfused is the 3D counterpart at the acceptance size.
func Fuzz3DFusedMatchesUnfused(f *testing.F) {
	f.Add(int64(1), 1.15)
	f.Add(int64(2), 1.0)
	f.Add(int64(3), 1.6)
	pool := sharedPool()
	const n = 33
	f.Fuzz(func(t *testing.T, seed int64, omegaRaw float64) {
		op := Poisson3D()
		omega := omegaRaw
		if math.IsNaN(omega) || math.IsInf(omega, 0) {
			omega = 1.15
		}
		omega = 0.05 + math.Mod(math.Abs(omega), 1.9)
		rng := rand.New(rand.NewSource(seed))
		x0, b := randomState3(n, rng)
		h := 1.0 / float64(n-1)

		xo := x0.Clone()
		op.SORSweepRB(nil, xo, b, h, omega)
		ro := grid.New3(n)
		op.Residual(nil, ro, xo, b, h)
		scale := math.Max(1, grid.MaxAbsInterior(ro))

		xf := x0.Clone()
		rf := grid.New3(n)
		op.SmoothResidual(pool, xf, b, rf, h, omega)
		assertBitIdentical(t, xo, xf, "SmoothResidual iterate")
		rod, rfd := ro.Data(), rf.Data()
		forEachInterior(ro, func(idx int, red bool, _ float64) {
			if red && math.Float64bits(rod[idx]) != math.Float64bits(rfd[idx]) {
				t.Fatalf("red residual differs at %d", idx)
			}
			if d := math.Abs(rod[idx] - rfd[idx]); !(d <= 1e-12*scale) {
				t.Fatalf("residual differs at %d by %g (scale %g)", idx, d, scale)
			}
		})

		nc := grid.Coarsen(n)
		co, cf := grid.New3(nc), grid.New3(nc)
		transfer.Restrict(nil, co, ro)
		op.ResidualRestrict(pool, cf, xo, b, h)
		assertCoarseClose(t, co, cf, scale, "ResidualRestrict")

		xc := x0.Clone()
		rc, cc := grid.New3(n), grid.New3(nc)
		op.SmoothResidualRestrict(pool, cc, xc, b, rc, h, omega)
		assertBitIdentical(t, xo, xc, "SmoothResidualRestrict iterate")
		assertCoarseClose(t, co, cc, scale, "SmoothResidualRestrict")

		xn := x0.Clone()
		norm := op.SweepWithNorm(pool, xn, b, h, omega)
		assertBitIdentical(t, xo, xn, "SweepWithNorm iterate")
		want := grid.L2Interior(ro)
		if d := math.Abs(norm - want); !(d <= 1e-12*math.Max(1, want)) {
			t.Fatalf("SweepWithNorm %v, oracle %v", norm, want)
		}
	})
}
