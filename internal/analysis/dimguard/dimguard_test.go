package dimguard_test

import (
	"testing"

	"pbmg/internal/analysis/atest"
	"pbmg/internal/analysis/dimguard"
)

func TestDimguard(t *testing.T) {
	atest.Run(t, "testdata", dimguard.Analyzer, "cycle")
}
