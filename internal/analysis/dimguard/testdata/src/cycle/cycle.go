// Package cycle is the dimguard fixture proper: dimension-mismatched
// accessor calls that today panic at runtime, caught statically when the
// constructor is visible in the same function.
package cycle

import (
	"grid"
	"transfer"
)

// Mismatch2DAccessor: a 3D grid through a 2D-only accessor.
func Mismatch2DAccessor() float64 {
	g := grid.New3(9)
	return g.At(1, 1) // want "2D-only At"
}

// Mismatch3DAccessor: a 2D grid through a 3D-only accessor.
func Mismatch3DAccessor() []float64 {
	g := grid.New(9)
	return g.Row3(1, 1) // want "3D-only Row3"
}

// MismatchNewDim: the dimension is a constant argument, still decidable.
func MismatchNewDim() {
	g := grid.NewDim(3, 9)
	g.Set(1, 1, 0) // want "2D-only Set"
}

// MatchedOK: accessors agreeing with the constructed dimension.
func MatchedOK() float64 {
	g2 := grid.New(9)
	g3 := grid.New3(9)
	g2.Set(1, 1, g3.At3(1, 1, 1))
	return g2.At(1, 1)
}

// ReassignedOK: a flow join stops the tracking, no finding either way.
func ReassignedOK(use3 bool) float64 {
	g := grid.New(9)
	if use3 {
		g = grid.New3(9)
	}
	return g.At3(1, 1, 1)
}

// DynamicDimOK: a non-constant NewDim argument is not tracked.
func DynamicDimOK(dim int) float64 {
	g := grid.NewDim(dim, 9)
	return g.At(1, 1)
}

// CoefMismatch: 3D grids into the 2D-only transfer.RestrictCoef.
func CoefMismatch() {
	c := grid.New3(5)
	f := grid.New3(9)
	transfer.RestrictCoef(c, f) // want "transfer.RestrictCoef" "transfer.RestrictCoef"
}

// CoefOK: 2D grids into RestrictCoef.
func CoefOK() {
	c := grid.New(5)
	f := grid.New(9)
	transfer.RestrictCoef(c, f)
}

// Allowed: the annotation suppresses a deliberate mismatch (fixture use).
func Allowed() float64 {
	g := grid.New3(9)
	return g.At(1, 1) //mglint:allow dimguard — fixture: exercising the runtime guard
}
