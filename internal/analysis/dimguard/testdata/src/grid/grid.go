// Package grid is a dimguard fixture dependency: the constructor and
// accessor surface of the real grid package, with the same 2D/3D split.
package grid

type G struct {
	dim, n int
	data   []float64
}

func New(n int) *G                    { return &G{dim: 2, n: n} }
func New3(n int) *G                   { return &G{dim: 3, n: n} }
func NewDim(dim, n int) *G            { return &G{dim: dim, n: n} }
func FromSlice(n int, s []float64) *G { return &G{dim: 2, n: n, data: s} }

func (g *G) At(i, j int) float64     { return 0 }
func (g *G) Set(i, j int, v float64) {}
func (g *G) Row(i int) []float64     { return nil }

func (g *G) At3(i, j, k int) float64     { return 0 }
func (g *G) Set3(i, j, k int, v float64) {}
func (g *G) Row3(i, j int) []float64     { return nil }
func (g *G) Plane(i int) []float64       { return nil }

func (g *G) N() int   { return g.n }
func (g *G) Dim() int { return g.dim }
