// Package transfer is a dimguard fixture dependency: RestrictCoef is
// 2D-only by contract, checked as a callee.
package transfer

import "grid"

func RestrictCoef(coarse, fine *grid.G) {}
