// Package dimguard defines an analyzer that turns the grid package's
// runtime dimension panics into compile-time findings. grid.G is one flat
// type for 2D and 3D (PR 3: dimension is data, not architecture), so the
// 2D-only accessors (At, Set, Row) and the 3D-only ones (At3, Set3, Row3,
// Plane) guard themselves with mustDim panics — a mismatch today costs a
// production crash. When the creating constructor is visible in the same
// function, the mismatch is statically decidable: a value built by
// grid.New3(n) or grid.NewDim(3, …) flowing into At/Row is a bug at
// compile time, not at solve time. transfer.RestrictCoef is 2D-only the
// same way and is checked as a callee.
//
// The analysis is intentionally intra-procedural and single-assignment: a
// variable is tracked only when its sole assignment in the function is a
// dimension-constant grid constructor, so reassignments and flow joins
// never produce false positives.
package dimguard

import (
	"go/ast"
	"go/constant"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"pbmg/internal/analysis/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name:     "dimguard",
	Doc:      "2D-only grid accessors (At/Set/Row, transfer.RestrictCoef) applied to grids built by New3/NewDim(3,…) — and vice versa — are compile-time findings, not runtime panics",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// accessorDim maps grid accessor method names to the dimension their
// mustDim guard requires.
var accessorDim = map[string]int{
	"At": 2, "Set": 2, "Row": 2,
	"At3": 3, "Set3": 3, "Row3": 3, "Plane": 3,
}

func run(pass *analysis.Pass) (interface{}, error) {
	allow := lintutil.NewAllowIndex(pass, "dimguard")
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || lintutil.IsTestFile(pass.Fset, fd.Pos()) {
			return
		}
		checkFunc(pass, allow, fd)
	})
	return nil, nil
}

func checkFunc(pass *analysis.Pass, allow *lintutil.AllowIndex, fd *ast.FuncDecl) {
	// Pass 1: candidate vars whose defining assignment is a
	// dimension-constant grid constructor, and a count of all writes to
	// each object so reassigned vars drop out.
	dims := make(map[types.Object]int)    // object -> constructed dimension
	writes := make(map[types.Object]int)  // object -> number of assignments
	ctor := make(map[types.Object]string) // object -> constructor name (diagnostics)
	record := func(id *ast.Ident, rhs ast.Expr) {
		if id.Name == "_" {
			return
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			return
		}
		writes[obj]++
		if rhs == nil {
			return
		}
		if dim, name, ok := gridCtorDim(pass.TypesInfo, rhs); ok {
			dims[obj] = dim
			ctor[obj] = name
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				var rhs ast.Expr
				if len(x.Rhs) == len(x.Lhs) {
					rhs = x.Rhs[i]
				}
				record(id, rhs)
			}
		case *ast.ValueSpec: // var x = grid.New3(n)
			for i, id := range x.Names {
				var rhs ast.Expr
				if len(x.Values) == len(x.Names) {
					rhs = x.Values[i]
				}
				record(id, rhs)
			}
		}
		return true
	})
	for obj := range dims {
		if writes[obj] != 1 {
			delete(dims, obj) // reassigned: flow join, stop tracking
		}
	}
	if len(dims) == 0 {
		return
	}

	// Pass 2: accessor calls on tracked values.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			want, isAccessor := accessorDim[fun.Sel.Name]
			if !isAccessor {
				// transfer.RestrictCoef(dst, src): 2D-only by contract.
				if fun.Sel.Name == "RestrictCoef" && isTransferFunc(pass.TypesInfo, fun) {
					for _, arg := range call.Args {
						reportMismatch(pass, allow, dims, ctor, arg, 2, "transfer.RestrictCoef")
					}
				}
				return true
			}
			if !isGridMethod(pass.TypesInfo, fun) {
				return true
			}
			reportMismatch(pass, allow, dims, ctor, fun.X, want, fun.Sel.Name)
		}
		return true
	})
}

func reportMismatch(pass *analysis.Pass, allow *lintutil.AllowIndex, dims map[types.Object]int, ctor map[types.Object]string, recv ast.Expr, want int, accessor string) {
	id, ok := ast.Unparen(recv).(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.TypesInfo.ObjectOf(id)
	got, tracked := dims[obj]
	if !tracked || got == want || allow.Allowed(recv.Pos()) {
		return
	}
	pass.Reportf(recv.Pos(), "dimguard: %dD-only %s on %q, which %s constructed as a %dD grid — this panics at runtime (mustDim)",
		want, accessor, id.Name, ctor[obj], got)
}

// gridCtorDim recognizes grid constructors with a statically known
// dimension: New (2), New3 (3), NewDim/NewOf with a constant first
// argument.
func gridCtorDim(info *types.Info, rhs ast.Expr) (int, string, bool) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return 0, "", false
	}
	fun := ast.Unparen(call.Fun)
	if ix, ok := fun.(*ast.IndexExpr); ok {
		fun = ix.X
	} else if ix, ok := fun.(*ast.IndexListExpr); ok {
		fun = ix.X
	}
	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[f]
	case *ast.SelectorExpr:
		obj = info.Uses[f.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || !lintutil.PkgInScope(fn.Pkg().Path(), "grid") {
		return 0, "", false
	}
	switch fn.Name() {
	case "New", "FromSlice":
		return 2, "grid." + fn.Name(), true
	case "New3":
		return 3, "grid.New3", true
	case "NewDim", "NewOf":
		if len(call.Args) == 0 {
			return 0, "", false
		}
		tv, ok := info.Types[call.Args[0]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
			return 0, "", false
		}
		if d, ok := constant.Int64Val(tv.Value); ok && (d == 2 || d == 3) {
			return int(d), "grid." + fn.Name(), true
		}
	}
	return 0, "", false
}

// isGridMethod reports whether the selector resolves to a method on the
// grid package's G type.
func isGridMethod(info *types.Info, sel *ast.SelectorExpr) bool {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return lintutil.PkgInScope(fn.Pkg().Path(), "grid")
}

// isTransferFunc reports whether the selector resolves to a function in
// the transfer package.
func isTransferFunc(info *types.Info, sel *ast.SelectorExpr) bool {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && lintutil.PkgInScope(fn.Pkg().Path(), "transfer")
}
