// Package stencil is a hotalloc fixture: a miniature kernel layer whose
// root-named functions exercise every allocation class the analyzer flags
// and every exemption it grants.
package stencil

import "fmt"

type G struct {
	data []float64
	n    int
}

func (g *G) Row(i int) []float64 { return g.data[i*g.n : (i+1)*g.n] }

// SweepRed is a kernel root: direct allocations inside it are findings.
func SweepRed(g *G) {
	buf := make([]float64, g.n) // want "hotalloc: make call"
	_ = buf
	tmp := new(G) // want "hotalloc: new call"
	_ = tmp
	s := []float64{1, 2} // want "hotalloc: slice literal allocation"
	s = append(s, 3)     // want "hotalloc: append call"
	_ = s
	m := map[int]int{} // want "hotalloc: map literal allocation"
	_ = m
}

// SweepBlack reaches helper through the intra-package call graph, so
// helper's allocation is a finding attributed to this root.
func SweepBlack(g *G) { helper(g) }

func helper(g *G) {
	_ = make([]float64, 1) // want "hotalloc: make call"
}

// OpResidual returns its row closure: a per-invocation closure allocation.
func OpResidual(g *G) func(int) {
	return func(i int) { _ = g.Row(i) } // want "hotalloc: closure allocation"
}

// SweepLocal binds its closure to a local and calls it in place: the
// literal stays on the stack and is not flagged.
func SweepLocal(g *G) {
	f := func(i int) { _ = g.Row(i) }
	f(0)
}

// ResidualNorm calls fmt outside a panic: boxing its operands allocates.
func ResidualNorm(g *G) {
	fmt.Println(g.n) // want "hotalloc: fmt.Println call"
}

// SweepGuarded formats only inside a panic call: guard paths are cold and
// exempt.
func SweepGuarded(g *G) {
	if g.n < 3 {
		panic(fmt.Sprintf("stencil: side %d too small", g.n))
	}
}

// NormBox converts a concrete float to an interface: a boxing allocation.
// The any(x).(Y) probe two lines later is compiler-resolved and exempt.
func NormBox(g *G, x float64) any {
	v := any(x) // want "hotalloc: boxing conversion to interface"
	if f, ok := any(x).(float64); ok {
		_ = f
	}
	return v
}

// Scale converts to its type parameter: instantiates concrete, no boxing.
func Scale[T float64 | float32](v float64) T { return T(v) }

// Pack carries an allow annotation: suppressed with a recorded reason.
func Pack(g *G) {
	b := make([]float64, 4) //mglint:allow hotalloc — fixture: sanctioned setup buffer
	_ = b
}

// setup is not reachable from any kernel root, so it may allocate freely.
func setup(n int) *G {
	return &G{data: make([]float64, n*n), n: n}
}
