package hotalloc_test

import (
	"testing"

	"pbmg/internal/analysis/atest"
	"pbmg/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	atest.Run(t, "testdata", hotalloc.Analyzer, "stencil")
}
