// Package hotalloc defines an analyzer that forbids allocation in the
// kernel hot paths. The repo's performance contract (README "Performance",
// PR 1's scratch arena, PR 6's split buffers) is that steady-state sweeps,
// residuals, transfers, and fused cycle kernels are allocation-free: all
// scratch is checked out of pooled arenas, so a million-solve serving
// process performs zero per-solve garbage. That contract is easy to break
// silently — an innocent `append`, a closure that escapes, a boxing
// `fmt.Sprintf` on a non-panic path — and the regression only shows up as
// GC pressure under production load. hotalloc turns it into a build error.
//
// Scope: packages internal/stencil, internal/transfer, internal/grid, in
// functions reachable (via the intra-package static call graph) from the
// kernel entry points — the Op*/Sweep*/Smooth*/Residual*/Restrict*/
// Interp*/Finish* fused kernels and the grid accessor/norm/pack layer the
// kernels lean on. Flagged inside that set:
//
//   - make, new, append
//   - slice and map composite literals
//   - closures in escaping positions: returned, stored into a
//     struct/slice/map/channel, deferred, or passed to another package —
//     except the sched.Pool dispatch methods (Do, ParallelFor,
//     ParallelForPoints), the sanctioned per-invocation kernel-body
//     closure. Closures bound to local variables or passed to same-package
//     helpers stay on the stack and are not flagged; the escape gate
//     (-gcflags=-m) is the authority on those.
//   - calls into fmt (every fmt call allocates and boxes its operands)
//   - explicit conversions of concrete values to interface types
//     (boxing) — conversions to generic type parameters (T(x)) and the
//     any(x).(Y) type-probe idiom are not boxing and are not flagged
//
// Allocations whose enclosing expression feeds a panic call are exempt:
// guard-path panic formatting is cold by definition.
//
// Setup code that legitimately allocates (pool-miss constructors, panic
// formatting on guard paths) is annotated //mglint:allow hotalloc with a
// justification; the companion escape gate (mgbench -exp escapes) audits
// the compiler's -m output against ESCAPES.allow so annotated sites stay
// accounted for.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"pbmg/internal/analysis/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name:     "hotalloc",
	Doc:      "forbid allocation (make/new/append/escaping closures/boxing/fmt) in kernel hot paths reachable from Op*/Sweep* entry points",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// rootRx names the kernel entry points and the grid accessor layer they
// lean on: fused cycle kernels, sweeps, transfers, norms, pack/unpack,
// and the per-point accessors that sit inside kernel inner loops.
var rootRx = regexp.MustCompile(`^(Op[A-Z]|Sweep|Smooth|Residual|Restrict|Interp|Finish|Apply|Norm|Pack|Unpack|At\d?$|Set\d?$|Row|Plane|Zero|Copy|Add|Scale|Red|Black|Convert)`)

// poolDispatch names the sched.Pool methods whose closure argument is the
// sanctioned per-invocation kernel body.
var poolDispatch = map[string]bool{"Do": true, "ParallelFor": true, "ParallelForPoints": true}

func run(pass *analysis.Pass) (interface{}, error) {
	if !lintutil.PkgInScope(pass.Pkg.Path(), "stencil", "transfer", "grid") {
		return nil, nil
	}
	allow := lintutil.NewAllowIndex(pass, "hotalloc")
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Collect this package's function declarations keyed by their
	// (uninstantiated) types.Func, then build the intra-package static
	// call graph and mark everything reachable from a kernel root.
	decls := make(map[*types.Func]*ast.FuncDecl)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || lintutil.IsTestFile(pass.Fset, fd.Pos()) {
			return
		}
		if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
			decls[fn] = fd
		}
	})
	reach := make(map[*types.Func]*types.Func) // fn -> root it is reachable from
	var visit func(fn, root *types.Func)
	visit = func(fn, root *types.Func) {
		if _, seen := reach[fn]; seen {
			return
		}
		fd, ok := decls[fn]
		if !ok {
			return
		}
		reach[fn] = root
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := typeutilCallee(pass.TypesInfo, call); callee != nil {
				if callee.Pkg() == pass.Pkg {
					visit(origin(callee), root)
				}
			}
			return true
		})
	}
	for fn, fd := range decls {
		if rootRx.MatchString(fd.Name.Name) {
			visit(fn, fn)
		}
	}

	for fn, root := range reach {
		checkBody(pass, allow, decls[fn], root)
	}
	return nil, nil
}

// origin maps an instantiated generic function back to its declaration.
func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// typeutilCallee resolves the called *types.Func for static calls
// (identifiers, selectors, and generic instantiations); nil for dynamic
// calls, builtins, and conversions.
func typeutilCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	if ix, ok := fun.(*ast.IndexExpr); ok { // generic instantiation f[T](...)
		fun = ix.X
	} else if ix, ok := fun.(*ast.IndexListExpr); ok {
		fun = ix.X
	}
	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[f]
	case *ast.SelectorExpr:
		obj = info.Uses[f.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// checkBody flags the allocation constructs inside one reachable function.
func checkBody(pass *analysis.Pass, allow *lintutil.AllowIndex, fd *ast.FuncDecl, root *types.Func) {
	report := func(pos ast.Node, what string) {
		if allow.Allowed(pos.Pos()) {
			return
		}
		pass.Reportf(pos.Pos(), "hotalloc: %s in kernel hot path %s (reachable from %s); hoist to setup, use the pooled arena, or annotate //mglint:allow hotalloc with a justification",
			what, fd.Name.Name, root.Name())
	}
	var stack []ast.Node
	walk := func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if onPanicPath(stack) {
			return true // guard-path panic formatting is cold by definition
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, report, x, stack)
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[x]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					report(x, "slice literal allocation")
				case *types.Map:
					report(x, "map literal allocation")
				}
			}
		case *ast.FuncLit:
			if why, esc := escapingLit(pass, stack); esc {
				report(x, "closure allocation ("+why+")")
			}
		}
		return true
	}
	// ast.Inspect with an explicit stack so position-sensitive checks can
	// see ancestors.
	ast.Inspect(fd.Body, walk)
}

// onPanicPath reports whether the node on top of the stack sits inside a
// panic(...) call's arguments.
func onPanicPath(stack []ast.Node) bool {
	for _, n := range stack {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			return true
		}
	}
	return false
}

// escapingLit decides whether the func literal on top of the stack sits
// in an escaping position. Literals bound to local variables or passed to
// same-package helpers stay on the stack (the escape gate audits the
// compiler's actual verdict); literals handed to another package, stored,
// returned, or deferred escape.
func escapingLit(pass *analysis.Pass, stack []ast.Node) (string, bool) {
	if len(stack) < 2 {
		return "", false
	}
	lit := stack[len(stack)-1]
	switch p := stack[len(stack)-2].(type) {
	case *ast.ReturnStmt:
		return "returned func literal", true
	case *ast.SendStmt:
		return "func literal sent on channel", true
	case *ast.CompositeLit:
		return "func literal stored in composite", true
	case *ast.DeferStmt, *ast.GoStmt:
		return "deferred/spawned func literal", true
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if rhs == lit && i < len(p.Lhs) {
				if _, isIdent := ast.Unparen(p.Lhs[i]).(*ast.Ident); !isIdent {
					return "func literal stored through selector/index", true
				}
			}
		}
		return "", false
	case *ast.CallExpr:
		if ast.Unparen(p.Fun) == lit {
			return "", false // immediately invoked
		}
		if sel, ok := ast.Unparen(p.Fun).(*ast.SelectorExpr); ok && poolDispatch[sel.Sel.Name] {
			return "", false // sanctioned pool-dispatch kernel body
		}
		callee := typeutilCallee(pass.TypesInfo, p)
		if callee == nil || callee.Pkg() == pass.Pkg {
			return "", false // dynamic or same-package helper: stays local
		}
		return "func literal escaping to " + callee.Pkg().Name() + "." + callee.Name(), true
	}
	return "", false
}

func checkCall(pass *analysis.Pass, report func(ast.Node, string), call *ast.CallExpr, stack []ast.Node) {
	fun := ast.Unparen(call.Fun)
	// Builtins: make, new, append.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append":
				report(call, fmt.Sprintf("%s call", b.Name()))
			}
			return
		}
	}
	// Conversions: T(x) where T is an interface and x is concrete —
	// boxing. Type parameters are not interfaces at runtime, and any(x)
	// immediately type-asserted is the zero-cost type-probe idiom.
	if tv, ok := pass.TypesInfo.Types[fun]; ok && tv.IsType() {
		if isBoxingTarget(tv.Type) && len(call.Args) == 1 && !typeProbe(stack) {
			if atv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && !types.IsInterface(atv.Type) && !atv.IsNil() {
				report(call, "boxing conversion to interface")
			}
		}
		return
	}
	// fmt calls: every one allocates and boxes its operands.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			report(call, "fmt."+fn.Name()+" call (allocates and boxes)")
		}
	}
}

// typeProbe reports whether the conversion on top of the stack is
// immediately type-asserted — the any(x).(Y) probe, which the compiler
// resolves without a heap box.
func typeProbe(stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	_, ok := stack[len(stack)-2].(*ast.TypeAssertExpr)
	return ok
}

// isBoxingTarget reports whether converting a concrete value to t boxes
// it: t must be a true interface type, not a generic type parameter
// (whose underlying is its constraint interface but which instantiates
// to a concrete type).
func isBoxingTarget(t types.Type) bool {
	if _, isParam := types.Unalias(t).(*types.TypeParam); isParam {
		return false
	}
	return types.IsInterface(t)
}
