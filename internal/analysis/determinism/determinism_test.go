package determinism_test

import (
	"testing"

	"pbmg/internal/analysis/atest"
	"pbmg/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	atest.Run(t, "testdata", determinism.Analyzer, "stencil")
}
