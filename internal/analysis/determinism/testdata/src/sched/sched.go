// Package sched is a determinism fixture dependency: a miniature Pool
// with the real scheduler's dispatch surface so the analyzer's
// Pool.Do/ParallelFor reduction check has a type to resolve against.
package sched

type Pool struct{}

func (p *Pool) Do(n int, f func(i int)) {
	for i := 0; i < n; i++ {
		f(i)
	}
}

func (p *Pool) ParallelFor(lo, hi int, f func(lo, hi int)) { f(lo, hi) }

func (p *Pool) ParallelForPoints(lo, hi, points int, f func(lo, hi int)) { f(lo, hi) }
