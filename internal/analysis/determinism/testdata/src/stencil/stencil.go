// Package stencil is a determinism fixture: each nondeterminism hazard
// the analyzer flags, next to its sanctioned deterministic counterpart.
package stencil

import (
	"math/rand"
	"sort"
	"time"

	"sched"
)

// SweepTimed reads the wall clock inside kernel code.
func SweepTimed() time.Time {
	return time.Now() // want "determinism: time.Now"
}

// Jitter draws from the shared global math/rand source.
func Jitter() float64 {
	return rand.Float64() // want "global math/rand draw"
}

// SeededOK draws from an explicitly seeded generator: deterministic.
func SeededOK() float64 {
	r := rand.New(rand.NewSource(1))
	return r.Float64()
}

// MapSum accumulates floats in map iteration order.
func MapSum(m map[int]float64) float64 {
	var s float64
	for _, v := range m { // want "floating-point accumulation over map iteration order"
		s += v
	}
	return s
}

// MapSumSortedOK iterates a sorted key slice: association is fixed.
func MapSumSortedOK(m map[int]float64) float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var s float64
	for _, k := range keys {
		s += m[k]
	}
	return s
}

// MapCountOK counts entries: integer accumulation is order-free.
func MapCountOK(m map[int]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// ParSum compound-assigns a captured float from a ParallelFor body: the
// sum lands in scheduling order.
func ParSum(p *sched.Pool, xs []float64) float64 {
	var s float64
	p.ParallelFor(0, len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s += xs[i] // want "parallel reduction accumulates a captured float"
		}
	})
	return s
}

// ParSumChunksOK reduces through ParallelForPoints with per-chunk
// partials: the sanctioned fixed-association reduction.
func ParSumChunksOK(p *sched.Pool, xs, partials []float64) float64 {
	p.ParallelForPoints(0, len(xs), len(xs), func(lo, hi int) {
		var local float64
		for i := lo; i < hi; i++ {
			local += xs[i]
		}
		partials[lo] = local
	})
	var s float64
	for _, v := range partials {
		s += v
	}
	return s
}
