// Package determinism defines an analyzer that flags nondeterminism
// sources in kernel and reduction code. The repo's tuning premise (the
// paper's: the fastest plan is found by measuring candidates) only holds
// if every measured variant computes the same bits — the serial==parallel
// bit-identity contract the stencil kernels test, and the fixed-chunk
// deterministic reductions behind OpResidualNorm. Three hazards undo it:
//
//   - ranging over a map while accumulating floats: iteration order
//     reshuffles the floating-point association between runs
//   - time.Now / global math/rand calls inside sweep or kernel code:
//     results (or tuned decisions) become run-dependent — explicitly
//     seeded rand.New(rand.NewSource(...)) generators stay legal
//   - parallel reductions that bypass Pool.ParallelForPoints: a func
//     literal handed to Pool.Do / Pool.ParallelFor that compound-assigns
//     a captured float accumulates in scheduling order, not chunk order
//
// Scope: internal/stencil, internal/transfer, internal/grid,
// internal/sched — the kernel and scheduler layers. Measurement code
// (internal/arch, core's timing harness) is out of scope by design:
// timing there is the product, not a hazard.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"pbmg/internal/analysis/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name:     "determinism",
	Doc:      "flag nondeterminism sources (map-order float accumulation, time/rand, unordered parallel reductions) in kernel code",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// allowedRandFuncs are the math/rand package-level constructors that
// build explicitly seeded generators; everything else at package level
// draws from the shared global source.
var allowedRandFuncs = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true}

func run(pass *analysis.Pass) (interface{}, error) {
	if !lintutil.PkgInScope(pass.Pkg.Path(), "stencil", "transfer", "grid", "sched") {
		return nil, nil
	}
	allow := lintutil.NewAllowIndex(pass, "determinism")
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	report := func(pos token.Pos, msg string) {
		if allow.Allowed(pos) || lintutil.IsTestFile(pass.Fset, pos) {
			return
		}
		pass.Reportf(pos, "determinism: %s", msg)
	}

	ins.Preorder([]ast.Node{(*ast.RangeStmt)(nil), (*ast.CallExpr)(nil)}, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.RangeStmt:
			checkMapRange(pass, report, x)
		case *ast.CallExpr:
			checkCall(pass, report, x)
		}
	})
	return nil, nil
}

// checkMapRange flags `for k, v := range m` over a map whose body
// compound-assigns a floating-point variable declared outside the loop:
// the accumulation order is the map's randomized iteration order.
func checkMapRange(pass *analysis.Pass, report func(token.Pos, string), rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		for _, lhs := range as.Lhs {
			obj := lhsObject(pass.TypesInfo, lhs)
			if obj == nil || !isFloat(obj.Type()) {
				continue
			}
			if obj.Pos() < rng.Pos() || obj.Pos() > rng.End() {
				report(rng.For, "floating-point accumulation over map iteration order; iterate a sorted key slice instead")
				return false
			}
		}
		return true
	})
}

// checkCall flags time.Now/time.Since and global math/rand draws, and
// inspects Pool.Do / Pool.ParallelFor closures for unordered float
// reductions.
func checkCall(pass *analysis.Pass, report func(token.Pos, string), call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "time":
			if fn.Name() == "Now" || fn.Name() == "Since" {
				report(call.Pos(), "time."+fn.Name()+" in kernel code makes results run-dependent; thread timing through the measurement layer")
			}
		case "math/rand", "math/rand/v2":
			// Package-level funcs only: methods on an explicitly seeded
			// *rand.Rand have a receiver and are deterministic.
			if fn.Type().(*types.Signature).Recv() == nil && !allowedRandFuncs[fn.Name()] {
				report(call.Pos(), "global math/rand draw in kernel code; use an explicitly seeded rand.New(rand.NewSource(...))")
			}
		}
	}
	// Pool.Do / Pool.ParallelFor with a reducing closure. ParallelForPoints
	// is the sanctioned deterministic fixed-chunk reduction entry point.
	if sel.Sel.Name != "Do" && sel.Sel.Name != "ParallelFor" {
		return
	}
	if !isSchedPool(pass.TypesInfo, sel.X) {
		return
	}
	for _, arg := range call.Args {
		lit, ok := arg.(*ast.FuncLit)
		if !ok {
			continue
		}
		if pos, bad := capturedFloatReduce(pass.TypesInfo, lit); bad {
			report(pos, "parallel reduction accumulates a captured float through Pool."+sel.Sel.Name+" (scheduling-order sum); use Pool.ParallelForPoints with per-chunk partials")
		}
	}
}

// isSchedPool reports whether expr's type is (a pointer to) the sched
// Pool type.
func isSchedPool(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Pool" && lintutil.PkgInScope(named.Obj().Pkg().Path(), "sched")
}

// capturedFloatReduce reports whether the literal's body compound-assigns
// a float variable declared outside the literal.
func capturedFloatReduce(info *types.Info, lit *ast.FuncLit) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || found {
			return !found
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		for _, lhs := range as.Lhs {
			obj := lhsObject(info, lhs)
			if obj == nil || !isFloat(obj.Type()) {
				continue
			}
			if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
				pos, found = as.Pos(), true
				return false
			}
		}
		return true
	})
	return pos, found
}

func lhsObject(info *types.Info, lhs ast.Expr) types.Object {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.ObjectOf(id)
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
