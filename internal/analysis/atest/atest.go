// Package atest runs an analyzer over GOPATH-style fixture packages and
// checks its diagnostics against // want "regexp" comments — the
// analysistest contract, reimplemented on the standard library's source
// importer. The real golang.org/x/tools/go/analysis/analysistest needs
// go/packages, which is not part of the toolchain's vendored x/tools
// subset this repo builds its analyzers from; this harness loads fixtures
// with go/parser + go/types instead, resolving fixture-local imports from
// testdata/src and everything else from the compiler's source importer,
// so the analyzer tests run hermetically offline.
//
// Usage, from an analyzer package:
//
//	atest.Run(t, "testdata", Analyzer, "stencil", "clean/stencil")
//
// loads testdata/src/stencil and testdata/src/clean/stencil, runs the
// analyzer (and, first, its transitive Requires), and asserts that every
// diagnostic matches a want comment on its line and every want comment is
// matched by a diagnostic.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads each fixture package under dir/src and checks the analyzer's
// diagnostics against the fixtures' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := newLoader(filepath.Join(dir, "src"))
	for _, path := range pkgPaths {
		t.Run(path, func(t *testing.T) {
			t.Helper()
			p, err := l.load(path)
			if err != nil {
				t.Fatalf("loading fixture %s: %v", path, err)
			}
			diags, err := runAnalyzer(l.fset, a, p)
			if err != nil {
				t.Fatalf("running %s on %s: %v", a.Name, path, err)
			}
			checkWants(t, l.fset, p.files, diags)
		})
	}
}

type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	srcRoot string
	fset    *token.FileSet
	cache   map[string]*loaded
	std     types.ImporterFrom
}

func newLoader(srcRoot string) *loader {
	fset := token.NewFileSet()
	return &loader{
		srcRoot: srcRoot,
		fset:    fset,
		cache:   make(map[string]*loaded),
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// Import makes the loader a types.Importer: fixture packages win over the
// standard library.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if fi, err := os.Stat(filepath.Join(l.srcRoot, path)); err == nil && fi.IsDir() {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*loaded, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.srcRoot, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type error: %w", err)
	}
	p := &loaded{pkg: pkg, files: files, info: info}
	l.cache[path] = p
	return p, nil
}

// runAnalyzer runs a and (first) its transitive Requires over the
// package, returning a's diagnostics.
func runAnalyzer(fset *token.FileSet, a *analysis.Analyzer, p *loaded) ([]analysis.Diagnostic, error) {
	results := make(map[*analysis.Analyzer]interface{})
	facts := &factStore{objects: make(map[factKey]analysis.Fact)}
	var diags []analysis.Diagnostic
	var runOne func(a *analysis.Analyzer) error
	runOne = func(a *analysis.Analyzer) error {
		if _, done := results[a]; done {
			return nil
		}
		for _, req := range a.Requires {
			if err := runOne(req); err != nil {
				return err
			}
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      p.files,
			Pkg:        p.pkg,
			TypesInfo:  p.info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   results,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, d)
			},
			ImportObjectFact:  facts.importObjectFact,
			ExportObjectFact:  facts.exportObjectFact,
			ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
			ExportPackageFact: func(analysis.Fact) {},
			AllObjectFacts:    func() []analysis.ObjectFact { return nil },
			AllPackageFacts:   func() []analysis.PackageFact { return nil },
		}
		res, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("%s: %w", a.Name, err)
		}
		results[a] = res
		return nil
	}
	// Run the dependency closure first with reporting discarded — only
	// the target analyzer's diagnostics are under test.
	for _, req := range a.Requires {
		if err := runOne(req); err != nil {
			return nil, err
		}
	}
	diags = nil
	err := runOne(a)
	return diags, err
}

type factKey struct {
	obj types.Object
	typ reflect.Type
}

type factStore struct {
	objects map[factKey]analysis.Fact
}

func (s *factStore) exportObjectFact(obj types.Object, f analysis.Fact) {
	s.objects[factKey{obj, reflect.TypeOf(f)}] = f
}

func (s *factStore) importObjectFact(obj types.Object, f analysis.Fact) bool {
	stored, ok := s.objects[factKey{obj, reflect.TypeOf(f)}]
	if !ok {
		return false
	}
	reflect.ValueOf(f).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

var wantRx = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRx = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type want struct {
	file string
	line int
	rx   *regexp.Regexp
	hit  bool
}

// checkWants asserts the bidirectional match between diagnostics and
// want comments.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range quotedRx.FindAllStringSubmatch(m[1], -1) {
					pat, err := strconv.Unquote(`"` + q[1] + `"`)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q[0], err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{pos.Filename, pos.Line, rx, false})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want %q: no matching diagnostic", w.file, w.line, w.rx)
		}
	}
}
