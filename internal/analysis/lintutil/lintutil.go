// Package lintutil holds the pieces the mglint analyzers share: the
// //mglint:allow escape-hatch annotation, the package-scope matcher that
// binds each analyzer to the repo layers whose invariants it enforces, and
// small AST/type helpers.
//
// The annotation convention: a comment of the form
//
//	//mglint:allow <analyzer> — <one-line justification>
//
// suppresses that analyzer's findings on the same line and on the next
// line. Placed on (or in the doc comment of) a function declaration, it
// suppresses the whole function. The justification is not optional by
// convention: an allow without a reason is a review comment waiting to
// happen.
package lintutil

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
)

var allowRx = regexp.MustCompile(`^//mglint:allow\s+([a-zA-Z0-9_,]+)\b`)

// AllowIndex answers "is this position covered by an //mglint:allow
// comment for this analyzer?" for one pass.
type AllowIndex struct {
	fset  *token.FileSet
	lines map[string]map[int]bool // filename -> set of annotated lines
	funcs []funcRange             // whole-function suppressions
}

type funcRange struct {
	pos, end token.Pos
}

// NewAllowIndex scans the pass's files for //mglint:allow comments naming
// the analyzer (comma-separated lists are accepted) and returns the index.
func NewAllowIndex(pass *analysis.Pass, analyzer string) *AllowIndex {
	idx := &AllowIndex{fset: pass.Fset, lines: make(map[string]map[int]bool)}
	for _, f := range pass.Files {
		annotated := make(map[int]bool)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				names := strings.Split(m[1], ",")
				for _, n := range names {
					if n == analyzer {
						p := pass.Fset.Position(c.Pos())
						annotated[p.Line] = true
						if len(annotated) == 1 {
							idx.lines[p.Filename] = annotated
						}
					}
				}
			}
		}
		if len(annotated) == 0 {
			continue
		}
		// An allow on a function declaration (or inside its doc comment)
		// suppresses the whole function.
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			declLine := pass.Fset.Position(fd.Pos()).Line
			hit := annotated[declLine] || annotated[declLine-1]
			if fd.Doc != nil && !hit {
				from := pass.Fset.Position(fd.Doc.Pos()).Line
				to := pass.Fset.Position(fd.Doc.End()).Line
				for l := from; l <= to && !hit; l++ {
					hit = annotated[l]
				}
			}
			if hit {
				idx.funcs = append(idx.funcs, funcRange{fd.Pos(), fd.End()})
			}
		}
	}
	return idx
}

// Allowed reports whether pos is suppressed: it sits on an annotated line,
// on the line after one, or inside a function whose declaration carries
// the annotation.
func (idx *AllowIndex) Allowed(pos token.Pos) bool {
	for _, fr := range idx.funcs {
		if pos >= fr.pos && pos < fr.end {
			return true
		}
	}
	p := idx.fset.Position(pos)
	lines := idx.lines[p.Filename]
	if lines == nil {
		return false
	}
	return lines[p.Line] || lines[p.Line-1]
}

// PkgInScope reports whether a package path belongs to one of the named
// repo layers. A layer name matches the path's last element exactly or as
// an "internal/<name>" suffix, so both the real tree ("pbmg/internal/stencil")
// and analyzer fixtures ("stencil", "clean/stencil") are in scope.
func PkgInScope(path string, layers ...string) bool {
	base := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		base = path[i+1:]
	}
	for _, l := range layers {
		if base == l || strings.HasSuffix(path, "internal/"+l) {
			return true
		}
	}
	return false
}

// IsTestFile reports whether pos lies in a _test.go file. The mglint
// analyzers enforce production invariants; test files routinely (and
// legitimately) allocate, spawn goroutines, and provoke the guarded
// panics on purpose.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// FileBase returns the base filename holding pos.
func FileBase(fset *token.FileSet, pos token.Pos) string {
	name := fset.Position(pos).Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}
