// Package mg is a poolput fixture: the arena checkout/release shapes the
// analyzer tracks, leaking and clean, over sync.Pool and the repo's
// checkout/release naming conventions.
package mg

import "sync"

type buf struct{ data []float64 }

var pool = sync.Pool{New: func() any { return new(buf) }}

// LeakOnEarlyReturn releases only on the happy path: the early return
// leaks the checked-out value.
func LeakOnEarlyReturn(fail bool) int {
	b := pool.Get().(*buf) // want "not released on every path"
	if fail {
		return 0
	}
	pool.Put(b)
	return len(b.data)
}

// DeferOK releases via defer: every path, including panics, is covered.
func DeferOK(fail bool) int {
	b := pool.Get().(*buf)
	defer pool.Put(b)
	if fail {
		return 0
	}
	return len(b.data)
}

// StraightOK releases on its single path after benign field use.
func StraightOK() {
	b := pool.Get().(*buf)
	b.data = b.data[:0]
	pool.Put(b)
}

// PanicPathOK releases on the normal path; the panicking guard path is
// exempt (a panicking solve is not steady state).
func PanicPathOK(n int) {
	b := pool.Get().(*buf)
	if n < 3 {
		panic("side too small")
	}
	pool.Put(b)
}

// EscapeOK returns the checked-out value: the release obligation
// transfers to the caller and local tracking ends without a finding.
func EscapeOK() *buf {
	return get()
}

func get() *buf {
	b := pool.Get().(*buf)
	return b
}

// CheckoutLeak uses the Workspace-arena naming: checkout without release
// on the early return.
func CheckoutLeak(n int) {
	s := checkout(n) // want "arena scratch"
	if n > 4 {
		return
	}
	release(s)
}

// CheckoutOK pairs the checkout with its release on every path.
func CheckoutOK(n int) {
	s := checkout(n)
	if n > 4 {
		release(s)
		return
	}
	release(s)
}

// AcquireLeak uses the acquire* prefix convention.
func AcquireLeak(stop bool) {
	t := acquireTicket() // want "acquired resource"
	if stop {
		return
	}
	put(t)
}

// AllowedLeak would be a finding (the early return leaks) but carries the
// annotation: the intentional-leak escape hatch.
func AllowedLeak(fail bool) {
	b := pool.Get().(*buf) //mglint:allow poolput — fixture: ownership documented out of band
	if fail {
		return
	}
	pool.Put(b)
}

func checkout(n int) []float64 { return make([]float64, n) }
func release(s []float64)      { _ = s }
func acquireTicket() int       { return 1 }
func put(t int)                { _ = t }
