package poolput_test

import (
	"testing"

	"pbmg/internal/analysis/atest"
	"pbmg/internal/analysis/poolput"
)

func TestPoolput(t *testing.T) {
	atest.Run(t, "testdata", poolput.Analyzer, "mg")
}
