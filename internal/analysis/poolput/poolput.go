// Package poolput defines an analyzer that enforces the pooled-scratch
// contract: every checkout from a recycling arena must be returned on
// every control-flow path. The contract comes from PR 1 (the Workspace
// scratch arena: checkout/release around every cycle step) and PR 6 (the
// color-split buffers: getSplit/putSplit around every split solve). A
// missed release never crashes — the sync.Pool quietly re-allocates — so
// the bug class is invisible until a serving process's steady-state
// allocation rate creeps up. poolput makes the leak a build error.
//
// Tracked acquire forms (the value bound by the assignment is tracked):
//
//	v := pool.Get()            // method Get on a sync.Pool
//	v := pool.Get().(*T)       // the usual type-asserted form
//	v := checkout(...)         // the Workspace arena (checkout/checkoutOf)
//	v := getSplit[T](...)      // the split-buffer arena
//	v := acquireX(...)         // anything named acquire*
//
// A tracked value is satisfied by a release — pool.Put(v), release(v),
// releaseOf(ws, v), putSplit(v) — executed or deferred. The analysis
// walks the function's CFG from each acquire: a path that reaches a
// return (or falls off the end of the function) without releasing is
// reported. Paths that end in panic are exempt (a deferred release covers
// them; a panicking solve is not steady state). A tracked value that
// escapes — returned, stored into a struct/global, or passed whole to a
// non-release call — transfers the obligation to the receiver and ends
// local tracking, conservatively without a finding.
package poolput

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"

	"pbmg/internal/analysis/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name:     "poolput",
	Doc:      "every sync.Pool Get / arena checkout must reach a Put/release on all control-flow paths",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      run,
}

var acquireNames = map[string]bool{"checkout": true, "checkoutOf": true, "getSplit": true}
var releaseNames = map[string]bool{"release": true, "releaseOf": true, "putSplit": true, "put": true}

func run(pass *analysis.Pass) (interface{}, error) {
	allow := lintutil.NewAllowIndex(pass, "poolput")
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || lintutil.IsTestFile(pass.Fset, fd.Pos()) {
			return
		}
		checkFunc(pass, allow, cfgs.FuncDecl(fd), fd)
	})
	return nil, nil
}

type acquire struct {
	stmt *ast.AssignStmt // the acquiring assignment
	obj  types.Object    // the tracked variable
	what string          // description of the acquire for the diagnostic
}

func checkFunc(pass *analysis.Pass, allow *lintutil.AllowIndex, g *cfg.CFG, fd *ast.FuncDecl) {
	if g == nil {
		return
	}
	var acquires []acquire
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literals get their own CFG scope; keep v1 intra-decl
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) == 0 || len(as.Rhs) != 1 {
			return true
		}
		call := unwrapCall(as.Rhs[0])
		if call == nil {
			return true
		}
		what, ok := acquireCall(pass.TypesInfo, call)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
			acquires = append(acquires, acquire{as, obj, what})
		}
		return true
	})
	if len(acquires) == 0 {
		return
	}

	// Deferred releases satisfy every path that executes them; collect
	// the objects they cover.
	deferred := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if d, ok := n.(*ast.DeferStmt); ok {
			if obj := releasedObject(pass.TypesInfo, d.Call); obj != nil {
				deferred[obj] = true
			}
		}
		return true
	})

	for _, acq := range acquires {
		if deferred[acq.obj] || allow.Allowed(acq.stmt.Pos()) {
			continue
		}
		if leakPath(pass.TypesInfo, g, acq) {
			pass.Reportf(acq.stmt.Pos(), "poolput: %s checked out into %q is not released on every path to return; add the missing Put/release (a defer right after the checkout is the idiom) or annotate //mglint:allow poolput",
				acq.what, acq.obj.Name())
		}
	}
}

// unwrapCall digs the call expression out of `pool.Get().(*T)` forms.
func unwrapCall(e ast.Expr) *ast.CallExpr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.CallExpr:
			return x
		default:
			return nil
		}
	}
}

// acquireCall reports whether call checks a value out of a recycling
// arena, and names the arena for the diagnostic.
func acquireCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	name, recv := calleeNameRecv(info, call)
	switch {
	case name == "Get" && isSyncPool(recv):
		return "sync.Pool value", true
	case acquireNames[name]:
		return "arena scratch (" + name + ")", true
	case strings.HasPrefix(name, "acquire"):
		return "acquired resource (" + name + ")", true
	}
	return "", false
}

// releasedObject returns the tracked object a call releases, or nil.
func releasedObject(info *types.Info, call *ast.CallExpr) types.Object {
	name, recv := calleeNameRecv(info, call)
	isRelease := releaseNames[name] || (name == "Put" && isSyncPool(recv))
	if !isRelease {
		return nil
	}
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil && !isIgnorableArg(obj) {
				return obj
			}
		}
	}
	return nil
}

// isIgnorableArg filters release-call arguments that are plumbing, not
// the released value (the workspace receiver in releaseOf(ws, b)).
func isIgnorableArg(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return true
	}
	t := v.Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		// Workspaces/pools passed alongside the value are not the value.
		n := named.Obj().Name()
		return n == "Workspace" || n == "Pool"
	}
	return false
}

// calleeNameRecv resolves a call's simple callee name and, for method
// calls, the receiver expression's type.
func calleeNameRecv(info *types.Info, call *ast.CallExpr) (string, types.Type) {
	fun := ast.Unparen(call.Fun)
	if ix, ok := fun.(*ast.IndexExpr); ok {
		fun = ix.X
	} else if ix, ok := fun.(*ast.IndexListExpr); ok {
		fun = ix.X
	}
	switch f := fun.(type) {
	case *ast.Ident:
		return f.Name, nil
	case *ast.SelectorExpr:
		var recv types.Type
		if tv, ok := info.Types[f.X]; ok {
			recv = tv.Type
		}
		return f.Sel.Name, recv
	}
	return "", nil
}

func isSyncPool(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Pool" && named.Obj().Pkg().Path() == "sync"
}

// leakPath walks the CFG from the acquire and reports whether some path
// reaches a function exit with the value still unreleased.
func leakPath(info *types.Info, g *cfg.CFG, acq acquire) bool {
	// Locate the block and node index of the acquiring statement.
	startBlock, startIdx := -1, -1
	for bi, b := range g.Blocks {
		for ni, n := range b.Nodes {
			if n == ast.Node(acq.stmt) {
				startBlock, startIdx = bi, ni
			}
		}
	}
	if startBlock < 0 {
		return false // not in the CFG (dead code)
	}

	type state struct{ block, idx int }
	visited := make(map[int]bool)
	stack := []state{{startBlock, startIdx + 1}}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		b := g.Blocks[s.block]
		closed := false
		for ni := s.idx; ni < len(b.Nodes) && !closed; ni++ {
			switch classify(info, b.Nodes[ni], acq.obj) {
			case nodeReleases, nodeEscapes:
				closed = true
			}
		}
		if closed {
			continue
		}
		if len(b.Succs) == 0 {
			if b.Kind == cfg.KindUnreachable || endsInPanic(b) {
				continue // panic path: deferred releases cover it
			}
			return true // reached an exit unreleased
		}
		for _, succ := range b.Succs {
			if !visited[int(succ.Index)] {
				visited[int(succ.Index)] = true
				stack = append(stack, state{int(succ.Index), 0})
			}
		}
	}
	return false
}

type nodeClass int

const (
	nodeNeutral nodeClass = iota
	nodeReleases
	nodeEscapes
)

// classify inspects one CFG node for the tracked object: does it release
// it, make it escape (ending tracking), or neither? Reads through
// v.field selectors are neutral — using the scratch is the point.
func classify(info *types.Info, n ast.Node, obj types.Object) nodeClass {
	class := nodeNeutral
	var stack []ast.Node
	ast.Inspect(n, func(x ast.Node) bool {
		if x == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, x)
		if call, ok := x.(*ast.CallExpr); ok {
			if releasedObject(info, call) == obj {
				class = nodeReleases
				return false
			}
		}
		id, ok := x.(*ast.Ident)
		if !ok || info.ObjectOf(id) != obj {
			return true
		}
		if class == nodeNeutral && !benignUse(stack) {
			class = nodeEscapes
		}
		return true
	})
	return class
}

// benignUse reports whether the identifier on top of the stack is used in
// a way that keeps the release obligation local: a field/method selector
// on the value, or an index into it.
func benignUse(stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	switch p := stack[len(stack)-2].(type) {
	case *ast.SelectorExpr:
		return p.X == stack[len(stack)-1]
	case *ast.IndexExpr:
		return p.X == stack[len(stack)-1]
	}
	return false
}

// endsInPanic reports whether the block's last action is a panic call.
func endsInPanic(b *cfg.Block) bool {
	for i := len(b.Nodes) - 1; i >= 0; i-- {
		n := b.Nodes[i]
		expr, ok := n.(*ast.ExprStmt)
		var call *ast.CallExpr
		if ok {
			call, _ = expr.X.(*ast.CallExpr)
		} else {
			call, _ = n.(*ast.CallExpr)
		}
		if call == nil {
			continue
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			return true
		}
		return false
	}
	return false
}
