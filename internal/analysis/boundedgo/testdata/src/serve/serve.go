// Package serve is a boundedgo fixture: goroutine-launch shapes in the
// serving path, from the PR 4 fan-out bug to the sanctioned worker loops.
package serve

// Retire launches with no visible bound: one goroutine per call,
// unbounded across calls.
func Retire(f func()) {
	go f() // want "naked goroutine launch"
}

// FanOut launches per ranged element: the PR 4 goroutine-per-problem bug.
func FanOut(items []int, f func(int)) {
	for _, it := range items {
		go f(it) // want "goroutine launched per ranged element"
	}
}

// Workers launches inside a counted loop sized by a worker count.
func Workers(workers int, f func()) {
	for i := 0; i < workers; i++ {
		go f()
	}
}

// WorkersRange uses the Go 1.22 range-over-int worker loop.
func WorkersRange(workers int, f func()) {
	for range workers {
		go f()
	}
}

// LenBound sizes the loop by the request data: fan-out in disguise.
func LenBound(items []int, f func(int)) {
	for i := 0; i < len(items); i++ {
		go f(i) // want "bounded by len"
	}
}

// Guarded sends on a semaphore channel before launching.
func Guarded(sem chan struct{}, f func()) {
	sem <- struct{}{}
	go f()
}

// Admitted calls an acquire-style admission guard before launching.
func Admitted(f func()) {
	acquireSlot()
	go f()
}

func acquireSlot() {}

// Allowed is annotated: a deliberate one-per-event launch.
func Allowed(f func()) {
	go f() //mglint:allow boundedgo — fixture: one per reload event by design
}

// Spin launches inside a condition-less loop.
func Spin(f func()) {
	for {
		go f() // want "unbounded for loop"
	}
}
