// Package boundedgo defines an analyzer that forbids unbounded goroutine
// launches in the serving path. PR 4's bug is the motivating specimen:
// Service.SolveBatch fanned out a goroutine per problem, so a 10k-problem
// batch parked 10k goroutines on the admission semaphore; the fix — a
// worker loop sized by the admission limit — is now the idiom this
// analyzer enforces mechanically in serve, registry.go, service.go, and
// internal/mixload.
//
// A `go` statement in scope is reported unless its launch is visibly
// bounded:
//
//   - it sits in a counted loop (`for i := 0; i < workers; i++` or Go
//     1.22's `for range workers`) whose bound is a precomputed worker
//     count — not a direct len(...) of the request data, which is
//     exactly the goroutine-per-problem shape
//   - a semaphore/quota acquire precedes it in the same function: a call
//     to something named Acquire/TryAcquire/acquire*/admit*, or a send
//     or receive on a channel whose name says semaphore (sem, slot,
//     ticket, gate, tok, quota)
//   - it is annotated //mglint:allow boundedgo with a justification
//
// Range loops over slices, maps, or channels that launch per element are
// always reported: that is the PR 4 fan-out as a lint rule.
package boundedgo

import (
	"go/ast"
	"go/types"
	"regexp"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"pbmg/internal/analysis/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name:     "boundedgo",
	Doc:      "no naked go statements in the serving path: goroutine launches must be bounded by a worker count or a semaphore acquire",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var acquireRx = regexp.MustCompile(`^(Acquire|TryAcquire|acquire|admit)`)
var semNameRx = regexp.MustCompile(`(?i)(sem|slot|ticket|gate|tok|quota)`)

func run(pass *analysis.Pass) (interface{}, error) {
	inScopePkg := lintutil.PkgInScope(pass.Pkg.Path(), "serve", "mixload")
	allow := lintutil.NewAllowIndex(pass, "boundedgo")
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.WithStack([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		g := n.(*ast.GoStmt)
		if lintutil.IsTestFile(pass.Fset, g.Pos()) || allow.Allowed(g.Pos()) {
			return false
		}
		// Scope: the serve/mixload packages wholesale, plus the registry
		// and service layers of the root package by filename.
		if !inScopePkg {
			base := lintutil.FileBase(pass.Fset, g.Pos())
			if base != "registry.go" && base != "service.go" {
				return false
			}
		}
		if reason, bad := naked(pass, g, stack); bad {
			pass.Reportf(g.Pos(), "boundedgo: %s; bound the fan-out with a worker loop sized by the admission limit, guard the launch with a semaphore acquire, or annotate //mglint:allow boundedgo", reason)
		}
		return false
	})
	return nil, nil
}

// naked decides whether the go statement is an unbounded launch, and
// says why.
func naked(pass *analysis.Pass, g *ast.GoStmt, stack []ast.Node) (string, bool) {
	// Innermost enclosing loop decides the launch multiplicity.
	for i := len(stack) - 1; i >= 0; i-- {
		switch loop := stack[i].(type) {
		case *ast.RangeStmt:
			tv, ok := pass.TypesInfo.Types[loop.X]
			if ok && isInteger(tv.Type) {
				return "", false // for range workers — counted fan-out
			}
			return "goroutine launched per ranged element (the PR 4 fan-out bug shape)", true
		case *ast.ForStmt:
			if loop.Cond == nil {
				return "goroutine launched inside an unbounded for loop", true
			}
			if bound := loopBound(loop); bound != nil {
				if isLenCall(bound) {
					return "goroutine-per-item loop bounded by len() of the data; size the loop by the admission limit instead", true
				}
				return "", false // counted worker loop
			}
			return "goroutine launched inside a loop without a recognizable worker bound", true
		case *ast.FuncDecl, *ast.FuncLit:
			// Reached the enclosing function without a loop: straight-line
			// launch. Require a visible admission guard before it.
			if guardedBefore(pass, stack[i], g) {
				return "", false
			}
			return "naked goroutine launch (one per call of this function, unbounded across calls)", true
		}
	}
	return "naked goroutine launch", true
}

// loopBound extracts the comparison bound of a classic counted loop
// `for i := 0; i < B; i++`, or nil if the shape doesn't match.
func loopBound(loop *ast.ForStmt) ast.Expr {
	cmp, ok := loop.Cond.(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	switch cmp.Op.String() {
	case "<", "<=", ">", ">=":
		return cmp.Y
	}
	return nil
}

func isLenCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "len"
}

func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// guardedBefore reports whether an admission guard — an Acquire-style
// call or a semaphore channel operation — appears lexically before the
// go statement inside the enclosing function node.
func guardedBefore(pass *analysis.Pass, fn ast.Node, g *ast.GoStmt) bool {
	guarded := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if n == nil || guarded {
			return false
		}
		if n != fn && n.Pos() >= g.Pos() {
			return false // at or past the launch; guards must precede it
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if name, _ := calleeName(x); acquireRx.MatchString(name) {
				guarded = true
			}
		case *ast.SendStmt:
			if semChan(x.Chan) {
				guarded = true
			}
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" && semChan(x.X) {
				guarded = true
			}
		}
		return !guarded
	})
	return guarded
}

func calleeName(call *ast.CallExpr) (string, bool) {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name, true
	case *ast.SelectorExpr:
		return f.Sel.Name, true
	}
	return "", false
}

// semChan reports whether the channel expression's name reads as a
// semaphore/quota token channel.
func semChan(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return semNameRx.MatchString(x.Name)
	case *ast.SelectorExpr:
		return semNameRx.MatchString(x.Sel.Name)
	}
	return false
}
