package boundedgo_test

import (
	"testing"

	"pbmg/internal/analysis/atest"
	"pbmg/internal/analysis/boundedgo"
)

func TestBoundedgo(t *testing.T) {
	atest.Run(t, "testdata", boundedgo.Analyzer, "serve")
}
