// Package core implements the paper's primary contribution: the
// accuracy-aware dynamic-programming autotuner for multigrid (§2.2–2.4).
//
// The tuner proceeds bottom-up over recursion levels (grid sizes 2^k+1).
// At each level it considers, for every discrete accuracy target p_i, the
// three algorithmic families — direct band Cholesky, iterated SOR with
// ω_opt, and iterated RECURSE_j steps whose coarse-grid call is the tuned
// MULTIGRID-V_j one level down — measures on shared training data how many
// iterations each needs to reach p_i, prices each candidate with a
// pluggable cost function (host wall-clock or a simulated architecture
// model), and keeps the cheapest. Because all accuracies at level k−1 are
// tuned before level k begins, optimal sub-algorithms of every accuracy are
// available for substitution, exactly as the paper's dynamic program
// requires. TuneFull extends the same construction to full-multigrid cycles
// with their estimation phase (§2.4).
package core

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"pbmg/internal/arch"
	"pbmg/internal/direct"
	"pbmg/internal/grid"
	"pbmg/internal/mg"
	"pbmg/internal/problem"
	"pbmg/internal/refsol"
	"pbmg/internal/sched"
	"pbmg/internal/stencil"
)

// DefaultAccuracies returns the paper's discrete accuracy targets
// (p_i) = (10, 10³, 10⁵, 10⁷, 10⁹).
func DefaultAccuracies() []float64 {
	return []float64{1e1, 1e3, 1e5, 1e7, 1e9}
}

// Config controls a tuning run. The zero value is not usable; fill at least
// MaxLevel and use Defaults to populate the rest.
type Config struct {
	// Accuracies are the discrete targets p_i, ascending.
	Accuracies []float64
	// MaxLevel is the finest level to tune (grid side 2^MaxLevel + 1).
	MaxLevel int
	// Family selects the operator family to tune for (default
	// stencil.FamilyPoisson). Each family is tuned independently: the dynamic
	// program re-measures every candidate under the family's kernels, so the
	// resulting tables are keyed by (family, ε) in the saved configuration.
	Family stencil.Family
	// Eps is the family parameter: the anisotropy ratio ε for
	// FamilyAnisotropic or the coefficient contrast σ for FamilyVarCoef
	// (zero selects the family default; ignored for Poisson).
	Eps float64
	// Distribution selects the training-data distribution (§4).
	Distribution grid.Distribution
	// TrainingInstances is the number of training problems per level.
	TrainingInstances int
	// Seed makes training data and hence tuning deterministic.
	Seed int64
	// Coster prices candidates: arch.WallClock for the host machine or an
	// *arch.Model for a simulated architecture.
	Coster arch.Coster
	// Pool parallelizes kernels during wall-clock measurement (nil: serial).
	Pool *sched.Pool
	// DirectMaxLevel is the largest level at which the direct choice is
	// explored; its O(N⁴) factorization makes it useless beyond coarse
	// levels, and skipping it bounds tuning time.
	DirectMaxLevel int
	// MaxSORIters caps iteration counting for the SOR choice; targets not
	// reached within the cap mark the choice infeasible at that accuracy.
	MaxSORIters int
	// MaxRecurseIters caps iteration counting for recursive choices.
	MaxRecurseIters int
	// Smoother selects the in-cycle relaxation kernel (default: the paper's
	// red-black SOR with ω = 1.15; mg.SmootherJacobi reproduces the
	// weighted-Jacobi alternative the paper evaluated and rejected, §2.3).
	Smoother mg.Smoother
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Family defaults for the Eps parameter: a strong (10:1) anisotropy and a
// moderate coefficient contrast of e⁴ ≈ 55.
const (
	DefaultAnisoEps     = 0.1
	DefaultVarCoefSigma = 2.0
)

// FamilyHasParam reports whether a family carries a tunable parameter
// (anisotropy ratio ε or coefficient contrast σ). The constant-coefficient
// Laplacians — 2D and 3D — are parameterless.
func FamilyHasParam(f stencil.Family) bool {
	return f == stencil.FamilyAnisotropic || f == stencil.FamilyVarCoef
}

// ResolveEps maps the zero-value family parameter to the family default —
// the single place the default lives, shared by the tuner and the public
// problem constructors so both always agree on what "unset" means.
func ResolveEps(f stencil.Family, eps float64) float64 {
	if eps != 0 {
		return eps
	}
	switch f {
	case stencil.FamilyAnisotropic:
		return DefaultAnisoEps
	case stencil.FamilyVarCoef:
		return DefaultVarCoefSigma
	default:
		return 0
	}
}

// Defaults returns cfg with unset fields filled with the paper's settings.
func (cfg Config) Defaults() Config {
	if cfg.Accuracies == nil {
		cfg.Accuracies = DefaultAccuracies()
	}
	cfg.Eps = ResolveEps(cfg.Family, cfg.Eps)
	if cfg.TrainingInstances == 0 {
		cfg.TrainingInstances = 3
	}
	if cfg.Coster == nil {
		cfg.Coster = arch.WallClock{}
	}
	if cfg.DirectMaxLevel == 0 {
		if cfg.Family.Dim() == 3 {
			// 3D band factorization costs O(N⁷); exploring the direct choice
			// past N=17 buys nothing and dominates tuning time.
			cfg.DirectMaxLevel = 4
		} else {
			cfg.DirectMaxLevel = 7
		}
	}
	// Never explore the direct choice past the hard 3D factorization cap.
	if cfg.Family.Dim() == 3 {
		for cfg.DirectMaxLevel > 2 && grid.SizeOfLevel(cfg.DirectMaxLevel) > direct.Direct3DMaxN {
			cfg.DirectMaxLevel--
		}
	}
	if cfg.MaxSORIters == 0 {
		cfg.MaxSORIters = 400
	}
	if cfg.MaxRecurseIters == 0 {
		cfg.MaxRecurseIters = 60
	}
	return cfg
}

func (cfg Config) validate() error {
	if cfg.MaxLevel < 2 {
		return fmt.Errorf("core: MaxLevel %d too small (need ≥ 2)", cfg.MaxLevel)
	}
	for i := 1; i < len(cfg.Accuracies); i++ {
		if cfg.Accuracies[i] <= cfg.Accuracies[i-1] {
			return fmt.Errorf("core: accuracies must ascend")
		}
	}
	if len(cfg.Accuracies) == 0 {
		return fmt.Errorf("core: no accuracy targets")
	}
	return nil
}

// Tuner runs the dynamic program. Create with New; not safe for concurrent
// use.
type Tuner struct {
	cfg   Config
	op    *stencil.Operator // operator family at the finest tuned size
	ws    *mg.Workspace     // measurement workspace (fresh direct factors)
	probs map[int][]*problem.Problem
	front map[int]*ParetoFront // per-level candidate fronts (diagnostics)
}

// New returns a tuner for the given configuration (defaults applied).
func New(cfg Config) (*Tuner, error) {
	cfg = cfg.Defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	op, err := stencil.NewOperator(cfg.Family, cfg.Eps, grid.SizeOfLevel(cfg.MaxLevel))
	if err != nil {
		return nil, err
	}
	// Trace-based costers price per-level stencil passes by point count,
	// which depends on the operator's dimension; derive a coster for this
	// tuner's geometry (the caller's coster is never mutated).
	cfg.Coster = arch.ForDim(cfg.Coster, op.Dim())
	ws := mg.NewWorkspace(cfg.Pool)
	ws.Smoother = cfg.Smoother
	ws.Op = op
	return &Tuner{
		cfg:   cfg,
		op:    op,
		ws:    ws,
		probs: make(map[int][]*problem.Problem),
		front: make(map[int]*ParetoFront),
	}, nil
}

// Operator returns the operator family the tuner measures against.
func (t *Tuner) Operator() *stencil.Operator { return t.op }

// Front returns the Pareto front of all candidates measured at a level
// (the full-DP view of §2.2), or nil if the level was not tuned.
func (t *Tuner) Front(level int) *ParetoFront { return t.front[level] }

func (t *Tuner) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

// training returns (generating on first use) the training problems for a
// level, with reference solutions attached.
func (t *Tuner) training(level int) []*problem.Problem {
	if ps, ok := t.probs[level]; ok {
		return ps
	}
	n := grid.SizeOfLevel(level)
	ps := make([]*problem.Problem, t.cfg.TrainingInstances)
	for i := range ps {
		rng := rand.New(rand.NewSource(t.cfg.Seed + int64(level)*1009 + int64(i)))
		ps[i] = problem.RandomOp(n, t.cfg.Distribution, rng, t.op.At(n))
		refsol.Attach(ps[i], t.cfg.Pool)
	}
	t.probs[level] = ps
	return ps
}

// traceBased reports whether the Coster ignores wall time, letting the
// tuner skip high-precision timing loops.
func (t *Tuner) traceBased() bool {
	_, ok := t.cfg.Coster.(interface{ TraceBased() })
	return ok
}

// measured is one priced candidate for a level: either a direct solve
// (iters nil) or an iterative choice with per-accuracy iteration counts.
type measured struct {
	plan       mg.Plan
	iters      []int // per accuracy index; 0 = infeasible (nil for direct)
	costPerAcc []float64
}

// stepFunc advances one iteration of a candidate on (x, b).
type stepFunc func(x, b *grid.Grid, rec mg.Recorder)

// countIters runs step repeatedly on each training instance and returns,
// per accuracy target, the maximum number of iterations any instance needed
// (0 if some instance missed the target within cap).
func (t *Tuner) countIters(probs []*problem.Problem, step stepFunc, cap int) []int {
	m := len(t.cfg.Accuracies)
	need := make([]int, m)
	bad := make([]bool, m)
	for _, p := range probs {
		x := p.NewState()
		met := 0
		for it := 1; it <= cap && met < m; it++ {
			step(x, p.B, nil)
			acc := p.AccuracyOf(x)
			for met < m && acc >= t.cfg.Accuracies[met] {
				if it > need[met] {
					need[met] = it
				}
				met++
			}
		}
		for i := met; i < m; i++ {
			bad[i] = true // this instance missed the target within cap
		}
	}
	for i := range need {
		if bad[i] {
			need[i] = 0 // infeasible marker
		}
	}
	return need
}

// timeOneIter measures the trace and wall time of a single iteration of
// step on the first training instance. For wall-clock costers the step is
// repeated adaptively until the sample is long enough to trust.
func (t *Tuner) timeOneIter(probs []*problem.Problem, step stepFunc) (*mg.OpTrace, time.Duration) {
	p := probs[0]
	var tr mg.OpTrace
	x := p.NewState()
	start := time.Now()
	step(x, p.B, &tr)
	elapsed := time.Since(start)
	if t.traceBased() {
		return &tr, elapsed
	}
	// Re-sample short steps in growing batches until one batch is long
	// enough to trust, then keep the minimum (least-noise) of three such
	// batches: candidate ranking is only as good as these samples.
	const minSample = 200 * time.Microsecond
	batch := elapsed
	reps := 1
	for ; batch < minSample && reps <= 4096; reps *= 2 {
		x = p.NewState()
		start = time.Now()
		for r := 0; r < reps; r++ {
			step(x, p.B, nil)
		}
		batch = time.Since(start)
		elapsed = batch / time.Duration(reps)
	}
	for sample := 0; sample < 2; sample++ {
		x = p.NewState()
		start = time.Now()
		for r := 0; r < reps; r++ {
			step(x, p.B, nil)
		}
		if d := time.Since(start) / time.Duration(reps); d < elapsed {
			elapsed = d
		}
	}
	return &tr, elapsed
}

// priceIterative converts iteration counts into per-accuracy costs.
func (t *Tuner) priceIterative(iters []int, tr1 *mg.OpTrace, d1 time.Duration) []float64 {
	return t.priceIterativeWith(t.cfg.Coster, 0, iters, tr1, d1)
}

// priceIterativeWith prices under an explicit coster (the precision-adjusted
// model for f32/mixed candidates) plus a per-iteration additive adjustment.
func (t *Tuner) priceIterativeWith(coster arch.Coster, adj float64, iters []int, tr1 *mg.OpTrace, d1 time.Duration) []float64 {
	costs := make([]float64, len(iters))
	for i, n := range iters {
		if n <= 0 {
			costs[i] = math.Inf(1)
			continue
		}
		costs[i] = coster.Cost(tr1.Scaled(n), time.Duration(n)*d1) + float64(n)*adj
	}
	return costs
}

// measureDirect prices the direct choice at a level (identical for every
// accuracy target: the solve is exact).
func (t *Tuner) measureDirect(level int, probs []*problem.Problem) measured {
	step := func(x, b *grid.Grid, rec mg.Recorder) { t.ws.SolveDirect(x, b, rec) }
	tr, d := t.timeOneIter(probs, step)
	cost := t.cfg.Coster.Cost(tr, d)
	costs := make([]float64, len(t.cfg.Accuracies))
	for i := range costs {
		costs[i] = cost
	}
	return measured{plan: mg.Plan{Choice: mg.ChoiceDirect}, costPerAcc: costs}
}

// measureSOR prices the iterated-SOR choice at a level.
func (t *Tuner) measureSOR(level int, probs []*problem.Problem) measured {
	n := grid.SizeOfLevel(level)
	omega := t.ws.OmegaOpt(n)
	step := func(x, b *grid.Grid, rec mg.Recorder) { t.ws.SOR(x, b, omega, 1, rec) }
	iters := t.countIters(probs, step, t.cfg.MaxSORIters)
	tr1, d1 := t.timeOneIter(probs, step)
	m := measured{
		plan:       mg.Plan{Choice: mg.ChoiceSOR},
		iters:      iters,
		costPerAcc: t.priceIterative(iters, tr1, d1),
	}
	return m
}

// measureVChain prices the standard-V-cycle seed algorithm at a level — the
// single-algorithm implementation the PetaBricks population always keeps
// (§3.2.2), which guards the dynamic program against pathological greedy
// choices at coarser levels.
func (t *Tuner) measureVChain(level int, probs []*problem.Problem) measured {
	step := func(x, b *grid.Grid, rec mg.Recorder) {
		t.ws.RefVCycle(x, b, rec)
	}
	iters := t.countIters(probs, step, t.cfg.MaxRecurseIters)
	tr1, d1 := t.timeOneIter(probs, step)
	return measured{
		plan:       mg.Plan{Choice: mg.ChoiceVCycle},
		iters:      iters,
		costPerAcc: t.priceIterative(iters, tr1, d1),
	}
}

// measureRecurse prices the RECURSE_j choice at a level, using the tuned
// sub-table rows already built for coarser levels.
func (t *Tuner) measureRecurse(vt *mg.VTable, level, j int, probs []*problem.Problem) measured {
	ex := &mg.Executor{WS: t.ws, V: vt}
	step := func(x, b *grid.Grid, rec mg.Recorder) {
		ex.Rec = rec
		ex.Recurse(x, b, j)
	}
	iters := t.countIters(probs, step, t.cfg.MaxRecurseIters)
	tr1, d1 := t.timeOneIter(probs, step)
	return measured{
		plan:       mg.Plan{Choice: mg.ChoiceRecurse, Sub: j},
		iters:      iters,
		costPerAcc: t.priceIterative(iters, tr1, d1),
	}
}

// f32Steps builds the counting and timing stepFuncs for an f32 candidate.
// Both keep a float32 mirror of the iterate alive across iterations — a
// deployed PrecF32 cell converts once per cell entry and amortizes it over
// all its iterations, so per-iteration cost must exclude the conversions.
// The counting step additionally writes the interior back after every
// iteration, because accuracy is always judged on the f64 state against the
// f64 reference solution; the timing step skips that writeback.
func (t *Tuner) f32Steps(vt *mg.VTable, level int, plan mg.Plan) (count, timing stepFunc) {
	ex := &mg.Executor{WS: t.ws, V: vt}
	n := grid.SizeOfLevel(level)
	dim := t.op.Dim()
	x32 := grid.NewOf[float32](dim, n)
	b32 := grid.NewOf[float32](dim, n)
	var cur *grid.Grid
	step1 := plan
	step1.Iters = 1
	body := func(x, b *grid.Grid, rec mg.Recorder) {
		if x != cur {
			cur = x
			grid.ConvertInto(x32, x)
			grid.ConvertInto(b32, b)
		}
		ex.Rec = rec
		ex.SolvePlanF32(x32, b32, step1)
	}
	count = func(x, b *grid.Grid, rec mg.Recorder) {
		body(x, b, rec)
		grid.ConvertInteriorInto(x, x32)
	}
	return count, body
}

// iterCap returns the iteration-count cap for a candidate's choice.
func (t *Tuner) iterCap(c mg.Choice) int {
	if c == mg.ChoiceSOR {
		return t.cfg.MaxSORIters
	}
	return t.cfg.MaxRecurseIters
}

// measureF32 prices the full-f32 edition of an iterative candidate: the
// same choice with float32 storage, priced under the half-width cost model
// (or measured wall-clock, which needs no adjustment). The f32 rounding
// floor makes high-accuracy targets infeasible automatically — the counting
// loop simply never reaches them.
func (t *Tuner) measureF32(vt *mg.VTable, level int, base mg.Plan, probs []*problem.Problem) measured {
	base.Precision = mg.PrecF32
	countStep, timeStep := t.f32Steps(vt, level, base)
	iters := t.countIters(probs, countStep, t.iterCap(base.Choice))
	tr1, d1 := t.timeOneIter(probs, timeStep)
	return measured{
		plan:       base,
		iters:      iters,
		costPerAcc: t.priceIterativeWith(arch.ForPrecision(t.cfg.Coster, 32), 0, iters, tr1, d1),
	}
}

// measureMixed prices the refinement edition of a cycle candidate: each
// iteration is one f64 defect residual wrapping one f32 step of the choice.
// Trace-based costers price the whole step at f32 width plus a per-iteration
// correction for the outer residual, which really runs at f64.
func (t *Tuner) measureMixed(vt *mg.VTable, level int, base mg.Plan, probs []*problem.Problem) measured {
	base.Precision = mg.PrecMixed
	ex := &mg.Executor{WS: t.ws, V: vt}
	step := func(x, b *grid.Grid, rec mg.Recorder) {
		ex.Rec = rec
		ex.RefineStep(x, b, base)
	}
	iters := t.countIters(probs, step, t.cfg.MaxRecurseIters)
	tr1, d1 := t.timeOneIter(probs, step)
	coster := arch.ForPrecision(t.cfg.Coster, 32)
	var adj float64
	if m64, ok := t.cfg.Coster.(*arch.Model); ok {
		m32 := coster.(*arch.Model)
		adj = m64.EventCost(mg.EvResidual, level, 1) - m32.EventCost(mg.EvResidual, level, 1)
	}
	return measured{
		plan:       base,
		iters:      iters,
		costPerAcc: t.priceIterativeWith(coster, adj, iters, tr1, d1),
	}
}

// TuneV runs the dynamic program for the MULTIGRID-V family and returns the
// tuned table.
func (t *Tuner) TuneV() (*mg.VTable, error) {
	vt := &mg.VTable{Acc: append([]float64(nil), t.cfg.Accuracies...)}
	for level := 2; level <= t.cfg.MaxLevel; level++ {
		row := t.tuneVLevel(vt, level)
		vt.Plans = append(vt.Plans, row)
		t.logf("level %d (N=%d): %s", level, grid.SizeOfLevel(level), describeRow(row))
	}
	if err := vt.Validate(); err != nil {
		return nil, fmt.Errorf("core: tuned V table invalid: %w", err)
	}
	return vt, nil
}

// tuneVLevel measures every candidate at one level and picks, per accuracy
// target, the cheapest feasible plan.
func (t *Tuner) tuneVLevel(vt *mg.VTable, level int) []mg.Plan {
	probs := t.training(level)
	m := len(t.cfg.Accuracies)
	var cands []measured
	if level <= t.cfg.DirectMaxLevel {
		cands = append(cands, t.measureDirect(level, probs))
	}
	cands = append(cands, t.measureSOR(level, probs))
	cands = append(cands, t.measureVChain(level, probs))
	for j := 0; j < m; j++ {
		cands = append(cands, t.measureRecurse(vt, level, j, probs))
	}
	// Precision editions (ROADMAP item 2): the same iterative choices with
	// float32 storage, and f64-refinement-wrapped editions of the cycle
	// choices. Direct stays f64-only — the factorization is compute-bound
	// and exact.
	cands = append(cands, t.measureF32(vt, level, mg.Plan{Choice: mg.ChoiceSOR}, probs))
	cands = append(cands, t.measureF32(vt, level, mg.Plan{Choice: mg.ChoiceVCycle}, probs))
	cands = append(cands, t.measureMixed(vt, level, mg.Plan{Choice: mg.ChoiceVCycle}, probs))
	for j := 0; j < m; j++ {
		cands = append(cands, t.measureF32(vt, level, mg.Plan{Choice: mg.ChoiceRecurse, Sub: j}, probs))
		cands = append(cands, t.measureMixed(vt, level, mg.Plan{Choice: mg.ChoiceRecurse, Sub: j}, probs))
	}

	front := t.front[level]
	if front == nil {
		front = &ParetoFront{}
		t.front[level] = front
	}
	row := make([]mg.Plan, m)
	for i := 0; i < m; i++ {
		best := -1
		bestCost := math.Inf(1)
		for c, cand := range cands {
			cost := cand.costPerAcc[i]
			if cost < bestCost {
				best, bestCost = c, cost
			}
			if !math.IsInf(cost, 1) {
				front.Add(ParetoPoint{Accuracy: t.cfg.Accuracies[i], Cost: cost, Plan: withIters(cand, i)})
			}
		}
		if best < 0 {
			// Every iterative choice missed the target and direct was not
			// explored; fall back to direct, which is always exact.
			t.logf("level %d acc %g: no feasible candidate, falling back to direct", level, t.cfg.Accuracies[i])
			row[i] = mg.Plan{Choice: mg.ChoiceDirect}
			continue
		}
		row[i] = withIters(cands[best], i)
	}
	return row
}

// withIters materializes a candidate's plan for accuracy index i.
func withIters(c measured, i int) mg.Plan {
	p := c.plan
	if p.Choice != mg.ChoiceDirect {
		p.Iters = c.iters[i]
	}
	return p
}

func describeRow(row []mg.Plan) string {
	s := ""
	for i, p := range row {
		if i > 0 {
			s += ", "
		}
		switch p.Choice {
		case mg.ChoiceDirect:
			s += "direct"
		case mg.ChoiceSOR:
			s += fmt.Sprintf("sor×%d", p.Iters)
		case mg.ChoiceRecurse:
			s += fmt.Sprintf("rec%d×%d", p.Sub+1, p.Iters)
		case mg.ChoiceVCycle:
			s += fmt.Sprintf("vchain×%d", p.Iters)
		}
		switch p.Precision {
		case mg.PrecF32:
			s += "/f32"
		case mg.PrecMixed:
			s += "/mix"
		}
	}
	return s
}
