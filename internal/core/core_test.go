package core

import (
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"pbmg/internal/arch"
	"pbmg/internal/grid"
	"pbmg/internal/mg"
	"pbmg/internal/problem"
	"pbmg/internal/refsol"
)

// newModelTuner builds a fast deterministic tuner on the Harpertown model.
func newModelTuner(t *testing.T, maxLevel int, dist grid.Distribution) *Tuner {
	t.Helper()
	tn, err := New(Config{
		MaxLevel:          maxLevel,
		Distribution:      dist,
		TrainingInstances: 2,
		Seed:              42,
		Coster:            arch.Harpertown(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return tn
}

// testInstance returns a fresh (non-training) problem with its reference.
func testInstance(t *testing.T, level int, dist grid.Distribution, seed int64) *problem.Problem {
	t.Helper()
	p := problem.Random(grid.SizeOfLevel(level), dist, rand.New(rand.NewSource(seed)))
	refsol.Attach(p, nil)
	return p
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{MaxLevel: 1}); err == nil {
		t.Fatal("MaxLevel 1 accepted")
	}
	if _, err := New(Config{MaxLevel: 3, Accuracies: []float64{10, 5}}); err == nil {
		t.Fatal("descending accuracies accepted")
	}
	if _, err := New(Config{MaxLevel: 3}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestDefaultAccuracies(t *testing.T) {
	want := []float64{1e1, 1e3, 1e5, 1e7, 1e9}
	if !reflect.DeepEqual(DefaultAccuracies(), want) {
		t.Fatalf("DefaultAccuracies = %v", DefaultAccuracies())
	}
}

func TestTuneVProducesValidTable(t *testing.T) {
	tn := newModelTuner(t, 5, grid.Unbiased)
	vt, err := tn.TuneV()
	if err != nil {
		t.Fatal(err)
	}
	if vt.MaxLevel() != 5 {
		t.Fatalf("MaxLevel = %d, want 5", vt.MaxLevel())
	}
	if err := vt.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTunedVMeetsAccuracyTargets(t *testing.T) {
	tn := newModelTuner(t, 5, grid.Unbiased)
	vt, err := tn.TuneV()
	if err != nil {
		t.Fatal(err)
	}
	p := testInstance(t, 5, grid.Unbiased, 777)
	ws := mg.NewWorkspace(nil)
	ws.CacheDirectFactor = true
	ex := &mg.Executor{WS: ws, V: vt}
	for i, target := range vt.Acc {
		x := p.NewState()
		ex.SolveV(x, p.B, i)
		got := p.AccuracyOf(x)
		// Training and test instances differ; allow a modest shortfall.
		if got < target*0.1 {
			t.Errorf("accuracy index %d: achieved %.3g, target %.3g", i, got, target)
		}
	}
}

func TestTunedVUsesDirectAtCoarsestLevel(t *testing.T) {
	tn := newModelTuner(t, 4, grid.Unbiased)
	vt, err := tn.TuneV()
	if err != nil {
		t.Fatal(err)
	}
	// At N=5 a direct solve costs almost nothing under any model; the tuner
	// must discover the shortcut of Figure 1.
	for i := range vt.Acc {
		if p := vt.Plan(2, i); p.Choice != mg.ChoiceDirect {
			t.Errorf("level 2 accuracy %d: choice %v, want direct", i, p.Choice)
		}
	}
}

func TestTuningIsDeterministicUnderModelCoster(t *testing.T) {
	a, err := newModelTuner(t, 4, grid.Biased).TuneV()
	if err != nil {
		t.Fatal(err)
	}
	b, err := newModelTuner(t, 4, grid.Biased).TuneV()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config produced different tables:\n%+v\n%+v", a, b)
	}
}

func TestTunedVBeatsOrTiesReferenceV(t *testing.T) {
	model := arch.Harpertown()
	tn := newModelTuner(t, 6, grid.Unbiased)
	vt, err := tn.TuneV()
	if err != nil {
		t.Fatal(err)
	}
	p := testInstance(t, 6, grid.Unbiased, 999)
	target := 1e5
	accIdx := 2 // 1e5 in the default ladder

	ws := mg.NewWorkspace(nil)
	var tuned mg.OpTrace
	ex := &mg.Executor{WS: ws, V: vt, Rec: &tuned}
	xt := p.NewState()
	ex.SolveV(xt, p.B, accIdx)
	if got := p.AccuracyOf(xt); got < target*0.1 {
		t.Fatalf("tuned solve achieved %.3g, target %.3g", got, target)
	}

	var ref mg.OpTrace
	xr := p.NewState()
	ws.SolveRefV(xr, p.B, target, 100, func() float64 { return p.AccuracyOf(xr) }, &ref)

	ct, cr := model.Cost(&tuned, 0), model.Cost(&ref, 0)
	if ct > cr*1.10 {
		t.Fatalf("tuned cost %.3g exceeds reference V cost %.3g by more than 10%%", ct, cr)
	}
}

func TestTuneFullProducesValidTableAndMeetsTargets(t *testing.T) {
	tn := newModelTuner(t, 5, grid.Biased)
	vt, err := tn.TuneV()
	if err != nil {
		t.Fatal(err)
	}
	ft, err := tn.TuneFull(vt)
	if err != nil {
		t.Fatal(err)
	}
	if err := ft.Validate(); err != nil {
		t.Fatal(err)
	}
	p := testInstance(t, 5, grid.Biased, 555)
	ws := mg.NewWorkspace(nil)
	ws.CacheDirectFactor = true
	ex := &mg.Executor{WS: ws, V: vt, F: ft}
	for i, target := range ft.Acc {
		x := p.NewState()
		ex.SolveFull(x, p.B, i)
		if got := p.AccuracyOf(x); got < target*0.1 {
			t.Errorf("full accuracy index %d: achieved %.3g, target %.3g", i, got, target)
		}
	}
}

func TestTuneFullRequiresCompleteVTable(t *testing.T) {
	tn := newModelTuner(t, 5, grid.Unbiased)
	short := &mg.VTable{Acc: DefaultAccuracies(), Plans: [][]mg.Plan{}}
	if _, err := tn.TuneFull(short); err == nil {
		t.Fatal("TuneFull accepted a V table shallower than MaxLevel")
	}
}

func TestTuneBundleSaveLoad(t *testing.T) {
	tn := newModelTuner(t, 4, grid.Unbiased)
	bundle, err := tn.Tune()
	if err != nil {
		t.Fatal(err)
	}
	if bundle.Machine != "intel-harpertown" || bundle.Distribution != "unbiased" {
		t.Fatalf("bundle metadata wrong: %+v", bundle)
	}
	path := filepath.Join(t.TempDir(), "tuned.json")
	if err := bundle.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bundle.V, loaded.V) || !reflect.DeepEqual(bundle.F, loaded.F) {
		t.Fatal("save/load round trip altered the tables")
	}
}

func TestLoadRejectsMissingAndInvalid(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("Load accepted a missing file")
	}
}

func TestHeuristicTables(t *testing.T) {
	tn := newModelTuner(t, 5, grid.Biased)
	for _, sub := range []float64{1e1, 1e3, 1e9} {
		vt, err := tn.TuneHeuristic(sub, 1e9)
		if err != nil {
			t.Fatalf("heuristic %g: %v", sub, err)
		}
		p := testInstance(t, 5, grid.Biased, 31337)
		ws := mg.NewWorkspace(nil)
		ws.CacheDirectFactor = true
		ex := &mg.Executor{WS: ws, V: vt}
		x := p.NewState()
		ex.SolveV(x, p.B, len(vt.Acc)-1)
		if got := p.AccuracyOf(x); got < 1e9*0.1 {
			t.Errorf("heuristic %s achieved %.3g, want ≈1e9", HeuristicName(sub, 1e9), got)
		}
	}
	if _, err := tn.TuneHeuristic(1e9, 1e5); err == nil {
		t.Fatal("sub-accuracy above top accepted")
	}
}

func TestHeuristicName(t *testing.T) {
	if got := HeuristicName(1e3, 1e9); got != "10^3/10^9" {
		t.Fatalf("HeuristicName = %q", got)
	}
	if got := HeuristicName(1e9, 1e9); got != "10^9" {
		t.Fatalf("HeuristicName = %q", got)
	}
}

func TestFrontPopulatedAndNonDominated(t *testing.T) {
	tn := newModelTuner(t, 4, grid.Unbiased)
	if _, err := tn.TuneV(); err != nil {
		t.Fatal(err)
	}
	for level := 2; level <= 4; level++ {
		f := tn.Front(level)
		if f == nil || f.Len() == 0 {
			t.Fatalf("level %d: empty Pareto front", level)
		}
		pts := f.Points()
		for i := range pts {
			for j := range pts {
				if i != j && dominates(pts[i], pts[j]) {
					t.Fatalf("level %d: front contains dominated point %+v < %+v", level, pts[j], pts[i])
				}
			}
		}
	}
}

func TestParetoFrontBasics(t *testing.T) {
	var f ParetoFront
	if !f.Add(ParetoPoint{Accuracy: 10, Cost: 5}) {
		t.Fatal("first point rejected")
	}
	if f.Add(ParetoPoint{Accuracy: 9, Cost: 6}) {
		t.Fatal("dominated point accepted")
	}
	if !f.Add(ParetoPoint{Accuracy: 100, Cost: 50}) {
		t.Fatal("non-dominated point rejected")
	}
	if !f.Add(ParetoPoint{Accuracy: 100, Cost: 3}) {
		t.Fatal("dominating point rejected")
	}
	// The last point dominates both earlier ones.
	if f.Len() != 1 {
		t.Fatalf("front size = %d, want 1", f.Len())
	}
	best, ok := f.Best(50)
	if !ok || best.Cost != 3 {
		t.Fatalf("Best(50) = %+v, %v", best, ok)
	}
	if _, ok := f.Best(1e6); ok {
		t.Fatal("Best above max accuracy should fail")
	}
}

// Property: a ParetoFront never contains a dominated pair, regardless of
// insertion order.
func TestParetoInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var front ParetoFront
		for i := 0; i < 50; i++ {
			front.Add(ParetoPoint{
				Accuracy: math.Exp(rng.Float64() * 20),
				Cost:     math.Exp(rng.Float64() * 10),
			})
		}
		pts := front.Points()
		for i := range pts {
			for j := range pts {
				if i != j && dominates(pts[i], pts[j]) {
					return false
				}
			}
		}
		// Points must be sorted by accuracy, and therefore (being
		// non-dominated) by descending cost.
		for i := 1; i < len(pts); i++ {
			if pts[i].Accuracy < pts[i-1].Accuracy || pts[i].Cost < pts[i-1].Cost == false {
				// ascending accuracy must come with ascending cost
				if pts[i].Cost <= pts[i-1].Cost {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCountItersInfeasibleMarking(t *testing.T) {
	tn := newModelTuner(t, 4, grid.Unbiased)
	probs := tn.training(3)
	// A step that does nothing can never reach any target.
	noop := func(x, b *grid.Grid, rec mg.Recorder) {}
	iters := tn.countIters(probs, noop, 5)
	for i, v := range iters {
		if v != 0 {
			t.Fatalf("target %d counted %d iters for a no-op step", i, v)
		}
	}
}

func TestWallClockTuningSmall(t *testing.T) {
	// A tiny end-to-end wall-clock tuning run: just checks it completes and
	// produces a valid, accurate table under real timing.
	tn, err := New(Config{
		MaxLevel:          4,
		Distribution:      grid.Unbiased,
		TrainingInstances: 2,
		Seed:              7,
		Coster:            arch.WallClock{},
	})
	if err != nil {
		t.Fatal(err)
	}
	vt, err := tn.TuneV()
	if err != nil {
		t.Fatal(err)
	}
	p := testInstance(t, 4, grid.Unbiased, 123)
	ws := mg.NewWorkspace(nil)
	ws.CacheDirectFactor = true
	ex := &mg.Executor{WS: ws, V: vt}
	x := p.NewState()
	ex.SolveV(x, p.B, len(vt.Acc)-1)
	if got := p.AccuracyOf(x); got < 1e8 {
		t.Fatalf("wall-clock tuned solve achieved %.3g, want ≈1e9", got)
	}
}
