package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadedConfig pairs a tuned bundle with the file it was read from, so
// callers (the serving registry, CLI error messages) can name the source of
// a configuration.
type LoadedConfig struct {
	Path string
	T    *Tuned
}

// LoadDir loads every .json tuned configuration directly inside dir, in
// filename order — the registry's "directory of tuned tables" layout, one
// file per (family, ε) as written by Tuned.Save / mgtune. Any .json file
// that is not a valid tuned bundle fails the whole load with an error naming
// the file: a serving process must not come up quietly missing a family.
func LoadDir(dir string) ([]LoadedConfig, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("core: read config dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.EqualFold(filepath.Ext(e.Name()), ".json") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("core: no .json tuned configurations in %s", dir)
	}
	configs := make([]LoadedConfig, 0, len(names))
	for _, name := range names {
		path := filepath.Join(dir, name)
		t, err := Load(path)
		if err != nil {
			return nil, fmt.Errorf("core: load config dir %s: %w", dir, err)
		}
		configs = append(configs, LoadedConfig{Path: path, T: t})
	}
	return configs, nil
}
