package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pbmg/internal/grid"
	"pbmg/internal/mg"
)

func TestTuneVParetoFrontsAreNonDominated(t *testing.T) {
	tn := newModelTuner(t, 5, grid.Unbiased)
	fronts, err := tn.TuneVPareto(ParetoConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for level := 1; level <= 5; level++ {
		f := fronts[level]
		if f == nil || f.Len() == 0 {
			t.Fatalf("level %d: missing front", level)
		}
		pts := f.Points()
		for i := range pts {
			for j := range pts {
				if i == j {
					continue
				}
				if pts[i].Accuracy >= pts[j].Accuracy && pts[i].Cost <= pts[j].Cost &&
					(pts[i].Accuracy > pts[j].Accuracy || pts[i].Cost < pts[j].Cost) {
					t.Fatalf("level %d: dominated point on front", level)
				}
			}
		}
	}
}

func TestParetoFrontRespectsMaxFront(t *testing.T) {
	tn := newModelTuner(t, 4, grid.Unbiased)
	fronts, err := tn.TuneVPareto(ParetoConfig{MaxFront: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Anchored thinning may keep up to one extra point per discrete target
	// beyond the spread budget.
	limit := 4 + len(DefaultAccuracies()) + 1
	for level, f := range fronts {
		if f.Len() > limit {
			t.Fatalf("level %d: front size %d exceeds %d", level, f.Len(), limit)
		}
	}
}

func TestParetoPlanMeetsAccuracyOnTestData(t *testing.T) {
	tn := newModelTuner(t, 5, grid.Unbiased)
	pt, err := tn.BestParetoPlan(ParetoConfig{}, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Accuracy < 1e5 {
		t.Fatalf("selected plan's trained accuracy %.3g below target", pt.Accuracy)
	}
	p := testInstance(t, 5, grid.Unbiased, 4242)
	ws := mg.NewWorkspace(nil)
	ws.CacheDirectFactor = true
	x := p.NewState()
	pt.Node.Execute(ws, x, p.B, nil)
	if got := p.AccuracyOf(x); got < 1e4 {
		t.Fatalf("full-DP plan achieved %.3g on test data, want ≈1e5", got)
	}
}

func TestParetoAtLeastAsGoodAsDiscrete(t *testing.T) {
	// The discrete table is an approximation of the full DP (§2.3): for any
	// target accuracy the full-DP front must offer an algorithm no more
	// expensive than the discrete tuner's pick, measured by the same model.
	tn := newModelTuner(t, 5, grid.Unbiased)
	vt, err := tn.TuneV()
	if err != nil {
		t.Fatal(err)
	}
	fronts, err := tn.TuneVPareto(ParetoConfig{MaxFront: 16})
	if err != nil {
		t.Fatal(err)
	}
	model := tn.cfg.Coster
	probs := tn.training(5)
	ws := tn.ws
	for i, target := range vt.Acc {
		var discTr mg.OpTrace
		ex := &mg.Executor{WS: ws, V: vt, Rec: &discTr}
		x := probs[0].NewState()
		ex.SolveV(x, probs[0].B, i)
		discCost := model.Cost(&discTr, 0)

		pt, ok := fronts[5].Best(target)
		if !ok {
			t.Fatalf("no full-DP plan for accuracy %g", target)
		}
		if pt.Cost > discCost*1.05 {
			t.Errorf("accuracy %g: full-DP cost %.3g exceeds discrete cost %.3g", target, pt.Cost, discCost)
		}
	}
}

func TestPlanNodeString(t *testing.T) {
	n := &PlanNode{Choice: mg.ChoiceRecurse, Iters: 3,
		Sub: &PlanNode{Choice: mg.ChoiceSOR, Iters: 7}}
	if got := n.String(); got != "rec×3(sor×7)" {
		t.Fatalf("String = %q", got)
	}
	if (&PlanNode{Choice: mg.ChoiceDirect}).String() != "direct" {
		t.Fatal("direct String mismatch")
	}
}

func TestPlanNodeExecuteDirectAndSOR(t *testing.T) {
	p := testInstance(t, 4, grid.Biased, 9)
	ws := mg.NewWorkspace(nil)
	ws.CacheDirectFactor = true
	x := p.NewState()
	(&PlanNode{Choice: mg.ChoiceDirect}).Execute(ws, x, p.B, nil)
	if acc := p.AccuracyOf(x); acc < 1e10 {
		t.Fatalf("direct node accuracy %.3g", acc)
	}
	y := p.NewState()
	(&PlanNode{Choice: mg.ChoiceSOR, Iters: 50}).Execute(ws, y, p.B, nil)
	if acc := p.AccuracyOf(y); acc < 10 {
		t.Fatalf("SOR node accuracy %.3g after 50 sweeps", acc)
	}
}

func TestNodeFrontThinKeepsExtremes(t *testing.T) {
	f := &NodeFront{}
	for i := 1; i <= 30; i++ {
		f.Add(NodePoint{Accuracy: math.Pow(10, float64(i)), Cost: float64(i), Node: &PlanNode{Choice: mg.ChoiceDirect}})
	}
	f.thin(5, nil)
	if f.Len() > 6 {
		t.Fatalf("thin left %d points", f.Len())
	}
	pts := f.Points()
	if pts[0].Accuracy != 1e1 || pts[len(pts)-1].Accuracy != 1e30 {
		t.Fatalf("thin dropped the extremes: %v .. %v", pts[0].Accuracy, pts[len(pts)-1].Accuracy)
	}
}

func TestNodeFrontBest(t *testing.T) {
	f := &NodeFront{}
	f.Add(NodePoint{Accuracy: 10, Cost: 1})
	f.Add(NodePoint{Accuracy: 1000, Cost: 5})
	if _, ok := f.Best(1e6); ok {
		t.Fatal("Best above front accepted")
	}
	pt, ok := f.Best(100)
	if !ok || pt.Cost != 5 {
		t.Fatalf("Best(100) = %+v, %v", pt, ok)
	}
}

// Property: NodeFront.Add maintains the non-domination invariant under any
// insertion sequence.
func TestNodeFrontInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var front NodeFront
		for i := 0; i < 60; i++ {
			front.Add(NodePoint{
				Accuracy: math.Exp(rng.Float64() * 15),
				Cost:     math.Exp(rng.Float64() * 8),
			})
		}
		pts := front.Points()
		for i := 1; i < len(pts); i++ {
			// Sorted ascending by accuracy: cost must strictly ascend too,
			// otherwise a point would dominate its neighbour.
			if pts[i].Cost <= pts[i-1].Cost {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestParetoDescribesRichPlans(t *testing.T) {
	tn := newModelTuner(t, 5, grid.Unbiased)
	fronts, err := tn.TuneVPareto(ParetoConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// At the top level the front should contain at least one genuinely
	// recursive plan (multigrid), not just direct/SOR.
	found := false
	for _, pt := range fronts[5].Points() {
		if strings.HasPrefix(pt.Node.String(), "rec×") {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no recursive plan on the top-level front")
	}
}
