package core

import (
	"fmt"
	"math"
	"time"

	"pbmg/internal/grid"
	"pbmg/internal/mg"
	"pbmg/internal/problem"
)

// TuneFull runs the dynamic program for the FULL-MULTIGRID family (§2.4) on
// top of an already-tuned V table. For every level and accuracy target it
// compares a direct solve against every (estimate accuracy j, solve-phase
// choice) combination: ESTIMATE_j followed by iterated SOR or by iterated
// RECURSE_k, with j and k chosen independently as in the paper.
func (t *Tuner) TuneFull(vt *mg.VTable) (*mg.FTable, error) {
	if vt.MaxLevel() < t.cfg.MaxLevel {
		return nil, fmt.Errorf("core: V table tuned to level %d, need %d", vt.MaxLevel(), t.cfg.MaxLevel)
	}
	ft := &mg.FTable{Acc: append([]float64(nil), t.cfg.Accuracies...)}
	for level := 2; level <= t.cfg.MaxLevel; level++ {
		row := t.tuneFullLevel(vt, ft, level)
		ft.Plans = append(ft.Plans, row)
		t.logf("full level %d (N=%d): %s", level, grid.SizeOfLevel(level), describeFullRow(row))
	}
	if err := ft.Validate(); err != nil {
		return nil, fmt.Errorf("core: tuned full table invalid: %w", err)
	}
	return ft, nil
}

// fullCandidate is one measured FULL-MULTIGRID candidate.
type fullCandidate struct {
	plan       mg.FullPlan
	iters      []int // solve-phase iterations per accuracy (-1 infeasible)
	costPerAcc []float64
}

func (t *Tuner) tuneFullLevel(vt *mg.VTable, ft *mg.FTable, level int) []mg.FullPlan {
	probs := t.training(level)
	m := len(t.cfg.Accuracies)
	var cands []fullCandidate

	if level <= t.cfg.DirectMaxLevel {
		d := t.measureDirect(level, probs)
		cands = append(cands, fullCandidate{plan: mg.FullPlan{Choice: mg.FullDirect}, costPerAcc: d.costPerAcc})
	}

	for j := 0; j < m; j++ {
		estStates, estAccs := t.runEstimates(vt, ft, level, j, probs)
		estTr, estDur := t.timeEstimate(vt, ft, level, j, probs)

		// Solve phase: iterated SOR from the estimated state.
		sorStep := t.sorStep(level)
		sorIters := t.countFromStates(probs, estStates, estAccs, sorStep, t.cfg.MaxSORIters)
		sorTr, sorDur := t.timeOneIter(probs, sorStep)
		cands = append(cands, t.priceFull(
			mg.FullPlan{Choice: mg.FullEstimate, EstAcc: j, Solve: mg.ChoiceSOR},
			sorIters, estTr, estDur, sorTr, sorDur))

		// Solve phase: iterated standard V-cycles from the estimated state.
		vStep := func(x, b *grid.Grid, rec mg.Recorder) { t.ws.RefVCycle(x, b, rec) }
		vIters := t.countFromStates(probs, estStates, estAccs, vStep, t.cfg.MaxRecurseIters)
		vTr, vDur := t.timeOneIter(probs, vStep)
		cands = append(cands, t.priceFull(
			mg.FullPlan{Choice: mg.FullEstimate, EstAcc: j, Solve: mg.ChoiceVCycle},
			vIters, estTr, estDur, vTr, vDur))

		// Solve phase: iterated RECURSE_k from the estimated state.
		for k := 0; k < m; k++ {
			ex := &mg.Executor{WS: t.ws, V: vt}
			recStep := func(x, b *grid.Grid, rec mg.Recorder) {
				ex.Rec = rec
				ex.Recurse(x, b, k)
			}
			recIters := t.countFromStates(probs, estStates, estAccs, recStep, t.cfg.MaxRecurseIters)
			recTr, recDur := t.timeOneIter(probs, recStep)
			cands = append(cands, t.priceFull(
				mg.FullPlan{Choice: mg.FullEstimate, EstAcc: j, Solve: mg.ChoiceRecurse, SolveSub: k},
				recIters, estTr, estDur, recTr, recDur))
		}
	}

	row := make([]mg.FullPlan, m)
	for i := 0; i < m; i++ {
		best := -1
		bestCost := math.Inf(1)
		for c, cand := range cands {
			if cand.costPerAcc[i] < bestCost {
				best, bestCost = c, cand.costPerAcc[i]
			}
		}
		if best < 0 {
			t.logf("full level %d acc %g: no feasible candidate, falling back to direct", level, t.cfg.Accuracies[i])
			row[i] = mg.FullPlan{Choice: mg.FullDirect}
			continue
		}
		p := cands[best].plan
		if p.Choice == mg.FullEstimate {
			p.Iters = cands[best].iters[i]
		}
		row[i] = p
	}
	return row
}

// sorStep returns a one-sweep SOR step at the given level.
func (t *Tuner) sorStep(level int) stepFunc {
	n := grid.SizeOfLevel(level)
	omega := t.ws.OmegaOpt(n)
	return func(x, b *grid.Grid, rec mg.Recorder) { t.ws.SOR(x, b, omega, 1, rec) }
}

// runEstimates executes ESTIMATE_j once per training instance, returning
// the post-estimate states and the accuracies already achieved.
func (t *Tuner) runEstimates(vt *mg.VTable, ft *mg.FTable, level, j int, probs []*problem.Problem) ([]*grid.Grid, []float64) {
	states := make([]*grid.Grid, len(probs))
	accs := make([]float64, len(probs))
	for i, p := range probs {
		ex := &mg.Executor{WS: t.ws, V: vt, F: ft}
		x := p.NewState()
		ex.Estimate(x, p.B, j)
		states[i] = x
		accs[i] = p.AccuracyOf(x)
	}
	return states, accs
}

// timeEstimate measures one ESTIMATE_j execution (trace and wall time).
func (t *Tuner) timeEstimate(vt *mg.VTable, ft *mg.FTable, level, j int, probs []*problem.Problem) (*mg.OpTrace, time.Duration) {
	step := func(x, b *grid.Grid, rec mg.Recorder) {
		ex := &mg.Executor{WS: t.ws, V: vt, F: ft, Rec: rec}
		ex.Estimate(x, b, j)
	}
	return t.timeOneIter(probs, step)
}

// countFromStates counts, per accuracy target, the solve-phase iterations
// needed when starting from the estimated states. A target already met by
// the estimate alone needs zero iterations. Returns -1 for infeasible
// targets (so zero remains distinguishable).
func (t *Tuner) countFromStates(probs []*problem.Problem, states []*grid.Grid, estAccs []float64, step stepFunc, cap int) []int {
	m := len(t.cfg.Accuracies)
	need := make([]int, m)
	bad := make([]bool, m)
	for pi, p := range probs {
		x := states[pi].Clone()
		met := 0
		for met < m && estAccs[pi] >= t.cfg.Accuracies[met] {
			met++ // estimate alone already meets this target (0 iterations)
		}
		for it := 1; it <= cap && met < m; it++ {
			step(x, p.B, nil)
			acc := p.AccuracyOf(x)
			for met < m && acc >= t.cfg.Accuracies[met] {
				if it > need[met] {
					need[met] = it
				}
				met++
			}
		}
		for i := met; i < m; i++ {
			bad[i] = true // this instance missed the target within cap
		}
	}
	for i := range need {
		if bad[i] {
			need[i] = -1
		}
	}
	return need
}

// priceFull combines estimate cost and per-iteration solve cost into a
// per-accuracy cost vector.
func (t *Tuner) priceFull(plan mg.FullPlan, iters []int, estTr *mg.OpTrace, estDur time.Duration, itTr *mg.OpTrace, itDur time.Duration) fullCandidate {
	costs := make([]float64, len(iters))
	for i, n := range iters {
		if n < 0 {
			costs[i] = math.Inf(1)
			continue
		}
		total := &mg.OpTrace{}
		total.Merge(estTr)
		if n > 0 {
			total.Merge(itTr.Scaled(n))
		}
		costs[i] = t.cfg.Coster.Cost(total, estDur+time.Duration(n)*itDur)
	}
	return fullCandidate{plan: plan, iters: iters, costPerAcc: costs}
}

func describeFullRow(row []mg.FullPlan) string {
	s := ""
	for i, p := range row {
		if i > 0 {
			s += ", "
		}
		switch {
		case p.Choice == mg.FullDirect:
			s += "direct"
		case p.Solve == mg.ChoiceSOR:
			s += fmt.Sprintf("est%d+sor×%d", p.EstAcc+1, p.Iters)
		case p.Solve == mg.ChoiceVCycle:
			s += fmt.Sprintf("est%d+vchain×%d", p.EstAcc+1, p.Iters)
		default:
			s += fmt.Sprintf("est%d+rec%d×%d", p.EstAcc+1, p.SolveSub+1, p.Iters)
		}
	}
	return s
}
