package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"pbmg/internal/grid"
	"pbmg/internal/mg"
)

// This file implements the full dynamic-programming formulation of §2.2,
// which the discrete-accuracy table of §2.3 approximates: instead of
// remembering one algorithm per discrete accuracy p_i, the tuner keeps the
// whole Pareto-optimal set of (accuracy, cost) algorithms at every level
// and substitutes any of them into the recursive step one level up. Plans
// here are self-contained trees (each recursive choice owns its
// sub-algorithm) rather than table indices.

// PlanNode is one self-contained tuned algorithm for a level.
type PlanNode struct {
	Choice mg.Choice `json:"choice"`
	Iters  int       `json:"iters,omitempty"`
	// Sub is the coarse-level sub-algorithm of a recursive plan.
	Sub *PlanNode `json:"sub,omitempty"`
}

// Execute runs the plan on x in place.
func (n *PlanNode) Execute(ws *mg.Workspace, x, b *grid.Grid, rec mg.Recorder) {
	switch n.Choice {
	case mg.ChoiceDirect:
		ws.SolveDirect(x, b, rec)
	case mg.ChoiceSOR:
		ws.SOR(x, b, ws.OmegaOpt(x.N()), n.Iters, rec)
	case mg.ChoiceRecurse:
		for it := 0; it < n.Iters; it++ {
			ws.RecurseWith(x, b, rec, func(cx, cb *grid.Grid) {
				n.Sub.Execute(ws, cx, cb, rec)
			})
		}
	default:
		panic(fmt.Sprintf("core: invalid plan node choice %v", n.Choice))
	}
}

// String renders the plan compactly, e.g. "rec×3(rec×1(direct))".
func (n *PlanNode) String() string {
	switch n.Choice {
	case mg.ChoiceDirect:
		return "direct"
	case mg.ChoiceSOR:
		return fmt.Sprintf("sor×%d", n.Iters)
	default:
		return fmt.Sprintf("rec×%d(%s)", n.Iters, n.Sub)
	}
}

// NodePoint is one measured algorithm on a level's Pareto front.
type NodePoint struct {
	Accuracy float64
	Cost     float64
	Node     *PlanNode
}

// NodeFront is the non-dominated set of algorithms at one level.
type NodeFront struct {
	pts []NodePoint
}

// Add inserts p unless dominated; it evicts points p dominates and reports
// whether p was kept.
func (f *NodeFront) Add(p NodePoint) bool {
	kept := f.pts[:0]
	for _, q := range f.pts {
		qDom := q.Accuracy >= p.Accuracy && q.Cost <= p.Cost
		if qDom {
			return false
		}
		pDom := p.Accuracy >= q.Accuracy && p.Cost <= q.Cost
		if !pDom {
			kept = append(kept, q)
		}
	}
	f.pts = append(kept, p)
	return true
}

// Points returns the front sorted by ascending accuracy.
func (f *NodeFront) Points() []NodePoint {
	out := append([]NodePoint(nil), f.pts...)
	sort.Slice(out, func(i, j int) bool { return out[i].Accuracy < out[j].Accuracy })
	return out
}

// Len returns the front size.
func (f *NodeFront) Len() int { return len(f.pts) }

// Best returns the cheapest algorithm achieving at least the accuracy.
func (f *NodeFront) Best(accuracy float64) (NodePoint, bool) {
	var best NodePoint
	found := false
	for _, p := range f.pts {
		if p.Accuracy >= accuracy && (!found || p.Cost < best.Cost) {
			best, found = p, true
		}
	}
	return best, found
}

// thin caps the front at roughly max points while always keeping the
// extremes, the cheapest point at or above every anchor accuracy (so the
// discrete ladder's picks survive pruning), and an even spread in
// log-accuracy between them — the pruning the paper applies to the "very
// large" optimal set for efficiency (§2.3).
func (f *NodeFront) thin(max int, anchors []float64) {
	if max < 2 || len(f.pts) <= max {
		return
	}
	pts := f.Points()
	keep := map[int]bool{0: true, len(pts) - 1: true}
	for _, a := range anchors {
		best := -1
		for i, p := range pts {
			if p.Accuracy >= a && (best < 0 || p.Cost < pts[best].Cost) {
				best = i
			}
		}
		if best >= 0 {
			keep[best] = true
		}
	}
	lo := math.Log(pts[0].Accuracy)
	hi := math.Log(pts[len(pts)-1].Accuracy)
	step := (hi - lo) / float64(max-1)
	idx := 1
	for b := 1; b < max-1 && step > 0; b++ {
		targetAcc := lo + float64(b)*step
		bestIdx := -1
		for i := idx; i < len(pts)-1; i++ {
			if math.Log(pts[i].Accuracy) <= targetAcc {
				bestIdx = i
			} else {
				break
			}
		}
		if bestIdx >= 0 {
			keep[bestIdx] = true
			idx = bestIdx + 1
		}
	}
	kept := make([]NodePoint, 0, len(keep))
	for i, p := range pts {
		if keep[i] {
			kept = append(kept, p)
		}
	}
	f.pts = kept
}

// ParetoConfig bounds the full-DP search.
type ParetoConfig struct {
	// MaxFront caps the per-level front size (default 10).
	MaxFront int
	// MaxSORSweeps caps the SOR candidate sweep counts (default 100).
	MaxSORSweeps int
	// MaxRecurseIters caps recursive candidate iteration counts (default 20).
	MaxRecurseIters int
}

func (c ParetoConfig) defaults() ParetoConfig {
	if c.MaxFront == 0 {
		c.MaxFront = 10
	}
	if c.MaxSORSweeps == 0 {
		c.MaxSORSweeps = 100
	}
	if c.MaxRecurseIters == 0 {
		c.MaxRecurseIters = 20
	}
	return c
}

// TuneVPareto runs the full dynamic program of §2.2 up to the tuner's
// MaxLevel and returns the Pareto front of algorithms at each level
// (indexed 1..MaxLevel). Accuracy of a candidate is the worst (minimum)
// accuracy across training instances — an algorithm's guaranteed level.
func (t *Tuner) TuneVPareto(pc ParetoConfig) (map[int]*NodeFront, error) {
	pc = pc.defaults()
	fronts := make(map[int]*NodeFront, t.cfg.MaxLevel)

	base := &NodeFront{}
	basePt, err := t.measureNode(1, &PlanNode{Choice: mg.ChoiceDirect})
	if err != nil {
		return nil, err
	}
	base.Add(basePt)
	fronts[1] = base

	for level := 2; level <= t.cfg.MaxLevel; level++ {
		front := &NodeFront{}
		if level <= t.cfg.DirectMaxLevel {
			pt, err := t.measureNode(level, &PlanNode{Choice: mg.ChoiceDirect})
			if err != nil {
				return nil, err
			}
			front.Add(pt)
		}
		t.addIterativeCandidates(front, level, &PlanNode{Choice: mg.ChoiceSOR}, pc.MaxSORSweeps)
		for _, sub := range fronts[level-1].Points() {
			t.addIterativeCandidates(front, level,
				&PlanNode{Choice: mg.ChoiceRecurse, Sub: sub.Node}, pc.MaxRecurseIters)
		}
		front.thin(pc.MaxFront, t.cfg.Accuracies)
		if front.Len() == 0 {
			return nil, fmt.Errorf("core: empty Pareto front at level %d", level)
		}
		fronts[level] = front
		t.logf("pareto level %d: %d algorithms on the front", level, front.Len())
	}
	return fronts, nil
}

// measureNode prices a non-iterative plan (direct) at a level.
func (t *Tuner) measureNode(level int, node *PlanNode) (NodePoint, error) {
	probs := t.training(level)
	acc := math.Inf(1)
	for _, p := range probs {
		x := p.NewState()
		node.Execute(t.ws, x, p.B, nil)
		if a := p.AccuracyOf(x); a < acc {
			acc = a
		}
	}
	var tr mg.OpTrace
	x := probs[0].NewState()
	start := time.Now()
	node.Execute(t.ws, x, probs[0].B, &tr)
	cost := t.cfg.Coster.Cost(&tr, time.Since(start))
	return NodePoint{Accuracy: acc, Cost: cost, Node: node}, nil
}

// addIterativeCandidates measures proto (an SOR or recurse step) iterated
// 1..cap times, adding one candidate per iteration count: the per-iteration
// step is fixed work, so accuracy is tracked incrementally on every
// training instance while cost scales linearly in the iteration count.
func (t *Tuner) addIterativeCandidates(front *NodeFront, level int, proto *PlanNode, cap int) {
	probs := t.training(level)
	one := *proto
	one.Iters = 1
	step := func(x, b *grid.Grid, rec mg.Recorder) { one.Execute(t.ws, x, b, rec) }
	tr1, d1 := t.timeOneIter(probs, step)
	perIter := t.cfg.Coster.Cost(tr1, d1)

	// accs[i][s] is instance i's accuracy after s+1 iterations.
	accs := make([][]float64, len(probs))
	for i, p := range probs {
		accs[i] = make([]float64, cap)
		x := p.NewState()
		for s := 0; s < cap; s++ {
			step(x, p.B, nil)
			accs[i][s] = p.AccuracyOf(x)
		}
	}
	for s := 0; s < cap; s++ {
		worst := math.Inf(1)
		for i := range probs {
			if accs[i][s] < worst {
				worst = accs[i][s]
			}
		}
		node := *proto
		node.Iters = s + 1
		front.Add(NodePoint{Accuracy: worst, Cost: float64(s+1) * perIter, Node: &node})
	}
}

// BestParetoPlan returns the cheapest full-DP algorithm achieving the given
// accuracy at the tuner's MaxLevel, tuning the fronts on demand.
func (t *Tuner) BestParetoPlan(pc ParetoConfig, accuracy float64) (NodePoint, error) {
	fronts, err := t.TuneVPareto(pc)
	if err != nil {
		return NodePoint{}, err
	}
	pt, ok := fronts[t.cfg.MaxLevel].Best(accuracy)
	if !ok {
		return NodePoint{}, fmt.Errorf("core: no full-DP algorithm reaches accuracy %g at level %d",
			accuracy, t.cfg.MaxLevel)
	}
	return pt, nil
}
