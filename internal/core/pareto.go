package core

import (
	"sort"

	"pbmg/internal/mg"
)

// ParetoPoint is one measured candidate algorithm: the accuracy level it
// achieves, what it costs, and the plan that realizes it.
type ParetoPoint struct {
	Accuracy float64
	Cost     float64
	Plan     mg.Plan
}

// dominates reports whether a is at least as good as b in both dimensions
// and strictly better in one (higher accuracy, lower cost).
func dominates(a, b ParetoPoint) bool {
	if a.Accuracy < b.Accuracy || a.Cost > b.Cost {
		return false
	}
	return a.Accuracy > b.Accuracy || a.Cost < b.Cost
}

// ParetoFront maintains the set of non-dominated (accuracy, cost)
// candidates — the full dynamic-programming formulation of §2.2, of which
// the discrete accuracy table is the approximation the paper ships. The
// zero value is an empty front.
type ParetoFront struct {
	pts []ParetoPoint
}

// Add inserts p unless it is dominated by an existing point; points that p
// dominates are evicted. It reports whether p was kept.
func (f *ParetoFront) Add(p ParetoPoint) bool {
	kept := f.pts[:0]
	for _, q := range f.pts {
		if dominates(q, p) || (q.Accuracy == p.Accuracy && q.Cost == p.Cost) {
			return false
		}
		if !dominates(p, q) {
			kept = append(kept, q)
		}
	}
	f.pts = append(kept, p)
	return true
}

// Points returns the front sorted by ascending accuracy.
func (f *ParetoFront) Points() []ParetoPoint {
	out := append([]ParetoPoint(nil), f.pts...)
	sort.Slice(out, func(i, j int) bool { return out[i].Accuracy < out[j].Accuracy })
	return out
}

// Len returns the number of non-dominated points.
func (f *ParetoFront) Len() int { return len(f.pts) }

// Best returns the cheapest point achieving at least the given accuracy,
// and whether one exists — the "fastest algorithm better than each accuracy
// cutoff line" selection of Figure 2(a).
func (f *ParetoFront) Best(accuracy float64) (ParetoPoint, bool) {
	best := ParetoPoint{}
	found := false
	for _, p := range f.pts {
		if p.Accuracy >= accuracy && (!found || p.Cost < best.Cost) {
			best, found = p, true
		}
	}
	return best, found
}
