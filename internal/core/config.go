package core

import (
	"encoding/json"
	"fmt"
	"os"

	"pbmg/internal/grid"
	"pbmg/internal/mg"
	"pbmg/internal/stencil"
)

// Tuned bundles the output of a tuning run with its provenance, mirroring
// the configuration files the PetaBricks autotuner writes after dynamic
// tuning so that subsequent runs can reuse the choices (§3.2.1).
//
// A Tuned bundle is immutable once tuning or Load completes: executors only
// read the tables, so one bundle may back any number of concurrent solves.
type Tuned struct {
	// Machine names the Coster the tables were tuned for.
	Machine string `json:"machine"`
	// Family names the operator family the tables were tuned for (empty in
	// configurations predating operator families, meaning "poisson").
	Family string `json:"family,omitempty"`
	// Eps is the operator family parameter (anisotropy ε or coefficient
	// contrast σ; zero/absent for Poisson).
	Eps float64 `json:"eps,omitempty"`
	// Distribution is the training distribution name.
	Distribution string `json:"distribution"`
	// Seed reproduces the training data.
	Seed int64 `json:"seed"`
	// MaxLevel is the finest tuned level.
	MaxLevel int `json:"maxLevel"`
	// V is the tuned MULTIGRID-V table.
	V *mg.VTable `json:"v"`
	// F is the tuned FULL-MULTIGRID table (may be nil if only V was tuned).
	F *mg.FTable `json:"f,omitempty"`
}

// Tune runs the complete dynamic program — V table then full-multigrid
// table — and returns the bundle.
func (t *Tuner) Tune() (*Tuned, error) {
	vt, err := t.TuneV()
	if err != nil {
		return nil, err
	}
	ft, err := t.TuneFull(vt)
	if err != nil {
		return nil, err
	}
	eps := t.cfg.Eps
	if !FamilyHasParam(t.cfg.Family) {
		eps = 0
	}
	return &Tuned{
		Machine:      t.cfg.Coster.Name(),
		Family:       t.cfg.Family.String(),
		Eps:          eps,
		Distribution: t.cfg.Distribution.String(),
		Seed:         t.cfg.Seed,
		MaxLevel:     t.cfg.MaxLevel,
		V:            vt,
		F:            ft,
	}, nil
}

// FamilyValue parses the stored family name (empty means Poisson for
// configurations written before operator families existed).
func (t *Tuned) FamilyValue() (stencil.Family, error) {
	if t.Family == "" {
		return stencil.FamilyPoisson, nil
	}
	return stencil.ParseFamily(t.Family)
}

// OperatorValue reconstructs the operator family the bundle was tuned for,
// discretized at the finest tuned size.
func (t *Tuned) OperatorValue() (*stencil.Operator, error) {
	f, err := t.FamilyValue()
	if err != nil {
		return nil, err
	}
	return stencil.NewOperator(f, t.Eps, grid.SizeOfLevel(t.MaxLevel))
}

// DistributionValue parses the stored distribution name back into a
// grid.Distribution (defaulting to unbiased for unknown names).
func (t *Tuned) DistributionValue() grid.Distribution {
	switch t.Distribution {
	case grid.Biased.String():
		return grid.Biased
	case grid.PointSources.String():
		return grid.PointSources
	default:
		return grid.Unbiased
	}
}

// Validate checks the operator family and both tables. It validates the
// family name and parameter without materializing the operator (for
// variable-coefficient bundles that would build the full coefficient field,
// which Load's caller does once anyway via OperatorValue).
func (t *Tuned) Validate() error {
	f, err := t.FamilyValue()
	if err != nil {
		return fmt.Errorf("core: tuned bundle operator invalid: %w", err)
	}
	if FamilyHasParam(f) && !(t.Eps > 0) {
		return fmt.Errorf("core: tuned bundle operator invalid: family %s needs a positive parameter, got %g", f, t.Eps)
	}
	if t.V == nil {
		return fmt.Errorf("core: tuned bundle has no V table")
	}
	if err := t.V.Validate(); err != nil {
		return err
	}
	if t.F != nil {
		return t.F.Validate()
	}
	return nil
}

// Save writes the bundle as indented JSON.
func (t *Tuned) Save(path string) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return fmt.Errorf("core: marshal tuned config: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a bundle written by Save and validates it.
func Load(path string) (*Tuned, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: read tuned config: %w", err)
	}
	var t Tuned
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("core: parse tuned config: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("core: loaded config invalid: %w", err)
	}
	return &t, nil
}
