package core

import (
	"fmt"
	"math"

	"pbmg/internal/mg"
)

// This file implements the hand-written heuristic strategies the paper
// compares the autotuner against in Figures 7 and 8. Strategy "10^x/10^9"
// requires accuracy 10^x at every recursion level below the input size,
// which itself requires 10^9; Strategy "10^9" requires full accuracy at
// every level. All strategies call the direct method at small sizes
// whenever that is more efficient, exactly as described in §4.2.1.

// TuneHeuristic builds the strategy table for sub-level accuracy subAcc and
// top-level accuracy topAcc. It reuses the tuner's measurement machinery
// but restricts choices to {direct, RECURSE into the sub-accuracy}: the
// heuristics are multigrid shapes, not algorithm portfolios. The returned
// table has Acc = {subAcc, topAcc}; solve with accuracy index 1 at the top
// level. When subAcc == topAcc the table collapses to Strategy "10^9" with
// a single accuracy entry.
func (t *Tuner) TuneHeuristic(subAcc, topAcc float64) (*mg.VTable, error) {
	if subAcc > topAcc {
		return nil, fmt.Errorf("core: sub-accuracy %g exceeds top accuracy %g", subAcc, topAcc)
	}
	accs := []float64{subAcc, topAcc}
	if subAcc == topAcc {
		accs = []float64{topAcc}
	}
	saved := t.cfg.Accuracies
	t.cfg.Accuracies = accs
	defer func() { t.cfg.Accuracies = saved }()

	vt := &mg.VTable{Acc: accs}
	for level := 2; level <= t.cfg.MaxLevel; level++ {
		probs := t.training(level)
		var cands []measured
		if level <= t.cfg.DirectMaxLevel {
			cands = append(cands, t.measureDirect(level, probs))
		}
		// The heuristic always recurses into the sub-accuracy version.
		cands = append(cands, t.measureRecurse(vt, level, 0, probs))

		row := make([]mg.Plan, len(accs))
		for i := range accs {
			best, bestCost := -1, math.Inf(1)
			for c, cand := range cands {
				if cand.costPerAcc[i] < bestCost {
					best, bestCost = c, cand.costPerAcc[i]
				}
			}
			if best < 0 {
				row[i] = mg.Plan{Choice: mg.ChoiceDirect}
				continue
			}
			row[i] = withIters(cands[best], i)
		}
		vt.Plans = append(vt.Plans, row)
	}
	if err := vt.Validate(); err != nil {
		return nil, fmt.Errorf("core: heuristic table invalid: %w", err)
	}
	return vt, nil
}

// HeuristicName formats the paper's strategy labels: "10^x/10^9" or "10^9".
func HeuristicName(subAcc, topAcc float64) string {
	if subAcc == topAcc {
		return fmt.Sprintf("10^%.0f", math.Log10(topAcc))
	}
	return fmt.Sprintf("10^%.0f/10^%.0f", math.Log10(subAcc), math.Log10(topAcc))
}
