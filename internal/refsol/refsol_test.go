package refsol

import (
	"math/rand"
	"testing"

	"pbmg/internal/grid"
	"pbmg/internal/problem"
	"pbmg/internal/stencil"
)

func TestComputeDirectPath(t *testing.T) {
	p := problem.Random(33, grid.Unbiased, rand.New(rand.NewSource(1)))
	x := Compute(p, nil)
	res := stencil.ResidualNorm(x, p.B, p.H)
	scale := grid.L2Interior(p.B) + 1
	if res > 1e-9*scale {
		t.Fatalf("direct-path reference residual %v too large", res)
	}
}

func TestComputeMultigridPath(t *testing.T) {
	// 257 > DirectMaxN forces the converged-multigrid path.
	p := problem.Random(257, grid.Biased, rand.New(rand.NewSource(2)))
	x := Compute(p, nil)
	scale := grid.L2Interior(p.B) + grid.MaxAbsInterior(p.Boundary) + 1
	res := stencil.ResidualNorm(x, p.B, p.H)
	if res > 1e-10*scale {
		t.Fatalf("multigrid-path reference residual %v too large (scale %v)", res, scale)
	}
}

func TestComputeDoesNotMutateProblem(t *testing.T) {
	p := problem.Random(17, grid.Unbiased, rand.New(rand.NewSource(3)))
	before := p.Boundary.Clone()
	Compute(p, nil)
	for i := range before.Data() {
		if p.Boundary.Data()[i] != before.Data()[i] {
			t.Fatal("Compute mutated the problem boundary")
		}
	}
	if p.Optimal() != nil {
		t.Fatal("Compute should not attach the solution; Attach does")
	}
}

func TestAttachIdempotent(t *testing.T) {
	p := problem.Random(17, grid.Unbiased, rand.New(rand.NewSource(4)))
	Attach(p, nil)
	first := p.Optimal()
	Attach(p, nil)
	if p.Optimal() != first {
		t.Fatal("Attach recomputed an existing reference")
	}
}

func TestPathsAgreeNearBoundary(t *testing.T) {
	// At N=129 both paths are viable; they must agree to high precision.
	p := problem.Random(129, grid.Unbiased, rand.New(rand.NewSource(5)))
	direct := Compute(p, nil)

	// Force the multigrid path by solving the same problem at one size
	// larger is wasteful; instead check the direct solution's residual and
	// accept the direct path as truth here. The agreement of the multigrid
	// path with a direct oracle is covered at N=257 by residual; this test
	// pins the boundary constant.
	if p.N != DirectMaxN {
		t.Fatalf("expected N == DirectMaxN == %d", DirectMaxN)
	}
	res := stencil.ResidualNorm(direct, p.B, p.H)
	scale := grid.L2Interior(p.B) + 1
	if res > 1e-9*scale {
		t.Fatalf("boundary-size reference residual %v too large", res)
	}
}

// TestComputeStalledMultigridFallsBackToDirect: for strong anisotropy at
// N > DirectMaxN, point-smoothed V-cycles stall far above the reference
// floor; Compute must detect the stall and replace the bad reference with a
// direct solve rather than silently returning it.
func TestComputeStalledMultigridFallsBackToDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("factors an N=257 band matrix")
	}
	op, err := stencil.NewOperator(stencil.FamilyAnisotropic, 0.01, 257)
	if err != nil {
		t.Fatal(err)
	}
	p := problem.RandomOp(257, grid.Unbiased, rand.New(rand.NewSource(6)), op)
	x := Compute(p, nil)
	scale := grid.L2Interior(p.B) + grid.MaxAbsInterior(p.Boundary) + 1
	res := op.ResidualNorm(nil, x, p.B, p.H)
	if res > stalledResidualFactor*relResidualTarget*scale {
		t.Fatalf("stalled reference returned: residual %v (scale %v)", res, scale)
	}
}
