package refsol

import (
	"math/rand"
	"testing"

	"pbmg/internal/grid"
	"pbmg/internal/problem"
	"pbmg/internal/stencil"
)

// TestCompute3DDirect: at N ≤ DirectMaxN3D the 3D reference comes from the
// band factorization and satisfies the operator equation to rounding.
func TestCompute3DDirect(t *testing.T) {
	n := 17
	rng := rand.New(rand.NewSource(1))
	p := problem.RandomOp(n, grid.Unbiased, rng, stencil.Poisson3D())
	x := Compute(p, nil)
	if x.Dim() != 3 {
		t.Fatalf("reference is %dD", x.Dim())
	}
	scale := grid.L2Interior(p.B) + 1
	if r := stencil.Poisson3D().ResidualNorm(nil, x, p.B, p.H); r > 1e-9*scale {
		t.Fatalf("direct 3D reference residual %v (scale %v)", r, scale)
	}
}

// TestCompute3DConvergedMultigrid: beyond the 3D direct cap the reference
// switches to converged full multigrid and still reaches the residual floor.
func TestCompute3DConvergedMultigrid(t *testing.T) {
	n := 33 // > DirectMaxN3D
	rng := rand.New(rand.NewSource(2))
	p := problem.RandomOp(n, grid.Unbiased, rng, stencil.Poisson3D())
	x := Compute(p, nil)
	scale := grid.L2Interior(p.B) + grid.MaxAbsInterior(p.Boundary) + 1
	if r := stencil.Poisson3D().ResidualNorm(nil, x, p.B, p.H); r > 100*relResidualTarget*scale {
		t.Fatalf("multigrid 3D reference residual %v above floor (scale %v)", r, scale)
	}
}
