// Package refsol computes the reference ("optimal") solutions that the
// paper's accuracy metric measures against. Small grids are solved exactly
// by band Cholesky; larger grids, where an O(N⁴) factorization is
// impractical, are solved by full multigrid iterated to machine precision —
// accurate far beyond the largest accuracy level (10⁹) the metric ever
// reads, so the substitution does not bias measurements (see DESIGN.md).
package refsol

import (
	"fmt"

	"pbmg/internal/direct"
	"pbmg/internal/grid"
	"pbmg/internal/mg"
	"pbmg/internal/problem"
	"pbmg/internal/sched"
	"pbmg/internal/stencil"
)

// DirectMaxN is the largest 2D grid side solved directly; beyond it the
// converged-multigrid path is used.
const DirectMaxN = 129

// DirectMaxN3D is the 3D counterpart: the band factorization's storage
// grows like N⁵ (≈6 MB at N=17, ≈230 MB at N=33), so references switch to
// converged multigrid much earlier than in 2D.
const DirectMaxN3D = 17

// relResidualTarget is the relative residual at which the multigrid
// reference solve is declared converged. The residual amplifies rounding
// error by 1/h², so ~1e-11 relative is the double-precision floor at the
// paper's data magnitudes; it leaves the reference ≈10³× more accurate
// than the largest accuracy level (10⁹) the metric ever reads.
const relResidualTarget = 1e-11

// maxRefCycles bounds the reference V-cycle iteration for the Poisson
// operator. Non-Poisson families get a much larger budget
// (maxRefCyclesHard): point-smoothed V-cycles converge slowly for strong
// anisotropy or rough coefficients, and the loop exits early the moment the
// residual target is met, so the larger cap costs nothing in the easy cases.
const (
	maxRefCycles     = 60
	maxRefCyclesHard = 600
)

// stalledResidualFactor is how far above relResidualTarget the multigrid
// reference may finish before it counts as stalled and is replaced by a
// direct solve. 100× (≈1e-9 relative) still leaves the reference ~10⁵×
// more accurate than the largest accuracy level the metric reads, while a
// genuine smoother stall stops orders of magnitude above it.
const stalledResidualFactor = 100

// stallFallbackMaxN caps the direct rescue of a stalled reference: at
// N = 513 the band factorization costs ~1 GB and a minute, beyond that it
// would silently hang or OOM, which is worse than failing loudly. The 3D
// cap is the direct-solve cap itself (the O(N⁷) factorization is the
// bottleneck, not accuracy).
const (
	stallFallbackMaxN   = 513
	stallFallbackMaxN3D = direct.Direct3DMaxN
)

// Compute returns the reference solution of p without mutating it.
func Compute(p *problem.Problem, pool *sched.Pool) *grid.Grid {
	op := p.Operator()
	ws := mg.NewWorkspace(pool)
	ws.CacheDirectFactor = true
	ws.Op = op
	x := p.NewState()
	directMax := DirectMaxN
	if op.Dim() == 3 {
		directMax = DirectMaxN3D
	}
	if p.N <= directMax {
		ws.SolveDirect(x, p.B, nil)
		return x
	}
	cycles := maxRefCycles
	if op.Family() != stencil.FamilyPoisson && op.Family() != stencil.FamilyPoisson3D {
		cycles = maxRefCyclesHard
	}
	scale := grid.L2Interior(p.B) + grid.MaxAbsInterior(p.Boundary) + 1
	ws.RefFullMG(x, p.B, nil)
	for c := 0; c < cycles; c++ {
		if op.At(p.N).ResidualNorm(pool, x, p.B, p.H) <= relResidualTarget*scale {
			break
		}
		ws.RefVCycle(x, p.B, nil)
	}
	if op.At(p.N).ResidualNorm(pool, x, p.B, p.H) > stalledResidualFactor*relResidualTarget*scale {
		// The V-cycle budget ran out far from the floor: point smoothers can
		// stall outright for strong anisotropy or rough coefficients at
		// large N. A stalled reference would silently mis-grade every
		// accuracy measurement built on it, so pay for the exact answer
		// where the O(N⁴) factorization is still tractable, and fail loudly
		// where it is not — a wrong reference is worse than no reference.
		// (Falling a few cycles short of the aspirational target is fine and
		// does not trigger this: the direct solve's own rounding floor at
		// these sizes is no better.)
		fallbackMax := stallFallbackMaxN
		if op.Dim() == 3 {
			fallbackMax = stallFallbackMaxN3D
		}
		if p.N > fallbackMax {
			panic(fmt.Sprintf(
				"refsol: reference for %v at N=%d stalled after %d cycles and is too large to solve directly; reduce the problem size or use a milder operator parameter",
				op, p.N, cycles))
		}
		ws.SolveDirect(x, p.B, nil)
	}
	return x
}

// Attach computes the reference solution and stores it on the problem.
func Attach(p *problem.Problem, pool *sched.Pool) {
	if p.Optimal() != nil {
		return
	}
	p.SetOptimal(Compute(p, pool))
}
