// Package refsol computes the reference ("optimal") solutions that the
// paper's accuracy metric measures against. Small grids are solved exactly
// by band Cholesky; larger grids, where an O(N⁴) factorization is
// impractical, are solved by full multigrid iterated to machine precision —
// accurate far beyond the largest accuracy level (10⁹) the metric ever
// reads, so the substitution does not bias measurements (see DESIGN.md).
package refsol

import (
	"pbmg/internal/grid"
	"pbmg/internal/mg"
	"pbmg/internal/problem"
	"pbmg/internal/sched"
	"pbmg/internal/stencil"
)

// DirectMaxN is the largest grid side solved directly; beyond it the
// converged-multigrid path is used.
const DirectMaxN = 129

// relResidualTarget is the relative residual at which the multigrid
// reference solve is declared converged. The residual amplifies rounding
// error by 1/h², so ~1e-11 relative is the double-precision floor at the
// paper's data magnitudes; it leaves the reference ≈10³× more accurate
// than the largest accuracy level (10⁹) the metric ever reads.
const relResidualTarget = 1e-11

// maxRefCycles bounds the reference V-cycle iteration.
const maxRefCycles = 60

// Compute returns the reference solution of p without mutating it.
func Compute(p *problem.Problem, pool *sched.Pool) *grid.Grid {
	ws := mg.NewWorkspace(pool)
	ws.CacheDirectFactor = true
	x := p.NewState()
	if p.N <= DirectMaxN {
		ws.SolveDirect(x, p.B, nil)
		return x
	}
	scale := grid.L2Interior(p.B) + grid.MaxAbsInterior(p.Boundary) + 1
	ws.RefFullMG(x, p.B, nil)
	for c := 0; c < maxRefCycles; c++ {
		if stencil.ResidualNorm(x, p.B, p.H) <= relResidualTarget*scale {
			break
		}
		ws.RefVCycle(x, p.B, nil)
	}
	return x
}

// Attach computes the reference solution and stores it on the problem.
func Attach(p *problem.Problem, pool *sched.Pool) {
	if p.Optimal() != nil {
		return
	}
	p.SetOptimal(Compute(p, pool))
}
