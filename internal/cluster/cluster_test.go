package cluster

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// testMachine is a 16-node cluster with mildly expensive communication.
func testMachine() Machine {
	return Machine{
		Nodes:           16,
		ComputePerPoint: 1,
		HaloLatency:     5000,
		HaloByteTime:    2,
		MigrateByteTime: 1,
	}
}

func TestLevelCostDecreasesWithNodesAtLargeSizes(t *testing.T) {
	m := testMachine()
	// At a large level, more nodes must be faster despite halo traffic.
	if m.LevelCost(11, 16) >= m.LevelCost(11, 1) {
		t.Fatal("16 nodes should beat 1 node at N=2049")
	}
	// At a tiny level, one node must be faster (latency dominates).
	if m.LevelCost(2, 16) <= m.LevelCost(2, 1) {
		t.Fatal("1 node should beat 16 nodes at N=5")
	}
}

func TestMigrateCost(t *testing.T) {
	m := testMachine()
	if m.MigrateCost(5, 8, 8) != 0 {
		t.Fatal("same-count migration should be free")
	}
	if m.MigrateCost(5, 8, 4) <= 0 {
		t.Fatal("migration must cost something")
	}
	if m.MigrateCost(6, 8, 4) <= m.MigrateCost(5, 8, 4) {
		t.Fatal("bigger grids must cost more to migrate")
	}
}

func TestOptimalLayoutShape(t *testing.T) {
	m := testMachine()
	l := OptimalLayout(m, 11)
	if l.At(11) != 16 {
		t.Fatalf("finest level must use all nodes, got %d", l.At(11))
	}
	// Node counts must be non-increasing toward coarser levels: there is
	// never a reason to grow nodes on a smaller grid.
	for level := 11; level > 1; level-- {
		if l.At(level-1) > l.At(level) {
			t.Fatalf("layout grows nodes at level %d: %s", level-1, l.String())
		}
	}
	if !strings.Contains(l.String(), "L11:16") {
		t.Fatalf("String() = %q", l.String())
	}
}

func TestOptimalLayoutBeatsStaticLayouts(t *testing.T) {
	m := testMachine()
	const maxLevel = 11
	opt := OptimalLayout(m, maxLevel)
	optCost := CycleCost(m, opt, maxLevel)
	for _, nodes := range []int{1, 4, 16} {
		static := &Layout{Nodes: make([]int, maxLevel+1)}
		for level := 1; level <= maxLevel; level++ {
			static.Nodes[level] = nodes
		}
		static.Nodes[maxLevel] = 16 // problem arrives on all nodes
		if nodes != 16 {
			// Account for one migration off the full machine.
			static.Nodes[maxLevel] = 16
		}
		cost := CycleCost(m, static, maxLevel)
		if optCost > cost*1.0001 {
			t.Fatalf("optimal layout (%.4g) worse than static %d nodes (%.4g)", optCost, nodes, cost)
		}
	}
}

func TestHigherLatencyMigratesEarlier(t *testing.T) {
	// The paper's motivation: when communication is expensive, shed nodes
	// at finer levels. The level at which the layout collapses to one node
	// must not decrease as halo latency rises.
	low := testMachine()
	high := testMachine()
	high.HaloLatency *= 100
	ml, mh := MigrationLevel(OptimalLayout(low, 11)), MigrationLevel(OptimalLayout(high, 11))
	if mh < ml {
		t.Fatalf("higher latency should collapse at a finer level: low=%d high=%d", ml, mh)
	}
	if mh == 0 {
		t.Fatal("very high latency should force collapse to one node somewhere")
	}
}

func TestFreeMigrationCollapsesEagerly(t *testing.T) {
	m := testMachine()
	m.MigrateByteTime = 0
	l := OptimalLayout(m, 10)
	// With free migration every level independently picks its best count;
	// coarse levels must run on one node.
	if l.At(2) != 1 || l.At(3) != 1 {
		t.Fatalf("free migration should shed nodes at coarse levels: %s", l.String())
	}
}

func TestMigrationLevelNone(t *testing.T) {
	l := &Layout{Nodes: []int{0, 4, 4, 8}}
	if MigrationLevel(l) != 0 {
		t.Fatal("layout never collapses; MigrationLevel should be 0")
	}
}

func TestLayoutAtOutOfRange(t *testing.T) {
	l := &Layout{Nodes: []int{0, 2}}
	if l.At(0) != 1 || l.At(9) != 1 {
		t.Fatal("out-of-range levels should default to 1 node")
	}
}

// Property: the DP layout is never beaten by any single-migration-point
// layout (use all nodes above a threshold, one node below it).
func TestOptimalLayoutDominatesThresholdLayoutsProperty(t *testing.T) {
	f := func(latSeed, bwSeed uint8) bool {
		m := testMachine()
		m.HaloLatency = float64(1+int(latSeed)) * 100
		m.MigrateByteTime = float64(1+int(bwSeed)) * 0.1
		const maxLevel = 10
		opt := CycleCost(m, OptimalLayout(m, maxLevel), maxLevel)
		for cut := 1; cut <= maxLevel; cut++ {
			th := &Layout{Nodes: make([]int, maxLevel+1)}
			for level := 1; level <= maxLevel; level++ {
				if level >= cut {
					th.Nodes[level] = m.Nodes
				} else {
					th.Nodes[level] = 1
				}
			}
			if opt > CycleCost(m, th, maxLevel)*1.0001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCycleCostAdditive(t *testing.T) {
	m := testMachine()
	l := OptimalLayout(m, 6)
	total := CycleCost(m, l, 6)
	var sum float64
	for level := 1; level <= 6; level++ {
		sum += m.LevelCost(level, l.At(level))
	}
	for level := 6; level > 1; level-- {
		sum += 2 * m.MigrateCost(level-1, l.At(level), l.At(level-1))
	}
	if math.Abs(total-sum) > 1e-9*total {
		t.Fatalf("CycleCost %v != manual sum %v", total, sum)
	}
}
