// Package cluster explores the paper's first future-work direction (§6):
// tuning multi-level algorithms across distributed memory. The specific
// problem the paper poses is when to migrate the working set to a smaller
// subset of machines as the grid coarsens — fewer nodes reduce the
// surface-area-to-volume ratio of each node's block (cheaper halo
// exchanges) but migrating costs a data transfer. Exactly as the paper
// suggests, a dynamic-programming search compares the costs of the
// "optimal" sub-algorithms under each candidate layout.
//
// The machine is a simple but standard model of a 2D block-decomposed
// stencil cluster: per-sweep compute scales with points/nodes, each sweep
// exchanges a halo of boundary rows/columns (α-β message cost), and
// changing the node count between levels pays a grid-sized redistribution.
package cluster

import (
	"fmt"
	"math"

	"pbmg/internal/grid"
)

// Machine models a homogeneous cluster for 2D stencil computation.
type Machine struct {
	// Nodes is the total number of machines available.
	Nodes int
	// ComputePerPoint is the time one node spends per interior point per
	// sweep.
	ComputePerPoint float64
	// HaloLatency is the fixed cost (α) of one halo message.
	HaloLatency float64
	// HaloByteTime is the per-byte cost (β) of halo traffic.
	HaloByteTime float64
	// MigrateByteTime is the per-byte cost of redistributing the grid when
	// the node count changes between levels.
	MigrateByteTime float64
	// SweepsPerLevel is the number of stencil passes a cycle performs per
	// level visit (relax + residual + transfer traffic), default 4.
	SweepsPerLevel int
}

func (m Machine) defaults() Machine {
	if m.SweepsPerLevel == 0 {
		m.SweepsPerLevel = 4
	}
	return m
}

// validNodeCounts lists the candidate node counts: powers of two up to the
// machine size (square-ish block decompositions).
func (m Machine) validNodeCounts() []int {
	var out []int
	for n := 1; n <= m.Nodes; n *= 2 {
		out = append(out, n)
	}
	return out
}

// LevelCost prices one level visit (SweepsPerLevel stencil passes) on the
// given node count.
func (m Machine) LevelCost(level, nodes int) float64 {
	m = m.defaults()
	n := grid.SizeOfLevel(level)
	points := float64(n-2) * float64(n-2)
	compute := points / float64(nodes) * m.ComputePerPoint
	comm := 0.0
	if nodes > 1 {
		// Each node's block is roughly (N/√p)², so each sweep exchanges
		// four halo edges of N/√p points.
		edge := float64(n) / math.Sqrt(float64(nodes))
		comm = 4*m.HaloLatency + 4*edge*8*m.HaloByteCost()
	}
	return float64(m.SweepsPerLevel) * (compute + comm)
}

// HaloByteCost returns the per-byte halo cost (exposed for tests).
func (m Machine) HaloByteCost() float64 { return m.HaloByteTime }

// MigrateCost prices redistributing a level's grid between two node counts.
// Equal counts are free; otherwise the whole grid moves once.
func (m Machine) MigrateCost(level, from, to int) float64 {
	if from == to {
		return 0
	}
	n := grid.SizeOfLevel(level)
	return float64(n) * float64(n) * 8 * m.MigrateByteTime
}

// Layout records the tuned node count per level (index 1..MaxLevel; index 0
// unused).
type Layout struct {
	Nodes []int
}

// At returns the node count for a level.
func (l *Layout) At(level int) int {
	if level < 1 || level >= len(l.Nodes) {
		return 1
	}
	return l.Nodes[level]
}

// String renders the layout compactly, finest level first.
func (l *Layout) String() string {
	s := ""
	for level := len(l.Nodes) - 1; level >= 1; level-- {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("L%d:%d", level, l.Nodes[level])
	}
	return s
}

// CycleCost prices one V-shaped traversal (down and back up) under the
// layout: every level is visited once with its work cost, and each change
// of node count between adjacent levels pays two migrations (down and up).
func CycleCost(m Machine, l *Layout, maxLevel int) float64 {
	m = m.defaults()
	total := 0.0
	for level := 1; level <= maxLevel; level++ {
		total += m.LevelCost(level, l.At(level))
	}
	for level := maxLevel; level > 1; level-- {
		// Migration happens on the coarse grid being handed off.
		total += 2 * m.MigrateCost(level-1, l.At(level), l.At(level-1))
	}
	return total
}

// OptimalLayout runs the dynamic program the paper sketches: bottom-up over
// levels, tracking for every candidate node count the cheapest cost of
// handling all coarser levels, including migration between layouts — the
// distributed analogue of substituting tuned sub-algorithms.
func OptimalLayout(m Machine, maxLevel int) *Layout {
	m = m.defaults()
	counts := m.validNodeCounts()
	// best[c] = cheapest cost of levels 1..level given level runs on
	// counts[c]; choice[level][c] = index of the coarser level's count.
	best := make([]float64, len(counts))
	choice := make([][]int, maxLevel+1)
	for ci, c := range counts {
		best[ci] = m.LevelCost(1, c)
	}
	for level := 2; level <= maxLevel; level++ {
		choice[level] = make([]int, len(counts))
		next := make([]float64, len(counts))
		for ci, c := range counts {
			bestCost := math.Inf(1)
			bestSub := 0
			for si, sc := range counts {
				cost := best[si] + 2*m.MigrateCost(level-1, c, sc)
				if cost < bestCost {
					bestCost, bestSub = cost, si
				}
			}
			next[ci] = bestCost + m.LevelCost(level, c)
			choice[level][ci] = bestSub
		}
		best = next
	}
	// The finest level uses all nodes (the problem arrives distributed).
	top := len(counts) - 1
	layout := &Layout{Nodes: make([]int, maxLevel+1)}
	ci := top
	for level := maxLevel; level >= 1; level-- {
		layout.Nodes[level] = counts[ci]
		if level > 1 {
			ci = choice[level][ci]
		}
	}
	return layout
}

// MigrationLevel returns the finest level at which the layout has collapsed
// to a single node, or 0 if it never does.
func MigrationLevel(l *Layout) int {
	for level := len(l.Nodes) - 1; level >= 1; level-- {
		if l.Nodes[level] == 1 {
			return level
		}
	}
	return 0
}
