package experiments

import (
	"fmt"
	"math"
	"time"

	"pbmg/internal/core"
	"pbmg/internal/grid"
	"pbmg/internal/mg"
	"pbmg/internal/problem"
	"pbmg/internal/sched"
	"pbmg/internal/stencil"
)

// This file holds the host-machine (wall-clock) experiments: the §2
// complexity table, Figure 6 absolute performance, Figures 7–8 heuristic
// comparisons, and Figure 9 parallel scalability.

// directLevelCap bounds the direct solver's benchmark sizes: factorization
// is O(N⁴) and level 7 (N=129) already takes a fresh factor per solve.
const directLevelCap = 7

// sorLevelCap bounds the iterated-SOR baseline, whose O(N³) total work
// becomes impractical long before multigrid's.
const sorLevelCap = 9

// targetAccuracy is the headline accuracy of Figures 6–8.
const targetAccuracy = 1e9

// fitExponent least-squares fits log(time) = s·log(N) + c and returns s.
func fitExponent(ns []int, times []float64) float64 {
	var sx, sy, sxx, sxy float64
	n := 0
	for i := range ns {
		if times[i] <= 0 {
			continue
		}
		x, y := math.Log(float64(ns[i])), math.Log(times[i])
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	if n < 2 {
		return math.NaN()
	}
	fn := float64(n)
	return (fn*sxy - sx*sy) / (fn*sxx - sx*sx)
}

// Complexity regenerates the §2 complexity table by measuring how each
// basic algorithm's time to a 10⁹-accurate solution scales with N.
func (r *Runner) Complexity() (*Table, error) {
	ws := mg.NewWorkspace(r.pool)
	type algo struct {
		name     string
		paper    string
		maxLevel int
		run      func(level int) float64 // seconds, or 0 if skipped
	}
	solveSeconds := func(level int, count func() int, timed func(iters int)) float64 {
		iters := count()
		if iters < 0 {
			return 0
		}
		return timeIt(func() { timed(iters) }).Seconds()
	}
	algos := []algo{
		{
			name: "Direct", paper: "N^4", maxLevel: min(directLevelCap, r.O.MaxLevel),
			run: func(level int) float64 {
				p := r.test(level, grid.Unbiased)
				return timeIt(func() {
					x := p.NewState()
					ws.SolveDirect(x, p.B, nil)
				}).Seconds()
			},
		},
		{
			name: "SOR", paper: "N^3", maxLevel: min(sorLevelCap, r.O.MaxLevel),
			run: func(level int) float64 {
				p := r.test(level, grid.Unbiased)
				n := p.N
				omega := stencil.OmegaOpt(n)
				return solveSeconds(level,
					func() int {
						x := p.NewState()
						iters, acc := mg.IterateUntil(targetAccuracy, 200000,
							func() { stencil.SORSweepRB(r.pool, x, p.B, p.H, omega) },
							func() float64 { return p.AccuracyOf(x) })
						if acc < targetAccuracy {
							return -1
						}
						return iters
					},
					func(iters int) {
						x := p.NewState()
						for i := 0; i < iters; i++ {
							stencil.SORSweepRB(r.pool, x, p.B, p.H, omega)
						}
					})
			},
		},
		{
			name: "Multigrid", paper: "N^2", maxLevel: r.O.MaxLevel,
			run: func(level int) float64 {
				p := r.test(level, grid.Unbiased)
				return solveSeconds(level,
					func() int {
						x := p.NewState()
						iters, acc := ws.SolveRefV(x, p.B, targetAccuracy, 200,
							func() float64 { return p.AccuracyOf(x) }, nil)
						if acc < targetAccuracy {
							return -1
						}
						return iters
					},
					func(iters int) {
						x := p.NewState()
						for i := 0; i < iters; i++ {
							ws.RefVCycle(x, p.B, nil)
						}
					})
			},
		},
	}
	t := &Table{
		Title:   "Complexity table (§2): empirical scaling of time-to-10⁹-accuracy",
		Columns: []string{"algorithm", "paper", "fitted"},
		Notes:   "exponent fitted over the largest measured sizes; direct cost is factor+solve (DPBSV profile)",
	}
	for _, a := range algos {
		var ns []int
		var times []float64
		for level := 3; level <= a.maxLevel; level++ {
			s := a.run(level)
			if s > 0 {
				ns = append(ns, grid.SizeOfLevel(level))
				times = append(times, s)
			}
			r.O.logf("complexity %s level %d: %s", a.name, level, fmtSec(s))
		}
		// Fit on the top half of the size range, where asymptotics dominate.
		half := len(ns) / 2
		exp := fitExponent(ns[half:], times[half:])
		t.Rows = append(t.Rows, []string{a.name, a.paper, fmt.Sprintf("N^%.2f", exp)})
	}
	return t, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Fig6 regenerates Figure 6: time to solve to accuracy 10⁹ on unbiased
// data for the direct solver, iterated SOR, iterated standard V-cycles
// ("Multigrid"), and the autotuned MULTIGRID-V algorithm.
func (r *Runner) Fig6() (*Table, error) {
	bundle, err := r.tuned("", grid.Unbiased)
	if err != nil {
		return nil, err
	}
	ws := mg.NewWorkspace(r.pool)
	wsCached := mg.NewWorkspace(r.pool)
	wsCached.CacheDirectFactor = true
	accIdx := accIndexFor(bundle.V.Acc, targetAccuracy)

	t := &Table{
		Title:   "Figure 6: time to accuracy 1e9, unbiased data",
		Columns: []string{"N", "direct", "sor", "multigrid", "autotuned"},
		Notes:   "'-' marks sizes where a baseline is impractically slow (direct beyond N=129, SOR beyond N=513)",
	}
	for level := 2; level <= r.O.MaxLevel; level++ {
		p := r.test(level, grid.Unbiased)
		n := p.N
		row := []string{fmt.Sprintf("%d", n)}

		direct := 0.0
		if level <= directLevelCap {
			direct = timeIt(func() {
				x := p.NewState()
				ws.SolveDirect(x, p.B, nil)
			}).Seconds()
		}
		row = append(row, fmtSec(direct))

		// Iterative baselines commit their iteration counts on the
		// calibration set, as the tuned algorithm did in training.
		sor := 0.0
		if level <= sorLevelCap {
			omega := stencil.OmegaOpt(n)
			iters := r.calibIters(level, grid.Unbiased, targetAccuracy, 200000,
				func(q *problem.Problem) *grid.Grid { return q.NewState() },
				func(q *problem.Problem, x *grid.Grid) { stencil.SORSweepRB(r.pool, x, q.B, q.H, omega) })
			if iters > 0 {
				sor = timeIt(func() {
					y := p.NewState()
					for i := 0; i < iters; i++ {
						stencil.SORSweepRB(r.pool, y, p.B, p.H, omega)
					}
				}).Seconds()
			}
		}
		row = append(row, fmtSec(sor))

		iters := r.calibIters(level, grid.Unbiased, targetAccuracy, 200,
			func(q *problem.Problem) *grid.Grid { return q.NewState() },
			func(q *problem.Problem, x *grid.Grid) { ws.RefVCycle(x, q.B, nil) })
		mgTime := 0.0
		if iters > 0 {
			mgTime = timeIt(func() {
				y := p.NewState()
				for i := 0; i < iters; i++ {
					ws.RefVCycle(y, p.B, nil)
				}
			}).Seconds()
		}
		row = append(row, fmtSec(mgTime))

		ex := &mg.Executor{WS: wsCached, V: bundle.V}
		tuned := timeIt(func() {
			y := p.NewState()
			ex.SolveV(y, p.B, accIdx)
		}).Seconds()
		row = append(row, fmtSec(tuned))

		t.Rows = append(t.Rows, row)
		r.O.logf("fig6 N=%d done", n)
	}
	return t, nil
}

// Fig7and8 regenerates Figures 7 and 8: the autotuned algorithm against the
// fixed heuristic strategies 10^x/10^9 on biased data. The first table
// holds absolute times (Figure 7), the second the ratio to the autotuned
// algorithm (Figure 8).
func (r *Runner) Fig7and8() (*Table, *Table, error) {
	bundle, err := r.tuned("", grid.Biased)
	if err != nil {
		return nil, nil, err
	}
	tn, err := core.New(core.Config{
		MaxLevel:     r.O.MaxLevel,
		Distribution: grid.Biased,
		Seed:         r.O.Seed,
		Pool:         r.pool,
		Logf:         r.O.Logf,
	})
	if err != nil {
		return nil, nil, err
	}
	type strategy struct {
		name  string
		table *mg.VTable
	}
	var strategies []strategy
	for _, sub := range []float64{1e9, 1e7, 1e5, 1e3, 1e1} {
		vt, err := tn.TuneHeuristic(sub, targetAccuracy)
		if err != nil {
			return nil, nil, err
		}
		strategies = append(strategies, strategy{core.HeuristicName(sub, targetAccuracy), vt})
		r.O.logf("fig7 heuristic %s ready", core.HeuristicName(sub, targetAccuracy))
	}

	cols := []string{"N"}
	for _, s := range strategies {
		cols = append(cols, s.name)
	}
	cols = append(cols, "autotuned")
	abs := &Table{Title: "Figure 7: heuristics vs autotuned, biased data, accuracy 1e9 (absolute time)", Columns: cols}
	rel := &Table{Title: "Figure 8: same data as Figure 7, as time ratio vs autotuned", Columns: cols}

	ws := mg.NewWorkspace(r.pool)
	ws.CacheDirectFactor = true
	accIdx := accIndexFor(bundle.V.Acc, targetAccuracy)
	startLevel := 6 // N=65, as in the paper's x-axis
	if startLevel > r.O.MaxLevel {
		startLevel = r.O.MaxLevel
	}
	for level := startLevel; level <= r.O.MaxLevel; level++ {
		p := r.test(level, grid.Biased)
		rowAbs := []string{fmt.Sprintf("%d", p.N)}
		rowRel := []string{fmt.Sprintf("%d", p.N)}
		var times []float64
		for _, s := range strategies {
			ex := &mg.Executor{WS: ws, V: s.table}
			topIdx := len(s.table.Acc) - 1
			sec := timeIt(func() {
				y := p.NewState()
				ex.SolveV(y, p.B, topIdx)
			}).Seconds()
			times = append(times, sec)
			rowAbs = append(rowAbs, fmtSec(sec))
		}
		ex := &mg.Executor{WS: ws, V: bundle.V}
		tuned := timeIt(func() {
			y := p.NewState()
			ex.SolveV(y, p.B, accIdx)
		}).Seconds()
		rowAbs = append(rowAbs, fmtSec(tuned))
		for _, s := range times {
			rowRel = append(rowRel, fmtRatio(s/tuned))
		}
		rowRel = append(rowRel, "1.000")
		abs.Rows = append(abs.Rows, rowAbs)
		rel.Rows = append(rel.Rows, rowRel)
		r.O.logf("fig7/8 N=%d done", p.N)
	}
	return abs, rel, nil
}

// Fig9 regenerates Figure 9: parallel speedup of the autotuned solver as
// worker threads are added.
func (r *Runner) Fig9(maxWorkers int) (*Table, error) {
	if maxWorkers < 1 {
		maxWorkers = 8
	}
	bundle, err := r.tuned("", grid.Unbiased)
	if err != nil {
		return nil, err
	}
	level := r.O.MaxLevel
	p := r.test(level, grid.Unbiased)
	accIdx := accIndexFor(bundle.V.Acc, targetAccuracy)

	t := &Table{
		Title:   fmt.Sprintf("Figure 9: parallel speedup of autotuned solve, N=%d, accuracy 1e9", p.N),
		Columns: []string{"workers", "time", "speedup"},
		Notes:   "grids below the kernel parallel threshold (N<129) run serially regardless of workers",
	}
	var base time.Duration
	for w := 1; w <= maxWorkers; w++ {
		var pool *sched.Pool
		if w > 1 {
			pool = sched.NewPool(w)
		}
		ws := mg.NewWorkspace(pool)
		ws.CacheDirectFactor = true
		ex := &mg.Executor{WS: ws, V: bundle.V}
		d := timeIt(func() {
			y := p.NewState()
			ex.SolveV(y, p.B, accIdx)
		})
		if pool != nil {
			pool.Close()
		}
		if w == 1 {
			base = d
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", w), fmtSec(d.Seconds()),
			fmt.Sprintf("%.2fx", float64(base)/float64(d)),
		})
		r.O.logf("fig9 workers=%d done", w)
	}
	return t, nil
}
