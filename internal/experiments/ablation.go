package experiments

import (
	"fmt"

	"pbmg/internal/arch"
	"pbmg/internal/core"
	"pbmg/internal/grid"
	"pbmg/internal/mg"
)

// This file holds ablation studies for the design choices the paper makes
// and DESIGN.md calls out: the smoother restriction of §2.3 (red-black SOR
// over weighted Jacobi), the granularity of the discrete accuracy ladder
// (the §2.3 approximation of the §2.2 full dynamic program), and the full
// Pareto DP itself.

// ablationModel is the machine all ablations are priced on.
func ablationModel() *arch.Model { return arch.Harpertown() }

// tuneWith runs a complete V tune with the given smoother and ladder.
func (r *Runner) tuneWith(sm mg.Smoother, ladder []float64, dist grid.Distribution) (*mg.VTable, error) {
	tn, err := core.New(core.Config{
		Accuracies:   ladder,
		MaxLevel:     r.O.MaxLevel,
		Distribution: dist,
		Seed:         r.O.Seed,
		Coster:       ablationModel(),
		Smoother:     sm,
	})
	if err != nil {
		return nil, err
	}
	return tn.TuneV()
}

// costOfTable prices one tuned solve at the top level and accuracy index.
func (r *Runner) costOfTable(vt *mg.VTable, sm mg.Smoother, dist grid.Distribution, accIdx int) float64 {
	ws := mg.NewWorkspace(nil)
	ws.CacheDirectFactor = true
	ws.Smoother = sm
	p := r.test(r.O.MaxLevel, dist)
	return traceCost(ablationModel(), func(rec mg.Recorder) {
		ex := &mg.Executor{WS: ws, V: vt, Rec: rec}
		x := p.NewState()
		ex.SolveV(x, p.B, accIdx)
	})
}

// SmootherAblation reproduces the paper's §2.3 finding that red-black SOR
// beats weighted Jacobi as the in-cycle smoother: it tunes a full table
// under each smoother and compares the tuned solve cost per accuracy.
func (r *Runner) SmootherAblation() (*Table, error) {
	ladder := core.DefaultAccuracies()
	t := &Table{
		Title:   "Ablation (§2.3): in-cycle smoother — red-black SOR vs weighted Jacobi",
		Columns: []string{"target", "sor-1.15", "jacobi-2/3", "jacobi/sor"},
		Notes:   fmt.Sprintf("tuned solve cost on %s at N=%d, unbiased data", ablationModel().Name(), grid.SizeOfLevel(r.O.MaxLevel)),
	}
	sorT, err := r.tuneWith(mg.SmootherSOR, ladder, grid.Unbiased)
	if err != nil {
		return nil, err
	}
	jacT, err := r.tuneWith(mg.SmootherJacobi, ladder, grid.Unbiased)
	if err != nil {
		return nil, err
	}
	for i, target := range ladder {
		cs := r.costOfTable(sorT, mg.SmootherSOR, grid.Unbiased, i)
		cj := r.costOfTable(jacT, mg.SmootherJacobi, grid.Unbiased, i)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0e", target), fmt.Sprintf("%.3g", cs), fmt.Sprintf("%.3g", cj),
			fmtRatio(cj / cs),
		})
	}
	return t, nil
}

// LadderAblation measures how the granularity of the discrete accuracy
// ladder affects the tuned algorithm: a single 10⁹ entry (equivalent to the
// paper's Strategy 10⁹ search space), progressively denser ladders, and the
// paper's five-point ladder. More intermediate accuracies give the dynamic
// program more sub-algorithms to compose.
func (r *Runner) LadderAblation() (*Table, error) {
	ladders := []struct {
		name   string
		ladder []float64
	}{
		{"1 target {1e9}", []float64{1e9}},
		{"2 targets {1e1,1e9}", []float64{1e1, 1e9}},
		{"3 targets {1e1,1e5,1e9}", []float64{1e1, 1e5, 1e9}},
		{"5 targets (paper)", core.DefaultAccuracies()},
	}
	t := &Table{
		Title:   "Ablation (§2.2–2.3): accuracy-ladder granularity, tuned cost to reach 1e9",
		Columns: []string{"ladder", "cost@1e9", "vs paper ladder"},
		Notes:   fmt.Sprintf("on %s at N=%d; denser ladders expose cheaper sub-algorithms", ablationModel().Name(), grid.SizeOfLevel(r.O.MaxLevel)),
	}
	var costs []float64
	for _, l := range ladders {
		vt, err := r.tuneWith(mg.SmootherSOR, l.ladder, grid.Unbiased)
		if err != nil {
			return nil, err
		}
		costs = append(costs, r.costOfTable(vt, mg.SmootherSOR, grid.Unbiased, len(l.ladder)-1))
	}
	ref := costs[len(costs)-1]
	for i, l := range ladders {
		t.Rows = append(t.Rows, []string{l.name, fmt.Sprintf("%.3g", costs[i]), fmtRatio(costs[i] / ref)})
	}
	return t, nil
}

// ParetoAblation compares the paper's discrete-ladder approximation (§2.3)
// against the full Pareto dynamic program (§2.2) at every ladder target.
func (r *Runner) ParetoAblation() (*Table, error) {
	tn, err := core.New(core.Config{
		MaxLevel:     r.O.MaxLevel,
		Distribution: grid.Unbiased,
		Seed:         r.O.Seed,
		Coster:       ablationModel(),
	})
	if err != nil {
		return nil, err
	}
	vt, err := tn.TuneV()
	if err != nil {
		return nil, err
	}
	fronts, err := tn.TuneVPareto(core.ParetoConfig{MaxFront: 16})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Ablation (§2.2 vs §2.3): discrete ladder vs full Pareto dynamic program",
		Columns: []string{"target", "discrete", "full-DP", "full-DP plan"},
		Notes:   "training-cost units on intel-harpertown; the discrete table approximates the full DP from above",
	}
	ws := mg.NewWorkspace(nil)
	ws.CacheDirectFactor = true
	p := r.test(r.O.MaxLevel, grid.Unbiased)
	for i, target := range vt.Acc {
		disc := traceCost(ablationModel(), func(rec mg.Recorder) {
			ex := &mg.Executor{WS: ws, V: vt, Rec: rec}
			x := p.NewState()
			ex.SolveV(x, p.B, i)
		})
		pt, ok := fronts[r.O.MaxLevel].Best(target)
		if !ok {
			return nil, fmt.Errorf("experiments: no full-DP plan for %g", target)
		}
		full := traceCost(ablationModel(), func(rec mg.Recorder) {
			x := p.NewState()
			pt.Node.Execute(ws, x, p.B, rec)
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0e", target), fmt.Sprintf("%.3g", disc), fmt.Sprintf("%.3g", full),
			pt.Node.String(),
		})
	}
	return t, nil
}
