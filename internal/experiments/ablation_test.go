package experiments

import (
	"strconv"
	"testing"
)

func TestSmootherAblationSORWins(t *testing.T) {
	r := smallRunner(t)
	tb, err := r.SmootherAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tb.Rows))
	}
	// The paper's finding: SOR beats weighted Jacobi at equal per-sweep
	// cost. At the highest accuracies the ratio must clearly favor SOR.
	last := tb.Rows[len(tb.Rows)-1]
	ratio, err := strconv.ParseFloat(last[3], 64)
	if err != nil {
		t.Fatalf("bad ratio %q", last[3])
	}
	if ratio < 1.0 {
		t.Errorf("Jacobi/SOR cost ratio %v < 1 at 1e9; the paper found SOR superior", ratio)
	}
}

func TestLadderAblationDenserIsBetter(t *testing.T) {
	r := smallRunner(t)
	tb, err := r.LadderAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad cost %q", s)
		}
		return v
	}
	single := parse(tb.Rows[0][1])
	paper := parse(tb.Rows[3][1])
	// The paper ladder can never be worse than the single-target ladder:
	// its candidate space strictly contains the latter's.
	if paper > single*1.02 {
		t.Errorf("paper ladder cost %v exceeds single-target cost %v", paper, single)
	}
}

func TestParetoAblationFullDPNotWorse(t *testing.T) {
	r := smallRunner(t)
	tb, err := r.ParetoAblation()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		disc, err1 := strconv.ParseFloat(row[1], 64)
		full, err2 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad row %v", row)
		}
		// Full DP picks from a superset of the discrete candidates; its
		// training-measured cost may differ slightly on the test instance,
		// so allow a modest margin.
		if full > disc*1.25 {
			t.Errorf("target %s: full-DP cost %v far exceeds discrete %v", row[0], full, disc)
		}
		if row[3] == "" {
			t.Errorf("target %s: missing plan description", row[0])
		}
	}
}

func TestClusterLayoutTable(t *testing.T) {
	r := smallRunner(t)
	tb, err := r.ClusterLayout()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tb.Rows))
	}
	// The collapse level must be non-decreasing as latency rises.
	prev := -1
	for _, row := range tb.Rows {
		lvl, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatalf("bad collapse level %q", row[1])
		}
		if lvl < prev {
			t.Fatalf("collapse level decreased with latency: %v", tb.Rows)
		}
		prev = lvl
	}
}
