package experiments

import (
	"fmt"
	"strings"

	"pbmg/internal/arch"
	"pbmg/internal/core"
	"pbmg/internal/grid"
	"pbmg/internal/mg"
	"pbmg/internal/problem"
)

// This file holds the simulated-architecture experiments: Figures 10–13
// (relative performance of tuned vs reference algorithms on three
// machines), Figure 14 (architecture-dependent cycle shapes), Figures 4–5
// (call stacks and cycle diagrams), and the §4.3 cross-training penalty.
// All are deterministic: executions are recorded as operation traces and
// priced by the cost models.

// machines lists the simulated testbeds in paper order.
func machines() []*arch.Model { return arch.Models() }

// traceCost runs fn with a recorder and prices the trace under model.
func traceCost(model *arch.Model, fn func(rec mg.Recorder)) float64 {
	var tr mg.OpTrace
	fn(&tr)
	return model.Cost(&tr, 0)
}

// RelativePerformance regenerates one of Figures 10–13: the time of the
// reference full-multigrid, autotuned V, and autotuned full-multigrid
// algorithms relative to the reference iterated V-cycle, per machine.
func (r *Runner) RelativePerformance(target float64, dist grid.Distribution) ([]*Table, error) {
	var tables []*Table
	for _, model := range machines() {
		bundle, err := r.tuned(model.Name(), dist)
		if err != nil {
			return nil, err
		}
		accIdx := accIndexFor(bundle.V.Acc, target)
		ws := mg.NewWorkspace(nil)
		ws.CacheDirectFactor = true

		t := &Table{
			Title: fmt.Sprintf("Relative time vs reference V cycle: accuracy %.0e, %s data, %s",
				target, dist, model.Name()),
			Columns: []string{"N", "refV", "refFullMG", "autoV", "autoFullMG"},
			Notes:   "model-priced operation traces; lower is better, refV ≡ 1",
		}
		for level := 4; level <= r.O.MaxLevel; level++ {
			p := r.test(level, dist)
			// Reference algorithms commit their iteration counts on the
			// calibration set, mirroring how the tuned algorithms committed
			// theirs on training data (max over the same instance count).
			refVIters := r.calibIters(level, dist, target, 500,
				func(p *problem.Problem) *grid.Grid { return p.NewState() },
				func(p *problem.Problem, x *grid.Grid) { ws.RefVCycle(x, p.B, nil) })
			fmgFirst := map[*grid.Grid]bool{}
			refFIters := r.calibIters(level, dist, target, 500,
				func(p *problem.Problem) *grid.Grid { x := p.NewState(); fmgFirst[x] = true; return x },
				func(p *problem.Problem, x *grid.Grid) {
					if fmgFirst[x] {
						ws.RefFullMG(x, p.B, nil)
						delete(fmgFirst, x)
						return
					}
					ws.RefVCycle(x, p.B, nil)
				})
			refV := traceCost(model, func(rec mg.Recorder) {
				x := p.NewState()
				for it := 0; it < refVIters; it++ {
					ws.RefVCycle(x, p.B, rec)
				}
			})
			refF := traceCost(model, func(rec mg.Recorder) {
				x := p.NewState()
				ws.RefFullMG(x, p.B, rec)
				for it := 1; it < refFIters; it++ {
					ws.RefVCycle(x, p.B, rec)
				}
			})
			autoV := traceCost(model, func(rec mg.Recorder) {
				ex := &mg.Executor{WS: ws, V: bundle.V, Rec: rec}
				x := p.NewState()
				ex.SolveV(x, p.B, accIdx)
			})
			autoF := traceCost(model, func(rec mg.Recorder) {
				ex := &mg.Executor{WS: ws, V: bundle.V, F: bundle.F, Rec: rec}
				x := p.NewState()
				ex.SolveFull(x, p.B, accIdx)
			})
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", p.N), "1.000",
				fmtRatio(refF / refV), fmtRatio(autoV / refV), fmtRatio(autoF / refV),
			})
		}
		tables = append(tables, t)
		r.O.logf("relative performance on %s done", model.Name())
	}
	return tables, nil
}

// Fig10 regenerates Figure 10 (accuracy 10⁵, unbiased data).
func (r *Runner) Fig10() ([]*Table, error) { return r.RelativePerformance(1e5, grid.Unbiased) }

// Fig11 regenerates Figure 11 (accuracy 10⁵, biased data).
func (r *Runner) Fig11() ([]*Table, error) { return r.RelativePerformance(1e5, grid.Biased) }

// Fig12 regenerates Figure 12 (accuracy 10⁹, unbiased data).
func (r *Runner) Fig12() ([]*Table, error) { return r.RelativePerformance(1e9, grid.Unbiased) }

// Fig13 regenerates Figure 13 (accuracy 10⁹, biased data).
func (r *Runner) Fig13() ([]*Table, error) { return r.RelativePerformance(1e9, grid.Biased) }

// CycleShapes renders the tuned cycle diagram for one machine at the given
// accuracy (Figure 5/14 notation). full selects FULL-MULTIGRID vs
// MULTIGRID-V.
func (r *Runner) CycleShapes(machine string, dist grid.Distribution, target float64, full bool) (string, error) {
	bundle, err := r.tuned(machine, dist)
	if err != nil {
		return "", err
	}
	accIdx := accIndexFor(bundle.V.Acc, target)
	ws := mg.NewWorkspace(nil)
	ws.CacheDirectFactor = true
	p := r.test(r.O.MaxLevel, dist)
	var log mg.ShapeLog
	ex := &mg.Executor{WS: ws, V: bundle.V, F: bundle.F, Rec: &log}
	x := p.NewState()
	if full {
		ex.SolveFull(x, p.B, accIdx)
	} else {
		ex.SolveV(x, p.B, accIdx)
	}
	return mg.RenderShape(&log), nil
}

// Fig14 regenerates Figure 14: tuned full-multigrid cycle shapes for
// accuracy 10⁵ on unbiased data across the three machines.
func (r *Runner) Fig14() (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "## Figure 14: tuned full-MG cycles across architectures (accuracy 1e5, unbiased, N=%d)\n",
		grid.SizeOfLevel(r.O.MaxLevel))
	labels := []string{"i", "ii", "iii"}
	for i, model := range machines() {
		shape, err := r.CycleShapes(model.Name(), grid.Unbiased, 1e5, true)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "\n%s) %s:\n%s", labels[i], model.Name(), shape)
	}
	return sb.String(), nil
}

// Fig5 regenerates Figure 5: tuned V and full-MG cycles on the AMD model
// for accuracies 10, 10³, 10⁵, 10⁷, for one distribution.
func (r *Runner) Fig5(dist grid.Distribution) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "## Figure 5 (%s data, %s, N=%d)\n", dist, "amd-barcelona", grid.SizeOfLevel(r.O.MaxLevel))
	labels := []string{"i", "ii", "iii", "iv"}
	for _, full := range []bool{false, true} {
		kind := "MULTIGRID-V"
		if full {
			kind = "FULL-MULTIGRID"
		}
		fmt.Fprintf(&sb, "\n%s cycles:\n", kind)
		for ai, target := range []float64{1e1, 1e3, 1e5, 1e7} {
			shape, err := r.CycleShapes("amd-barcelona", dist, target, full)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, "\n%s) accuracy %.0e:\n%s", labels[ai], target, shape)
		}
	}
	return sb.String(), nil
}

// Fig4 regenerates Figure 4: the tuned MULTIGRID-V₄ call stacks on the
// Intel model for unbiased and biased training data.
func (r *Runner) Fig4() (string, error) {
	var sb strings.Builder
	idx := accIndexFor(core.DefaultAccuracies(), 1e7) // V₄ ≡ accuracy 10⁷
	for _, dist := range []grid.Distribution{grid.Unbiased, grid.Biased} {
		bundle, err := r.tuned("intel-harpertown", dist)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "## Figure 4: MULTIGRID-V4 call stack, %s data, intel-harpertown, N=%d\n%s\n",
			dist, grid.SizeOfLevel(r.O.MaxLevel), mg.DescribeV(bundle.V, r.O.MaxLevel, idx))
	}
	return sb.String(), nil
}

// CrossTrain regenerates the §4.3 portability study: the cost penalty of
// running a full-MG algorithm tuned on machine A under machine B's cost
// model, relative to B's natively tuned algorithm (accuracy 10⁵, unbiased).
func (r *Runner) CrossTrain() (*Table, error) {
	models := machines()
	const target = 1e5
	dist := grid.Unbiased
	p := r.test(r.O.MaxLevel, dist)

	cost := func(trainedOn, runOn *arch.Model) (float64, error) {
		bundle, err := r.tuned(trainedOn.Name(), dist)
		if err != nil {
			return 0, err
		}
		accIdx := accIndexFor(bundle.V.Acc, target)
		ws := mg.NewWorkspace(nil)
		ws.CacheDirectFactor = true
		return traceCost(runOn, func(rec mg.Recorder) {
			ex := &mg.Executor{WS: ws, V: bundle.V, F: bundle.F, Rec: rec}
			x := p.NewState()
			ex.SolveFull(x, p.B, accIdx)
		}), nil
	}

	t := &Table{
		Title:   fmt.Sprintf("§4.3 cross-training penalty: full-MG tuned on row, run on column (N=%d, accuracy 1e5)", p.N),
		Columns: append([]string{"tuned-on \\ run-on"}, modelNames()...),
		Notes:   "1.000 on the diagonal by construction; off-diagonal >1 is the portability penalty",
	}
	native := make([]float64, len(models))
	for j, runOn := range models {
		c, err := cost(runOn, runOn)
		if err != nil {
			return nil, err
		}
		native[j] = c
	}
	for _, trainedOn := range models {
		row := []string{trainedOn.Name()}
		for j, runOn := range models {
			c, err := cost(trainedOn, runOn)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtRatio(c/native[j]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func modelNames() []string {
	var out []string
	for _, m := range machines() {
		out = append(out, m.Name())
	}
	return out
}
