package experiments

import (
	"fmt"

	"pbmg/internal/cluster"
)

// ClusterLayout demonstrates the paper's §6 future-work direction: a
// dynamic program that decides, per multigrid level, how many cluster nodes
// to keep and when to migrate the shrinking working set to fewer machines.
// Rows sweep the halo message latency; as communication gets more
// expensive, the tuned layout sheds nodes at finer levels, exactly the
// behaviour the paper anticipates.
func (r *Runner) ClusterLayout() (*Table, error) {
	base := cluster.Machine{
		Nodes:           16,
		ComputePerPoint: 1,
		HaloByteTime:    2,
		MigrateByteTime: 1,
	}
	maxLevel := r.O.MaxLevel
	t := &Table{
		Title:   fmt.Sprintf("Future work (§6): tuned distributed layouts, 16 nodes, finest level %d", maxLevel),
		Columns: []string{"halo latency", "collapse-to-1-node level", "tuned layout (finest→coarsest)", "vs static all-nodes"},
		Notes:   "the DP decides per level how many nodes to keep; higher latency sheds nodes at finer grids",
	}
	for _, lat := range []float64{1e2, 1e3, 1e4, 1e5, 1e6} {
		m := base
		m.HaloLatency = lat
		layout := cluster.OptimalLayout(m, maxLevel)
		tuned := cluster.CycleCost(m, layout, maxLevel)
		static := &cluster.Layout{Nodes: make([]int, maxLevel+1)}
		for level := 1; level <= maxLevel; level++ {
			static.Nodes[level] = m.Nodes
		}
		all := cluster.CycleCost(m, static, maxLevel)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0e", lat),
			fmt.Sprintf("%d", cluster.MigrationLevel(layout)),
			layout.String(),
			fmtRatio(tuned / all),
		})
	}
	return t, nil
}
