// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): the complexity table, Figure 4 call stacks, Figure 5/14
// cycle shapes, Figure 6 absolute performance, Figures 7–8 heuristic
// comparisons, Figure 9 parallel scalability, Figures 10–13 relative
// performance across three (simulated) architectures, and the §4.3
// cross-training penalty. Wall-clock experiments run on the host; the
// architecture studies price recorded operation traces under the
// deterministic cost models in internal/arch.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"pbmg/internal/arch"
	"pbmg/internal/core"
	"pbmg/internal/grid"
	"pbmg/internal/problem"
	"pbmg/internal/refsol"
	"pbmg/internal/sched"
)

// Opts configures an experiment run.
type Opts struct {
	// MaxLevel is the finest multigrid level exercised (grid side 2^k+1).
	MaxLevel int
	// Workers sizes the worker pool for wall-clock runs (0/1: serial).
	Workers int
	// Seed fixes training and test data.
	Seed int64
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (o Opts) defaults() Opts {
	if o.MaxLevel == 0 {
		o.MaxLevel = 8
	}
	if o.Seed == 0 {
		o.Seed = 20090101 // SC'09
	}
	return o
}

func (o Opts) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Table is a printable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "## %s\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", width[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range width {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&sb, "note: %s\n", t.Notes)
	}
	return sb.String()
}

// Runner caches tuned bundles and test problems across experiments so that
// one mgbench invocation tunes each (machine, distribution) pair once.
type Runner struct {
	O       Opts
	pool    *sched.Pool
	bundles map[string]*core.Tuned
	tests   map[string]*problem.Problem
}

// NewRunner returns a Runner for the given options.
func NewRunner(o Opts) *Runner {
	o = o.defaults()
	var pool *sched.Pool
	if o.Workers > 1 {
		pool = sched.NewPool(o.Workers)
	}
	return &Runner{O: o, pool: pool, bundles: map[string]*core.Tuned{}, tests: map[string]*problem.Problem{}}
}

// Close releases the worker pool.
func (r *Runner) Close() {
	if r.pool != nil {
		r.pool.Close()
	}
}

// tuned returns (tuning on first use) the bundle for a machine ("" = host
// wall clock) and distribution at the runner's MaxLevel.
func (r *Runner) tuned(machine string, dist grid.Distribution) (*core.Tuned, error) {
	key := fmt.Sprintf("%s/%s/%d", machine, dist, r.O.MaxLevel)
	if b, ok := r.bundles[key]; ok {
		return b, nil
	}
	var coster arch.Coster = arch.WallClock{}
	if machine != "" {
		m, err := arch.ByName(machine)
		if err != nil {
			return nil, err
		}
		coster = m
	}
	r.O.logf("tuning for %s on %s data (level %d)...", coster.Name(), dist, r.O.MaxLevel)
	start := time.Now()
	tn, err := core.New(core.Config{
		MaxLevel:     r.O.MaxLevel,
		Distribution: dist,
		Seed:         r.O.Seed,
		Coster:       coster,
		Pool:         r.pool,
		Logf:         r.O.Logf,
	})
	if err != nil {
		return nil, err
	}
	b, err := tn.Tune()
	if err != nil {
		return nil, err
	}
	r.O.logf("tuned %s/%s in %.1fs", coster.Name(), dist, time.Since(start).Seconds())
	r.bundles[key] = b
	return b, nil
}

// test returns (generating on first use) a benchmark problem of the given
// level with its reference solution. Test data uses a different seed stream
// than training data.
func (r *Runner) test(level int, dist grid.Distribution) *problem.Problem {
	return r.instance("test", 0x5eed, level, dist)
}

// calibSet returns the very training instances the tuner trains on (same
// seed stream as core.Tuner). Reference algorithms determine their
// iteration counts here — the maximum over the set, exactly the tuner's
// rule — and then run those counts on held-out test instances, so both
// sides commit ahead of time on identical data and are compared on data
// neither has seen.
func (r *Runner) calibSet(level int, dist grid.Distribution) []*problem.Problem {
	const calibInstances = 3 // matches the tuner's TrainingInstances default
	out := make([]*problem.Problem, calibInstances)
	for i := range out {
		key := fmt.Sprintf("train%d/%d/%s", i, level, dist)
		p, ok := r.tests[key]
		if !ok {
			rng := rand.New(rand.NewSource(r.O.Seed + int64(level)*1009 + int64(i)))
			p = problem.Random(grid.SizeOfLevel(level), dist, rng)
			refsol.Attach(p, r.pool)
			r.tests[key] = p
		}
		out[i] = p
	}
	return out
}

// calibIters returns the maximum iterations any calibration instance needs
// for solve to reach the target, or 0 if some instance misses within cap.
// solve must run one iteration step of the algorithm on (x, p).
func (r *Runner) calibIters(level int, dist grid.Distribution, target float64, cap int,
	newState func(p *problem.Problem) *grid.Grid,
	step func(p *problem.Problem, x *grid.Grid)) int {
	worst := 0
	for _, p := range r.calibSet(level, dist) {
		x := newState(p)
		iters, acc := 0, 0.0
		for iters < cap && acc < target {
			step(p, x)
			iters++
			acc = p.AccuracyOf(x)
		}
		if acc < target {
			return 0
		}
		if iters > worst {
			worst = iters
		}
	}
	return worst
}

func (r *Runner) instance(kind string, salt int64, level int, dist grid.Distribution) *problem.Problem {
	key := fmt.Sprintf("%s/%d/%s", kind, level, dist)
	if p, ok := r.tests[key]; ok {
		return p
	}
	rng := rand.New(rand.NewSource(r.O.Seed ^ salt ^ int64(level)<<8 ^ int64(dist)))
	p := problem.Random(grid.SizeOfLevel(level), dist, rng)
	refsol.Attach(p, r.pool)
	r.tests[key] = p
	return p
}

// timeIt measures fn's wall time, repeating short runs for precision and
// taking the minimum (least-noise) sample.
func timeIt(fn func()) time.Duration {
	best := time.Duration(math.MaxInt64)
	elapsed := func() time.Duration {
		start := time.Now()
		fn()
		return time.Since(start)
	}
	d := elapsed()
	if d < best {
		best = d
	}
	// Short runs: resample until we have spent ~20ms or 5 samples.
	for samples, spent := 1, d; spent < 20*time.Millisecond && samples < 5; samples++ {
		d = elapsed()
		if d < best {
			best = d
		}
		spent += d
	}
	return best
}

// fmtSec renders seconds compactly.
func fmtSec(s float64) string {
	switch {
	case s <= 0:
		return "-"
	case s < 1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}

// fmtRatio renders a relative-time ratio.
func fmtRatio(r float64) string {
	if math.IsInf(r, 0) || math.IsNaN(r) || r <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", r)
}

// accIndexFor returns the index of the smallest target ≥ accuracy in accs.
func accIndexFor(accs []float64, accuracy float64) int {
	for i, a := range accs {
		if a >= accuracy {
			return i
		}
	}
	return len(accs) - 1
}
