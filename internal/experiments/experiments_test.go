package experiments

import (
	"strconv"
	"strings"
	"testing"

	"pbmg/internal/grid"
)

// smallRunner keeps experiment tests fast: level 5 (N=33), serial.
func smallRunner(t *testing.T) *Runner {
	t.Helper()
	r := NewRunner(Opts{MaxLevel: 5, Seed: 11})
	t.Cleanup(r.Close)
	return r
}

func TestTableString(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   "hello",
	}
	out := tb.String()
	for _, want := range []string{"## demo", "long-column", "333", "note: hello", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestRelativePerformanceTables(t *testing.T) {
	r := smallRunner(t)
	tables, err := r.RelativePerformance(1e5, grid.Unbiased)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("got %d tables, want 3 (one per machine)", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) != 2 { // levels 4 and 5
			t.Fatalf("table %q has %d rows, want 2", tb.Title, len(tb.Rows))
		}
		for _, row := range tb.Rows {
			if row[1] != "1.000" {
				t.Fatalf("refV column should be 1.000, got %q", row[1])
			}
			// The tuned algorithms must not be dramatically worse than the
			// reference V cycle — this is the headline claim of Figures
			// 10–13.
			for _, col := range []int{3, 4} {
				v, err := strconv.ParseFloat(row[col], 64)
				if err != nil {
					t.Fatalf("unparseable ratio %q", row[col])
				}
				if v > 1.3 {
					t.Errorf("%s: tuned ratio %v > 1.3 at N=%s (col %d)", tb.Title, v, row[0], col)
				}
			}
		}
	}
}

func TestFig14ShapesDifferAcrossMachines(t *testing.T) {
	r := smallRunner(t)
	out, err := r.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "intel-harpertown") || !strings.Contains(out, "sun-niagara") {
		t.Fatalf("Fig14 output incomplete:\n%s", out)
	}
	// Each machine section must contain a rendered cycle (level labels).
	if strings.Count(out, " 5 |") < 3 {
		t.Fatalf("expected three rendered cycles at level 5:\n%s", out)
	}
}

func TestFig4CallStacks(t *testing.T) {
	r := smallRunner(t)
	out, err := r.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "MULTIGRID-V4 @ level 5") != 2 {
		t.Fatalf("Fig4 should show the V4 stack for both distributions:\n%s", out)
	}
}

func TestFig5Shapes(t *testing.T) {
	r := smallRunner(t)
	out, err := r.Fig5(grid.Biased)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"MULTIGRID-V cycles", "FULL-MULTIGRID cycles", "i) accuracy 1e+01", "iv) accuracy 1e+07"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig5 output missing %q:\n%s", want, out)
		}
	}
}

func TestCrossTrainMatrix(t *testing.T) {
	r := smallRunner(t)
	tb, err := r.CrossTrain()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 || len(tb.Rows[0]) != 4 {
		t.Fatalf("matrix shape wrong: %v", tb.Rows)
	}
	for i, row := range tb.Rows {
		diag, err := strconv.ParseFloat(row[i+1], 64)
		if err != nil || diag != 1.0 {
			t.Fatalf("diagonal entry %q should be exactly 1.000", row[i+1])
		}
		for j := 1; j < len(row); j++ {
			v, err := strconv.ParseFloat(row[j], 64)
			if err != nil {
				t.Fatalf("unparseable entry %q", row[j])
			}
			// Cross-trained configurations cannot beat natively tuned ones
			// by construction of the DP (up to tie).
			if v < 0.999 {
				t.Errorf("cross-trained beat native: row %d col %d = %v", i, j, v)
			}
		}
	}
}

func TestBundleCaching(t *testing.T) {
	r := smallRunner(t)
	b1, err := r.tuned("intel-harpertown", grid.Unbiased)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := r.tuned("intel-harpertown", grid.Unbiased)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Fatal("runner re-tuned an already-tuned bundle")
	}
	if _, err := r.tuned("vax-780", grid.Unbiased); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestTestProblemCaching(t *testing.T) {
	r := smallRunner(t)
	p1 := r.test(4, grid.Biased)
	p2 := r.test(4, grid.Biased)
	if p1 != p2 {
		t.Fatal("runner regenerated a cached test problem")
	}
	if p1.Optimal() == nil {
		t.Fatal("test problem lacks a reference solution")
	}
}

func TestComplexityWallSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock experiment")
	}
	r := NewRunner(Opts{MaxLevel: 5, Seed: 3})
	defer r.Close()
	tb, err := r.Complexity()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("complexity rows = %d, want 3", len(tb.Rows))
	}
	// Direct must scale with a clearly larger exponent than multigrid.
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimPrefix(s, "N^"), 64)
		if err != nil {
			t.Fatalf("bad exponent %q", s)
		}
		return v
	}
	direct := parse(tb.Rows[0][2])
	mgExp := parse(tb.Rows[2][2])
	if direct <= mgExp {
		t.Errorf("direct exponent %v should exceed multigrid's %v", direct, mgExp)
	}
}

func TestFig6WallSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock experiment")
	}
	r := NewRunner(Opts{MaxLevel: 5, Seed: 3})
	defer r.Close()
	tb, err := r.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 { // levels 2..5
		t.Fatalf("fig6 rows = %d, want 4", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[4] == "-" {
			t.Fatalf("autotuned column empty for N=%s", row[0])
		}
	}
}

func TestFig9WallSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock experiment")
	}
	r := NewRunner(Opts{MaxLevel: 5, Seed: 3})
	defer r.Close()
	tb, err := r.Fig9(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("fig9 rows = %d, want 2", len(tb.Rows))
	}
	if !strings.HasSuffix(tb.Rows[0][2], "x") {
		t.Fatalf("speedup column malformed: %q", tb.Rows[0][2])
	}
}

func TestFig7and8WallSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock experiment")
	}
	r := NewRunner(Opts{MaxLevel: 6, Seed: 3})
	defer r.Close()
	abs, rel, err := r.Fig7and8()
	if err != nil {
		t.Fatal(err)
	}
	if len(abs.Rows) != 1 || len(rel.Rows) != 1 { // only N=65 at level 6
		t.Fatalf("rows = %d/%d, want 1/1", len(abs.Rows), len(rel.Rows))
	}
	// Figure 7 has five strategies plus the autotuned column plus N.
	if len(abs.Columns) != 7 {
		t.Fatalf("columns = %d, want 7 (%v)", len(abs.Columns), abs.Columns)
	}
	// The relative table's autotuned column is 1 by construction.
	if rel.Rows[0][6] != "1.000" {
		t.Fatalf("autotuned ratio = %q, want 1.000", rel.Rows[0][6])
	}
}
