package mg

import (
	"errors"
	"fmt"
)

// This file is the solve control plane: cooperative cancellation and
// divergence detection. Both abort a running cycle by panicking with a
// solveAbort, which unwinds through every `defer release` on the recursion
// path — so each level's pooled scratch goes back to the arena — and is
// converted back into its error by Executor.Run at the solve boundary.
// The panic never crosses a goroutine: checkpoints and divergence guards
// run only on the calling goroutine, between kernels, never inside pool
// tasks.

// ErrCancelled reports a solve aborted between cycles or levels because
// the executor's context was done — a client deadline expired or the
// client disconnected mid-solve. The returned error also wraps the
// context's own error, so errors.Is(err, context.DeadlineExceeded) and
// errors.Is(err, context.Canceled) still answer which it was.
var ErrCancelled = errors.New("mg: solve cancelled")

// ErrDiverged reports a solve whose iterate went non-finite or whose
// residual blew up instead of contracting — the signature of a
// reduced-precision plan out of its depth (f32 dynamic range exceeded,
// refinement not contracting) or of poisoned input. The abort path
// releases all pooled scratch before a caller can retry at float64.
var ErrDiverged = errors.New("mg: solve diverged")

// divergenceGrowth is the residual growth factor past which an iterative
// loop counts as diverging: a healthy step contracts the residual, so
// growing it 10⁶× over the starting norm is unambiguous blow-up (transient
// non-monotonicity stays far below it) while still firing long before the
// iterate reaches Inf.
const divergenceGrowth = 1e6

// solveAbort is the panic payload carrying a control-plane error out of a
// running cycle. Only raise it through checkpoint/abortDiverged and only
// on the solve's calling goroutine.
type solveAbort struct{ err error }

// Run executes one solve body, converting a cancellation or divergence
// abort raised inside it back into the error it carries. Other panics —
// genuine bugs, injected faults — propagate unchanged; the Service
// boundary owns those (see pbmg.PanicError).
func (e *Executor) Run(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			a, ok := r.(solveAbort)
			if !ok {
				panic(r)
			}
			err = a.err
		}
	}()
	f()
	return nil
}

// checkpoint aborts the solve when the executor's context is done. It is
// called between V-cycle iterations and between levels of deep cycles —
// never inside a kernel — so a cancelled solve stops within one cycle's
// worth of latency at its current level. With no context armed it is two
// instructions.
func (e *Executor) checkpoint() {
	if e.Ctx == nil {
		return
	}
	select {
	case <-e.Ctx.Done():
		panic(solveAbort{fmt.Errorf("%w: %w", ErrCancelled, e.Ctx.Err())})
	default:
	}
}

// abortDiverged raises an ErrDiverged solve abort with a formatted detail.
func abortDiverged(format string, args ...any) {
	panic(solveAbort{fmt.Errorf("%w: %s", ErrDiverged, fmt.Sprintf(format, args...))})
}

// nonFinite reports whether a float64 is NaN or ±Inf, without the math
// package's boxing: v != v catches NaN, and subtracting a finite value
// from ±Inf yields NaN.
func nonFinite(v float64) bool {
	return v != v || v-v != 0
}
