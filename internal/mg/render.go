package mg

import (
	"fmt"
	"strings"
)

// This file renders executions and tuned tables for human inspection:
// RenderShape draws the multigrid cycle diagrams of Figures 5 and 14 in
// ASCII (time flows left to right, coarser grids are lower rows), and
// DescribeV / DescribeFull print the tuned call trees of Figure 4.

// RenderShape draws a ShapeLog as an ASCII cycle diagram. Notation follows
// the paper's Figure 5: 'o' is one relaxation, '\' a restriction, '/' an
// interpolation, "D" a direct solve, and "~k~" an iterative (SOR) solve of
// k sweeps. The left margin labels the recursion level (grid size 2^k+1).
func RenderShape(log *ShapeLog) string {
	if len(log.Events) == 0 {
		return "(empty cycle)\n"
	}
	maxLvl, minLvl := 1, 1<<30
	for _, ev := range log.Events {
		l := ev.Level
		if ev.Kind == EvRestrict || ev.Kind == EvInterp {
			// The transition glyph is drawn on the coarser row.
			if l-1 < minLvl {
				minLvl = l - 1
			}
		}
		if l > maxLvl {
			maxLvl = l
		}
		if l < minLvl {
			minLvl = l
		}
	}
	rows := maxLvl - minLvl + 1
	row := func(level int) int { return maxLvl - level }

	var cells [][]string
	for r := 0; r < rows; r++ {
		cells = append(cells, nil)
	}
	col := 0
	put := func(r int, glyph string) {
		for len(cells[r]) < col {
			cells[r] = append(cells[r], "")
		}
		cells[r] = append(cells[r], glyph)
		col++
	}
	for _, ev := range log.Events {
		switch ev.Kind {
		case EvRelax:
			put(row(ev.Level), strings.Repeat("o", ev.Count))
		case EvRestrict:
			put(row(ev.Level-1), `\`)
		case EvInterp:
			put(row(ev.Level-1), "/")
		case EvDirect:
			put(row(ev.Level), "D")
		case EvIterSolve:
			put(row(ev.Level), fmt.Sprintf("~%d~", ev.Count))
		case EvResidual:
			// Residual evaluations are part of the restriction path and are
			// not drawn, as in the paper's figures.
		}
	}
	// Column widths: max glyph width per column.
	width := 0
	for _, r := range cells {
		if len(r) > width {
			width = len(r)
		}
	}
	colw := make([]int, width)
	for _, r := range cells {
		for c, g := range r {
			if len(g) > colw[c] {
				colw[c] = len(g)
			}
		}
	}
	var sb strings.Builder
	for r := 0; r < rows; r++ {
		fmt.Fprintf(&sb, "%2d |", maxLvl-r)
		for c := 0; c < width; c++ {
			g := ""
			if c < len(cells[r]) {
				g = cells[r][c]
			}
			sb.WriteString(g)
			for p := len(g); p < colw[c]; p++ {
				sb.WriteByte(' ')
			}
		}
		// Trim trailing spaces.
		line := strings.TrimRight(sb.String(), " ")
		sb.Reset()
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// DescribeV prints the tuned call tree of MULTIGRID-Vᵢ at the given level
// as indented text, one line per tuned function invocation — the textual
// form of the paper's Figure 4 call stacks.
func DescribeV(t *VTable, level, accIdx int) string {
	var sb strings.Builder
	describeV(&sb, t, level, accIdx, 0)
	return sb.String()
}

func describeV(sb *strings.Builder, t *VTable, level, accIdx, depth int) {
	indent := strings.Repeat("  ", depth)
	n := (1 << uint(level)) + 1
	if level <= 1 {
		fmt.Fprintf(sb, "%sMULTIGRID-V%d @ level %d (N=%d): direct\n", indent, accIdx+1, level, n)
		return
	}
	p := t.Plan(level, accIdx)
	switch p.Choice {
	case ChoiceDirect:
		fmt.Fprintf(sb, "%sMULTIGRID-V%d @ level %d (N=%d): direct\n", indent, accIdx+1, level, n)
	case ChoiceSOR:
		fmt.Fprintf(sb, "%sMULTIGRID-V%d @ level %d (N=%d): SOR ×%d\n", indent, accIdx+1, level, n, p.Iters)
	case ChoiceVCycle:
		fmt.Fprintf(sb, "%sMULTIGRID-V%d @ level %d (N=%d): standard V-cycle ×%d\n",
			indent, accIdx+1, level, n, p.Iters)
	case ChoiceRecurse:
		fmt.Fprintf(sb, "%sMULTIGRID-V%d @ level %d (N=%d): RECURSE%d ×%d\n",
			indent, accIdx+1, level, n, p.Sub+1, p.Iters)
		describeV(sb, t, level-1, p.Sub, depth+1)
	}
}

// DescribeFull prints the tuned call tree of FULL-MULTIGRIDᵢ at the given
// level, descending through estimate and solve phases.
func DescribeFull(f *FTable, v *VTable, level, accIdx int) string {
	var sb strings.Builder
	describeFull(&sb, f, v, level, accIdx, 0)
	return sb.String()
}

func describeFull(sb *strings.Builder, f *FTable, v *VTable, level, accIdx, depth int) {
	indent := strings.Repeat("  ", depth)
	n := (1 << uint(level)) + 1
	if level <= 1 {
		fmt.Fprintf(sb, "%sFULL-MG%d @ level %d (N=%d): direct\n", indent, accIdx+1, level, n)
		return
	}
	p := f.Plan(level, accIdx)
	switch p.Choice {
	case FullDirect:
		fmt.Fprintf(sb, "%sFULL-MG%d @ level %d (N=%d): direct\n", indent, accIdx+1, level, n)
	case FullEstimate:
		switch p.Solve {
		case ChoiceSOR:
			fmt.Fprintf(sb, "%sFULL-MG%d @ level %d (N=%d): ESTIMATE%d, then SOR ×%d\n",
				indent, accIdx+1, level, n, p.EstAcc+1, p.Iters)
			describeFull(sb, f, v, level-1, p.EstAcc, depth+1)
		case ChoiceVCycle:
			fmt.Fprintf(sb, "%sFULL-MG%d @ level %d (N=%d): ESTIMATE%d, then standard V-cycle ×%d\n",
				indent, accIdx+1, level, n, p.EstAcc+1, p.Iters)
			describeFull(sb, f, v, level-1, p.EstAcc, depth+1)
		case ChoiceRecurse:
			fmt.Fprintf(sb, "%sFULL-MG%d @ level %d (N=%d): ESTIMATE%d, then RECURSE%d ×%d\n",
				indent, accIdx+1, level, n, p.EstAcc+1, p.SolveSub+1, p.Iters)
			describeFull(sb, f, v, level-1, p.EstAcc, depth+1)
			if p.Iters > 0 {
				describeV(sb, v, level-1, p.SolveSub, depth+1)
			}
		}
	}
}
