package mg

import (
	"fmt"

	"pbmg/internal/direct"
	"pbmg/internal/grid"
	"pbmg/internal/sched"
	"pbmg/internal/stencil"
	"pbmg/internal/transfer"
)

// Workspace owns the scratch grids, direct-solver plans, and worker pool
// shared by multigrid executions. Reusing one Workspace across many solves
// keeps inner loops allocation-free.
//
// A Workspace is not safe for concurrent solves; create one per goroutine.
type Workspace struct {
	// Pool parallelizes the stencil and transfer kernels. Nil runs serially.
	Pool *sched.Pool
	// Smoother selects the in-cycle relaxation kernel. The paper fixes
	// red-black SOR with ω=1.15 after finding it beat weighted Jacobi on
	// its training data (§2.3); SmootherJacobi reproduces that ablation.
	Smoother Smoother
	// CacheDirectFactor controls whether band-Cholesky factorizations are
	// reused across direct-solve calls. The default (false) re-factors on
	// every call, matching the cost profile of LAPACK's DPBSV that the
	// paper's direct choice pays; enable it for reference-solution
	// computation where only the answer matters.
	CacheDirectFactor bool

	cache direct.Cache
	bufs  map[int]*levelBufs
}

// levelBufs holds the scratch grids a cycle needs at one grid size n:
// the residual and interpolation scratch at size n, and the coarse
// right-hand side and coarse solution at size (n+1)/2.
type levelBufs struct {
	r, scratch *grid.Grid
	cb, cx     *grid.Grid
}

// NewWorkspace returns a workspace using the given pool (nil for serial).
func NewWorkspace(pool *sched.Pool) *Workspace {
	return &Workspace{Pool: pool, bufs: make(map[int]*levelBufs)}
}

// buf returns (allocating on first use) the scratch set for grid size n ≥ 5.
func (ws *Workspace) buf(n int) *levelBufs {
	b, ok := ws.bufs[n]
	if !ok {
		if grid.Level(n) < 2 {
			panic(fmt.Sprintf("mg: no scratch buffers for size %d", n))
		}
		nc := grid.Coarsen(n)
		b = &levelBufs{
			r:       grid.New(n),
			scratch: grid.New(n),
			cb:      grid.New(nc),
			cx:      grid.New(nc),
		}
		ws.bufs[n] = b
	}
	return b
}

// SolveDirect overwrites x's interior with the exact solution of T·x = b via
// band Cholesky, using x's boundary as Dirichlet data.
func (ws *Workspace) SolveDirect(x, b *grid.Grid, rec Recorder) {
	n := x.N()
	h := 1.0 / float64(n-1)
	var s *direct.PoissonSolver
	if ws.CacheDirectFactor {
		s = ws.cache.Get(n)
	} else {
		s = direct.NewPoissonSolver(n)
	}
	s.Solve(x, b, h)
	record(rec, EvDirect, grid.Level(n), 1)
}

// SOR runs the given number of red-black SOR sweeps with weight omega,
// recording them as one iterative shortcut solve.
func (ws *Workspace) SOR(x, b *grid.Grid, omega float64, sweeps int, rec Recorder) {
	n := x.N()
	h := 1.0 / float64(n-1)
	for s := 0; s < sweeps; s++ {
		stencil.SORSweepRB(ws.Pool, x, b, h, omega)
	}
	record(rec, EvIterSolve, grid.Level(n), sweeps)
}

// Smoother selects the relaxation kernel used inside cycles.
type Smoother int

const (
	// SmootherSOR is red-black SOR with ω = 1.15, the paper's choice.
	SmootherSOR Smoother = iota
	// SmootherJacobi is weighted Jacobi with the classic w = 2/3, the
	// alternative the paper evaluated and rejected (§2.3).
	SmootherJacobi
)

// String returns the smoother name.
func (s Smoother) String() string {
	switch s {
	case SmootherSOR:
		return "sor-1.15"
	case SmootherJacobi:
		return "jacobi-2/3"
	default:
		return fmt.Sprintf("Smoother(%d)", int(s))
	}
}

// jacobiWeight is the standard smoothing weight for weighted Jacobi on the
// 5-point Laplacian.
const jacobiWeight = 2.0 / 3.0

// smooth runs sweeps of the configured smoother and records them as
// relaxations.
func (ws *Workspace) smooth(x, b *grid.Grid, sweeps int, rec Recorder) {
	n := x.N()
	h := 1.0 / float64(n-1)
	switch ws.Smoother {
	case SmootherJacobi:
		tmp := ws.buf(n).scratch
		for s := 0; s < sweeps; s++ {
			stencil.JacobiSweep(ws.Pool, tmp, x, b, h, jacobiWeight)
			x.CopyFrom(tmp)
		}
	default:
		for s := 0; s < sweeps; s++ {
			stencil.SORSweepRB(ws.Pool, x, b, h, stencil.OmegaRecurse)
		}
	}
	record(rec, EvRelax, grid.Level(n), sweeps)
}

// RecurseWith performs the shared coarse-grid-correction skeleton of
// RECURSE and the reference V-cycle: pre-smooth, restrict the residual,
// delegate the coarse error equation to coarseSolve, correct, post-smooth.
// coarseSolve receives a zeroed coarse state and the restricted residual.
func (ws *Workspace) RecurseWith(x, b *grid.Grid, rec Recorder, coarseSolve func(cx, cb *grid.Grid)) {
	n := x.N()
	if n == 3 {
		ws.SolveDirect(x, b, rec)
		return
	}
	h := 1.0 / float64(n-1)
	lvl := grid.Level(n)
	bufs := ws.buf(n)

	ws.smooth(x, b, 1, rec)
	stencil.Residual(ws.Pool, bufs.r, x, b, h)
	record(rec, EvResidual, lvl, 1)
	transfer.Restrict(ws.Pool, bufs.cb, bufs.r)
	record(rec, EvRestrict, lvl, 1)
	bufs.cx.Zero()
	coarseSolve(bufs.cx, bufs.cb)
	transfer.InterpolateAdd(ws.Pool, x, bufs.cx, bufs.scratch)
	record(rec, EvInterp, lvl, 1)
	ws.smooth(x, b, 1, rec)
}
