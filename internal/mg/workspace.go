package mg

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"pbmg/internal/direct"
	"pbmg/internal/faultinject"
	"pbmg/internal/grid"
	"pbmg/internal/sched"
	"pbmg/internal/stencil"
	"pbmg/internal/transfer"
)

// Workspace holds the configuration and shared resources behind multigrid
// executions: the worker pool, the smoother choice, the direct-solver flags,
// and the caches those imply. All per-solve scratch state (the residual and
// transfer grids a cycle needs at each level) is checked out from a
// sync.Pool-backed arena for exactly the duration of the cycle step that
// needs it, so a single Workspace is safe for concurrent solves: any number
// of goroutines may run cycles against it simultaneously, sharing one set
// of tuned tables, one worker pool, and one direct-factor cache.
//
// The configuration fields (Pool, Smoother, CacheDirectFactor, Op) must be
// set before the workspace is shared across goroutines; solves treat them as
// read-only.
type Workspace struct {
	// Pool parallelizes the stencil and transfer kernels. Nil runs serially.
	// A non-nil pool may be shared with other workspaces and with concurrent
	// solves; sched.Pool supports concurrent callers.
	Pool *sched.Pool
	// Smoother selects the in-cycle relaxation kernel. The paper fixes
	// red-black SOR with ω=1.15 after finding it beat weighted Jacobi on
	// its training data (§2.3); SmootherJacobi reproduces that ablation.
	Smoother Smoother
	// CacheDirectFactor controls whether band-Cholesky factorizations are
	// reused across direct-solve calls. The default (false) re-factors on
	// every call, matching the cost profile of LAPACK's DPBSV that the
	// paper's direct choice pays; enable it for production serving and
	// reference-solution computation where only the answer matters.
	CacheDirectFactor bool
	// Op is the operator family the workspace solves, discretized at the
	// finest grid size it will see; coarser levels are derived on demand via
	// the operator's memoized coarse hierarchy. Nil selects the
	// constant-coefficient Poisson operator, preserving the original
	// behavior of every call site that predates operator families.
	Op *stencil.Operator
	// FactorCache, when non-nil, replaces the workspace-private direct-factor
	// cache, so several workspaces — one per served operator family — can
	// share a single (typically bounded) cache. Like the other configuration
	// fields it must be set before the workspace is shared across goroutines.
	FactorCache *direct.Cache
	// NoFuse disables the fused single-pass cycle kernels
	// (SmoothResidualRestrict/ResidualRestrict on the downstroke,
	// SweepWithNorm in norm-returning cycles) and runs the original
	// separate smooth/residual/restrict/norm passes instead. The paths
	// perform identical sweeps and agree on restrictions and norms to
	// floating-point association (≤1e-12 of the data scale), so this is an
	// escape hatch for benchmarking the fusion win (mgbench -nofuse) and
	// for oracle testing, not a correctness knob.
	NoFuse bool

	cache direct.Cache // private factor-once cache when FactorCache is nil
	arena sync.Map     // [2]int{n, bits} -> *sync.Pool of *levelBufsG[T]

	// outstanding counts scratch sets currently checked out across every
	// size and precision — the checkout/release balance the pool-hygiene
	// tests assert returns to zero after cancelled, diverged, and panicked
	// solves.
	outstanding atomic.Int64
}

// ScratchOutstanding reports the number of scratch sets currently checked
// out of the arena. It is zero whenever no solve is in flight: every
// abort path (cancellation, divergence, panic) unwinds through the
// `defer release` of each level it entered.
func (ws *Workspace) ScratchOutstanding() int64 { return ws.outstanding.Load() }

// factorCache resolves the direct-factor cache in use (shared or private).
func (ws *Workspace) factorCache() *direct.Cache {
	if ws.FactorCache != nil {
		return ws.FactorCache
	}
	return &ws.cache
}

// Operator returns the workspace's operator family (the shared Poisson
// operator when Op is unset).
func (ws *Workspace) Operator() *stencil.Operator {
	if ws.Op == nil {
		return stencil.Poisson()
	}
	return ws.Op
}

// opAt resolves the workspace operator for grid size n.
func (ws *Workspace) opAt(n int) *stencil.Operator { return ws.Operator().At(n) }

// OmegaOpt returns the operator-specific SOR shortcut-solver weight for an
// n×n grid (see stencil.Operator.OmegaOpt).
func (ws *Workspace) OmegaOpt(n int) float64 { return ws.opAt(n).OmegaOpt(n) }

// levelBufs is the scratch set a cycle needs at one grid size n: the
// residual and interpolation scratch at size n, and the coarse right-hand
// side and coarse solution at size (n+1)/2, all shaped to the workspace
// operator's dimension. A levelBufs belongs to exactly one cycle step at a
// time; concurrent solves check out distinct sets.
type levelBufsG[T grid.Float] struct {
	n          int
	r, scratch *grid.G[T]
	cb, cx     *grid.G[T]
}

// levelBufs is the float64 scratch set, the shape every f64 cycle step
// checks out.
type levelBufs = levelBufsG[float64]

func newLevelBufs[T grid.Float](dim, n int) *levelBufsG[T] {
	nc := grid.Coarsen(n)
	return &levelBufsG[T]{
		n:       n,
		r:       grid.NewOf[T](dim, n),
		scratch: grid.NewOf[T](dim, n),
		cb:      grid.NewOf[T](dim, nc),
		cx:      grid.NewOf[T](dim, nc),
	}
}

// NewWorkspace returns a workspace using the given pool (nil for serial).
// The zero value is also usable (serial, SOR smoother, no factor cache).
func NewWorkspace(pool *sched.Pool) *Workspace {
	return &Workspace{Pool: pool}
}

// checkout returns a scratch set for grid size n ≥ 5 from the arena,
// allocating only when every set for that size is already in use. Callers
// must return it with release; steady-state solves are allocation-free,
// and the total number of live sets is bounded by the number of concurrent
// cycle steps per size, not by the number of solves ever run.
func (ws *Workspace) checkout(n int) *levelBufs { return checkoutOf[float64](ws, n) }

// checkoutOf is checkout at an arbitrary storage precision: the arena keys
// scratch sets by (size, precision), so f32 cycle steps recycle their own
// buffer population without disturbing the f64 one.
func checkoutOf[T grid.Float](ws *Workspace, n int) *levelBufsG[T] {
	if faultinject.Enabled {
		faultinject.Point("mg.pool.checkout") // delay here simulates pool starvation
	}
	key := [2]int{n, grid.Bits[T]()}
	pi, ok := ws.arena.Load(key)
	if !ok {
		if grid.Level(n) < 2 {
			panic(fmt.Sprintf("mg: no scratch buffers for size %d", n))
		}
		// One workspace serves one operator, so the arena's dimension is
		// fixed at the operator's.
		dim := ws.Operator().Dim()
		pi, _ = ws.arena.LoadOrStore(key, &sync.Pool{New: func() any { return newLevelBufs[T](dim, n) }})
	}
	ws.outstanding.Add(1)
	return pi.(*sync.Pool).Get().(*levelBufsG[T])
}

// release returns a checked-out scratch set to the arena.
func (ws *Workspace) release(b *levelBufs) { releaseOf(ws, b) }

func releaseOf[T grid.Float](ws *Workspace, b *levelBufsG[T]) {
	pi, _ := ws.arena.Load([2]int{b.n, grid.Bits[T]()})
	pi.(*sync.Pool).Put(b)
	ws.outstanding.Add(-1)
}

// SolveDirect overwrites x's interior with the exact solution of T·x = b via
// band Cholesky, using x's boundary as Dirichlet data.
func (ws *Workspace) SolveDirect(x, b *grid.Grid, rec Recorder) {
	ws.solveDirect64(x, b, rec)
}

// solveDirectOf is the direct base case at any storage precision. The band
// Cholesky itself always runs in float64 — at the coarse sizes direct plans
// win, the factorization is compute-bound, so there is nothing to gain from
// f32 storage and everything to lose in factor quality. A float32 call
// converts the problem in, solves exactly, and rounds the solution back.
func solveDirectOf[T grid.Float](ws *Workspace, x, b *grid.G[T], rec Recorder) {
	if x64, ok := any(x).(*grid.Grid); ok {
		ws.solveDirect64(x64, any(b).(*grid.Grid), rec)
		return
	}
	n, dim := x.N(), x.Dim()
	x64 := grid.NewDim(dim, n)
	b64 := grid.NewDim(dim, n)
	grid.ConvertInto(x64, x)
	grid.ConvertInto(b64, b)
	ws.solveDirect64(x64, b64, rec)
	grid.ConvertInto(x, x64)
}

func (ws *Workspace) solveDirect64(x, b *grid.Grid, rec Recorder) {
	n := x.N()
	h := 1.0 / float64(n-1)
	op := ws.opAt(n)
	var s direct.InteriorSolver
	if ws.CacheDirectFactor {
		s = ws.factorCache().GetOp(op, n)
	} else {
		s = direct.NewInteriorSolver(op, n)
	}
	s.Solve(x, b, h)
	record(rec, EvDirect, grid.Level(n), 1)
}

// SOR runs the given number of red-black SOR sweeps with weight omega,
// recording them as one iterative shortcut solve. The default path lets the
// operator pick the unit-stride color-split layout when the solve is long
// and large enough to amortize its pack/unpack (stencil.SplitWorthwhile);
// NoFuse pins the strided oracle loop. The iterate is bit-identical either
// way.
func (ws *Workspace) SOR(x, b *grid.Grid, omega float64, sweeps int, rec Recorder) {
	sorOf(ws, x, b, omega, sweeps, rec)
}

// sorOf is SOR at any storage precision; omega stays a float64 parameter so
// tuned weights round identically on both paths.
func sorOf[T grid.Float](ws *Workspace, x, b *grid.G[T], omega float64, sweeps int, rec Recorder) {
	n := x.N()
	h := T(1.0 / float64(n-1))
	op := ws.opAt(n)
	if ws.NoFuse {
		for s := 0; s < sweeps; s++ {
			stencil.OpSORSweepRB(op, ws.Pool, x, b, h, T(omega))
		}
	} else {
		stencil.OpSORSweeps(op, ws.Pool, x, b, h, T(omega), sweeps)
	}
	record(rec, EvIterSolve, grid.Level(n), sweeps)
}

// Smoother selects the relaxation kernel used inside cycles.
type Smoother int

const (
	// SmootherSOR is red-black SOR with ω = 1.15, the paper's choice.
	SmootherSOR Smoother = iota
	// SmootherJacobi is weighted Jacobi with the classic w = 2/3, the
	// alternative the paper evaluated and rejected (§2.3).
	SmootherJacobi
)

// String returns the smoother name.
func (s Smoother) String() string {
	switch s {
	case SmootherSOR:
		return "sor-1.15"
	case SmootherJacobi:
		return "jacobi-2/3"
	default:
		return fmt.Sprintf("Smoother(%d)", int(s))
	}
}

// jacobiWeight is the standard smoothing weight for weighted Jacobi on the
// 5-point Laplacian.
const jacobiWeight = 2.0 / 3.0

// smooth runs sweeps of the configured smoother and records them as
// relaxations. tmp is a caller-provided scratch grid of x's size; the SOR
// smoother updates in place and ignores it. The SOR weight is the operator
// family's in-cycle heuristic (stencil.Operator.OmegaSmooth); the Jacobi
// ablation keeps the classic fixed w = 2/3 for every family.
func (ws *Workspace) smooth(x, b, tmp *grid.Grid, sweeps int, rec Recorder) {
	smoothOf(ws, x, b, tmp, sweeps, rec)
}

func smoothOf[T grid.Float](ws *Workspace, x, b, tmp *grid.G[T], sweeps int, rec Recorder) {
	n := x.N()
	h := T(1.0 / float64(n-1))
	op := ws.opAt(n)
	switch ws.Smoother {
	case SmootherJacobi:
		for s := 0; s < sweeps; s++ {
			stencil.OpJacobiSweep(op, ws.Pool, tmp, x, b, h, T(jacobiWeight))
			x.CopyFrom(tmp)
		}
	default:
		omega := T(op.OmegaSmooth())
		for s := 0; s < sweeps; s++ {
			stencil.OpSORSweepRB(op, ws.Pool, x, b, h, omega)
		}
	}
	record(rec, EvRelax, grid.Level(n), sweeps)
}

// restrictResidual computes the coarse right-hand side cb = R·(b − T·x) at
// size n. The default path is the fused ResidualRestrict kernel, which
// streams the fine grid once and never materializes the fine residual;
// with NoFuse set it runs the original residual pass into the scratch grid
// r followed by a separate restriction — the oracle the fused path matches
// to floating-point association (≤1e-12 of the data scale; in 2D the
// window weights even apply in the oracle's order, in 3D they apply
// separably). Both paths record one EvResidual and one EvRestrict:
// the trace counts logical operations, and the architecture cost model
// prices their (now fused) traversal intensities.
func (ws *Workspace) restrictResidual(x, b, cb, r *grid.Grid, rec Recorder) {
	restrictResidualOf(ws, x, b, cb, r, rec)
}

func restrictResidualOf[T grid.Float](ws *Workspace, x, b, cb, r *grid.G[T], rec Recorder) {
	n := x.N()
	h := T(1.0 / float64(n-1))
	lvl := grid.Level(n)
	op := ws.opAt(n)
	if ws.NoFuse {
		stencil.OpResidual(op, ws.Pool, r, x, b, h)
		record(rec, EvResidual, lvl, 1)
		transfer.Restrict(ws.Pool, cb, r)
		record(rec, EvRestrict, lvl, 1)
		return
	}
	stencil.OpResidualRestrict(op, ws.Pool, cb, x, b, h)
	record(rec, EvResidual, lvl, 1)
	record(rec, EvRestrict, lvl, 1)
}

// RecurseWith performs the shared coarse-grid-correction skeleton of
// RECURSE and the reference V-cycle: pre-smooth, restrict the residual
// (fused into one fine-grid pass), delegate the coarse error equation to
// coarseSolve, correct, post-smooth. coarseSolve receives a zeroed coarse
// state and the restricted residual.
func (ws *Workspace) RecurseWith(x, b *grid.Grid, rec Recorder, coarseSolve func(cx, cb *grid.Grid)) {
	recurseWithOf(ws, x, b, rec, coarseSolve, nil)
}

// RecurseWithNorm is RecurseWith fused with the convergence probe: it also
// returns ‖b − T·x‖₂ after the final post-smoothing sweep, computed inside
// that sweep (SweepWithNorm) instead of by a separate residual traversal.
// Adaptive drivers call it once per iteration, so the fold removes one
// full-grid pass per step at the finest level.
func (ws *Workspace) RecurseWithNorm(x, b *grid.Grid, rec Recorder, coarseSolve func(cx, cb *grid.Grid)) float64 {
	var norm float64
	recurseWithOf(ws, x, b, rec, coarseSolve, &norm)
	return norm
}

// recurseWithOf is the precision-generic coarse-grid-correction skeleton.
// Convergence accounting stays float64 at every precision: the fused norm
// kernels accumulate residuals in double regardless of T.
func recurseWithOf[T grid.Float](ws *Workspace, x, b *grid.G[T], rec Recorder, coarseSolve func(cx, cb *grid.G[T]), norm *float64) {
	n := x.N()
	h := T(1.0 / float64(n-1))
	op := ws.opAt(n)
	if faultinject.Enabled {
		faultinject.Point("mg.cycle")
		if faultinject.PointLevel("mg.cycle.nan", grid.Level(n)) {
			x.Data()[len(x.Data())/2] = T(math.NaN())
		}
	}
	if n == 3 {
		solveDirectOf(ws, x, b, rec)
		if norm != nil {
			*norm = stencil.OpResidualNorm(op, ws.Pool, x, b, h)
		}
		return
	}
	lvl := grid.Level(n)
	bufs := checkoutOf[T](ws, n)
	defer releaseOf(ws, bufs)

	// Downstroke: pre-smooth, residual, restrict. With the SOR smoother the
	// three passes run as one composed kernel — the sweep's black half
	// emits its residuals for free and the fused restriction evaluates the
	// red half on the fly — so the fine grid is never re-traversed for a
	// standalone residual pass. The Jacobi ablation and the NoFuse oracle
	// keep the separate passes.
	if ws.Smoother == SmootherSOR && !ws.NoFuse {
		stencil.OpSmoothResidualRestrict(op, ws.Pool, bufs.cb, x, b, bufs.r, h, T(op.OmegaSmooth()))
		record(rec, EvRelax, lvl, 1)
		record(rec, EvResidual, lvl, 1)
		record(rec, EvRestrict, lvl, 1)
	} else {
		smoothOf(ws, x, b, bufs.scratch, 1, rec)
		restrictResidualOf(ws, x, b, bufs.cb, bufs.r, rec)
	}
	bufs.cx.Zero()
	coarseSolve(bufs.cx, bufs.cb)

	// Upstroke: interpolate, correct, post-smooth. With the SOR smoother the
	// prolongation and correction fold into the post-smooth's red half-sweep
	// (InterpolateCorrectSmooth) — the standalone interpolate and correct
	// full-grid passes disappear, and the black half completes the sweep
	// either plainly (FinishSmooth) or fused with the convergence probe
	// (FinishSmoothWithNorm). The iterate is bit-identical to the separate
	// passes, which the Jacobi ablation and the NoFuse oracle preserve.
	if ws.Smoother == SmootherSOR && !ws.NoFuse {
		omega := T(op.OmegaSmooth())
		stencil.OpInterpolateCorrectSmooth(op, ws.Pool, x, b, bufs.cx, h, omega)
		record(rec, EvInterp, lvl, 1)
		if norm == nil {
			stencil.OpFinishSmooth(op, ws.Pool, x, b, h, omega)
		} else {
			*norm = stencil.OpFinishSmoothWithNorm(op, ws.Pool, x, b, h, omega)
		}
		record(rec, EvRelax, lvl, 1)
		return
	}
	transfer.InterpolateAdd(ws.Pool, x, bufs.cx, bufs.scratch)
	record(rec, EvInterp, lvl, 1)
	smoothOf(ws, x, b, bufs.scratch, 1, rec)
	if norm != nil {
		*norm = stencil.OpResidualNorm(op, ws.Pool, x, b, h)
	}
}
