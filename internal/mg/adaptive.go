package mg

import (
	"fmt"
	"math"

	"pbmg/internal/grid"
)

// This file implements the dynamic tuning the paper sketches as future work
// (§6): "the use of dynamic tuning where an algorithm has the ability to
// adapt during execution based on some features of the intermediate state".
// AdaptiveSolver drives tuned RECURSE steps by the measured residual of the
// intermediate state rather than by iteration counts committed at training
// time: it stops as soon as the target reduction is reached, and when
// convergence stagnates it switches to a higher-accuracy tuned
// sub-algorithm — switching "between tuned versions of itself".

// AdaptiveResult reports what an adaptive solve did.
type AdaptiveResult struct {
	// Iters is the number of RECURSE steps executed.
	Iters int
	// Reduction is the achieved residual-norm reduction ‖r₀‖/‖r‖.
	Reduction float64
	// Escalations counts switches to a higher-accuracy sub-algorithm.
	Escalations int
	// FinalSub is the sub-accuracy index in use when the solve finished.
	FinalSub int
}

// AdaptiveSolver solves with runtime feedback. The residual norm is the
// computable proxy for the paper's accuracy metric (the true error is
// unavailable outside training), so targets are expressed as residual
// reductions. Like Executor, an AdaptiveSolver is a cheap per-solve value:
// concurrent solves should each construct their own, sharing the
// concurrency-safe Workspace and tables behind Ex.
type AdaptiveSolver struct {
	// Ex supplies the tuned tables and workspace.
	Ex *Executor
	// Stagnation is the per-iteration residual-reduction factor below which
	// convergence counts as stagnating (e.g. 2 means "less than 2×
	// improvement per step"). Zero defaults to 2.
	Stagnation float64
	// MaxIters bounds the iteration count. Zero defaults to 100.
	MaxIters int
}

// Solve reduces the residual of T·x = b by at least the given factor,
// starting from sub-accuracy index startSub and escalating on stagnation.
// It panics if reduction < 1 or startSub is out of range.
func (a *AdaptiveSolver) Solve(x, b *grid.Grid, reduction float64, startSub int) AdaptiveResult {
	if reduction < 1 {
		panic(fmt.Sprintf("mg: adaptive reduction %v < 1", reduction))
	}
	numAcc := len(a.Ex.V.Acc)
	if startSub < 0 || startSub >= numAcc {
		panic(fmt.Sprintf("mg: adaptive start sub %d out of range [0,%d)", startSub, numAcc))
	}
	stag := a.Stagnation
	if stag <= 0 {
		stag = 2
	}
	maxIters := a.MaxIters
	if maxIters <= 0 {
		maxIters = 100
	}
	h := 1.0 / float64(x.N()-1)
	pool := a.Ex.WS.Pool
	op := a.Ex.WS.opAt(x.N())
	r0 := op.ResidualNorm(pool, x, b, h)
	if r0 == 0 {
		return AdaptiveResult{Reduction: math.Inf(1), FinalSub: startSub}
	}
	res := AdaptiveResult{FinalSub: startSub}
	prev := r0
	for res.Iters < maxIters {
		a.Ex.checkpoint()
		// RecurseNorm folds the convergence probe into the step's final
		// post-smoothing sweep — the per-iteration residual re-traversal
		// this loop used to pay is gone.
		cur := a.Ex.RecurseNorm(x, b, res.FinalSub)
		res.Iters++
		if nonFinite(cur) || cur > divergenceGrowth*r0 {
			abortDiverged("adaptive residual %g after %d iterations (started at %g)", cur, res.Iters, r0)
		}
		if cur <= r0/reduction || cur == 0 {
			res.Reduction = safeRatio(r0, cur)
			return res
		}
		// Stagnating? Move to a tuned sub-algorithm of higher accuracy, as
		// the paper's dynamic-tuning sketch suggests.
		if prev/cur < stag && res.FinalSub < numAcc-1 {
			res.FinalSub++
			res.Escalations++
		}
		prev = cur
	}
	res.Reduction = safeRatio(r0, op.ResidualNorm(pool, x, b, h))
	return res
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return a / b
}
