package mg

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"pbmg/internal/grid"
	"pbmg/internal/problem"
	"pbmg/internal/sched"
	"pbmg/internal/stencil"
)

// End-to-end lockdown of the color-split SOR path at the sizes its gate
// targets (N≥257 2D, N≥65 3D with ≥8 sweeps): Workspace.SOR through the
// split layout must produce the same bits as the NoFuse strided oracle, for
// serial and pooled execution alike.

func TestSORSplitEndToEnd(t *testing.T) {
	cases := []struct {
		name string
		op   *stencil.Operator
		n    int
	}{
		{"poisson-257", stencil.Poisson(), 257},
		{"varcoef-2-257", stencil.VarCoefOperator(stencil.CoefField(257, 2), 2), 257},
		{"poisson3d-65", stencil.Poisson3D(), 65},
	}
	const sweeps = 12
	for _, tc := range cases {
		if !stencil.SplitWorthwhile(tc.op.Dim(), tc.n, sweeps) {
			t.Fatalf("%s: case is not gate-eligible; fix the test sizes", tc.name)
		}
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/workers-%d", tc.name, workers), func(t *testing.T) {
				var pool *sched.Pool
				if workers > 1 {
					pool = sched.NewPool(workers)
					defer pool.Close()
				}
				rng := rand.New(rand.NewSource(321))
				p := problem.RandomOp(tc.n, grid.Unbiased, rng, tc.op)
				omega := stencil.OmegaOpt(tc.n)

				run := func(noFuse bool) *grid.Grid {
					ws := NewWorkspace(pool)
					ws.Op = tc.op
					ws.NoFuse = noFuse
					x := p.NewState()
					ws.SOR(x, p.B, omega, sweeps, nil)
					return x
				}
				want, got := run(true), run(false)
				wd, gd := want.Data(), got.Data()
				for k := range wd {
					if math.Float64bits(wd[k]) != math.Float64bits(gd[k]) {
						t.Fatalf("split SOR differs from strided at %d: %v vs %v", k, wd[k], gd[k])
					}
				}
			})
		}
	}
}
