package mg

import (
	"pbmg/internal/grid"
	"pbmg/internal/transfer"
)

// This file implements the paper's algorithmically static baselines:
// MULTIGRID-V-SIMPLE (§2.1), the reference iterated V-cycle, and the
// reference full multigrid algorithm (§4.2.2), plus the iterate-until-
// accuracy driver shared by all of them.

// RefVCycle performs one standard V-cycle on x in place: one pre-smoothing
// sweep, coarse-grid correction by recursion down to the N=3 direct base
// case, and one post-smoothing sweep — exactly MULTIGRID-V-SIMPLE.
func (ws *Workspace) RefVCycle(x, b *grid.Grid, rec Recorder) {
	refVCycleOf(ws, x, b, rec)
}

// refVCycleOf is RefVCycle at any storage precision, the cycle the
// mixed-precision plans run under f32 state.
func refVCycleOf[T grid.Float](ws *Workspace, x, b *grid.G[T], rec Recorder) {
	if x.N() == 3 {
		solveDirectOf(ws, x, b, rec)
		return
	}
	recurseWithOf(ws, x, b, rec, func(cx, cb *grid.G[T]) {
		refVCycleOf(ws, cx, cb, rec)
	}, nil)
}

// RefWCycle performs one standard W-cycle on x in place: like the V-cycle
// but visiting the coarse level twice per level (cycle index γ=2), the
// other classic symmetric shape the paper's tuned cycles are compared
// against conceptually (§2.4).
func (ws *Workspace) RefWCycle(x, b *grid.Grid, rec Recorder) {
	if x.N() == 3 {
		ws.SolveDirect(x, b, rec)
		return
	}
	ws.RecurseWith(x, b, rec, func(cx, cb *grid.Grid) {
		ws.RefWCycle(cx, cb, rec)
		if cx.N() > 3 {
			ws.RefWCycle(cx, cb, rec)
		}
	})
}

// RefFullMG performs one standard full-multigrid pass on x in place: an
// estimation phase that recursively solves the restricted residual problem
// (Figure 3), followed by one V-cycle at this resolution.
func (ws *Workspace) RefFullMG(x, b *grid.Grid, rec Recorder) {
	n := x.N()
	if n == 3 {
		ws.SolveDirect(x, b, rec)
		return
	}
	lvl := grid.Level(n)
	bufs := ws.checkout(n)
	defer ws.release(bufs)

	ws.restrictResidual(x, b, bufs.cb, bufs.r, rec)
	bufs.cx.Zero()
	ws.RefFullMG(bufs.cx, bufs.cb, rec)
	transfer.InterpolateAdd(ws.Pool, x, bufs.cx, bufs.scratch)
	record(rec, EvInterp, lvl, 1)
	ws.RefVCycle(x, b, rec)
}

// IterateUntil repeatedly calls step until accuracy() reaches target or
// maxIters steps have run. It returns the number of steps taken and the
// accuracy achieved. accuracy is consulted after every step.
func IterateUntil(target float64, maxIters int, step func(), accuracy func() float64) (iters int, achieved float64) {
	for iters = 0; iters < maxIters; iters++ {
		step()
		achieved = accuracy()
		if achieved >= target {
			return iters + 1, achieved
		}
	}
	return iters, achieved
}

// SolveRefV iterates reference V-cycles until the accuracy target (measured
// by accuracy()) is met, up to maxIters cycles.
func (ws *Workspace) SolveRefV(x, b *grid.Grid, target float64, maxIters int, accuracy func() float64, rec Recorder) (int, float64) {
	return IterateUntil(target, maxIters, func() { ws.RefVCycle(x, b, rec) }, accuracy)
}

// SolveRefFullMG runs one full-multigrid pass and then iterates V-cycles
// until the accuracy target is met — the paper's second reference algorithm.
// The returned iteration count includes the initial FMG pass.
func (ws *Workspace) SolveRefFullMG(x, b *grid.Grid, target float64, maxIters int, accuracy func() float64, rec Recorder) (int, float64) {
	ws.RefFullMG(x, b, rec)
	if a := accuracy(); a >= target {
		return 1, a
	}
	iters, a := IterateUntil(target, maxIters-1, func() { ws.RefVCycle(x, b, rec) }, accuracy)
	return iters + 1, a
}

// SolveSOR iterates single SOR sweeps with the operator's shortcut-solver
// weight until the accuracy target is met — the paper's iterative baseline.
func (ws *Workspace) SolveSOR(x, b *grid.Grid, target float64, maxIters int, accuracy func() float64, rec Recorder) (int, float64) {
	n := x.N()
	h := 1.0 / float64(n-1)
	op := ws.opAt(n)
	omega := op.OmegaOpt(n)
	lvl := grid.Level(n)
	iters, a := IterateUntil(target, maxIters, func() {
		op.SORSweepRB(ws.Pool, x, b, h, omega)
	}, accuracy)
	record(rec, EvIterSolve, lvl, iters)
	return iters, a
}
