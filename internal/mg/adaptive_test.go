package mg

import (
	"math"
	"testing"

	"pbmg/internal/grid"
	"pbmg/internal/stencil"
)

func adaptiveFixture(t *testing.T) (*AdaptiveSolver, *Workspace) {
	t.Helper()
	_, ws := testProblem(t, 33, grid.Unbiased, 21)
	vt := uniformVTable(5, 3)
	ex := &Executor{WS: ws, V: vt}
	return &AdaptiveSolver{Ex: ex}, ws
}

func TestAdaptiveReachesResidualTarget(t *testing.T) {
	p, ws := testProblem(t, 33, grid.Unbiased, 22)
	vt := uniformVTable(5, 3)
	a := &AdaptiveSolver{Ex: &Executor{WS: ws, V: vt}}
	x := p.NewState()
	res := a.Solve(x, p.B, 1e8, 0)
	if res.Reduction < 1e8 {
		t.Fatalf("adaptive reduction %.3g, want ≥ 1e8 (iters %d)", res.Reduction, res.Iters)
	}
	// The residual target is a proxy; the actual error must have improved
	// dramatically too.
	if acc := p.AccuracyOf(x); acc < 1e6 {
		t.Fatalf("accuracy %.3g despite residual reduction %.3g", acc, res.Reduction)
	}
}

func TestAdaptiveStopsEarlyOnEasyTarget(t *testing.T) {
	p, ws := testProblem(t, 17, grid.Biased, 23)
	vt := uniformVTable(4, 2)
	a := &AdaptiveSolver{Ex: &Executor{WS: ws, V: vt}}
	x := p.NewState()
	res := a.Solve(x, p.B, 5, 0)
	if res.Iters > 2 {
		t.Fatalf("easy target took %d iterations", res.Iters)
	}
}

func TestAdaptiveEscalatesOnForcedStagnation(t *testing.T) {
	p, ws := testProblem(t, 33, grid.Unbiased, 24)
	vt := uniformVTable(5, 3)
	a := &AdaptiveSolver{
		Ex:         &Executor{WS: ws, V: vt},
		Stagnation: math.Inf(1), // every step counts as stagnating
		MaxIters:   6,
	}
	x := p.NewState()
	res := a.Solve(x, p.B, 1e30, 0) // unreachable target: run to MaxIters
	if res.Escalations == 0 || res.FinalSub != 2 {
		t.Fatalf("expected escalation to the highest sub-accuracy, got %+v", res)
	}
	if res.Iters != 6 {
		t.Fatalf("iters = %d, want MaxIters", res.Iters)
	}
}

func TestAdaptiveZeroResidualShortCircuit(t *testing.T) {
	a, ws := adaptiveFixture(t)
	_ = ws
	// x already satisfies T·x = b for b = T·x: build via Apply.
	x := grid.New(33)
	for i := range x.Data() {
		x.Data()[i] = float64(i % 7)
	}
	b := grid.New(33)
	stencil.Apply(nil, b, x, 1.0/32)
	res := a.Solve(x, b, 10, 0)
	if res.Iters != 0 || !math.IsInf(res.Reduction, 1) {
		t.Fatalf("zero-residual start should return immediately, got %+v", res)
	}
}

func TestAdaptivePanicsOnBadArgs(t *testing.T) {
	a, _ := adaptiveFixture(t)
	x, b := grid.New(33), grid.New(33)
	for _, fn := range []func(){
		func() { a.Solve(x, b, 0.5, 0) },
		func() { a.Solve(x, b, 10, 99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestAdaptiveDefaults(t *testing.T) {
	p, ws := testProblem(t, 17, grid.Unbiased, 25)
	vt := uniformVTable(4, 1)
	a := &AdaptiveSolver{Ex: &Executor{WS: ws, V: vt}} // zero Stagnation/MaxIters
	x := p.NewState()
	res := a.Solve(x, p.B, 1e4, 0)
	if res.Reduction < 1e4 {
		t.Fatalf("defaults failed to converge: %+v", res)
	}
}
