package mg

import (
	"math/rand"
	"strings"
	"testing"

	"pbmg/internal/grid"
	"pbmg/internal/problem"
	"pbmg/internal/stencil"
)

// testProblem builds a random problem of side n with its reference solution
// computed by the direct solver.
func testProblem(t *testing.T, n int, dist grid.Distribution, seed int64) (*problem.Problem, *Workspace) {
	t.Helper()
	p := problem.Random(n, dist, rand.New(rand.NewSource(seed)))
	ws := NewWorkspace(nil)
	ws.CacheDirectFactor = true
	opt := p.NewState()
	ws.SolveDirect(opt, p.B, nil)
	p.SetOptimal(opt)
	return p, ws
}

func TestOpTraceCounts(t *testing.T) {
	var tr OpTrace
	tr.Record(EvRelax, 3, 2)
	tr.Record(EvRelax, 3, 1)
	tr.Record(EvDirect, 1, 1)
	if got := tr.Count(EvRelax, 3); got != 3 {
		t.Fatalf("Count(relax,3) = %d, want 3", got)
	}
	if got := tr.Count(EvRelax, 2); got != 0 {
		t.Fatalf("Count(relax,2) = %d, want 0", got)
	}
	if tr.MaxLevel() != 3 {
		t.Fatalf("MaxLevel = %d, want 3", tr.MaxLevel())
	}
	if tr.Total(EvRelax) != 3 || tr.Total(EvDirect) != 1 {
		t.Fatal("Total mismatch")
	}
	var other OpTrace
	other.Record(EvRelax, 3, 5)
	tr.Merge(&other)
	if tr.Count(EvRelax, 3) != 8 {
		t.Fatal("Merge did not add counts")
	}
	tr.Reset()
	if tr.Total(EvRelax) != 0 || tr.MaxLevel() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestShapeLogMergesConsecutiveRelax(t *testing.T) {
	var s ShapeLog
	s.Record(EvRelax, 4, 1)
	s.Record(EvRelax, 4, 2)
	s.Record(EvRelax, 3, 1)
	s.Record(EvRestrict, 3, 1)
	if len(s.Events) != 3 {
		t.Fatalf("events = %d, want 3 (merged)", len(s.Events))
	}
	if s.Events[0].Count != 3 {
		t.Fatalf("merged count = %d, want 3", s.Events[0].Count)
	}
}

func TestEventKindString(t *testing.T) {
	names := map[EventKind]string{
		EvRelax: "relax", EvResidual: "residual", EvRestrict: "restrict",
		EvInterp: "interp", EvDirect: "direct", EvIterSolve: "iter-solve",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestRefVCycleConverges(t *testing.T) {
	p, ws := testProblem(t, 33, grid.Unbiased, 1)
	x := p.NewState()
	iters, acc := ws.SolveRefV(x, p.B, 1e9, 100, func() float64 { return p.AccuracyOf(x) }, nil)
	if acc < 1e9 {
		t.Fatalf("V-cycles reached accuracy %v after %d iters, want ≥ 1e9", acc, iters)
	}
	if iters > 30 {
		t.Fatalf("V-cycles needed %d iterations for 1e9; convergence is too slow", iters)
	}
}

func TestRefFullMGFasterThanV(t *testing.T) {
	p, ws := testProblem(t, 65, grid.Biased, 2)
	xv := p.NewState()
	iv, _ := ws.SolveRefV(xv, p.B, 1e5, 100, func() float64 { return p.AccuracyOf(xv) }, nil)
	xf := p.NewState()
	ifmg, _ := ws.SolveRefFullMG(xf, p.B, 1e5, 100, func() float64 { return p.AccuracyOf(xf) }, nil)
	if ifmg > iv {
		t.Fatalf("full MG took %d iterations vs V's %d; estimation phase should help", ifmg, iv)
	}
}

func TestSolveSORReachesTarget(t *testing.T) {
	p, ws := testProblem(t, 17, grid.Unbiased, 3)
	x := p.NewState()
	iters, acc := ws.SolveSOR(x, p.B, 1e3, 100000, func() float64 { return p.AccuracyOf(x) }, nil)
	if acc < 1e3 {
		t.Fatalf("SOR reached %v after %d iters, want ≥ 1e3", acc, iters)
	}
}

func TestIterateUntilStopsAtMax(t *testing.T) {
	n := 0
	iters, acc := IterateUntil(10, 5, func() { n++ }, func() float64 { return 1 })
	if iters != 5 || n != 5 || acc != 1 {
		t.Fatalf("IterateUntil = (%d, %v), want (5, 1)", iters, acc)
	}
	iters, acc = IterateUntil(10, 5, func() { n++ }, func() float64 { return 100 })
	if iters != 1 || acc != 100 {
		t.Fatalf("early stop = (%d, %v), want (1, 100)", iters, acc)
	}
}

// uniformVTable builds a table where every cell recurses once into the same
// accuracy index — structurally identical to the reference V-cycle.
func uniformVTable(maxLevel, numAcc int) *VTable {
	accs := make([]float64, numAcc)
	for i := range accs {
		accs[i] = float64(10 * (i + 1))
	}
	t := &VTable{Acc: accs}
	for l := 2; l <= maxLevel; l++ {
		row := make([]Plan, numAcc)
		for i := range row {
			row[i] = Plan{Choice: ChoiceRecurse, Iters: 1, Sub: i}
		}
		t.Plans = append(t.Plans, row)
	}
	return t
}

func TestTunedVMatchesReferenceVWhenStructurallyEqual(t *testing.T) {
	p, ws := testProblem(t, 33, grid.Unbiased, 4)
	vt := uniformVTable(5, 2)
	if err := vt.Validate(); err != nil {
		t.Fatal(err)
	}
	var trTuned, trRef OpTrace
	ex := &Executor{WS: ws, V: vt, Rec: &trTuned}
	xt := p.NewState()
	ex.SolveV(xt, p.B, 0)
	xr := p.NewState()
	ws.RefVCycle(xr, p.B, &trRef)
	for i := range xt.Data() {
		if xt.Data()[i] != xr.Data()[i] {
			t.Fatal("tuned V with V-shaped table differs from reference V-cycle")
		}
	}
	for k := EventKind(0); k < numEventKinds; k++ {
		for l := 0; l <= 6; l++ {
			if trTuned.Count(k, l) != trRef.Count(k, l) {
				t.Fatalf("trace mismatch at kind %v level %d: %d vs %d",
					k, l, trTuned.Count(k, l), trRef.Count(k, l))
			}
		}
	}
}

func TestTunedVDirectChoice(t *testing.T) {
	p, ws := testProblem(t, 17, grid.Biased, 5)
	vt := uniformVTable(4, 1)
	vt.Plans[2][0] = Plan{Choice: ChoiceDirect} // level 4 solves directly
	ex := &Executor{WS: ws, V: vt}
	x := p.NewState()
	ex.SolveV(x, p.B, 0)
	if acc := p.AccuracyOf(x); acc < 1e12 {
		t.Fatalf("direct choice should be near-exact, accuracy %v", acc)
	}
}

func TestTunedVSORChoice(t *testing.T) {
	p, ws := testProblem(t, 17, grid.Unbiased, 6)
	vt := uniformVTable(4, 1)
	vt.Plans[2][0] = Plan{Choice: ChoiceSOR, Iters: 7}
	ex := &Executor{WS: ws, V: vt}
	x := p.NewState()
	ex.SolveV(x, p.B, 0)
	// Must equal running seven ω_opt sweeps by hand.
	want := p.NewState()
	h := 1.0 / 16
	for i := 0; i < 7; i++ {
		stencil.SORSweepRB(nil, want, p.B, h, stencil.OmegaOpt(17))
	}
	for i := range x.Data() {
		if x.Data()[i] != want.Data()[i] {
			t.Fatal("SOR choice does not match manual sweeps")
		}
	}
}

func TestTunedVMultipleIterationsImprove(t *testing.T) {
	p, ws := testProblem(t, 33, grid.Unbiased, 7)
	one := uniformVTable(5, 1)
	three := uniformVTable(5, 1)
	three.Plans[3][0].Iters = 3 // top level runs 3 recursions
	x1 := p.NewState()
	(&Executor{WS: ws, V: one}).SolveV(x1, p.B, 0)
	x3 := p.NewState()
	(&Executor{WS: ws, V: three}).SolveV(x3, p.B, 0)
	if p.AccuracyOf(x3) <= p.AccuracyOf(x1) {
		t.Fatal("more recursion iterations should improve accuracy")
	}
}

func TestTunedFullMatchesReferenceFMGWhenStructurallyEqual(t *testing.T) {
	p, ws := testProblem(t, 33, grid.Biased, 8)
	numAcc := 1
	vt := uniformVTable(5, numAcc)
	ft := &FTable{Acc: vt.Acc}
	for l := 2; l <= 5; l++ {
		ft.Plans = append(ft.Plans, []FullPlan{{
			Choice: FullEstimate, EstAcc: 0,
			Solve: ChoiceRecurse, SolveSub: 0, Iters: 1,
		}})
	}
	if err := ft.Validate(); err != nil {
		t.Fatal(err)
	}
	ex := &Executor{WS: ws, V: vt, F: ft}
	xt := p.NewState()
	ex.SolveFull(xt, p.B, 0)
	xr := p.NewState()
	ws.RefFullMG(xr, p.B, nil)
	for i := range xt.Data() {
		if xt.Data()[i] != xr.Data()[i] {
			t.Fatal("tuned full MG with FMG-shaped table differs from reference FMG")
		}
	}
}

func TestEstimateImprovesStartingPoint(t *testing.T) {
	p, ws := testProblem(t, 33, grid.Unbiased, 9)
	vt := uniformVTable(5, 1)
	ft := &FTable{Acc: vt.Acc}
	for l := 2; l <= 5; l++ {
		ft.Plans = append(ft.Plans, []FullPlan{{
			Choice: FullEstimate, EstAcc: 0, Solve: ChoiceRecurse, SolveSub: 0, Iters: 1,
		}})
	}
	ex := &Executor{WS: ws, V: vt, F: ft}
	x := p.NewState()
	before := p.AccuracyOf(x)
	ex.Estimate(x, p.B, 0)
	if after := p.AccuracyOf(x); after <= before {
		t.Fatalf("estimate did not improve accuracy: %v -> %v", before, after)
	}
}

func TestVTableValidate(t *testing.T) {
	good := uniformVTable(4, 3)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	bad := uniformVTable(4, 3)
	bad.Acc = []float64{10, 5, 100}
	if bad.Validate() == nil {
		t.Fatal("non-ascending accuracies accepted")
	}
	bad2 := uniformVTable(4, 3)
	bad2.Plans[1][2] = Plan{Choice: ChoiceRecurse, Iters: 0, Sub: 0}
	if bad2.Validate() == nil {
		t.Fatal("zero-iteration recurse accepted")
	}
	bad3 := uniformVTable(4, 3)
	bad3.Plans[0][0] = Plan{Choice: ChoiceRecurse, Iters: 1, Sub: 9}
	if bad3.Validate() == nil {
		t.Fatal("out-of-range sub accepted")
	}
	bad4 := uniformVTable(4, 3)
	bad4.Plans[0] = bad4.Plans[0][:2]
	if bad4.Validate() == nil {
		t.Fatal("ragged plan rows accepted")
	}
}

func TestFTableValidate(t *testing.T) {
	ft := &FTable{Acc: []float64{10, 100}}
	ft.Plans = append(ft.Plans, []FullPlan{
		{Choice: FullEstimate, EstAcc: 0, Solve: ChoiceSOR, Iters: 2},
		{Choice: FullDirect},
	})
	if err := ft.Validate(); err != nil {
		t.Fatalf("valid FTable rejected: %v", err)
	}
	bad := &FTable{Acc: []float64{10, 100}}
	bad.Plans = append(bad.Plans, []FullPlan{
		{Choice: FullEstimate, EstAcc: 5, Solve: ChoiceSOR, Iters: 1},
		{Choice: FullDirect},
	})
	if bad.Validate() == nil {
		t.Fatal("out-of-range estimate accuracy accepted")
	}
	bad2 := &FTable{Acc: []float64{10, 100}}
	bad2.Plans = append(bad2.Plans, []FullPlan{
		{Choice: FullEstimate, EstAcc: 0, Solve: ChoiceDirect, Iters: 1},
		{Choice: FullDirect},
	})
	if bad2.Validate() == nil {
		t.Fatal("direct solve-phase choice accepted")
	}
}

func TestPlanLookupBaseCase(t *testing.T) {
	vt := uniformVTable(4, 2)
	if vt.Plan(1, 0).Choice != ChoiceDirect {
		t.Fatal("level 1 plan should be direct")
	}
	if vt.MaxLevel() != 4 {
		t.Fatalf("MaxLevel = %d, want 4", vt.MaxLevel())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Plan beyond MaxLevel did not panic")
		}
	}()
	vt.Plan(9, 0)
}

func TestRenderShapeVCycle(t *testing.T) {
	p, ws := testProblem(t, 17, grid.Unbiased, 10)
	var log ShapeLog
	x := p.NewState()
	ws.RefVCycle(x, p.B, &log)
	out := RenderShape(&log)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // levels 4..1
		t.Fatalf("rendered %d rows, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "D") {
		t.Fatalf("V-cycle render missing direct solve:\n%s", out)
	}
	if !strings.Contains(out, `\`) || !strings.Contains(out, "/") {
		t.Fatalf("V-cycle render missing transitions:\n%s", out)
	}
	if !strings.HasPrefix(lines[0], " 4 |") || !strings.HasPrefix(lines[3], " 1 |") {
		t.Fatalf("row labels wrong:\n%s", out)
	}
}

func TestRenderShapeEmpty(t *testing.T) {
	var log ShapeLog
	if got := RenderShape(&log); !strings.Contains(got, "empty") {
		t.Fatalf("empty render = %q", got)
	}
}

func TestRenderShapeIterSolve(t *testing.T) {
	var log ShapeLog
	log.Record(EvIterSolve, 3, 12)
	out := RenderShape(&log)
	if !strings.Contains(out, "~12~") {
		t.Fatalf("iterative solve glyph missing:\n%s", out)
	}
}

func TestDescribeV(t *testing.T) {
	vt := uniformVTable(4, 2)
	vt.Plans[2][1] = Plan{Choice: ChoiceRecurse, Iters: 2, Sub: 0}
	vt.Plans[1][0] = Plan{Choice: ChoiceSOR, Iters: 9}
	out := DescribeV(vt, 4, 1)
	if !strings.Contains(out, "MULTIGRID-V2 @ level 4 (N=17): RECURSE1 ×2") {
		t.Fatalf("missing top line:\n%s", out)
	}
	if !strings.Contains(out, "MULTIGRID-V1 @ level 3 (N=9): SOR ×9") {
		t.Fatalf("missing SOR line:\n%s", out)
	}
}

func TestDescribeFull(t *testing.T) {
	vt := uniformVTable(3, 1)
	ft := &FTable{Acc: vt.Acc}
	ft.Plans = append(ft.Plans,
		[]FullPlan{{Choice: FullDirect}},
		[]FullPlan{{Choice: FullEstimate, EstAcc: 0, Solve: ChoiceSOR, Iters: 4}},
	)
	out := DescribeFull(ft, vt, 3, 0)
	if !strings.Contains(out, "ESTIMATE1, then SOR ×4") {
		t.Fatalf("missing estimate line:\n%s", out)
	}
	if !strings.Contains(out, "FULL-MG1 @ level 2 (N=5): direct") {
		t.Fatalf("missing recursive estimate description:\n%s", out)
	}
}

func TestWorkspaceArenaCheckout(t *testing.T) {
	ws := NewWorkspace(nil)
	// Overlapping checkouts (as in concurrent solves) must yield distinct
	// scratch sets; sizes must match the level geometry.
	b1 := ws.checkout(17)
	b2 := ws.checkout(17)
	if b1 == b2 {
		t.Fatal("overlapping checkouts shared a scratch set")
	}
	if b1.cb.N() != 9 {
		t.Fatalf("coarse buffer size = %d, want 9", b1.cb.N())
	}
	if b1.r.N() != 17 || b1.scratch.N() != 17 || b1.cx.N() != 9 {
		t.Fatal("scratch set has wrong geometry")
	}
	ws.release(b1)
	ws.release(b2)
}

func TestWorkspaceDirectCaching(t *testing.T) {
	ws := NewWorkspace(nil)
	p := problem.Random(9, grid.Unbiased, rand.New(rand.NewSource(11)))
	x1, x2 := p.NewState(), p.NewState()
	ws.SolveDirect(x1, p.B, nil) // fresh factorization path
	ws.CacheDirectFactor = true
	ws.SolveDirect(x2, p.B, nil) // cached path
	for i := range x1.Data() {
		if x1.Data()[i] != x2.Data()[i] {
			t.Fatal("cached and fresh direct solves differ")
		}
	}
}

func TestMultiRecorder(t *testing.T) {
	var a, b OpTrace
	m := MultiRecorder{&a, nil, &b}
	m.Record(EvRelax, 2, 3)
	if a.Count(EvRelax, 2) != 3 || b.Count(EvRelax, 2) != 3 {
		t.Fatal("MultiRecorder did not fan out")
	}
}

func TestChoiceStrings(t *testing.T) {
	if ChoiceDirect.String() != "direct" || ChoiceSOR.String() != "sor" ||
		ChoiceRecurse.String() != "recurse" {
		t.Fatal("Choice.String mismatch")
	}
	if FullDirect.String() != "direct" || FullEstimate.String() != "estimate" {
		t.Fatal("FullChoice.String mismatch")
	}
}

func TestSmootherString(t *testing.T) {
	if SmootherSOR.String() != "sor-1.15" || SmootherJacobi.String() != "jacobi-2/3" {
		t.Fatal("Smoother.String mismatch")
	}
	if Smoother(9).String() == "" {
		t.Fatal("unknown smoother should still render")
	}
}

func TestJacobiSmootherConvergesInVCycle(t *testing.T) {
	p, ws := testProblem(t, 33, grid.Unbiased, 41)
	ws.Smoother = SmootherJacobi
	x := p.NewState()
	iters, acc := ws.SolveRefV(x, p.B, 1e5, 100, func() float64 { return p.AccuracyOf(x) }, nil)
	if acc < 1e5 {
		t.Fatalf("Jacobi-smoothed V cycles reached %.3g after %d iters", acc, iters)
	}
	// The paper found SOR the better smoother: same target, fewer cycles.
	ws2 := NewWorkspace(nil)
	ws2.CacheDirectFactor = true
	xs := p.NewState()
	itersSOR, _ := ws2.SolveRefV(xs, p.B, 1e5, 100, func() float64 { return p.AccuracyOf(xs) }, nil)
	if itersSOR > iters {
		t.Fatalf("SOR smoothing took more cycles (%d) than Jacobi (%d)", itersSOR, iters)
	}
}

func TestVCycleChoiceExecutes(t *testing.T) {
	p, ws := testProblem(t, 17, grid.Unbiased, 42)
	vt := uniformVTable(4, 1)
	vt.Plans[2][0] = Plan{Choice: ChoiceVCycle, Iters: 3}
	ex := &Executor{WS: ws, V: vt}
	x := p.NewState()
	ex.SolveV(x, p.B, 0)
	// Must equal three reference V cycles exactly.
	want := p.NewState()
	for i := 0; i < 3; i++ {
		ws.RefVCycle(want, p.B, nil)
	}
	for i := range x.Data() {
		if x.Data()[i] != want.Data()[i] {
			t.Fatal("ChoiceVCycle does not match reference V cycles")
		}
	}
}

func TestVCycleChoiceValidates(t *testing.T) {
	vt := uniformVTable(3, 1)
	vt.Plans[0][0] = Plan{Choice: ChoiceVCycle, Iters: 0}
	if vt.Validate() == nil {
		t.Fatal("zero-iteration vcycle accepted")
	}
	if ChoiceVCycle.String() != "vcycle" {
		t.Fatal("ChoiceVCycle.String mismatch")
	}
}
