package mg

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"pbmg/internal/grid"
	"pbmg/internal/sched"
	"pbmg/internal/stencil"
)

// random3DProblem returns a random 3D state (boundary + zero interior) and
// right-hand side at side n.
func random3DProblem(n int, seed int64) (x, b *grid.Grid) {
	rng := rand.New(rand.NewSource(seed))
	x, b = grid.New3(n), grid.New3(n)
	bd := b.Data()
	for i := range bd {
		bd[i] = rng.Float64()*2 - 1
	}
	grid.FillBoundaryRandom(x, grid.Unbiased, rng)
	x.Scale(1.0 / (1 << 32))
	return x, b
}

func newWS3(pool *sched.Pool) *Workspace {
	ws := NewWorkspace(pool)
	ws.Op = stencil.Poisson3D()
	ws.CacheDirectFactor = true
	return ws
}

// TestRefVCycle3DConverges: the reference V-cycle — running entirely
// through the dimension-generic smoothing, residual, transfer, and direct
// layers — must contract a 3D Poisson problem at the textbook multigrid
// rate (≥5× residual reduction per cycle, far beyond SOR).
func TestRefVCycle3DConverges(t *testing.T) {
	for _, n := range []int{17, 33} {
		ws := newWS3(nil)
		x, b := random3DProblem(n, int64(n))
		h := 1.0 / float64(n-1)
		op := ws.Operator()
		r0 := op.ResidualNorm(nil, x, b, h)
		cycles := 0
		for ; cycles < 30; cycles++ {
			ws.RefVCycle(x, b, nil)
			if op.ResidualNorm(nil, x, b, h) <= 1e-10*r0 {
				break
			}
		}
		if cycles >= 30 {
			t.Fatalf("N=%d: V-cycle did not reach 1e-10 relative residual in 30 cycles (%v of %v)",
				n, op.ResidualNorm(nil, x, b, h), r0)
		}
		perCycle := math.Pow(r0/op.ResidualNorm(nil, x, b, h), 1/float64(cycles+1))
		if perCycle < 5 {
			t.Fatalf("N=%d: contraction %.2f×/cycle is below multigrid rate", n, perCycle)
		}
	}
}

// TestRefFullMG3D: one full-multigrid pass lands within a few V-cycles of
// the converged answer.
func TestRefFullMG3D(t *testing.T) {
	n := 33
	ws := newWS3(nil)
	x, b := random3DProblem(n, 7)
	h := 1.0 / float64(n-1)
	r0 := ws.Operator().ResidualNorm(nil, x, b, h)
	ws.RefFullMG(x, b, nil)
	if r := ws.Operator().ResidualNorm(nil, x, b, h); r > 0.1*r0 {
		t.Fatalf("FMG pass left residual %v of initial %v", r, r0)
	}
}

// TestVCycle3DParallelBitIdentical: a pooled 3D V-cycle must produce
// exactly the bits of the serial cycle — the contract that makes parallel
// serving deterministic. Runs multiple concurrent parallel solves to give
// the race detector something to chew on.
func TestVCycle3DParallelBitIdentical(t *testing.T) {
	n := 33
	pool := sched.NewPool(4)
	defer pool.Close()

	serial := newWS3(nil)
	xs, b := random3DProblem(n, 11)
	for c := 0; c < 3; c++ {
		serial.RefVCycle(xs, b, nil)
	}

	const clients = 4
	var wg sync.WaitGroup
	results := make([]*grid.Grid, clients)
	par := newWS3(pool)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			xp, bp := random3DProblem(n, 11)
			for i := 0; i < 3; i++ {
				par.RefVCycle(xp, bp, nil)
			}
			results[c] = xp
		}(c)
	}
	wg.Wait()
	for c, xp := range results {
		sd, pd := xs.Data(), xp.Data()
		for i := range sd {
			if math.Float64bits(sd[i]) != math.Float64bits(pd[i]) {
				t.Fatalf("client %d: parallel V-cycle differs from serial at %d: %v vs %v", c, i, sd[i], pd[i])
			}
		}
	}
}

// TestWorkspaceArena3D: scratch checkout shapes buffers to the operator's
// dimension.
func TestWorkspaceArena3D(t *testing.T) {
	ws := newWS3(nil)
	bufs := ws.checkout(17)
	defer ws.release(bufs)
	if bufs.r.Dim() != 3 || bufs.cb.Dim() != 3 || bufs.cb.N() != 9 {
		t.Fatalf("3D workspace handed out %dD scratch (coarse N=%d)", bufs.r.Dim(), bufs.cb.N())
	}
}
