package mg

import (
	"fmt"

	"pbmg/internal/grid"
	"pbmg/internal/transfer"
)

// Executor runs the tuned algorithm families against a workspace. V must be
// set for SolveV; both V and F must be set for SolveFull (the full-multigrid
// solve phase reuses tuned RECURSE steps from the V table, as in §2.4).
// Rec, if non-nil, receives every operation event.
//
// An Executor is a cheap value: constructing one per solve costs nothing
// beyond the struct itself, and concurrent solves against a shared
// Workspace should each use their own Executor so Rec stays private. The
// tables (V, F) and the Workspace may be shared freely across goroutines.
type Executor struct {
	WS  *Workspace
	V   *VTable
	F   *FTable
	Rec Recorder
}

// SolveV runs the tuned MULTIGRID-Vᵢ algorithm for accuracy index accIdx on
// x in place. The level is inferred from x's size.
func (e *Executor) SolveV(x, b *grid.Grid, accIdx int) {
	level := grid.Level(x.N())
	if level < 1 {
		panic(fmt.Sprintf("mg: grid size %d is not 2^k+1", x.N()))
	}
	if level == 1 {
		e.WS.SolveDirect(x, b, e.Rec)
		return
	}
	plan := e.V.Plan(level, accIdx)
	switch plan.Choice {
	case ChoiceDirect:
		e.WS.SolveDirect(x, b, e.Rec)
	case ChoiceSOR:
		e.WS.SOR(x, b, e.WS.OmegaOpt(x.N()), plan.Iters, e.Rec)
	case ChoiceRecurse:
		for it := 0; it < plan.Iters; it++ {
			e.Recurse(x, b, plan.Sub)
		}
	case ChoiceVCycle:
		for it := 0; it < plan.Iters; it++ {
			e.WS.RefVCycle(x, b, e.Rec)
		}
	default:
		panic(fmt.Sprintf("mg: invalid plan choice %v", plan.Choice))
	}
}

// Recurse performs one RECURSE_j step (§2.3) on x in place: one
// pre-smoothing sweep, residual restriction, a tuned MULTIGRID-V_j solve of
// the coarse error equation, correction, and one post-smoothing sweep.
func (e *Executor) Recurse(x, b *grid.Grid, subIdx int) {
	e.WS.RecurseWith(x, b, e.Rec, func(cx, cb *grid.Grid) {
		e.SolveV(cx, cb, subIdx)
	})
}

// RecurseNorm performs one RECURSE_j step and returns ‖b − T·x‖₂ after its
// post-smoothing sweep, with the norm reduction fused into that sweep. It
// is the adaptive driver's per-iteration primitive: step and convergence
// probe in one set of grid traversals.
func (e *Executor) RecurseNorm(x, b *grid.Grid, subIdx int) float64 {
	return e.WS.RecurseWithNorm(x, b, e.Rec, func(cx, cb *grid.Grid) {
		e.SolveV(cx, cb, subIdx)
	})
}

// SolveFull runs the tuned FULL-MULTIGRIDᵢ algorithm for accuracy index
// accIdx on x in place.
func (e *Executor) SolveFull(x, b *grid.Grid, accIdx int) {
	level := grid.Level(x.N())
	if level < 1 {
		panic(fmt.Sprintf("mg: grid size %d is not 2^k+1", x.N()))
	}
	if level == 1 {
		e.WS.SolveDirect(x, b, e.Rec)
		return
	}
	plan := e.F.Plan(level, accIdx)
	switch plan.Choice {
	case FullDirect:
		e.WS.SolveDirect(x, b, e.Rec)
		return
	case FullEstimate:
		e.Estimate(x, b, plan.EstAcc)
		switch plan.Solve {
		case ChoiceSOR:
			if plan.Iters > 0 {
				e.WS.SOR(x, b, e.WS.OmegaOpt(x.N()), plan.Iters, e.Rec)
			}
		case ChoiceRecurse:
			for it := 0; it < plan.Iters; it++ {
				e.Recurse(x, b, plan.SolveSub)
			}
		case ChoiceVCycle:
			for it := 0; it < plan.Iters; it++ {
				e.WS.RefVCycle(x, b, e.Rec)
			}
		default:
			panic(fmt.Sprintf("mg: invalid solve-phase choice %v", plan.Solve))
		}
	default:
		panic(fmt.Sprintf("mg: invalid full plan choice %v", plan.Choice))
	}
}

// Estimate performs the ESTIMATE_j phase (§2.4) on x in place: restrict the
// residual problem to half resolution, solve it with the tuned
// FULL-MULTIGRID_j, and apply the interpolated correction to x.
func (e *Executor) Estimate(x, b *grid.Grid, estAcc int) {
	n := x.N()
	lvl := grid.Level(n)
	bufs := e.WS.checkout(n)
	defer e.WS.release(bufs)

	e.WS.restrictResidual(x, b, bufs.cb, bufs.r, e.Rec)
	bufs.cx.Zero()
	e.SolveFull(bufs.cx, bufs.cb, estAcc)
	// ESTIMATE has no post-smooth to fuse the correction into, but the
	// scratch-free interpolate-add still halves the pass's grid traffic
	// (interpolated rows stream from a cache-resident buffer instead of a
	// materialized full-size scratch grid). NoFuse keeps the oracle.
	if e.WS.NoFuse {
		transfer.InterpolateAdd(e.WS.Pool, x, bufs.cx, bufs.scratch)
	} else {
		transfer.InterpolateAddFused(e.WS.Pool, x, bufs.cx)
	}
	record(e.Rec, EvInterp, lvl, 1)
}
