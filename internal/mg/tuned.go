package mg

import (
	"context"
	"fmt"
	"math"

	"pbmg/internal/faultinject"
	"pbmg/internal/grid"
	"pbmg/internal/transfer"
)

// Executor runs the tuned algorithm families against a workspace. V must be
// set for SolveV; both V and F must be set for SolveFull (the full-multigrid
// solve phase reuses tuned RECURSE steps from the V table, as in §2.4).
// Rec, if non-nil, receives every operation event.
//
// An Executor is a cheap value: constructing one per solve costs nothing
// beyond the struct itself, and concurrent solves against a shared
// Workspace should each use their own Executor so Rec stays private. The
// tables (V, F) and the Workspace may be shared freely across goroutines.
type Executor struct {
	WS  *Workspace
	V   *VTable
	F   *FTable
	Rec Recorder

	// Ctx, when non-nil, is polled at cycle and level boundaries: once it
	// is done the solve aborts with an error wrapping ErrCancelled
	// (delivered through Run), returning every pooled scratch buffer on
	// the way out. Nil (the default) costs nothing.
	Ctx context.Context

	// ForceF64 ignores the plans' precision directives and runs every cell
	// in float64 storage — the escalation retry after an f32/mixed cell
	// diverged (see ErrDiverged). The cycle shapes and iteration counts
	// stay exactly as tuned; only the storage precision is pinned.
	ForceF64 bool
}

// SolveV runs the tuned MULTIGRID-Vᵢ algorithm for accuracy index accIdx on
// x in place. The level is inferred from x's size. A cell whose plan carries
// a precision directive is honored here: PrecF32 converts the state to
// float32 and runs the whole sub-solve at that precision; PrecMixed runs the
// f64 iterative-refinement loop around one-step f32 cycles.
func (e *Executor) SolveV(x, b *grid.Grid, accIdx int) {
	solveVOf(e, x, b, accIdx)
}

// solveVOf dispatches one tuned cell at the current storage precision.
// Precision directives are only consulted while solving in float64 — once a
// subtree has dropped to f32, nested directives are no-ops (the state is
// already converted, and refinement needs an f64 iterate to correct).
func solveVOf[T grid.Float](e *Executor, x, b *grid.G[T], accIdx int) {
	level := grid.Level(x.N())
	if level < 1 {
		panic(fmt.Sprintf("mg: grid size %d is not 2^k+1", x.N()))
	}
	if level == 1 {
		solveDirectOf(e.WS, x, b, e.Rec)
		return
	}
	plan := e.V.Plan(level, accIdx)
	if grid.Bits[T]() == 64 && !e.ForceF64 {
		switch plan.Precision {
		case PrecF32:
			x64 := any(x).(*grid.Grid)
			b64 := any(b).(*grid.Grid)
			e.solveVF32(x64, b64, plan)
			return
		case PrecMixed:
			x64 := any(x).(*grid.Grid)
			b64 := any(b).(*grid.Grid)
			e.solveVMixed(x64, b64, plan)
			return
		}
	}
	solveVPlan(e, x, b, plan)
}

// solveVPlan executes a cell's choice at precision T.
func solveVPlan[T grid.Float](e *Executor, x, b *grid.G[T], plan Plan) {
	switch plan.Choice {
	case ChoiceDirect:
		solveDirectOf(e.WS, x, b, e.Rec)
	case ChoiceSOR:
		sorOf(e.WS, x, b, e.WS.OmegaOpt(x.N()), plan.Iters, e.Rec)
	case ChoiceRecurse:
		for it := 0; it < plan.Iters; it++ {
			e.checkpoint()
			recurseOf(e, x, b, plan.Sub)
		}
	case ChoiceVCycle:
		for it := 0; it < plan.Iters; it++ {
			e.checkpoint()
			refVCycleOf(e.WS, x, b, e.Rec)
		}
	default:
		panic(fmt.Sprintf("mg: invalid plan choice %v", plan.Choice))
	}
}

// solveVF32 runs a PrecF32 cell: round the state to float32, execute the
// plan's choice entirely in f32 storage, and write the interior back —
// the caller's f64 Dirichlet boundary is never rounded. The f32 scratch pair
// comes from the workspace arena, so steady-state solves stay
// allocation-free.
func (e *Executor) solveVF32(x, b *grid.Grid, plan Plan) {
	bufs := checkoutOf[float32](e.WS, x.N())
	defer releaseOf(e.WS, bufs)
	x32, b32 := bufs.r, bufs.scratch
	grid.ConvertInto(x32, x)
	grid.ConvertInto(b32, b)
	if faultinject.Enabled && faultinject.PointLevel("mg.f32.nan", grid.Level(x.N())) {
		x32.Data()[len(x32.Data())/2] = float32(math.NaN())
	}
	solveVPlan(e, x32, b32, plan)
	// The f32 cycle has no residual norms to watch, so divergence shows up
	// as a non-finite iterate: inputs past float32's dynamic range round to
	// ±Inf on entry and poison the sweeps. One read pass over the f32 state
	// catches it before the garbage is written back into the caller's f64
	// grid, and the abort's unwind returns the scratch pair above.
	if grid.HasNonFinite(x32) {
		abortDiverged("f32 plan at n=%d produced a non-finite iterate", x.N())
	}
	grid.ConvertInteriorInto(x, x32)
}

// solveVMixed runs a PrecMixed cell: float64 iterative refinement with the
// f32 cycle as preconditioner. Each of the plan's Iters iterations computes
// the double-precision defect r = b − T·x, solves the error equation
// T·e = r in float32 with ONE step of the plan's choice from a zero guess
// (the error has zero Dirichlet boundary), and corrects x += e in float64.
// The f32 cycle's rounding limits only the per-iteration contraction, not
// the attainable accuracy — that is set by the f64 residual, which is what
// lets acc=1e9 cells ride f32 bandwidth.
func (e *Executor) solveVMixed(x, b *grid.Grid, plan Plan) {
	n := x.N()
	h := 1.0 / float64(n-1)
	lvl := grid.Level(n)
	op := e.WS.opAt(n)
	f64 := checkoutOf[float64](e.WS, n)
	defer releaseOf(e.WS, f64)
	f32 := checkoutOf[float32](e.WS, n)
	defer releaseOf(e.WS, f32)
	r := f64.r
	r.ZeroBoundary()
	e32, r32 := f32.r, f32.scratch
	step := plan
	step.Iters = 1
	var r0 float64
	for it := 0; it < plan.Iters; it++ {
		e.checkpoint()
		op.Residual(e.WS.Pool, r, x, b, h)
		record(e.Rec, EvResidual, lvl, 1)
		// The refinement loop already materializes the f64 defect each
		// iteration, so its norm is the natural divergence probe: NaN/Inf
		// means the f32 step poisoned the iterate, and growth past
		// divergenceGrowth× the starting norm means refinement is expanding
		// instead of contracting.
		rn := grid.L2Interior(r)
		if nonFinite(rn) || (it > 0 && rn > divergenceGrowth*r0) {
			abortDiverged("mixed refinement residual %g after %d iterations (started at %g)", rn, it, r0)
		}
		if it == 0 {
			r0 = rn
		}
		grid.ConvertInto(r32, r)
		e32.Zero()
		solveVPlan(e, e32, r32, step)
		grid.AddInteriorOf(x, e32)
	}
}

// SolvePlanF32 executes plan's choice on pre-converted float32 state. It is
// the body of a PrecF32 cell without the entry/exit conversions, exported so
// the tuner can measure f32 candidates the way a deployed cell amortizes
// them: convert once, iterate many.
func (e *Executor) SolvePlanF32(x, b *grid.Grid32, plan Plan) { solveVPlan(e, x, b, plan) }

// RefineStep runs one float64-refinement iteration of plan — the PrecMixed
// loop body (f64 defect, one f32 step of the plan's choice, f64 correction)
// — exported as the tuner's mixed-candidate measurement primitive.
func (e *Executor) RefineStep(x, b *grid.Grid, plan Plan) {
	p := plan
	p.Iters = 1
	e.solveVMixed(x, b, p)
}

// Recurse performs one RECURSE_j step (§2.3) on x in place: one
// pre-smoothing sweep, residual restriction, a tuned MULTIGRID-V_j solve of
// the coarse error equation, correction, and one post-smoothing sweep.
func (e *Executor) Recurse(x, b *grid.Grid, subIdx int) {
	recurseOf(e, x, b, subIdx)
}

// recurseOf is one RECURSE_j step at precision T; the coarse sub-solve
// re-enters the tuned dispatch, so in float64 a coarser cell's precision
// directive is honored mid-cycle.
func recurseOf[T grid.Float](e *Executor, x, b *grid.G[T], subIdx int) {
	// The between-levels checkpoint: deep cycles re-enter here once per
	// level, so a cancelled context stops the descent without waiting for
	// the full cycle to come back up.
	e.checkpoint()
	recurseWithOf(e.WS, x, b, e.Rec, func(cx, cb *grid.G[T]) {
		solveVOf(e, cx, cb, subIdx)
	}, nil)
}

// RecurseNorm performs one RECURSE_j step and returns ‖b − T·x‖₂ after its
// post-smoothing sweep, with the norm reduction fused into that sweep. It
// is the adaptive driver's per-iteration primitive: step and convergence
// probe in one set of grid traversals.
func (e *Executor) RecurseNorm(x, b *grid.Grid, subIdx int) float64 {
	return e.WS.RecurseWithNorm(x, b, e.Rec, func(cx, cb *grid.Grid) {
		e.SolveV(cx, cb, subIdx)
	})
}

// SolveFull runs the tuned FULL-MULTIGRIDᵢ algorithm for accuracy index
// accIdx on x in place.
func (e *Executor) SolveFull(x, b *grid.Grid, accIdx int) {
	e.checkpoint()
	level := grid.Level(x.N())
	if level < 1 {
		panic(fmt.Sprintf("mg: grid size %d is not 2^k+1", x.N()))
	}
	if level == 1 {
		e.WS.SolveDirect(x, b, e.Rec)
		return
	}
	plan := e.F.Plan(level, accIdx)
	switch plan.Choice {
	case FullDirect:
		e.WS.SolveDirect(x, b, e.Rec)
		return
	case FullEstimate:
		e.Estimate(x, b, plan.EstAcc)
		switch plan.Solve {
		case ChoiceSOR:
			if plan.Iters > 0 {
				e.WS.SOR(x, b, e.WS.OmegaOpt(x.N()), plan.Iters, e.Rec)
			}
		case ChoiceRecurse:
			for it := 0; it < plan.Iters; it++ {
				e.Recurse(x, b, plan.SolveSub)
			}
		case ChoiceVCycle:
			for it := 0; it < plan.Iters; it++ {
				e.checkpoint()
				e.WS.RefVCycle(x, b, e.Rec)
			}
		default:
			panic(fmt.Sprintf("mg: invalid solve-phase choice %v", plan.Solve))
		}
	default:
		panic(fmt.Sprintf("mg: invalid full plan choice %v", plan.Choice))
	}
}

// Estimate performs the ESTIMATE_j phase (§2.4) on x in place: restrict the
// residual problem to half resolution, solve it with the tuned
// FULL-MULTIGRID_j, and apply the interpolated correction to x.
func (e *Executor) Estimate(x, b *grid.Grid, estAcc int) {
	n := x.N()
	lvl := grid.Level(n)
	bufs := e.WS.checkout(n)
	defer e.WS.release(bufs)

	e.WS.restrictResidual(x, b, bufs.cb, bufs.r, e.Rec)
	bufs.cx.Zero()
	e.SolveFull(bufs.cx, bufs.cb, estAcc)
	// ESTIMATE has no post-smooth to fuse the correction into, but the
	// scratch-free interpolate-add still halves the pass's grid traffic
	// (interpolated rows stream from a cache-resident buffer instead of a
	// materialized full-size scratch grid). NoFuse keeps the oracle.
	if e.WS.NoFuse {
		transfer.InterpolateAdd(e.WS.Pool, x, bufs.cx, bufs.scratch)
	} else {
		transfer.InterpolateAddFused(e.WS.Pool, x, bufs.cx)
	}
	record(e.Rec, EvInterp, lvl, 1)
}
