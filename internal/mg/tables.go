package mg

import (
	"fmt"
	"math"
)

// Choice is an algorithmic choice available to MULTIGRID-Vᵢ (§2.3): solve
// directly, iterate SOR with ω_opt, or iterate the recursive multigrid step.
type Choice uint8

const (
	// ChoiceDirect solves with band Cholesky.
	ChoiceDirect Choice = iota
	// ChoiceSOR iterates red-black SOR with the size-optimal weight.
	ChoiceSOR
	// ChoiceRecurse iterates RECURSE_j (one V-shaped recursive step whose
	// coarse call is the tuned MULTIGRID-V_j one level down).
	ChoiceRecurse
	// ChoiceVCycle iterates the standard reference V-cycle — the
	// single-algorithm seed the PetaBricks population always contains
	// (§3.2.2), kept as an explicit candidate so the dynamic program can
	// never do worse than MULTIGRID-V-SIMPLE on its training data.
	ChoiceVCycle
)

// String returns the choice name.
func (c Choice) String() string {
	switch c {
	case ChoiceDirect:
		return "direct"
	case ChoiceSOR:
		return "sor"
	case ChoiceRecurse:
		return "recurse"
	case ChoiceVCycle:
		return "vcycle"
	default:
		return fmt.Sprintf("Choice(%d)", uint8(c))
	}
}

// Precision is a tuned plan's storage-precision directive — the knob ISSUE
// the mixed-precision work adds alongside sweeps and ω. The empty string is
// the float64 default, so tables tuned before the knob existed load
// unchanged.
type Precision string

const (
	// PrecF64 (the zero value) runs the cell entirely in float64.
	PrecF64 Precision = ""
	// PrecF32 converts the cell's state to float32 on entry, runs the whole
	// sub-solve (smoothing, residuals, transfers, coarse recursion) in f32
	// storage, and rounds the interior back on exit. Convergence accounting
	// stays float64. Nested cells' precision directives are ignored once the
	// solve is in f32 — a subtree runs at the precision it entered with.
	PrecF32 Precision = "f32"
	// PrecMixed wraps the f32 cycle in float64 iterative refinement: each of
	// the plan's Iters iterations computes the f64 defect r = b − T·x, runs
	// one f32 step of the plan's choice on the error equation T·e = r from a
	// zero guess, and applies the correction x += e in f64 — the f32 cycle
	// as a preconditioner, with accuracy limited only by the f64 residual.
	PrecMixed Precision = "mixed"
)

// Valid reports whether p is a known precision directive ("f64" is accepted
// as an explicit spelling of the default).
func (p Precision) Valid() bool {
	switch p {
	case PrecF64, "f64", PrecF32, PrecMixed:
		return true
	}
	return false
}

// String returns the precision label as it appears in reports: "f64" for
// the default.
func (p Precision) String() string {
	if p == PrecF64 {
		return "f64"
	}
	return string(p)
}

// Plan is the tuned decision of MULTIGRID-Vᵢ at one (level, accuracy) cell:
// which choice to make, how many iterations of it to run, and — for the
// recursive choice — which accuracy index j the sub-call RECURSE_j uses.
type Plan struct {
	Choice Choice `json:"choice"`
	// Iters is the number of SOR sweeps or RECURSE iterations (≥ 1 for
	// those choices; ignored for ChoiceDirect). Under PrecMixed it is the
	// number of refinement iterations, each wrapping one f32 step.
	Iters int `json:"iters,omitempty"`
	// Sub is the accuracy index j of the RECURSE_j sub-algorithm
	// (ignored unless Choice is ChoiceRecurse).
	Sub int `json:"sub,omitempty"`
	// Precision selects the cell's storage precision (see Precision). The
	// zero value is float64, so tables predating the knob deserialize to
	// the behavior they were tuned for.
	Precision Precision `json:"prec,omitempty"`
}

// VTable is the complete tuned MULTIGRID-V algorithm family: for every
// level k (grid size 2^k+1) and every discrete accuracy target Acc[i], the
// plan chosen by the autotuner. Level 1 (N=3) is always a direct solve and
// is not stored.
type VTable struct {
	// Acc lists the discrete accuracy targets p_i in ascending order.
	Acc []float64 `json:"acc"`
	// Plans[k][i] is the plan for level k+2 (Plans[0] is level 2) and
	// accuracy index i.
	Plans [][]Plan `json:"plans"`
}

// MaxLevel returns the largest tuned level.
func (t *VTable) MaxLevel() int { return len(t.Plans) + 1 }

// Plan returns the tuned plan for the given level and accuracy index.
// Level 1 returns the direct base case.
func (t *VTable) Plan(level, accIdx int) Plan {
	if level <= 1 {
		return Plan{Choice: ChoiceDirect}
	}
	if level > t.MaxLevel() {
		panic(fmt.Sprintf("mg: level %d exceeds tuned max %d", level, t.MaxLevel()))
	}
	return t.Plans[level-2][accIdx]
}

// Validate checks structural invariants: ascending positive accuracies,
// rectangular plan rows, legal choices, positive iteration counts, and
// sub-accuracy indexes in range.
func (t *VTable) Validate() error {
	if len(t.Acc) == 0 {
		return fmt.Errorf("mg: VTable has no accuracy targets")
	}
	prev := 0.0
	for i, a := range t.Acc {
		if a <= prev || math.IsNaN(a) || math.IsInf(a, 0) {
			return fmt.Errorf("mg: accuracy targets must be ascending and finite; Acc[%d]=%v", i, a)
		}
		prev = a
	}
	for k, row := range t.Plans {
		if len(row) != len(t.Acc) {
			return fmt.Errorf("mg: level %d has %d plans, want %d", k+2, len(row), len(t.Acc))
		}
		for i, p := range row {
			if err := p.validate(len(t.Acc)); err != nil {
				return fmt.Errorf("mg: level %d acc %d: %w", k+2, i, err)
			}
		}
	}
	return nil
}

func (p Plan) validate(numAcc int) error {
	if !p.Precision.Valid() {
		return fmt.Errorf("invalid precision %q", string(p.Precision))
	}
	switch p.Choice {
	case ChoiceDirect:
		if p.Precision == PrecF32 || p.Precision == PrecMixed {
			return fmt.Errorf("direct plan cannot carry precision %q (band Cholesky is always f64)", p.Precision)
		}
		return nil
	case ChoiceSOR:
		if p.Iters < 1 {
			return fmt.Errorf("sor plan needs iters ≥ 1, got %d", p.Iters)
		}
		if p.Precision == PrecMixed {
			return fmt.Errorf("mixed precision needs a cycle choice (recurse/vcycle), got sor")
		}
		return nil
	case ChoiceRecurse:
		if p.Iters < 1 {
			return fmt.Errorf("recurse plan needs iters ≥ 1, got %d", p.Iters)
		}
		if p.Sub < 0 || p.Sub >= numAcc {
			return fmt.Errorf("recurse sub-accuracy %d out of range [0,%d)", p.Sub, numAcc)
		}
		return nil
	case ChoiceVCycle:
		if p.Iters < 1 {
			return fmt.Errorf("vcycle plan needs iters ≥ 1, got %d", p.Iters)
		}
		return nil
	default:
		return fmt.Errorf("invalid choice %d", p.Choice)
	}
}

// FullChoice is the top-level choice of FULL-MULTIGRIDᵢ (§2.4): a direct
// solve, or an estimation phase followed by an iterative solve phase.
type FullChoice uint8

const (
	// FullDirect solves directly.
	FullDirect FullChoice = iota
	// FullEstimate runs ESTIMATE_j then iterates a solve-phase choice.
	FullEstimate
)

// String returns the choice name.
func (c FullChoice) String() string {
	switch c {
	case FullDirect:
		return "direct"
	case FullEstimate:
		return "estimate"
	default:
		return fmt.Sprintf("FullChoice(%d)", uint8(c))
	}
}

// FullPlan is the tuned decision of FULL-MULTIGRIDᵢ at one (level,
// accuracy) cell. When Choice is FullEstimate, EstAcc selects the accuracy
// index j of the recursive FULL-MULTIGRID_j estimate, and the solve phase
// runs Iters iterations of either SOR (ChoiceSOR) or RECURSE_SolveSub
// (ChoiceRecurse), exactly the two solve-phase options of §2.4.
type FullPlan struct {
	Choice FullChoice `json:"choice"`
	// EstAcc is the accuracy index j of the ESTIMATE_j call.
	EstAcc int `json:"estAcc,omitempty"`
	// Solve selects the solve phase: ChoiceSOR or ChoiceRecurse.
	Solve Choice `json:"solve,omitempty"`
	// SolveSub is the accuracy index k of RECURSE_k when Solve is recurse.
	SolveSub int `json:"solveSub,omitempty"`
	// Iters is the number of solve-phase iterations (≥ 0; zero means the
	// estimate alone already met the target).
	Iters int `json:"iters,omitempty"`
}

// FTable is the tuned FULL-MULTIGRID family. Its recursive solve phases
// reference plans in the companion VTable, mirroring how the paper maintains
// both optimized function sets (§2.4).
type FTable struct {
	Acc   []float64    `json:"acc"`
	Plans [][]FullPlan `json:"plans"`
}

// MaxLevel returns the largest tuned level.
func (t *FTable) MaxLevel() int { return len(t.Plans) + 1 }

// Plan returns the tuned full-multigrid plan for level and accuracy index.
// Level 1 returns the direct base case.
func (t *FTable) Plan(level, accIdx int) FullPlan {
	if level <= 1 {
		return FullPlan{Choice: FullDirect}
	}
	if level > t.MaxLevel() {
		panic(fmt.Sprintf("mg: level %d exceeds tuned max %d", level, t.MaxLevel()))
	}
	return t.Plans[level-2][accIdx]
}

// Validate checks structural invariants of the table.
func (t *FTable) Validate() error {
	if len(t.Acc) == 0 {
		return fmt.Errorf("mg: FTable has no accuracy targets")
	}
	prev := 0.0
	for i, a := range t.Acc {
		if a <= prev || math.IsNaN(a) || math.IsInf(a, 0) {
			return fmt.Errorf("mg: accuracy targets must be ascending and finite; Acc[%d]=%v", i, a)
		}
		prev = a
	}
	for k, row := range t.Plans {
		if len(row) != len(t.Acc) {
			return fmt.Errorf("mg: level %d has %d plans, want %d", k+2, len(row), len(t.Acc))
		}
		for i, p := range row {
			if err := p.validate(len(t.Acc)); err != nil {
				return fmt.Errorf("mg: level %d acc %d: %w", k+2, i, err)
			}
		}
	}
	return nil
}

func (p FullPlan) validate(numAcc int) error {
	switch p.Choice {
	case FullDirect:
		return nil
	case FullEstimate:
		if p.EstAcc < 0 || p.EstAcc >= numAcc {
			return fmt.Errorf("estimate accuracy %d out of range [0,%d)", p.EstAcc, numAcc)
		}
		if p.Iters < 0 {
			return fmt.Errorf("solve iters %d negative", p.Iters)
		}
		switch p.Solve {
		case ChoiceSOR, ChoiceVCycle:
			return nil
		case ChoiceRecurse:
			if p.SolveSub < 0 || p.SolveSub >= numAcc {
				return fmt.Errorf("solve sub-accuracy %d out of range [0,%d)", p.SolveSub, numAcc)
			}
			return nil
		default:
			return fmt.Errorf("invalid solve-phase choice %v", p.Solve)
		}
	default:
		return fmt.Errorf("invalid full choice %d", p.Choice)
	}
}
