package mg

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"pbmg/internal/grid"
	"pbmg/internal/problem"
	"pbmg/internal/sched"
	"pbmg/internal/stencil"
)

// Cycle-level lockdown of the fused kernels: a workspace with NoFuse set
// runs the original separate smooth/residual/restriction passes. The fused
// default performs the same sweeps bit for bit and the same restriction up
// to floating-point association (the fused restriction applies the full
// weighting separably), so whole cycles must agree to rounding error — and
// the fused path must be bit-identical to itself across worker counts.

func fusedCycleOps(t *testing.T) []struct {
	name string
	op   *stencil.Operator
	n    int
} {
	t.Helper()
	return []struct {
		name string
		op   *stencil.Operator
		n    int
	}{
		{"poisson-65", stencil.Poisson(), 65},
		{"aniso-0.01-65", stencil.Anisotropic(0.01), 65},
		{"varcoef-2-65", stencil.VarCoefOperator(stencil.CoefField(65, 2), 2), 65},
		{"poisson3d-17", stencil.Poisson3D(), 17},
	}
}

// assertGridsClose fails unless a and b agree to a tiny relative tolerance
// (association-level FP drift amplified through a few cycles).
func assertGridsClose(t *testing.T, a, b *grid.Grid, what string) {
	t.Helper()
	scale := math.Max(1, grid.MaxAbsInterior(a))
	ad, bd := a.Data(), b.Data()
	for k := range ad {
		if d := math.Abs(ad[k] - bd[k]); !(d <= 1e-10*scale) {
			t.Fatalf("%s: grids differ at %d by %g (scale %g): %v vs %v",
				what, k, d, scale, ad[k], bd[k])
		}
	}
}

func TestVCycleFusedMatchesUnfused(t *testing.T) {
	for _, tc := range fusedCycleOps(t) {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/workers-%d", tc.name, workers), func(t *testing.T) {
				var pool *sched.Pool
				if workers > 1 {
					pool = sched.NewPool(workers)
					defer pool.Close()
				}
				rng := rand.New(rand.NewSource(99))
				p := problem.RandomOp(tc.n, grid.Unbiased, rng, tc.op)

				run := func(noFuse bool) *grid.Grid {
					ws := NewWorkspace(pool)
					ws.Op = tc.op
					ws.NoFuse = noFuse
					x := p.NewState()
					for c := 0; c < 3; c++ {
						ws.RefVCycle(x, p.B, nil)
					}
					return x
				}
				assertGridsClose(t, run(true), run(false), "V-cycle fused vs unfused")
			})
		}
	}
}

// TestVCycleFusedDeterministicAcrossPools locks the determinism contract at
// cycle granularity: the fused path must produce bit-identical iterates for
// a nil pool and an 8-worker pool.
func TestVCycleFusedDeterministicAcrossPools(t *testing.T) {
	for _, tc := range fusedCycleOps(t) {
		t.Run(tc.name, func(t *testing.T) {
			pool := sched.NewPool(8)
			defer pool.Close()
			rng := rand.New(rand.NewSource(123))
			p := problem.RandomOp(tc.n, grid.Unbiased, rng, tc.op)
			run := func(pl *sched.Pool) *grid.Grid {
				ws := NewWorkspace(pl)
				ws.Op = tc.op
				x := p.NewState()
				for c := 0; c < 3; c++ {
					ws.RefVCycle(x, p.B, nil)
				}
				return x
			}
			serial, pooled := run(nil), run(pool)
			sd, pd := serial.Data(), pooled.Data()
			for k := range sd {
				if math.Float64bits(sd[k]) != math.Float64bits(pd[k]) {
					t.Fatalf("fused V-cycle not pool-deterministic at %d: %v vs %v", k, sd[k], pd[k])
				}
			}
		})
	}
}

// TestFullMGFusedMatchesUnfused locks the Estimate/RefFullMG downstroke the
// same way, through the full-multigrid reference pass.
func TestFullMGFusedMatchesUnfused(t *testing.T) {
	for _, tc := range fusedCycleOps(t) {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(101))
			p := problem.RandomOp(tc.n, grid.Unbiased, rng, tc.op)
			run := func(noFuse bool) *grid.Grid {
				ws := NewWorkspace(nil)
				ws.Op = tc.op
				ws.NoFuse = noFuse
				x := p.NewState()
				ws.RefFullMG(x, p.B, nil)
				return x
			}
			assertGridsClose(t, run(true), run(false), "FMG fused vs unfused")
		})
	}
}

// TestRecurseWithNormMatchesSeparateProbe checks the norm-returning recurse:
// the iterate must be bit-identical to the plain recurse, and the fused norm
// must match a separate residual-norm traversal to rounding error.
func TestRecurseWithNormMatchesSeparateProbe(t *testing.T) {
	for _, tc := range fusedCycleOps(t) {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			p := problem.RandomOp(tc.n, grid.Unbiased, rng, tc.op)
			h := 1.0 / float64(tc.n-1)

			ws := NewWorkspace(nil)
			ws.Op = tc.op
			coarse := func(cx, cb *grid.Grid) { ws.RefVCycle(cx, cb, nil) }

			xo := p.NewState()
			ws.RecurseWith(xo, p.B, nil, coarse)
			want := tc.op.At(tc.n).ResidualNorm(nil, xo, p.B, h)

			xf := p.NewState()
			norm := ws.RecurseWithNorm(xf, p.B, nil, coarse)
			fd, od := xf.Data(), xo.Data()
			for k := range fd {
				if math.Float64bits(fd[k]) != math.Float64bits(od[k]) {
					t.Fatalf("norm-returning recurse diverges at %d", k)
				}
			}
			if d := math.Abs(norm - want); !(d <= 1e-12*math.Max(1, want)) {
				t.Fatalf("fused norm %v, separate probe %v (diff %g)", norm, want, d)
			}

			// The Jacobi ablation takes the fallback path (separate probe)
			// and must agree with itself too.
			wsj := NewWorkspace(nil)
			wsj.Op = tc.op
			wsj.Smoother = SmootherJacobi
			coarseJ := func(cx, cb *grid.Grid) { wsj.RefVCycle(cx, cb, nil) }
			xj := p.NewState()
			normJ := wsj.RecurseWithNorm(xj, p.B, nil, coarseJ)
			wantJ := tc.op.At(tc.n).ResidualNorm(nil, xj, p.B, h)
			if math.Float64bits(normJ) != math.Float64bits(wantJ) {
				t.Fatalf("jacobi fallback norm %v != %v", normJ, wantJ)
			}
		})
	}
}
