// Package mg implements the multigrid cycles of the paper: the reference
// V-cycle and full-multigrid algorithms, and the executors for the tuned
// algorithm families MULTIGRID-Vᵢ / RECURSEᵢ / FULL-MULTIGRIDᵢ / ESTIMATEᵢ
// (§2.1–2.4). Executions can be recorded as operation traces — both
// per-level counts (priced by architecture cost models) and ordered event
// logs (rendered as the cycle-shape diagrams of Figures 5 and 14).
package mg

import "fmt"

// EventKind identifies one multigrid operation for tracing.
type EventKind int

const (
	// EvRelax is one red-black SOR smoothing sweep at a level.
	EvRelax EventKind = iota
	// EvResidual is one residual evaluation at a level.
	EvResidual
	// EvRestrict is one fine→coarse restriction departing a level.
	EvRestrict
	// EvInterp is one coarse→fine interpolation (+correction) arriving at a level.
	EvInterp
	// EvDirect is one band-Cholesky direct solve at a level.
	EvDirect
	// EvIterSolve is an SOR shortcut solve at a level (count = sweeps).
	EvIterSolve
	numEventKinds
)

// String returns a short name for the event kind.
func (k EventKind) String() string {
	switch k {
	case EvRelax:
		return "relax"
	case EvResidual:
		return "residual"
	case EvRestrict:
		return "restrict"
	case EvInterp:
		return "interp"
	case EvDirect:
		return "direct"
	case EvIterSolve:
		return "iter-solve"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Recorder receives operation events from executors. Implementations must
// tolerate any level ≥ 1. A nil Recorder is always allowed and records
// nothing (executors check).
type Recorder interface {
	Record(kind EventKind, level, count int)
}

// record forwards to rec if non-nil.
func record(rec Recorder, kind EventKind, level, count int) {
	if rec != nil {
		rec.Record(kind, level, count)
	}
}

// OpTrace accumulates per-level counts of each operation kind. The zero
// value is an empty trace ready for use. OpTrace is the currency between
// executions and architecture cost models: run once, price under any model.
type OpTrace struct {
	counts [numEventKinds][]int64
}

// Record implements Recorder.
func (t *OpTrace) Record(kind EventKind, level, count int) {
	if level < 0 || kind < 0 || kind >= numEventKinds {
		panic(fmt.Sprintf("mg: bad trace record kind=%d level=%d", kind, level))
	}
	for len(t.counts[kind]) <= level {
		t.counts[kind] = append(t.counts[kind], 0)
	}
	t.counts[kind][level] += int64(count)
}

// Count returns the accumulated count for kind at level.
func (t *OpTrace) Count(kind EventKind, level int) int64 {
	if kind < 0 || kind >= numEventKinds || level < 0 || level >= len(t.counts[kind]) {
		return 0
	}
	return t.counts[kind][level]
}

// MaxLevel returns the highest level with any recorded operation, or 0.
func (t *OpTrace) MaxLevel() int {
	max := 0
	for k := range t.counts {
		if l := len(t.counts[k]) - 1; l > max {
			max = l
		}
	}
	return max
}

// Total returns the total count of kind across all levels.
func (t *OpTrace) Total(kind EventKind) int64 {
	var s int64
	for _, c := range t.counts[kind] {
		s += c
	}
	return s
}

// Reset clears the trace for reuse.
func (t *OpTrace) Reset() {
	for k := range t.counts {
		t.counts[k] = t.counts[k][:0]
	}
}

// Scaled returns a new trace with every count multiplied by n. Iterative
// choices repeat identical work, so the trace of n iterations is the
// one-iteration trace scaled by n; the tuner exploits this to price
// candidates without re-running them.
func (t *OpTrace) Scaled(n int) *OpTrace {
	out := &OpTrace{}
	for k := range t.counts {
		for l, c := range t.counts[k] {
			if c != 0 {
				out.Record(EventKind(k), l, int(c)*n)
			}
		}
	}
	return out
}

// Merge adds other's counts into t.
func (t *OpTrace) Merge(other *OpTrace) {
	for k := range other.counts {
		for l, c := range other.counts[k] {
			if c != 0 {
				t.Record(EventKind(k), l, int(c))
			}
		}
	}
}

// Event is one ordered operation in a ShapeLog.
type Event struct {
	Kind  EventKind
	Level int
	Count int
}

// ShapeLog records the ordered sequence of operations of an execution, the
// raw material for cycle-shape rendering (Figure 5) and for the call-stack
// traces (Figure 4).
type ShapeLog struct {
	Events []Event
}

// Record implements Recorder, merging consecutive relaxations at one level.
func (s *ShapeLog) Record(kind EventKind, level, count int) {
	if n := len(s.Events); n > 0 && kind == EvRelax {
		if last := &s.Events[n-1]; last.Kind == EvRelax && last.Level == level {
			last.Count += count
			return
		}
	}
	s.Events = append(s.Events, Event{Kind: kind, Level: level, Count: count})
}

// Reset clears the log for reuse.
func (s *ShapeLog) Reset() { s.Events = s.Events[:0] }

// MultiRecorder fans events out to several recorders.
type MultiRecorder []Recorder

// Record implements Recorder.
func (m MultiRecorder) Record(kind EventKind, level, count int) {
	for _, r := range m {
		if r != nil {
			r.Record(kind, level, count)
		}
	}
}
