package mg

import (
	"testing"

	"pbmg/internal/grid"
)

func TestWCycleConvergesFasterPerCycleThanV(t *testing.T) {
	p, ws := testProblem(t, 33, grid.Unbiased, 31)
	xv, xw := p.NewState(), p.NewState()
	ws.RefVCycle(xv, p.B, nil)
	ws.RefWCycle(xw, p.B, nil)
	av, aw := p.AccuracyOf(xv), p.AccuracyOf(xw)
	if aw <= av {
		t.Fatalf("one W-cycle (%.3g) should out-converge one V-cycle (%.3g)", aw, av)
	}
}

func TestWCycleDoesMoreCoarseWork(t *testing.T) {
	p, ws := testProblem(t, 33, grid.Unbiased, 32)
	var tv, tw OpTrace
	xv, xw := p.NewState(), p.NewState()
	ws.RefVCycle(xv, p.B, &tv)
	ws.RefWCycle(xw, p.B, &tw)
	// Same work at the top level...
	if tv.Count(EvRelax, 5) != tw.Count(EvRelax, 5) {
		t.Fatal("top-level relaxation counts should match")
	}
	// ...but geometrically more at coarse levels.
	if tw.Count(EvRelax, 3) <= tv.Count(EvRelax, 3) {
		t.Fatalf("W-cycle coarse relaxations (%d) should exceed V-cycle's (%d)",
			tw.Count(EvRelax, 3), tv.Count(EvRelax, 3))
	}
	if tw.Count(EvDirect, 1) <= tv.Count(EvDirect, 1) {
		t.Fatal("W-cycle should hit the base case more often")
	}
}

func TestWCycleBaseCase(t *testing.T) {
	p, ws := testProblem(t, 3, grid.Biased, 33)
	x := p.NewState()
	ws.RefWCycle(x, p.B, nil)
	if acc := p.AccuracyOf(x); acc < 1e10 {
		t.Fatalf("N=3 W-cycle should be an exact direct solve, accuracy %.3g", acc)
	}
}

func TestWCycleReachesTargetInFewerIterations(t *testing.T) {
	p, ws := testProblem(t, 65, grid.Biased, 34)
	xv := p.NewState()
	iv, _ := IterateUntil(1e9, 100, func() { ws.RefVCycle(xv, p.B, nil) },
		func() float64 { return p.AccuracyOf(xv) })
	xw := p.NewState()
	iw, _ := IterateUntil(1e9, 100, func() { ws.RefWCycle(xw, p.B, nil) },
		func() float64 { return p.AccuracyOf(xw) })
	if iw > iv {
		t.Fatalf("W-cycles took more iterations (%d) than V-cycles (%d)", iw, iv)
	}
}
