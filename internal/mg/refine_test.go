package mg

import (
	"testing"

	"pbmg/internal/grid"
)

// refineTable builds a single-accuracy V table whose every cell runs the
// reference V-cycle at the given storage precision — the minimal harness
// that exercises the mixed-precision executor paths without a tuner.
func refineTable(maxLevel, iters int, prec Precision) *VTable {
	tbl := &VTable{Acc: []float64{1e9}}
	for lvl := 2; lvl <= maxLevel; lvl++ {
		tbl.Plans = append(tbl.Plans, []Plan{{Choice: ChoiceVCycle, Iters: iters, Precision: prec}})
	}
	return tbl
}

// TestRefinementConvergesHighAccuracy is the mixed-precision property test:
// f64 iterative refinement wrapped around an f32 V-cycle must reach the
// paper's hardest accuracy target (1e9 error reduction), which pure f32
// storage cannot — float32's unit roundoff (~6e-8) floors a pure-f32 solve
// around the 1e7 accuracy level, and the refinement's f64 defect/correction
// loop is exactly what buys back the remaining decades. Both properties are
// asserted on held-out random problems, so a refinement loop that silently
// rounds its correction (or a defect computed at the wrong precision) fails
// here before it can reach a golden.
func TestRefinementConvergesHighAccuracy(t *testing.T) {
	const (
		n      = 65
		target = 1e9
		iters  = 40 // refinement steps (one f32 V-cycle each): ~9 suffice, the rest is margin
	)
	maxLevel := grid.Level(n)
	for seed := int64(1); seed <= 3; seed++ {
		p, ws := testProblem(t, n, grid.Unbiased, seed)

		ex := Executor{WS: ws, V: refineTable(maxLevel, iters, PrecMixed)}
		x := p.NewState()
		ex.SolveV(x, p.B, 0)
		if acc := p.AccuracyOf(x); acc < target {
			t.Errorf("seed %d: mixed refinement achieved accuracy %.3g, want ≥ %.0e", seed, acc, target)
		}

		// The same work in pure f32 storage must stall at the f32 rounding
		// floor, well short of the target — otherwise the refinement loop
		// is not what is buying the accuracy.
		ex32 := Executor{WS: ws, V: refineTable(maxLevel, iters, PrecF32)}
		x32 := p.NewState()
		ex32.SolveV(x32, p.B, 0)
		if acc := p.AccuracyOf(x32); acc >= target {
			t.Errorf("seed %d: pure f32 reached accuracy %.3g ≥ %.0e, contradicting the f32 rounding floor", seed, acc, target)
		}
	}
}
