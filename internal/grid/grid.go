// Package grid provides the square 2D grid container used throughout the
// multigrid solver, together with norms and the random training-data
// distributions from the paper's evaluation (§4).
//
// Grids are stored row-major in a single flat slice so that relaxation and
// transfer kernels stream through memory. Multigrid levels use sizes
// N = 2^k + 1; Level/SizeOfLevel convert between the two conventions.
package grid

import "fmt"

// Grid is a square N×N grid of float64 values stored row-major.
// The zero value is not usable; construct grids with New.
type Grid struct {
	n    int
	data []float64
}

// New returns a zero-filled n×n grid. It panics if n < 1.
func New(n int) *Grid {
	if n < 1 {
		panic(fmt.Sprintf("grid: invalid size %d", n))
	}
	return &Grid{n: n, data: make([]float64, n*n)}
}

// FromSlice wraps an existing row-major slice of length n*n as a Grid.
// The grid aliases data; mutations are visible both ways.
func FromSlice(n int, data []float64) *Grid {
	if len(data) != n*n {
		panic(fmt.Sprintf("grid: FromSlice length %d != %d*%d", len(data), n, n))
	}
	return &Grid{n: n, data: data}
}

// N returns the number of points per side.
func (g *Grid) N() int { return g.n }

// Data returns the backing row-major slice. The slice aliases the grid.
func (g *Grid) Data() []float64 { return g.data }

// At returns the value at row i, column j.
func (g *Grid) At(i, j int) float64 { return g.data[i*g.n+j] }

// Set stores v at row i, column j.
func (g *Grid) Set(i, j int, v float64) { g.data[i*g.n+j] = v }

// Row returns the i-th row as a sub-slice aliasing the grid.
func (g *Grid) Row(i int) []float64 { return g.data[i*g.n : (i+1)*g.n] }

// Clone returns a deep copy of g.
func (g *Grid) Clone() *Grid {
	c := New(g.n)
	copy(c.data, g.data)
	return c
}

// CopyFrom overwrites g with the contents of src. Sizes must match.
func (g *Grid) CopyFrom(src *Grid) {
	if g.n != src.n {
		panic(fmt.Sprintf("grid: CopyFrom size mismatch %d != %d", g.n, src.n))
	}
	copy(g.data, src.data)
}

// Fill sets every entry of g to v.
func (g *Grid) Fill(v float64) {
	for i := range g.data {
		g.data[i] = v
	}
}

// Zero sets every entry of g to zero.
func (g *Grid) Zero() { g.Fill(0) }

// ZeroInterior zeroes all non-boundary entries, leaving the border intact.
func (g *Grid) ZeroInterior() {
	n := g.n
	for i := 1; i < n-1; i++ {
		row := g.Row(i)
		for j := 1; j < n-1; j++ {
			row[j] = 0
		}
	}
}

// ZeroBoundary zeroes the border entries, leaving the interior intact.
func (g *Grid) ZeroBoundary() {
	n := g.n
	top, bot := g.Row(0), g.Row(n-1)
	for j := 0; j < n; j++ {
		top[j], bot[j] = 0, 0
	}
	for i := 1; i < n-1; i++ {
		g.data[i*n] = 0
		g.data[i*n+n-1] = 0
	}
}

// CopyBoundaryFrom copies only the border entries of src into g.
func (g *Grid) CopyBoundaryFrom(src *Grid) {
	if g.n != src.n {
		panic("grid: CopyBoundaryFrom size mismatch")
	}
	n := g.n
	copy(g.Row(0), src.Row(0))
	copy(g.Row(n-1), src.Row(n-1))
	for i := 1; i < n-1; i++ {
		g.data[i*n] = src.data[i*n]
		g.data[i*n+n-1] = src.data[i*n+n-1]
	}
}

// AddInterior adds src's interior entries into g's interior, leaving
// boundaries untouched. Used for coarse-grid correction.
func (g *Grid) AddInterior(src *Grid) {
	if g.n != src.n {
		panic("grid: AddInterior size mismatch")
	}
	n := g.n
	for i := 1; i < n-1; i++ {
		gr, sr := g.Row(i), src.Row(i)
		for j := 1; j < n-1; j++ {
			gr[j] += sr[j]
		}
	}
}

// Scale multiplies every entry by s.
func (g *Grid) Scale(s float64) {
	for i := range g.data {
		g.data[i] *= s
	}
}

// Level returns k such that n = 2^k + 1, or -1 if n is not of that form.
func Level(n int) int {
	m := n - 1
	if m < 2 || m&(m-1) != 0 {
		return -1
	}
	k := 0
	for m > 1 {
		m >>= 1
		k++
	}
	return k
}

// SizeOfLevel returns the grid side length N = 2^k + 1 for level k ≥ 1.
func SizeOfLevel(k int) int {
	if k < 1 || k > 30 {
		panic(fmt.Sprintf("grid: invalid level %d", k))
	}
	return (1 << uint(k)) + 1
}

// Coarsen returns the side length of the next-coarser multigrid level,
// (n+1)/2, panicking unless n = 2^k + 1 with k ≥ 2.
func Coarsen(n int) int {
	if Level(n) < 2 {
		panic(fmt.Sprintf("grid: cannot coarsen size %d", n))
	}
	return (n + 1) / 2
}
