// Package grid provides the square/cubic grid container used throughout the
// multigrid solver, together with norms and the random training-data
// distributions from the paper's evaluation (§4).
//
// A grid is either a 2D N×N square or a 3D N×N×N cube of values, tagged by
// Dim and stored in a single flat slice (row-major in 2D; plane-major, then
// row-major in 3D) so that relaxation and transfer kernels stream through
// memory. The container is generic over the storage precision: G[float64]
// (aliased Grid) is the default working type, and G[float32] (aliased
// Grid32) backs the mixed-precision cycle paths, where halving the bytes per
// point roughly doubles the effective memory bandwidth of the
// bandwidth-bound kernels. Multigrid levels use sizes N = 2^k + 1;
// Level/SizeOfLevel convert between the two conventions and are
// dimension-independent (only the side length recurses).
//
// Dimension-specific accessors are guarded: calling a 2D accessor (At, Set,
// Row, ...) on a 3D grid — or vice versa — panics with an explicit dimension
// error instead of silently mis-indexing the flat slice.
package grid

import "fmt"

// Float constrains the storage precisions a grid can carry.
type Float interface {
	~float32 | ~float64
}

// G is a square N×N (Dim 2) or cubic N×N×N (Dim 3) grid of T values stored
// in one flat slice. The zero value is not usable; construct grids with New,
// New3, NewDim, or the precision-generic NewOf.
type G[T Float] struct {
	n    int
	dim  int // 2 or 3
	data []T
}

// Grid is the default float64-backed grid, the working type of every f64
// solver path.
type Grid = G[float64]

// Grid32 is the float32-backed grid used by the mixed-precision cycle
// paths.
type Grid32 = G[float32]

// NewOf returns a zero-filled grid of the given dimension (2 or 3), side n,
// and storage precision T.
func NewOf[T Float](dim, n int) *G[T] {
	if n < 1 {
		panic(fmt.Sprintf("grid: invalid size %d", n))
	}
	points := n * n
	switch dim {
	case 2:
	case 3:
		points *= n
	default:
		panic(fmt.Sprintf("grid: invalid dimension %d (want 2 or 3)", dim))
	}
	return &G[T]{n: n, dim: dim, data: make([]T, points)}
}

// New returns a zero-filled 2D n×n float64 grid. It panics if n < 1.
func New(n int) *Grid { return NewOf[float64](2, n) }

// New3 returns a zero-filled 3D n×n×n float64 grid. It panics if n < 1.
func New3(n int) *Grid { return NewOf[float64](3, n) }

// NewDim returns a zero-filled float64 grid of the given dimension (2 or 3)
// and side n, the constructor used by dimension-generic layers.
func NewDim(dim, n int) *Grid { return NewOf[float64](dim, n) }

// FromSlice wraps an existing row-major slice of length n*n as a 2D Grid.
// The grid aliases data; mutations are visible both ways.
func FromSlice(n int, data []float64) *Grid {
	if len(data) != n*n {
		panic(fmt.Sprintf("grid: FromSlice length %d != %d*%d", len(data), n, n))
	}
	return &Grid{n: n, dim: 2, data: data}
}

// ConvertInto overwrites dst with src converted element-wise between
// precisions. Sizes and dimensions must match. Converting float64 → float32
// rounds to nearest; float32 → float64 is exact.
func ConvertInto[D, S Float](dst *G[D], src *G[S]) {
	if dst.n != src.n || dst.dim != src.dim {
		panic(fmt.Sprintf("grid: ConvertInto mismatch %dD/%d != %dD/%d", dst.dim, dst.n, src.dim, src.n))
	}
	dd, sd := dst.data, src.data
	for i, v := range sd {
		dd[i] = D(v)
	}
}

// ConvertInteriorInto overwrites dst's interior with src's interior cast to
// dst's precision, leaving dst's boundary untouched — the writeback of a
// reduced-precision sub-solve, which must not round the caller's Dirichlet
// data.
func ConvertInteriorInto[D, S Float](dst *G[D], src *G[S]) {
	if dst.n != src.n || dst.dim != src.dim {
		panic(fmt.Sprintf("grid: ConvertInteriorInto mismatch %dD/%d != %dD/%d", dst.dim, dst.n, src.dim, src.n))
	}
	n := dst.n
	if dst.dim == 3 {
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				dr, sr := dst.Row3(i, j), src.Row3(i, j)
				for k := 1; k < n-1; k++ {
					dr[k] = D(sr[k])
				}
			}
		}
		return
	}
	for i := 1; i < n-1; i++ {
		dr, sr := dst.Row(i), src.Row(i)
		for j := 1; j < n-1; j++ {
			dr[j] = D(sr[j])
		}
	}
}

// AddInteriorOf adds src's interior entries, cast to dst's precision, into
// dst's interior — the correction step of float64 iterative refinement over
// a float32 error estimate.
func AddInteriorOf[D, S Float](dst *G[D], src *G[S]) {
	if dst.n != src.n || dst.dim != src.dim {
		panic(fmt.Sprintf("grid: AddInteriorOf mismatch %dD/%d != %dD/%d", dst.dim, dst.n, src.dim, src.n))
	}
	n := dst.n
	if dst.dim == 3 {
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				dr, sr := dst.Row3(i, j), src.Row3(i, j)
				for k := 1; k < n-1; k++ {
					dr[k] += D(sr[k])
				}
			}
		}
		return
	}
	for i := 1; i < n-1; i++ {
		dr, sr := dst.Row(i), src.Row(i)
		for j := 1; j < n-1; j++ {
			dr[j] += D(sr[j])
		}
	}
}

// Bits reports the storage width of T in bits (32 or 64), the precision tag
// used in scratch-pool keys and benchmark cell labels.
func Bits[T Float]() int {
	var z T
	if _, is32 := any(z).(float32); is32 {
		return 32
	}
	return 64
}

// N returns the number of points per side.
func (g *G[T]) N() int { return g.n }

// Dim returns the grid's spatial dimension (2 or 3).
func (g *G[T]) Dim() int { return g.dim }

// Points returns the total number of grid points (N² or N³).
func (g *G[T]) Points() int { return len(g.data) }

// Data returns the backing flat slice. The slice aliases the grid.
func (g *G[T]) Data() []T { return g.data }

// mustDim panics unless the grid has the expected dimension — the explicit
// guard that turns a mixed-dimension bug into an error instead of silent
// index corruption.
func (g *G[T]) mustDim(want int, what string) {
	if g.dim != want {
		panic(fmt.Sprintf("grid: %s needs a %dD grid, got %dD (N=%d)", what, want, g.dim, g.n))
	}
}

// At returns the value at row i, column j (2D only).
func (g *G[T]) At(i, j int) T {
	g.mustDim(2, "At")
	return g.data[i*g.n+j]
}

// Set stores v at row i, column j (2D only).
func (g *G[T]) Set(i, j int, v T) {
	g.mustDim(2, "Set")
	g.data[i*g.n+j] = v
}

// At3 returns the value at plane i, row j, column k (3D only).
func (g *G[T]) At3(i, j, k int) T {
	g.mustDim(3, "At3")
	return g.data[(i*g.n+j)*g.n+k]
}

// Set3 stores v at plane i, row j, column k (3D only).
func (g *G[T]) Set3(i, j, k int, v T) {
	g.mustDim(3, "Set3")
	g.data[(i*g.n+j)*g.n+k] = v
}

// Row returns the i-th row as a sub-slice aliasing the grid (2D only).
func (g *G[T]) Row(i int) []T {
	g.mustDim(2, "Row")
	return g.data[i*g.n : (i+1)*g.n]
}

// Plane returns the i-th n×n plane as a sub-slice aliasing the grid
// (3D only).
func (g *G[T]) Plane(i int) []T {
	g.mustDim(3, "Plane")
	n2 := g.n * g.n
	return g.data[i*n2 : (i+1)*n2]
}

// Row3 returns row (i, j) of a 3D grid as a sub-slice aliasing the grid.
func (g *G[T]) Row3(i, j int) []T {
	g.mustDim(3, "Row3")
	base := (i*g.n + j) * g.n
	return g.data[base : base+g.n]
}

// Clone returns a deep copy of g.
func (g *G[T]) Clone() *G[T] {
	c := NewOf[T](g.dim, g.n)
	copy(c.data, g.data)
	return c
}

// CopyFrom overwrites g with the contents of src. Sizes and dimensions must
// match.
func (g *G[T]) CopyFrom(src *G[T]) {
	if g.n != src.n || g.dim != src.dim {
		panic(fmt.Sprintf("grid: CopyFrom mismatch %dD/%d != %dD/%d", g.dim, g.n, src.dim, src.n))
	}
	copy(g.data, src.data)
}

// Fill sets every entry of g to v.
func (g *G[T]) Fill(v T) {
	for i := range g.data {
		g.data[i] = v
	}
}

// Zero sets every entry of g to zero.
func (g *G[T]) Zero() { g.Fill(0) }

// ZeroInterior zeroes all non-boundary entries, leaving the border intact.
func (g *G[T]) ZeroInterior() {
	n := g.n
	if g.dim == 3 {
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				row := g.Row3(i, j)
				for k := 1; k < n-1; k++ {
					row[k] = 0
				}
			}
		}
		return
	}
	for i := 1; i < n-1; i++ {
		row := g.Row(i)
		for j := 1; j < n-1; j++ {
			row[j] = 0
		}
	}
}

// zeroBoundary2 zeroes the border of one n×n plane stored at p.
func zeroBoundary2[T Float](p []T, n int) {
	for j := 0; j < n; j++ {
		p[j], p[(n-1)*n+j] = 0, 0
	}
	for i := 1; i < n-1; i++ {
		p[i*n] = 0
		p[i*n+n-1] = 0
	}
}

// ZeroBoundary zeroes the border entries (the 2D frame or the six 3D
// faces), leaving the interior intact.
func (g *G[T]) ZeroBoundary() {
	n := g.n
	if g.dim == 3 {
		first, last := g.Plane(0), g.Plane(n-1)
		for i := range first {
			first[i], last[i] = 0, 0
		}
		for i := 1; i < n-1; i++ {
			zeroBoundary2(g.Plane(i), n)
		}
		return
	}
	zeroBoundary2(g.data, n)
}

// copyBoundary2 copies the border of one n×n plane from src into dst.
func copyBoundary2[T Float](dst, src []T, n int) {
	copy(dst[:n], src[:n])
	copy(dst[(n-1)*n:], src[(n-1)*n:])
	for i := 1; i < n-1; i++ {
		dst[i*n] = src[i*n]
		dst[i*n+n-1] = src[i*n+n-1]
	}
}

// CopyBoundaryFrom copies only the border entries of src into g.
func (g *G[T]) CopyBoundaryFrom(src *G[T]) {
	if g.n != src.n || g.dim != src.dim {
		panic("grid: CopyBoundaryFrom size mismatch")
	}
	n := g.n
	if g.dim == 3 {
		copy(g.Plane(0), src.Plane(0))
		copy(g.Plane(n-1), src.Plane(n-1))
		for i := 1; i < n-1; i++ {
			copyBoundary2(g.Plane(i), src.Plane(i), n)
		}
		return
	}
	copyBoundary2(g.data, src.data, n)
}

// AddInterior adds src's interior entries into g's interior, leaving
// boundaries untouched. Used for coarse-grid correction.
func (g *G[T]) AddInterior(src *G[T]) {
	if g.n != src.n || g.dim != src.dim {
		panic("grid: AddInterior size mismatch")
	}
	n := g.n
	if g.dim == 3 {
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				gr, sr := g.Row3(i, j), src.Row3(i, j)
				for k := 1; k < n-1; k++ {
					gr[k] += sr[k]
				}
			}
		}
		return
	}
	for i := 1; i < n-1; i++ {
		gr, sr := g.Row(i), src.Row(i)
		for j := 1; j < n-1; j++ {
			gr[j] += sr[j]
		}
	}
}

// Scale multiplies every entry by s.
func (g *G[T]) Scale(s T) {
	for i := range g.data {
		g.data[i] *= s
	}
}

// Level returns k such that n = 2^k + 1, or -1 if n is not of that form.
func Level(n int) int {
	m := n - 1
	if m < 2 || m&(m-1) != 0 {
		return -1
	}
	k := 0
	for m > 1 {
		m >>= 1
		k++
	}
	return k
}

// SizeOfLevel returns the grid side length N = 2^k + 1 for level k ≥ 1.
func SizeOfLevel(k int) int {
	if k < 1 || k > 30 {
		panic(fmt.Sprintf("grid: invalid level %d", k))
	}
	return (1 << uint(k)) + 1
}

// Coarsen returns the side length of the next-coarser multigrid level,
// (n+1)/2, panicking unless n = 2^k + 1 with k ≥ 2.
func Coarsen(n int) int {
	if Level(n) < 2 {
		panic(fmt.Sprintf("grid: cannot coarsen size %d", n))
	}
	return (n + 1) / 2
}
