package grid

import "math/rand"

// The paper trains and benchmarks on matrices whose entries are drawn
// uniformly from [−2³², 2³²] ("unbiased") or from the same distribution
// shifted by +2³¹ ("biased"). Entries populate the right-hand side b and
// the boundary of x (§4).

// UniformScale is the half-width 2³² of the paper's training distribution.
const UniformScale = 1 << 32

// BiasShift is the +2³¹ shift applied by the biased distribution.
const BiasShift = 1 << 31

// Distribution identifies one of the paper's two training distributions.
type Distribution int

const (
	// Unbiased draws uniformly from [−2³², 2³²].
	Unbiased Distribution = iota
	// Biased draws uniformly from [−2³²+2³¹, 2³²+2³¹].
	Biased
	// PointSources places a small number of random ±1 impulses, the third
	// distribution the paper experimented with (§4).
	PointSources
)

// String returns the distribution's name.
func (d Distribution) String() string {
	switch d {
	case Unbiased:
		return "unbiased"
	case Biased:
		return "biased"
	case PointSources:
		return "point-sources"
	default:
		return "unknown"
	}
}

// Sample draws one value from the distribution.
func (d Distribution) Sample(rng *rand.Rand) float64 {
	switch d {
	case Biased:
		return (rng.Float64()*2-1)*UniformScale + BiasShift
	default:
		return (rng.Float64()*2 - 1) * UniformScale
	}
}

// FillRandom fills every entry of g with samples from d.
func FillRandom(g *Grid, d Distribution, rng *rand.Rand) {
	if d == PointSources {
		fillPointSources(g, rng)
		return
	}
	data := g.Data()
	for i := range data {
		data[i] = d.Sample(rng)
	}
}

// FillBoundaryRandom fills only the border of g (the 2D frame or the six 3D
// faces) with samples from d, leaving the interior untouched.
func FillBoundaryRandom(g *Grid, d Distribution, rng *rand.Rand) {
	n := g.N()
	if g.Dim() == 3 {
		// Walk only the boundary points, in lexicographic (i, j, k) order:
		// the two full end planes, and per interior plane the first and last
		// rows plus the two end columns of each interior row.
		fillRow := func(row []float64) {
			for k := range row {
				row[k] = d.Sample(rng)
			}
		}
		fillRow(g.Plane(0))
		for i := 1; i < n-1; i++ {
			fillRow(g.Row3(i, 0))
			for j := 1; j < n-1; j++ {
				row := g.Row3(i, j)
				row[0] = d.Sample(rng)
				row[n-1] = d.Sample(rng)
			}
			fillRow(g.Row3(i, n-1))
		}
		fillRow(g.Plane(n - 1))
		return
	}
	for j := 0; j < n; j++ {
		g.Set(0, j, d.Sample(rng))
		g.Set(n-1, j, d.Sample(rng))
	}
	for i := 1; i < n-1; i++ {
		g.Set(i, 0, d.Sample(rng))
		g.Set(i, n-1, d.Sample(rng))
	}
}

// fillPointSources zeroes g then places ~sqrt(N) random point sources and
// sinks of magnitude 2³² in the interior.
func fillPointSources(g *Grid, rng *rand.Rand) {
	g.Zero()
	n := g.N()
	if n < 3 {
		return
	}
	k := 1
	for k*k < n {
		k++
	}
	for s := 0; s < k; s++ {
		i := 1 + rng.Intn(n-2)
		j := 1 + rng.Intn(n-2)
		v := float64(UniformScale)
		if rng.Intn(2) == 0 {
			v = -v
		}
		if g.Dim() == 3 {
			g.Set3(i, j, 1+rng.Intn(n-2), v)
		} else {
			g.Set(i, j, v)
		}
	}
}
