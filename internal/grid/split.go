// Color-split storage: the red ((coordinate sum) even) and black (odd)
// points of a grid stored as two contiguous planes of half-rows, so a
// red-black half-sweep walks each color with unit stride instead of the
// stride-2 hops the interleaved layout forces. The layout is a solver-side
// staging format, not a replacement for Grid: kernels Pack the strided grid
// in, run their sweeps on the split planes, and Unpack the result out at the
// solve boundary.
//
// Indexing. Each row (2D) or pencil (3D) of n points splits into its red and
// black subsequences, stored padded to w = (n+1)/2 entries. With
// s = i&1 (2D) or s = (i+j)&1 (3D) the parity of the row's first red point,
// the point at column j maps to half-row index j>>1 in the red plane when
// (j&1) == s, and to j>>1 in the black plane otherwise. Rows with s == 0
// hold w red and w−1 black values; rows with s == 1 hold w−1 red and w black
// (the last pad cell of the short color is unused). The uniform j>>1 mapping
// means a point's half-index never depends on its own color, which keeps
// neighbour offsets in the sweep kernels constant per row.
package grid

// SplitG holds one grid's values in color-split layout: red points first,
// then black, each as n (2D) or n² (3D) half-rows of w values of the grid's
// storage precision.
type SplitG[T Float] struct {
	n, dim, w int
	red       []T
	black     []T
}

// Split is the float64 color-split buffer.
type Split = SplitG[float64]

// Split32 is the float32 color-split buffer used by the mixed-precision
// sweep paths.
type Split32 = SplitG[float32]

// NewSplitOf returns a zeroed color-split buffer of precision T for a
// dim-dimensional grid of side n.
func NewSplitOf[T Float](dim, n int) *SplitG[T] {
	w := (n + 1) / 2
	rows := n
	if dim == 3 {
		rows = n * n
	}
	return &SplitG[T]{n: n, dim: dim, w: w,
		red:   make([]T, rows*w),
		black: make([]T, rows*w),
	}
}

// NewSplit returns a zeroed float64 color-split buffer for a dim-dimensional
// grid of side n.
func NewSplit(dim, n int) *Split { return NewSplitOf[float64](dim, n) }

// N returns the grid side length.
func (s *SplitG[T]) N() int { return s.n }

// Dim returns the dimensionality (2 or 3).
func (s *SplitG[T]) Dim() int { return s.dim }

// W returns the half-row width (n+1)/2.
func (s *SplitG[T]) W() int { return s.w }

// Red returns row i's red half-row (2D).
func (s *SplitG[T]) Red(i int) []T { return s.red[i*s.w : (i+1)*s.w] }

// Black returns row i's black half-row (2D).
func (s *SplitG[T]) Black(i int) []T { return s.black[i*s.w : (i+1)*s.w] }

// Red3 returns pencil (i,j)'s red half-row (3D).
func (s *SplitG[T]) Red3(i, j int) []T {
	base := (i*s.n + j) * s.w
	return s.red[base : base+s.w]
}

// Black3 returns pencil (i,j)'s black half-row (3D).
func (s *SplitG[T]) Black3(i, j int) []T {
	base := (i*s.n + j) * s.w
	return s.black[base : base+s.w]
}

// Pack copies g into the split layout. g must match the split's dim and n.
func (s *SplitG[T]) Pack(g *G[T]) {
	if g.N() != s.n || g.Dim() != s.dim {
		panic("grid: Split.Pack shape mismatch")
	}
	if s.dim == 3 {
		for i := 0; i < s.n; i++ {
			for j := 0; j < s.n; j++ {
				packRow(s.Red3(i, j), s.Black3(i, j), g.Row3(i, j), (i+j)&1)
			}
		}
		return
	}
	for i := 0; i < s.n; i++ {
		packRow(s.Red(i), s.Black(i), g.Row(i), i&1)
	}
}

// Unpack copies the split values back into g.
func (s *SplitG[T]) Unpack(g *G[T]) {
	if g.N() != s.n || g.Dim() != s.dim {
		panic("grid: Split.Unpack shape mismatch")
	}
	if s.dim == 3 {
		for i := 0; i < s.n; i++ {
			for j := 0; j < s.n; j++ {
				unpackRow(s.Red3(i, j), s.Black3(i, j), g.Row3(i, j), (i+j)&1)
			}
		}
		return
	}
	for i := 0; i < s.n; i++ {
		unpackRow(s.Red(i), s.Black(i), g.Row(i), i&1)
	}
}

// packRow splits one strided row into its red and black halves; s is the
// column parity of the row's first red point.
func packRow[T Float](red, black, row []T, s int) {
	n := len(row)
	for j := s; j < n; j += 2 {
		red[j>>1] = row[j]
	}
	for j := 1 - s; j < n; j += 2 {
		black[j>>1] = row[j]
	}
}

// unpackRow merges red and black halves back into a strided row.
func unpackRow[T Float](red, black, row []T, s int) {
	n := len(row)
	for j := s; j < n; j += 2 {
		row[j] = red[j>>1]
	}
	for j := 1 - s; j < n; j += 2 {
		row[j] = black[j>>1]
	}
}
