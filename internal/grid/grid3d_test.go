package grid

import (
	"math/rand"
	"testing"
)

func TestGrid3Basics(t *testing.T) {
	g := New3(5)
	if g.Dim() != 3 || g.N() != 5 || g.Points() != 125 {
		t.Fatalf("New3(5): dim=%d n=%d points=%d", g.Dim(), g.N(), g.Points())
	}
	g.Set3(1, 2, 3, 7.5)
	if g.At3(1, 2, 3) != 7.5 {
		t.Fatalf("At3 after Set3 = %v", g.At3(1, 2, 3))
	}
	// Flat layout: plane-major, then row-major.
	if g.Data()[(1*5+2)*5+3] != 7.5 {
		t.Fatal("Set3 wrote the wrong flat index")
	}
	if r := g.Row3(1, 2); r[3] != 7.5 {
		t.Fatalf("Row3 slice = %v", r)
	}
	if p := g.Plane(1); p[2*5+3] != 7.5 {
		t.Fatal("Plane slice misses the value")
	}
	c := g.Clone()
	if c.Dim() != 3 || c.At3(1, 2, 3) != 7.5 {
		t.Fatal("Clone dropped dimension or data")
	}
}

// TestDimensionGuards locks down the satellite requirement: 2D accessors on
// a 3D grid (and vice versa) must panic with an explicit dimension error,
// never silently mis-index.
func TestDimensionGuards(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic on wrong-dimension access", name)
			}
		}()
		f()
	}
	g3 := New3(5)
	mustPanic("At on 3D", func() { g3.At(1, 1) })
	mustPanic("Set on 3D", func() { g3.Set(1, 1, 0) })
	mustPanic("Row on 3D", func() { g3.Row(1) })
	g2 := New(5)
	mustPanic("At3 on 2D", func() { g2.At3(1, 1, 1) })
	mustPanic("Set3 on 2D", func() { g2.Set3(1, 1, 1, 0) })
	mustPanic("Plane on 2D", func() { g2.Plane(1) })
	mustPanic("Row3 on 2D", func() { g2.Row3(1, 1) })
	mustPanic("CopyFrom mixed", func() { g2.CopyFrom(g3) })
	mustPanic("AddInterior mixed", func() { g2.AddInterior(g3) })
	mustPanic("NewDim(4)", func() { NewDim(4, 5) })
}

func TestZeroBoundary3D(t *testing.T) {
	n := 5
	g := New3(n)
	g.Fill(1)
	g.ZeroBoundary()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				onBoundary := i == 0 || i == n-1 || j == 0 || j == n-1 || k == 0 || k == n-1
				v := g.At3(i, j, k)
				if onBoundary && v != 0 {
					t.Fatalf("boundary (%d,%d,%d) = %v, want 0", i, j, k, v)
				}
				if !onBoundary && v != 1 {
					t.Fatalf("interior (%d,%d,%d) = %v, want 1", i, j, k, v)
				}
			}
		}
	}
	g.Fill(1)
	g.ZeroInterior()
	if g.At3(2, 2, 2) != 0 || g.At3(0, 2, 2) != 1 {
		t.Fatal("ZeroInterior3D wrong")
	}
}

func TestCopyBoundaryAndAddInterior3D(t *testing.T) {
	n := 5
	src := New3(n)
	src.Fill(3)
	dst := New3(n)
	dst.CopyBoundaryFrom(src)
	if dst.At3(0, 1, 1) != 3 || dst.At3(1, 0, 1) != 3 || dst.At3(1, 1, 0) != 3 {
		t.Fatal("CopyBoundaryFrom missed a face")
	}
	if dst.At3(2, 2, 2) != 0 {
		t.Fatal("CopyBoundaryFrom touched the interior")
	}
	add := New3(n)
	add.Fill(2)
	dst.AddInterior(add)
	if dst.At3(2, 2, 2) != 2 {
		t.Fatal("AddInterior missed the interior")
	}
	if dst.At3(0, 1, 1) != 3 {
		t.Fatal("AddInterior touched the boundary")
	}
}

func TestNorms3D(t *testing.T) {
	g := New3(4) // 2×2×2 interior
	g.Fill(2)
	if got := L2Interior(g); got != 4*math32sqrt2() {
		// 8 interior points of value 2: sqrt(8·4) = 4·sqrt(2).
		t.Fatalf("L2Interior = %v", got)
	}
	if got := MaxAbsInterior(g); got != 2 {
		t.Fatalf("MaxAbsInterior = %v", got)
	}
	h := New3(4)
	h.Fill(1)
	if got := L2DiffInterior(g, h); got != 2*math32sqrt2() {
		t.Fatalf("L2DiffInterior = %v", got)
	}
}

func math32sqrt2() float64 { return 1.4142135623730951 }

func TestFillBoundaryRandom3D(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := New3(5)
	FillBoundaryRandom(g, Unbiased, rng)
	if g.At3(2, 2, 2) != 0 {
		t.Fatal("FillBoundaryRandom touched the interior")
	}
	nonzero := 0
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if g.At3(0, i, j) != 0 {
				nonzero++
			}
		}
	}
	if nonzero < 20 {
		t.Fatalf("first face mostly zero (%d/25 filled)", nonzero)
	}
}

func TestFillRandomPointSources3D(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := New3(9)
	FillRandom(g, PointSources, rng)
	impulses := 0
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			for k := 0; k < 9; k++ {
				v := g.At3(i, j, k)
				if v != 0 {
					impulses++
					if i == 0 || i == 8 || j == 0 || j == 8 || k == 0 || k == 8 {
						t.Fatalf("impulse on the boundary at (%d,%d,%d)", i, j, k)
					}
				}
			}
		}
	}
	if impulses == 0 {
		t.Fatal("no point sources placed")
	}
}
