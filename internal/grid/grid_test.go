package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	g := New(5)
	if g.N() != 5 {
		t.Fatalf("N() = %d, want 5", g.N())
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if g.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %v, want 0", i, j, g.At(i, j))
			}
		}
	}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestSetAtRoundTrip(t *testing.T) {
	g := New(4)
	g.Set(2, 3, 7.5)
	if got := g.At(2, 3); got != 7.5 {
		t.Fatalf("At(2,3) = %v, want 7.5", got)
	}
	if got := g.Data()[2*4+3]; got != 7.5 {
		t.Fatalf("flat index = %v, want 7.5", got)
	}
}

func TestFromSliceAliases(t *testing.T) {
	data := make([]float64, 9)
	g := FromSlice(3, data)
	g.Set(1, 1, 2)
	if data[4] != 2 {
		t.Fatal("FromSlice does not alias the given slice")
	}
}

func TestFromSlicePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice(3, make([]float64, 8))
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	g.Set(1, 1, 1)
	c := g.Clone()
	c.Set(1, 1, 9)
	if g.At(1, 1) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestCopyFromAndFill(t *testing.T) {
	a, b := New(3), New(3)
	a.Fill(4)
	b.CopyFrom(a)
	if b.At(2, 2) != 4 {
		t.Fatalf("CopyFrom: got %v, want 4", b.At(2, 2))
	}
}

func TestZeroInteriorKeepsBoundary(t *testing.T) {
	g := New(4)
	g.Fill(3)
	g.ZeroInterior()
	if g.At(0, 2) != 3 || g.At(3, 1) != 3 || g.At(1, 0) != 3 || g.At(2, 3) != 3 {
		t.Fatal("ZeroInterior changed boundary")
	}
	if g.At(1, 1) != 0 || g.At(2, 2) != 0 {
		t.Fatal("ZeroInterior left interior nonzero")
	}
}

func TestZeroBoundaryKeepsInterior(t *testing.T) {
	g := New(4)
	g.Fill(3)
	g.ZeroBoundary()
	if g.At(1, 1) != 3 || g.At(2, 2) != 3 {
		t.Fatal("ZeroBoundary changed interior")
	}
	for j := 0; j < 4; j++ {
		if g.At(0, j) != 0 || g.At(3, j) != 0 || g.At(j, 0) != 0 || g.At(j, 3) != 0 {
			t.Fatal("ZeroBoundary left boundary nonzero")
		}
	}
}

func TestCopyBoundaryFrom(t *testing.T) {
	src, dst := New(4), New(4)
	src.Fill(7)
	dst.Fill(1)
	dst.CopyBoundaryFrom(src)
	if dst.At(0, 0) != 7 || dst.At(3, 3) != 7 || dst.At(2, 0) != 7 || dst.At(1, 3) != 7 {
		t.Fatal("boundary not copied")
	}
	if dst.At(1, 1) != 1 {
		t.Fatal("interior was overwritten")
	}
}

func TestAddInterior(t *testing.T) {
	a, b := New(4), New(4)
	a.Fill(1)
	b.Fill(2)
	a.AddInterior(b)
	if a.At(1, 2) != 3 {
		t.Fatalf("interior sum = %v, want 3", a.At(1, 2))
	}
	if a.At(0, 0) != 1 {
		t.Fatal("AddInterior touched the boundary")
	}
}

func TestScale(t *testing.T) {
	g := New(3)
	g.Fill(2)
	g.Scale(-0.5)
	if g.At(1, 1) != -1 {
		t.Fatalf("Scale: got %v, want -1", g.At(1, 1))
	}
}

func TestLevelAndSizeOfLevel(t *testing.T) {
	cases := []struct{ n, k int }{
		{3, 1}, {5, 2}, {9, 3}, {17, 4}, {33, 5}, {65, 6}, {129, 7},
		{257, 8}, {513, 9}, {1025, 10}, {2049, 11}, {4097, 12},
	}
	for _, c := range cases {
		if got := Level(c.n); got != c.k {
			t.Errorf("Level(%d) = %d, want %d", c.n, got, c.k)
		}
		if got := SizeOfLevel(c.k); got != c.n {
			t.Errorf("SizeOfLevel(%d) = %d, want %d", c.k, got, c.n)
		}
	}
	for _, bad := range []int{0, 1, 2, 4, 6, 8, 10, 100} {
		if Level(bad) != -1 {
			t.Errorf("Level(%d) = %d, want -1", bad, Level(bad))
		}
	}
}

func TestCoarsen(t *testing.T) {
	if got := Coarsen(9); got != 5 {
		t.Fatalf("Coarsen(9) = %d, want 5", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Coarsen(3) did not panic")
		}
	}()
	Coarsen(3)
}

func TestL2InteriorExcludesBoundary(t *testing.T) {
	g := New(3) // single interior point
	g.Fill(5)
	if got := L2Interior(g); got != 5 {
		t.Fatalf("L2Interior = %v, want 5", got)
	}
}

func TestL2DiffInterior(t *testing.T) {
	a, b := New(4), New(4)
	a.Set(1, 1, 3)
	b.Set(1, 1, 0)
	a.Set(2, 2, 0)
	b.Set(2, 2, 4)
	if got := L2DiffInterior(a, b); math.Abs(got-5) > 1e-12 {
		t.Fatalf("L2DiffInterior = %v, want 5", got)
	}
}

func TestMaxAbsInterior(t *testing.T) {
	g := New(4)
	g.Set(1, 2, -9)
	g.Set(0, 0, 100) // boundary, must be ignored
	if got := MaxAbsInterior(g); got != 9 {
		t.Fatalf("MaxAbsInterior = %v, want 9", got)
	}
}

func TestAccuracyLevel(t *testing.T) {
	xopt := New(3)
	xin := New(3)
	xin.Set(1, 1, 8)
	xout := New(3)
	xout.Set(1, 1, 2)
	if got := AccuracyLevel(xin, xout, xopt); math.Abs(got-4) > 1e-12 {
		t.Fatalf("AccuracyLevel = %v, want 4", got)
	}
	if got := AccuracyLevel(xin, xopt, xopt); !math.IsInf(got, 1) {
		t.Fatalf("exact output should yield +Inf, got %v", got)
	}
	if got := AccuracyLevel(xopt, xopt, xopt); got != 1 {
		t.Fatalf("degenerate case should yield 1, got %v", got)
	}
}

func TestDistributionString(t *testing.T) {
	if Unbiased.String() != "unbiased" || Biased.String() != "biased" ||
		PointSources.String() != "point-sources" || Distribution(99).String() != "unknown" {
		t.Fatal("Distribution.String mismatch")
	}
}

func TestDistributionRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		u := Unbiased.Sample(rng)
		if u < -UniformScale || u > UniformScale {
			t.Fatalf("unbiased sample %v out of range", u)
		}
		b := Biased.Sample(rng)
		if b < -UniformScale+BiasShift || b > UniformScale+BiasShift {
			t.Fatalf("biased sample %v out of range", b)
		}
	}
}

func TestBiasedMeanIsShifted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var sum float64
	const trials = 200000
	for i := 0; i < trials; i++ {
		sum += Biased.Sample(rng)
	}
	mean := sum / trials
	if math.Abs(mean-BiasShift) > 0.05*UniformScale {
		t.Fatalf("biased mean = %v, want ≈ %v", mean, float64(BiasShift))
	}
}

func TestFillRandomDeterministic(t *testing.T) {
	a, b := New(9), New(9)
	FillRandom(a, Unbiased, rand.New(rand.NewSource(42)))
	FillRandom(b, Unbiased, rand.New(rand.NewSource(42)))
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("FillRandom not deterministic for equal seeds")
		}
	}
}

func TestFillBoundaryRandomLeavesInterior(t *testing.T) {
	g := New(5)
	FillBoundaryRandom(g, Unbiased, rand.New(rand.NewSource(3)))
	for i := 1; i < 4; i++ {
		for j := 1; j < 4; j++ {
			if g.At(i, j) != 0 {
				t.Fatal("FillBoundaryRandom wrote to interior")
			}
		}
	}
	if g.At(0, 2) == 0 && g.At(4, 2) == 0 && g.At(2, 0) == 0 {
		t.Fatal("boundary appears unfilled")
	}
}

func TestFillPointSources(t *testing.T) {
	g := New(17)
	FillRandom(g, PointSources, rand.New(rand.NewSource(5)))
	nonzero := 0
	for _, v := range g.Data() {
		if v != 0 {
			nonzero++
			if math.Abs(v) != UniformScale {
				t.Fatalf("point source magnitude %v, want ±2^32", v)
			}
		}
	}
	if nonzero == 0 || nonzero > 17 {
		t.Fatalf("point source count = %d, want in (0,17]", nonzero)
	}
	// Boundary must stay zero.
	for j := 0; j < 17; j++ {
		if g.At(0, j) != 0 || g.At(16, j) != 0 {
			t.Fatal("point source placed on boundary")
		}
	}
}

// Property: Level and SizeOfLevel are inverses for all valid levels.
func TestLevelSizeInverseProperty(t *testing.T) {
	f := func(k uint8) bool {
		lvl := int(k%29) + 1
		return Level(SizeOfLevel(lvl)) == lvl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AccuracyLevel is scale-invariant — scaling all three grids by
// the same nonzero factor leaves the ratio unchanged.
func TestAccuracyScaleInvarianceProperty(t *testing.T) {
	f := func(seed int64, scaleBits uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := 0.5 + float64(scaleBits%100)/10 // in [0.5, 10.4]
		xin, xout, xopt := New(5), New(5), New(5)
		FillRandom(xin, Unbiased, rng)
		FillRandom(xout, Unbiased, rng)
		FillRandom(xopt, Unbiased, rng)
		a1 := AccuracyLevel(xin, xout, xopt)
		for _, g := range []*Grid{xin, xout, xopt} {
			g.Scale(s)
		}
		a2 := AccuracyLevel(xin, xout, xopt)
		return math.Abs(a1-a2) <= 1e-9*math.Max(a1, a2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: L2DiffInterior satisfies the triangle inequality.
func TestL2TriangleInequalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := New(9), New(9), New(9)
		FillRandom(a, Unbiased, rng)
		FillRandom(b, Unbiased, rng)
		FillRandom(c, Unbiased, rng)
		ab := L2DiffInterior(a, b)
		bc := L2DiffInterior(b, c)
		ac := L2DiffInterior(a, c)
		return ac <= ab+bc+1e-6*(ab+bc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
