package grid

import "math"

// The norms branch explicitly on dimension (like ZeroInterior/AddInterior)
// rather than folding through a per-point closure: they sit on the tuner's
// measurement path, where an interior scan is millions of points and an
// indirect call per point would dominate. All norms accumulate in float64
// regardless of the grid's storage precision, so convergence accounting on
// the float32 paths is as trustworthy as on the float64 ones.

// L2Interior returns the L2 norm of g over interior points only.
// Boundary entries are excluded because Dirichlet boundaries are fixed and
// carry no error.
func L2Interior[T Float](g *G[T]) float64 {
	n := g.n
	var sum float64
	if g.dim == 3 {
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				row := g.Row3(i, j)
				for k := 1; k < n-1; k++ {
					v := float64(row[k])
					sum += v * v
				}
			}
		}
		return math.Sqrt(sum)
	}
	for i := 1; i < n-1; i++ {
		row := g.Row(i)
		for j := 1; j < n-1; j++ {
			v := float64(row[j])
			sum += v * v
		}
	}
	return math.Sqrt(sum)
}

// L2DiffInterior returns the L2 norm of (a − b) over interior points.
func L2DiffInterior[T Float](a, b *G[T]) float64 {
	if a.n != b.n || a.dim != b.dim {
		panic("grid: L2DiffInterior size mismatch")
	}
	n := a.n
	var sum float64
	if a.dim == 3 {
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				ar, br := a.Row3(i, j), b.Row3(i, j)
				for k := 1; k < n-1; k++ {
					d := float64(ar[k]) - float64(br[k])
					sum += d * d
				}
			}
		}
		return math.Sqrt(sum)
	}
	for i := 1; i < n-1; i++ {
		ar, br := a.Row(i), b.Row(i)
		for j := 1; j < n-1; j++ {
			d := float64(ar[j]) - float64(br[j])
			sum += d * d
		}
	}
	return math.Sqrt(sum)
}

// MaxAbsInterior returns the max-norm of g over interior points.
func MaxAbsInterior[T Float](g *G[T]) float64 {
	n := g.n
	var m float64
	if g.dim == 3 {
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				row := g.Row3(i, j)
				for k := 1; k < n-1; k++ {
					if v := math.Abs(float64(row[k])); v > m {
						m = v
					}
				}
			}
		}
		return m
	}
	for i := 1; i < n-1; i++ {
		row := g.Row(i)
		for j := 1; j < n-1; j++ {
			if v := math.Abs(float64(row[j])); v > m {
				m = v
			}
		}
	}
	return m
}

// HasNonFinite reports whether any entry of g (boundary included) is NaN or
// ±Inf. It is the divergence probe for the f32 solve paths, which have no
// residual norms to watch: a full-array scan off the hot loop, run once per
// reduced-precision cell.
func HasNonFinite[T Float](g *G[T]) bool {
	for _, v := range g.data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return true
		}
	}
	return false
}

// AccuracyLevel implements the paper's accuracy metric (§2.2): the ratio of
// the input error norm to the output error norm, both measured against the
// optimal solution xopt. Higher is better. If the output error is zero
// (exact solve) the result is +Inf; if the input error is also zero the
// result is defined as 1 (no improvement possible or needed).
func AccuracyLevel(xin, xout, xopt *Grid) float64 {
	ein := L2DiffInterior(xin, xopt)
	eout := L2DiffInterior(xout, xopt)
	if eout == 0 {
		if ein == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return ein / eout
}
