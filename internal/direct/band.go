// Package direct implements a banded Cholesky direct solver for the 2D
// Poisson operator — the stand-in for LAPACK's DPBSV routine that the paper
// uses as its direct algorithmic choice. With interior side m = N−2 the
// system has n = m² unknowns and half-bandwidth m, so factorization costs
// O(n·m²) = O(N⁴) and each solve costs O(n·m) = O(N³), matching the
// complexity table in §2 of the paper.
package direct

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Factor when the matrix is not
// symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("direct: matrix is not positive definite")

// BandMatrix is a symmetric matrix stored in lower-band form: entry (i, j)
// with 0 ≤ i−j ≤ bandwidth is kept at row i, distance i−j. After a
// successful Factor the storage holds the Cholesky factor L in place.
type BandMatrix struct {
	n         int
	bandwidth int
	w         int // entries per row = bandwidth + 1
	data      []float64
	factored  bool
}

// NewBandMatrix returns a zero n×n symmetric band matrix with the given
// half-bandwidth (number of sub-diagonals kept).
func NewBandMatrix(n, bandwidth int) *BandMatrix {
	if n < 1 || bandwidth < 0 {
		panic(fmt.Sprintf("direct: invalid band matrix n=%d bw=%d", n, bandwidth))
	}
	if bandwidth > n-1 {
		bandwidth = n - 1
	}
	w := bandwidth + 1
	return &BandMatrix{n: n, bandwidth: bandwidth, w: w, data: make([]float64, n*w)}
}

// N returns the matrix dimension.
func (m *BandMatrix) N() int { return m.n }

// Bandwidth returns the half-bandwidth.
func (m *BandMatrix) Bandwidth() int { return m.bandwidth }

// Factored reports whether Factor has completed successfully.
func (m *BandMatrix) Factored() bool { return m.factored }

// at returns the stored value for (row, row−dist).
func (m *BandMatrix) at(row, dist int) float64 { return m.data[row*m.w+dist] }

// set stores v at (row, row−dist).
func (m *BandMatrix) set(row, dist int, v float64) { m.data[row*m.w+dist] = v }

// At returns A(i, j), exploiting symmetry; entries outside the band are 0.
func (m *BandMatrix) At(i, j int) float64 {
	if j > i {
		i, j = j, i
	}
	if i-j > m.bandwidth {
		return 0
	}
	return m.at(i, i-j)
}

// Set stores A(i, j) (and by symmetry A(j, i)). It panics if (i, j) lies
// outside the band or the matrix is already factored.
func (m *BandMatrix) Set(i, j int, v float64) {
	if m.factored {
		panic("direct: Set on factored matrix")
	}
	if j > i {
		i, j = j, i
	}
	if i-j > m.bandwidth {
		panic(fmt.Sprintf("direct: Set(%d,%d) outside bandwidth %d", i, j, m.bandwidth))
	}
	m.set(i, i-j, v)
}

// Factor computes the Cholesky factorization A = L·Lᵀ in place. It returns
// ErrNotPositiveDefinite if a non-positive pivot is encountered.
func (m *BandMatrix) Factor() error {
	n, bw := m.n, m.bandwidth
	for j := 0; j < n; j++ {
		lo := j - bw
		if lo < 0 {
			lo = 0
		}
		s := m.at(j, 0)
		for k := lo; k < j; k++ {
			l := m.at(j, j-k)
			s -= l * l
		}
		if s <= 0 || math.IsNaN(s) {
			return ErrNotPositiveDefinite
		}
		ljj := math.Sqrt(s)
		m.set(j, 0, ljj)
		hi := j + bw
		if hi > n-1 {
			hi = n - 1
		}
		for i := j + 1; i <= hi; i++ {
			s := m.at(i, i-j)
			ilo := i - bw
			if ilo < 0 {
				ilo = 0
			}
			for k := ilo; k < j; k++ {
				s -= m.at(i, i-k) * m.at(j, j-k)
			}
			m.set(i, i-j, s/ljj)
		}
	}
	m.factored = true
	return nil
}

// Solve solves A·x = rhs using the computed factorization, overwriting rhs
// with the solution. Factor must have succeeded first.
func (m *BandMatrix) Solve(rhs []float64) {
	if !m.factored {
		panic("direct: Solve before Factor")
	}
	if len(rhs) != m.n {
		panic(fmt.Sprintf("direct: Solve rhs length %d != %d", len(rhs), m.n))
	}
	n, bw := m.n, m.bandwidth
	// Forward substitution L·y = rhs.
	for i := 0; i < n; i++ {
		lo := i - bw
		if lo < 0 {
			lo = 0
		}
		s := rhs[i]
		for k := lo; k < i; k++ {
			s -= m.at(i, i-k) * rhs[k]
		}
		rhs[i] = s / m.at(i, 0)
	}
	// Back substitution Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		hi := i + bw
		if hi > n-1 {
			hi = n - 1
		}
		s := rhs[i]
		for k := i + 1; k <= hi; k++ {
			s -= m.at(k, k-i) * rhs[k]
		}
		rhs[i] = s / m.at(i, 0)
	}
}

// FactorFlops estimates the floating-point operations of Factor, ≈ n·bw².
func (m *BandMatrix) FactorFlops() float64 {
	return float64(m.n) * float64(m.bandwidth) * float64(m.bandwidth)
}

// SolveFlops estimates the floating-point operations of one Solve, ≈ 4·n·bw.
func (m *BandMatrix) SolveFlops() float64 {
	return 4 * float64(m.n) * float64(m.bandwidth)
}
