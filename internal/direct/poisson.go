package direct

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pbmg/internal/grid"
	"pbmg/internal/stencil"
)

// PoissonSolver is a factored band-Cholesky solver for the interior of the
// discrete Poisson problem T·x = b on an N×N grid with Dirichlet boundary
// values taken from x. The factorization is computed once per grid size and
// reused across solves, as a tuned algorithm would reuse a precomputed plan.
// After construction a PoissonSolver is immutable: Solve reads the factored
// bands and writes only its arguments, so one solver may serve concurrent
// solves on distinct grids.
type PoissonSolver struct {
	n int // grid side
	m int // interior side n−2
	a *BandMatrix
}

// NewPoissonSolver assembles and factors the scaled interior operator
// (diagonal 4, off-diagonals −1; the h² scaling is applied to the right-hand
// side at solve time). Grid side n must be ≥ 3.
func NewPoissonSolver(n int) *PoissonSolver {
	if n < 3 {
		panic(fmt.Sprintf("direct: grid side %d too small", n))
	}
	m := n - 2
	unknowns := m * m
	a := NewBandMatrix(unknowns, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			k := i*m + j
			a.Set(k, k, 4)
			if j > 0 {
				a.Set(k, k-1, -1)
			}
			if i > 0 {
				a.Set(k, k-m, -1)
			}
		}
	}
	if err := a.Factor(); err != nil {
		// The scaled Poisson operator is SPD by construction; failure here
		// is a programming error, not an input condition.
		panic("direct: Poisson operator failed to factor: " + err.Error())
	}
	return &PoissonSolver{n: n, m: m, a: a}
}

// N returns the grid side length the solver was built for.
func (s *PoissonSolver) N() int { return s.n }

// Solve overwrites the interior of x with the exact solution of T·x = b,
// using x's boundary entries as Dirichlet data. h is the mesh spacing.
func (s *PoissonSolver) Solve(x, b *grid.Grid, h float64) {
	if x.N() != s.n || b.N() != s.n {
		panic(fmt.Sprintf("direct: Solve size mismatch: solver %d, x %d, b %d", s.n, x.N(), b.N()))
	}
	m := s.m
	h2 := h * h
	rhs := make([]float64, m*m)
	for i := 0; i < m; i++ {
		gi := i + 1
		br := b.Row(gi)
		for j := 0; j < m; j++ {
			gj := j + 1
			v := h2 * br[gj]
			// Move known boundary neighbours to the right-hand side.
			if i == 0 {
				v += x.At(0, gj)
			}
			if i == m-1 {
				v += x.At(s.n-1, gj)
			}
			if j == 0 {
				v += x.At(gi, 0)
			}
			if j == m-1 {
				v += x.At(gi, s.n-1)
			}
			rhs[i*m+j] = v
		}
	}
	s.a.Solve(rhs)
	for i := 0; i < m; i++ {
		xr := x.Row(i + 1)
		copy(xr[1:1+m], rhs[i*m:(i+1)*m])
	}
}

// FactorFlops reports the (estimated) cost of the one-time factorization.
func (s *PoissonSolver) FactorFlops() float64 { return s.a.FactorFlops() }

// SolveFlops reports the (estimated) cost of one Solve call.
func (s *PoissonSolver) SolveFlops() float64 { return s.a.SolveFlops() }

// Cache memoizes factored interior solvers by (operator, grid size) so that
// repeated solves at a level amortize the O(N⁴) factorization, mirroring how
// the tuned algorithm reuses the direct method at a fixed cutoff level.
// Cache is safe for concurrent use with factor-once semantics: concurrent
// Gets for one key produce exactly one factorization, and an in-flight
// factorization blocks only callers of that key, never Gets for keys already
// cached. A factored solver is immutable (Solve touches only its arguments),
// so the returned solver may be used from any goroutine. The zero value is
// ready to use and unbounded; SetCapacity (or NewCache) bounds the entry
// count with least-recently-used eviction, so a long-running server that
// sees rotating (operator, size, dim) keys holds a bounded set of
// factorizations instead of growing without limit.
type Cache struct {
	mu      sync.Mutex // guards the index only, never a factorization
	entries map[cacheKey]*cacheEntry
	cap     int          // max completed entries kept; ≤ 0 means unbounded
	clock   atomic.Int64 // logical recency clock for LRU eviction
}

// NewCache returns a cache bounded to at most max completed entries (≤ 0 for
// unbounded).
func NewCache(max int) *Cache {
	c := &Cache{}
	c.cap = max
	return c
}

// cacheKey identifies one factorization: the operator (nil for the 2D
// constant-coefficient Laplacian), the grid side, and the spatial dimension.
// Operators are compared by identity — within one operator family hierarchy
// the operator for a given size is a stable memoized pointer (see
// stencil.Operator.Coarse), so identity is exactly the right granularity.
// The dimension is implied by the operator but kept explicit so a 2D and a
// 3D factorization of the same side can never collide.
type cacheKey struct {
	op  *stencil.Operator
	n   int
	dim int
}

// cacheEntry is one per-key slot: mu serializes the factorization, done
// publishes its completion to the lock-free fast path and to readers like
// Sizes. A mutex rather than sync.Once so that a panicking factorization
// (e.g. an invalid size) leaves the entry retryable instead of poisoned
// with a nil solver. lastUse carries the cache's recency clock for LRU
// eviction; an evicted entry stays valid for callers already holding its
// solver (factored solvers are immutable), it just stops being findable.
type cacheEntry struct {
	mu      sync.Mutex
	done    atomic.Bool
	lastUse atomic.Int64
	s       InteriorSolver
}

// Get returns the cached constant-coefficient Poisson solver for grid side
// n, factoring it on first use.
func (c *Cache) Get(n int) *PoissonSolver {
	return c.GetOp(nil, n).(*PoissonSolver)
}

// GetOp returns the cached solver for the operator at grid side n, factoring
// it on first use. A nil operator (or the Poisson family) uses the
// specialized constant-coefficient path.
func (c *Cache) GetOp(op *stencil.Operator, n int) InteriorSolver {
	dim := 2
	if op != nil {
		dim = op.Dim()
		if op.Family() == stencil.FamilyPoisson {
			op = nil // all 2D Poisson operators share one factorization per size
		}
	}
	key := cacheKey{op: op, n: n, dim: dim}
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[cacheKey]*cacheEntry)
	}
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	e.lastUse.Store(c.clock.Add(1))
	c.mu.Unlock()
	if e.done.Load() {
		return e.s
	}
	func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		if !e.done.Load() {
			// A panicking factorization propagates to the caller, but the
			// in-flight entry must not stay behind: evictLocked never evicts
			// !done entries, so without this cleanup every distinct panicking
			// key would pin an unevictable slot in the map forever. Drop the
			// entry (identity-checked: a concurrent retry may have replaced
			// it) so the key is re-factored or forgotten instead.
			defer func() {
				if !e.done.Load() {
					c.mu.Lock()
					if c.entries[key] == e {
						delete(c.entries, key)
					}
					c.mu.Unlock()
				}
			}()
			e.s = NewInteriorSolver(op, n)
			e.done.Store(true)
		}
	}()
	c.mu.Lock()
	c.evictLocked()
	c.mu.Unlock()
	return e.s
}

// SetCapacity bounds the cache to at most max completed entries (≤ 0 removes
// the bound), evicting least-recently-used entries immediately if the cache
// is already over the new bound.
func (c *Cache) SetCapacity(max int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = max
	c.evictLocked()
}

// Capacity returns the configured entry bound (≤ 0: unbounded).
func (c *Cache) Capacity() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cap
}

// Len returns the number of entries currently held (including any whose
// factorization is still in flight).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// evictLocked drops least-recently-used completed entries until the cache is
// within its bound. Entries whose factorization is still in flight are never
// evicted (their caller is about to use them), so the bound can be exceeded
// transiently by the number of concurrent first-time factorizations.
func (c *Cache) evictLocked() {
	if c.cap <= 0 {
		return
	}
	for len(c.entries) > c.cap {
		var victim cacheKey
		oldest := int64(0)
		found := false
		for k, e := range c.entries {
			if !e.done.Load() {
				continue
			}
			if lu := e.lastUse.Load(); !found || lu < oldest {
				victim, oldest, found = k, lu, true
			}
		}
		if !found {
			return
		}
		delete(c.entries, victim)
	}
}

// Sizes returns the grid sizes whose factorizations have completed (from
// any operator family), for instrumentation.
func (c *Cache) Sizes() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := make(map[int]bool)
	out := make([]int, 0, len(c.entries))
	for k, e := range c.entries {
		if e.done.Load() && !seen[k.n] {
			seen[k.n] = true
			out = append(out, k.n)
		}
	}
	return out
}
