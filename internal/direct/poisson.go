package direct

import (
	"fmt"
	"sync"

	"pbmg/internal/grid"
)

// PoissonSolver is a factored band-Cholesky solver for the interior of the
// discrete Poisson problem T·x = b on an N×N grid with Dirichlet boundary
// values taken from x. The factorization is computed once per grid size and
// reused across solves, as a tuned algorithm would reuse a precomputed plan.
type PoissonSolver struct {
	n int // grid side
	m int // interior side n−2
	a *BandMatrix
}

// NewPoissonSolver assembles and factors the scaled interior operator
// (diagonal 4, off-diagonals −1; the h² scaling is applied to the right-hand
// side at solve time). Grid side n must be ≥ 3.
func NewPoissonSolver(n int) *PoissonSolver {
	if n < 3 {
		panic(fmt.Sprintf("direct: grid side %d too small", n))
	}
	m := n - 2
	unknowns := m * m
	a := NewBandMatrix(unknowns, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			k := i*m + j
			a.Set(k, k, 4)
			if j > 0 {
				a.Set(k, k-1, -1)
			}
			if i > 0 {
				a.Set(k, k-m, -1)
			}
		}
	}
	if err := a.Factor(); err != nil {
		// The scaled Poisson operator is SPD by construction; failure here
		// is a programming error, not an input condition.
		panic("direct: Poisson operator failed to factor: " + err.Error())
	}
	return &PoissonSolver{n: n, m: m, a: a}
}

// N returns the grid side length the solver was built for.
func (s *PoissonSolver) N() int { return s.n }

// Solve overwrites the interior of x with the exact solution of T·x = b,
// using x's boundary entries as Dirichlet data. h is the mesh spacing.
func (s *PoissonSolver) Solve(x, b *grid.Grid, h float64) {
	if x.N() != s.n || b.N() != s.n {
		panic(fmt.Sprintf("direct: Solve size mismatch: solver %d, x %d, b %d", s.n, x.N(), b.N()))
	}
	m := s.m
	h2 := h * h
	rhs := make([]float64, m*m)
	for i := 0; i < m; i++ {
		gi := i + 1
		br := b.Row(gi)
		for j := 0; j < m; j++ {
			gj := j + 1
			v := h2 * br[gj]
			// Move known boundary neighbours to the right-hand side.
			if i == 0 {
				v += x.At(0, gj)
			}
			if i == m-1 {
				v += x.At(s.n-1, gj)
			}
			if j == 0 {
				v += x.At(gi, 0)
			}
			if j == m-1 {
				v += x.At(gi, s.n-1)
			}
			rhs[i*m+j] = v
		}
	}
	s.a.Solve(rhs)
	for i := 0; i < m; i++ {
		xr := x.Row(i + 1)
		copy(xr[1:1+m], rhs[i*m:(i+1)*m])
	}
}

// FactorFlops reports the (estimated) cost of the one-time factorization.
func (s *PoissonSolver) FactorFlops() float64 { return s.a.FactorFlops() }

// SolveFlops reports the (estimated) cost of one Solve call.
func (s *PoissonSolver) SolveFlops() float64 { return s.a.SolveFlops() }

// Cache memoizes PoissonSolvers by grid size so that repeated solves at a
// level amortize the O(N⁴) factorization, mirroring how the tuned algorithm
// reuses the direct method at a fixed cutoff level. Cache is safe for
// concurrent use; the zero value is ready to use.
type Cache struct {
	mu      sync.Mutex
	solvers map[int]*PoissonSolver
}

// Get returns the cached solver for grid side n, creating it on first use.
func (c *Cache) Get(n int) *PoissonSolver {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.solvers == nil {
		c.solvers = make(map[int]*PoissonSolver)
	}
	s, ok := c.solvers[n]
	if !ok {
		s = NewPoissonSolver(n)
		c.solvers[n] = s
	}
	return s
}

// Sizes returns the grid sizes currently cached, for instrumentation.
func (c *Cache) Sizes() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, len(c.solvers))
	for n := range c.solvers {
		out = append(out, n)
	}
	return out
}
