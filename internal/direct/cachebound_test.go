package direct

import (
	"sync"
	"testing"

	"pbmg/internal/stencil"
)

// TestCacheCapacityBoundsEntries: under rotating request sizes a bounded
// cache must hold at most its capacity, evicting least-recently-used
// factorizations — the long-running-server memory guarantee.
func TestCacheCapacityBoundsEntries(t *testing.T) {
	c := NewCache(4)
	sizes := []int{5, 9, 17, 33, 5, 9, 65, 5, 17, 33, 9, 65}
	for _, n := range sizes {
		c.Get(n)
		if got := c.Len(); got > 4 {
			t.Fatalf("after Get(%d): %d entries, capacity 4", n, got)
		}
	}
	// An evicted size must still be servable (re-factored, not broken).
	s := c.Get(5)
	if s == nil || s.N() != 5 {
		t.Fatal("re-Get of an evicted size failed")
	}
}

// TestCacheEvictsLeastRecentlyUsed: the victim is the entry touched longest
// ago, so a hot size survives a rotation of cold ones.
func TestCacheEvictsLeastRecentlyUsed(t *testing.T) {
	c := NewCache(2)
	c.Get(5)
	c.Get(9)
	c.Get(5)  // 5 is now more recent than 9
	c.Get(17) // evicts 9
	sizes := c.Sizes()
	want := map[int]bool{5: true, 17: true}
	if len(sizes) != 2 || !want[sizes[0]] || !want[sizes[1]] {
		t.Fatalf("Sizes() = %v, want {5, 17}", sizes)
	}
}

// TestCacheSetCapacityEvictsImmediately: lowering the bound on a full cache
// trims it right away rather than on the next insert.
func TestCacheSetCapacityEvictsImmediately(t *testing.T) {
	var c Cache // zero value: unbounded
	for _, n := range []int{5, 9, 17, 33, 65} {
		c.Get(n)
	}
	if got := c.Len(); got != 5 {
		t.Fatalf("unbounded cache holds %d entries, want 5", got)
	}
	c.SetCapacity(2)
	if got := c.Len(); got != 2 {
		t.Fatalf("after SetCapacity(2): %d entries", got)
	}
	if got := c.Capacity(); got != 2 {
		t.Fatalf("Capacity() = %d, want 2", got)
	}
}

// TestCacheBoundedConcurrent: concurrent gets over more distinct keys than
// the capacity stay race-free and leave the cache within its bound once all
// factorizations have completed.
func TestCacheBoundedConcurrent(t *testing.T) {
	c := NewCache(3)
	ops := []*stencil.Operator{nil, stencil.Anisotropic(0.25), stencil.Poisson3D()}
	sizes := []int{5, 9, 17}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				op := ops[(g+i)%len(ops)]
				n := sizes[i%len(sizes)]
				if s := c.GetOp(op, n); s == nil || s.N() != n {
					t.Errorf("GetOp(%v, %d) returned a wrong solver", op, n)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Len(); got > 3 {
		t.Fatalf("after concurrent rotation: %d entries, capacity 3", got)
	}
}

// TestCachePanickingFactorizationNotPinned: a factorization that panics
// (here: an invalid grid side) must not leave its in-flight entry behind.
// evictLocked never evicts !done entries, so before the cleanup in GetOp a
// panicking key pinned an unevictable slot in the map forever — Len crept
// up and a bounded cache rotating over bad keys grew without limit.
func TestCachePanickingFactorizationNotPinned(t *testing.T) {
	c := NewCache(2)
	for i := 0; i < 3; i++ {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("Get(1) did not panic")
				}
			}()
			c.Get(1) // side too small: factorization panics
		}()
	}
	if got := c.Len(); got != 0 {
		t.Fatalf("after panicking factorizations, Len() = %d, want 0 (entries must not be pinned)", got)
	}
	// The same key stays retryable and the cache still serves good keys.
	if s := c.Get(9); s == nil || s.N() != 9 {
		t.Fatal("cache broken after panicking factorization")
	}
	if got := c.Len(); got != 1 {
		t.Fatalf("Len() = %d, want 1", got)
	}
}
