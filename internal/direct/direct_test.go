package direct

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pbmg/internal/grid"
	"pbmg/internal/stencil"
)

// denseSolve solves A·x = b by Gaussian elimination with partial pivoting,
// used as an independent oracle for the band solver.
func denseSolve(a [][]float64, b []float64) []float64 {
	n := len(b)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for c := 0; c < n; c++ {
		p := c
		for r := c + 1; r < n; r++ {
			if math.Abs(m[r][c]) > math.Abs(m[p][c]) {
				p = r
			}
		}
		m[c], m[p] = m[p], m[c]
		for r := c + 1; r < n; r++ {
			f := m[r][c] / m[c][c]
			for k := c; k <= n; k++ {
				m[r][k] -= f * m[c][k]
			}
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := m[r][n]
		for k := r + 1; k < n; k++ {
			s -= m[r][k] * x[k]
		}
		x[r] = s / m[r][r]
	}
	return x
}

// randomSPDBand builds a random symmetric positive definite band matrix by
// making it strictly diagonally dominant.
func randomSPDBand(rng *rand.Rand, n, bw int) (*BandMatrix, [][]float64) {
	bm := NewBandMatrix(n, bw)
	dense := make([][]float64, n)
	for i := range dense {
		dense[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i - bw; j <= i; j++ {
			if j < 0 {
				continue
			}
			var v float64
			if i == j {
				v = float64(2*bw+1) + rng.Float64()*4
			} else {
				v = rng.Float64()*2 - 1
			}
			bm.Set(i, j, v)
			dense[i][j] = v
			dense[j][i] = v
		}
	}
	return bm, dense
}

func TestBandMatrixAtSetSymmetry(t *testing.T) {
	m := NewBandMatrix(5, 2)
	m.Set(3, 1, 7)
	if m.At(3, 1) != 7 || m.At(1, 3) != 7 {
		t.Fatal("Set/At not symmetric")
	}
	if m.At(0, 4) != 0 {
		t.Fatal("outside-band entry should read 0")
	}
}

func TestBandMatrixSetOutsideBandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set outside band did not panic")
		}
	}()
	NewBandMatrix(5, 1).Set(4, 0, 1)
}

func TestBandCholeskyMatchesDenseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(20)
		bw := rng.Intn(n)
		bm, dense := randomSPDBand(rng, n, bw)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()*10 - 5
		}
		want := denseSolve(dense, b)
		if err := bm.Factor(); err != nil {
			t.Fatalf("Factor failed on SPD matrix: %v", err)
		}
		got := append([]float64(nil), b...)
		bm.Solve(got)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestFactorRejectsIndefinite(t *testing.T) {
	m := NewBandMatrix(3, 1)
	m.Set(0, 0, -1)
	m.Set(1, 1, 1)
	m.Set(2, 2, 1)
	if err := m.Factor(); err != ErrNotPositiveDefinite {
		t.Fatalf("Factor = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestSolveBeforeFactorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Solve before Factor did not panic")
		}
	}()
	NewBandMatrix(3, 1).Solve(make([]float64, 3))
}

func TestSetAfterFactorPanics(t *testing.T) {
	m := NewBandMatrix(2, 1)
	m.Set(0, 0, 4)
	m.Set(1, 1, 4)
	m.Set(1, 0, 1)
	if err := m.Factor(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Set after Factor did not panic")
		}
	}()
	m.Set(0, 0, 5)
}

func TestPoissonSolverSmallest(t *testing.T) {
	// N = 3: one unknown. 4x = h²b + (4 boundary neighbours).
	s := NewPoissonSolver(3)
	x, b := grid.New(3), grid.New(3)
	x.Set(0, 1, 1)
	x.Set(2, 1, 2)
	x.Set(1, 0, 3)
	x.Set(1, 2, 4)
	b.Set(1, 1, 8)
	h := 0.5
	s.Solve(x, b, h)
	want := (h*h*8 + 1 + 2 + 3 + 4) / 4
	if math.Abs(x.At(1, 1)-want) > 1e-12 {
		t.Fatalf("x = %v, want %v", x.At(1, 1), want)
	}
}

func TestPoissonSolverZeroResidual(t *testing.T) {
	for _, n := range []int{5, 9, 17, 33} {
		s := NewPoissonSolver(n)
		h := 1.0 / float64(n-1)
		rng := rand.New(rand.NewSource(int64(n)))
		x, b := grid.New(n), grid.New(n)
		grid.FillBoundaryRandom(x, grid.Biased, rng)
		grid.FillRandom(b, grid.Biased, rng)
		s.Solve(x, b, h)
		res := stencil.ResidualNorm(x, b, h)
		scale := grid.L2Interior(b) + 1
		if res > 1e-9*scale {
			t.Fatalf("n=%d: direct residual %v too large (scale %v)", n, res, scale)
		}
	}
}

func TestPoissonSolverMatchesManufactured(t *testing.T) {
	n := 33
	h := 1.0 / float64(n-1)
	u, b := grid.New(n), grid.New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			xx, yy := float64(j)*h, float64(i)*h
			u.Set(i, j, math.Sin(math.Pi*xx)*math.Sin(math.Pi*yy))
			b.Set(i, j, 2*math.Pi*math.Pi*math.Sin(math.Pi*xx)*math.Sin(math.Pi*yy))
		}
	}
	x := grid.New(n)
	NewPoissonSolver(n).Solve(x, b, h)
	err := grid.L2DiffInterior(x, u) / grid.L2Interior(u)
	if err > 1e-3 { // discretization error O(h²)
		t.Fatalf("relative error = %v, want < 1e-3", err)
	}
}

func TestPoissonSolverSizeMismatchPanics(t *testing.T) {
	s := NewPoissonSolver(5)
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	s.Solve(grid.New(7), grid.New(7), 0.1)
}

func TestCacheReusesSolvers(t *testing.T) {
	var c Cache
	a := c.Get(9)
	b := c.Get(9)
	if a != b {
		t.Fatal("Cache returned distinct solvers for same size")
	}
	if c.Get(17) == a {
		t.Fatal("Cache returned same solver for different size")
	}
	if len(c.Sizes()) != 2 {
		t.Fatalf("Sizes() = %v, want 2 entries", c.Sizes())
	}
}

func TestCacheConcurrent(t *testing.T) {
	var c Cache
	sizes := []int{9, 17, 33}
	type got struct {
		n int
		s *PoissonSolver
	}
	const per = 8
	done := make(chan got, per*len(sizes))
	for i := 0; i < per; i++ {
		for _, n := range sizes {
			go func(n int) {
				// Interleave instrumentation reads with factorizations.
				c.Sizes()
				done <- got{n, c.Get(n)}
			}(n)
		}
	}
	first := map[int]*PoissonSolver{}
	for i := 0; i < per*len(sizes); i++ {
		g := <-done
		if f, ok := first[g.n]; !ok {
			first[g.n] = g.s
		} else if f != g.s {
			t.Fatalf("concurrent Get(%d) returned distinct solvers", g.n)
		}
		if g.s.N() != g.n {
			t.Fatalf("Get(%d) returned solver for N=%d", g.n, g.s.N())
		}
	}
	if len(c.Sizes()) != len(sizes) {
		t.Fatalf("Sizes() = %v, want %d completed entries", c.Sizes(), len(sizes))
	}
}

func TestFlopEstimatesScale(t *testing.T) {
	s5, s9 := NewPoissonSolver(5), NewPoissonSolver(9)
	if s9.FactorFlops() <= s5.FactorFlops() || s9.SolveFlops() <= s5.SolveFlops() {
		t.Fatal("flop estimates should grow with size")
	}
	// Factor is O(N⁴): doubling interior side ~16× factor cost.
	ratio := s9.FactorFlops() / s5.FactorFlops()
	if ratio < 8 || ratio > 32 {
		t.Fatalf("factor flop ratio = %v, want ≈16", ratio)
	}
}

// Property: for random SPD band systems, the solution returned by the band
// solver satisfies A·x ≈ b.
func TestBandSolveSatisfiesSystemProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		bw := rng.Intn(n)
		bm, dense := randomSPDBand(rng, n, bw)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()*2 - 1
		}
		if err := bm.Factor(); err != nil {
			return false
		}
		x := append([]float64(nil), b...)
		bm.Solve(x)
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += dense[i][j] * x[j]
			}
			if math.Abs(s-b[i]) > 1e-8*(1+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the Poisson direct solve is linear in the right-hand side.
func TestPoissonLinearityProperty(t *testing.T) {
	s := NewPoissonSolver(9)
	h := 1.0 / 8
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b1, b2, bs := grid.New(9), grid.New(9), grid.New(9)
		grid.FillRandom(b1, grid.Unbiased, rng)
		grid.FillRandom(b2, grid.Unbiased, rng)
		for i, v := range b1.Data() {
			bs.Data()[i] = v + b2.Data()[i]
		}
		x1, x2, xs := grid.New(9), grid.New(9), grid.New(9)
		s.Solve(x1, b1, h)
		s.Solve(x2, b2, h)
		s.Solve(xs, bs, h)
		for i := range xs.Data() {
			want := x1.Data()[i] + x2.Data()[i]
			if math.Abs(xs.Data()[i]-want) > 1e-6*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
