package direct

import (
	"math"
	"math/rand"
	"testing"

	"pbmg/internal/grid"
	"pbmg/internal/stencil"
)

// TestStencilSolver3DSolvesExactly: solve a random 3D problem directly,
// then verify T·x = b on the interior by applying the 7-point operator.
func TestStencilSolver3DSolvesExactly(t *testing.T) {
	for _, n := range []int{5, 9, 17} {
		op := stencil.Poisson3D()
		s := NewStencilSolver(op, n)
		if s.N() != n {
			t.Fatalf("N() = %d", s.N())
		}
		rng := rand.New(rand.NewSource(int64(n)))
		x, b := grid.New3(n), grid.New3(n)
		bd := b.Data()
		for i := range bd {
			bd[i] = rng.Float64()*2 - 1
		}
		// Random Dirichlet boundary.
		grid.FillBoundaryRandom(x, grid.Unbiased, rng)
		x.Scale(1.0 / (1 << 32)) // keep magnitudes O(1)
		h := 1.0 / float64(n-1)
		s.Solve(x, b, h)

		y := grid.New3(n)
		op.Apply(nil, y, x, h)
		// Apply zeroes the boundary contribution, so compare against the
		// residual helper, which accounts for boundary neighbours.
		if r := op.ResidualNorm(nil, x, b, h); r > 1e-8 {
			t.Fatalf("N=%d: direct solve residual %v", n, r)
		}
	}
}

// TestInteriorSolverRoutes3D: the factory routes 3D operators through the
// general band assembly, and 2D Poisson stays on the specialized path.
func TestInteriorSolverRoutes3D(t *testing.T) {
	if _, ok := NewInteriorSolver(stencil.Poisson3D(), 9).(*StencilSolver); !ok {
		t.Fatal("3D operator not routed to StencilSolver")
	}
	if _, ok := NewInteriorSolver(nil, 9).(*PoissonSolver); !ok {
		t.Fatal("nil operator not routed to PoissonSolver")
	}
}

// TestDirect3DSizeCap: factorizations beyond Direct3DMaxN must fail loudly
// instead of silently exhausting memory.
func TestDirect3DSizeCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized 3D factorization did not panic")
		}
	}()
	NewStencilSolver(stencil.Poisson3D(), Direct3DMaxN*2-1)
}

// TestCacheSeparates2DAnd3D: the factor cache must never hand a 2D
// factorization to a 3D request of the same side, or vice versa.
func TestCacheSeparates2DAnd3D(t *testing.T) {
	var c Cache
	s2 := c.GetOp(stencil.Poisson(), 9)
	s3 := c.GetOp(stencil.Poisson3D(), 9)
	if s2 == s3 {
		t.Fatal("cache collided 2D and 3D solvers")
	}
	if _, ok := s2.(*PoissonSolver); !ok {
		t.Fatal("2D entry lost its specialized type")
	}
	if _, ok := s3.(*StencilSolver); !ok {
		t.Fatal("3D entry lost its general type")
	}
	if c.GetOp(stencil.Poisson3D(), 9) != s3 {
		t.Fatal("3D factorization not memoized")
	}
}

// TestStencilSolver3DFlops: the reported cost estimates scale with the 3D
// band shape (m³ unknowns, bandwidth m²).
func TestStencilSolver3DFlops(t *testing.T) {
	s := NewStencilSolver(stencil.Poisson3D(), 9)
	m := 7.0
	if got, want := s.FactorFlops(), m*m*m*(m*m)*(m*m); math.Abs(got-want)/want > 0.01 {
		t.Fatalf("FactorFlops = %v, want ≈ %v", got, want)
	}
}
