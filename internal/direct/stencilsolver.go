package direct

import (
	"fmt"

	"pbmg/internal/grid"
	"pbmg/internal/stencil"
)

// InteriorSolver is a factored direct solver for the interior of a 5-point
// operator problem T·x = b with Dirichlet boundary values taken from x.
// Both PoissonSolver (the specialized constant-coefficient path) and
// StencilSolver (the general operator-family path) implement it; after
// construction both are immutable and safe for concurrent Solve calls.
type InteriorSolver interface {
	N() int
	Solve(x, b *grid.Grid, h float64)
	FactorFlops() float64
	SolveFlops() float64
}

// NewInteriorSolver factors the interior operator of op at grid side n,
// routing the constant-coefficient Laplacian to the specialized
// PoissonSolver and every other family through general band assembly.
func NewInteriorSolver(op *stencil.Operator, n int) InteriorSolver {
	if op == nil || op.Family() == stencil.FamilyPoisson {
		return NewPoissonSolver(n)
	}
	return NewStencilSolver(op, n)
}

// StencilSolver is the band-Cholesky solver for a general 5-point operator
// family: the interior matrix is assembled from the operator's face
// coefficients (diagonal = coefficient sum, off-diagonals = −face
// coefficient; the h² scaling is applied to the right-hand side at solve
// time, matching PoissonSolver's convention). Anisotropic and
// variable-coefficient operators with positive coefficients yield symmetric
// positive-definite matrices, so the factorization cannot fail for valid
// operators.
type StencilSolver struct {
	n  int // grid side
	m  int // interior side n−2
	op *stencil.Operator
	a  *BandMatrix
}

// NewStencilSolver assembles and factors the interior operator of op at
// grid side n ≥ 3. For variable-coefficient operators, op must be resolved
// to size n (see Operator.At).
func NewStencilSolver(op *stencil.Operator, n int) *StencilSolver {
	if n < 3 {
		panic(fmt.Sprintf("direct: grid side %d too small", n))
	}
	op = op.At(n)
	m := n - 2
	a := NewBandMatrix(m*m, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			cn, cs, cw, ce := op.FaceCoefs(i+1, j+1)
			k := i*m + j
			a.Set(k, k, cn+cs+cw+ce)
			if j > 0 {
				a.Set(k, k-1, -cw)
			}
			if i > 0 {
				a.Set(k, k-m, -cn)
			}
		}
	}
	if err := a.Factor(); err != nil {
		// Positive face coefficients make the matrix an SPD M-matrix by
		// construction; failure here means an invalid operator slipped past
		// the family constructors.
		panic(fmt.Sprintf("direct: operator %v failed to factor: %v", op, err))
	}
	return &StencilSolver{n: n, m: m, op: op, a: a}
}

// N returns the grid side length the solver was built for.
func (s *StencilSolver) N() int { return s.n }

// Operator returns the operator the solver was assembled from.
func (s *StencilSolver) Operator() *stencil.Operator { return s.op }

// Solve overwrites the interior of x with the exact solution of T·x = b,
// using x's boundary entries as Dirichlet data. h is the mesh spacing.
func (s *StencilSolver) Solve(x, b *grid.Grid, h float64) {
	if x.N() != s.n || b.N() != s.n {
		panic(fmt.Sprintf("direct: Solve size mismatch: solver %d, x %d, b %d", s.n, x.N(), b.N()))
	}
	m := s.m
	h2 := h * h
	rhs := make([]float64, m*m)
	for i := 0; i < m; i++ {
		gi := i + 1
		br := b.Row(gi)
		for j := 0; j < m; j++ {
			gj := j + 1
			cn, cs, cw, ce := s.op.FaceCoefs(gi, gj)
			v := h2 * br[gj]
			// Move known boundary neighbours to the right-hand side with
			// their stencil weights.
			if i == 0 {
				v += cn * x.At(0, gj)
			}
			if i == m-1 {
				v += cs * x.At(s.n-1, gj)
			}
			if j == 0 {
				v += cw * x.At(gi, 0)
			}
			if j == m-1 {
				v += ce * x.At(gi, s.n-1)
			}
			rhs[i*m+j] = v
		}
	}
	s.a.Solve(rhs)
	for i := 0; i < m; i++ {
		xr := x.Row(i + 1)
		copy(xr[1:1+m], rhs[i*m:(i+1)*m])
	}
}

// FactorFlops reports the (estimated) cost of the one-time factorization.
func (s *StencilSolver) FactorFlops() float64 { return s.a.FactorFlops() }

// SolveFlops reports the (estimated) cost of one Solve call.
func (s *StencilSolver) SolveFlops() float64 { return s.a.SolveFlops() }
