package direct

import (
	"fmt"

	"pbmg/internal/grid"
	"pbmg/internal/stencil"
)

// InteriorSolver is a factored direct solver for the interior of a stencil
// operator problem T·x = b with Dirichlet boundary values taken from x.
// Both PoissonSolver (the specialized 2D constant-coefficient path) and
// StencilSolver (the general operator-family path, 2D and 3D) implement it;
// after construction both are immutable and safe for concurrent Solve calls.
type InteriorSolver interface {
	N() int
	Solve(x, b *grid.Grid, h float64)
	FactorFlops() float64
	SolveFlops() float64
}

// Direct3DMaxN caps the grid side of 3D direct factorizations. The 3D
// interior matrix has m³ unknowns (m = N−2) and half-bandwidth m², so band
// Cholesky storage grows like m⁵ doubles: ~6 MB at N=17, ~230 MB at N=33,
// and ~7 GB at N=65 — past N=33 a factorization would silently thrash or
// OOM, which is worse than failing loudly. Multigrid only ever solves
// directly at coarse levels, so the cap never binds on the cycle path.
const Direct3DMaxN = 33

// NewInteriorSolver factors the interior operator of op at grid side n,
// routing the 2D constant-coefficient Laplacian to the specialized
// PoissonSolver and every other family — including the 3D 7-point
// Laplacian — through general band assembly.
func NewInteriorSolver(op *stencil.Operator, n int) InteriorSolver {
	if op == nil || op.Family() == stencil.FamilyPoisson {
		return NewPoissonSolver(n)
	}
	return NewStencilSolver(op, n)
}

// StencilSolver is the band-Cholesky solver for a general stencil operator
// family. In 2D the interior matrix is assembled from the operator's face
// coefficients (diagonal = coefficient sum, off-diagonals = −face
// coefficient); in 3D it is the constant 7-point Laplacian (diagonal 6,
// off-diagonals −1) with half-bandwidth m² = (N−2)². The h² scaling is
// applied to the right-hand side at solve time, matching PoissonSolver's
// convention. Anisotropic and variable-coefficient operators with positive
// coefficients — and the 3D Laplacian — yield symmetric positive-definite
// matrices, so the factorization cannot fail for valid operators.
type StencilSolver struct {
	n   int // grid side
	m   int // interior side n−2
	dim int // spatial dimension of the operator (2 or 3)
	op  *stencil.Operator
	a   *BandMatrix
}

// NewStencilSolver assembles and factors the interior operator of op at
// grid side n ≥ 3. For variable-coefficient operators, op must be resolved
// to size n (see Operator.At). 3D operators are capped at Direct3DMaxN.
func NewStencilSolver(op *stencil.Operator, n int) *StencilSolver {
	if n < 3 {
		panic(fmt.Sprintf("direct: grid side %d too small", n))
	}
	op = op.At(n)
	m := n - 2
	s := &StencilSolver{n: n, m: m, dim: op.Dim(), op: op}
	if s.dim == 3 {
		if op.Family() != stencil.FamilyPoisson3D {
			// The 3D assembly below hardcodes the isotropic 7-point stencil;
			// a future 3D family with different weights must extend it, not
			// silently factor the wrong matrix.
			panic(fmt.Sprintf("direct: no 3D band assembly for operator %v", op))
		}
		if n > Direct3DMaxN {
			panic(fmt.Sprintf(
				"direct: 3D grid side %d exceeds the direct-solve cap %d (band storage grows like N⁵; use multigrid at this size)",
				n, Direct3DMaxN))
		}
		a := NewBandMatrix(m*m*m, m*m)
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				for k := 0; k < m; k++ {
					u := (i*m+j)*m + k
					a.Set(u, u, 6)
					if k > 0 {
						a.Set(u, u-1, -1)
					}
					if j > 0 {
						a.Set(u, u-m, -1)
					}
					if i > 0 {
						a.Set(u, u-m*m, -1)
					}
				}
			}
		}
		s.a = a
	} else {
		a := NewBandMatrix(m*m, m)
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				cn, cs, cw, ce := op.FaceCoefs(i+1, j+1)
				k := i*m + j
				a.Set(k, k, cn+cs+cw+ce)
				if j > 0 {
					a.Set(k, k-1, -cw)
				}
				if i > 0 {
					a.Set(k, k-m, -cn)
				}
			}
		}
		s.a = a
	}
	if err := s.a.Factor(); err != nil {
		// Positive face coefficients make the matrix an SPD M-matrix by
		// construction; failure here means an invalid operator slipped past
		// the family constructors.
		panic(fmt.Sprintf("direct: operator %v failed to factor: %v", op, err))
	}
	return s
}

// N returns the grid side length the solver was built for.
func (s *StencilSolver) N() int { return s.n }

// Operator returns the operator the solver was assembled from.
func (s *StencilSolver) Operator() *stencil.Operator { return s.op }

// Solve overwrites the interior of x with the exact solution of T·x = b,
// using x's boundary entries as Dirichlet data. h is the mesh spacing.
func (s *StencilSolver) Solve(x, b *grid.Grid, h float64) {
	if x.N() != s.n || b.N() != s.n {
		panic(fmt.Sprintf("direct: Solve size mismatch: solver %d, x %d, b %d", s.n, x.N(), b.N()))
	}
	if s.dim == 3 {
		s.solve3(x, b, h)
		return
	}
	m := s.m
	h2 := h * h
	rhs := make([]float64, m*m)
	for i := 0; i < m; i++ {
		gi := i + 1
		br := b.Row(gi)
		for j := 0; j < m; j++ {
			gj := j + 1
			cn, cs, cw, ce := s.op.FaceCoefs(gi, gj)
			v := h2 * br[gj]
			// Move known boundary neighbours to the right-hand side with
			// their stencil weights.
			if i == 0 {
				v += cn * x.At(0, gj)
			}
			if i == m-1 {
				v += cs * x.At(s.n-1, gj)
			}
			if j == 0 {
				v += cw * x.At(gi, 0)
			}
			if j == m-1 {
				v += ce * x.At(gi, s.n-1)
			}
			rhs[i*m+j] = v
		}
	}
	s.a.Solve(rhs)
	for i := 0; i < m; i++ {
		xr := x.Row(i + 1)
		copy(xr[1:1+m], rhs[i*m:(i+1)*m])
	}
}

// solve3 is the 3D solve path: boundary neighbours of the 7-point stencil
// all carry weight 1, so they move to the right-hand side unscaled.
func (s *StencilSolver) solve3(x, b *grid.Grid, h float64) {
	m := s.m
	h2 := h * h
	rhs := make([]float64, m*m*m)
	for i := 0; i < m; i++ {
		gi := i + 1
		for j := 0; j < m; j++ {
			gj := j + 1
			br := b.Row3(gi, gj)
			base := (i*m + j) * m
			for k := 0; k < m; k++ {
				gk := k + 1
				v := h2 * br[gk]
				if i == 0 {
					v += x.At3(0, gj, gk)
				}
				if i == m-1 {
					v += x.At3(s.n-1, gj, gk)
				}
				if j == 0 {
					v += x.At3(gi, 0, gk)
				}
				if j == m-1 {
					v += x.At3(gi, s.n-1, gk)
				}
				if k == 0 {
					v += x.At3(gi, gj, 0)
				}
				if k == m-1 {
					v += x.At3(gi, gj, s.n-1)
				}
				rhs[base+k] = v
			}
		}
	}
	s.a.Solve(rhs)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			xr := x.Row3(i+1, j+1)
			base := (i*m + j) * m
			copy(xr[1:1+m], rhs[base:base+m])
		}
	}
}

// FactorFlops reports the (estimated) cost of the one-time factorization.
func (s *StencilSolver) FactorFlops() float64 { return s.a.FactorFlops() }

// SolveFlops reports the (estimated) cost of one Solve call.
func (s *StencilSolver) SolveFlops() float64 { return s.a.SolveFlops() }
