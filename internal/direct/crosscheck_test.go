package direct

import (
	"math"
	"math/rand"
	"testing"

	"pbmg/internal/grid"
	"pbmg/internal/stencil"
)

// randomProblem returns random x (boundary + initial interior, which Solve
// overwrites) and b grids with entries in [−1, 1].
func randomProblem(n int, rng *rand.Rand) (x, b *grid.Grid) {
	x, b = grid.New(n), grid.New(n)
	for i := 0; i < n*n; i++ {
		x.Data()[i] = 2*rng.Float64() - 1
		b.Data()[i] = 2*rng.Float64() - 1
	}
	return x, b
}

// TestStencilSolverMatchesPoissonSolver: for the Poisson operator, the
// general-stencil band assembly must agree with the specialized
// constant-coefficient path to near machine precision — both factor the same
// SPD matrix, so only rounding in assembly order can differ.
func TestStencilSolverMatchesPoissonSolver(t *testing.T) {
	for _, n := range []int{5, 9, 17, 33} {
		h := 1.0 / float64(n-1)
		rng := rand.New(rand.NewSource(int64(n)))
		xRef, b := randomProblem(n, rng)
		xGen := xRef.Clone()

		NewPoissonSolver(n).Solve(xRef, b, h)
		NewStencilSolver(stencil.Poisson(), n).Solve(xGen, b, h)

		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				d := math.Abs(xRef.At(i, j) - xGen.At(i, j))
				if d > 1e-12*math.Max(1, math.Abs(xRef.At(i, j))) {
					t.Fatalf("n=%d: paths differ at (%d,%d) by %g", n, i, j, d)
				}
			}
		}
	}
}

// TestNewInteriorSolverRoutesPoisson: the factory must keep the fast
// constant-coefficient path for the Poisson family.
func TestNewInteriorSolverRoutesPoisson(t *testing.T) {
	if _, ok := NewInteriorSolver(nil, 9).(*PoissonSolver); !ok {
		t.Fatal("nil operator should route to PoissonSolver")
	}
	if _, ok := NewInteriorSolver(stencil.Poisson(), 9).(*PoissonSolver); !ok {
		t.Fatal("Poisson operator should route to PoissonSolver")
	}
	if _, ok := NewInteriorSolver(stencil.Anisotropic(0.5), 9).(*StencilSolver); !ok {
		t.Fatal("anisotropic operator should route to StencilSolver")
	}
}

// TestStencilSolverSolvesOperator: for every family, the direct solution
// must zero the operator's residual (assembly cross-checked against the
// iterative kernels, which are written independently).
func TestStencilSolverSolvesOperator(t *testing.T) {
	n := 17
	h := 1.0 / float64(n-1)
	rng := rand.New(rand.NewSource(7))
	coef := grid.New(n)
	for i := 0; i < n*n; i++ {
		coef.Data()[i] = math.Exp(2 * (2*rng.Float64() - 1))
	}
	for _, op := range []*stencil.Operator{
		stencil.Anisotropic(0.01),
		stencil.Anisotropic(100),
		stencil.VarCoefOperator(coef, 0),
	} {
		x, b := randomProblem(n, rng)
		NewStencilSolver(op, n).Solve(x, b, h)
		scale := grid.L2Interior(b) + 1
		if r := op.ResidualNorm(nil, x, b, h); r > 1e-9*scale {
			t.Fatalf("%v: direct solution leaves residual %g (scale %g)", op, r, scale)
		}
	}
}

// TestCacheKeysByOperator: one cache must hold independent factorizations
// per operator at the same size, sharing the Poisson entry between nil and
// the Poisson operator.
func TestCacheKeysByOperator(t *testing.T) {
	var c Cache
	p1 := c.Get(9)
	p2 := c.GetOp(stencil.Poisson(), 9)
	if p1 != p2 {
		t.Fatal("nil and Poisson operator should share one factorization")
	}
	aniso := stencil.Anisotropic(0.25)
	a1 := c.GetOp(aniso, 9)
	if _, ok := a1.(*StencilSolver); !ok {
		t.Fatal("anisotropic entry should be a StencilSolver")
	}
	if a2 := c.GetOp(aniso, 9); a1 != a2 {
		t.Fatal("same operator and size should hit the cache")
	}
	if len(c.Sizes()) != 1 || c.Sizes()[0] != 9 {
		t.Fatalf("Sizes() = %v, want [9]", c.Sizes())
	}
}
