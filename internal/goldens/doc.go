// Package goldens holds the convergence-regression suite for the operator
// families: for every (family, level, accuracy target) cell it records, in
// testdata/goldens.json, the operation counts of the tuned FULL-MULTIGRID
// solve and the accuracy it achieved on a fixed held-out problem, under the
// deterministic trace-based cost model.
//
// The tests assert two things about the current code:
//
//  1. Correctness floor: the tuned solver still reaches every accuracy
//     target on the held-out instance (achieved ≥ target, strictly).
//  2. Work band: the operation counts stay within a tolerance band of the
//     recorded goldens, so a change that silently doubles the smoothing work
//     or collapses the tuned tables to "always direct" fails loudly, while
//     benign floating-point drift across platforms does not.
//
// Regenerate the goldens after an intentional convergence change with:
//
//	go test ./internal/goldens -run TestGoldenConvergence -update
package goldens
