package goldens

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"pbmg/internal/arch"
	"pbmg/internal/core"
	"pbmg/internal/grid"
	"pbmg/internal/mg"
	"pbmg/internal/problem"
	"pbmg/internal/refsol"
	"pbmg/internal/stencil"
)

var update = flag.Bool("update", false, "rewrite testdata/goldens.json from the current code")

// The suite pins the trace-based cost model and training seed so the tuned
// tables — and hence the recorded work — are deterministic up to
// floating-point convergence drift, which the tolerance band absorbs.
const (
	goldenMachine  = "intel-harpertown"
	goldenSeed     = 1
	goldenTestSeed = 12345 // held-out problem, distinct from training seeds
)

// families under regression lockdown, each with its own tuned/measured
// level range. The ε = 0.01 anisotropic entry is one acceptance case:
// strong anisotropy defeats point smoothing, so its tuned table must differ
// structurally from the isotropic one. The poisson level-8 (N=257) and
// poisson3d level-6 (N=65) cells put the fused-upstroke and color-split
// sweep paths under end-to-end lockdown at the sizes where their gates
// engage; the other 2D families stop at level 7 to keep the suite inside CI
// budgets even under -race.
var families = []struct {
	Name     string
	Family   stencil.Family
	Eps      float64
	MinLevel int
	MaxLevel int
}{
	{"poisson", stencil.FamilyPoisson, 0, 4, 8},
	{"aniso-0.01", stencil.FamilyAnisotropic, 0.01, 4, 7},
	{"varcoef-2", stencil.FamilyVarCoef, 2, 4, 7},
	{"poisson3d", stencil.FamilyPoisson3D, 0, 3, 6},
}

// golden is the recorded work and outcome of one (family, level, accuracy)
// cell.
type golden struct {
	// Sweeps counts relaxations plus shortcut-SOR sweeps across the solve.
	Sweeps int64 `json:"sweeps"`
	// Directs counts band-Cholesky solves (any level).
	Directs int64 `json:"directs"`
	// AccExp is log10 of the achieved accuracy (informational; +Inf for
	// exact direct solves is recorded as 99).
	AccExp float64 `json:"accExp"`
	// Precision is the tuned V plan's storage precision at this cell
	// ("f64", "f32", "mixed"). It is compared exactly: a cell silently
	// flipping precision is a tuning change the goldens must surface, and
	// the op-count tolerance bands are per-precision (reduced-precision
	// convergence drifts more across platforms).
	Precision string `json:"prec,omitempty"`
}

// tuned memoizes one tuning run per family for the whole test binary. The
// three families tune concurrently on first use: each run is independent,
// and the suite must fit a CI timeout even under -race.
var (
	tunedOnce sync.Once
	tunedErr  error
	tunedMap  = map[string]*core.Tuned{}
)

func tuneOne(f stencil.Family, eps float64, maxLevel int) (*core.Tuned, error) {
	m, err := arch.ByName(goldenMachine)
	if err != nil {
		return nil, err
	}
	tuner, err := core.New(core.Config{
		MaxLevel: maxLevel,
		Family:   f,
		Eps:      eps,
		Seed:     goldenSeed,
		Coster:   m,
		// Bound suite time: four training instances and tight iteration
		// caps. Four instances (not two) because the level-8 acc1e5 plan's
		// iteration count must cover the hardest instance it will meet: the
		// tuner records the max iterations any training instance needed, and
		// with fewer instances that max undershoots the held-out problem.
		// The caps shift which candidates are feasible at the hardest cells
		// (nudging slow-converging families toward direct), which is exactly
		// what the recorded goldens lock down.
		TrainingInstances: 4,
		MaxSORIters:       200,
		MaxRecurseIters:   20,
	})
	if err != nil {
		return nil, err
	}
	return tuner.Tune()
}

func tunedFor(t *testing.T, name string) *core.Tuned {
	t.Helper()
	tunedOnce.Do(func() {
		var mu sync.Mutex
		var wg sync.WaitGroup
		for _, fam := range families {
			wg.Add(1)
			go func() {
				defer wg.Done()
				tn, err := tuneOne(fam.Family, fam.Eps, fam.MaxLevel)
				mu.Lock()
				defer mu.Unlock()
				if err != nil && tunedErr == nil {
					tunedErr = fmt.Errorf("tune %s: %w", fam.Name, err)
					return
				}
				tunedMap[fam.Name] = tn
			}()
		}
		wg.Wait()
	})
	if tunedErr != nil {
		t.Fatal(tunedErr)
	}
	tn, ok := tunedMap[name]
	if !ok {
		t.Fatalf("no tuned bundle for %q", name)
	}
	return tn
}

// solveCell runs the tuned FULL-MULTIGRID solve for one cell on the
// held-out problem and returns the measured golden plus the achieved
// accuracy.
func solveCell(t *testing.T, tn *core.Tuned, level, accIdx int) (golden, float64) {
	t.Helper()
	op, err := tn.OperatorValue()
	if err != nil {
		t.Fatal(err)
	}
	n := grid.SizeOfLevel(level)
	ws := mg.NewWorkspace(nil)
	ws.CacheDirectFactor = true
	ws.Op = op

	rng := rand.New(rand.NewSource(goldenTestSeed + int64(level)))
	p := problem.RandomOp(n, grid.Unbiased, rng, op.At(n))
	refsol.Attach(p, nil)

	var tr mg.OpTrace
	ex := mg.Executor{WS: ws, V: tn.V, F: tn.F, Rec: &tr}
	x := p.NewState()
	ex.SolveFull(x, p.B, accIdx)

	acc := p.AccuracyOf(x)
	accExp := 99.0
	if !math.IsInf(acc, 1) {
		accExp = math.Log10(acc)
	}
	return golden{
		Sweeps:    tr.Total(mg.EvRelax) + tr.Total(mg.EvIterSolve),
		Directs:   tr.Total(mg.EvDirect),
		AccExp:    math.Round(accExp*100) / 100,
		Precision: tn.V.Plan(level, accIdx).Precision.String(),
	}, acc
}

func goldenPath(t *testing.T) string {
	t.Helper()
	return filepath.Join("testdata", "goldens.json")
}

func loadGoldens(t *testing.T) map[string]golden {
	t.Helper()
	data, err := os.ReadFile(goldenPath(t))
	if err != nil {
		t.Fatalf("read goldens (run with -update to create them): %v", err)
	}
	out := map[string]golden{}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("parse goldens: %v", err)
	}
	return out
}

// TestGoldenConvergence is the regression lockdown: every family × level ×
// accuracy cell must (a) reach its target on the held-out instance and
// (b) spend an amount of work inside the tolerance band of the recorded
// golden.
func TestGoldenConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("tunes four operator families")
	}
	measured := map[string]golden{}
	for _, fam := range families {
		tn := tunedFor(t, fam.Name)
		accs := tn.V.Acc
		for level := fam.MinLevel; level <= fam.MaxLevel; level++ {
			for i, target := range accs {
				key := fmt.Sprintf("%s/level%d/acc1e%d", fam.Name, level, int(math.Round(math.Log10(target))))
				g, acc := solveCell(t, tn, level, i)
				measured[key] = g
				if acc < target {
					t.Errorf("%s: achieved accuracy %.3g below target %.3g", key, acc, target)
				}
			}
		}
	}

	if *update {
		// encoding/json marshals map keys in sorted order, so the file is
		// deterministic and diff-friendly as is.
		data, err := json.MarshalIndent(measured, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath(t)), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(t), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d goldens to %s", len(measured), goldenPath(t))
		return
	}

	want := loadGoldens(t)
	for key, g := range measured {
		w, ok := want[key]
		if !ok {
			t.Errorf("%s: no recorded golden (run -update)", key)
			continue
		}
		if g.Precision != w.Precision {
			t.Errorf("%s: tuned precision flipped %s -> %s (run -update if intended)",
				key, w.Precision, g.Precision)
			continue // op counts of different precisions are not comparable
		}
		checkBand(t, key+" sweeps", g.Sweeps, w.Sweeps, g.Precision)
		checkBand(t, key+" directs", g.Directs, w.Directs, g.Precision)
	}
	for key := range want {
		if _, ok := measured[key]; !ok {
			t.Errorf("%s: golden exists but cell was not measured (stale goldens?)", key)
		}
	}
}

// checkBand asserts got stays inside a tolerance band around the recorded
// golden: wide enough for cross-platform floating-point drift to shift an
// iteration count or two, tight enough that doubling the work (or skipping
// it) fails. The band is per-precision — f64 cells get [want/2 − 2,
// 1.5·want + 4]; f32 and mixed cells get double the additive slack, because
// reduced-precision convergence sits closer to the rounding floor and a
// platform's FMA/rounding differences can move more iterations. The
// achieved-accuracy check stays strict for every precision.
func checkBand(t *testing.T, what string, got, want int64, prec string) {
	t.Helper()
	slack := int64(2)
	if prec == "f32" || prec == "mixed" {
		slack = 4
	}
	lo := want/2 - slack
	hi := want + want/2 + 2*slack
	if got < lo || got > hi {
		t.Errorf("%s: %d outside tolerance band [%d, %d] around golden %d", what, got, lo, hi, want)
	}
}

// TestMixedPrecisionFlips locks the tentpole's tuning outcome into the
// goldens: at least one recorded low-accuracy (acc=10) cell must carry a
// reduced-precision plan — the tuner found float32 storage worth it under
// the trace cost model — while every cell, whatever its precision, is held
// to its accuracy target by TestGoldenConvergence's strict achieved check.
func TestMixedPrecisionFlips(t *testing.T) {
	want := loadGoldens(t)
	reduced := 0
	lowAccReduced := 0
	for key, g := range want {
		if g.Precision == "f32" || g.Precision == "mixed" {
			reduced++
			if strings.Contains(key, "/acc1e1") {
				lowAccReduced++
			}
		}
	}
	if reduced == 0 {
		t.Fatal("no recorded golden cell carries an f32 or mixed plan; the precision dimension is not being tuned")
	}
	if lowAccReduced == 0 {
		t.Error("no acc=10 golden cell flipped to reduced precision, where f32 should win outright")
	}
	t.Logf("%d reduced-precision golden cells (%d at acc=10)", reduced, lowAccReduced)
}

// TestAnisoTableDiffersFromPoisson is the acceptance criterion: tuning the
// ε = 0.01 anisotropic family must produce a V table that differs from the
// isotropic one — anisotropy genuinely changes the optimal algorithm, which
// is the point of per-family tuned tables.
func TestAnisoTableDiffersFromPoisson(t *testing.T) {
	if testing.Short() {
		t.Skip("tunes two operator families")
	}
	pois := tunedFor(t, "poisson")
	aniso := tunedFor(t, "aniso-0.01")
	if reflect.DeepEqual(pois.V.Plans, aniso.V.Plans) {
		t.Fatal("anisotropic tuned V table is identical to the isotropic one")
	}
	if pois.Family != "poisson" || aniso.Family != "aniso" || aniso.Eps != 0.01 {
		t.Fatalf("family provenance not recorded: %q/%g and %q/%g",
			pois.Family, pois.Eps, aniso.Family, aniso.Eps)
	}
}

// TestPoisson3DTableDiffersFromPoisson is the dimension acceptance
// criterion: the 3D dynamic program — measuring under 7-point kernels and
// 3D trace costs — must land on a table that differs from the 2D Poisson
// one over their shared levels.
func TestPoisson3DTableDiffersFromPoisson(t *testing.T) {
	if testing.Short() {
		t.Skip("tunes two operator families")
	}
	pois := tunedFor(t, "poisson")
	p3d := tunedFor(t, "poisson3d")
	if p3d.Family != "poisson3d" || p3d.MaxLevel != 6 {
		t.Fatalf("3D provenance not recorded: %q max level %d", p3d.Family, p3d.MaxLevel)
	}
	shared := p3d.MaxLevel - 1 // table rows cover levels 2..MaxLevel
	if reflect.DeepEqual(pois.V.Plans[:shared], p3d.V.Plans) {
		t.Fatal("3D tuned V table is identical to the 2D one over shared levels")
	}
}

// TestTunedConfigRoundTripsFamily: saving and loading a family-tuned bundle
// preserves the operator identity.
func TestTunedConfigRoundTripsFamily(t *testing.T) {
	if testing.Short() {
		t.Skip("tunes an operator family")
	}
	tn := tunedFor(t, "aniso-0.01")
	path := filepath.Join(t.TempDir(), "aniso.json")
	if err := tn.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := core.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := back.FamilyValue()
	if err != nil || f != stencil.FamilyAnisotropic || back.Eps != 0.01 {
		t.Fatalf("round trip lost family: %v, eps %g, err %v", f, back.Eps, err)
	}
	op, err := back.OperatorValue()
	if err != nil || op.Family() != stencil.FamilyAnisotropic || op.Eps() != 0.01 {
		t.Fatalf("operator reconstruction failed: %v, %v", op, err)
	}
}
