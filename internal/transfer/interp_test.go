package transfer

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"pbmg/internal/grid"
	"pbmg/internal/sched"
)

// The row providers (InterpRow/InterpRow3) and the scratch-free
// InterpolateAddFused are rearrangements of Interpolate/InterpolateAdd built
// on the same row helpers, so their outputs are bit-identical to the bulk
// kernels — the contract the fused upstroke kernels in internal/stencil rely
// on.

func randomGridDim(dim, n int, rng *rand.Rand) *grid.Grid {
	g := grid.NewDim(dim, n)
	grid.FillRandom(g, grid.Unbiased, rng)
	return g
}

func TestInterpRowMatchesInterpolate(t *testing.T) {
	for _, dim := range []int{2, 3} {
		nc := 17
		if dim == 3 {
			nc = 9
		}
		nf := 2*nc - 1
		t.Run(fmt.Sprintf("dim%d", dim), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(dim) + 5))
			coarse := randomGridDim(dim, nc, rng)
			fine := grid.NewDim(dim, nf)
			Interpolate(nil, fine, coarse)

			buf := make([]float64, nf)
			tmp := make([]float64, nf)
			if dim == 3 {
				for fi := 0; fi < nf; fi++ {
					for fj := 0; fj < nf; fj++ {
						InterpRow3(buf, tmp, coarse, fi, fj)
						want := fine.Row3(fi, fj)
						for k := 0; k < nf; k++ {
							// Interpolate zeroes the boundary after the fact;
							// the provider reports raw interpolated values,
							// which the fused kernels only read at interior
							// points.
							interior := fi > 0 && fi < nf-1 && fj > 0 && fj < nf-1 && k > 0 && k < nf-1
							if interior && math.Float64bits(want[k]) != math.Float64bits(buf[k]) {
								t.Fatalf("row (%d,%d): value differs at k=%d: %v vs %v", fi, fj, k, want[k], buf[k])
							}
						}
					}
				}
				return
			}
			for fi := 0; fi < nf; fi++ {
				InterpRow(buf, coarse, fi)
				want := fine.Row(fi)
				for j := 1; j < nf-1; j++ {
					if fi == 0 || fi == nf-1 {
						continue
					}
					if math.Float64bits(want[j]) != math.Float64bits(buf[j]) {
						t.Fatalf("row %d: value differs at j=%d: %v vs %v", fi, j, want[j], buf[j])
					}
				}
			}
		})
	}
}

func TestInterpolateAddFusedMatchesOracle(t *testing.T) {
	for _, dim := range []int{2, 3} {
		nc := 33
		if dim == 3 {
			nc = 9
		}
		nf := 2*nc - 1
		t.Run(fmt.Sprintf("dim%d", dim), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(dim) + 17))
			coarse := randomGridDim(dim, nc, rng)
			x0 := randomGridDim(dim, nf, rng)

			want := x0.Clone()
			scratch := grid.NewDim(dim, nf)
			InterpolateAdd(nil, want, coarse, scratch)

			for _, workers := range []int{0, 8} {
				var pool *sched.Pool
				if workers > 0 {
					pool = sched.NewPool(workers)
					defer pool.Close()
				}
				got := x0.Clone()
				InterpolateAddFused(pool, got, coarse)
				wd, gd := want.Data(), got.Data()
				for k := range wd {
					if math.Float64bits(wd[k]) != math.Float64bits(gd[k]) {
						t.Fatalf("workers=%d: value differs at %d: %v vs %v", workers, k, wd[k], gd[k])
					}
				}
			}
		})
	}
}
