package transfer

import (
	"math"
	"math/rand"
	"testing"

	"pbmg/internal/grid"
	"pbmg/internal/sched"
)

// fillTrilinear fills g (3D) with the trilinear function
// f(x,y,z) = 1 + 2x + 3y + 4z sampled on the unit cube.
func fillTrilinear(g *grid.Grid) {
	n := g.N()
	h := 1.0 / float64(n-1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				g.Set3(i, j, k, 1+2*float64(i)*h+3*float64(j)*h+4*float64(k)*h)
			}
		}
	}
}

// TestRestrict3DExactOnTrilinear: full weighting is an average over a
// symmetric stencil, so it reproduces trilinear functions exactly at
// interior coarse points.
func TestRestrict3DExactOnTrilinear(t *testing.T) {
	nf, nc := 9, 5
	fine := grid.New3(nf)
	fillTrilinear(fine)
	coarse := grid.New3(nc)
	Restrict(nil, coarse, fine)
	for i := 1; i < nc-1; i++ {
		for j := 1; j < nc-1; j++ {
			for k := 1; k < nc-1; k++ {
				want := fine.At3(2*i, 2*j, 2*k)
				if got := coarse.At3(i, j, k); math.Abs(got-want) > 1e-12 {
					t.Fatalf("coarse(%d,%d,%d) = %v, want %v", i, j, k, got, want)
				}
			}
		}
	}
	// Coarse boundary is zeroed (residual convention).
	if coarse.At3(0, 2, 2) != 0 {
		t.Fatal("coarse boundary not zeroed")
	}
}

// TestInterpolate3DExactOnTrilinear: trilinear interpolation reproduces
// trilinear functions exactly at interior fine points.
func TestInterpolate3DExactOnTrilinear(t *testing.T) {
	nf, nc := 9, 5
	coarse := grid.New3(nc)
	fillTrilinear(coarse)
	// Rescale the coarse samples: coarse point i sits at 2i·h_f, so filling
	// with the coarse grid's own spacing matches the fine function exactly.
	fine := grid.New3(nf)
	Interpolate(nil, fine, coarse)
	want := grid.New3(nf)
	fillTrilinear(want)
	// Coarse spacing is twice fine spacing; fillTrilinear(coarse) sampled
	// f at the same physical points, so interpolation must agree with
	// fillTrilinear(fine) on the interior.
	for i := 1; i < nf-1; i++ {
		for j := 1; j < nf-1; j++ {
			for k := 1; k < nf-1; k++ {
				if got, w := fine.At3(i, j, k), want.At3(i, j, k); math.Abs(got-w) > 1e-12 {
					t.Fatalf("fine(%d,%d,%d) = %v, want %v", i, j, k, got, w)
				}
			}
		}
	}
	if fine.At3(0, 4, 4) != 0 {
		t.Fatal("fine boundary not zeroed")
	}
}

// TestRestrict3DIsScaledTransposeOfInterpolate: the variational pairing
// R = (1/8)·Pᵀ in 3D, checked as ⟨R r, c⟩ = (1/8)·⟨r, P c⟩ for random
// interior-supported r and c.
func TestRestrict3DIsScaledTransposeOfInterpolate(t *testing.T) {
	nf, nc := 17, 9
	rng := rand.New(rand.NewSource(3))
	r := grid.New3(nf)
	for i := 1; i < nf-1; i++ {
		for j := 1; j < nf-1; j++ {
			for k := 1; k < nf-1; k++ {
				r.Set3(i, j, k, rng.Float64()*2-1)
			}
		}
	}
	c := grid.New3(nc)
	for i := 1; i < nc-1; i++ {
		for j := 1; j < nc-1; j++ {
			for k := 1; k < nc-1; k++ {
				c.Set3(i, j, k, rng.Float64()*2-1)
			}
		}
	}
	rc := grid.New3(nc)
	Restrict(nil, rc, r)
	pc := grid.New3(nf)
	Interpolate(nil, pc, c)

	dot := func(a, b *grid.Grid) float64 {
		var s float64
		ad, bd := a.Data(), b.Data()
		for i := range ad {
			s += ad[i] * bd[i]
		}
		return s
	}
	lhs := dot(rc, c)
	rhs := dot(r, pc) / 8
	if math.Abs(lhs-rhs) > 1e-10*math.Max(1, math.Abs(lhs)) {
		t.Fatalf("⟨Rr,c⟩ = %v but ⟨r,Pc⟩/8 = %v", lhs, rhs)
	}
}

// TestTransfer3DParallelMatchesSerial: chunked plane parallelism must be
// bit-identical to the serial sweep.
func TestTransfer3DParallelMatchesSerial(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	nf, nc := 65, 33 // above the 3D plane threshold
	rng := rand.New(rand.NewSource(4))
	fine := grid.New3(nf)
	d := fine.Data()
	for i := range d {
		d[i] = rng.Float64()*2 - 1
	}
	cs, cp := grid.New3(nc), grid.New3(nc)
	Restrict(nil, cs, fine)
	Restrict(pool, cp, fine)
	assertSame3(t, cs, cp, "Restrict")

	fs, fp := grid.New3(nf), grid.New3(nf)
	Interpolate(nil, fs, cs)
	Interpolate(pool, fp, cs)
	assertSame3(t, fs, fp, "Interpolate")
}

func assertSame3(t *testing.T, a, b *grid.Grid, what string) {
	t.Helper()
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		if math.Float64bits(ad[i]) != math.Float64bits(bd[i]) {
			t.Fatalf("%s: serial and parallel differ at flat index %d: %v vs %v", what, i, ad[i], bd[i])
		}
	}
}

// TestRestrictCoefRejects3D locks down the satellite guard: the 2D-only
// coefficient restriction must fail loudly on 3D grids.
func TestRestrictCoefRejects3D(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RestrictCoef accepted 3D grids")
		}
	}()
	RestrictCoef(grid.New3(5), grid.New3(9))
}

// TestTransferRejectsMixedDimensions: restriction between a 2D and a 3D
// grid is a bug, not a conversion.
func TestTransferRejectsMixedDimensions(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic on mixed dimensions", name)
			}
		}()
		f()
	}
	mustPanic("Restrict", func() { Restrict(nil, grid.New(5), grid.New3(9)) })
	mustPanic("Interpolate", func() { Interpolate(nil, grid.New3(9), grid.New(5)) })
}
