// Package transfer implements the inter-grid operators used by multigrid:
// full-weighting restriction (fine → coarse) and bilinear interpolation
// (coarse → fine). Grids move between sizes N = 2^k + 1 and N' = 2^(k−1)+1;
// coarse point (I, J) sits on top of fine point (2I, 2J).
//
// Both operators treat boundaries as homogeneous Dirichlet: multigrid
// applies them to residual/correction grids, whose boundary error is zero.
// Full weighting is (1/4)·Pᵀ where P is bilinear interpolation, the classic
// variationally-consistent pairing.
package transfer

import (
	"fmt"

	"pbmg/internal/grid"
	"pbmg/internal/sched"
)

const parallelThreshold = 128 // coarse rows below this run serially

// Restrict applies full-weighting restriction of the fine grid into coarse:
//
//	c[I,J] = (4·f[2I,2J] + 2·(N,S,E,W neighbours) + corner neighbours) / 16
//
// for interior coarse points; the coarse boundary is zeroed. Sizes must be
// consecutive multigrid levels.
func Restrict(pool *sched.Pool, coarse, fine *grid.Grid) {
	nc, nf := coarse.N(), fine.N()
	if nf != 2*nc-1 {
		panic(fmt.Sprintf("transfer: Restrict size mismatch fine=%d coarse=%d", nf, nc))
	}
	coarse.ZeroBoundary()
	body := func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			fi := 2 * ci
			cr := coarse.Row(ci)
			mid := fine.Row(fi)
			up := fine.Row(fi - 1)
			down := fine.Row(fi + 1)
			for cj := 1; cj < nc-1; cj++ {
				fj := 2 * cj
				cr[cj] = (4*mid[fj] +
					2*(up[fj]+down[fj]+mid[fj-1]+mid[fj+1]) +
					up[fj-1] + up[fj+1] + down[fj-1] + down[fj+1]) * (1.0 / 16.0)
			}
		}
	}
	if pool == nil || pool.Workers() == 1 || nc < parallelThreshold {
		body(1, nc-1)
		return
	}
	pool.ParallelFor(1, nc-1, 0, body)
}

// Interpolate applies bilinear interpolation of the coarse grid into fine:
// coincident fine points copy the coarse value, edge points average two
// coarse neighbours, and cell centers average four. The fine boundary is
// zeroed (corrections carry no boundary error).
func Interpolate(pool *sched.Pool, fine, coarse *grid.Grid) {
	nc, nf := coarse.N(), fine.N()
	if nf != 2*nc-1 {
		panic(fmt.Sprintf("transfer: Interpolate size mismatch fine=%d coarse=%d", nf, nc))
	}
	fine.ZeroBoundary()
	// Each coarse row ci owns fine rows 2ci and 2ci+1 (the latter only when
	// a coarse row ci+1 exists), so parallel chunks write disjoint rows.
	body := func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			fi := 2 * ci
			cr := coarse.Row(ci)
			fr := fine.Row(fi)
			// Even fine row: copy / horizontal average.
			for cj := 0; cj < nc-1; cj++ {
				fj := 2 * cj
				fr[fj] = cr[cj]
				fr[fj+1] = 0.5 * (cr[cj] + cr[cj+1])
			}
			fr[nf-1] = cr[nc-1]
			if ci == nc-1 {
				continue
			}
			// Odd fine row: vertical / four-point average.
			next := coarse.Row(ci + 1)
			fo := fine.Row(fi + 1)
			for cj := 0; cj < nc-1; cj++ {
				fj := 2 * cj
				fo[fj] = 0.5 * (cr[cj] + next[cj])
				fo[fj+1] = 0.25 * (cr[cj] + cr[cj+1] + next[cj] + next[cj+1])
			}
			fo[nf-1] = 0.5 * (cr[nc-1] + next[nc-1])
		}
	}
	if pool == nil || pool.Workers() == 1 || nc < parallelThreshold {
		body(0, nc)
	} else {
		pool.ParallelFor(0, nc, 0, body)
	}
	fine.ZeroBoundary()
}

// InterpolateAdd interpolates coarse into a scratch grid and adds the result
// to x's interior — the coarse-grid correction step. scratch must be a fine
// sized grid and must not alias x.
func InterpolateAdd(pool *sched.Pool, x, coarse, scratch *grid.Grid) {
	Interpolate(pool, scratch, coarse)
	x.AddInterior(scratch)
}

// RestrictCoef restricts a nodal coefficient field to the next-coarser
// level by injection: multigrid nodes coincide across levels (coarse point
// (I, J) sits on fine point (2I, 2J)), so injection is exact re-sampling of
// the underlying continuous field — the standard coefficient re-discretization
// for variable-coefficient operators. Unlike Restrict, the boundary is kept
// (coefficients are field data, not residuals).
func RestrictCoef(coarse, fine *grid.Grid) {
	nc, nf := coarse.N(), fine.N()
	if nf != 2*nc-1 {
		panic(fmt.Sprintf("transfer: RestrictCoef size mismatch fine=%d coarse=%d", nf, nc))
	}
	for ci := 0; ci < nc; ci++ {
		cr := coarse.Row(ci)
		fr := fine.Row(2 * ci)
		for cj := 0; cj < nc; cj++ {
			cr[cj] = fr[2*cj]
		}
	}
}

// RestrictProblem restricts a full problem (not a residual): it computes the
// coarse right-hand side by full weighting and down-samples the boundary of
// x by injection. Used by the full-multigrid estimation phase, where the
// coarse problem keeps the original boundary conditions.
func RestrictProblem(pool *sched.Pool, coarseB, fineB, coarseX, fineX *grid.Grid) {
	Restrict(pool, coarseB, fineB)
	nc := coarseX.N()
	for j := 0; j < nc; j++ {
		coarseX.Set(0, j, fineX.At(0, 2*j))
		coarseX.Set(nc-1, j, fineX.At(2*(nc-1), 2*j))
	}
	for i := 1; i < nc-1; i++ {
		coarseX.Set(i, 0, fineX.At(2*i, 0))
		coarseX.Set(i, nc-1, fineX.At(2*i, 2*(nc-1)))
	}
}
