// Package transfer implements the inter-grid operators used by multigrid:
// full-weighting restriction (fine → coarse) and bilinear (2D) / trilinear
// (3D) interpolation (coarse → fine). Grids move between sizes N = 2^k + 1
// and N' = 2^(k−1)+1; coarse point (I, J[, K]) sits on top of fine point
// (2I, 2J[, 2K]). The public entry points dispatch on Grid.Dim, so cycle
// code is dimension-generic; 2D-only operators (RestrictCoef) reject 3D
// grids with an explicit error instead of silently mis-indexing.
//
// Both operators treat boundaries as homogeneous Dirichlet: multigrid
// applies them to residual/correction grids, whose boundary error is zero.
// Full weighting is (1/2^d)·Pᵀ where P is the d-linear interpolation, the
// classic variationally-consistent pairing in both dimensions.
package transfer

import (
	"fmt"

	"pbmg/internal/grid"
	"pbmg/internal/sched"
)

// Parallelization gates on total points of work (sched.MinParallelPoints),
// the same threshold the stencil kernels use in both dimensions, so a
// transfer and the residual pass feeding it always make the same
// serial-vs-parallel decision.

func checkLevels[T grid.Float](coarse, fine *grid.G[T], what string) {
	nc, nf := coarse.N(), fine.N()
	if nf != 2*nc-1 {
		panic(fmt.Sprintf("transfer: %s size mismatch fine=%d coarse=%d", what, nf, nc))
	}
	if coarse.Dim() != fine.Dim() {
		panic(fmt.Sprintf("transfer: %s dimension mismatch fine=%dD coarse=%dD", what, fine.Dim(), coarse.Dim()))
	}
}

// Restrict applies full-weighting restriction of the fine grid into coarse
// for interior coarse points; the coarse boundary is zeroed. Sizes must be
// consecutive multigrid levels and dimensions must match. In 2D:
//
//	c[I,J] = (4·f[2I,2J] + 2·(edge neighbours) + corner neighbours) / 16
//
// In 3D the weights are the tensor-product extension (8 center, 4 face,
// 2 edge, 1 corner, /64).
func Restrict[T grid.Float](pool *sched.Pool, coarse, fine *grid.G[T]) {
	checkLevels(coarse, fine, "Restrict")
	if fine.Dim() == 3 {
		restrict3(pool, coarse, fine)
		return
	}
	nc := coarse.N()
	coarse.ZeroBoundary()
	body := func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			fi := 2 * ci
			cr := coarse.Row(ci)
			mid := fine.Row(fi)
			up := fine.Row(fi - 1)
			down := fine.Row(fi + 1)
			for cj := 1; cj < nc-1; cj++ {
				fj := 2 * cj
				cr[cj] = (4*mid[fj] +
					2*(up[fj]+down[fj]+mid[fj-1]+mid[fj+1]) +
					up[fj-1] + up[fj+1] + down[fj-1] + down[fj+1]) * (1.0 / 16.0)
			}
		}
	}
	if pool == nil {
		body(1, nc-1)
		return
	}
	pool.ParallelForPoints(1, nc-1, 2*fine.N(), body)
}

// restrict3 is 3D full weighting: the tensor product of the 1D stencil
// [1/4, 1/2, 1/4], giving weight 8 to the coincident fine point, 4 to its 6
// face neighbours, 2 to its 12 edge neighbours, and 1 to its 8 corner
// neighbours, normalized by 64. Parallel chunks own disjoint coarse planes.
func restrict3[T grid.Float](pool *sched.Pool, coarse, fine *grid.G[T]) {
	nc := coarse.N()
	coarse.ZeroBoundary()
	body := func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			fi := 2 * ci
			for cj := 1; cj < nc-1; cj++ {
				fj := 2 * cj
				cr := coarse.Row3(ci, cj)
				// The nine fine rows surrounding (fi, fj): plane offset di,
				// row offset dj.
				var rows [3][3][]T
				for di := -1; di <= 1; di++ {
					for dj := -1; dj <= 1; dj++ {
						rows[di+1][dj+1] = fine.Row3(fi+di, fj+dj)
					}
				}
				for ck := 1; ck < nc-1; ck++ {
					fk := 2 * ck
					var sum T
					for di := 0; di < 3; di++ {
						for dj := 0; dj < 3; dj++ {
							r := rows[di][dj]
							// 1D weights: 2 at offset 0, 1 at ±1; the product
							// of the three axis weights is the 3D weight.
							w := T(weight1D[di] * weight1D[dj])
							sum += w * (2*r[fk] + r[fk-1] + r[fk+1])
						}
					}
					cr[ck] = sum * (1.0 / 64.0)
				}
			}
		}
	}
	if pool == nil {
		body(1, nc-1)
		return
	}
	pool.ParallelForPoints(1, nc-1, 2*fine.N()*fine.N(), body)
}

// weight1D is the unnormalized 1D full-weighting stencil [1, 2, 1] indexed
// by offset+1.
var weight1D = [3]int{1, 2, 1}

// RestrictResidual applies 2D full-weighting restriction of a fine-grid
// residual into coarse without the residual grid ever existing: resRow
// computes interior fine residual row fi (1 ≤ fi ≤ nf−2) into a
// caller-provided buffer of length nf, and the driver consumes a rolling
// window of such rows. This fuses the downstroke's residual and
// restriction passes: the intermediate fine-grid write and re-read
// disappear in favor of cache-resident row buffers.
//
// The driver applies the standard 9-point weights directly over a rolling
// three-row window, in Restrict's evaluation order, so the output is
// bit-identical to Restrict applied to a grid filled by resRow. (A
// separable pre-weighting does not pay in 2D — per coarse point it reads
// as many values as the direct form — but cuts the 3D 27-point stencil to
// three reads; see RestrictResidual3.) Each parallel chunk owns disjoint
// coarse rows and recomputes its one boundary-overlap row locally, so the
// output is also bit-identical for any pool and chunking. resRow must be
// safe for concurrent calls with distinct buffers.
func RestrictResidual[T grid.Float](pool *sched.Pool, coarse *grid.G[T], nf int, resRow func(fi int, dst []T)) {
	nc := coarse.N()
	if nf != 2*nc-1 {
		panic(fmt.Sprintf("transfer: RestrictResidual size mismatch fine=%d coarse=%d", nf, nc))
	}
	if coarse.Dim() != 2 {
		panic(fmt.Sprintf("transfer: RestrictResidual needs a 2D coarse grid, got %dD", coarse.Dim()))
	}
	coarse.ZeroBoundary()
	body := func(lo, hi int) {
		up := make([]T, nf)   //mglint:allow hotalloc — per-chunk rolling-window residual row buffer, O(n) per restriction, cache-resident by design (PR 5)
		mid := make([]T, nf)  //mglint:allow hotalloc — per-chunk rolling-window residual row buffer (PR 5)
		down := make([]T, nf) //mglint:allow hotalloc — per-chunk rolling-window residual row buffer (PR 5)
		for ci := lo; ci < hi; ci++ {
			fi := 2 * ci
			if ci == lo {
				resRow(fi-1, up)
			} else {
				// The previous iteration's bottom row fi−1 becomes this
				// iteration's top row; its old top buffer is recycled.
				up, down = down, up
			}
			resRow(fi, mid)
			resRow(fi+1, down)
			cr := coarse.Row(ci)
			for cj := 1; cj < nc-1; cj++ {
				fj := 2 * cj
				cr[cj] = (4*mid[fj] +
					2*(up[fj]+down[fj]+mid[fj-1]+mid[fj+1]) +
					up[fj-1] + up[fj+1] + down[fj-1] + down[fj+1]) * (1.0 / 16.0)
			}
		}
	}
	if pool == nil {
		body(1, nc-1)
		return
	}
	// Each coarse row consumes ~two fresh fine residual rows of work.
	pool.ParallelForPoints(1, nc-1, 2*nf, body)
}

// restrictSep3 is the shared separable 27-point restriction driver: the
// full weighting [1, 2, 1]³/64 applied as a k-compression of fine rows,
// then a j-compression, then an i-combination over a rolling three-plane
// window of pre-weighted nc×nc buffers. mkCompress is called once per
// parallel chunk and returns a function filling kc (nf rows × nc
// k-compressed columns) for fine plane fi — from a grid, or from residual
// values computed on the fly. Chunks own disjoint coarse planes and
// recompute their one boundary-overlap plane locally, so the output is
// bit-identical for any pool and chunking.
func restrictSep3[T grid.Float](pool *sched.Pool, coarse *grid.G[T], nf int, mkCompress func() func(fi int, kc []T)) {
	nc := coarse.N()
	coarse.ZeroBoundary()
	body := func(lo, hi int) {
		compress := mkCompress()
		// kc holds k-compressed rows of the current plane; wu/wm/wd the
		// fully pre-weighted (k and j) planes.
		kc := make([]T, nf*nc) //mglint:allow hotalloc — per-chunk k-compressed row scratch, O(n*nc) per restriction (PR 5 separable restriction)
		wu := make([]T, nc*nc) //mglint:allow hotalloc — per-chunk pre-weighted plane scratch, O(nc²) per restriction (PR 5)
		wm := make([]T, nc*nc) //mglint:allow hotalloc — per-chunk pre-weighted plane scratch (PR 5)
		wd := make([]T, nc*nc) //mglint:allow hotalloc — per-chunk pre-weighted plane scratch (PR 5)
		preweight := func(fi int, w []T) {
			compress(fi, kc)
			for cj := 1; cj < nc-1; cj++ {
				fj := 2 * cj
				a := kc[(fj-1)*nc : fj*nc]
				m := kc[fj*nc : (fj+1)*nc]
				c := kc[(fj+1)*nc : (fj+2)*nc]
				wrow := w[cj*nc : (cj+1)*nc]
				for ck := 1; ck < nc-1; ck++ {
					wrow[ck] = a[ck] + 2*m[ck] + c[ck]
				}
			}
		}
		for ci := lo; ci < hi; ci++ {
			fi := 2 * ci
			if ci == lo {
				preweight(fi-1, wu)
			} else {
				wu, wd = wd, wu
			}
			preweight(fi, wm)
			preweight(fi+1, wd)
			for cj := 1; cj < nc-1; cj++ {
				cr := coarse.Row3(ci, cj)
				u := wu[cj*nc : (cj+1)*nc]
				m := wm[cj*nc : (cj+1)*nc]
				d := wd[cj*nc : (cj+1)*nc]
				for ck := 1; ck < nc-1; ck++ {
					cr[ck] = (u[ck] + 2*m[ck] + d[ck]) * (1.0 / 64.0)
				}
			}
		}
	}
	if pool == nil {
		body(1, nc-1)
		return
	}
	pool.ParallelForPoints(1, nc-1, 2*nf*nf, body)
}

// kCompressRow folds one fine row into its nc k-compressed columns.
func kCompressRow[T grid.Float](row, krow []T, nc int) {
	for ck := 1; ck < nc-1; ck++ {
		fk := 2 * ck
		krow[ck] = row[fk-1] + 2*row[fk] + row[fk+1]
	}
}

// RestrictResidual3 is the 3D counterpart of RestrictResidual: resPlane
// computes interior fine residual plane fi into a caller-provided nf×nf
// buffer, and the driver applies the 27-point full weighting separably
// (restrictSep3). Same contract as the 2D driver, except agreement with
// Restrict is to floating-point association (the separable order differs),
// still bit-identical across pools and chunkings.
func RestrictResidual3[T grid.Float](pool *sched.Pool, coarse *grid.G[T], nf int, resPlane func(fi int, dst []T)) {
	nc := coarse.N()
	if nf != 2*nc-1 {
		panic(fmt.Sprintf("transfer: RestrictResidual3 size mismatch fine=%d coarse=%d", nf, nc))
	}
	if coarse.Dim() != 3 {
		panic(fmt.Sprintf("transfer: RestrictResidual3 needs a 3D coarse grid, got %dD", coarse.Dim()))
	}
	restrictSep3(pool, coarse, nf, func() func(fi int, kc []T) {
		plane := make([]T, nf*nf)     //mglint:allow hotalloc — per-invocation residual plane scratch, O(n²) per restriction
		return func(fi int, kc []T) { //mglint:allow hotalloc — provider closure: one allocation per restriction, not per point
			resPlane(fi, plane)
			for j := 1; j < nf-1; j++ {
				kCompressRow(plane[j*nf:(j+1)*nf], kc[j*nc:(j+1)*nc], nc)
			}
		}
	})
}

// RestrictSep3 applies the separable 27-point full weighting of a
// materialized 3D fine grid into coarse — the fused downstroke's
// restriction consumer, roughly 3× fewer reads per coarse point than the
// direct 27-point Restrict. Boundary entries of fine are never read.
// Agreement with Restrict is to floating-point association; output is
// bit-identical across pools and chunkings.
func RestrictSep3[T grid.Float](pool *sched.Pool, coarse, fine *grid.G[T]) {
	checkLevels(coarse, fine, "RestrictSep3")
	if fine.Dim() != 3 {
		panic(fmt.Sprintf("transfer: RestrictSep3 needs 3D grids, got %dD", fine.Dim()))
	}
	nf, nc := fine.N(), coarse.N()
	restrictSep3(pool, coarse, nf, func() func(fi int, kc []T) {
		return func(fi int, kc []T) { //mglint:allow hotalloc — provider closure: one allocation per restriction, not per point
			for j := 1; j < nf-1; j++ {
				kCompressRow(fine.Row3(fi, j), kc[j*nc:(j+1)*nc], nc)
			}
		}
	})
}

// interpEvenRow writes the fine row sitting on top of coarse row cr: copy at
// coincident points, horizontal 2-point average in between. It is the single
// source of the even-row interpolation arithmetic, shared by Interpolate, the
// 3D tensor product, and the per-row providers (InterpRow/InterpRow3), so
// every consumer agrees bit for bit.
func interpEvenRow[T grid.Float](fr, cr []T, nc int) {
	for cj := 0; cj < nc-1; cj++ {
		fj := 2 * cj
		fr[fj] = cr[cj]
		fr[fj+1] = 0.5 * (cr[cj] + cr[cj+1])
	}
	fr[2*(nc-1)] = cr[nc-1]
}

// interpOddRow writes the fine row between coarse rows cr and next: vertical
// 2-point and diagonal 4-point averages. Shared like interpEvenRow.
func interpOddRow[T grid.Float](fr, cr, next []T, nc int) {
	for cj := 0; cj < nc-1; cj++ {
		fj := 2 * cj
		fr[fj] = 0.5 * (cr[cj] + next[cj])
		fr[fj+1] = 0.25 * (cr[cj] + cr[cj+1] + next[cj] + next[cj+1])
	}
	fr[2*(nc-1)] = 0.5 * (cr[nc-1] + next[nc-1])
}

// InterpRow computes fine row fi (0 ≤ fi ≤ nf−1) of the 2D bilinear
// interpolation of coarse into dst (length ≥ 2·coarse.N()−1), bit-identical
// to the row Interpolate would produce before its boundary zeroing. Fused
// upstroke kernels consume interpolation rows one at a time through this
// provider instead of materializing the fine interpolant in a scratch grid.
func InterpRow[T grid.Float](dst []T, coarse *grid.G[T], fi int) {
	nc := coarse.N()
	if fi%2 == 0 {
		interpEvenRow(dst, coarse.Row(fi/2), nc)
		return
	}
	ci := fi / 2
	interpOddRow(dst, coarse.Row(ci), coarse.Row(ci+1), nc)
}

// InterpRow3 computes row (fi, fj) of the trilinear interpolation of coarse
// into dst, bit-identical to interpolate3's output for that row. tmp is
// caller scratch of dst's length, clobbered on odd planes (odd fine planes
// average the two surrounding even-plane interpolants, exactly as the tensor
// product in interpolate3 evaluates them).
func InterpRow3[T grid.Float](dst, tmp []T, coarse *grid.G[T], fi, fj int) {
	nc := coarse.N()
	nf := 2*nc - 1
	ci, cj := fi/2, fj/2
	rowInto := func(buf []T, ci int) {
		if fj%2 == 0 {
			interpEvenRow(buf, coarse.Row3(ci, cj), nc)
			return
		}
		interpOddRow(buf, coarse.Row3(ci, cj), coarse.Row3(ci, cj+1), nc)
	}
	rowInto(dst, ci)
	if fi%2 == 0 {
		return
	}
	rowInto(tmp, ci+1)
	for k := 0; k < nf; k++ {
		dst[k] = 0.5 * (dst[k] + tmp[k])
	}
}

// Interpolate applies bilinear (2D) or trilinear (3D) interpolation of the
// coarse grid into fine: coincident fine points copy the coarse value and
// in-between points average their 2, 4, or 8 coarse neighbours. The fine
// boundary is zeroed (corrections carry no boundary error).
func Interpolate[T grid.Float](pool *sched.Pool, fine, coarse *grid.G[T]) {
	checkLevels(coarse, fine, "Interpolate")
	if fine.Dim() == 3 {
		interpolate3(pool, fine, coarse)
		return
	}
	nc := coarse.N()
	fine.ZeroBoundary()
	// Each coarse row ci owns fine rows 2ci and 2ci+1 (the latter only when
	// a coarse row ci+1 exists), so parallel chunks write disjoint rows.
	body := func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			fi := 2 * ci
			cr := coarse.Row(ci)
			interpEvenRow(fine.Row(fi), cr, nc)
			if ci == nc-1 {
				continue
			}
			interpOddRow(fine.Row(fi+1), cr, coarse.Row(ci+1), nc)
		}
	}
	if pool == nil {
		body(0, nc)
	} else {
		pool.ParallelForPoints(0, nc, 2*fine.N(), body)
	}
	fine.ZeroBoundary()
}

// interpolate3 is trilinear interpolation. Each coarse plane ci owns fine
// planes 2ci and 2ci+1 (the latter only when plane ci+1 exists), so parallel
// chunks write disjoint planes. Within a plane the 2D bilinear pattern
// applies; odd fine planes average the two surrounding even fine planes'
// interpolants, computed directly from the coarse values.
func interpolate3[T grid.Float](pool *sched.Pool, fine, coarse *grid.G[T]) {
	nc, nf := coarse.N(), fine.N()
	fine.ZeroBoundary()
	// evenRow writes a fine row above a coarse row (copy / 2-point average);
	// oddRow writes a fine row between two coarse rows (2- and 4-point
	// averages) — both via the shared 1D helpers. Odd fine planes average the
	// evenRow/oddRow interpolants of the two surrounding coarse planes.
	evenRow := func(fr, cr []T) { interpEvenRow(fr, cr, nc) }
	oddRow := func(fr, cr, next []T) { interpOddRow(fr, cr, next, nc) }
	body := func(lo, hi int) {
		// Per-chunk scratch rows for the odd-plane averages.
		row := make([]T, nf)     //mglint:allow hotalloc — per-chunk odd-plane average row scratch, O(n) per interpolation
		rowNext := make([]T, nf) //mglint:allow hotalloc — per-chunk odd-plane average row scratch, O(n) per interpolation
		average := func(dst, a, b []T) {
			for k := range dst {
				dst[k] = 0.5 * (a[k] + b[k])
			}
		}
		for ci := lo; ci < hi; ci++ {
			fi := 2 * ci
			// Even fine plane: the 2D bilinear pattern over coarse plane ci.
			for cj := 0; cj < nc-1; cj++ {
				evenRow(fine.Row3(fi, 2*cj), coarse.Row3(ci, cj))
				oddRow(fine.Row3(fi, 2*cj+1), coarse.Row3(ci, cj), coarse.Row3(ci, cj+1))
			}
			evenRow(fine.Row3(fi, nf-1), coarse.Row3(ci, nc-1))
			if ci == nc-1 {
				continue
			}
			// Odd fine plane: average the interpolants of coarse planes ci
			// and ci+1. Writing it as the mean of the two even-plane rows
			// keeps the code a literal tensor product of the 1D rule.
			fo := fi + 1
			for cj := 0; cj < nc-1; cj++ {
				evenRow(row, coarse.Row3(ci, cj))
				evenRow(rowNext, coarse.Row3(ci+1, cj))
				average(fine.Row3(fo, 2*cj), row, rowNext)
				oddRow(row, coarse.Row3(ci, cj), coarse.Row3(ci, cj+1))
				oddRow(rowNext, coarse.Row3(ci+1, cj), coarse.Row3(ci+1, cj+1))
				average(fine.Row3(fo, 2*cj+1), row, rowNext)
			}
			evenRow(row, coarse.Row3(ci, nc-1))
			evenRow(rowNext, coarse.Row3(ci+1, nc-1))
			average(fine.Row3(fo, nf-1), row, rowNext)
		}
	}
	if pool == nil {
		body(0, nc)
	} else {
		pool.ParallelForPoints(0, nc, 2*nf*nf, body)
	}
	fine.ZeroBoundary()
}

// InterpolateAdd interpolates coarse into a scratch grid and adds the result
// to x's interior — the coarse-grid correction step. scratch must be a fine
// sized grid and must not alias x.
func InterpolateAdd[T grid.Float](pool *sched.Pool, x, coarse, scratch *grid.G[T]) {
	Interpolate(pool, scratch, coarse)
	x.AddInterior(scratch)
}

// InterpolateAddFused adds the d-linear interpolation of coarse directly
// into x's interior without materializing the fine interpolant: each chunk
// evaluates interpolation rows into a cache-resident buffer (the InterpRow
// providers) and accumulates them immediately, eliminating InterpolateAdd's
// scratch-grid write plus AddInterior's re-read — two full fine-grid memory
// streams. The per-point addend and the addition are the same operations in
// the same per-point order as InterpolateAdd, so the result is bit-identical
// for any pool and chunking.
func InterpolateAddFused[T grid.Float](pool *sched.Pool, x, coarse *grid.G[T]) {
	checkLevels(coarse, x, "InterpolateAddFused")
	nf := x.N()
	if x.Dim() == 3 {
		body := func(lo, hi int) {
			buf := make([]T, nf) //mglint:allow hotalloc — per-chunk interpolation row scratch, O(n) per transfer
			tmp := make([]T, nf) //mglint:allow hotalloc — per-chunk interpolation row scratch, O(n) per transfer
			for fi := lo; fi < hi; fi++ {
				for fj := 1; fj < nf-1; fj++ {
					InterpRow3(buf, tmp, coarse, fi, fj)
					xr := x.Row3(fi, fj)
					for k := 1; k < nf-1; k++ {
						xr[k] += buf[k]
					}
				}
			}
		}
		if pool == nil {
			body(1, nf-1)
		} else {
			pool.ParallelForPoints(1, nf-1, nf*nf, body)
		}
		return
	}
	body := func(lo, hi int) {
		buf := make([]T, nf) //mglint:allow hotalloc — per-chunk interpolation row scratch, O(n) per transfer
		for fi := lo; fi < hi; fi++ {
			InterpRow(buf, coarse, fi)
			xr := x.Row(fi)
			for j := 1; j < nf-1; j++ {
				xr[j] += buf[j]
			}
		}
	}
	if pool == nil {
		body(1, nf-1)
	} else {
		pool.ParallelForPoints(1, nf-1, nf, body)
	}
}

// RestrictCoef restricts a nodal coefficient field to the next-coarser
// level by injection: multigrid nodes coincide across levels (coarse point
// (I, J) sits on fine point (2I, 2J)), so injection is exact re-sampling of
// the underlying continuous field — the standard coefficient re-discretization
// for variable-coefficient operators. Unlike Restrict, the boundary is kept
// (coefficients are field data, not residuals).
//
// RestrictCoef is 2D-only: no 3D operator family carries a nodal coefficient
// field yet, and the guard turns an accidental 3D call into an explicit
// error instead of silent index corruption.
func RestrictCoef(coarse, fine *grid.Grid) {
	if coarse.Dim() != 2 || fine.Dim() != 2 {
		panic(fmt.Sprintf("transfer: RestrictCoef is 2D-only, got fine=%dD coarse=%dD", fine.Dim(), coarse.Dim()))
	}
	nc, nf := coarse.N(), fine.N()
	if nf != 2*nc-1 {
		panic(fmt.Sprintf("transfer: RestrictCoef size mismatch fine=%d coarse=%d", nf, nc))
	}
	for ci := 0; ci < nc; ci++ {
		cr := coarse.Row(ci)
		fr := fine.Row(2 * ci)
		for cj := 0; cj < nc; cj++ {
			cr[cj] = fr[2*cj]
		}
	}
}

// RestrictProblem restricts a full problem (not a residual): it computes the
// coarse right-hand side by full weighting and down-samples the boundary of
// x by injection. Used by the full-multigrid estimation phase, where the
// coarse problem keeps the original boundary conditions.
func RestrictProblem(pool *sched.Pool, coarseB, fineB, coarseX, fineX *grid.Grid) {
	Restrict(pool, coarseB, fineB)
	checkLevels(coarseX, fineX, "RestrictProblem")
	nc := coarseX.N()
	if coarseX.Dim() == 3 {
		// Inject only the boundary points: the two full end planes, then per
		// interior plane the first/last rows and the end columns.
		injectRow := func(ci, cj int) {
			cr := coarseX.Row3(ci, cj)
			fr := fineX.Row3(2*ci, 2*cj)
			for ck := 0; ck < nc; ck++ {
				cr[ck] = fr[2*ck]
			}
		}
		for _, ci := range [2]int{0, nc - 1} {
			for cj := 0; cj < nc; cj++ {
				injectRow(ci, cj)
			}
		}
		for ci := 1; ci < nc-1; ci++ {
			injectRow(ci, 0)
			injectRow(ci, nc-1)
			fi := 2 * ci
			for cj := 1; cj < nc-1; cj++ {
				cr := coarseX.Row3(ci, cj)
				fr := fineX.Row3(fi, 2*cj)
				cr[0] = fr[0]
				cr[nc-1] = fr[2*(nc-1)]
			}
		}
		return
	}
	for j := 0; j < nc; j++ {
		coarseX.Set(0, j, fineX.At(0, 2*j))
		coarseX.Set(nc-1, j, fineX.At(2*(nc-1), 2*j))
	}
	for i := 1; i < nc-1; i++ {
		coarseX.Set(i, 0, fineX.At(2*i, 0))
		coarseX.Set(i, nc-1, fineX.At(2*i, 2*(nc-1)))
	}
}
