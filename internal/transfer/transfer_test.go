package transfer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pbmg/internal/grid"
	"pbmg/internal/sched"
)

func TestRestrictConstantInterior(t *testing.T) {
	fine := grid.New(9)
	fine.Fill(1)
	coarse := grid.New(5)
	Restrict(nil, coarse, fine)
	// Coarse interior points away from the boundary see sixteen 1s / 16 = 1.
	if got := coarse.At(2, 2); math.Abs(got-1) > 1e-12 {
		t.Fatalf("center restriction = %v, want 1", got)
	}
	// Coarse boundary must be zero.
	for j := 0; j < 5; j++ {
		if coarse.At(0, j) != 0 || coarse.At(4, j) != 0 {
			t.Fatal("restriction boundary not zeroed")
		}
	}
}

func TestRestrictSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	Restrict(nil, grid.New(5), grid.New(7))
}

func TestInterpolateExactForBilinear(t *testing.T) {
	// Bilinear interpolation reproduces any function linear in x and y
	// exactly (interior; the boundary is zeroed by convention).
	nc, nf := 5, 9
	coarse := grid.New(nc)
	for i := 0; i < nc; i++ {
		for j := 0; j < nc; j++ {
			coarse.Set(i, j, 2*float64(i)+3*float64(j))
		}
	}
	fine := grid.New(nf)
	Interpolate(nil, fine, coarse)
	for i := 1; i < nf-1; i++ {
		for j := 1; j < nf-1; j++ {
			want := 2*(float64(i)/2) + 3*(float64(j)/2)
			if math.Abs(fine.At(i, j)-want) > 1e-12 {
				t.Fatalf("interp(%d,%d) = %v, want %v", i, j, fine.At(i, j), want)
			}
		}
	}
	for j := 0; j < nf; j++ {
		if fine.At(0, j) != 0 || fine.At(nf-1, j) != 0 {
			t.Fatal("interpolation boundary not zeroed")
		}
	}
}

func TestInterpolateSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	Interpolate(nil, grid.New(7), grid.New(5))
}

func TestInterpolateAdd(t *testing.T) {
	coarse := grid.New(3)
	coarse.Set(1, 1, 4)
	x := grid.New(5)
	x.Fill(1)
	scratch := grid.New(5)
	InterpolateAdd(nil, x, coarse, scratch)
	if got := x.At(2, 2); math.Abs(got-5) > 1e-12 {
		t.Fatalf("center after correction = %v, want 5", got)
	}
	if got := x.At(1, 1); math.Abs(got-2) > 1e-12 { // 1 + 4/4
		t.Fatalf("quarter point after correction = %v, want 2", got)
	}
	if x.At(0, 0) != 1 {
		t.Fatal("InterpolateAdd modified the boundary")
	}
}

func TestRestrictProblemCopiesBoundaryByInjection(t *testing.T) {
	nf, nc := 9, 5
	fineB, fineX := grid.New(nf), grid.New(nf)
	rng := rand.New(rand.NewSource(1))
	grid.FillRandom(fineB, grid.Unbiased, rng)
	grid.FillBoundaryRandom(fineX, grid.Unbiased, rng)
	coarseB, coarseX := grid.New(nc), grid.New(nc)
	RestrictProblem(nil, coarseB, fineB, coarseX, fineX)
	for j := 0; j < nc; j++ {
		if coarseX.At(0, j) != fineX.At(0, 2*j) {
			t.Fatal("top boundary not injected")
		}
		if coarseX.At(nc-1, j) != fineX.At(nf-1, 2*j) {
			t.Fatal("bottom boundary not injected")
		}
	}
	for i := 1; i < nc-1; i++ {
		if coarseX.At(i, 0) != fineX.At(2*i, 0) || coarseX.At(i, nc-1) != fineX.At(2*i, nf-1) {
			t.Fatal("side boundary not injected")
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	nf := 513
	nc := (nf + 1) / 2
	fine := grid.New(nf)
	grid.FillRandom(fine, grid.Unbiased, rand.New(rand.NewSource(9)))
	cs, cp := grid.New(nc), grid.New(nc)
	Restrict(nil, cs, fine)
	Restrict(pool, cp, fine)
	for i := range cs.Data() {
		if cs.Data()[i] != cp.Data()[i] {
			t.Fatal("parallel Restrict differs from serial")
		}
	}
	coarse := grid.New(nc)
	grid.FillRandom(coarse, grid.Biased, rand.New(rand.NewSource(10)))
	fs, fp := grid.New(nf), grid.New(nf)
	Interpolate(nil, fs, coarse)
	Interpolate(pool, fp, coarse)
	for i := range fs.Data() {
		if fs.Data()[i] != fp.Data()[i] {
			t.Fatal("parallel Interpolate differs from serial")
		}
	}
}

// Property: full weighting is the scaled transpose of bilinear interpolation,
// <R f, c>_coarse = (1/4)·<f, P c>_fine for zero-boundary f and c.
func TestVariationalPairingProperty(t *testing.T) {
	dot := func(a, b *grid.Grid) float64 {
		var s float64
		for i := range a.Data() {
			s += a.Data()[i] * b.Data()[i]
		}
		return s
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nf, nc := 17, 9
		fine, coarse := grid.New(nf), grid.New(nc)
		grid.FillRandom(fine, grid.Unbiased, rng)
		grid.FillRandom(coarse, grid.Unbiased, rng)
		fine.ZeroBoundary()
		coarse.ZeroBoundary()
		rf := grid.New(nc)
		Restrict(nil, rf, fine)
		pc := grid.New(nf)
		Interpolate(nil, pc, coarse)
		l := dot(rf, coarse)
		r := 0.25 * dot(fine, pc)
		scale := math.Max(math.Abs(l), math.Abs(r))
		return math.Abs(l-r) <= 1e-9*math.Max(scale, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: restriction never amplifies the max-norm (its weights are a
// convex combination).
func TestRestrictMaxNormContractionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fine := grid.New(17)
		grid.FillRandom(fine, grid.Unbiased, rng)
		coarse := grid.New(9)
		Restrict(nil, coarse, fine)
		return grid.MaxAbsInterior(coarse) <= grid.MaxAbsInterior(fine)*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: interpolation never amplifies the max-norm either.
func TestInterpolateMaxNormContractionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		coarse := grid.New(9)
		grid.FillRandom(coarse, grid.Unbiased, rng)
		fine := grid.New(17)
		Interpolate(nil, fine, coarse)
		limit := 0.0
		for _, v := range coarse.Data() {
			if a := math.Abs(v); a > limit {
				limit = a
			}
		}
		return grid.MaxAbsInterior(fine) <= limit*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// RestrictCoef is pure injection at coincident nodes, boundary included.
func TestRestrictCoefInjects(t *testing.T) {
	fine := grid.New(17)
	rng := rand.New(rand.NewSource(11))
	grid.FillRandom(fine, grid.Unbiased, rng)
	coarse := grid.New(9)
	RestrictCoef(coarse, fine)
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			if coarse.At(i, j) != fine.At(2*i, 2*j) {
				t.Fatalf("coarse(%d,%d) = %v, want fine(%d,%d) = %v",
					i, j, coarse.At(i, j), 2*i, 2*j, fine.At(2*i, 2*j))
			}
		}
	}
}

func TestRestrictCoefSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched sizes should panic")
		}
	}()
	RestrictCoef(grid.New(9), grid.New(19))
}
