package arch

import (
	"testing"
	"time"

	"pbmg/internal/mg"
)

func TestWallClock(t *testing.T) {
	var w WallClock
	if w.Name() != "host-wallclock" {
		t.Fatalf("Name = %q", w.Name())
	}
	if got := w.Cost(nil, 1500*time.Millisecond); got != 1.5 {
		t.Fatalf("Cost = %v, want 1.5", got)
	}
}

func TestModelsAndByName(t *testing.T) {
	ms := Models()
	if len(ms) != 3 {
		t.Fatalf("Models() has %d entries, want 3", len(ms))
	}
	for _, m := range ms {
		got, err := ByName(m.Name())
		if err != nil {
			t.Fatalf("ByName(%q): %v", m.Name(), err)
		}
		if got.Name() != m.Name() {
			t.Fatalf("ByName returned %q, want %q", got.Name(), m.Name())
		}
	}
	if _, err := ByName("cray-1"); err == nil {
		t.Fatal("ByName accepted unknown machine")
	}
}

func TestRelaxCostGrowsWithLevel(t *testing.T) {
	m := Harpertown()
	prev := 0.0
	for l := 3; l <= 11; l++ {
		c := m.EventCost(mg.EvRelax, l, 1)
		if c <= prev {
			t.Fatalf("relax cost at level %d (%v) not greater than level %d (%v)", l, c, l-1, prev)
		}
		prev = c
	}
}

func TestDirectCostQuarticGrowth(t *testing.T) {
	m := Barcelona()
	// Doubling the grid side should raise direct cost by roughly 16×.
	r := m.EventCost(mg.EvDirect, 8, 1) / m.EventCost(mg.EvDirect, 7, 1)
	if r < 10 || r > 24 {
		t.Fatalf("direct cost ratio per level = %v, want ≈16", r)
	}
}

func TestDirectVsRelaxCrossover(t *testing.T) {
	// At coarse levels a direct solve should beat even a handful of
	// relaxations; at fine levels it must be vastly more expensive. This is
	// the crossover that drives the paper's shortcut decisions.
	m := Harpertown()
	coarseDirect := m.EventCost(mg.EvDirect, 3, 1)
	coarseRelax := m.EventCost(mg.EvRelax, 3, 20)
	if coarseDirect >= coarseRelax {
		t.Fatalf("level 3: direct (%v) should beat 20 relaxations (%v)", coarseDirect, coarseRelax)
	}
	fineDirect := m.EventCost(mg.EvDirect, 11, 1)
	fineRelax := m.EventCost(mg.EvRelax, 11, 100)
	if fineDirect <= fineRelax {
		t.Fatalf("level 11: direct (%v) should cost more than 100 relaxations (%v)", fineDirect, fineRelax)
	}
}

func TestNiagaraPenalizesDirectRelativeToIntel(t *testing.T) {
	intel, sun := Harpertown(), Niagara()
	lvl := 6
	intelRatio := intel.EventCost(mg.EvDirect, lvl, 1) / intel.EventCost(mg.EvRelax, lvl, 1)
	sunRatio := sun.EventCost(mg.EvDirect, lvl, 1) / sun.EventCost(mg.EvRelax, lvl, 1)
	if sunRatio <= intelRatio {
		t.Fatalf("direct/relax ratio: sun %v should exceed intel %v (slow scalar cores)", sunRatio, intelRatio)
	}
}

func TestCostTraceLinearity(t *testing.T) {
	m := Barcelona()
	var a, b, ab mg.OpTrace
	a.Record(mg.EvRelax, 6, 3)
	a.Record(mg.EvDirect, 4, 1)
	b.Record(mg.EvRestrict, 6, 2)
	b.Record(mg.EvInterp, 6, 2)
	ab.Merge(&a)
	ab.Merge(&b)
	ca, cb, cab := m.Cost(&a, 0), m.Cost(&b, 0), m.Cost(&ab, 0)
	if diff := cab - (ca + cb); diff > 1e-9*cab || diff < -1e-9*cab {
		t.Fatalf("cost not additive: %v + %v != %v", ca, cb, cab)
	}
}

func TestCostIgnoresElapsedForModels(t *testing.T) {
	m := Niagara()
	var tr mg.OpTrace
	tr.Record(mg.EvRelax, 5, 1)
	if m.Cost(&tr, time.Hour) != m.Cost(&tr, 0) {
		t.Fatal("model cost should not depend on wall time")
	}
}

func TestEmptyTraceCostsNothing(t *testing.T) {
	var tr mg.OpTrace
	for _, m := range Models() {
		if c := m.Cost(&tr, 0); c != 0 {
			t.Fatalf("%s: empty trace cost = %v, want 0", m.Name(), c)
		}
	}
}

func TestRestrictChargedAtCoarseLevel(t *testing.T) {
	m := Harpertown()
	// Restriction writes the coarse grid; its cost must be much closer to a
	// coarse-level stencil pass than a fine-level one.
	c := m.EventCost(mg.EvRestrict, 8, 1)
	fine := m.EventCost(mg.EvRelax, 8, 1)
	if c >= fine*2 {
		t.Fatalf("restrict cost %v should be comparable to coarse work, not fine (%v)", c, fine)
	}
}

func TestParallelThresholdMakesSmallGridsSerial(t *testing.T) {
	m := Harpertown()
	// A small grid pays no task overhead; verify by checking cost scales
	// smoothly: cost(level 4) < cost(level 5) < overhead-dominated regime.
	small := m.EventCost(mg.EvRelax, 4, 1)
	if small > m.TaskOverhead {
		t.Fatalf("tiny relax (%v) should cost less than task overhead (%v)", small, m.TaskOverhead)
	}
}
