// Package arch prices multigrid operation traces under per-machine cost
// models. The paper evaluates on three architectures (Intel Xeon
// "Harpertown", AMD Opteron "Barcelona", Sun Fire "Niagara"); since that
// hardware is not available, each is simulated by a roofline-style model —
// scalar speed, memory bandwidth, core count, cache size, task overhead —
// calibrated to the machine's published character. The tuner consumes costs
// through the Coster interface, so wall-clock measurement on the host and
// model-based simulation are interchangeable.
package arch

import (
	"fmt"
	"time"

	"pbmg/internal/mg"
	"pbmg/internal/stencil"
)

// Coster turns one recorded execution into a scalar cost. Implementations
// may use the operation trace (simulated machines), the measured elapsed
// time (the host machine), or both.
type Coster interface {
	Name() string
	Cost(tr *mg.OpTrace, elapsed time.Duration) float64
}

// WallClock is the Coster for the host machine: cost is elapsed seconds.
type WallClock struct{}

// Name implements Coster.
func (WallClock) Name() string { return "host-wallclock" }

// Cost implements Coster.
func (WallClock) Cost(_ *mg.OpTrace, elapsed time.Duration) float64 {
	return elapsed.Seconds()
}

// ForPrecision returns a coster pricing grid traversals at the given
// storage width in bits (32 or 64): a fresh copy for *Model with WordBytes
// set — f32 traversals stream half the bytes per point — and c itself for
// costers that measure (WallClock) rather than model.
func ForPrecision(c Coster, bits int) Coster {
	wb := float64(bits) / 8
	if m, ok := c.(*Model); ok && m.wordBytes() != wb {
		cp := *m
		cp.WordBytes = wb
		return &cp
	}
	return c
}

// ForDim returns a coster pricing problems of the given spatial dimension:
// a fresh copy for *Model (the receiver is never mutated, so a caller may
// reuse one Model across tuners of different dimensions), and c itself for
// dimension-independent costers like WallClock.
func ForDim(c Coster, dim int) Coster {
	if m, ok := c.(*Model); ok && m.Dim != dim {
		cp := *m
		cp.Dim = dim
		return &cp
	}
	return c
}

// Model is a deterministic machine cost model. Costs are in abstract time
// units; only ratios matter to the tuner.
type Model struct {
	Name_ string
	// Dim is the spatial dimension of the problems being priced (0 and 2
	// mean 2D; 3 prices N³ grids and the O(N⁷) 3D band factorization).
	// A Model prices one dimension; derive others with ForDim.
	Dim int
	// Cores is the number of hardware threads stencil work spreads over.
	Cores int
	// FlopTime is the time per scalar floating-point operation.
	FlopTime float64
	// MemTime is the time per byte streamed from main memory.
	MemTime float64
	// MemChannels bounds how many cores' worth of memory traffic the
	// machine sustains concurrently.
	MemChannels int
	// CacheBytes is the last-level cache size; operations whose working set
	// fits pay CacheMemFactor of the memory cost.
	CacheBytes float64
	// CacheMemFactor discounts memory cost for cache-resident working sets.
	CacheMemFactor float64
	// TaskOverhead is the fixed cost of spawning a parallel operation.
	TaskOverhead float64
	// CallOverhead is the fixed per-operation cost (dispatch, recursion,
	// loop setup) paid by every kernel pass and direct solve. It is what
	// makes one direct solve cheaper than many small-grid passes, driving
	// the paper's shortcut decisions at coarse levels.
	CallOverhead float64
	// DirectFlopFactor scales the direct solver's effective flop cost
	// relative to stencil flops: dense inner loops run near peak on fast
	// out-of-order x86 cores but poorly on simple in-order ones, so the
	// factor differs per machine and moves the direct-solve cutoff level —
	// the architecture dependence Figure 14 demonstrates.
	DirectFlopFactor float64
	// SerialFraction is the Amdahl serial share of stencil operations.
	SerialFraction float64
	// ParallelMinPoints is the working-set size below which operations run
	// serially (task overhead would dominate).
	ParallelMinPoints int
	// WordBytes is the storage width in bytes of the grid data being priced:
	// 8 for the float64 paths (the zero-value default) and 4 for float32
	// mixed-precision traversals, which stream half the bytes per point and
	// fit twice the working set in cache. Derive per-precision copies with
	// ForPrecision. Direct-solve pricing ignores it (the band Cholesky is
	// always float64).
	WordBytes float64
}

// wordBytes resolves the zero-value default storage width.
func (m *Model) wordBytes() float64 {
	if m.WordBytes == 0 {
		return 8
	}
	return m.WordBytes
}

// Name implements Coster.
func (m *Model) Name() string { return m.Name_ }

// TraceBased marks the model as pricing traces only, letting measurement
// code skip high-precision wall-clock sampling.
func (m *Model) TraceBased() {}

// dim3 reports whether the model is pricing 3D problems.
func (m *Model) dim3() bool { return m.Dim == 3 }

// Per-point operation intensities for the 5-point (2D) stencil kernels:
// approximate flop and byte counts per interior grid point.
//
// The byte counts price the FUSED downstroke the executors now run
// (stencil.Operator.ResidualRestrict): the residual pass streams x and b
// but no longer writes a fine residual grid (48 → 40 bytes/point), and the
// restriction consumes residual values from a cache-resident three-row
// window instead of re-reading a fine grid from memory, leaving mostly its
// coarse-grid write traffic (88 → 32 bytes/coarse point). The traversal
// counts in the trace are unchanged — one EvResidual and one EvRestrict
// per downstroke — only their memory intensity shrank.
// The interpolation intensity prices the FUSED upstroke
// (stencil.Operator.InterpolateCorrectSmooth): the correction streams from a
// cache-resident interpolated row buffer straight into x during the
// post-smooth's first half-sweep, so the full-size scratch grid's write and
// re-read disappear (48 → 28 bytes/point: the coarse read amortized 4 ways,
// x's read-modify-write, and no intermediate traffic).
const (
	relaxFlops, relaxBytes       = 8, 48
	residualFlops, residualBytes = 7, 40
	restrictFlops, restrictBytes = 12, 32
	interpFlops, interpBytes     = 5, 28
)

// The 7-point (3D) counterparts: two more stencil reads per relaxation and
// residual, a 27-point restriction consuming the fused three-plane window,
// and a trilinear interpolation that averages up to 8 coarse values. The
// fused residual/restrict/interp byte discounts mirror the 2D ones
// (interp 64 → 36: scratch-free, coarse reads amortized 8 ways).
const (
	relaxFlops3, relaxBytes3       = 10, 64
	residualFlops3, residualBytes3 = 9, 56
	restrictFlops3, restrictBytes3 = 40, 48
	interpFlops3, interpBytes3     = 7, 36
)

// Iterative shortcut solves (EvIterSolve) at split-eligible sizes run in the
// unit-stride color-split layout (stencil.SplitWorthwhile mirrors the
// runtime gate exactly): every cache line streamed is fully consumed, so the
// per-sweep traffic drops (48 → 32 bytes/point in 2D, 64 → 44 in 3D), and
// the solve pays a one-time pack/unpack pass (x and b in, x out ≈ 48
// bytes/point of streaming copies).
const (
	relaxBytesSplit, relaxBytesSplit3 = 32, 44
	packFlops, packBytes              = 1, 48
)

// levelSide returns the grid side at level k.
func levelSide(level int) int { return (1 << uint(level)) + 1 }

// stencilCost prices one data-parallel stencil pass over the interior of a
// level-k grid using a roofline max of compute and memory streams.
// The per-point byte intensities below are counted at float64 width;
// stencilCost scales them by WordBytes/8, so a float32 model prices every
// traversal at half the memory traffic and half the cache footprint.
func (m *Model) stencilCost(level int, flopsPerPoint, bytesPerPoint float64) float64 {
	n := levelSide(level)
	wb := m.wordBytes()
	points := float64(n-2) * float64(n-2)
	footprint := float64(n) * float64(n) * wb * 2
	if m.dim3() {
		points *= float64(n - 2)
		footprint *= float64(n)
	}
	flopTime := points * flopsPerPoint * m.FlopTime
	memTime := points * bytesPerPoint * (wb / 8) * m.MemTime
	if footprint <= m.CacheBytes {
		memTime *= m.CacheMemFactor
	}
	if int(points) < m.ParallelMinPoints || m.Cores == 1 {
		return flopTime + memTime
	}
	speedup := 1 / (m.SerialFraction + (1-m.SerialFraction)/float64(m.Cores))
	memPar := float64(m.MemChannels)
	if c := float64(m.Cores); c < memPar {
		memPar = c
	}
	par := flopTime/speedup + memTime/memPar
	return par + m.TaskOverhead
}

// directCost prices one band-Cholesky direct solve at level k: a fresh
// O(n·bw²) factorization plus an O(n·bw) solve, both sequential — the DPBSV
// cost profile the paper's direct choice pays. In 2D the interior matrix
// has m² unknowns at bandwidth m; in 3D, m³ unknowns at bandwidth m².
func (m *Model) directCost(level int) float64 {
	n := levelSide(level)
	mm := float64(n - 2)
	unknowns, bw := mm*mm, mm
	if m.dim3() {
		unknowns, bw = mm*mm*mm, mm*mm
	}
	flops := unknowns*bw*bw + 4*unknowns*bw
	return flops * m.FlopTime * m.DirectFlopFactor
}

// EventCost prices count occurrences of an operation kind at a level,
// using the per-point intensities of the dimension being priced.
func (m *Model) EventCost(kind mg.EventKind, level, count int) float64 {
	c := float64(count)
	base := c * m.CallOverhead
	relF, relB := float64(relaxFlops), float64(relaxBytes)
	resF, resB := float64(residualFlops), float64(residualBytes)
	rstF, rstB := float64(restrictFlops), float64(restrictBytes)
	intF, intB := float64(interpFlops), float64(interpBytes)
	if m.dim3() {
		relF, relB = relaxFlops3, relaxBytes3
		resF, resB = residualFlops3, residualBytes3
		rstF, rstB = restrictFlops3, restrictBytes3
		intF, intB = interpFlops3, interpBytes3
	}
	switch kind {
	case mg.EvIterSolve:
		// Shortcut SOR solves take the color-split unit-stride path when
		// the runtime gate says it wins; price whichever path runs. The
		// recorded count at a level is the solve's sweep count — the same
		// quantity the runtime gates on.
		dim := 2
		if m.dim3() {
			dim = 3
		}
		if stencil.SplitWorthwhile(dim, levelSide(level), count) {
			relB = float64(relaxBytesSplit)
			if m.dim3() {
				relB = relaxBytesSplit3
			}
			return base + c*m.stencilCost(level, relF, relB) +
				m.stencilCost(level, packFlops, packBytes)
		}
		return base + c*m.stencilCost(level, relF, relB)
	case mg.EvRelax:
		return base + c*m.stencilCost(level, relF, relB)
	case mg.EvResidual:
		return base + c*m.stencilCost(level, resF, resB)
	case mg.EvRestrict:
		// Work is proportional to the coarse grid written.
		return base + c*m.stencilCost(level-1, rstF, rstB)
	case mg.EvInterp:
		return base + c*m.stencilCost(level, intF, intB)
	case mg.EvDirect:
		return base + c*m.directCost(level)
	default:
		return 0
	}
}

// Cost implements Coster by pricing every recorded operation.
func (m *Model) Cost(tr *mg.OpTrace, _ time.Duration) float64 {
	var total float64
	for k := mg.EvRelax; k <= mg.EvIterSolve; k++ {
		for l := 1; l <= tr.MaxLevel(); l++ {
			if c := tr.Count(k, l); c != 0 {
				total += m.EventCost(k, l, int(c))
			}
		}
	}
	return total
}

// The three simulated testbed machines. Parameters are calibrated to the
// published character of each processor (see DESIGN.md): Harpertown-class
// Xeons have fast scalar units but a shared front-side bus (few effective
// memory channels); Barcelona has slightly slower cores with an integrated
// memory controller (better bandwidth scaling); Niagara has many slow
// threads with high aggregate bandwidth, which penalizes the sequential
// direct solver and favors parallel relaxations.

// Harpertown models the Intel Xeon E7340 testbed (8 cores).
func Harpertown() *Model {
	return &Model{
		Name_: "intel-harpertown", Cores: 8,
		FlopTime: 1.0, MemTime: 0.60, MemChannels: 2,
		CacheBytes: 8 << 20, CacheMemFactor: 0.15,
		TaskOverhead: 4000, CallOverhead: 1200, DirectFlopFactor: 0.55,
		SerialFraction: 0.02, ParallelMinPoints: 16 << 10,
	}
}

// Barcelona models the AMD Opteron 2356 testbed (8 cores).
func Barcelona() *Model {
	return &Model{
		Name_: "amd-barcelona", Cores: 8,
		FlopTime: 1.25, MemTime: 0.45, MemChannels: 4,
		CacheBytes: 4 << 20, CacheMemFactor: 0.15,
		TaskOverhead: 4000, CallOverhead: 1500, DirectFlopFactor: 1.1,
		SerialFraction: 0.02, ParallelMinPoints: 16 << 10,
	}
}

// Niagara models the Sun Fire T200 testbed (32 hardware threads).
func Niagara() *Model {
	return &Model{
		Name_: "sun-niagara", Cores: 32,
		FlopTime: 4.0, MemTime: 0.50, MemChannels: 8,
		CacheBytes: 3 << 20, CacheMemFactor: 0.25,
		TaskOverhead: 8000, CallOverhead: 2500, DirectFlopFactor: 2.2,
		SerialFraction: 0.01, ParallelMinPoints: 8 << 10,
	}
}

// Models returns the three simulated testbed machines in paper order.
func Models() []*Model {
	return []*Model{Harpertown(), Barcelona(), Niagara()}
}

// ByName returns the model with the given name.
func ByName(name string) (*Model, error) {
	for _, m := range Models() {
		if m.Name_ == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("arch: unknown model %q", name)
}
