package pbx

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// sortTransform builds the paper's motivating example (§1): a sort with an
// O(n log n) rule that recurses through the instance (so tuned cutoffs
// apply at every recursion depth) and an O(n²) insertion rule that wins on
// small inputs. ops counts comparisons so tests are deterministic.
func sortTransform(ops *int) *Transform[[]int] {
	t := &Transform[[]int]{
		Name: "sort",
		Size: func(s []int) int { return len(s) },
	}
	insertion := Rule[[]int]{
		Name: "insertion",
		Apply: func(self *Instance[[]int], s []int) {
			for i := 1; i < len(s); i++ {
				v := s[i]
				j := i - 1
				for j >= 0 && s[j] > v {
					*ops++
					s[j+1] = s[j]
					j--
				}
				*ops += 2
				s[j+1] = v
			}
		},
	}
	merge := Rule[[]int]{
		Name: "merge",
		Apply: func(self *Instance[[]int], s []int) {
			if len(s) < 2 {
				return
			}
			mid := len(s) / 2
			left := append([]int(nil), s[:mid]...)
			right := append([]int(nil), s[mid:]...)
			self.Run(left)
			self.Run(right)
			i, j := 0, 0
			for k := range s {
				*ops += 3 // compare + move + bookkeeping
				switch {
				case i < len(left) && (j >= len(right) || left[i] <= right[j]):
					s[k] = left[i]
					i++
				default:
					s[k] = right[j]
					j++
				}
			}
			*ops += 40 // allocation/recursion overhead
		},
	}
	t.Rules = []Rule[[]int]{insertion, merge}
	return t
}

func TestConfigGetClone(t *testing.T) {
	c := Config{"cutoff": 8}
	if c.Get("cutoff", 1) != 8 || c.Get("missing", 42) != 42 {
		t.Fatal("Config.Get mismatch")
	}
	d := c.Clone()
	d["cutoff"] = 9
	if c["cutoff"] != 8 {
		t.Fatal("Clone shares storage")
	}
}

func TestSelectorDispatch(t *testing.T) {
	s := &Selector{Levels: []Level{{MaxSize: 16, Rule: 0}, {MaxSize: 256, Rule: 2}}, Top: 1}
	cases := map[int]int{1: 0, 16: 0, 17: 2, 256: 2, 257: 1, 1 << 20: 1}
	for size, want := range cases {
		if got := s.RuleFor(size); got != want {
			t.Errorf("RuleFor(%d) = %d, want %d", size, got, want)
		}
	}
}

func TestSelectorNormalize(t *testing.T) {
	s := &Selector{Levels: []Level{{MaxSize: 64, Rule: 1}, {MaxSize: 16, Rule: 1}, {MaxSize: 64, Rule: 0}}, Top: 1}
	s.normalize()
	// 16→1 merges into 64→1; 64→0 is shadowed; 64→1 equals Top so drops.
	if len(s.Levels) != 0 {
		t.Fatalf("normalize left %v", s.Levels)
	}
}

func TestInstanceRunsCorrectSort(t *testing.T) {
	ops := 0
	tr := sortTransform(&ops)
	sel := &Selector{Levels: []Level{{MaxSize: 8, Rule: 0}}, Top: 1}
	inst := NewInstance(tr, sel, nil)
	rng := rand.New(rand.NewSource(1))
	data := make([]int, 500)
	for i := range data {
		data[i] = rng.Intn(1000)
	}
	inst.Run(data)
	if !sort.IntsAreSorted(data) {
		t.Fatal("tuned sort did not sort")
	}
}

func TestInstanceZeroSelectorUsesRuleZero(t *testing.T) {
	ops := 0
	tr := sortTransform(&ops)
	inst := NewInstance(tr, nil, nil)
	data := []int{3, 1, 2}
	inst.Run(data)
	if !sort.IntsAreSorted(data) {
		t.Fatal("rule 0 did not sort")
	}
}

func TestRuleIndex(t *testing.T) {
	ops := 0
	tr := sortTransform(&ops)
	if tr.RuleIndex("merge") != 1 || tr.RuleIndex("insertion") != 0 || tr.RuleIndex("quick") != -1 {
		t.Fatal("RuleIndex mismatch")
	}
}

func TestTuneFindsHybridSort(t *testing.T) {
	ops := 0
	tr := sortTransform(&ops)
	sel, err := Tune(TuneConfig[[]int]{
		Transform: tr,
		Gen: func(rng *rand.Rand, size int) []int {
			data := make([]int, size)
			for i := range data {
				data[i] = rng.Intn(1 << 20)
			}
			return data
		},
		Clone:  func(s []int) []int { return append([]int(nil), s...) },
		Sizes:  []int{4, 8, 16, 32, 64, 128, 256, 512, 1024},
		Trials: 2,
		Seed:   1,
		Measure: func(run func()) float64 {
			before := ops
			run()
			return float64(ops - before)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The tuned algorithm must be a genuine hybrid: merge sort on top,
	// insertion sort below some cutoff.
	if sel.Top != tr.RuleIndex("merge") {
		t.Fatalf("tuned top rule = %d, want merge; selector %+v", sel.Top, sel)
	}
	if len(sel.Levels) == 0 {
		t.Fatalf("tuned selector has no insertion cutoff: %+v", sel)
	}
	cut := sel.Levels[0]
	if cut.Rule != tr.RuleIndex("insertion") || cut.MaxSize < 4 || cut.MaxSize > 512 {
		t.Fatalf("implausible cutoff %+v", cut)
	}
	// And it must still sort correctly.
	inst := NewInstance(tr, sel, nil)
	data := rand.New(rand.NewSource(9)).Perm(2000)
	inst.Run(data)
	if !sort.IntsAreSorted(data) {
		t.Fatal("tuned hybrid does not sort")
	}
}

func TestTuneValidation(t *testing.T) {
	if _, err := Tune(TuneConfig[[]int]{}); err == nil {
		t.Fatal("empty config accepted")
	}
	ops := 0
	tr := sortTransform(&ops)
	if _, err := Tune(TuneConfig[[]int]{
		Transform: tr,
		Gen:       func(rng *rand.Rand, size int) []int { return make([]int, size) },
		Clone:     func(s []int) []int { return append([]int(nil), s...) },
	}); err == nil {
		t.Fatal("missing sizes accepted")
	}
}

func TestNarySearchFindsMinimum(t *testing.T) {
	f := func(x int) float64 { d := float64(x - 137); return d * d }
	if got := NarySearch(0, 1000, 4, f); got != 137 {
		t.Fatalf("NarySearch = %d, want 137", got)
	}
	if got := NarySearch(1000, 0, 4, f); got != 137 {
		t.Fatalf("NarySearch with swapped bounds = %d, want 137", got)
	}
	if got := NarySearch(140, 150, 3, f); got != 140 {
		t.Fatalf("boundary minimum = %d, want 140", got)
	}
}

func TestNarySearchTinyRange(t *testing.T) {
	f := func(x int) float64 { return float64(-x) }
	if got := NarySearch(3, 5, 8, f); got != 5 {
		t.Fatalf("NarySearch tiny = %d, want 5", got)
	}
	if got := NarySearch(7, 7, 2, f); got != 7 {
		t.Fatalf("NarySearch single = %d, want 7", got)
	}
}

// Property: NarySearch on any unimodal (convex) function returns the true
// minimizer.
func TestNarySearchUnimodalProperty(t *testing.T) {
	f := func(min uint16, arity uint8) bool {
		m := int(min % 2000)
		obj := func(x int) float64 { d := float64(x - m); return d*d + 3 }
		got := NarySearch(0, 2000, int(arity%6)+2, obj)
		return got == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: selectors after normalize dispatch identically to before.
func TestNormalizePreservesDispatchProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		raw := &Selector{Top: rng.Intn(3)}
		for i := 0; i < rng.Intn(5); i++ {
			raw.Levels = append(raw.Levels, Level{MaxSize: 1 + rng.Intn(100), Rule: rng.Intn(3)})
		}
		// Pre-sort so the "first matching level wins" semantics are
		// well-defined independent of insertion order.
		sort.Slice(raw.Levels, func(i, j int) bool { return raw.Levels[i].MaxSize < raw.Levels[j].MaxSize })
		norm := raw.clone()
		norm.normalize()
		for size := 1; size <= 110; size++ {
			if raw.RuleFor(size) != norm.RuleFor(size) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
