// Package pbx is a Go library rendition of the PetaBricks language
// constructs the paper builds on (§3): a Transform declares a computation,
// its Rules declare the algorithmic choices that can compute it, and an
// Instance binds a transform to a tuned Selector that dispatches among
// rules by input size — the "multi-level algorithm" the PetaBricks
// autotuner constructs. The package also provides that autotuner: a
// bottom-up population search over doubling input sizes (§3.2.2) and an
// n-ary search for scalar tunables such as parallel-sequential cutoffs.
//
// Algorithmic choice is a first-class Go value here rather than a language
// keyword; the search behaviour mirrors the paper's description.
package pbx

import (
	"fmt"
	"sort"
)

// Config carries tunable parameter values by name.
type Config map[string]int

// Get returns the configured value for name, or def when unset.
func (c Config) Get(name string, def int) int {
	if v, ok := c[name]; ok {
		return v
	}
	return def
}

// Clone returns an independent copy of the config.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// Rule is one algorithmic choice for computing a transform. Apply must
// compute the output in place on in; it may recurse through self.Run, which
// re-dispatches on the (smaller) input — this is how rule compositions such
// as "merge sort above the cutoff, insertion sort below" arise.
type Rule[T any] struct {
	Name  string
	Apply func(self *Instance[T], in T)
}

// Transform declares a computation with algorithmic choice.
type Transform[T any] struct {
	Name string
	// Size maps an input to the size used for dispatch and tuning.
	Size  func(T) int
	Rules []Rule[T]
}

// RuleIndex returns the index of the named rule, or -1.
func (t *Transform[T]) RuleIndex(name string) int {
	for i, r := range t.Rules {
		if r.Name == name {
			return i
		}
	}
	return -1
}

// Level is one dispatch band of a selector: inputs of size ≤ MaxSize use
// Rule.
type Level struct {
	MaxSize int `json:"maxSize"`
	Rule    int `json:"rule"`
}

// Selector dispatches an input size to a rule: the first level whose
// MaxSize bounds the size wins; larger inputs use Top. Selectors are the
// tuned artifact of the population autotuner, PetaBricks' multi-level
// algorithm.
type Selector struct {
	Levels []Level `json:"levels,omitempty"`
	Top    int     `json:"top"`
}

// RuleFor returns the rule index for an input of the given size.
func (s *Selector) RuleFor(size int) int {
	for _, l := range s.Levels {
		if size <= l.MaxSize {
			return l.Rule
		}
	}
	return s.Top
}

// normalize sorts levels and drops shadowed ones so equal behaviour implies
// equal representation.
func (s *Selector) normalize() {
	sort.Slice(s.Levels, func(i, j int) bool { return s.Levels[i].MaxSize < s.Levels[j].MaxSize })
	out := s.Levels[:0]
	for _, l := range s.Levels {
		if n := len(out); n > 0 && out[n-1].MaxSize == l.MaxSize {
			continue // earlier (smaller) level shadows this one
		}
		out = append(out, l)
	}
	// Merge adjacent levels with the same rule.
	merged := out[:0]
	for _, l := range out {
		if n := len(merged); n > 0 && merged[n-1].Rule == l.Rule {
			merged[n-1].MaxSize = l.MaxSize
			continue
		}
		merged = append(merged, l)
	}
	if n := len(merged); n > 0 && merged[n-1].Rule == s.Top {
		merged = merged[:n-1]
	}
	s.Levels = merged
}

// key returns a canonical string identity for population dedup.
func (s *Selector) key() string {
	out := fmt.Sprintf("top=%d", s.Top)
	for _, l := range s.Levels {
		out += fmt.Sprintf(";%d:%d", l.MaxSize, l.Rule)
	}
	return out
}

// clone returns an independent copy.
func (s *Selector) clone() *Selector {
	return &Selector{Levels: append([]Level(nil), s.Levels...), Top: s.Top}
}

// Instance binds a transform to a selector and parameter config, ready to
// run. The zero selector always uses rule 0.
type Instance[T any] struct {
	Transform *Transform[T]
	Selector  *Selector
	Cfg       Config
}

// NewInstance returns an instance of t using sel (nil: rule 0 always) and
// cfg (nil: defaults).
func NewInstance[T any](t *Transform[T], sel *Selector, cfg Config) *Instance[T] {
	if sel == nil {
		sel = &Selector{}
	}
	if cfg == nil {
		cfg = Config{}
	}
	return &Instance[T]{Transform: t, Selector: sel, Cfg: cfg}
}

// Run computes the transform on in, dispatching by input size.
func (i *Instance[T]) Run(in T) {
	size := i.Transform.Size(in)
	r := i.Selector.RuleFor(size)
	if r < 0 || r >= len(i.Transform.Rules) {
		panic(fmt.Sprintf("pbx: selector rule %d out of range for %s", r, i.Transform.Name))
	}
	i.Transform.Rules[r].Apply(i, in)
}
