// Package mixload drives a mixed multi-family workload against a set of
// pbmg services: each client pre-draws a small rotation of problems per
// family (so request setup stays off the measured path), then issues
// requests round-robin across the families from fresh states, recording
// per-family latencies. It is the shared client loop behind mgserve's
// registry mode, mgbench's serve experiment, and — in HTTP mode — the
// mgserved front end's benchmark (mgbench -exp http), so the workload
// shape cannot drift between the demos and the benchmarks.
//
// HTTP mode (Options.URL set) issues the same workload over the serve
// package's wire protocol instead of in-process calls: request bodies are
// pre-marshaled per rotation problem, responses with a shed status (429
// queue full, 503 drain/deadline) are counted in Result.Shed rather than
// failing the run, and the client fan-out scales to thousands of
// connections.
package mixload

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pbmg"
	"pbmg/serve"
)

// Options configures Run.
type Options struct {
	// Services are the served families, in report order (in-process mode).
	Services []*pbmg.Service
	// ReqN is the request grid side per family (parallel to Services, or
	// to Keys in HTTP mode).
	ReqN []int
	// URL switches to HTTP mode: requests are POSTed to URL+"/v1/solve"
	// instead of calling Services in-process.
	URL string
	// Keys identifies the served families in HTTP mode (parallel to ReqN).
	Keys []pbmg.ServeKey
	// Client optionally overrides the HTTP client; when nil, Run builds
	// one with idle connections sized to Clients.
	Client *http.Client
	// Clients is the number of concurrent client goroutines (HTTP mode:
	// concurrent connections).
	Clients int
	// Requests is the total request count, split across clients; ≤ 0 runs
	// every client until Deadline instead.
	Requests int
	// Deadline stops duration-mode clients (when Requests ≤ 0). It also
	// bounds the ADMISSION wait of every duration-mode request — a client
	// stuck in an admission queue when the deadline passes is shed and
	// exits instead of overshooting by a full wait+solve.
	Deadline time.Time
	// Acc is the per-request accuracy target.
	Acc float64
	// Dist is the request data distribution.
	Dist pbmg.Distribution
	// Seed derives each client's per-family problem rotation.
	Seed int64
	// Retries is the per-request retry budget for shed HTTP answers (429
	// queue full, 503 breaker/deadline/drain): each retry honors the
	// server's Retry-After hint when present and falls back to jittered
	// exponential backoff otherwise. 0 disables retries (every shed counts
	// immediately); ignored in in-process mode.
	Retries int
}

// rotation is the number of pre-drawn problems per (client, family).
const rotation = 2

// Result is one measured workload.
type Result struct {
	// PerFamily holds each family's latencies, sorted ascending.
	PerFamily [][]time.Duration
	// All holds every latency, sorted ascending.
	All []time.Duration
	// Shed counts requests turned away by load-shedding (admission
	// deadline in-process; 429/503 over HTTP). Shed requests record no
	// latency and do not fail the run.
	Shed int64
	// Elapsed is the wall time of the whole run.
	Elapsed time.Duration
	// Overshoot is how far past Deadline the slowest client finished (0 in
	// request-count mode or when every client beat the deadline). With
	// admission deadline-bounded it is at most one solve duration — the
	// request already admitted when the deadline hit — never a queue wait
	// on top.
	Overshoot time.Duration
	// Retries429 and Retries503 count HTTP-mode retry attempts by the shed
	// class that triggered them (429 queue full vs 503 breaker, deadline, or
	// drain), so a report shows which back-pressure mechanism the workload
	// was leaning on. Both stay 0 with Options.Retries == 0.
	Retries429 int64
	Retries503 int64
}

// families returns the family count of either mode.
func (o *Options) families() int {
	if o.URL != "" {
		return len(o.Keys)
	}
	return len(o.Services)
}

// Run drives the workload and returns the collected latencies. Any client
// error (a failed draw, solve, or transport error — but not a shed) fails
// the run.
func Run(o Options) (*Result, error) {
	nf := o.families()
	if nf == 0 || len(o.ReqN) != nf {
		return nil, fmt.Errorf("mixload: %d families with %d request sizes", nf, len(o.ReqN))
	}
	counts := make([]int, o.Clients)
	for c := range counts {
		if o.Requests > 0 {
			counts[c] = o.Requests / o.Clients
			if c < o.Requests%o.Clients {
				counts[c]++
			}
		} else {
			counts[c] = -1
		}
	}

	var issue issuer
	if o.URL != "" {
		hc := o.Client
		if hc == nil {
			// Idle connections sized to the fan-out, so thousands of
			// clients reuse sockets instead of churning through dials.
			hc = &http.Client{Transport: &http.Transport{
				MaxIdleConns:        2 * o.Clients,
				MaxIdleConnsPerHost: 2 * o.Clients,
			}}
		}
		issue = &httpIssuer{o: o, cl: &serve.Client{BaseURL: o.URL, HTTP: hc}}
	} else {
		issue = &localIssuer{o: o}
	}

	lat := make([][][]time.Duration, o.Clients) // [client][family][]
	errs := make([]error, o.Clients)
	var shed atomic.Int64
	var overshootNS atomic.Int64
	duration := o.Requests <= 0
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < o.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lat[c] = make([][]time.Duration, nf)
			reqs, err := issue.prepare(c)
			if err != nil {
				errs[c] = err
				return
			}
			ctx := context.Background()
			if duration {
				var cancel context.CancelFunc
				ctx, cancel = context.WithDeadline(ctx, o.Deadline)
				defer cancel()
				defer func() {
					// Record how far past the deadline this client ran; the
					// slowest client across the run is the reported overshoot.
					if over := time.Since(o.Deadline); over > 0 {
						for {
							cur := overshootNS.Load()
							if int64(over) <= cur || overshootNS.CompareAndSwap(cur, int64(over)) {
								return
							}
						}
					}
				}()
			}
			for i := 0; counts[c] < 0 || i < counts[c]; i++ {
				if duration && time.Now().After(o.Deadline) {
					return
				}
				fi := (c + i) % nf
				t0 := time.Now()
				err := issue.solve(ctx, reqs, fi, i%rotation)
				switch {
				case err == nil:
					lat[c][fi] = append(lat[c][fi], time.Since(t0))
				case isShed(err):
					shed.Add(1)
					if duration && ctx.Err() != nil {
						return // shed by the run deadline: clean exit
					}
				default:
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{
		PerFamily: make([][]time.Duration, nf),
		Elapsed:   elapsed,
		Shed:      shed.Load(),
		Overshoot: time.Duration(overshootNS.Load()),
	}
	if hi, ok := issue.(*httpIssuer); ok {
		res.Retries429 = hi.retries429.Load()
		res.Retries503 = hi.retries503.Load()
	}
	for c := range lat {
		for fi, ls := range lat[c] {
			res.PerFamily[fi] = append(res.PerFamily[fi], ls...)
			res.All = append(res.All, ls...)
		}
	}
	if len(res.All) == 0 {
		return nil, fmt.Errorf("mixload: no requests completed (%d shed)", res.Shed)
	}
	for fi := range res.PerFamily {
		sortDurations(res.PerFamily[fi])
	}
	sortDurations(res.All)
	return res, nil
}

// isShed classifies load-shedding outcomes: an in-process admission shed,
// an expired admission context, or a retryable HTTP status.
func isShed(err error) bool {
	if errors.Is(err, pbmg.ErrShed) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return true
	}
	var se *serve.StatusError
	return errors.As(err, &se) && se.Shed()
}

// issuer is one mode's request path: prepare pre-draws a client's problem
// rotation, solve issues one request.
type issuer interface {
	prepare(client int) (any, error)
	solve(ctx context.Context, reqs any, family, slot int) error
}

// localIssuer calls the services in-process.
type localIssuer struct{ o Options }

func (li *localIssuer) prepare(c int) (any, error) {
	o := li.o
	probs := make([][]*pbmg.Problem, len(o.Services))
	for fi, svc := range o.Services {
		probs[fi] = make([]*pbmg.Problem, rotation)
		for i := range probs[fi] {
			p, err := svc.Solver().NewFamilyProblem(o.ReqN[fi], o.Dist, o.Seed+int64(c*100+fi*rotation+i))
			if err != nil {
				return nil, err
			}
			probs[fi][i] = p
		}
	}
	return probs, nil
}

func (li *localIssuer) solve(ctx context.Context, reqs any, fi, slot int) error {
	p := reqs.([][]*pbmg.Problem)[fi][slot]
	x := p.NewState()
	return li.o.Services[fi].SolveContext(ctx, x, p.B, li.o.Acc)
}

// httpIssuer posts the workload to a serve.Server; bodies are
// pre-marshaled so encoding stays off the measured path.
type httpIssuer struct {
	o  Options
	cl *serve.Client

	retries429 atomic.Int64
	retries503 atomic.Int64
}

// httpClientState is one client's prepared state: its request rotation and
// a private backoff-jitter source (only this client's goroutine touches
// it, so no locking).
type httpClientState struct {
	bodies [][][]byte
	rng    *rand.Rand
}

func (hi *httpIssuer) prepare(c int) (any, error) {
	o := hi.o
	bodies := make([][][]byte, len(o.Keys))
	for fi, key := range o.Keys {
		bodies[fi] = make([][]byte, rotation)
		for i := range bodies[fi] {
			p, err := pbmg.NewFamilyProblem(o.ReqN[fi], o.Dist, o.Seed+int64(c*100+fi*rotation+i), key.Family, key.Epsilon)
			if err != nil {
				return nil, err
			}
			body, err := json.Marshal(serve.SolveRequest{
				Family:   key.Family.String(),
				Eps:      key.Epsilon,
				N:        o.ReqN[fi],
				Accuracy: o.Acc,
				B:        p.B.Data(),
				X:        p.NewState().Data(),
			})
			if err != nil {
				return nil, err
			}
			bodies[fi][i] = body
		}
	}
	return &httpClientState{bodies: bodies, rng: rand.New(rand.NewSource(o.Seed + int64(c)))}, nil
}

// Backoff for retried sheds: exponential from retryBaseDelay, capped at
// retryMaxDelay, jittered ±25% so synchronized clients spread out instead
// of re-stampeding the queue they were just shed from.
const (
	retryBaseDelay = 50 * time.Millisecond
	retryMaxDelay  = 2 * time.Second
)

func (hi *httpIssuer) solve(ctx context.Context, reqs any, fi, slot int) error {
	st := reqs.(*httpClientState)
	for attempt := 0; ; attempt++ {
		_, err := hi.cl.SolveBytes(ctx, st.bodies[fi][slot])
		if err == nil || attempt >= hi.o.Retries {
			return err
		}
		var se *serve.StatusError
		if !errors.As(err, &se) || !se.Shed() {
			return err
		}
		if se.Code == http.StatusTooManyRequests {
			hi.retries429.Add(1)
		} else {
			hi.retries503.Add(1)
		}
		if serr := sleepBackoff(ctx, st.rng, attempt, se.RetryAfter); serr != nil {
			// The run deadline cut the backoff short: surface the original
			// shed so the caller's shed accounting (not the error path)
			// handles it.
			return err
		}
	}
}

// sleepBackoff waits before a retry: the server's Retry-After hint when it
// sent one, jittered exponential backoff otherwise. Returns ctx.Err() when
// the context expires first.
func sleepBackoff(ctx context.Context, rng *rand.Rand, attempt int, retryAfterSec int) error {
	var d time.Duration
	if retryAfterSec > 0 {
		// The server named a delay: never retry before it, jitter only
		// upward (+0–25%) to de-synchronize the herd it shed together.
		d = time.Duration(retryAfterSec) * time.Second
		d += time.Duration(0.25 * float64(d) * rng.Float64())
	} else {
		d = retryBaseDelay << attempt
		if d > retryMaxDelay || d <= 0 {
			d = retryMaxDelay
		}
		d = time.Duration(float64(d) * (0.75 + 0.5*rng.Float64()))
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func sortDurations(ds []time.Duration) {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
}

// Percentile returns the q-quantile of sorted latencies by the
// nearest-rank (ceiling) definition: the smallest sample ≥ the q fraction
// of the distribution, so p99 on small samples reports an actually
// observed high-end latency instead of truncating down toward the median
// (0 when empty; q ≤ 0 returns the minimum, q ≥ 1 the maximum).
func Percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
