// Package mixload drives a mixed multi-family workload against a set of
// pbmg services: each client pre-draws a small rotation of problems per
// family (so request setup stays off the measured path), then issues
// requests round-robin across the families from fresh states, recording
// per-family latencies. It is the shared client loop behind mgserve's
// registry mode and mgbench's serve experiment, so the workload shape —
// rotation, seeding, round-robin order — cannot drift between the demo and
// the benchmark.
package mixload

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"pbmg"
)

// Options configures Run.
type Options struct {
	// Services are the served families, in report order.
	Services []*pbmg.Service
	// ReqN is the request grid side per service (parallel to Services).
	ReqN []int
	// Clients is the number of concurrent client goroutines.
	Clients int
	// Requests is the total request count, split across clients; ≤ 0 runs
	// every client until Deadline instead.
	Requests int
	// Deadline stops duration-mode clients (when Requests ≤ 0).
	Deadline time.Time
	// Acc is the per-request accuracy target.
	Acc float64
	// Dist is the request data distribution.
	Dist pbmg.Distribution
	// Seed derives each client's per-family problem rotation.
	Seed int64
}

// rotation is the number of pre-drawn problems per (client, family).
const rotation = 2

// Result is one measured workload.
type Result struct {
	// PerFamily holds each service's latencies, sorted ascending.
	PerFamily [][]time.Duration
	// All holds every latency, sorted ascending.
	All []time.Duration
	// Elapsed is the wall time of the whole run.
	Elapsed time.Duration
}

// Run drives the workload and returns the collected latencies. Any client
// error (a failed draw or solve) fails the run.
func Run(o Options) (*Result, error) {
	counts := make([]int, o.Clients)
	for c := range counts {
		if o.Requests > 0 {
			counts[c] = o.Requests / o.Clients
			if c < o.Requests%o.Clients {
				counts[c]++
			}
		} else {
			counts[c] = -1
		}
	}

	lat := make([][][]time.Duration, o.Clients) // [client][family][]
	errs := make([]error, o.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < o.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lat[c] = make([][]time.Duration, len(o.Services))
			probs := make([][]*pbmg.Problem, len(o.Services))
			for fi, svc := range o.Services {
				probs[fi] = make([]*pbmg.Problem, rotation)
				for i := range probs[fi] {
					p, err := svc.Solver().NewFamilyProblem(o.ReqN[fi], o.Dist, o.Seed+int64(c*100+fi*rotation+i))
					if err != nil {
						errs[c] = err
						return
					}
					probs[fi][i] = p
				}
			}
			for i := 0; counts[c] < 0 || i < counts[c]; i++ {
				if counts[c] < 0 && time.Now().After(o.Deadline) {
					return
				}
				fi := (c + i) % len(o.Services)
				p := probs[fi][i%rotation]
				x := p.NewState()
				t0 := time.Now()
				if err := o.Services[fi].Solve(x, p.B, o.Acc); err != nil {
					errs[c] = err
					return
				}
				lat[c][fi] = append(lat[c][fi], time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{PerFamily: make([][]time.Duration, len(o.Services)), Elapsed: elapsed}
	for c := range lat {
		for fi, ls := range lat[c] {
			res.PerFamily[fi] = append(res.PerFamily[fi], ls...)
			res.All = append(res.All, ls...)
		}
	}
	if len(res.All) == 0 {
		return nil, fmt.Errorf("mixload: no requests completed")
	}
	for fi := range res.PerFamily {
		sortDurations(res.PerFamily[fi])
	}
	sortDurations(res.All)
	return res, nil
}

func sortDurations(ds []time.Duration) {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
}

// Percentile returns the q-quantile of sorted latencies (0 when empty).
func Percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(q*float64(len(sorted)-1))]
}
