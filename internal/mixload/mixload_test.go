package mixload

import (
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pbmg"
	"pbmg/serve"
)

// tunedPoisson memoizes one small tuned solver for the whole test binary.
var (
	tunedOnce sync.Once
	tunedS    *pbmg.Solver
	tunedErr  error
)

func poissonSolver(t *testing.T) *pbmg.Solver {
	t.Helper()
	tunedOnce.Do(func() {
		tunedS, tunedErr = pbmg.Tune(pbmg.Options{
			MaxSize: 17, Family: pbmg.FamilyPoisson,
			Machine: "intel-harpertown", Seed: 5,
		})
	})
	if tunedErr != nil {
		t.Fatal(tunedErr)
	}
	return tunedS
}

// TestPercentileNearestRank pins the nearest-rank (ceiling) definition:
// the reported quantile is the smallest sample covering at least the q
// fraction of the distribution — an actually observed latency, never an
// index truncated down toward the median.
func TestPercentileNearestRank(t *testing.T) {
	ten := make([]time.Duration, 10)
	for i := range ten {
		ten[i] = time.Duration((i + 1) * 10) // 10, 20, …, 100
	}
	for _, tc := range []struct {
		name   string
		sorted []time.Duration
		q      float64
		want   time.Duration
	}{
		{"empty", nil, 0.99, 0},
		{"single", []time.Duration{7}, 0.5, 7},
		{"single p99", []time.Duration{7}, 0.99, 7},
		{"min", ten, 0, 10},
		{"p10 is the first sample", ten, 0.10, 10},
		{"p25 rounds up", ten, 0.25, 30},
		// The regression: nearest-rank p50 of an even-sized sample is the
		// LOWER middle (ceil(5)−1 = index 4), not index 5.
		{"p50 even n", ten, 0.50, 50},
		{"just past p50", ten, 0.51, 60},
		{"p90", ten, 0.90, 90},
		{"p99 small sample is the max", ten, 0.99, 100},
		{"p99 of three", []time.Duration{1, 2, 3}, 0.99, 3},
		{"max", ten, 1.0, 100},
		{"clamped above", ten, 1.5, 100},
		{"clamped below", ten, -0.5, 10},
	} {
		if got := Percentile(tc.sorted, tc.q); got != tc.want {
			t.Errorf("%s: Percentile(q=%g) = %v, want %v", tc.name, tc.q, got, tc.want)
		}
	}
}

// TestRunRequestCountAccounting: in request-count mode every request is
// either measured or shed — none vanish.
func TestRunRequestCountAccounting(t *testing.T) {
	s := poissonSolver(t)
	svc := s.NewService(2)
	res, err := Run(Options{
		Services: []*pbmg.Service{svc},
		ReqN:     []int{9},
		Clients:  4,
		Requests: 18, // not divisible by clients: the remainder must not be dropped
		Acc:      1e3,
		Dist:     pbmg.Unbiased,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.All) + int(res.Shed); got != 18 {
		t.Fatalf("measured %d + shed %d requests, want 18 total", len(res.All), res.Shed)
	}
	if res.Overshoot != 0 {
		t.Errorf("request-count mode reported overshoot %v", res.Overshoot)
	}
	for i := 1; i < len(res.All); i++ {
		if res.All[i] < res.All[i-1] {
			t.Fatal("latencies are not sorted")
		}
	}
}

// TestRunDeadlineBoundsAdmission: in duration mode the run deadline also
// bounds ADMISSION — a client parked in the admission queue when the
// deadline passes is shed and exits instead of overshooting by a queue
// wait plus a solve. The regression this pins: overshoot used to be
// unbounded because admission waited on a background context.
func TestRunDeadlineBoundsAdmission(t *testing.T) {
	s := poissonSolver(t)
	svc := s.NewService(1) // one slot: most clients queue in admission
	deadline := time.Now().Add(150 * time.Millisecond)
	res, err := Run(Options{
		Services: []*pbmg.Service{svc},
		ReqN:     []int{17},
		Clients:  6,
		Requests: 0, // duration mode
		Deadline: deadline,
		Acc:      1e5,
		Dist:     pbmg.Unbiased,
		Seed:     9,
	})
	returned := time.Now()
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed < 100*time.Millisecond {
		t.Errorf("run stopped after %v, before the deadline", res.Elapsed)
	}
	// Overshoot is at most one admitted solve past the deadline — a small
	// 2D solve, nowhere near an unbounded queue wait. The generous bound
	// still catches the old behavior, where a parked client waited for
	// every queued solve ahead of it.
	if res.Overshoot > 5*time.Second || returned.Sub(deadline) > 10*time.Second {
		t.Errorf("deadline overshoot %v (run returned %v past the deadline)",
			res.Overshoot, returned.Sub(deadline))
	}
	// The shed accounting agrees end to end: every client-side shed is an
	// admission shed on the service — or, now that admitted solves cancel
	// cooperatively at the next cycle boundary when the deadline passes, a
	// mid-solve cancellation — and nothing was double-counted.
	m := svc.Metrics()
	if got := m.Shed + m.Cancelled; got != res.Shed {
		t.Errorf("service sheds %d + cancelled %d != client sheds %d",
			m.Shed, m.Cancelled, res.Shed)
	}
}

// TestRunHTTPMode drives the same workload through a serve.Server over
// real sockets (under -race in CI): every request is measured or shed,
// and the server-side completion count matches the client's.
func TestRunHTTPMode(t *testing.T) {
	s := poissonSolver(t)
	dir := t.TempDir()
	if err := s.Save(filepath.Join(dir, "poisson.json")); err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{
		Dir: dir, Workers: 2,
		Quotas:     map[string]int{"poisson": 2},
		QueueDepth: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	const total = 32
	res, err := Run(Options{
		URL:      hs.URL,
		Keys:     []pbmg.ServeKey{{Family: pbmg.FamilyPoisson, Dim: 2}},
		ReqN:     []int{9},
		Clients:  8,
		Requests: total,
		Acc:      1e3,
		Dist:     pbmg.Unbiased,
		Seed:     13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.All) + int(res.Shed); got != total {
		t.Fatalf("measured %d + shed %d, want %d", len(res.All), res.Shed, total)
	}
	if res.Shed != 0 {
		t.Errorf("deep-queue run shed %d requests", res.Shed)
	}
	cl := serve.Client{BaseURL: hs.URL}
	m, err := cl.Metrics(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if m.Aggregate.Completed != total {
		t.Errorf("server completed %d solves, client measured %d", m.Aggregate.Completed, total)
	}
}
