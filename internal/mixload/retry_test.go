package mixload

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pbmg"
	"pbmg/serve"
)

// shedScript is a fake /v1/solve endpoint answering a fixed per-request
// status sequence: each incoming solve walks the script by its attempt
// number, so retries are observable without a real server melting down on
// cue. Requests are identified by body (the load driver re-posts the same
// pre-marshaled body on retry).
type shedScript struct {
	script   []int // status per attempt; past the end: 200
	attempts atomic.Int64
}

func (ss *shedScript) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempt := int(ss.attempts.Add(1)) - 1
		var req serve.SolveRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		idx := attempt % (len(ss.script) + 1)
		if idx < len(ss.script) {
			code := ss.script[idx]
			w.WriteHeader(code)
			json.NewEncoder(w).Encode(serve.ErrorResponse{Error: http.StatusText(code)})
			return
		}
		n := req.N
		json.NewEncoder(w).Encode(serve.SolveResponse{
			X: make([]float64, n*n), Family: req.Family, N: n, SolveNs: 1,
		})
	})
}

func retryOptions(url string, retries, requests int) Options {
	return Options{
		URL:      url,
		Keys:     []pbmg.ServeKey{{Family: pbmg.FamilyPoisson, Dim: 2}},
		ReqN:     []int{9},
		Clients:  1,
		Requests: requests,
		Acc:      1e3,
		Dist:     pbmg.Unbiased,
		Seed:     7,
		Retries:  retries,
	}
}

// TestHTTPRetryHonorsBudget: a request shed with 429 then 503 is retried
// (within the budget) until the server serves it, with each retry counted
// by the shed class that triggered it and nothing recorded as shed.
func TestHTTPRetryHonorsBudget(t *testing.T) {
	ss := &shedScript{script: []int{http.StatusTooManyRequests, http.StatusServiceUnavailable}}
	hs := httptest.NewServer(ss.handler())
	defer hs.Close()

	res, err := Run(retryOptions(hs.URL, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed != 0 {
		t.Errorf("Shed = %d, want 0 (every request retried through)", res.Shed)
	}
	if len(res.All) != 2 {
		t.Errorf("measured %d latencies, want 2", len(res.All))
	}
	if res.Retries429 != 2 || res.Retries503 != 2 {
		t.Errorf("retries = 429:%d 503:%d, want 2 each (one of each class per request)",
			res.Retries429, res.Retries503)
	}
	if got := ss.attempts.Load(); got != 6 {
		t.Errorf("server saw %d attempts, want 6 (3 per request)", got)
	}
}

// TestHTTPRetryDisabled: with Retries 0 every shed counts immediately and
// no retry traffic is generated.
func TestHTTPRetryDisabled(t *testing.T) {
	// Attempts 0 and 1 are shed; attempt 2 walks past the script and is
	// served, so the run has a completed request to report.
	ss := &shedScript{script: []int{
		http.StatusTooManyRequests, http.StatusTooManyRequests,
	}}
	hs := httptest.NewServer(ss.handler())
	defer hs.Close()

	res, err := Run(retryOptions(hs.URL, 0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed != 2 || res.Retries429 != 0 || res.Retries503 != 0 {
		t.Errorf("shed %d, retries 429:%d 503:%d; want 2 sheds, no retries",
			res.Shed, res.Retries429, res.Retries503)
	}
	if len(res.All) != 1 {
		t.Errorf("measured %d latencies, want 1 (only the served request)", len(res.All))
	}
	if got := ss.attempts.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3 (no retry traffic)", got)
	}
}

// TestHTTPRetryBudgetExhausted: a server that keeps shedding exhausts the
// budget; the request then counts as shed (not as a run failure).
func TestHTTPRetryBudgetExhausted(t *testing.T) {
	// With Retries 1, request one burns attempts 0 and 1 (both 503) and is
	// shed; request two sees attempt 2 (503), retries, and attempt 3 walks
	// past the script to a 200 — the run completes with one measurement.
	ss := &shedScript{script: []int{
		http.StatusServiceUnavailable, http.StatusServiceUnavailable,
		http.StatusServiceUnavailable,
	}}
	hs := httptest.NewServer(ss.handler())
	defer hs.Close()

	res, err := Run(retryOptions(hs.URL, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed != 1 {
		t.Errorf("Shed = %d, want 1 (budget exhausted on the first request)", res.Shed)
	}
	if res.Retries503 != 2 {
		t.Errorf("Retries503 = %d, want 2 (one retry per request)", res.Retries503)
	}
	if len(res.All) != 1 {
		t.Errorf("measured %d latencies, want 1 (only the served request)", len(res.All))
	}
	if got := ss.attempts.Load(); got != 4 {
		t.Errorf("server saw %d attempts, want 4", got)
	}
}

// TestHTTPRetryHonorsRetryAfter: an explicit Retry-After hint delays the
// retry at least that long — the client must never come back early.
func TestHTTPRetryHonorsRetryAfter(t *testing.T) {
	var firstAt, retryAt atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req serve.SolveRequest
		json.NewDecoder(r.Body).Decode(&req)
		if firstAt.CompareAndSwap(0, time.Now().UnixNano()) {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "breaker open"})
			return
		}
		retryAt.Store(time.Now().UnixNano())
		json.NewEncoder(w).Encode(serve.SolveResponse{X: make([]float64, req.N*req.N), Family: req.Family, N: req.N, SolveNs: 1})
	}))
	defer hs.Close()

	res, err := Run(retryOptions(hs.URL, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed != 0 || res.Retries503 != 1 {
		t.Fatalf("shed %d, retries503 %d; want a single successful retry", res.Shed, res.Retries503)
	}
	waited := time.Duration(retryAt.Load() - firstAt.Load())
	if waited < time.Second {
		t.Errorf("client retried after %v, before the 1s Retry-After hint", waited)
	}
	if waited > 3*time.Second {
		t.Errorf("client waited %v on a 1s hint (jitter is bounded at +25%%)", waited)
	}
}
