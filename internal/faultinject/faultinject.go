//go:build faultinject

// Package faultinject is the chaos-testing switchboard: named injection
// points compiled into the solver and serving layers fire armed faults —
// delays, panics, errors, NaN poisoning — so the failure-hardening paths
// (cancellation, divergence escalation, panic containment, the circuit
// breaker) can be driven deterministically by tests and by the /-/fault
// endpoint of a chaos build.
//
// The package has two editions selected by the `faultinject` build tag.
// This one (tag present) carries the real registry; the default edition is
// a set of empty stubs with Enabled = false, so every hook of the form
//
//	if faultinject.Enabled {
//	    faultinject.Point("mg.cycle")
//	}
//
// is dead code the compiler eliminates — production binaries pay nothing,
// which the escape gate and kernel benchmarks hold them to.
//
// Faults are armed programmatically (Arm), from a spec string (ArmSpec,
// also the body of POST /-/fault), or from the PBMG_FAULTS environment
// variable at process start. A spec is a ';'-separated list of items
//
//	name:kind[,key=value...]
//
// where kind is one of delay, panic, error, nan, and the keys are
// after=N (skip the first N hits), count=N (fire at most N times),
// level=L (PointLevel sites fire only at grid level L), and delay=D
// (a time.ParseDuration value for the delay kind). For example:
//
//	stencil.sweep:delay,delay=50ms;mg.cycle:panic,count=1
//	mg.f32.nan:nan,level=5
package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Enabled reports whether the binary was built with the faultinject tag.
// Hooks gate on it so the stub edition's calls are eliminated entirely.
const Enabled = true

// Kind is the action an armed fault performs when its point is hit.
type Kind string

const (
	// KindDelay sleeps the fault's Delay at the point (slow kernels, pool
	// starvation).
	KindDelay Kind = "delay"
	// KindPanic panics at the point with a recognizable value.
	KindPanic Kind = "panic"
	// KindError makes PointErr return an error (broken catalog reload).
	KindError Kind = "error"
	// KindNaN makes PointLevel report true, telling the site to poison its
	// state (the site owns the write; the registry only picks the moment).
	KindNaN Kind = "nan"
)

// Fault is one armed injection.
type Fault struct {
	// Kind selects the action.
	Kind Kind
	// After skips the first After hits of the point before firing.
	After int
	// Count bounds how many times the fault fires (≤ 0: every hit).
	Count int
	// Level, when ≥ 0, restricts PointLevel sites to one grid level.
	Level int
	// Delay is the sleep for KindDelay.
	Delay time.Duration
}

// fault is a Fault plus its hit accounting.
type fault struct {
	mu    sync.Mutex
	f     Fault
	hits  int
	fired int
}

// take consumes one hit and reports whether the fault fires on it.
func (f *fault) take() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hits++
	if f.hits <= f.f.After {
		return false
	}
	if f.f.Count > 0 && f.fired >= f.f.Count {
		return false
	}
	f.fired++
	return true
}

var (
	mu    sync.RWMutex
	armed = map[string]*fault{}
)

// Arm installs (or replaces) the fault for one point name.
func Arm(name string, f Fault) {
	if f.Level == 0 {
		// Level 0 does not exist (grids start at level 1), so the zero value
		// means "any level".
		f.Level = -1
	}
	mu.Lock()
	armed[name] = &fault{f: f}
	mu.Unlock()
}

// Clear disarms every fault.
func Clear() {
	mu.Lock()
	armed = map[string]*fault{}
	mu.Unlock()
}

// Armed lists the armed point names, for the /-/fault answer.
func Armed() []string {
	mu.RLock()
	defer mu.RUnlock()
	names := make([]string, 0, len(armed))
	for name := range armed {
		names = append(names, name)
	}
	return names
}

// lookup resolves a point's armed fault, nil when none.
func lookup(name string) *fault {
	mu.RLock()
	f := armed[name]
	mu.RUnlock()
	return f
}

// Point fires a delay or panic fault armed at name; other kinds and
// unarmed points are no-ops.
func Point(name string) {
	f := lookup(name)
	if f == nil {
		return
	}
	switch f.f.Kind {
	case KindDelay:
		if f.take() {
			time.Sleep(f.f.Delay)
		}
	case KindPanic:
		if f.take() {
			panic(fmt.Sprintf("faultinject: injected panic at %s", name))
		}
	}
}

// PointLevel reports whether the site at name should inject for grid level
// level — the NaN-poisoning sites ask it and own the actual write.
func PointLevel(name string, level int) bool {
	f := lookup(name)
	if f == nil || f.f.Kind != KindNaN {
		return false
	}
	if f.f.Level >= 0 && f.f.Level != level {
		return false
	}
	return f.take()
}

// PointErr returns an injected error when an error fault is armed at name,
// nil otherwise.
func PointErr(name string) error {
	f := lookup(name)
	if f == nil || f.f.Kind != KindError {
		return nil
	}
	if !f.take() {
		return nil
	}
	return fmt.Errorf("faultinject: injected error at %s", name)
}

// ArmSpec arms every fault of a spec string (see the package comment for
// the syntax). Parsing is all-or-nothing: on error nothing is armed.
func ArmSpec(spec string) error {
	type item struct {
		name string
		f    Fault
	}
	var items []item
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		name, rest, ok := strings.Cut(raw, ":")
		if !ok {
			return fmt.Errorf("faultinject: %q is not name:kind[,key=value...]", raw)
		}
		parts := strings.Split(rest, ",")
		f := Fault{Kind: Kind(parts[0])}
		switch f.Kind {
		case KindDelay, KindPanic, KindError, KindNaN:
		default:
			return fmt.Errorf("faultinject: %q: unknown kind %q", raw, parts[0])
		}
		for _, kv := range parts[1:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("faultinject: %q: %q is not key=value", raw, kv)
			}
			var err error
			switch key {
			case "after":
				f.After, err = strconv.Atoi(val)
			case "count":
				f.Count, err = strconv.Atoi(val)
			case "level":
				f.Level, err = strconv.Atoi(val)
			case "delay":
				f.Delay, err = time.ParseDuration(val)
			default:
				err = fmt.Errorf("unknown key %q", key)
			}
			if err != nil {
				return fmt.Errorf("faultinject: %q: %v", raw, err)
			}
		}
		items = append(items, item{name: strings.TrimSpace(name), f: f})
	}
	if len(items) == 0 {
		return fmt.Errorf("faultinject: spec %q names no faults", spec)
	}
	for _, it := range items {
		Arm(it.name, it.f)
	}
	return nil
}

// init arms faults named by the PBMG_FAULTS environment variable, so a
// chaos-build daemon can start pre-poisoned without an extra request.
func init() {
	if spec := os.Getenv("PBMG_FAULTS"); spec != "" {
		if err := ArmSpec(spec); err != nil {
			panic(err)
		}
	}
}
