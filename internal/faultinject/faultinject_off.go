//go:build !faultinject

// Package faultinject (default edition, faultinject tag absent): every
// injection point is an empty no-op behind Enabled = false, so the hooks
// compiled into the solver and serving layers are dead code the compiler
// eliminates. See faultinject.go (the tagged edition) for the real
// registry and the spec syntax.
package faultinject

import (
	"errors"
	"time"
)

// Enabled reports whether the binary was built with the faultinject tag.
const Enabled = false

// Kind is the action an armed fault performs; unused in this edition.
type Kind string

const (
	KindDelay Kind = "delay"
	KindPanic Kind = "panic"
	KindError Kind = "error"
	KindNaN   Kind = "nan"
)

// Fault is one armed injection; unused in this edition.
type Fault struct {
	Kind  Kind
	After int
	Count int
	Level int
	Delay time.Duration
}

// Arm is a no-op without the faultinject tag.
func Arm(name string, f Fault) {}

// Clear is a no-op without the faultinject tag.
func Clear() {}

// Armed always reports nothing armed without the faultinject tag.
func Armed() []string { return nil }

// Point is a no-op without the faultinject tag.
func Point(name string) {}

// PointLevel never injects without the faultinject tag.
func PointLevel(name string, level int) bool { return false }

// PointErr never injects without the faultinject tag.
func PointErr(name string) error { return nil }

// ArmSpec rejects every spec without the faultinject tag, so a /-/fault
// request against a production build (which does not register the
// endpoint anyway) cannot silently pretend to arm.
func ArmSpec(spec string) error {
	return errors.New("faultinject: binary built without the faultinject tag")
}
