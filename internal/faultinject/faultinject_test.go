//go:build faultinject

package faultinject

import (
	"strings"
	"testing"
	"time"
)

// The registry is process-global, so every test clears it on the way in and
// out; the package's tests run sequentially within the test binary.

func reset(t *testing.T) {
	t.Helper()
	Clear()
	t.Cleanup(Clear)
}

func TestPointPanicAfterCount(t *testing.T) {
	reset(t)
	// Skip 2 hits, then fire at most once.
	Arm("p", Fault{Kind: KindPanic, After: 2, Count: 1})
	fired := 0
	hit := func() {
		defer func() {
			if recover() != nil {
				fired++
			}
		}()
		Point("p")
	}
	for i := 0; i < 6; i++ {
		hit()
	}
	if fired != 1 {
		t.Fatalf("after=2,count=1 fired %d times over 6 hits, want 1", fired)
	}

	// Count ≤ 0 fires on every hit past After.
	Clear()
	Arm("p", Fault{Kind: KindPanic, After: 1})
	fired = 0
	for i := 0; i < 4; i++ {
		hit()
	}
	if fired != 3 {
		t.Fatalf("after=1 unbounded fired %d times over 4 hits, want 3", fired)
	}
}

func TestPointDelaySleeps(t *testing.T) {
	reset(t)
	Arm("d", Fault{Kind: KindDelay, Delay: 30 * time.Millisecond})
	start := time.Now()
	Point("d")
	if took := time.Since(start); took < 25*time.Millisecond {
		t.Fatalf("armed delay slept only %v", took)
	}
	// A point of another name is untouched.
	start = time.Now()
	Point("other")
	if took := time.Since(start); took > 10*time.Millisecond {
		t.Fatalf("unarmed point slept %v", took)
	}
}

func TestPointLevelFilter(t *testing.T) {
	reset(t)
	Arm("nan", Fault{Kind: KindNaN, Level: 4})
	if PointLevel("nan", 3) {
		t.Error("level-4 fault fired at level 3")
	}
	if !PointLevel("nan", 4) {
		t.Error("level-4 fault did not fire at level 4")
	}
	// The zero Level means any level.
	Clear()
	Arm("nan", Fault{Kind: KindNaN})
	if !PointLevel("nan", 2) || !PointLevel("nan", 7) {
		t.Error("any-level fault filtered by level")
	}
	// A non-nan fault never answers PointLevel.
	Clear()
	Arm("nan", Fault{Kind: KindPanic})
	if PointLevel("nan", 4) {
		t.Error("panic fault answered PointLevel")
	}
}

func TestPointErr(t *testing.T) {
	reset(t)
	if err := PointErr("e"); err != nil {
		t.Fatalf("unarmed PointErr = %v", err)
	}
	Arm("e", Fault{Kind: KindError, Count: 1})
	err := PointErr("e")
	if err == nil || !strings.Contains(err.Error(), "injected error at e") {
		t.Fatalf("armed PointErr = %v", err)
	}
	if err := PointErr("e"); err != nil {
		t.Fatalf("count=1 error fired twice: %v", err)
	}
}

func TestArmSpec(t *testing.T) {
	reset(t)
	err := ArmSpec("stencil.sweep:delay,delay=50ms; mg.cycle:panic,count=1,after=2;serve.reload:error;mg.f32.nan:nan,level=5")
	if err != nil {
		t.Fatal(err)
	}
	names := Armed()
	if len(names) != 4 {
		t.Fatalf("Armed() = %v, want 4 faults", names)
	}
	got := map[string]bool{}
	for _, n := range names {
		got[n] = true
	}
	for _, want := range []string{"stencil.sweep", "mg.cycle", "serve.reload", "mg.f32.nan"} {
		if !got[want] {
			t.Errorf("Armed() missing %q: %v", want, names)
		}
	}
	// The parsed fields drive behavior: level filtering and the error kind.
	if PointLevel("mg.f32.nan", 4) {
		t.Error("level=5 fault fired at level 4")
	}
	if !PointLevel("mg.f32.nan", 5) {
		t.Error("level=5 fault did not fire at level 5")
	}
	if err := PointErr("serve.reload"); err == nil {
		t.Error("spec-armed error fault did not fire")
	}
}

func TestArmSpecErrors(t *testing.T) {
	reset(t)
	for _, bad := range []string{
		"",                        // no faults at all
		"  ;  ",                   // only separators
		"noseparator",             // missing :kind
		"p:frobnicate",            // unknown kind
		"p:panic,count",           // key without value
		"p:panic,count=x",         // bad int
		"p:delay,delay=fast",      // bad duration
		"p:panic,unknownkey=1",    // unknown key
		"ok:panic;bad:frobnicate", // all-or-nothing: one bad item
	} {
		if err := ArmSpec(bad); err == nil {
			t.Errorf("ArmSpec(%q) accepted", bad)
		}
		if n := Armed(); len(n) != 0 {
			t.Fatalf("ArmSpec(%q) armed %v despite failing", bad, n)
		}
	}
}
