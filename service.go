package pbmg

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"pbmg/internal/sched"
)

// This file is the serving front end over a tuned Solver: SolveBatch fans a
// fixed set of independent problems across the shared worker pool, and
// Service admits a stream of solve requests with a bound on how many run at
// once. Both lean on the tune-once/serve-many model of the paper (§3.2.1):
// the expensive tuned configuration and its caches are built once and then
// amortized over every request. Registry (registry.go) composes several
// Services — one per tuned operator family — behind one admission limit.

// BatchProblem pairs one solve's state grid (Dirichlet boundary and initial
// guess, solved in place) with its right-hand side.
type BatchProblem struct {
	X, B *Grid
}

// SolveBatch solves every problem with the tuned FULL-MULTIGRID algorithm
// for the smallest tuned target ≥ accuracy, running the solves concurrently
// on the shared solver through the solver's default service (see
// DefaultService), whose admission limit bounds both the in-flight solves
// and the goroutines fanned out, so arbitrarily large batches hold only a
// bounded set of scratch workspaces. Each problem's X is
// solved in place. The returned error joins the failures of all problems
// that were rejected (others still complete); a nil return means every
// problem met its target. Completions are visible in the default service's
// metrics.
func (s *Solver) SolveBatch(problems []BatchProblem, accuracy float64) error {
	return s.DefaultService().SolveBatch(problems, accuracy)
}

// Service wraps a Solver with an admission limit for serving: at most
// MaxInFlight solves run concurrently, and further requests block until a
// slot frees. A Service is safe for concurrent use and is cheap to create;
// all services of one Solver share its tuned tables and caches. Services
// created by a Registry share one admission semaphore, so the limit is
// global across every family the registry serves.
type Service struct {
	s       *Solver
	sem     chan struct{}
	breaker *breaker

	admitted  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	shed      atomic.Int64
	waiting   atomic.Int64
	inFlight  atomic.Int64

	// Failure-class counters: every one of these also counts in failed.
	cancelled atomic.Int64
	diverged  atomic.Int64
	panicked  atomic.Int64
}

// ErrShed marks a request that was turned away at admission — its context
// was cancelled or its deadline expired before a slot freed — as opposed to
// a solve that ran and failed. Serving layers match it with errors.Is to
// answer with a retryable status (429/503) instead of a hard failure.
var ErrShed = errors.New("pbmg: request shed at admission")

// ServiceMetrics is a point-in-time snapshot of one service's request
// counters. Admitted counts solves that passed admission (acquired a slot);
// of those, Completed finished successfully and Failed returned a solve
// error (size or accuracy outside the tuned range, or an internal failure).
// Shed counts requests turned away at admission — their context expired
// before a slot freed, or the circuit breaker was open — which never run a
// solve at all; keeping them out of Failed means load-shedding and broken
// requests stay distinguishable. Waiting is the gauge of requests currently
// blocked in admission, InFlight the gauge of solves currently running.
//
// The failure-class counters split Failed by what went wrong: Cancelled
// solves were aborted mid-solve by their context, Diverged solves blew up
// numerically (after any float64 escalation retry), Panicked solves hit a
// recovered panic. BreakerShed counts the subset of Shed turned away by an
// open circuit breaker, and BreakerOpens counts closed→open transitions.
type ServiceMetrics struct {
	Admitted  int64
	Completed int64
	Failed    int64
	Shed      int64
	Waiting   int64
	InFlight  int64

	Cancelled    int64
	Diverged     int64
	Panicked     int64
	BreakerShed  int64
	BreakerOpens int64
}

// Add accumulates m into the receiver (for aggregating per-family metrics).
func (sm *ServiceMetrics) Add(m ServiceMetrics) {
	sm.Admitted += m.Admitted
	sm.Completed += m.Completed
	sm.Failed += m.Failed
	sm.Shed += m.Shed
	sm.Waiting += m.Waiting
	sm.InFlight += m.InFlight
	sm.Cancelled += m.Cancelled
	sm.Diverged += m.Diverged
	sm.Panicked += m.Panicked
	sm.BreakerShed += m.BreakerShed
	sm.BreakerOpens += m.BreakerOpens
}

// NewService returns a serving front end admitting at most maxInFlight
// concurrent solves (≤ 0 selects 2×GOMAXPROCS), with a default-configured
// circuit breaker.
func (s *Solver) NewService(maxInFlight int) *Service {
	if maxInFlight <= 0 {
		maxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	return newService(s, make(chan struct{}, maxInFlight), BreakerConfig{})
}

// newService wraps a solver around an admission semaphore, which may be
// shared with other services (Registry shares one across all families).
// The circuit breaker is per-service: one family melting down must not
// stop the others.
func newService(s *Solver, sem chan struct{}, bc BreakerConfig) *Service {
	return &Service{s: s, sem: sem, breaker: newBreaker(bc)}
}

// DefaultService returns the solver's lazily-created default service,
// shared by every SolveBatch call on the solver so batch completions
// accumulate in one place instead of vanishing with a throwaway service.
// The admission limit is 2×GOMAXPROCS for a standalone solver; registering
// the solver in a Registry makes the registry service (and its global
// limit) the default, so batch solves honor the registry-wide bound.
// Safe to call concurrently with Registry.Register: the default service is
// metadata, guarded by its own mutex, so Register's no-solves-in-flight
// contract covers only solves.
func (s *Solver) DefaultService() *Service {
	s.defMu.Lock()
	defer s.defMu.Unlock()
	if s.defSvc == nil {
		s.defSvc = s.NewService(0)
	}
	return s.defSvc
}

// setDefaultService replaces the solver's default service (Registry wires
// the registry service in at registration, superseding any private one).
func (s *Solver) setDefaultService(svc *Service) {
	s.defMu.Lock()
	defer s.defMu.Unlock()
	s.defSvc = svc
}

// MaxInFlight returns the admission limit (the global limit, for services
// created by a Registry).
func (sv *Service) MaxInFlight() int { return cap(sv.sem) }

// Solver returns the tuned solver behind the service.
func (sv *Service) Solver() *Solver { return sv.s }

// Family returns the operator family the underlying solver serves; requests
// must be drawn from the same family (see Solver.NewFamilyProblem).
func (sv *Service) Family() Family { return sv.s.Family() }

// Epsilon returns the served family's parameter (ε or σ; 1 for Poisson).
func (sv *Service) Epsilon() float64 { return sv.s.Epsilon() }

// Completed returns the number of solves finished successfully so far.
func (sv *Service) Completed() int64 { return sv.completed.Load() }

// Metrics returns a snapshot of the service's request counters. The fields
// are read individually from concurrently-updated counters, so a snapshot
// taken while solves are in flight is approximate (but each counter is
// exact).
func (sv *Service) Metrics() ServiceMetrics {
	return ServiceMetrics{
		Admitted:     sv.admitted.Load(),
		Completed:    sv.completed.Load(),
		Failed:       sv.failed.Load(),
		Shed:         sv.shed.Load(),
		Waiting:      sv.waiting.Load(),
		InFlight:     sv.inFlight.Load(),
		Cancelled:    sv.cancelled.Load(),
		Diverged:     sv.diverged.Load(),
		Panicked:     sv.panicked.Load(),
		BreakerShed:  sv.breaker.shed.Load(),
		BreakerOpens: sv.breaker.opens.Load(),
	}
}

// BreakerState reports the service's circuit-breaker state: "closed",
// "open", or "half-open".
func (sv *Service) BreakerState() string { return sv.breaker.stateName() }

// Solve admits one tuned FULL-MULTIGRID solve, blocking while MaxInFlight
// solves are already running. See Solver.Solve.
func (sv *Service) Solve(x, b *Grid, accuracy float64) error {
	return sv.admit(context.Background(), func() error { return sv.s.Solve(x, b, accuracy) })
}

// SolveContext admits one tuned FULL-MULTIGRID solve bounded by ctx at
// every stage: if the context is cancelled or its deadline expires before a
// slot frees, the request is shed (an ErrShed error, counted in Shed)
// instead of waiting indefinitely behind MaxInFlight running solves; once
// admitted, the solve itself polls ctx between cycles and levels and aborts
// with an error wrapping ErrCancelled (counted in Cancelled) within roughly
// one cycle's latency.
func (sv *Service) SolveContext(ctx context.Context, x, b *Grid, accuracy float64) error {
	return sv.admit(ctx, func() error { return sv.s.solveCtx(ctx, x, b, accuracy, true, nil) })
}

// SolveV admits one tuned MULTIGRID-V solve. See Solver.SolveV.
func (sv *Service) SolveV(x, b *Grid, accuracy float64) error {
	return sv.admit(context.Background(), func() error { return sv.s.SolveV(x, b, accuracy) })
}

// SolveAdaptive admits one adaptive solve. See Solver.SolveAdaptive.
func (sv *Service) SolveAdaptive(x, b *Grid, residualReduction float64) (int, float64, error) {
	var iters int
	var reduction float64
	err := sv.admit(context.Background(), func() error {
		var err error
		iters, reduction, err = sv.s.SolveAdaptive(x, b, residualReduction)
		return err
	})
	return iters, reduction, err
}

func (sv *Service) admit(ctx context.Context, solve func() error) error {
	// An already-expired context sheds without racing the semaphore: a
	// deadline that passed while the request was queued upstream must not
	// win a slot just because one happens to be free.
	if err := ctx.Err(); err != nil {
		sv.shed.Add(1)
		return fmt.Errorf("%w: %v", ErrShed, err)
	}
	// The breaker gate sits before the semaphore so an open breaker sheds
	// instantly instead of queueing doomed requests behind healthy families'
	// traffic. Breaker sheds wrap ErrShed (generic retryable handling) and
	// ErrBreakerOpen (the Retry-After detail).
	probe, berr := sv.breaker.allow()
	if berr != nil {
		sv.shed.Add(1)
		return fmt.Errorf("%w: %w", ErrShed, berr)
	}
	sv.waiting.Add(1)
	select {
	case sv.sem <- struct{}{}:
		sv.waiting.Add(-1)
	case <-ctx.Done():
		sv.waiting.Add(-1)
		sv.shed.Add(1)
		// Never ran: no evidence for the breaker either way (and a probe
		// slot is released for the next request).
		sv.breaker.record(probe, breakerNeutral)
		return fmt.Errorf("%w: %v", ErrShed, ctx.Err())
	}
	sv.admitted.Add(1)
	sv.inFlight.Add(1)
	defer func() {
		sv.inFlight.Add(-1)
		<-sv.sem
	}()
	err := sv.protect(solve)
	sv.breaker.record(probe, breakerOutcomeOf(err))
	switch {
	case err == nil:
		sv.completed.Add(1)
	default:
		sv.failed.Add(1)
		switch {
		case errors.Is(err, ErrCancelled):
			sv.cancelled.Add(1)
		case errors.Is(err, ErrDiverged):
			sv.diverged.Add(1)
		case errors.Is(err, ErrPanicked):
			sv.panicked.Add(1)
		}
	}
	return err
}

// protect runs one solve with panic containment: a panic anywhere inside
// the solver — a kernel bug, an injected fault, a pool-task panic re-raised
// at its join — is recovered here, at the Service boundary, into a
// *PanicError, so one poisoned request costs one failed response instead of
// the process. By the time the panic reaches this frame the solver's
// unwind has already returned every pooled scratch buffer (the workspace's
// checkout/release balancing is deferred), so the next request starts
// clean.
func (sv *Service) protect(solve func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if tp, ok := r.(*sched.TaskPanic); ok {
				// A pool-worker panic: surface the task's own value and the
				// worker's stack, not this recovery goroutine's.
				err = &PanicError{Value: tp.Value, Stack: tp.Stack}
				return
			}
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return solve()
}

// breakerOutcomeOf classifies a solve error for the circuit breaker: only
// infrastructure failures (divergence, panics) count toward opening it;
// cancellations are neutral, and client errors (bad size, unreachable
// accuracy) plus successes count as OK.
func breakerOutcomeOf(err error) breakerOutcome {
	switch {
	case err == nil:
		return breakerOK
	case errors.Is(err, ErrDiverged), errors.Is(err, ErrPanicked):
		return breakerInfraFailure
	case errors.Is(err, ErrCancelled):
		return breakerNeutral
	default:
		return breakerOK
	}
}

// SolveBatch solves every problem concurrently through this service's
// admission limit. The fan-out is a worker loop sized by the admission
// limit, not a goroutine per problem: a million-problem batch runs on
// min(MaxInFlight, len(problems)) goroutines pulling the next index, rather
// than parking a million goroutines on the semaphore. See Solver.SolveBatch.
func (sv *Service) SolveBatch(problems []BatchProblem, accuracy float64) error {
	if len(problems) == 0 {
		return nil
	}
	errs := make([]error, len(problems))
	workers := sv.MaxInFlight()
	if workers > len(problems) {
		workers = len(problems)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(problems) {
					return
				}
				p := problems[i]
				if err := sv.Solve(p.X, p.B, accuracy); err != nil {
					errs[i] = fmt.Errorf("pbmg: batch problem %d: %w", i, err)
				}
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}
