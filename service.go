package pbmg

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the serving front end over a tuned Solver: SolveBatch fans a
// fixed set of independent problems across the shared worker pool, and
// Service admits a stream of solve requests with a bound on how many run at
// once. Both lean on the tune-once/serve-many model of the paper (§3.2.1):
// the expensive tuned configuration and its caches are built once and then
// amortized over every request.

// BatchProblem pairs one solve's state grid (Dirichlet boundary and initial
// guess, solved in place) with its right-hand side.
type BatchProblem struct {
	X, B *Grid
}

// SolveBatch solves every problem with the tuned FULL-MULTIGRID algorithm
// for the smallest tuned target ≥ accuracy, running the solves concurrently
// on the shared solver. In-flight solves are bounded (by 2×GOMAXPROCS) so
// arbitrarily large batches hold only a bounded set of scratch workspaces.
// Each problem's X is solved in place. The returned error joins the
// failures of all problems that were rejected (others still complete);
// a nil return means every problem met its target.
func (s *Solver) SolveBatch(problems []BatchProblem, accuracy float64) error {
	return s.NewService(0).SolveBatch(problems, accuracy)
}

// Service wraps a Solver with an admission limit for serving: at most
// maxInFlight solves run concurrently, and further requests block until a
// slot frees. A Service is safe for concurrent use and is cheap to create;
// all services of one Solver share its tuned tables and caches.
type Service struct {
	s         *Solver
	sem       chan struct{}
	completed atomic.Int64
}

// NewService returns a serving front end admitting at most maxInFlight
// concurrent solves (≤ 0 selects 2×GOMAXPROCS).
func (s *Solver) NewService(maxInFlight int) *Service {
	if maxInFlight <= 0 {
		maxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	return &Service{s: s, sem: make(chan struct{}, maxInFlight)}
}

// MaxInFlight returns the admission limit.
func (sv *Service) MaxInFlight() int { return cap(sv.sem) }

// Family returns the operator family the underlying solver serves; requests
// must be drawn from the same family (see Solver.NewFamilyProblem).
func (sv *Service) Family() Family { return sv.s.Family() }

// Epsilon returns the served family's parameter (ε or σ; 1 for Poisson).
func (sv *Service) Epsilon() float64 { return sv.s.Epsilon() }

// Completed returns the number of solves finished successfully so far.
func (sv *Service) Completed() int64 { return sv.completed.Load() }

// Solve admits one tuned FULL-MULTIGRID solve, blocking while maxInFlight
// solves are already running. See Solver.Solve.
func (sv *Service) Solve(x, b *Grid, accuracy float64) error {
	return sv.admit(func() error { return sv.s.Solve(x, b, accuracy) })
}

// SolveV admits one tuned MULTIGRID-V solve. See Solver.SolveV.
func (sv *Service) SolveV(x, b *Grid, accuracy float64) error {
	return sv.admit(func() error { return sv.s.SolveV(x, b, accuracy) })
}

// SolveAdaptive admits one adaptive solve. See Solver.SolveAdaptive.
func (sv *Service) SolveAdaptive(x, b *Grid, residualReduction float64) (int, float64, error) {
	var iters int
	var reduction float64
	err := sv.admit(func() error {
		var err error
		iters, reduction, err = sv.s.SolveAdaptive(x, b, residualReduction)
		return err
	})
	return iters, reduction, err
}

func (sv *Service) admit(solve func() error) error {
	sv.sem <- struct{}{}
	defer func() { <-sv.sem }()
	err := solve()
	if err == nil {
		sv.completed.Add(1)
	}
	return err
}

// SolveBatch solves every problem concurrently through this service's
// admission limit. See Solver.SolveBatch.
func (sv *Service) SolveBatch(problems []BatchProblem, accuracy float64) error {
	if len(problems) == 0 {
		return nil
	}
	errs := make([]error, len(problems))
	var wg sync.WaitGroup
	for i, p := range problems {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := sv.Solve(p.X, p.B, accuracy); err != nil {
				errs[i] = fmt.Errorf("pbmg: batch problem %d: %w", i, err)
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}
