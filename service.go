package pbmg

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the serving front end over a tuned Solver: SolveBatch fans a
// fixed set of independent problems across the shared worker pool, and
// Service admits a stream of solve requests with a bound on how many run at
// once. Both lean on the tune-once/serve-many model of the paper (§3.2.1):
// the expensive tuned configuration and its caches are built once and then
// amortized over every request. Registry (registry.go) composes several
// Services — one per tuned operator family — behind one admission limit.

// BatchProblem pairs one solve's state grid (Dirichlet boundary and initial
// guess, solved in place) with its right-hand side.
type BatchProblem struct {
	X, B *Grid
}

// SolveBatch solves every problem with the tuned FULL-MULTIGRID algorithm
// for the smallest tuned target ≥ accuracy, running the solves concurrently
// on the shared solver through the solver's default service (see
// DefaultService), whose admission limit bounds both the in-flight solves
// and the goroutines fanned out, so arbitrarily large batches hold only a
// bounded set of scratch workspaces. Each problem's X is
// solved in place. The returned error joins the failures of all problems
// that were rejected (others still complete); a nil return means every
// problem met its target. Completions are visible in the default service's
// metrics.
func (s *Solver) SolveBatch(problems []BatchProblem, accuracy float64) error {
	return s.DefaultService().SolveBatch(problems, accuracy)
}

// Service wraps a Solver with an admission limit for serving: at most
// MaxInFlight solves run concurrently, and further requests block until a
// slot frees. A Service is safe for concurrent use and is cheap to create;
// all services of one Solver share its tuned tables and caches. Services
// created by a Registry share one admission semaphore, so the limit is
// global across every family the registry serves.
type Service struct {
	s   *Solver
	sem chan struct{}

	admitted  atomic.Int64
	completed atomic.Int64
	rejected  atomic.Int64
	inFlight  atomic.Int64
}

// ServiceMetrics is a point-in-time snapshot of one service's request
// counters. Admitted counts solves that passed admission (acquired a slot);
// of those, Completed finished successfully and Rejected returned an error
// (size or accuracy outside the tuned range). InFlight is the gauge of
// solves currently running.
type ServiceMetrics struct {
	Admitted  int64
	Completed int64
	Rejected  int64
	InFlight  int64
}

// Add accumulates m into the receiver (for aggregating per-family metrics).
func (sm *ServiceMetrics) Add(m ServiceMetrics) {
	sm.Admitted += m.Admitted
	sm.Completed += m.Completed
	sm.Rejected += m.Rejected
	sm.InFlight += m.InFlight
}

// NewService returns a serving front end admitting at most maxInFlight
// concurrent solves (≤ 0 selects 2×GOMAXPROCS).
func (s *Solver) NewService(maxInFlight int) *Service {
	if maxInFlight <= 0 {
		maxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	return newService(s, make(chan struct{}, maxInFlight))
}

// newService wraps a solver around an admission semaphore, which may be
// shared with other services (Registry shares one across all families).
func newService(s *Solver, sem chan struct{}) *Service {
	return &Service{s: s, sem: sem}
}

// DefaultService returns the solver's lazily-created default service,
// shared by every SolveBatch call on the solver so batch completions
// accumulate in one place instead of vanishing with a throwaway service.
// The admission limit is 2×GOMAXPROCS for a standalone solver; registering
// the solver in a Registry makes the registry service (and its global
// limit) the default, so batch solves honor the registry-wide bound.
func (s *Solver) DefaultService() *Service {
	s.defOnce.Do(func() { s.defSvc = s.NewService(0) })
	return s.defSvc
}

// MaxInFlight returns the admission limit (the global limit, for services
// created by a Registry).
func (sv *Service) MaxInFlight() int { return cap(sv.sem) }

// Solver returns the tuned solver behind the service.
func (sv *Service) Solver() *Solver { return sv.s }

// Family returns the operator family the underlying solver serves; requests
// must be drawn from the same family (see Solver.NewFamilyProblem).
func (sv *Service) Family() Family { return sv.s.Family() }

// Epsilon returns the served family's parameter (ε or σ; 1 for Poisson).
func (sv *Service) Epsilon() float64 { return sv.s.Epsilon() }

// Completed returns the number of solves finished successfully so far.
func (sv *Service) Completed() int64 { return sv.completed.Load() }

// Metrics returns a snapshot of the service's request counters. The fields
// are read individually from concurrently-updated counters, so a snapshot
// taken while solves are in flight is approximate (but each counter is
// exact).
func (sv *Service) Metrics() ServiceMetrics {
	return ServiceMetrics{
		Admitted:  sv.admitted.Load(),
		Completed: sv.completed.Load(),
		Rejected:  sv.rejected.Load(),
		InFlight:  sv.inFlight.Load(),
	}
}

// Solve admits one tuned FULL-MULTIGRID solve, blocking while MaxInFlight
// solves are already running. See Solver.Solve.
func (sv *Service) Solve(x, b *Grid, accuracy float64) error {
	return sv.admit(func() error { return sv.s.Solve(x, b, accuracy) })
}

// SolveV admits one tuned MULTIGRID-V solve. See Solver.SolveV.
func (sv *Service) SolveV(x, b *Grid, accuracy float64) error {
	return sv.admit(func() error { return sv.s.SolveV(x, b, accuracy) })
}

// SolveAdaptive admits one adaptive solve. See Solver.SolveAdaptive.
func (sv *Service) SolveAdaptive(x, b *Grid, residualReduction float64) (int, float64, error) {
	var iters int
	var reduction float64
	err := sv.admit(func() error {
		var err error
		iters, reduction, err = sv.s.SolveAdaptive(x, b, residualReduction)
		return err
	})
	return iters, reduction, err
}

func (sv *Service) admit(solve func() error) error {
	sv.sem <- struct{}{}
	sv.admitted.Add(1)
	sv.inFlight.Add(1)
	defer func() {
		sv.inFlight.Add(-1)
		<-sv.sem
	}()
	err := solve()
	if err == nil {
		sv.completed.Add(1)
	} else {
		sv.rejected.Add(1)
	}
	return err
}

// SolveBatch solves every problem concurrently through this service's
// admission limit. The fan-out is a worker loop sized by the admission
// limit, not a goroutine per problem: a million-problem batch runs on
// min(MaxInFlight, len(problems)) goroutines pulling the next index, rather
// than parking a million goroutines on the semaphore. See Solver.SolveBatch.
func (sv *Service) SolveBatch(problems []BatchProblem, accuracy float64) error {
	if len(problems) == 0 {
		return nil
	}
	errs := make([]error, len(problems))
	workers := sv.MaxInFlight()
	if workers > len(problems) {
		workers = len(problems)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(problems) {
					return
				}
				p := problems[i]
				if err := sv.Solve(p.X, p.B, accuracy); err != nil {
					errs[i] = fmt.Errorf("pbmg: batch problem %d: %w", i, err)
				}
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}
